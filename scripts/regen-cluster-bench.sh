#!/bin/sh
# Regenerates BENCH_cluster.json, the cluster throughput artifact: tlsload
# drives a Zipf-popular digest population, closed-loop, first against one
# tlsd and then against a 3-worker fleet behind tlsrouter (workers peered
# for the remote cache tier). Both legs share the seed and population, so
# the comparison isolates the topology. Compare against BENCH_service.json
# for the in-process (no-HTTP) serving ceiling.
#
# Tunables ride through the environment:
#   DURATION=10s CONCURRENCY=16 DIGESTS=24 ZIPF=1.1 scripts/regen-cluster-bench.sh
set -e
cd "$(dirname "$0")/.."

DURATION="${DURATION:-10s}"
CONCURRENCY="${CONCURRENCY:-16}"
DIGESTS="${DIGESTS:-24}"
ZIPF="${ZIPF:-1.1}"

ADDR_1=127.0.0.1:18093
ADDR_2=127.0.0.1:18094
ADDR_3=127.0.0.1:18095
ADDR_R=127.0.0.1:18096
TMP="$(mktemp -d)"
PIDS=""
trap 'for P in $PIDS; do kill $P 2>/dev/null || true; done; rm -rf "$TMP"' EXIT

go build -o "$TMP/tlsd" ./cmd/tlsd
go build -o "$TMP/tlsrouter" ./cmd/tlsrouter
go build -o "$TMP/tlsload" ./cmd/tlsload

await_ready() {
    for i in $(seq 1 100); do
        if curl -fsS "http://$1/readyz" >/dev/null 2>&1; then
            return 0
        fi
        sleep 0.1
    done
    echo "regen-cluster-bench: $1 never became ready" >&2
    exit 1
}

# Leg 1: a single worker, loaded directly.
"$TMP/tlsd" -addr "$ADDR_1" -cache-dir "$TMP/cas-single" >/dev/null 2>&1 &
PID_SINGLE=$!
PIDS="$PIDS $PID_SINGLE"
await_ready "$ADDR_1"
"$TMP/tlsload" -target "http://$ADDR_1" -duration "$DURATION" \
    -concurrency "$CONCURRENCY" -digests "$DIGESTS" -zipf-s "$ZIPF" \
    -out "$TMP/single.json"
kill -TERM "$PID_SINGLE"
wait "$PID_SINGLE" || true

# Leg 2: three peered workers behind the router, same load.
"$TMP/tlsd" -addr "$ADDR_1" -cache-dir "$TMP/cas-1" \
    -peers "http://$ADDR_2,http://$ADDR_3" >/dev/null 2>&1 &
PIDS="$PIDS $!"
"$TMP/tlsd" -addr "$ADDR_2" -cache-dir "$TMP/cas-2" \
    -peers "http://$ADDR_1,http://$ADDR_3" >/dev/null 2>&1 &
PIDS="$PIDS $!"
"$TMP/tlsd" -addr "$ADDR_3" -cache-dir "$TMP/cas-3" \
    -peers "http://$ADDR_1,http://$ADDR_2" >/dev/null 2>&1 &
PIDS="$PIDS $!"
"$TMP/tlsrouter" -addr "$ADDR_R" \
    -workers "http://$ADDR_1,http://$ADDR_2,http://$ADDR_3" >/dev/null 2>&1 &
PIDS="$PIDS $!"
await_ready "$ADDR_1"
await_ready "$ADDR_2"
await_ready "$ADDR_3"
await_ready "$ADDR_R"
"$TMP/tlsload" -target "http://$ADDR_R" -duration "$DURATION" \
    -concurrency "$CONCURRENCY" -digests "$DIGESTS" -zipf-s "$ZIPF" \
    -out "$TMP/cluster.json"

# Assemble the artifact: both legs plus the provenance line.
{
    printf '{\n'
    printf '  "note": "tlsload closed-loop, Zipf(s=%s) over %s digests, %s workers, %s per leg; single tlsd vs 3 peered workers behind tlsrouter. Regenerate with scripts/regen-cluster-bench.sh.",\n' \
        "$ZIPF" "$DIGESTS" "$CONCURRENCY" "$DURATION"
    printf '  "single_node": '
    cat "$TMP/single.json"
    printf ',\n  "cluster_3x": '
    cat "$TMP/cluster.json"
    printf '}\n'
} >BENCH_cluster.json

echo "regen-cluster-bench: wrote BENCH_cluster.json"
