#!/bin/sh
# Regenerates BENCH_service.json, the serving-daemon benchmark artifact:
# throughput of a repeated design-space sweep through the full serving path
# (bounded queue, worker pool, shared build cache, content-addressed result
# cache), the cold vs cache-hit latency split, the hit ratio, and the
# distinct-build count.
#
# Extra flags are passed through, e.g.:
#   scripts/regen-service-bench.sh -workers 4
set -e
cd "$(dirname "$0")/.."
exec go run ./cmd/tlsd -service-bench BENCH_service.json "$@"
