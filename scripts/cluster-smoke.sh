#!/bin/sh
# End-to-end smoke test of the cluster layer (CI "cluster smoke" step):
# start two tlsd workers peered to each other's caches plus a tlsrouter in
# front, route a job through the router and require the served bytes to be
# byte-identical to `tlssim -json`; pull the digest through a worker's
# remote cache tier (the cross-process -peers wiring); kill the digest's
# owner and require the router to keep serving the digest byte-identically
# from the surviving replica; finally scrape the router's /metrics in both
# JSON and Prometheus form and lint the tlsrouter_* exposition.
set -e
cd "$(dirname "$0")/.."

ADDR_A=127.0.0.1:18090
ADDR_B=127.0.0.1:18091
ADDR_R=127.0.0.1:18092
SPEC='{"benchmark":"NEW ORDER","experiment":"BASELINE","txns":3,"warmup":1}'
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/tlsd" ./cmd/tlsd
go build -o "$TMP/tlsrouter" ./cmd/tlsrouter
go build -o "$TMP/tlssim" ./cmd/tlssim

"$TMP/tlsd" -addr "$ADDR_A" -log-format json -cache-dir "$TMP/cas-a" \
    -peers "http://$ADDR_B" >"$TMP/a.log" 2>"$TMP/a.jsonl" &
PID_A=$!
"$TMP/tlsd" -addr "$ADDR_B" -log-format json -cache-dir "$TMP/cas-b" \
    -peers "http://$ADDR_A" >"$TMP/b.log" 2>"$TMP/b.jsonl" &
PID_B=$!
"$TMP/tlsrouter" -addr "$ADDR_R" -log-format json \
    -workers "http://$ADDR_A,http://$ADDR_B" \
    -probe-interval 500ms -probe-timeout 500ms -probe-threshold 2 \
    >"$TMP/r.log" 2>"$TMP/r.jsonl" &
PID_R=$!

for HOST in "$ADDR_A" "$ADDR_B" "$ADDR_R"; do
    for i in $(seq 1 100); do
        if curl -fsS "http://$HOST/readyz" >/dev/null 2>&1; then
            break
        fi
        if [ "$i" = 100 ]; then
            echo "cluster-smoke: $HOST never became ready" >&2
            cat "$TMP"/*.log "$TMP"/*.jsonl >&2
            exit 1
        fi
        sleep 0.1
    done
done

# Route a job through the router; the result must be byte-identical to the
# CLI, and X-Served-By names the digest's owner.
curl -fsS -D "$TMP/routed.hdr" -H 'X-Correlation-ID: cluster-smoke-1' \
    -X POST "http://$ADDR_R/v1/jobs?wait=1" -d "$SPEC" >"$TMP/routed.json"
"$TMP/tlssim" -benchmark "NEW ORDER" -experiment "BASELINE" -txns 3 -warmup 1 -json >"$TMP/cli.json"
if ! cmp -s "$TMP/routed.json" "$TMP/cli.json"; then
    echo "cluster-smoke: routed result differs from tlssim -json" >&2
    diff "$TMP/cli.json" "$TMP/routed.json" >&2 || true
    exit 1
fi
if ! grep -qi '^X-Correlation-ID: cluster-smoke-1' "$TMP/routed.hdr"; then
    echo "cluster-smoke: correlation ID not echoed by the router:" >&2
    cat "$TMP/routed.hdr" >&2
    exit 1
fi
OWNER=$(sed -n 's/^X-Served-By: *\(http[^[:space:]]*\).*/\1/pi' "$TMP/routed.hdr" | head -1 | tr -d '\r')
if [ -z "$OWNER" ]; then
    echo "cluster-smoke: no X-Served-By on the routed response:" >&2
    cat "$TMP/routed.hdr" >&2
    exit 1
fi
if [ "$OWNER" = "http://$ADDR_A" ]; then
    SURVIVOR="http://$ADDR_B"
    OWNER_PID=$PID_A
else
    SURVIVOR="http://$ADDR_A"
    OWNER_PID=$PID_B
fi
echo "cluster-smoke: digest owner $OWNER, survivor $SURVIVOR"

# Submit the same spec directly to the non-owner: its memory and disk
# tiers miss, and the -peers remote tier must fetch the owner's bytes.
curl -fsS -D "$TMP/remote.hdr" -X POST "$SURVIVOR/v1/jobs?wait=1" -d "$SPEC" >"$TMP/remote.json"
if ! grep -qi '^X-Cache: hit' "$TMP/remote.hdr" || ! grep -qi '^X-Cache-Tier: remote' "$TMP/remote.hdr"; then
    echo "cluster-smoke: non-owner did not serve from the remote cache tier:" >&2
    cat "$TMP/remote.hdr" >&2
    exit 1
fi
if ! cmp -s "$TMP/remote.json" "$TMP/cli.json"; then
    echo "cluster-smoke: remote-tier body differs from tlssim -json" >&2
    exit 1
fi

# Kill the owner. The router must keep serving the digest byte-identically
# from the surviving replica's cache (rescue or failover, never an error).
kill -9 "$OWNER_PID" 2>/dev/null
wait "$OWNER_PID" 2>/dev/null || true
curl -fsS -D "$TMP/failover.hdr" -X POST "http://$ADDR_R/v1/jobs?wait=1" -d "$SPEC" >"$TMP/failover.json"
if ! cmp -s "$TMP/failover.json" "$TMP/cli.json"; then
    echo "cluster-smoke: post-owner-death body differs from tlssim -json" >&2
    diff "$TMP/cli.json" "$TMP/failover.json" >&2 || true
    exit 1
fi
SERVED_BY=$(sed -n 's/^X-Served-By: *\(http[^[:space:]]*\).*/\1/pi' "$TMP/failover.hdr" | head -1 | tr -d '\r')
if [ "$SERVED_BY" = "$OWNER" ]; then
    echo "cluster-smoke: dead owner allegedly served the rescue:" >&2
    cat "$TMP/failover.hdr" >&2
    exit 1
fi

# Router metrics: the JSON view knows both workers; the Prometheus view
# carries the tlsrouter_* families and passes the in-repo linter.
curl -fsS "http://$ADDR_R/metrics" >"$TMP/metrics.json"
grep -q '"jobs_routed"' "$TMP/metrics.json" || {
    echo "cluster-smoke: router JSON metrics missing jobs_routed" >&2
    cat "$TMP/metrics.json" >&2
    exit 1
}
curl -fsS -H 'Accept: text/plain' "http://$ADDR_R/metrics" >"$TMP/metrics.prom"
for FAMILY in tlsrouter_build_info tlsrouter_nodes_alive tlsrouter_node_breaker_state \
    tlsrouter_jobs_routed_total tlsrouter_ring_rebalances_total tlsrouter_probes_total; do
    grep -q "^$FAMILY" "$TMP/metrics.prom" || {
        echo "cluster-smoke: Prometheus exposition missing $FAMILY" >&2
        cat "$TMP/metrics.prom" >&2
        exit 1
    }
done
grep -Eq '^tlsrouter_jobs_routed_total [1-9]' "$TMP/metrics.prom" || {
    echo "cluster-smoke: router counted no routed jobs" >&2
    cat "$TMP/metrics.prom" >&2
    exit 1
}
PROMLINT_FILE="$TMP/metrics.prom" go test -count=1 -run TestLintPromFile ./internal/telemetry >/dev/null || {
    echo "cluster-smoke: tlsrouter exposition failed the format linter" >&2
    cat "$TMP/metrics.prom" >&2
    exit 1
}

# Clean shutdown of the survivors.
kill -TERM "$PID_R"
STATUS=0
wait "$PID_R" || STATUS=$?
if [ "$STATUS" != 0 ]; then
    echo "cluster-smoke: router exited $STATUS on SIGTERM" >&2
    cat "$TMP/r.log" "$TMP/r.jsonl" >&2
    exit 1
fi
if [ "$OWNER_PID" = "$PID_A" ]; then
    SURVIVOR_PID=$PID_B
else
    SURVIVOR_PID=$PID_A
fi
kill -TERM "$SURVIVOR_PID"
STATUS=0
wait "$SURVIVOR_PID" || STATUS=$?
if [ "$STATUS" != 0 ]; then
    echo "cluster-smoke: surviving worker exited $STATUS on SIGTERM" >&2
    cat "$TMP"/*.log "$TMP"/*.jsonl >&2
    exit 1
fi

echo "cluster-smoke: ok (routed byte-identical, remote tier, owner-death rescue, clean tlsrouter exposition)"
