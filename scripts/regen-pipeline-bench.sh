#!/bin/sh
# Regenerates BENCH_pipeline.json, the experiment-pipeline benchmark
# artifact: suite wall-clock at -j 1 vs -j N (N defaults to the host's
# cores), byte-identity of the two outputs, the sims_run / sims_forked /
# sims_memoized split (how many simulation tasks ran in full vs forked from
# a shared prefix checkpoint vs served from the exact-run memo — the
# prefix-sharing win), build-cache effectiveness, and the simulator's
# steady-state allocations per epoch.
#
# Extra flags are passed through, e.g.:
#   scripts/regen-pipeline-bench.sh -j 4
set -e
cd "$(dirname "$0")/.."
exec go run ./cmd/experiments -pipeline-bench BENCH_pipeline.json -txns 3 -warmup 1 "$@"
