#!/bin/sh
# Regenerates BENCH_pipeline.json, the experiment-pipeline benchmark
# artifact: suite wall-clock at -j 1 vs -j N (N defaults to the host's
# cores), byte-identity of the two outputs, build-cache effectiveness, and
# the simulator's steady-state allocations per epoch.
#
# Extra flags are passed through, e.g.:
#   scripts/regen-pipeline-bench.sh -j 4
set -e
cd "$(dirname "$0")/.."
exec go run ./cmd/experiments -pipeline-bench BENCH_pipeline.json -txns 3 -warmup 1 "$@"
