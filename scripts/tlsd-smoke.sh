#!/bin/sh
# End-to-end smoke test of the serving daemon (CI "tlsd smoke" step):
# start tlsd with structured JSON logging, the flight recorder, and the
# debug surface; submit a correlated baseline job over HTTP, poll it to
# completion, and require the served result to be byte-identical to
# `tlssim -json` for the same spec; resubmit to require a content-addressed
# cache hit; scrape /metrics in both JSON and Prometheus form and lint the
# exposition; force a structured failure and require its flight-recorder
# dump; then SIGTERM the daemon and require a clean drain (exit 0).
# Finally restart the daemon over the same -cache-dir and require the
# first resubmission to be a disk-warm cache hit: byte-identical body,
# zero build/sim work, and the CAS counters visible in both metric forms.
set -e
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
DEBUG_ADDR=127.0.0.1:18081
SPEC='{"benchmark":"NEW ORDER","experiment":"BASELINE","txns":3,"warmup":1}'
CORR=smoke-run-1
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/tlsd" ./cmd/tlsd
go build -o "$TMP/tlssim" ./cmd/tlssim

"$TMP/tlsd" -addr "$ADDR" -debug-addr "$DEBUG_ADDR" -log-format json \
    -flight-dir "$TMP/flight" -cache-dir "$TMP/cas" \
    >"$TMP/tlsd.log" 2>"$TMP/tlsd.jsonl" &
TLSD_PID=$!

# Wait for readiness.
for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" = 100 ]; then
        echo "tlsd-smoke: daemon never became ready" >&2
        cat "$TMP/tlsd.log" "$TMP/tlsd.jsonl" >&2
        exit 1
    fi
    sleep 0.1
done

# Submit with a correlation ID, extract the job id, poll to a terminal
# state. The correlation ID must be echoed on the response.
curl -fsS -D "$TMP/submit.hdr" -H "X-Correlation-ID: $CORR" \
    -X POST "http://$ADDR/v1/jobs" -d "$SPEC" >"$TMP/submit.json"
if ! grep -qi "^X-Correlation-ID: $CORR" "$TMP/submit.hdr"; then
    echo "tlsd-smoke: correlation ID not echoed:" >&2
    cat "$TMP/submit.hdr" >&2
    exit 1
fi
JOB=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$TMP/submit.json" | head -1)
if [ -z "$JOB" ]; then
    echo "tlsd-smoke: no job id in submit response:" >&2
    cat "$TMP/submit.json" >&2
    exit 1
fi
for i in $(seq 1 600); do
    STATE=$(curl -fsS "http://$ADDR/v1/jobs/$JOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)
    [ "$STATE" = "done" ] && break
    if [ "$STATE" = "failed" ]; then
        echo "tlsd-smoke: job failed:" >&2
        curl -fsS "http://$ADDR/v1/jobs/$JOB" >&2
        exit 1
    fi
    if [ "$i" = 600 ]; then
        echo "tlsd-smoke: job never finished (state=$STATE)" >&2
        exit 1
    fi
    sleep 0.1
done

# The serving contract: served bytes == tlssim -json bytes.
curl -fsS "http://$ADDR/v1/jobs/$JOB/result" >"$TMP/served.json"
"$TMP/tlssim" -benchmark "NEW ORDER" -experiment "BASELINE" -txns 3 -warmup 1 -json >"$TMP/cli.json"
if ! cmp -s "$TMP/served.json" "$TMP/cli.json"; then
    echo "tlsd-smoke: served result differs from tlssim -json" >&2
    diff "$TMP/cli.json" "$TMP/served.json" >&2 || true
    exit 1
fi

# Resubmitting the same spec must be a content-addressed cache hit serving
# the identical bytes without re-simulation.
curl -fsS -D "$TMP/hit.hdr" -X POST "http://$ADDR/v1/jobs" -d "$SPEC" >"$TMP/hit.json"
if ! grep -qi '^X-Cache: hit' "$TMP/hit.hdr"; then
    echo "tlsd-smoke: resubmission was not a cache hit:" >&2
    cat "$TMP/hit.hdr" >&2
    exit 1
fi
if ! cmp -s "$TMP/hit.json" "$TMP/cli.json"; then
    echo "tlsd-smoke: cache-hit body differs from tlssim -json" >&2
    exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q '"cache_hits": 1' || {
    echo "tlsd-smoke: /metrics does not show the cache hit" >&2
    curl -fsS "http://$ADDR/metrics" >&2
    exit 1
}

# The same endpoint under a Prometheus scraper's Accept header speaks the
# text exposition format; the in-repo linter must accept the scrape.
curl -fsS -H 'Accept: text/plain' "http://$ADDR/metrics" >"$TMP/metrics.prom"
grep -q '^tlsd_cache_hits_total 1$' "$TMP/metrics.prom" || {
    echo "tlsd-smoke: Prometheus exposition does not show the cache hit" >&2
    cat "$TMP/metrics.prom" >&2
    exit 1
}
grep -q '^tlsd_job_stage_latency_microseconds_count{stage="sim"} 1$' "$TMP/metrics.prom" || {
    echo "tlsd-smoke: Prometheus exposition missing stage histograms" >&2
    cat "$TMP/metrics.prom" >&2
    exit 1
}
PROMLINT_FILE="$TMP/metrics.prom" go test -count=1 -run TestLintPromFile ./internal/telemetry >/dev/null || {
    echo "tlsd-smoke: Prometheus exposition failed the format linter" >&2
    cat "$TMP/metrics.prom" >&2
    exit 1
}

# The opt-in debug surface answers on its own port with the in-flight view.
curl -fsS "http://$DEBUG_ADDR/debug/requests" | grep -q '"in_flight"' || {
    echo "tlsd-smoke: /debug/requests not served on the debug port" >&2
    exit 1
}

# A seeded injection run whose forward-progress watchdog trips must leave a
# flight-recorder dump whose path is attached to the job's failure and
# named in the failure log.
FAILSPEC='{"benchmark":"NEW ORDER","txns":3,"warmup":1,"inject":"seed=1,faults=5,window=60000","watchdog_cycles":2000}'
curl -fsS -H 'X-Correlation-ID: smoke-crash' -X POST "http://$ADDR/v1/jobs" -d "$FAILSPEC" >"$TMP/fail.json"
FAILJOB=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$TMP/fail.json" | head -1)
for i in $(seq 1 600); do
    STATE=$(curl -fsS "http://$ADDR/v1/jobs/$FAILJOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)
    [ "$STATE" = "failed" ] && break
    if [ "$i" = 600 ]; then
        echo "tlsd-smoke: budgeted job never failed (state=$STATE)" >&2
        exit 1
    fi
    sleep 0.1
done
FLIGHT=$(curl -fsS "http://$ADDR/v1/jobs/$FAILJOB" | sed -n 's/.*"flight_record": *"\([^"]*\)".*/\1/p' | head -1)
if [ -z "$FLIGHT" ] || [ ! -s "$FLIGHT" ]; then
    echo "tlsd-smoke: failed job has no flight-recorder dump (path='$FLIGHT')" >&2
    curl -fsS "http://$ADDR/v1/jobs/$FAILJOB" >&2
    exit 1
fi
case "$FLIGHT" in
*smoke-crash*) ;;
*)
    echo "tlsd-smoke: flight record $FLIGHT not named after the correlation ID" >&2
    exit 1
    ;;
esac

# The structured log stream carries the lifecycle with correlation IDs.
for NEEDLE in '"msg":"job enqueued"' '"msg":"job completed"' '"msg":"job failed"' \
    "\"correlation_id\":\"$CORR\"" '"msg":"http access"' '"flight_record"'; do
    grep -q "$NEEDLE" "$TMP/tlsd.jsonl" || {
        echo "tlsd-smoke: structured log missing $NEEDLE" >&2
        cat "$TMP/tlsd.jsonl" >&2
        exit 1
    }
done

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$TLSD_PID"
STATUS=0
wait "$TLSD_PID" || STATUS=$?
if [ "$STATUS" != 0 ]; then
    echo "tlsd-smoke: daemon exited $STATUS on SIGTERM" >&2
    cat "$TMP/tlsd.log" "$TMP/tlsd.jsonl" >&2
    exit 1
fi
grep -q 'drained, bye' "$TMP/tlsd.log" || {
    echo "tlsd-smoke: no clean-drain message in log" >&2
    cat "$TMP/tlsd.log" >&2
    exit 1
}

# Warm restart: a fresh process over the same -cache-dir must serve the
# spec from byte one — a cache hit on the very first submission, the same
# bytes tlssim prints, and no build or simulation stage executed.
"$TMP/tlsd" -addr "$ADDR" -log-format json -flight-dir "$TMP/flight" \
    -cache-dir "$TMP/cas" >"$TMP/tlsd2.log" 2>"$TMP/tlsd2.jsonl" &
TLSD2_PID=$!
for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" = 100 ]; then
        echo "tlsd-smoke: restarted daemon never became ready" >&2
        cat "$TMP/tlsd2.log" "$TMP/tlsd2.jsonl" >&2
        exit 1
    fi
    sleep 0.1
done
curl -fsS -D "$TMP/warm.hdr" -X POST "http://$ADDR/v1/jobs" -d "$SPEC" >"$TMP/warm.json"
if ! grep -qi '^X-Cache: hit' "$TMP/warm.hdr"; then
    echo "tlsd-smoke: warm restart did not serve from the persistent cache:" >&2
    cat "$TMP/warm.hdr" >&2
    exit 1
fi
if ! cmp -s "$TMP/warm.json" "$TMP/cli.json"; then
    echo "tlsd-smoke: disk-warm body differs from tlssim -json" >&2
    diff "$TMP/cli.json" "$TMP/warm.json" >&2 || true
    exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q '"cache_disk_hits": 1' || {
    echo "tlsd-smoke: /metrics does not show the disk-warm hit" >&2
    curl -fsS "http://$ADDR/metrics" >&2
    exit 1
}
curl -fsS -H 'Accept: text/plain' "http://$ADDR/metrics" >"$TMP/warm-metrics.prom"
grep -q '^tlsd_cache_disk_hits_total 1$' "$TMP/warm-metrics.prom" || {
    echo "tlsd-smoke: Prometheus exposition missing the disk-warm hit" >&2
    cat "$TMP/warm-metrics.prom" >&2
    exit 1
}
grep -Eq '^tlsd_cas_hit_total [1-9]' "$TMP/warm-metrics.prom" || {
    echo "tlsd-smoke: Prometheus exposition missing CAS hit counter" >&2
    cat "$TMP/warm-metrics.prom" >&2
    exit 1
}
if grep -Eq 'tlsd_job_stage_latency_microseconds_count\{stage="(build|sim)"\} [1-9]' "$TMP/warm-metrics.prom"; then
    echo "tlsd-smoke: warm restart ran build/sim work instead of serving from disk" >&2
    cat "$TMP/warm-metrics.prom" >&2
    exit 1
fi
PROMLINT_FILE="$TMP/warm-metrics.prom" go test -count=1 -run TestLintPromFile ./internal/telemetry >/dev/null || {
    echo "tlsd-smoke: warm-restart Prometheus exposition failed the format linter" >&2
    cat "$TMP/warm-metrics.prom" >&2
    exit 1
}
grep -q '"msg":"job disk-warm hit"' "$TMP/tlsd2.jsonl" || {
    echo "tlsd-smoke: structured log missing the disk-warm hit" >&2
    cat "$TMP/tlsd2.jsonl" >&2
    exit 1
}

# Checkpoint leg: the cold run above published a machine checkpoint into the
# same cache dir; a sweep variant of the spec (divergent sub-thread spacing)
# submitted to the restarted daemon must fork its simulation from that
# on-disk checkpoint — byte-identical to tlssim -json for the variant, with
# the fork visible in both metric forms.
SWEEPSPEC='{"benchmark":"NEW ORDER","experiment":"BASELINE","txns":3,"warmup":1,"spacing":2500}'
curl -fsS -X POST "http://$ADDR/v1/jobs?wait=1" -d "$SWEEPSPEC" >"$TMP/sweep.json"
"$TMP/tlssim" -benchmark "NEW ORDER" -experiment "BASELINE" -txns 3 -warmup 1 \
    -spacing 2500 -json >"$TMP/cli-sweep.json"
if ! cmp -s "$TMP/sweep.json" "$TMP/cli-sweep.json"; then
    echo "tlsd-smoke: snapshot-forked body differs from tlssim -json" >&2
    diff "$TMP/cli-sweep.json" "$TMP/sweep.json" >&2 || true
    exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q '"jobs_forked": 1' || {
    echo "tlsd-smoke: /metrics does not show the sweep job forked from snapshot" >&2
    curl -fsS "http://$ADDR/metrics" >&2
    exit 1
}
curl -fsS -H 'Accept: text/plain' "http://$ADDR/metrics" >"$TMP/snap-metrics.prom"
for NEEDLE in '^tlsd_snapshot_hit_total 1$' '^tlsd_jobs_forked_total 1$'; do
    grep -q "$NEEDLE" "$TMP/snap-metrics.prom" || {
        echo "tlsd-smoke: Prometheus exposition missing $NEEDLE" >&2
        cat "$TMP/snap-metrics.prom" >&2
        exit 1
    }
done
PROMLINT_FILE="$TMP/snap-metrics.prom" go test -count=1 -run TestLintPromFile ./internal/telemetry >/dev/null || {
    echo "tlsd-smoke: snapshot Prometheus exposition failed the format linter" >&2
    cat "$TMP/snap-metrics.prom" >&2
    exit 1
}
grep -q '"msg":"job forked from snapshot"' "$TMP/tlsd2.jsonl" || {
    echo "tlsd-smoke: structured log missing the snapshot fork" >&2
    cat "$TMP/tlsd2.jsonl" >&2
    exit 1
}
kill -TERM "$TLSD2_PID"
STATUS=0
wait "$TLSD2_PID" || STATUS=$?
if [ "$STATUS" != 0 ]; then
    echo "tlsd-smoke: restarted daemon exited $STATUS on SIGTERM" >&2
    cat "$TMP/tlsd2.log" "$TMP/tlsd2.jsonl" >&2
    exit 1
fi

# Chaos leg: a daemon with the deterministic serving-fault schedule armed
# (disk errors, latency spikes, torn writes — over a fresh cache dir) must
# still serve bytes identical to tlssim -json, the injected faults must be
# visible in the Prometheus exposition, and the drain must stay clean.
"$TMP/tlsd" -addr "$ADDR" -log-format json \
    -cache-dir "$TMP/cas-chaos" -chaos 'seed=1,disk-err=3,slow=4,slow-ms=5,torn=3,panic=0' \
    >"$TMP/tlsd3.log" 2>"$TMP/tlsd3.jsonl" &
TLSD3_PID=$!
for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" = 100 ]; then
        echo "tlsd-smoke: chaos daemon never became ready" >&2
        cat "$TMP/tlsd3.log" "$TMP/tlsd3.jsonl" >&2
        exit 1
    fi
    sleep 0.1
done
grep -q 'CHAOS ARMED' "$TMP/tlsd3.log" || {
    echo "tlsd-smoke: chaos daemon did not announce its fault schedule" >&2
    cat "$TMP/tlsd3.log" >&2
    exit 1
}
# Three passes over the same spec walk every cache tier (cold, memory hit,
# and the faulted disk path); each must serve the exact CLI bytes.
for i in 1 2 3; do
    curl -fsS -X POST "http://$ADDR/v1/jobs?wait=1" -d "$SPEC" >"$TMP/chaos$i.json"
    if ! cmp -s "$TMP/chaos$i.json" "$TMP/cli.json"; then
        echo "tlsd-smoke: chaos-mode body $i differs from tlssim -json" >&2
        diff "$TMP/cli.json" "$TMP/chaos$i.json" >&2 || true
        exit 1
    fi
done
curl -fsS -H 'Accept: text/plain' "http://$ADDR/metrics" >"$TMP/chaos-metrics.prom"
grep -Eq '^tlsd_chaos_faults_total\{kind="(disk-err|disk-slow|torn-write)"\} [1-9]' "$TMP/chaos-metrics.prom" || {
    echo "tlsd-smoke: chaos run delivered no visible faults" >&2
    cat "$TMP/chaos-metrics.prom" >&2
    exit 1
}
grep -q '^tlsd_cas_breaker_state{state="' "$TMP/chaos-metrics.prom" || {
    echo "tlsd-smoke: Prometheus exposition missing the breaker state" >&2
    cat "$TMP/chaos-metrics.prom" >&2
    exit 1
}
PROMLINT_FILE="$TMP/chaos-metrics.prom" go test -count=1 -run TestLintPromFile ./internal/telemetry >/dev/null || {
    echo "tlsd-smoke: chaos Prometheus exposition failed the format linter" >&2
    cat "$TMP/chaos-metrics.prom" >&2
    exit 1
}
kill -TERM "$TLSD3_PID"
STATUS=0
wait "$TLSD3_PID" || STATUS=$?
if [ "$STATUS" != 0 ]; then
    echo "tlsd-smoke: chaos daemon exited $STATUS on SIGTERM" >&2
    cat "$TMP/tlsd3.log" "$TMP/tlsd3.jsonl" >&2
    exit 1
fi

echo "tlsd-smoke: ok (job $JOB byte-identical, cache hit, clean exposition, flight record, clean drain, disk-warm restart, snapshot fork, chaos leg)"
