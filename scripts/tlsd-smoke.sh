#!/bin/sh
# End-to-end smoke test of the serving daemon (CI "tlsd smoke" step):
# start tlsd, submit the baseline job over HTTP, poll it to completion, and
# require the served result to be byte-identical to `tlssim -json` for the
# same spec; resubmit to require a content-addressed cache hit; then SIGTERM
# the daemon and require a clean drain (exit 0).
set -e
cd "$(dirname "$0")/.."

ADDR=127.0.0.1:18080
SPEC='{"benchmark":"NEW ORDER","experiment":"BASELINE","txns":3,"warmup":1}'
TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

go build -o "$TMP/tlsd" ./cmd/tlsd
go build -o "$TMP/tlssim" ./cmd/tlssim

"$TMP/tlsd" -addr "$ADDR" >"$TMP/tlsd.log" 2>&1 &
TLSD_PID=$!

# Wait for readiness.
for i in $(seq 1 100); do
    if curl -fsS "http://$ADDR/readyz" >/dev/null 2>&1; then
        break
    fi
    if [ "$i" = 100 ]; then
        echo "tlsd-smoke: daemon never became ready" >&2
        cat "$TMP/tlsd.log" >&2
        exit 1
    fi
    sleep 0.1
done

# Submit, extract the job id, poll to a terminal state.
curl -fsS -X POST "http://$ADDR/v1/jobs" -d "$SPEC" >"$TMP/submit.json"
JOB=$(sed -n 's/.*"id": *"\([^"]*\)".*/\1/p' "$TMP/submit.json" | head -1)
if [ -z "$JOB" ]; then
    echo "tlsd-smoke: no job id in submit response:" >&2
    cat "$TMP/submit.json" >&2
    exit 1
fi
for i in $(seq 1 600); do
    STATE=$(curl -fsS "http://$ADDR/v1/jobs/$JOB" | sed -n 's/.*"state": *"\([^"]*\)".*/\1/p' | head -1)
    [ "$STATE" = "done" ] && break
    if [ "$STATE" = "failed" ]; then
        echo "tlsd-smoke: job failed:" >&2
        curl -fsS "http://$ADDR/v1/jobs/$JOB" >&2
        exit 1
    fi
    if [ "$i" = 600 ]; then
        echo "tlsd-smoke: job never finished (state=$STATE)" >&2
        exit 1
    fi
    sleep 0.1
done

# The serving contract: served bytes == tlssim -json bytes.
curl -fsS "http://$ADDR/v1/jobs/$JOB/result" >"$TMP/served.json"
"$TMP/tlssim" -benchmark "NEW ORDER" -experiment "BASELINE" -txns 3 -warmup 1 -json >"$TMP/cli.json"
if ! cmp -s "$TMP/served.json" "$TMP/cli.json"; then
    echo "tlsd-smoke: served result differs from tlssim -json" >&2
    diff "$TMP/cli.json" "$TMP/served.json" >&2 || true
    exit 1
fi

# Resubmitting the same spec must be a content-addressed cache hit serving
# the identical bytes without re-simulation.
curl -fsS -D "$TMP/hit.hdr" -X POST "http://$ADDR/v1/jobs" -d "$SPEC" >"$TMP/hit.json"
if ! grep -qi '^X-Cache: hit' "$TMP/hit.hdr"; then
    echo "tlsd-smoke: resubmission was not a cache hit:" >&2
    cat "$TMP/hit.hdr" >&2
    exit 1
fi
if ! cmp -s "$TMP/hit.json" "$TMP/cli.json"; then
    echo "tlsd-smoke: cache-hit body differs from tlssim -json" >&2
    exit 1
fi
curl -fsS "http://$ADDR/metrics" | grep -q '"cache_hits": 1' || {
    echo "tlsd-smoke: /metrics does not show the cache hit" >&2
    curl -fsS "http://$ADDR/metrics" >&2
    exit 1
}

# Graceful shutdown: SIGTERM must drain and exit 0.
kill -TERM "$TLSD_PID"
STATUS=0
wait "$TLSD_PID" || STATUS=$?
if [ "$STATUS" != 0 ]; then
    echo "tlsd-smoke: daemon exited $STATUS on SIGTERM" >&2
    cat "$TMP/tlsd.log" >&2
    exit 1
fi
grep -q 'drained, bye' "$TMP/tlsd.log" || {
    echo "tlsd-smoke: no clean-drain message in log" >&2
    cat "$TMP/tlsd.log" >&2
    exit 1
}

echo "tlsd-smoke: ok (job $JOB byte-identical, cache hit, clean drain)"
