package subthreads_test

import (
	"fmt"

	"subthreads"
)

// ExampleSimulate builds two speculative threads with one late cross-thread
// dependence by hand and shows sub-threads shrinking the rewind — the
// paper's Figure 1 in eight lines.
func ExampleSimulate() {
	producer := subthreads.NewTraceBuilder()
	producer.ALU(30000)
	producer.Store(1, 0x10000)

	consumer := subthreads.NewTraceBuilder()
	consumer.ALU(25000)
	consumer.Load(2, 0x10000)
	consumer.ALU(8000)

	prog := &subthreads.Program{Units: []subthreads.Unit{
		{Trace: producer.Finish()},
		{Trace: consumer.Finish()},
	}}

	allOrNothing := subthreads.DefaultSimConfig()
	allOrNothing.TLS.SubthreadsPerEpoch = 1
	allOrNothing.SubthreadSpacing = 0
	aon := subthreads.Simulate(allOrNothing, prog)
	sub := subthreads.Simulate(subthreads.DefaultSimConfig(), prog)

	fmt.Printf("all-or-nothing rewound %d instructions\n", aon.RewoundInstrs)
	fmt.Printf("sub-threads rewound    %d instructions\n", sub.RewoundInstrs)
	// Output:
	// all-or-nothing rewound 29657 instructions
	// sub-threads rewound    4657 instructions
}

// ExampleRun measures one Figure 5 experiment on a scaled-down TPC-C
// database and reports whether sub-threads beat conventional TLS.
func ExampleRun() {
	spec := subthreads.DefaultSpec(subthreads.NewOrder)
	spec.Scale = subthreads.Scale{
		Districts: 4, CustomersPerDistrict: 60, Items: 400, OrdersPerDistrict: 30,
	}
	spec.Txns = 2
	spec.Warmup = 1

	seq, _ := subthreads.Run(spec, subthreads.Sequential)
	noSub, _ := subthreads.Run(spec, subthreads.NoSubthread)
	baseline, _ := subthreads.Run(spec, subthreads.Baseline)

	fmt.Printf("sub-threads beat all-or-nothing: %v\n",
		baseline.Speedup(seq) > noSub.Speedup(seq))
	// Output:
	// sub-threads beat all-or-nothing: true
}

// ExampleGenerateSynthetic sweeps a synthetic workload's dependence density.
func ExampleGenerateSynthetic() {
	prog, err := subthreads.GenerateSynthetic(subthreads.SynthParams{
		Threads: 8, ThreadSize: 20000, DepLoads: 4, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	res := subthreads.Simulate(subthreads.DefaultSimConfig(), prog)
	fmt.Printf("committed all %d threads: %v\n", len(prog.Units), res.TLS.Commits == 8)
	// Output:
	// committed all 8 threads: true
}
