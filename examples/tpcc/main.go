// TPC-C example: speculatively parallelize the NEW ORDER transaction —
// the workload that motivates the paper (almost half of TPC-C) — and compare
// the five machine configurations of Figure 5 on it.
package main

import (
	"flag"
	"fmt"

	"subthreads"
	"subthreads/internal/report"
)

func main() {
	benchName := flag.String("benchmark", "NEW ORDER", "TPC-C benchmark to run")
	txns := flag.Int("txns", 6, "measured transactions")
	flag.Parse()

	var bench subthreads.Benchmark = -1
	for _, b := range subthreads.Benchmarks() {
		if b.String() == *benchName {
			bench = b
		}
	}
	if bench < 0 {
		fmt.Println("unknown benchmark; options:")
		for _, b := range subthreads.Benchmarks() {
			fmt.Println(" ", b)
		}
		return
	}

	spec := subthreads.DefaultSpec(bench)
	spec.Txns = *txns

	fmt.Printf("running %s: %d transactions on a single TPC-C warehouse\n\n", bench, spec.Txns)

	experiments := []subthreads.Experiment{
		subthreads.Sequential,
		subthreads.TLSSeq,
		subthreads.NoSubthread,
		subthreads.Baseline,
		subthreads.NoSpeculation,
	}
	var rows []report.Row
	var seq *subthreads.Result
	for _, e := range experiments {
		res, built := subthreads.Run(spec, e)
		switch e {
		case subthreads.Sequential:
			seq = res
		case subthreads.Baseline:
			st := built.Stats
			fmt.Printf("workload: coverage %.0f%%, %.1f speculative threads/txn, avg thread %.0f instrs\n\n",
				st.Coverage*100, st.ThreadsPerTxn, st.AvgThreadSize)
		}
		rows = append(rows, report.Row{Label: e.String(), Result: res})
	}

	fmt.Println(report.Legend())
	fmt.Print(report.BreakdownBars(rows, seq.Cycles, 4, 60))
	fmt.Println()
	fmt.Print(report.SpeedupTable(rows, seq))
	fmt.Println("\nthe BASELINE row (8 sub-threads x 5000 instructions) is the paper's")
	fmt.Println("proposed hardware; NO SPECULATION is its upper bound.")
}
