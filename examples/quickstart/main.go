// Quickstart: the smallest possible demonstration of sub-threads.
//
// Two speculative threads share one cross-thread dependence: thread 1 stores
// to an address late in its execution, and thread 2 loads that address late
// in its own — after having done a lot of independent work. Under
// conventional all-or-nothing TLS the violation rewinds thread 2 to its
// beginning (Figure 1a); with sub-threads it rewinds only to the checkpoint
// before the offending load (Figure 1b).
package main

import (
	"fmt"

	"subthreads"
)

func main() {
	const (
		sharedAddr = subthreads.Addr(0x10000)
		storePC    = subthreads.PC(1)
		loadPC     = subthreads.PC(2)
	)

	// Thread 1: 30k instructions of work, then the store.
	producer := subthreads.NewTraceBuilder()
	producer.ALU(30000)
	producer.Store(storePC, sharedAddr)
	producer.ALU(200)

	// Thread 2: loads the shared value after 25k instructions of
	// independent work, then 8k more.
	consumer := subthreads.NewTraceBuilder()
	consumer.ALU(25000)
	consumer.Load(loadPC, sharedAddr)
	consumer.ALU(8000)

	prog := &subthreads.Program{Units: []subthreads.Unit{
		{Trace: producer.Finish()},
		{Trace: consumer.Finish()},
	}}

	// All-or-nothing TLS: one hardware context per thread.
	allOrNothing := subthreads.DefaultSimConfig()
	allOrNothing.TLS.SubthreadsPerEpoch = 1
	allOrNothing.SubthreadSpacing = 0
	aon := subthreads.Simulate(allOrNothing, prog)

	// Sub-threads: 8 contexts, checkpoint every 5000 speculative
	// instructions (the paper's BASELINE).
	withSub := subthreads.Simulate(subthreads.DefaultSimConfig(), prog)

	fmt.Println("one late cross-thread dependence, two ~30k-instruction threads:")
	fmt.Printf("  all-or-nothing TLS: %6d cycles, %5d instructions rewound\n",
		aon.Cycles, aon.RewoundInstrs)
	fmt.Printf("  with sub-threads:   %6d cycles, %5d instructions rewound\n",
		withSub.Cycles, withSub.RewoundInstrs)
	fmt.Printf("  sub-thread speedup: %.2fx (violations: %d vs %d)\n",
		float64(aon.Cycles)/float64(withSub.Cycles),
		aon.TLS.PrimaryViolations, withSub.TLS.PrimaryViolations)
	fmt.Println()
	fmt.Println("the violated thread rewound to the checkpoint before its load")
	fmt.Println("instead of to its start — Figure 1(b) of the paper.")
}
