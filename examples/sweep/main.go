// Sweep example: map where sub-threads matter.
//
// The paper's framing (§1): conventional all-or-nothing TLS works when
// speculative threads are small or independent; the hard regime — and the
// reason for sub-threads — is large threads with frequent, unpredictable
// dependences. This example sweeps synthetic workloads across both axes and
// prints the all-or-nothing : sub-thread time ratio for each cell.
package main

import (
	"flag"
	"fmt"

	"subthreads"
)

func main() {
	threads := flag.Int("threads", 16, "speculative threads per run")
	seed := flag.Int64("seed", 42, "generation seed")
	flag.Parse()

	sizes := []int{2000, 10000, 60000, 200000}
	deps := []int{0, 2, 8, 24}

	aonCfg := subthreads.DefaultSimConfig()
	aonCfg.TLS.SubthreadsPerEpoch = 1
	aonCfg.SubthreadSpacing = 0
	subCfg := subthreads.DefaultSimConfig()

	fmt.Println("all-or-nothing cycles / sub-thread cycles (>1.00: sub-threads win)")
	fmt.Printf("%12s", "size \\ deps")
	for _, d := range deps {
		fmt.Printf("%8d", d)
	}
	fmt.Println()
	for _, size := range sizes {
		fmt.Printf("%12d", size)
		for _, d := range deps {
			params := subthreads.SynthParams{
				Threads: *threads, ThreadSize: size, DepLoads: d, Seed: *seed,
			}
			progA, err := subthreads.GenerateSynthetic(params)
			if err != nil {
				fmt.Printf("%8s", "-")
				continue
			}
			progS, _ := subthreads.GenerateSynthetic(params)
			aon := subthreads.Simulate(aonCfg, progA)
			sub := subthreads.Simulate(subCfg, progS)
			fmt.Printf("%8.2f", float64(aon.Cycles)/float64(sub.Cycles))
		}
		fmt.Println()
	}
	fmt.Println()
	fmt.Println("small threads: rewinds are cheap, checkpoints buy nothing;")
	fmt.Println("large dependent threads: sub-threads bound the rewind cost.")
}
