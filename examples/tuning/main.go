// Tuning example: the Figure 2 narrative — iterative performance tuning of a
// speculatively-parallelized program.
//
// Part 1 reproduces Figure 2 exactly with two synthetic threads and two
// dependences (*p early, *q late): under all-or-nothing TLS, eliminating the
// early dependence does NOT help (the late one still rewinds everything, and
// the re-execution even starts later); with sub-threads, every dependence
// removed improves performance.
//
// Part 2 runs the same process on the real workload: the NEW ORDER
// transaction across the storage engine's optimization levels (§3.2), using
// the hardware dependence profiler (§3.1) as the guide.
package main

import (
	"fmt"

	"subthreads"
	"subthreads/internal/report"
)

// figure2Program builds thread 1 (stores *p early, *q late) and thread 2
// (loads *p early, *q late). Flags remove each dependence, modeling the
// programmer's tuning edits.
func figure2Program(depP, depQ bool) *subthreads.Program {
	const (
		p = subthreads.Addr(0x1000)
		q = subthreads.Addr(0x2000)
		// Private fallbacks when a dependence is "tuned away".
		p2 = subthreads.Addr(0x11000)
		q2 = subthreads.Addr(0x12000)
	)
	pLoad, qLoad := p2, q2
	if depP {
		pLoad = p
	}
	if depQ {
		qLoad = q
	}

	t1 := subthreads.NewTraceBuilder()
	t1.ALU(20000)
	t1.Store(1, p) // *p = ...
	t1.ALU(4000)
	t1.Store(2, q) // *q = ...
	t1.ALU(2000)

	t2 := subthreads.NewTraceBuilder()
	t2.ALU(4000)
	t2.Load(3, pLoad) // ... = *p (early in thread 2)
	t2.ALU(14000)
	t2.Load(4, qLoad) // ... = *q (late in thread 2)
	t2.ALU(6000)

	return &subthreads.Program{Units: []subthreads.Unit{
		{Trace: t1.Finish()},
		{Trace: t2.Finish()},
	}}
}

func main() {
	fmt.Println("Part 1 — Figure 2: eliminating dependences, with and without sub-threads")
	fmt.Println()

	allOrNothing := subthreads.DefaultSimConfig()
	allOrNothing.TLS.SubthreadsPerEpoch = 1
	allOrNothing.SubthreadSpacing = 0
	withSub := subthreads.DefaultSimConfig()
	withSub.SubthreadSpacing = 2000 // fine-grained checkpoints for small threads

	steps := []struct {
		label      string
		depP, depQ bool
	}{
		{"both dependences (*p and *q)", true, true},
		{"*p eliminated, *q remains   ", false, true},
		{"both eliminated             ", false, false},
	}
	fmt.Printf("%-32s %18s %18s\n", "program version", "all-or-nothing", "with sub-threads")
	var aon0, sub0 uint64
	for i, s := range steps {
		prog := figure2Program(s.depP, s.depQ)
		aon := subthreads.Simulate(allOrNothing, prog)
		sub := subthreads.Simulate(withSub, figure2Program(s.depP, s.depQ))
		if i == 0 {
			aon0, sub0 = aon.Cycles, sub.Cycles
		}
		fmt.Printf("%-32s %10d cycles %11d cycles   (%.2fx / %.2fx)\n",
			s.label, aon.Cycles, sub.Cycles,
			float64(aon0)/float64(aon.Cycles), float64(sub0)/float64(sub.Cycles))
	}
	fmt.Println()
	fmt.Println("without sub-threads, removing the early dependence only delays the")
	fmt.Println("inevitable full rewind (Figure 2a); with sub-threads each removal")
	fmt.Println("gradually improves performance (Figure 2b).")

	fmt.Println()
	fmt.Println("Part 2 — §3.2: profile-guided tuning of NEW ORDER")
	fmt.Println()
	spec := subthreads.DefaultSpec(subthreads.NewOrder)
	spec.Txns = 4
	spec.Warmup = 1
	seq, _ := subthreads.Run(spec, subthreads.Sequential)
	t := report.NewTable("Optimization level", "Speedup", "Violations")
	for lvl := 0; lvl <= 5; lvl++ {
		s := spec
		s.OptLevel = lvl
		res, built := subthreads.RunConfig(s, subthreads.Machine(subthreads.Baseline))
		t.AddRow(fmt.Sprintf("%d", lvl), report.F(res.Speedup(seq), 2),
			report.I(res.TLS.PrimaryViolations+res.TLS.SecondaryViolations))
		if lvl == 0 {
			fmt.Println("profiler output at level 0 (what the programmer tunes from):")
			fmt.Println(res.Pairs.Report(built.PCs, 3))
		}
	}
	fmt.Print(t.String())
}
