// Command tlstrace records a cycle-level telemetry trace of one benchmark
// run and renders it as a Chrome trace-event timeline loadable in
// ui.perfetto.dev (or chrome://tracing): per-CPU lanes of epochs and
// sub-thread contexts, violations as instant events, latch holds and stalls
// as slices. It can also stream the raw event log as JSONL and snapshot the
// metrics layer (violation rewind depth, latch hold cycles, epoch lifetime,
// inter-violation gap) to JSON.
//
// Example:
//
//	tlstrace -benchmark "NEW ORDER" -trace-out t.json
//	tlstrace -benchmark "DELIVERY OUTER" -opt 5 -trace-out t.json -metrics-out m.json
//
// The default optimization level is 0 (the untuned engine), so a default run
// shows the violations §3 teaches the programmer to tune away.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"subthreads/internal/cliflags"
	"subthreads/internal/sim"
	"subthreads/internal/telemetry"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

func main() {
	var (
		benchName   = flag.String("benchmark", "NEW ORDER", "benchmark name")
		expName     = flag.String("experiment", "BASELINE", "machine configuration (see tlssim -list)")
		txns        = flag.Int("txns", 4, "measured transactions")
		warmup      = flag.Int("warmup", 1, "warm-up transactions")
		seed        = flag.Int64("seed", 42, "input seed")
		optLevel    = flag.Int("opt", 0, "database optimization level (0 = unoptimized, shows violations)")
		subthreads  = flag.Int("subthreads", 0, "override sub-thread contexts per thread")
		spacing     = flag.Uint64("spacing", 0, "override speculative instructions per sub-thread")
		eventsOut   = flag.String("events-out", "", "raw event stream JSONL output")
		cacheDir    = cliflags.AddCacheDir(flag.CommandLine)
		showVersion = cliflags.AddVersion(flag.CommandLine)
	)
	faults := cliflags.AddFaults(flag.CommandLine)
	outputs := cliflags.AddOutputs(flag.CommandLine, "trace.json")
	flag.Parse()
	cliflags.HandleVersion(*showVersion)

	// A failed simulation panics with a structured *sim.RunError; report it
	// on one line with the reproducing command and exit non-zero.
	defer func() {
		if p := recover(); p != nil {
			repro := "go run ./cmd/tlstrace " + strings.Join(os.Args[1:], " ")
			fmt.Fprintf(os.Stderr, "tlstrace: fatal: %v | repro: %s\n", p, repro)
			os.Exit(1)
		}
	}()

	bench, err := tpcc.Parse(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var exp workload.Experiment = -1
	for e := workload.Experiment(0); e < workload.NumExperiments; e++ {
		if e.String() == *expName {
			exp = e
		}
	}
	if exp < 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (see tlssim -list)\n", *expName)
		os.Exit(2)
	}

	spec := workload.DefaultSpec(bench)
	spec.Txns = *txns
	spec.Warmup = *warmup
	spec.Seed = *seed
	spec.OptLevel = *optLevel

	cfg := workload.Machine(exp)
	if *subthreads > 0 {
		cfg.TLS.SubthreadsPerEpoch = *subthreads
	}
	if *spacing > 0 {
		cfg.SubthreadSpacing = *spacing
	}
	if err := faults.Apply(&cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
		os.Exit(2)
	}

	// tlstrace always captures the stream and metrics: they feed both the
	// timeline and the printed counts.
	outputs.Demand()
	var jsonl *telemetry.JSONL
	var extra []telemetry.Emitter
	if *eventsOut != "" {
		f, err := os.Create(*eventsOut)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		jsonl = telemetry.NewJSONL(f)
		extra = append(extra, jsonl)
	}
	outputs.Attach(&cfg, extra...)

	store, err := cliflags.OpenStore(*cacheDir, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlstrace: %v\n", err)
		os.Exit(2)
	}
	defer store.Close()
	builder := workload.NewBuilder()
	builder.SetStore(store)

	built := builder.Build(spec, exp.SequentialSoftware())
	res := sim.Run(cfg, built.Program)
	if jsonl != nil {
		if err := jsonl.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if err := outputs.Write(built.PCs.Name); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	metrics := outputs.Metrics()
	fmt.Printf("benchmark %s, %s, opt %d: %d cycles, %d epochs\n",
		bench, exp, *optLevel, res.Cycles, res.EpochCount)
	fmt.Printf("events:    %d (%d primary, %d secondary violations; %d sub-thread starts)\n",
		len(outputs.Events()), metrics.Count(telemetry.PrimaryViolation),
		metrics.Count(telemetry.SecondaryViolation), metrics.Count(telemetry.SubthreadStart))
	fmt.Printf("timeline:  %s  (open in ui.perfetto.dev)\n", outputs.TraceOut)
	if outputs.MetricsOut != "" {
		fmt.Printf("metrics:   %s\n", outputs.MetricsOut)
	}
	if *eventsOut != "" {
		fmt.Printf("events:    %s (JSONL)\n", *eventsOut)
	}
}
