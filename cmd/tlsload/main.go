// Command tlsload is a sustained-load generator for tlsd and tlsrouter.
// It drives the job API through service.Client (the same well-behaved
// retrying client the e2e suites use), with a Zipf-distributed digest
// population so the cache-hit ratio is a dial rather than an accident:
// a handful of hot specs dominate, exactly like a real sweep reissuing
// its popular configurations.
//
//	tlsload -target http://localhost:8090 -duration 30s -concurrency 16 \
//	        -digests 32 -zipf-s 1.2 -out load.json
//
// Closed-loop mode (-rate 0) keeps -concurrency workers saturated —
// measured throughput is the system's capacity. Open-loop mode
// (-rate N) submits N requests/sec regardless of completions, the
// honest way to measure latency under a fixed offered load. Everything
// is deterministic under -seed. The JSON artifact (-out) is what
// scripts/regen-cluster-bench.sh aggregates into BENCH_cluster.json.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"sort"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"subthreads/internal/cliflags"
	"subthreads/internal/service"
	"subthreads/internal/telemetry"
	"subthreads/internal/version"
)

func main() {
	var (
		target      = flag.String("target", "http://127.0.0.1:8090", "base URL of the tlsd or tlsrouter to load")
		duration    = flag.Duration("duration", 30*time.Second, "measured load window")
		concurrency = flag.Int("concurrency", 8, "closed-loop workers (and open-loop in-flight cap)")
		rate        = flag.Float64("rate", 0, "open-loop offered load in requests/sec; 0 = closed loop")
		digests     = flag.Int("digests", 16, "distinct spec population size (each resolves to its own digest)")
		zipfS       = flag.Float64("zipf-s", 1.1, "Zipf skew of digest popularity; 0 = uniform")
		seed        = flag.Uint64("seed", 1, "deterministic sampling seed")
		benchmark   = flag.String("benchmark", "NEW ORDER", "workload for every generated spec")
		txns        = flag.Int("txns", 2, "measured transactions per spec (small keeps cold jobs cheap)")
		warmup      = flag.Int("warmup", 1, "warm-up transactions per spec")
		warm        = flag.Bool("warm", true, "pre-run each distinct spec once before the measured window, so measurement exercises the serving path rather than first-compute")
		out         = flag.String("out", "", "write the JSON report here ('' = stdout summary only)")
		showVersion = cliflags.AddVersion(flag.CommandLine)
	)
	flag.Parse()
	cliflags.HandleVersion(*showVersion)

	if *concurrency < 1 || *digests < 1 {
		fmt.Fprintln(os.Stderr, "tlsload: -concurrency and -digests must be >= 1")
		os.Exit(2)
	}

	specs := make([]service.JobSpec, *digests)
	for i := range specs {
		s := int64(1000 + i) // distinct seeds -> distinct digests
		w := *warmup
		specs[i] = service.JobSpec{Benchmark: *benchmark, Txns: *txns, Warmup: &w, Seed: &s}
	}

	cli := &service.Client{Base: *target, Seed: *seed}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *warm {
		fmt.Fprintf(os.Stderr, "tlsload: warming %d digests against %s\n", *digests, *target)
		for i, spec := range specs {
			if _, err := cli.Do(ctx, spec); err != nil {
				fmt.Fprintf(os.Stderr, "tlsload: warm spec %d: %v\n", i, err)
				os.Exit(1)
			}
		}
	}

	st := newStats()
	popCDF := zipfCDF(*digests, *zipfS)
	deadline := time.Now().Add(*duration)
	runCtx, cancel := context.WithDeadline(ctx, deadline)
	defer cancel()

	start := time.Now()
	mode := "closed"
	if *rate > 0 {
		mode = "open"
		runOpen(runCtx, cli, specs, popCDF, *rate, *concurrency, *seed, st)
	} else {
		runClosed(runCtx, cli, specs, popCDF, *concurrency, *seed, st)
	}
	elapsed := time.Since(start)

	rep := st.report(*target, mode, *concurrency, *rate, elapsed, *digests, *zipfS, *seed)
	printSummary(rep)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "tlsload: %v\n", err)
			os.Exit(1)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			f.Close()
			fmt.Fprintf(os.Stderr, "tlsload: %v\n", err)
			os.Exit(1)
		}
		if err := f.Close(); err != nil {
			fmt.Fprintf(os.Stderr, "tlsload: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("tlsload: wrote %s\n", *out)
	}
}

// runClosed keeps n workers in a submit-wait-submit loop until ctx ends.
func runClosed(ctx context.Context, cli *service.Client, specs []service.JobSpec, cdf []float64, n int, seed uint64, st *stats) {
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			rng := seed*0x9e3779b97f4a7c15 + uint64(worker) + 1
			for ctx.Err() == nil {
				i := sample(cdf, &rng)
				st.one(ctx, cli, specs[i])
			}
		}(w)
	}
	wg.Wait()
}

// runOpen submits at the offered rate regardless of completions; inFlight
// bounds concurrency so a saturated target sheds load (counted) instead
// of accumulating unbounded goroutines.
func runOpen(ctx context.Context, cli *service.Client, specs []service.JobSpec, cdf []float64, rate float64, inFlight int, seed uint64, st *stats) {
	interval := time.Duration(float64(time.Second) / rate)
	if interval <= 0 {
		interval = time.Microsecond
	}
	sem := make(chan struct{}, inFlight*4)
	tick := time.NewTicker(interval)
	defer tick.Stop()
	var wg sync.WaitGroup
	rng := seed*0x9e3779b97f4a7c15 + 0xdeadbeef
	for {
		select {
		case <-ctx.Done():
			wg.Wait()
			return
		case <-tick.C:
			i := sample(cdf, &rng)
			select {
			case sem <- struct{}{}:
				wg.Add(1)
				go func(spec service.JobSpec) {
					defer wg.Done()
					defer func() { <-sem }()
					st.one(ctx, cli, spec)
				}(specs[i])
			default:
				st.shed.Add(1)
			}
		}
	}
}

// stats accumulates the measured window. Counters are atomic; the
// histograms (not thread-safe by design) are guarded by mu.
type stats struct {
	requests, errors, shed           atomic.Uint64
	hits, misses, dedup              atomic.Uint64
	tierMemory, tierDisk, tierRemote atomic.Uint64
	retries                          atomic.Uint64

	mu       sync.Mutex
	all      telemetry.Histogram
	hitHist  telemetry.Histogram
	missHist telemetry.Histogram
	samples  []float64 // latency ms, for percentiles
}

func newStats() *stats { return &stats{} }

// one performs a single submission and classifies the outcome.
func (st *stats) one(ctx context.Context, cli *service.Client, spec service.JobSpec) {
	t0 := time.Now()
	res, err := cli.Do(ctx, spec)
	dur := time.Since(t0)
	if err != nil {
		if ctx.Err() == nil {
			st.errors.Add(1)
		}
		return
	}
	st.requests.Add(1)
	if res.Attempts > 1 {
		st.retries.Add(uint64(res.Attempts - 1))
	}
	hit := false
	switch res.Cache {
	case "hit":
		st.hits.Add(1)
		hit = true
	case "dedup":
		st.dedup.Add(1)
	default:
		st.misses.Add(1)
	}
	switch res.Tier {
	case service.TierMemory:
		st.tierMemory.Add(1)
	case service.TierDisk:
		st.tierDisk.Add(1)
	case service.TierRemote:
		st.tierRemote.Add(1)
	}
	us := uint64(dur.Microseconds())
	st.mu.Lock()
	st.all.Observe(us)
	if hit {
		st.hitHist.Observe(us)
	} else {
		st.missHist.Observe(us)
	}
	st.samples = append(st.samples, float64(dur.Microseconds())/1000)
	st.mu.Unlock()
}

// Report is the tlsload JSON artifact; regen-cluster-bench.sh aggregates
// one per topology into BENCH_cluster.json.
type Report struct {
	// Host records what machine and toolchain produced the numbers.
	Host version.HostInfo `json:"host"`

	Target          string  `json:"target"`
	Mode            string  `json:"mode"`
	Concurrency     int     `json:"concurrency"`
	RateTarget      float64 `json:"rate_target,omitempty"`
	DurationSeconds float64 `json:"duration_seconds"`
	Digests         int     `json:"digests"`
	ZipfS           float64 `json:"zipf_s"`
	Seed            uint64  `json:"seed"`

	Requests   uint64  `json:"requests"`
	Errors     uint64  `json:"errors"`
	Shed       uint64  `json:"shed"`
	Retries    uint64  `json:"retries"`
	Throughput float64 `json:"throughput_jobs_per_sec"`

	Hits     uint64  `json:"cache_hits"`
	Misses   uint64  `json:"cache_misses"`
	Dedup    uint64  `json:"cache_dedup"`
	HitRatio float64 `json:"cache_hit_ratio"`

	TierMemory uint64 `json:"tier_memory"`
	TierDisk   uint64 `json:"tier_disk"`
	TierRemote uint64 `json:"tier_remote"`

	LatencyP50Millis float64 `json:"latency_p50_ms"`
	LatencyP90Millis float64 `json:"latency_p90_ms"`
	LatencyP99Millis float64 `json:"latency_p99_ms"`

	LatencyMicros     telemetry.HistogramSnapshot `json:"latency_micros"`
	HitLatencyMicros  telemetry.HistogramSnapshot `json:"hit_latency_micros"`
	MissLatencyMicros telemetry.HistogramSnapshot `json:"miss_latency_micros"`
}

func (st *stats) report(target, mode string, conc int, rate float64, elapsed time.Duration, digests int, zipfS float64, seed uint64) Report {
	st.mu.Lock()
	defer st.mu.Unlock()
	r := Report{
		Host:   version.Host(),
		Target: target, Mode: mode, Concurrency: conc, RateTarget: rate,
		DurationSeconds: elapsed.Seconds(), Digests: digests, ZipfS: zipfS, Seed: seed,
		Requests: st.requests.Load(), Errors: st.errors.Load(), Shed: st.shed.Load(),
		Retries: st.retries.Load(),
		Hits:    st.hits.Load(), Misses: st.misses.Load(), Dedup: st.dedup.Load(),
		TierMemory: st.tierMemory.Load(), TierDisk: st.tierDisk.Load(), TierRemote: st.tierRemote.Load(),
		LatencyMicros:     st.all.Snapshot(),
		HitLatencyMicros:  st.hitHist.Snapshot(),
		MissLatencyMicros: st.missHist.Snapshot(),
	}
	if elapsed > 0 {
		r.Throughput = float64(r.Requests) / elapsed.Seconds()
	}
	if total := r.Hits + r.Misses + r.Dedup; total > 0 {
		r.HitRatio = float64(r.Hits+r.Dedup) / float64(total)
	}
	if len(st.samples) > 0 {
		sorted := append([]float64(nil), st.samples...)
		sort.Float64s(sorted)
		r.LatencyP50Millis = percentile(sorted, 0.50)
		r.LatencyP90Millis = percentile(sorted, 0.90)
		r.LatencyP99Millis = percentile(sorted, 0.99)
	}
	return r
}

func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)-1))
	return sorted[i]
}

func printSummary(r Report) {
	fmt.Printf("tlsload: %s mode against %s\n", r.Mode, r.Target)
	fmt.Printf("  %d ok, %d errors, %d shed in %.1fs -> %.1f jobs/sec\n",
		r.Requests, r.Errors, r.Shed, r.DurationSeconds, r.Throughput)
	fmt.Printf("  cache: %d hit / %d dedup / %d miss (ratio %.3f); tiers: %d memory, %d disk, %d remote\n",
		r.Hits, r.Dedup, r.Misses, r.HitRatio, r.TierMemory, r.TierDisk, r.TierRemote)
	fmt.Printf("  latency ms: p50 %.2f  p90 %.2f  p99 %.2f\n",
		r.LatencyP50Millis, r.LatencyP90Millis, r.LatencyP99Millis)
}

// zipfCDF precomputes the popularity CDF over ranks 1..n with exponent s
// (s=0 degenerates to uniform). Rank 0 is the hottest digest.
func zipfCDF(n int, s float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := 0; i < n; i++ {
		w[i] = 1 / math.Pow(float64(i+1), s)
		total += w[i]
	}
	cdf := make([]float64, n)
	acc := 0.0
	for i := 0; i < n; i++ {
		acc += w[i] / total
		cdf[i] = acc
	}
	cdf[n-1] = 1
	return cdf
}

// sample draws a rank from the CDF using the splitmix64 step (the repo's
// shared deterministic-randomness idiom).
func sample(cdf []float64, rng *uint64) int {
	*rng += 0x9e3779b97f4a7c15
	z := *rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	u := float64(z>>11) / float64(1<<53)
	i := sort.SearchFloat64s(cdf, u)
	if i >= len(cdf) {
		i = len(cdf) - 1
	}
	return i
}
