// Command tlsrouter fronts a fleet of tlsd workers with one address. It
// speaks the daemon's own HTTP API, routes each submission to the worker
// that owns its content digest on a bounded-load consistent-hash ring
// (so repeated specs land on warm caches), health-probes the fleet, and
// rescues submissions whose owner is down — first from sibling replicas'
// caches, then by failover recompute.
//
//	tlsrouter -addr :8090 -workers http://10.0.0.1:8080,http://10.0.0.2:8080
//	curl -s -X POST localhost:8090/v1/jobs?wait=1 \
//	     -d '{"benchmark":"NEW ORDER","txns":4,"warmup":1}'
//
// The router is stateless apart from a bounded job->worker map; clients
// see the same responses, headers, and byte-identical result bodies a
// single tlsd would serve. See SERVICE.md ("Running a cluster").
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"subthreads/internal/cliflags"
	"subthreads/internal/cluster"
	"subthreads/internal/version"
)

func main() {
	var (
		addr           = flag.String("addr", "127.0.0.1:8090", "HTTP listen address")
		workers        = flag.String("workers", "", "comma-separated tlsd base URLs (required), e.g. http://10.0.0.1:8080,http://10.0.0.2:8080")
		vnodes         = flag.Int("vnodes", 128, "virtual nodes per worker on the consistent-hash ring")
		loadFactor     = flag.Float64("load-factor", 1.25, "bounded-load slack over a perfectly fair share (>= 1)")
		probeInterval  = flag.Duration("probe-interval", 2*time.Second, "interval between /healthz probe rounds")
		probeTimeout   = flag.Duration("probe-timeout", time.Second, "timeout per health probe")
		probeThreshold = flag.Int("probe-threshold", 3, "consecutive probe failures that eject a worker from the ring")
		logFormat      = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel       = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		showVersion    = cliflags.AddVersion(flag.CommandLine)
	)
	flag.Parse()
	cliflags.HandleVersion(*showVersion)

	urls := splitWorkers(*workers)
	if len(urls) == 0 {
		fmt.Fprintln(os.Stderr, "tlsrouter: -workers is required (comma-separated tlsd base URLs)")
		os.Exit(2)
	}

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsrouter: %v\n", err)
		os.Exit(2)
	}

	rt, err := cluster.NewRouter(cluster.Options{
		Workers:    urls,
		VNodes:     *vnodes,
		LoadFactor: *loadFactor,
		Probe: cluster.ProberOptions{
			Interval:  *probeInterval,
			Timeout:   *probeTimeout,
			Threshold: *probeThreshold,
		},
		Logger: logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsrouter: %v\n", err)
		os.Exit(2)
	}
	rt.Start()
	defer rt.Close()

	srv := &http.Server{Addr: *addr, Handler: rt.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	fmt.Printf("tlsrouter: %s\n", version.Get())
	fmt.Printf("tlsrouter: routing on http://%s over %d workers (vnodes %d, load factor %.2f)\n",
		*addr, len(urls), *vnodes, *loadFactor)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "tlsrouter: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}
	fmt.Println("tlsrouter: shutting down")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "tlsrouter: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("tlsrouter: bye")
}

// splitWorkers parses the -workers list: comma-separated base URLs,
// trailing slashes trimmed so URL concatenation stays uniform.
func splitWorkers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		u := strings.TrimRight(strings.TrimSpace(part), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

// newLogger builds the router's structured logger on stderr (same
// discipline as tlsd: logs never mix with stdout status lines).
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %v", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}
