package main

import (
	"strings"
	"testing"

	"subthreads/internal/inject"
)

// TestInjectedOutputDeterministicAcrossJ pins the -inject determinism
// contract: because every simulation gets a FRESH injector seeded from the
// same spec (runner.apply), the fault schedule each task sees depends only on
// the task, never on which worker ran it or in what order — so the rendered
// report is byte-identical for every -j.
func TestInjectedOutputDeterministicAcrossJ(t *testing.T) {
	icfg, err := inject.Parse("seed=9,faults=8,window=40000")
	if err != nil {
		t.Fatal(err)
	}
	render := func(jobs int) string {
		o := tinyOptions()
		r := newRunner(jobs)
		r.paranoid = true
		r.injectCfg = &icfg
		o.par = r
		var b strings.Builder
		runFigure4(&b, o)
		if r.Failures() > 0 {
			t.Fatalf("j=%d: %d injected tasks failed outright", jobs, r.Failures())
		}
		return b.String()
	}
	serial := render(1)
	parallel := render(4)
	if serial != parallel {
		t.Errorf("injected run output differs between -j 1 and -j 4:\n--- j=1 ---\n%s\n--- j=4 ---\n%s",
			serial, parallel)
	}
	if !strings.Contains(serial, "FIGURE 4") {
		t.Errorf("injected run produced no report:\n%s", serial)
	}
}
