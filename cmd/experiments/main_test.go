package main

import (
	"strings"
	"testing"

	"subthreads/internal/tpcc"
)

func tinyOptions() options {
	return options{txns: 1, warmup: 1, seed: 7, bench: "NEW ORDER"}
}

func TestPrintTable1(t *testing.T) {
	var b strings.Builder
	printTable1(&b, tinyOptions())
	out := b.String()
	for _, want := range []string{
		"Issue width", "GShare", "2MB", "64 entry", "75 cycles",
		"Sub-thread contexts per thread", "5000",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 missing %q:\n%s", want, out)
		}
	}
}

func TestBenchmarkFilter(t *testing.T) {
	o := tinyOptions()
	got := o.benchmarks(tpcc.All())
	if len(got) != 1 || got[0] != tpcc.NewOrder {
		t.Errorf("filter = %v", got)
	}
	o.bench = ""
	if len(o.benchmarks(tpcc.All())) != len(tpcc.All()) {
		t.Error("empty filter must pass everything through")
	}
}

func TestSpecConstruction(t *testing.T) {
	o := tinyOptions()
	spec := o.spec(tpcc.StockLevel)
	if spec.Txns != 1 || spec.Warmup != 1 || spec.Seed != 7 {
		t.Errorf("spec = %+v", spec)
	}
	o.paper = true
	if o.spec(tpcc.StockLevel).Scale != tpcc.PaperScale() {
		t.Error("-paper did not select the full scale")
	}
}

// TestFigure4Runs exercises one full experiment function end to end with a
// minimal workload, validating the rendering path.
func TestFigure4Runs(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three simulations")
	}
	var b strings.Builder
	runFigure4(&b, tinyOptions())
	out := b.String()
	if !strings.Contains(out, "start table ON") || !strings.Contains(out, "start table OFF") {
		t.Errorf("figure 4 output malformed:\n%s", out)
	}
}

// TestVictimRuns exercises the victim sweep rendering with one benchmark.
func TestVictimRuns(t *testing.T) {
	if testing.Short() {
		t.Skip("runs several simulations")
	}
	o := tinyOptions()
	o.bench = "NEW ORDER 150"
	var b strings.Builder
	runVictim(&b, o)
	if !strings.Contains(b.String(), "Victim entries") {
		t.Errorf("victim output malformed:\n%s", b.String())
	}
}
