package main

import (
	"fmt"
	"io"
	"time"

	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/synth"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

// runSweep maps the paper's framing claim (§1) over a synthetic space:
// conventional all-or-nothing TLS suffices for small or independent threads;
// large threads with frequent dependences need sub-threads. Each cell is the
// ratio of all-or-nothing time to sub-thread time (>1 means sub-threads win).
func runSweep(w io.Writer, o options) {
	header(w, "§1 SWEEP: when do sub-threads matter? (synthetic threads)")
	fmt.Fprintln(w, "cells: all-or-nothing cycles / sub-thread cycles (>1.00 means sub-threads win)")
	sizes := []int{2000, 10000, 60000, 200000}
	depCounts := []int{0, 2, 8, 24}
	r := o.runner()
	start := time.Now()
	// Each cell is an independent pair of synthetic simulations; the cell
	// renders to its final string right in the worker.
	cells := parDo(r, len(sizes)*len(depCounts), func(i int) string {
		size := sizes[i/len(depCounts)]
		deps := depCounts[i%len(depCounts)]
		if deps*40 > size {
			return "-"
		}
		params := synth.Params{Threads: 16, ThreadSize: size, DepLoads: deps, Seed: o.seed}
		aonCfg := sim.DefaultConfig()
		aonCfg.SubthreadSpacing = 0
		aonCfg.TLS.SubthreadsPerEpoch = 1
		aon := sim.Run(aonCfg, synth.MustGenerate(params))
		sub := sim.Run(sim.DefaultConfig(), synth.MustGenerate(params))
		return fmt.Sprintf("%.2f", float64(aon.Cycles)/float64(sub.Cycles))
	})
	t := report.NewTable(append([]string{"thread size \\ dep loads"},
		func() []string {
			var hs []string
			for _, d := range depCounts {
				hs = append(hs, fmt.Sprintf("%d", d))
			}
			return hs
		}()...)...)
	for si, size := range sizes {
		row := []string{fmt.Sprintf("%d", size)}
		row = append(row, cells[si*len(depCounts):(si+1)*len(depCounts)]...)
		t.AddRow(row...)
	}
	fmt.Fprint(w, t.String())
	progress("sweep", 2*len(cells), start, r)
	fmt.Fprintln(w, "\nsmall threads: checkpoints are near-useless (rewinds are cheap anyway);")
	fmt.Fprintln(w, "large dependent threads: sub-threads bound the rewind cost — the paper's thesis.")
}

// runSpawn compares sub-thread placement policies (§5.1): the paper's
// periodic strategy, its suggested adaptive sizing (thread size divided
// evenly into contexts), and predictor-guided placement before troublesome
// loads (with which "supporting 2 sub-threads per thread would be
// sufficient").
func runSpawn(w io.Writer, o options) {
	header(w, "§5.1 ABLATION: sub-thread placement policies")
	type policy struct {
		label string
		cfg   func() sim.Config
	}
	policies := []policy{
		{"periodic 5000 x8 (BASELINE)", func() sim.Config {
			return workload.Machine(workload.Baseline)
		}},
		{"adaptive size/8", func() sim.Config {
			cfg := workload.Machine(workload.Baseline)
			cfg.Spawn = sim.SpawnAdaptive
			return cfg
		}},
		{"predictor-guided x8", func() sim.Config {
			cfg := workload.Machine(workload.Baseline)
			cfg.Spawn = sim.SpawnPredictor
			return cfg
		}},
		{"predictor-guided x2", func() sim.Config {
			cfg := workload.Machine(workload.Baseline)
			cfg.Spawn = sim.SpawnPredictor
			cfg.TLS.SubthreadsPerEpoch = 2
			return cfg
		}},
	}
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks(tpcc.TLSProfitable())
	perB := 1 + len(policies)
	flat := parDo(r, len(benches)*perB, func(i int) runOut {
		b := benches[i/perB]
		if k := i % perB; k > 0 {
			return r.runConfig(o.spec(b), policies[k-1].cfg())
		}
		return r.run(o.spec(b), workload.Sequential)
	})
	for bi, b := range benches {
		seq := flat[bi*perB].res
		t := report.NewTable("Placement policy", "Speedup", "Sub-threads started", "Rewound instrs")
		for pi, p := range policies {
			res := flat[bi*perB+1+pi].res
			t.AddRow(p.label, report.F(res.Speedup(seq), 2),
				report.I(res.TLS.SubthreadStarts), report.I(res.RewoundInstrs))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
	progress("spawn", len(flat), start, r)
}

// runL1Track reproduces the §2.2 negative result: extending the L1 caches to
// track sub-threads (so violations invalidate fewer lines) is "not
// worthwhile".
func runL1Track(w io.Writer, o options) {
	header(w, "§2.2 ABLATION: L1 sub-thread tracking")
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder, tpcc.NewOrder150})
	flat := parDo(r, 3*len(benches), func(i int) runOut {
		b := benches[i/3]
		if i%3 == 0 {
			return r.run(o.spec(b), workload.Sequential)
		}
		cfg := workload.Machine(workload.Baseline)
		cfg.L1SubthreadTracking = i%3 == 2
		return r.runConfig(o.spec(b), cfg)
	})
	for bi, b := range benches {
		seq := flat[3*bi].res
		t := report.NewTable("L1 tracking", "Speedup", "L1 invalidations", "L1 misses")
		for oi, on := range []bool{false, true} {
			res := flat[3*bi+1+oi].res
			label := "off (paper design)"
			if on {
				label = "on (per-sub-thread)"
			}
			t.AddRow(label, report.F(res.Speedup(seq), 2),
				report.I(res.L1Invalidations), report.I(res.L1Misses))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
	progress("l1track", len(flat), start, r)
}

// runMLP quantifies the blocking-loads simplification of the core model: the
// paper's cores are out of order and can overlap one miss with the reorder
// buffer's worth of work; the calibrated baseline here blocks on misses. The
// comparison shows the relative results are insensitive to the choice.
func runMLP(w io.Writer, o options) {
	header(w, "CORE-MODEL ABLATION: blocking vs non-blocking loads")
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder, tpcc.StockLevel})
	// Per benchmark: (blocking, non-blocking) x (SEQUENTIAL, BASELINE).
	flat := parDo(r, 4*len(benches), func(i int) runOut {
		b := benches[i/4]
		mlp := i%4 >= 2
		if i%2 == 0 {
			seqCfg := workload.Machine(workload.Sequential)
			seqCfg.NonBlockingLoads = mlp
			return r.runSeqConfig(o.spec(b), seqCfg)
		}
		baseCfg := workload.Machine(workload.Baseline)
		baseCfg.NonBlockingLoads = mlp
		return r.runConfig(o.spec(b), baseCfg)
	})
	for bi, b := range benches {
		t := report.NewTable("Core model", "SEQUENTIAL Mcycles", "BASELINE speedup")
		for mi, mlp := range []bool{false, true} {
			seq := flat[4*bi+2*mi].res
			base := flat[4*bi+2*mi+1].res
			label := "blocking loads (default)"
			if mlp {
				label = "non-blocking (ROB run-ahead)"
			}
			t.AddRow(label, report.F(float64(seq.Cycles)/1e6, 2), report.F(base.Speedup(seq), 2))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
	progress("mlp", len(flat), start, r)
}

// runICache quantifies the instruction-cache simplification: the paper's
// Table 1 includes a 32KB L1 instruction cache; the calibrated baseline here
// omits it (recorded traces carry no code addresses), and this ablation runs
// with a synthesized fetch stream over per-site code footprints to show the
// effect on absolute time and on the relative results.
func runICache(w io.Writer, o options) {
	header(w, "CORE-MODEL ABLATION: instruction cache")
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder, tpcc.StockLevel})
	flat := parDo(r, 4*len(benches), func(i int) runOut {
		b := benches[i/4]
		on := i%4 >= 2
		if i%2 == 0 {
			seqCfg := workload.Machine(workload.Sequential)
			seqCfg.Mem.ModelICache = on
			return r.runSeqConfig(o.spec(b), seqCfg)
		}
		baseCfg := workload.Machine(workload.Baseline)
		baseCfg.Mem.ModelICache = on
		return r.runConfig(o.spec(b), baseCfg)
	})
	for bi, b := range benches {
		t := report.NewTable("I-cache", "SEQUENTIAL Mcycles", "BASELINE speedup", "I-miss rate")
		for oi, on := range []bool{false, true} {
			seq := flat[4*bi+2*oi].res
			base := flat[4*bi+2*oi+1].res
			label := "off (default)"
			rate := "-"
			if on {
				label = "on (32KB, 4-way)"
				total := base.L1IHits + base.L1IMisses
				if total > 0 {
					rate = fmt.Sprintf("%.1f%%", 100*float64(base.L1IMisses)/float64(total))
				}
			}
			t.AddRow(label, report.F(float64(seq.Cycles)/1e6, 2), report.F(base.Speedup(seq), 2), rate)
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
	progress("icache", len(flat), start, r)
}

// runCheckpointCost sweeps the register-backup cost of starting a
// sub-thread. The paper models zero cycles (shadow register files) and notes
// memory backup as the slow alternative (§2.2); this shows how much slack
// the mechanism has.
func runCheckpointCost(w io.Writer, o options) {
	header(w, "§2.2 ABLATION: register-checkpoint (sub-thread start) cost")
	costs := []uint64{0, 10, 50, 200, 1000}
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder150})
	perB := 1 + len(costs)
	flat := parDo(r, len(benches)*perB, func(i int) runOut {
		b := benches[i/perB]
		k := i % perB
		if k == 0 {
			return r.run(o.spec(b), workload.Sequential)
		}
		cfg := workload.Machine(workload.Baseline)
		cfg.RegBackupPenalty = costs[k-1]
		return r.runConfig(o.spec(b), cfg)
	})
	for bi, b := range benches {
		seq := flat[bi*perB].res
		t := report.NewTable("Backup cycles", "Speedup", "Sub-threads started")
		for ci, cost := range costs {
			res := flat[bi*perB+1+ci].res
			t.AddRow(fmt.Sprintf("%d", cost), report.F(res.Speedup(seq), 2),
				report.I(res.TLS.SubthreadStarts))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
	progress("checkpoint-cost", len(flat), start, r)
}
