package main

import (
	"fmt"
	"io"

	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/synth"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

// runSweep maps the paper's framing claim (§1) over a synthetic space:
// conventional all-or-nothing TLS suffices for small or independent threads;
// large threads with frequent dependences need sub-threads. Each cell is the
// ratio of all-or-nothing time to sub-thread time (>1 means sub-threads win).
func runSweep(w io.Writer, o options) {
	header(w, "§1 SWEEP: when do sub-threads matter? (synthetic threads)")
	fmt.Fprintln(w, "cells: all-or-nothing cycles / sub-thread cycles (>1.00 means sub-threads win)")
	sizes := []int{2000, 10000, 60000, 200000}
	depCounts := []int{0, 2, 8, 24}
	t := report.NewTable(append([]string{"thread size \\ dep loads"},
		func() []string {
			var hs []string
			for _, d := range depCounts {
				hs = append(hs, fmt.Sprintf("%d", d))
			}
			return hs
		}()...)...)
	for _, size := range sizes {
		row := []string{fmt.Sprintf("%d", size)}
		for _, deps := range depCounts {
			if deps*40 > size {
				row = append(row, "-")
				continue
			}
			params := synth.Params{Threads: 16, ThreadSize: size, DepLoads: deps, Seed: o.seed}
			aonCfg := sim.DefaultConfig()
			aonCfg.SubthreadSpacing = 0
			aonCfg.TLS.SubthreadsPerEpoch = 1
			aon := sim.Run(aonCfg, synth.MustGenerate(params))
			sub := sim.Run(sim.DefaultConfig(), synth.MustGenerate(params))
			row = append(row, fmt.Sprintf("%.2f", float64(aon.Cycles)/float64(sub.Cycles)))
		}
		t.AddRow(row...)
	}
	fmt.Fprint(w, t.String())
	fmt.Fprintln(w, "\nsmall threads: checkpoints are near-useless (rewinds are cheap anyway);")
	fmt.Fprintln(w, "large dependent threads: sub-threads bound the rewind cost — the paper's thesis.")
}

// runSpawn compares sub-thread placement policies (§5.1): the paper's
// periodic strategy, its suggested adaptive sizing (thread size divided
// evenly into contexts), and predictor-guided placement before troublesome
// loads (with which "supporting 2 sub-threads per thread would be
// sufficient").
func runSpawn(w io.Writer, o options) {
	header(w, "§5.1 ABLATION: sub-thread placement policies")
	type policy struct {
		label string
		cfg   func() sim.Config
	}
	policies := []policy{
		{"periodic 5000 x8 (BASELINE)", func() sim.Config {
			return workload.Machine(workload.Baseline)
		}},
		{"adaptive size/8", func() sim.Config {
			cfg := workload.Machine(workload.Baseline)
			cfg.Spawn = sim.SpawnAdaptive
			return cfg
		}},
		{"predictor-guided x8", func() sim.Config {
			cfg := workload.Machine(workload.Baseline)
			cfg.Spawn = sim.SpawnPredictor
			return cfg
		}},
		{"predictor-guided x2", func() sim.Config {
			cfg := workload.Machine(workload.Baseline)
			cfg.Spawn = sim.SpawnPredictor
			cfg.TLS.SubthreadsPerEpoch = 2
			return cfg
		}},
	}
	for _, b := range o.benchmarks(tpcc.TLSProfitable()) {
		seq, _ := workload.Run(o.spec(b), workload.Sequential)
		t := report.NewTable("Placement policy", "Speedup", "Sub-threads started", "Rewound instrs")
		for _, p := range policies {
			res, _ := workload.RunConfig(o.spec(b), p.cfg())
			t.AddRow(p.label, report.F(res.Speedup(seq), 2),
				report.I(res.TLS.SubthreadStarts), report.I(res.RewoundInstrs))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
}

// runL1Track reproduces the §2.2 negative result: extending the L1 caches to
// track sub-threads (so violations invalidate fewer lines) is "not
// worthwhile".
func runL1Track(w io.Writer, o options) {
	header(w, "§2.2 ABLATION: L1 sub-thread tracking")
	for _, b := range o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder, tpcc.NewOrder150}) {
		seq, _ := workload.Run(o.spec(b), workload.Sequential)
		t := report.NewTable("L1 tracking", "Speedup", "L1 invalidations", "L1 misses")
		for _, on := range []bool{false, true} {
			cfg := workload.Machine(workload.Baseline)
			cfg.L1SubthreadTracking = on
			res, _ := workload.RunConfig(o.spec(b), cfg)
			label := "off (paper design)"
			if on {
				label = "on (per-sub-thread)"
			}
			t.AddRow(label, report.F(res.Speedup(seq), 2),
				report.I(res.L1Invalidations), report.I(res.L1Misses))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
}

// runMLP quantifies the blocking-loads simplification of the core model: the
// paper's cores are out of order and can overlap one miss with the reorder
// buffer's worth of work; the calibrated baseline here blocks on misses. The
// comparison shows the relative results are insensitive to the choice.
func runMLP(w io.Writer, o options) {
	header(w, "CORE-MODEL ABLATION: blocking vs non-blocking loads")
	for _, b := range o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder, tpcc.StockLevel}) {
		t := report.NewTable("Core model", "SEQUENTIAL Mcycles", "BASELINE speedup")
		for _, mlp := range []bool{false, true} {
			seqCfg := workload.Machine(workload.Sequential)
			seqCfg.NonBlockingLoads = mlp
			seqBuilt := workload.Build(o.spec(b), true)
			seq := sim.Run(seqCfg, seqBuilt.Program)
			baseCfg := workload.Machine(workload.Baseline)
			baseCfg.NonBlockingLoads = mlp
			base, _ := workload.RunConfig(o.spec(b), baseCfg)
			label := "blocking loads (default)"
			if mlp {
				label = "non-blocking (ROB run-ahead)"
			}
			t.AddRow(label, report.F(float64(seq.Cycles)/1e6, 2), report.F(base.Speedup(seq), 2))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
}

// runICache quantifies the instruction-cache simplification: the paper's
// Table 1 includes a 32KB L1 instruction cache; the calibrated baseline here
// omits it (recorded traces carry no code addresses), and this ablation runs
// with a synthesized fetch stream over per-site code footprints to show the
// effect on absolute time and on the relative results.
func runICache(w io.Writer, o options) {
	header(w, "CORE-MODEL ABLATION: instruction cache")
	for _, b := range o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder, tpcc.StockLevel}) {
		t := report.NewTable("I-cache", "SEQUENTIAL Mcycles", "BASELINE speedup", "I-miss rate")
		for _, on := range []bool{false, true} {
			seqCfg := workload.Machine(workload.Sequential)
			seqCfg.Mem.ModelICache = on
			seqBuilt := workload.Build(o.spec(b), true)
			seq := sim.Run(seqCfg, seqBuilt.Program)
			baseCfg := workload.Machine(workload.Baseline)
			baseCfg.Mem.ModelICache = on
			base, _ := workload.RunConfig(o.spec(b), baseCfg)
			label := "off (default)"
			rate := "-"
			if on {
				label = "on (32KB, 4-way)"
				total := base.L1IHits + base.L1IMisses
				if total > 0 {
					rate = fmt.Sprintf("%.1f%%", 100*float64(base.L1IMisses)/float64(total))
				}
			}
			t.AddRow(label, report.F(float64(seq.Cycles)/1e6, 2), report.F(base.Speedup(seq), 2), rate)
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
}

// runCheckpointCost sweeps the register-backup cost of starting a
// sub-thread. The paper models zero cycles (shadow register files) and notes
// memory backup as the slow alternative (§2.2); this shows how much slack
// the mechanism has.
func runCheckpointCost(w io.Writer, o options) {
	header(w, "§2.2 ABLATION: register-checkpoint (sub-thread start) cost")
	for _, b := range o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder150}) {
		seq, _ := workload.Run(o.spec(b), workload.Sequential)
		t := report.NewTable("Backup cycles", "Speedup", "Sub-threads started")
		for _, cost := range []uint64{0, 10, 50, 200, 1000} {
			cfg := workload.Machine(workload.Baseline)
			cfg.RegBackupPenalty = cost
			res, _ := workload.RunConfig(o.spec(b), cfg)
			t.AddRow(fmt.Sprintf("%d", cost), report.F(res.Speedup(seq), 2),
				report.I(res.TLS.SubthreadStarts))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
}
