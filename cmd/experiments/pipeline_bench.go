package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"subthreads/internal/sim"
	"subthreads/internal/tpcc"
	"subthreads/internal/version"
	"subthreads/internal/workload"
)

// pipelineBench is the schema of the BENCH_pipeline.json artifact: the
// experiment pipeline's wall-clock at -j 1 vs -j N (same machine, same
// inputs), the build cache's effectiveness, and the simulator's allocation
// rate. Regenerate with scripts/regen-pipeline-bench.sh.
type pipelineBench struct {
	Host     version.HostInfo `json:"host"`
	Workload struct {
		Txns   int    `json:"txns"`
		Warmup int    `json:"warmup"`
		Seed   int64  `json:"seed"`
		Suite  string `json:"suite"`
	} `json:"workload"`
	Suite struct {
		J1Seconds       float64 `json:"j1_seconds"`
		JN              int     `json:"jn"`
		JNSeconds       float64 `json:"jn_seconds"`
		Speedup         float64 `json:"speedup"`
		IdenticalOutput bool    `json:"identical_output"`
		// Simulations is the number of simulation tasks the suite issued;
		// SimsRun / SimsForked / SimsMemoized split them by how they were
		// satisfied: executed in full, forked from a shared prefix
		// checkpoint, or served from the exact-run memo. The split is
		// measured at -j 1 and identical at every -j.
		Simulations  int `json:"simulations"`
		SimsRun      int `json:"sims_run"`
		SimsForked   int `json:"sims_forked"`
		SimsMemoized int `json:"sims_memoized"`
		BuildsJ1     int `json:"builds_j1"`
		BuildsJN     int `json:"builds_jn"`
		MemoryHitsJ1 int `json:"memory_hits_j1"`
		MemoryHitsJN int `json:"memory_hits_jn"`
		DiskHitsJ1   int `json:"disk_hits_j1"`
		DiskHitsJN   int `json:"disk_hits_jn"`
	} `json:"suite"`
	Sim struct {
		Bench          string  `json:"bench"`
		Epochs         int     `json:"epochs"`
		AllocsPerEpoch float64 `json:"allocs_per_epoch"`
		BytesPerEpoch  float64 `json:"bytes_per_epoch"`
	} `json:"sim"`
}

// pipelineSuite runs the benchmark suite (the two figure generators whose
// sweeps dominate -all) on a fresh runner with the given worker count.
func pipelineSuite(o options, jobs int) (out string, r *runner, elapsed time.Duration) {
	r = newRunner(jobs)
	o.par = r
	var buf bytes.Buffer
	start := time.Now()
	runFigure5(&buf, o)
	runFigure6(&buf, o)
	elapsed = time.Since(start)
	return buf.String(), r, elapsed
}

// runPipelineBench measures the pipeline and writes the JSON artifact.
func runPipelineBench(path string, o options) error {
	jn := o.par.jobs
	var b pipelineBench
	b.Host = version.Host()
	b.Workload.Txns = o.txns
	b.Workload.Warmup = o.warmup
	b.Workload.Seed = o.seed
	b.Workload.Suite = "figure5+figure6"

	fmt.Fprintf(os.Stderr, "pipeline-bench: suite at -j 1...\n")
	out1, r1, t1 := pipelineSuite(o, 1)
	fmt.Fprintf(os.Stderr, "pipeline-bench: suite at -j %d...\n", jn)
	outN, rN, tN := pipelineSuite(o, jn)
	stats1, statsN := r1.builder.Stats(), rN.builder.Stats()

	b.Suite.J1Seconds = t1.Seconds()
	b.Suite.JN = jn
	b.Suite.JNSeconds = tN.Seconds()
	if tN > 0 {
		b.Suite.Speedup = t1.Seconds() / tN.Seconds()
	}
	b.Suite.IdenticalOutput = out1 == outN
	run1, forked1, memo1 := r1.Sims()
	runN, forkedN, memoN := rN.Sims()
	if run1 != runN || forked1 != forkedN || memo1 != memoN {
		return fmt.Errorf("pipeline-bench: sims split differs across -j: %d/%d/%d vs %d/%d/%d",
			run1, forked1, memo1, runN, forkedN, memoN)
	}
	b.Suite.Simulations = run1 + forked1 + memo1
	b.Suite.SimsRun = run1
	b.Suite.SimsForked = forked1
	b.Suite.SimsMemoized = memo1
	b.Suite.BuildsJ1 = stats1.Builds
	b.Suite.BuildsJN = statsN.Builds
	b.Suite.MemoryHitsJ1 = stats1.MemoryHits
	b.Suite.MemoryHitsJN = statsN.MemoryHits
	b.Suite.DiskHitsJ1 = stats1.DiskHits
	b.Suite.DiskHitsJN = statsN.DiskHits

	// Steady-state simulator allocation rate: one warm run of the BASELINE
	// machine over a cached build (build allocations excluded).
	spec := o.spec(tpcc.NewOrder)
	built := workload.Build(spec, false)
	cfg := workload.Machine(workload.Baseline)
	sim.Run(cfg, built.Program) // warm the page/metadata pools
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	res := sim.Run(cfg, built.Program)
	runtime.ReadMemStats(&after)
	b.Sim.Bench = tpcc.NewOrder.String()
	b.Sim.Epochs = res.EpochCount
	if res.EpochCount > 0 {
		b.Sim.AllocsPerEpoch = float64(after.Mallocs-before.Mallocs) / float64(res.EpochCount)
		b.Sim.BytesPerEpoch = float64(after.TotalAlloc-before.TotalAlloc) / float64(res.EpochCount)
	}

	enc, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	enc = append(enc, '\n')
	if err := os.WriteFile(path, enc, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr,
		"pipeline-bench: j=1 %.1fs, j=%d %.1fs (%.2fx), identical=%v, sims %d run + %d forked + %d memoized, builds %d/%d (memory hits %d/%d), %.0f allocs/epoch -> %s\n",
		b.Suite.J1Seconds, jn, b.Suite.JNSeconds, b.Suite.Speedup,
		b.Suite.IdenticalOutput, b.Suite.SimsRun, b.Suite.SimsForked, b.Suite.SimsMemoized,
		stats1.Builds, statsN.Builds,
		stats1.MemoryHits, statsN.MemoryHits, b.Sim.AllocsPerEpoch, path)
	if !b.Suite.IdenticalOutput {
		return fmt.Errorf("pipeline-bench: -j 1 and -j %d outputs differ", jn)
	}
	return nil
}
