package main

import (
	"fmt"
	"io"
	"strings"
	"sync/atomic"
	"testing"
)

func TestParDoOrderAndCoverage(t *testing.T) {
	for _, jobs := range []int{1, 2, 8, 100} {
		r := newRunner(jobs)
		for _, n := range []int{0, 1, 7, 64} {
			var calls atomic.Int64
			out := parDo(r, n, func(i int) int {
				calls.Add(1)
				return i * i
			})
			if len(out) != n || int(calls.Load()) != n {
				t.Fatalf("j=%d n=%d: len=%d calls=%d", jobs, n, len(out), calls.Load())
			}
			for i, v := range out {
				if v != i*i {
					t.Fatalf("j=%d n=%d: out[%d] = %d", jobs, n, i, v)
				}
			}
		}
	}
}

// experimentFns lists every experiment generator, each of which must produce
// byte-identical output regardless of -j.
var experimentFns = []struct {
	name string
	fn   func(io.Writer, options)
}{
	{"table2", runTable2},
	{"figure5", runFigure5},
	{"figure6", runFigure6},
	{"figure4", runFigure4},
	{"tuning", runTuning},
	{"predictor", runPredictor},
	{"victim", runVictim},
	{"sweep", runSweep},
	{"spawn", runSpawn},
	{"l1track", runL1Track},
	{"checkpoint-cost", runCheckpointCost},
	{"mlp", runMLP},
	{"icache", runICache},
}

// TestOutputDeterministicAcrossJ is the parallel runner's core contract:
// every figure and table renders byte-identically at -j 1 and -j 8.
func TestOutputDeterministicAcrossJ(t *testing.T) {
	if testing.Short() {
		t.Skip("runs every experiment twice")
	}
	for _, e := range experimentFns {
		t.Run(e.name, func(t *testing.T) {
			render := func(jobs int) string {
				o := tinyOptions()
				o.par = newRunner(jobs)
				var b strings.Builder
				e.fn(&b, o)
				return b.String()
			}
			serial := render(1)
			parallel := render(8)
			if serial != parallel {
				t.Errorf("-j 1 and -j 8 outputs differ:\n--- j=1 ---\n%s\n--- j=8 ---\n%s",
					serial, parallel)
			}
			if len(serial) == 0 {
				t.Error("experiment produced no output")
			}
		})
	}
}

// TestSweepsBuildOncePerSpec: the repeated-binary sweeps replay one binary
// against many machines, so the shared cache must perform exactly one build
// per distinct (spec, software-mode) — here one benchmark, two modes.
func TestSweepsBuildOncePerSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("runs three sweep experiments")
	}
	for _, e := range experimentFns {
		switch e.name {
		case "figure6", "victim", "spawn":
		default:
			continue
		}
		t.Run(e.name, func(t *testing.T) {
			o := tinyOptions()
			o.par = newRunner(4)
			e.fn(io.Discard, o)
			if n := o.par.builder.Builds(); n != 2 {
				t.Errorf("%s performed %d builds, want 2 (sequential + TLS)", e.name, n)
			}
		})
	}
}

// TestRunnerDefaultsSerial: options constructed without a pool (tests, zero
// value) fall back to a serial runner with a private cache.
func TestRunnerDefaultsSerial(t *testing.T) {
	var o options
	r := o.runner()
	if r.jobs != 1 || r.builder == nil {
		t.Fatalf("default runner = %+v", r)
	}
	if got := fmt.Sprint(parDo(r, 3, func(i int) int { return i })); got != "[0 1 2]" {
		t.Fatalf("serial parDo = %s", got)
	}
}
