// Command experiments regenerates every table and figure of the paper's
// evaluation (§4-5) on the simulated CMP:
//
//	-table1     simulation parameters (Table 1, from the live configuration)
//	-table2     benchmark statistics (Table 2)
//	-figure5    overall performance of the optimized benchmarks
//	-figure6    sub-thread count / size sweep
//	-figure4    selective secondary violations (start table) ablation
//	-tuning     iterative dependence-removal narrative (§3, Figure 2)
//	-predictor  dependence-predictor comparison (§2.2)
//	-victim     speculative victim cache size sweep (§2.1)
//	-sweep      synthetic thread-size x dependence-count sweep (§1)
//	-spawn      sub-thread placement policy ablation (§5.1)
//	-l1track    L1 sub-thread tracking ablation (§2.2)
//	-checkpoint-cost  register-backup cost sweep (§2.2)
//	-all        everything above
//
// Absolute numbers will not match the paper (the substrate is a from-scratch
// simulator, not the authors' testbed); the shapes — who wins, by roughly
// what factor — are the reproduction target. See EXPERIMENTS.md.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strings"
	"time"

	"subthreads/internal/cliflags"
	"subthreads/internal/db"
	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/tls"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

type options struct {
	txns     int
	warmup   int
	seed     int64
	paper    bool
	bench    string
	paranoid bool
	inject   string
	// par is the shared worker pool + build cache (-j); nil means serial
	// with a private cache (see options.runner).
	par *runner
}

func main() {
	var (
		table1    = flag.Bool("table1", false, "print Table 1 (simulation parameters)")
		table2    = flag.Bool("table2", false, "run Table 2 (benchmark statistics)")
		figure5   = flag.Bool("figure5", false, "run Figure 5 (overall performance)")
		figure6   = flag.Bool("figure6", false, "run Figure 6 (sub-thread sweep)")
		figure4   = flag.Bool("figure4", false, "run the Figure 4 start-table ablation")
		tuning    = flag.Bool("tuning", false, "run the §3 iterative tuning narrative")
		predictor = flag.Bool("predictor", false, "run the §2.2 dependence-predictor comparison")
		victim    = flag.Bool("victim", false, "run the §2.1 victim-cache size sweep")
		sweep     = flag.Bool("sweep", false, "run the §1 synthetic thread-size x dependence sweep")
		spawn     = flag.Bool("spawn", false, "run the §5.1 sub-thread placement policy ablation")
		l1track   = flag.Bool("l1track", false, "run the §2.2 L1 sub-thread tracking ablation")
		ckptCost  = flag.Bool("checkpoint-cost", false, "run the §2.2 register-backup cost sweep")
		mlp       = flag.Bool("mlp", false, "run the blocking vs non-blocking loads core-model ablation")
		icache    = flag.Bool("icache", false, "run the instruction-cache core-model ablation")
		all       = flag.Bool("all", false, "run everything")
		opts      options
	)
	flag.IntVar(&opts.txns, "txns", 8, "measured transactions per benchmark")
	flag.IntVar(&opts.warmup, "warmup", 2, "warm-up transactions before timing")
	flag.Int64Var(&opts.seed, "seed", 42, "input generation seed")
	flag.BoolVar(&opts.paper, "paper", false, "use the full single-warehouse TPC-C scale")
	flag.StringVar(&opts.bench, "benchmark", "", "restrict to one benchmark (e.g. \"NEW ORDER\")")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "simulations to run in parallel (output is identical for every -j)")
	pipelineBench := flag.String("pipeline-bench", "", "measure suite runtime at -j 1 vs -j N and write a JSON report to this file")
	cacheDir := cliflags.AddCacheDir(flag.CommandLine)
	showVersion := cliflags.AddVersion(flag.CommandLine)
	faults := cliflags.AddFaults(flag.CommandLine)
	flag.Parse()
	cliflags.HandleVersion(*showVersion)
	opts.paranoid = faults.Paranoid
	opts.inject = faults.Inject
	opts.par = newRunner(*jobs)
	opts.par.paranoid = opts.paranoid
	// With -cache-dir, the suite's shared build cache gains the persistent
	// tier: a re-run (or a different command over the same directory) decodes
	// recorded programs from disk instead of rebuilding them.
	store, err := cliflags.OpenStore(*cacheDir, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	defer store.Close()
	opts.par.builder.SetStore(store)
	icfg, err := faults.Config()
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(2)
	}
	opts.par.injectCfg = icfg

	repro := "go run ./cmd/experiments " + strings.Join(os.Args[1:], " ")
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "experiments: fatal: %v | repro: %s\n", p, repro)
			os.Exit(1)
		}
	}()

	if *pipelineBench != "" {
		if err := runPipelineBench(*pipelineBench, opts); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	w := os.Stdout
	ran := false
	failed := 0
	// Each experiment runs under its own recover so one failure (e.g. a
	// watchdog abort under -inject surfacing through a nil task result)
	// reports and moves on: the suite always emits every result it can.
	run := func(enabled bool, name string, fn func(io.Writer, options)) {
		if !(enabled || *all) {
			return
		}
		ran = true
		defer func() {
			if p := recover(); p != nil {
				failed++
				fmt.Fprintf(os.Stderr, "experiments: %s failed: %v (continuing with remaining experiments)\n", name, p)
			}
		}()
		fn(w, opts)
	}
	run(*table1, "table1", printTable1)
	run(*table2, "table2", runTable2)
	run(*figure5, "figure5", runFigure5)
	run(*figure6, "figure6", runFigure6)
	run(*figure4, "figure4", runFigure4)
	run(*tuning, "tuning", runTuning)
	run(*predictor, "predictor", runPredictor)
	run(*victim, "victim", runVictim)
	run(*sweep, "sweep", runSweep)
	run(*spawn, "spawn", runSpawn)
	run(*l1track, "l1track", runL1Track)
	run(*ckptCost, "checkpoint-cost", runCheckpointCost)
	run(*mlp, "mlp", runMLP)
	run(*icache, "icache", runICache)
	if !ran {
		flag.Usage()
		os.Exit(2)
	}
	if taskFails := opts.par.Failures(); failed > 0 || taskFails > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d experiment(s) and %d task(s) failed; results above are partial | repro: %s\n",
			failed, taskFails, repro)
		os.Exit(1)
	}
}

func (o options) spec(b tpcc.Benchmark) workload.Spec {
	spec := workload.DefaultSpec(b)
	spec.Txns = o.txns
	spec.Warmup = o.warmup
	spec.Seed = o.seed
	if o.paper {
		spec.Scale = tpcc.PaperScale()
	}
	return spec
}

func (o options) benchmarks(list []tpcc.Benchmark) []tpcc.Benchmark {
	if o.bench == "" {
		return list
	}
	b, err := tpcc.Parse(o.bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	return []tpcc.Benchmark{b}
}

func header(w io.Writer, title string) {
	fmt.Fprintf(w, "\n================ %s ================\n\n", title)
}

// printTable1 reports the live machine configuration — the reproduction of
// Table 1 is that these ARE the parameters the simulator uses.
func printTable1(w io.Writer, _ options) {
	header(w, "TABLE 1: simulation parameters")
	cfg := sim.DefaultConfig()
	t := report.NewTable("Parameter", "Value")
	t.AddRow("Issue width", fmt.Sprintf("%d", cfg.CPU.IssueWidth))
	t.AddRow("Reorder buffer size", fmt.Sprintf("%d", cfg.CPU.ReorderBuffer))
	t.AddRow("Integer multiply", fmt.Sprintf("%d cycles", cfg.CPU.Lat.IntMul))
	t.AddRow("Integer divide", fmt.Sprintf("%d cycles", cfg.CPU.Lat.IntDiv))
	t.AddRow("All other integer", fmt.Sprintf("%d cycle", cfg.CPU.Lat.ALU))
	t.AddRow("FP divide", fmt.Sprintf("%d cycles", cfg.CPU.Lat.FPDiv))
	t.AddRow("FP square root", fmt.Sprintf("%d cycles", cfg.CPU.Lat.FPSqrt))
	t.AddRow("All other FP", fmt.Sprintf("%d cycles", cfg.CPU.Lat.FPOp))
	t.AddRow("Branch prediction", fmt.Sprintf("GShare (2^%d counters, %d history bits)",
		cfg.CPU.BranchTableBits, cfg.CPU.BranchHistoryBits))
	t.AddRow("Cache line size", "32B")
	t.AddRow("Data cache", fmt.Sprintf("%dKB, %d-way set-assoc",
		cfg.Mem.L1Sets*cfg.Mem.L1Ways*32/1024, cfg.Mem.L1Ways))
	t.AddRow("Unified secondary cache", fmt.Sprintf("%dMB, %d-way set-assoc, %d banks",
		cfg.TLS.L2Sets*cfg.TLS.L2Ways*32/(1024*1024), cfg.TLS.L2Ways, cfg.Mem.L2Banks))
	t.AddRow("Speculative victim cache", fmt.Sprintf("%d entry", cfg.TLS.VictimEntries))
	t.AddRow("Miss latency to secondary cache", fmt.Sprintf("%d cycles", cfg.Mem.L2HitLat))
	t.AddRow("Miss latency to local memory", fmt.Sprintf("%d cycles", cfg.Mem.MemLat))
	t.AddRow("Main memory bandwidth", fmt.Sprintf("1 access per %d cycles", cfg.Mem.MemOccupancy))
	t.AddRow("CPUs", fmt.Sprintf("%d", cfg.CPUs))
	t.AddRow("Sub-thread contexts per thread (BASELINE)", fmt.Sprintf("%d", cfg.TLS.SubthreadsPerEpoch))
	t.AddRow("Speculative instructions per sub-thread", fmt.Sprintf("%d", cfg.SubthreadSpacing))
	fmt.Fprint(w, t.String())
}

// runTable2 regenerates Table 2: per-benchmark execution time, coverage,
// thread size, speculative instructions per thread, and threads per
// transaction.
func runTable2(w io.Writer, o options) {
	header(w, "TABLE 2: benchmark statistics")
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks(tpcc.All())
	// Two simulations per benchmark: SEQUENTIAL (even slots) and BASELINE
	// (odd slots), fanned out together.
	flat := parDo(r, 2*len(benches), func(i int) runOut {
		b := benches[i/2]
		if i%2 == 0 {
			return r.run(o.spec(b), workload.Sequential)
		}
		return r.run(o.spec(b), workload.Baseline)
	})
	t := report.NewTable("Benchmark", "Exec.Time (Mcycles)", "Coverage",
		"Avg Thread Size (dyn.instr)", "Spec.Insts per Thread", "Threads per Txn")
	for bi, b := range benches {
		seqRes := flat[2*bi].res
		baseRes, built := flat[2*bi+1].res, flat[2*bi+1].built
		st := built.Stats
		// Speculative instructions per thread, net of re-executed work
		// (rewound instructions were all speculative).
		specPerThread := 0.0
		if st.Epochs > 0 {
			net := float64(baseRes.SpecInstrs) - float64(baseRes.RewoundInstrs)
			if net < 0 {
				net = 0
			}
			specPerThread = net / float64(st.Epochs)
		}
		t.AddRow(b.String(),
			report.F(float64(seqRes.Cycles)/1e6, 1),
			fmt.Sprintf("%.0f%%", st.Coverage*100),
			report.K(st.AvgThreadSize),
			report.K(specPerThread),
			report.F(st.ThreadsPerTxn, 1),
		)
	}
	fmt.Fprint(w, t.String())
	progress("table2", len(flat), start, r)
}

// figure5Experiments is the bar order of Figure 5.
var figure5Experiments = []workload.Experiment{
	workload.Sequential,
	workload.TLSSeq,
	workload.NoSubthread,
	workload.Baseline,
	workload.NoSpeculation,
}

// runFigure5 regenerates Figure 5: normalized execution-time breakdowns for
// every benchmark across the five machine configurations.
func runFigure5(w io.Writer, o options) {
	header(w, "FIGURE 5: overall performance of optimized benchmarks (4 CPUs)")
	fmt.Fprintln(w, report.Legend())
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks(tpcc.All())
	exps := figure5Experiments
	flat := parDo(r, len(benches)*len(exps), func(i int) runOut {
		return r.run(o.spec(benches[i/len(exps)]), exps[i%len(exps)])
	})
	for bi, b := range benches {
		var rows []report.Row
		var seq *sim.Result
		for ei, e := range exps {
			res := flat[bi*len(exps)+ei].res
			if e == workload.Sequential {
				seq = res
			}
			rows = append(rows, report.Row{Label: e.String(), Result: res})
		}
		fmt.Fprintf(w, "\n(%s)\n", b)
		fmt.Fprint(w, report.BreakdownBars(rows, seq.Cycles, 4, 60))
		fmt.Fprint(w, report.SpeedupTable(rows, seq))
	}
	progress("figure5", len(flat), start, r)
}

// runFigure6 regenerates Figure 6: the number of sub-thread contexts (2, 4,
// 8) crossed with the sub-thread size (speculative instructions between
// checkpoints) for the five TLS-profitable benchmarks.
func runFigure6(w io.Writer, o options) {
	header(w, "FIGURE 6: varying sub-thread count and size")
	counts := []int{2, 4, 8}
	sizes := []uint64{1000, 2500, 5000, 10000, 50000}
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks(tpcc.TLSProfitable())
	// Per benchmark: slot 0 is SEQUENTIAL, then counts x sizes in row-major
	// order. All 16 cells share ONE build through the cache.
	perB := 1 + len(counts)*len(sizes)
	flat := parDo(r, len(benches)*perB, func(i int) runOut {
		b := benches[i/perB]
		k := i % perB
		if k == 0 {
			return r.run(o.spec(b), workload.Sequential)
		}
		k--
		cfg := workload.Machine(workload.Baseline)
		cfg.TLS.SubthreadsPerEpoch = counts[k/len(sizes)]
		cfg.SubthreadSpacing = sizes[k%len(sizes)]
		return r.runConfig(o.spec(b), cfg)
	})
	for bi, b := range benches {
		seq := flat[bi*perB].res
		fmt.Fprintf(w, "\n(%s)  speedup over SEQUENTIAL; * marks the BASELINE configuration\n", b)
		t := report.NewTable(append([]string{"sub-threads \\ size"},
			func() []string {
				var hs []string
				for _, s := range sizes {
					hs = append(hs, fmt.Sprintf("%d", s))
				}
				return hs
			}()...)...)
		for ni, n := range counts {
			row := []string{fmt.Sprintf("%d", n)}
			for si, size := range sizes {
				res := flat[bi*perB+1+ni*len(sizes)+si].res
				cell := fmt.Sprintf("%.2f", res.Speedup(seq))
				if n == 8 && size == 5000 {
					cell += "*"
				}
				row = append(row, cell)
			}
			t.AddRow(row...)
		}
		fmt.Fprint(w, t.String())
	}
	progress("figure6", len(flat), start, r)
}

// runFigure4 demonstrates the sub-thread start table (Figure 4): with it,
// secondary violations restart only dependent sub-threads; without it, later
// epochs fully restart.
func runFigure4(w io.Writer, o options) {
	header(w, "FIGURE 4: selective secondary violations via the start table")
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder, tpcc.NewOrder150})
	flat := parDo(r, 3*len(benches), func(i int) runOut {
		b := benches[i/3]
		switch i % 3 {
		case 0:
			return r.run(o.spec(b), workload.Sequential)
		case 1:
			return r.run(o.spec(b), workload.Baseline)
		default:
			cfg := workload.Machine(workload.Baseline)
			cfg.TLS.StartTable = false
			return r.runConfig(o.spec(b), cfg)
		}
	})
	for bi, b := range benches {
		seq, with, without := flat[3*bi].res, flat[3*bi+1].res, flat[3*bi+2].res
		t := report.NewTable("Configuration", "Speedup", "Rewound instrs", "Secondary violations")
		t.AddRow("start table ON (Fig 4b)", report.F(with.Speedup(seq), 2),
			report.I(with.RewoundInstrs), report.I(with.TLS.SecondaryViolations))
		t.AddRow("start table OFF (Fig 4a)", report.F(without.Speedup(seq), 2),
			report.I(without.RewoundInstrs), report.I(without.TLS.SecondaryViolations))
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
	progress("figure4", len(flat), start, r)
}

// runTuning walks the §3 iterative parallelization process on NEW ORDER:
// each optimization level removes the dependence the profiler ranked worst,
// and (with sub-threads) performance improves step by step — Figure 2's
// narrative.
func runTuning(w io.Writer, o options) {
	header(w, "§3 TUNING: iterative dependence removal on NEW ORDER")
	r := o.runner()
	start := time.Now()
	spec := o.spec(tpcc.NewOrder)
	// Slot 0: SEQUENTIAL. Then per optimization level: BASELINE machine
	// (even offset) and NO SUB-THREAD machine (odd offset) on that level's
	// binary — the two share one build per level.
	flat := parDo(r, 1+2*db.NumOptLevels, func(i int) runOut {
		if i == 0 {
			return r.run(spec, workload.Sequential)
		}
		s := spec
		s.OptLevel = (i - 1) / 2
		if (i-1)%2 == 0 {
			return r.runConfig(s, workload.Machine(workload.Baseline))
		}
		return r.runConfig(s, workload.Machine(workload.NoSubthread))
	})
	seq := flat[0].res
	levels := []string{
		"0: unoptimized",
		"1: +lazy latches",
		"2: +pinless buffer-pool reads",
		"3: +per-epoch log buffers",
		"4: +lock inheritance",
		"5: +per-CPU allocation pools",
	}
	t := report.NewTable("Optimization level", "Speedup (8 sub-threads)", "Speedup (no sub-threads)",
		"Violations", "Latch stall%")
	for lvl := 0; lvl < db.NumOptLevels; lvl++ {
		base, built := flat[1+2*lvl].res, flat[1+2*lvl].built
		noSub := flat[2+2*lvl].res
		syncPct := 100 * float64(base.Breakdown[sim.Sync]) / float64(base.Breakdown.Total())
		t.AddRow(levels[lvl],
			report.F(base.Speedup(seq), 2),
			report.F(noSub.Speedup(seq), 2),
			report.I(base.TLS.PrimaryViolations+base.TLS.SecondaryViolations),
			report.F(syncPct, 1))
		if lvl == 0 || lvl == db.NumOptLevels-1 {
			fmt.Fprintf(w, "\nprofile after level %d (top harmful dependences, §3.1):\n%s",
				lvl, base.Pairs.Report(built.PCs, 5))
		}
	}
	fmt.Fprintf(w, "\n%s", t.String())
	progress("tuning", len(flat), start, r)
}

// runPredictor compares sub-threads against a Moshovos-style dependence
// predictor that synchronizes predicted-dependent loads (§2.2): the paper
// found prediction ineffective for these large threads because only some
// dynamic instances of a load PC are truly dependent.
func runPredictor(w io.Writer, o options) {
	header(w, "§2.2 ABLATION: dependence predictor vs sub-threads")
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks([]tpcc.Benchmark{tpcc.NewOrder, tpcc.NewOrder150})
	exps := []workload.Experiment{workload.Sequential, workload.NoSubthread,
		workload.PredictorSync, workload.Baseline}
	flat := parDo(r, len(benches)*len(exps), func(i int) runOut {
		return r.run(o.spec(benches[i/len(exps)]), exps[i%len(exps)])
	})
	for bi, b := range benches {
		seq := flat[bi*len(exps)].res
		noSub := flat[bi*len(exps)+1].res
		pred := flat[bi*len(exps)+2].res
		base := flat[bi*len(exps)+3].res
		t := report.NewTable("Configuration", "Speedup", "Violations", "Sync stalls", "Failed%")
		row := func(label string, r *sim.Result) {
			failPct := 100 * float64(r.Breakdown[sim.Failed]) / float64(r.Breakdown.Total())
			t.AddRow(label, report.F(r.Speedup(seq), 2),
				report.I(r.TLS.PrimaryViolations+r.TLS.SecondaryViolations),
				report.I(r.PredictorSyncs), report.F(failPct, 1))
		}
		row("all-or-nothing TLS", noSub)
		row("  + dependence predictor", pred)
		row("8 sub-threads (BASELINE)", base)
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
	progress("predictor", len(flat), start, r)
}

// runVictim sweeps the speculative victim cache size (§2.1): the paper chose
// 64 entries as "large enough to avoid stalling threads due to cache
// overflows for our worst case", the largest transaction with 8 sub-threads.
func runVictim(w io.Writer, o options) {
	header(w, "§2.1 ABLATION: speculative victim cache size")
	sizes := []int{0, 4, 16, 64, 256}
	r := o.runner()
	start := time.Now()
	benches := o.benchmarks([]tpcc.Benchmark{tpcc.DeliveryOuter, tpcc.NewOrder150})
	// Per benchmark: SEQUENTIAL, then per size a (stall policy, squash
	// policy) pair. All 2x5 machines replay one cached TLS build.
	perB := 1 + 2*len(sizes)
	flat := parDo(r, len(benches)*perB, func(i int) runOut {
		b := benches[i/perB]
		k := i % perB
		if k == 0 {
			return r.run(o.spec(b), workload.Sequential)
		}
		k--
		cfg := workload.Machine(workload.Baseline)
		cfg.TLS.VictimEntries = sizes[k/2]
		if k%2 == 1 {
			cfg.TLS.OverflowPolicy = tls.OverflowSquash
		}
		return r.runConfig(o.spec(b), cfg)
	})
	for bi, b := range benches {
		seq := flat[bi*perB].res
		t := report.NewTable("Victim entries", "Speedup", "Overflow stalls", "Squashes (squash policy)")
		for si, size := range sizes {
			res := flat[bi*perB+1+2*si].res
			resSq := flat[bi*perB+2+2*si].res
			t.AddRow(fmt.Sprintf("%d", size), report.F(res.Speedup(seq), 2),
				report.I(res.TLS.OverflowStalls), report.I(resSq.TLS.OverflowSquashes))
		}
		fmt.Fprintf(w, "\n(%s)\n%s", b, t.String())
	}
	progress("victim", len(flat), start, r)
}
