package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"subthreads/internal/sim"
	"subthreads/internal/workload"
)

// progress emits one per-experiment timing line to stderr (never to the
// report writer, which must stay byte-identical across -j values).
func progress(name string, sims int, start time.Time, r *runner) {
	fmt.Fprintf(os.Stderr, "%s: %d simulations in %v (j=%d)\n",
		name, sims, time.Since(start).Round(time.Millisecond), r.jobs)
}

// runner fans independent simulations across a bounded worker pool (-j).
// Every build goes through one shared workload.Builder, so a suite that
// replays the same binary against many machines — figure6, victim, spawn —
// performs exactly one database load + trace recording per distinct spec,
// and concurrent workers share it safely (Built is read-only under sim.Run).
type runner struct {
	jobs    int
	builder *workload.Builder
}

func newRunner(jobs int) *runner {
	if jobs < 1 {
		jobs = 1
	}
	return &runner{jobs: jobs, builder: workload.NewBuilder()}
}

// runner returns the options' shared runner, or a serial one for callers
// (tests) that construct options directly.
func (o options) runner() *runner {
	if o.par != nil {
		return o.par
	}
	return newRunner(1)
}

// parDo evaluates fn(0) .. fn(n-1) on up to r.jobs workers and returns the
// results in index order. Determinism contract: each fn(i) must depend only
// on i — never on shared mutable state — so the result slice, and therefore
// everything rendered from it, is identical for every -j. fn runs on other
// goroutines; with -j 1 everything stays on the caller's.
func parDo[T any](r *runner, n int, fn func(int) T) []T {
	out := make([]T, n)
	workers := r.jobs
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = fn(i)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = fn(i)
			}
		}()
	}
	wg.Wait()
	return out
}

// runOut is one simulation plus the (cached) build it ran.
type runOut struct {
	res   *sim.Result
	built *workload.Built
}

// run simulates a Figure 5 experiment through the build cache.
func (r *runner) run(spec workload.Spec, e workload.Experiment) runOut {
	res, built := r.builder.Run(spec, e)
	return runOut{res, built}
}

// runConfig simulates the TLS binary on a custom machine through the cache.
func (r *runner) runConfig(spec workload.Spec, cfg sim.Config) runOut {
	res, built := r.builder.RunConfig(spec, cfg)
	return runOut{res, built}
}

// runSeqConfig simulates the SEQUENTIAL binary on a custom machine (the
// core-model ablations vary the machine under both software modes).
func (r *runner) runSeqConfig(spec workload.Spec, cfg sim.Config) runOut {
	built := r.builder.Build(spec, true)
	return runOut{sim.Run(cfg, built.Program), built}
}
