package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"subthreads/internal/inject"
	"subthreads/internal/sim"
	"subthreads/internal/workload"
)

// progress emits one per-experiment timing line to stderr (never to the
// report writer, which must stay byte-identical across -j values).
func progress(name string, sims int, start time.Time, r *runner) {
	fmt.Fprintf(os.Stderr, "%s: %d simulations in %v (j=%d)\n",
		name, sims, time.Since(start).Round(time.Millisecond), r.jobs)
}

// runner fans independent simulations across a bounded worker pool (-j).
// Every build goes through one shared workload.Builder, so a suite that
// replays the same binary against many machines — figure6, victim, spawn —
// performs exactly one database load + trace recording per distinct spec,
// and concurrent workers share it safely (Built is read-only under sim.Run).
type runner struct {
	jobs    int
	builder *workload.Builder

	// Suite-wide hardening overlays (set after construction, before use):
	// paranoid enables the TLS protocol auditor on every simulation, and
	// injectCfg seeds a fresh deterministic fault injector per simulation —
	// per-task injectors keep output independent of worker scheduling, so
	// reports stay byte-identical across -j even under injection.
	paranoid  bool
	injectCfg *inject.Config

	// failed counts tasks that panicked (recovered by parDo); any failure
	// makes the suite exit non-zero after the remaining experiments finish.
	failed atomic.Int64
}

func newRunner(jobs int) *runner {
	if jobs < 1 {
		jobs = 1
	}
	return &runner{jobs: jobs, builder: workload.NewBuilder()}
}

// apply overlays the suite-wide hardening options on one machine config.
func (r *runner) apply(cfg sim.Config) sim.Config {
	if r.paranoid {
		cfg.Paranoid = true
	}
	if r.injectCfg != nil {
		cfg.Inject = inject.New(*r.injectCfg)
		if cfg.WatchdogCycles == 0 {
			cfg.WatchdogCycles = inject.DefaultWatchdog
		}
	}
	return cfg
}

// Failures reports how many tasks panicked and were recovered.
func (r *runner) Failures() int { return int(r.failed.Load()) }

// runner returns the options' shared runner, or a serial one for callers
// (tests) that construct options directly.
func (o options) runner() *runner {
	if o.par != nil {
		return o.par
	}
	return newRunner(1)
}

// parDo evaluates fn(0) .. fn(n-1) on up to r.jobs workers and returns the
// results in index order. Determinism contract: each fn(i) must depend only
// on i — never on shared mutable state — so the result slice, and therefore
// everything rendered from it, is identical for every -j. fn runs on other
// goroutines; with -j 1 everything stays on the caller's.
func parDo[T any](r *runner, n int, fn func(int) T) []T {
	out := make([]T, n)
	workers := r.jobs
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = runTask(r, i, fn)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = runTask(r, i, fn)
			}
		}()
	}
	wg.Wait()
	return out
}

// runTask runs one parDo task, converting a panic (a failed simulation, e.g.
// a sim.RunError under fault injection) into a recorded failure so the rest
// of the suite still completes. The failed slot keeps its zero value; an
// experiment that consumes it will itself fail and be recovered by the
// per-experiment guard in main, reported, and skipped.
func runTask[T any](r *runner, i int, fn func(int) T) (out T) {
	defer func() {
		if p := recover(); p != nil {
			r.failed.Add(1)
			fmt.Fprintf(os.Stderr, "experiments: task %d failed: %v\n", i, p)
		}
	}()
	return fn(i)
}

// runOut is one simulation plus the (cached) build it ran.
type runOut struct {
	res   *sim.Result
	built *workload.Built
}

// run simulates a Figure 5 experiment through the build cache.
func (r *runner) run(spec workload.Spec, e workload.Experiment) runOut {
	built := r.builder.Build(spec, e.SequentialSoftware())
	return runOut{sim.Run(r.apply(workload.Machine(e)), built.Program), built}
}

// runConfig simulates the TLS binary on a custom machine through the cache.
func (r *runner) runConfig(spec workload.Spec, cfg sim.Config) runOut {
	built := r.builder.Build(spec, false)
	return runOut{sim.Run(r.apply(cfg), built.Program), built}
}

// runSeqConfig simulates the SEQUENTIAL binary on a custom machine (the
// core-model ablations vary the machine under both software modes).
func (r *runner) runSeqConfig(spec workload.Spec, cfg sim.Config) runOut {
	built := r.builder.Build(spec, true)
	return runOut{sim.Run(r.apply(cfg), built.Program), built}
}
