package main

import (
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"subthreads/internal/inject"
	"subthreads/internal/sim"
	"subthreads/internal/workload"
)

// progress emits one per-experiment timing line to stderr (never to the
// report writer, which must stay byte-identical across -j values).
func progress(name string, sims int, start time.Time, r *runner) {
	fmt.Fprintf(os.Stderr, "%s: %d simulations in %v (j=%d)\n",
		name, sims, time.Since(start).Round(time.Millisecond), r.jobs)
}

// runner fans independent simulations across a bounded worker pool (-j).
// Every build goes through one shared workload.Builder, so a suite that
// replays the same binary against many machines — figure6, victim, spawn —
// performs exactly one database load + trace recording per distinct spec,
// and concurrent workers share it safely (Built is read-only under sim.Run).
//
// On top of the build cache sit two simulation caches:
//
//   - an exact-run memo keyed by {spec, software mode, full config digest}:
//     the same simulation requested twice (figure5 and figure6 both run
//     SEQUENTIAL on each benchmark, for example) executes once;
//   - a prefix-snapshot cache keyed by {spec, prefix digest}: the first
//     simulation of a group whose configs differ only in fork-safe
//     parameters (sub-thread count/size, spawn policy, penalties, overflow
//     policy, ...) captures a checkpoint at the end of the program's leading
//     barrier prefix, and every later member forks from it instead of
//     replaying the prefix.
//
// Both are sound because sim.ResumeE guarantees byte-identical results, so
// parDo's determinism contract — identical output for every -j — still
// holds; only sims_run/sims_forked change, and those deterministically.
type runner struct {
	jobs    int
	builder *workload.Builder

	// Suite-wide hardening overlays (set after construction, before use):
	// paranoid enables the TLS protocol auditor on every simulation, and
	// injectCfg seeds a fresh deterministic fault injector per simulation —
	// per-task injectors keep output independent of worker scheduling, so
	// reports stay byte-identical across -j even under injection.
	paranoid  bool
	injectCfg *inject.Config

	mu    sync.Mutex
	memo  map[simKey]*memoEntry
	snaps map[simKey]*snapEntry

	// Simulation accounting: full runs executed, runs forked from a prefix
	// snapshot, and exact-duplicate results served from the memo. The split
	// is deterministic (one full run per prefix group, one execution per
	// distinct simulation) even though which task wins a race is not.
	simsRun    atomic.Int64
	simsForked atomic.Int64
	simsMemo   atomic.Int64

	// failed counts tasks that panicked (recovered by parDo); any failure
	// makes the suite exit non-zero after the remaining experiments finish.
	failed atomic.Int64
}

// simKey identifies a simulation (or a prefix-sharing group) within a suite:
// the workload spec plus software mode pin the program, the digest pins the
// machine (FullDigest for the memo, PrefixDigest for the snapshot cache).
type simKey struct {
	spec   workload.Spec
	seq    bool
	digest string
}

// memoEntry is a single-flight slot for one exact simulation.
type memoEntry struct {
	once sync.Once
	res  *sim.Result
}

// snapEntry is a single-flight slot for one prefix group's checkpoint; snap
// stays nil when the capturing run produced no forkable snapshot (no leading
// barrier, speculative state at the boundary, or a panic).
type snapEntry struct {
	once sync.Once
	snap *sim.Snapshot
}

func newRunner(jobs int) *runner {
	if jobs < 1 {
		jobs = 1
	}
	return &runner{
		jobs:    jobs,
		builder: workload.NewBuilder(),
		memo:    make(map[simKey]*memoEntry),
		snaps:   make(map[simKey]*snapEntry),
	}
}

// Sims reports the full / forked / memoized simulation split.
func (r *runner) Sims() (run, forked, memoized int) {
	return int(r.simsRun.Load()), int(r.simsForked.Load()), int(r.simsMemo.Load())
}

// apply overlays the suite-wide hardening options on one machine config.
func (r *runner) apply(cfg sim.Config) sim.Config {
	if r.paranoid {
		cfg.Paranoid = true
	}
	if r.injectCfg != nil {
		cfg.Inject = inject.New(*r.injectCfg)
		if cfg.WatchdogCycles == 0 {
			cfg.WatchdogCycles = inject.DefaultWatchdog
		}
	}
	return cfg
}

// Failures reports how many tasks panicked and were recovered.
func (r *runner) Failures() int { return int(r.failed.Load()) }

// runner returns the options' shared runner, or a serial one for callers
// (tests) that construct options directly.
func (o options) runner() *runner {
	if o.par != nil {
		return o.par
	}
	return newRunner(1)
}

// parDo evaluates fn(0) .. fn(n-1) on up to r.jobs workers and returns the
// results in index order. Determinism contract: each fn(i) must depend only
// on i — never on shared mutable state — so the result slice, and therefore
// everything rendered from it, is identical for every -j. fn runs on other
// goroutines; with -j 1 everything stays on the caller's.
func parDo[T any](r *runner, n int, fn func(int) T) []T {
	out := make([]T, n)
	workers := r.jobs
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			out[i] = runTask(r, i, fn)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for range workers {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				out[i] = runTask(r, i, fn)
			}
		}()
	}
	wg.Wait()
	return out
}

// runTask runs one parDo task, converting a panic (a failed simulation, e.g.
// a sim.RunError under fault injection) into a recorded failure so the rest
// of the suite still completes. The failed slot keeps its zero value; an
// experiment that consumes it will itself fail and be recovered by the
// per-experiment guard in main, reported, and skipped.
func runTask[T any](r *runner, i int, fn func(int) T) (out T) {
	defer func() {
		if p := recover(); p != nil {
			r.failed.Add(1)
			fmt.Fprintf(os.Stderr, "experiments: task %d failed: %v\n", i, p)
		}
	}()
	return fn(i)
}

// runOut is one simulation plus the (cached) build it ran.
type runOut struct {
	res   *sim.Result
	built *workload.Built
}

// run simulates a Figure 5 experiment through the build cache.
func (r *runner) run(spec workload.Spec, e workload.Experiment) runOut {
	return r.runOn(spec, e.SequentialSoftware(), workload.Machine(e))
}

// runConfig simulates the TLS binary on a custom machine through the cache.
func (r *runner) runConfig(spec workload.Spec, cfg sim.Config) runOut {
	return r.runOn(spec, false, cfg)
}

// runSeqConfig simulates the SEQUENTIAL binary on a custom machine (the
// core-model ablations vary the machine under both software modes).
func (r *runner) runSeqConfig(spec workload.Spec, cfg sim.Config) runOut {
	return r.runOn(spec, true, cfg)
}

// runOn routes one simulation through the exact-run memo and, for TLS
// programs, the prefix-snapshot cache.
func (r *runner) runOn(spec workload.Spec, sequential bool, cfg sim.Config) runOut {
	built := r.builder.Build(spec, sequential)
	cfg = r.apply(cfg)
	e := r.memoEntry(simKey{spec, sequential, sim.FullDigest(cfg)})
	executed := false
	e.once.Do(func() {
		executed = true
		e.res = r.simulate(spec, sequential, cfg, built.Program)
	})
	if !executed {
		if e.res == nil {
			// The winning task panicked; fail this duplicate the same way a
			// fresh run would have.
			panic(fmt.Sprintf("experiments: duplicate of a failed simulation (spec %+v)", spec))
		}
		r.simsMemo.Add(1)
	}
	return runOut{e.res, built}
}

// simulate executes one distinct simulation, forking from the prefix group's
// shared snapshot when one exists and falling back to a full run otherwise.
// Fault-injected runs never fork (a checkpoint would skip scheduled faults);
// sequential programs are all barrier, so their "prefix" is the whole run and
// sharing it would just hold a full machine image for no reuse.
func (r *runner) simulate(spec workload.Spec, sequential bool, cfg sim.Config, prog *sim.Program) *sim.Result {
	if cfg.Inject != nil || sequential {
		r.simsRun.Add(1)
		return sim.Run(cfg, prog)
	}
	g := r.snapEntry(simKey{spec, sequential, sim.PrefixDigest(cfg)})
	var res *sim.Result
	captured := false
	g.once.Do(func() {
		captured = true
		runCfg := cfg
		runCfg.SnapshotAtPrefix = true
		runCfg.SnapshotSink = func(s *sim.Snapshot) {
			if s.Forkable {
				g.snap = s
			}
		}
		r.simsRun.Add(1)
		res = sim.Run(runCfg, prog)
	})
	if captured {
		return res
	}
	if g.snap != nil {
		if res, err := sim.ResumeE(cfg, prog, g.snap); err == nil {
			r.simsForked.Add(1)
			return res
		} else {
			fmt.Fprintf(os.Stderr, "experiments: prefix fork failed (%v); replaying in full\n", err)
		}
	}
	r.simsRun.Add(1)
	return sim.Run(cfg, prog)
}

func (r *runner) memoEntry(k simKey) *memoEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.memo[k]
	if !ok {
		e = &memoEntry{}
		r.memo[k] = e
	}
	return e
}

func (r *runner) snapEntry(k simKey) *snapEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.snaps[k]
	if !ok {
		e = &snapEntry{}
		r.snaps[k] = e
	}
	return e
}
