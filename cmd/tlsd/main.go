// Command tlsd is the simulation-serving daemon: a long-lived HTTP service
// that queues, deduplicates, caches, and streams simulations of the
// sub-threads machine. Where cmd/tlssim answers one question per process,
// tlsd turns the simulator into infrastructure — a design-space sweep is 20
// POSTs, repeated questions are content-addressed cache hits, and every
// result is byte-identical to what tlssim prints for the same spec.
//
//	tlsd -addr :8080
//	curl -s -X POST localhost:8080/v1/jobs \
//	     -d '{"benchmark":"NEW ORDER","txns":4,"warmup":1}'
//	curl -s localhost:8080/v1/jobs/job-1/result
//	curl -N localhost:8080/v1/jobs/job-1/events
//
// See SERVICE.md for the full API schema. SIGINT/SIGTERM drains gracefully:
// readiness flips, admission stops, in-flight jobs finish, then the process
// exits.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"strings"
	"syscall"
	"time"

	"subthreads/internal/cliflags"
	"subthreads/internal/cluster"
	"subthreads/internal/service"
	"subthreads/internal/version"
)

func main() {
	var (
		addr         = flag.String("addr", "127.0.0.1:8080", "HTTP listen address")
		workers      = flag.Int("workers", runtime.GOMAXPROCS(0), "simulation worker-pool size")
		queueDepth   = flag.Int("queue", 64, "admission queue capacity (full queue responds 429)")
		maxCycles    = flag.Uint64("max-cycles", 0, "default per-job cycle budget when the spec sets none (0 = unbounded)")
		jobTimeout   = flag.Duration("job-timeout", 0, "end-to-end wall-clock deadline per job (queue wait included) when the spec sets no timeout_ms, and the ceiling when it does; 0 = no deadline")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "shutdown grace period: jobs still live when it expires are cancelled and reported as structured \"drain\" failures")
		benchOut     = flag.String("service-bench", "", "run the serving benchmark, write BENCH_service.json-style report to this file, and exit")
		logFormat    = flag.String("log-format", "text", "structured log encoding: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, or error")
		debugAddr    = flag.String("debug-addr", "", "listen address for the diagnostics server (pprof, /debug/requests); empty disables it")
		flightDir    = flag.String("flight-dir", filepath.Join(os.TempDir(), "tlsd-flight"), "directory for failure flight-recorder dumps; empty disables the recorder")
		flightEvents = flag.Int("flight-events", 4096, "telemetry events retained per job for the flight recorder")
		peers        = flag.String("peers", "", "comma-separated sibling tlsd base URLs whose caches are probed (GET /v1/cache/{digest}) before recomputing a locally-missed digest")
		cacheDir     = cliflags.AddCacheDir(flag.CommandLine)
		chaosSpec    = cliflags.AddChaos(flag.CommandLine)
		showVersion  = cliflags.AddVersion(flag.CommandLine)
	)
	// Server-wide hardening defaults, overlaid on jobs that don't set their
	// own (and therefore part of each job's content address).
	faults := cliflags.AddFaults(flag.CommandLine)
	flag.Parse()
	cliflags.HandleVersion(*showVersion)

	if _, err := faults.Config(); err != nil {
		fmt.Fprintf(os.Stderr, "tlsd: %v\n", err)
		os.Exit(2)
	}
	chaosSched, err := cliflags.OpenChaos(*chaosSpec)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsd: %v\n", err)
		os.Exit(2)
	}

	if *benchOut != "" {
		if err := writeBench(*benchOut, *workers); err != nil {
			fmt.Fprintf(os.Stderr, "tlsd: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", *benchOut)
		return
	}

	logger, err := newLogger(*logFormat, *logLevel)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsd: %v\n", err)
		os.Exit(2)
	}

	store, err := cliflags.OpenStore(*cacheDir, logger)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsd: %v\n", err)
		os.Exit(2)
	}
	defer store.Close()
	if store != nil {
		fmt.Printf("tlsd: persistent cache at %s\n", store.Dir())
	}

	opts := service.Options{
		Workers:          *workers,
		QueueDepth:       *queueDepth,
		DefaultMaxCycles: *maxCycles,
		Paranoid:         faults.Paranoid,
		Inject:           faults.Inject,
		Logger:           logger,
		FlightDir:        *flightDir,
		FlightEvents:     *flightEvents,
		Store:            store,
		JobTimeout:       *jobTimeout,
		Chaos:            chaosSched,
	}
	if peerURLs := splitPeers(*peers); len(peerURLs) > 0 {
		// The remote cache tier: before recomputing a digest that missed
		// memory and disk, ask the siblings' caches. Each link has its own
		// breaker, so a sick sibling degrades to recompute.
		group := cluster.NewRemoteGroup(peerURLs, cluster.RemoteOptions{Logger: logger})
		opts.RemoteFetch = func(ctx context.Context, digest string) ([]byte, string, bool) {
			return group.Fetch(ctx, digest)
		}
		fmt.Printf("tlsd: remote cache tier over %d sibling(s)\n", len(peerURLs))
	}
	s := service.New(opts)
	if chaosSched != nil {
		fmt.Printf("tlsd: CHAOS ARMED (%s) — injected faults are deliberate\n", chaosSched.Config())
	}
	srv := &http.Server{Addr: *addr, Handler: s.Handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	if *debugAddr != "" {
		// The diagnostics surface (pprof + /debug/requests) lives on its own
		// opt-in listener so profiling never shares the public port.
		dbg := &http.Server{Addr: *debugAddr, Handler: s.DebugHandler()}
		go func() {
			if err := dbg.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error("debug server stopped", slog.String("error", err.Error()))
			}
		}()
		defer dbg.Close()
		fmt.Printf("tlsd: debug surface on http://%s (pprof, /debug/requests)\n", *debugAddr)
	}
	fmt.Printf("tlsd: %s\n", version.Get())
	fmt.Printf("tlsd: serving on http://%s (%d workers, queue %d)\n", *addr, *workers, *queueDepth)

	select {
	case err := <-errCh:
		fmt.Fprintf(os.Stderr, "tlsd: %v\n", err)
		os.Exit(1)
	case <-ctx.Done():
	}

	// Graceful drain: stop admission and finish in-flight jobs while the
	// HTTP listener stays up so pollers can still collect results, then
	// close the listener.
	fmt.Println("tlsd: draining (admission stopped)")
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := s.Shutdown(drainCtx); err != nil {
		if !errors.Is(err, service.ErrDrainTimeout) {
			fmt.Fprintf(os.Stderr, "tlsd: drain incomplete: %v\n", err)
			srv.Close()
			os.Exit(1)
		}
		// The grace period expired: the stragglers were cancelled and
		// reported as structured "drain" failures, the pool was reaped, and
		// shutdown is orderly — note it and exit cleanly.
		fmt.Fprintf(os.Stderr, "tlsd: %v\n", err)
	}
	if err := srv.Shutdown(drainCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "tlsd: %v\n", err)
		os.Exit(1)
	}
	fmt.Println("tlsd: drained, bye")
}

// splitPeers parses the -peers list: comma-separated base URLs, trailing
// slashes trimmed so URL concatenation stays uniform.
func splitPeers(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		u := strings.TrimRight(strings.TrimSpace(part), "/")
		if u != "" {
			out = append(out, u)
		}
	}
	return out
}

// newLogger builds the daemon's structured logger on stderr, so the log
// stream never mixes with the human status lines on stdout.
func newLogger(format, level string) (*slog.Logger, error) {
	var lvl slog.Level
	if err := lvl.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %v", level, err)
	}
	opts := &slog.HandlerOptions{Level: lvl}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q: want text or json", format)
	}
}

// writeBench runs the serving benchmark (3 rounds of the sweep: one cold,
// two through the cache) and writes the report.
func writeBench(path string, workers int) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := service.WriteBench(f, workers, 3); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
