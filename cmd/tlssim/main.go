// Command tlssim runs one benchmark on one machine configuration and prints
// the full measurement: cycle breakdown, speedup vs. a sequential run, TLS
// protocol statistics, and cache behaviour. It is the single-experiment
// companion to cmd/experiments, and the reference output for cmd/tlsd: the
// daemon serves byte-identical -json documents for the same spec.
//
// Example:
//
//	tlssim -benchmark "NEW ORDER" -experiment BASELINE -txns 8
//	tlssim -benchmark "DELIVERY OUTER" -subthreads 4 -spacing 10000
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"subthreads/internal/check"
	"subthreads/internal/cliflags"
	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/tls"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

// repro is the command line that reproduces this run, printed with every
// structured failure so a watchdog trip or audit abort is one paste away
// from a debugger.
func repro() string {
	return "go run ./cmd/tlssim " + strings.Join(os.Args[1:], " ")
}

func main() {
	var (
		benchName   = flag.String("benchmark", "NEW ORDER", "benchmark name (see -list)")
		expName     = flag.String("experiment", "BASELINE", "SEQUENTIAL | TLS-SEQ | NO SUB-THREAD | BASELINE | NO SPECULATION | PREDICTOR")
		txns        = flag.Int("txns", 8, "measured transactions")
		warmup      = flag.Int("warmup", 2, "warm-up transactions")
		seed        = flag.Int64("seed", 42, "input seed")
		paper       = flag.Bool("paper", false, "full single-warehouse TPC-C scale")
		optLevel    = flag.Int("opt", 5, "database optimization level (0-5, §3.2)")
		subthreads  = flag.Int("subthreads", 0, "override sub-thread contexts per thread")
		spacing     = flag.Uint64("spacing", 0, "override speculative instructions per sub-thread")
		list        = flag.Bool("list", false, "list benchmarks and experiments")
		profTop     = flag.Int("profile", 5, "show the top-N violated dependences (§3.1)")
		jsonOut     = flag.Bool("json", false, "emit the measurement as JSON instead of text")
		overflow    = flag.String("overflow", "", "victim-cache overflow policy: stall | squash")
		checkRun    = flag.Bool("check", false, "verify the speculative run against the serial oracle before measuring")
		cacheDir    = cliflags.AddCacheDir(flag.CommandLine)
		showVersion = cliflags.AddVersion(flag.CommandLine)
	)
	faults := cliflags.AddFaults(flag.CommandLine)
	outputs := cliflags.AddOutputs(flag.CommandLine, "")
	flag.Parse()
	cliflags.HandleVersion(*showVersion)

	// A failed simulation (watchdog trip, audit violation, cycle-budget
	// exhaustion) panics with a structured *sim.RunError; report it on one
	// line with the reproducing command and exit non-zero.
	defer func() {
		if p := recover(); p != nil {
			fmt.Fprintf(os.Stderr, "tlssim: fatal: %v | repro: %s\n", p, repro())
			os.Exit(1)
		}
	}()

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range tpcc.All() {
			fmt.Printf("  %s\n", b)
		}
		fmt.Println("experiments:")
		for e := workload.Experiment(0); e < workload.NumExperiments; e++ {
			fmt.Printf("  %s\n", e)
		}
		return
	}

	bench, err := tpcc.Parse(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	var exp workload.Experiment = -1
	for e := workload.Experiment(0); e < workload.NumExperiments; e++ {
		if e.String() == *expName {
			exp = e
		}
	}
	if exp < 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q (see -list)\n", *expName)
		os.Exit(2)
	}
	if _, err := faults.Config(); err != nil {
		fmt.Fprintf(os.Stderr, "tlssim: %v\n", err)
		os.Exit(2)
	}

	spec := workload.DefaultSpec(bench)
	spec.Txns = *txns
	spec.Warmup = *warmup
	spec.Seed = *seed
	spec.OptLevel = *optLevel
	if *paper {
		spec.Scale = tpcc.PaperScale()
	}

	cfg := workload.Machine(exp)
	if *subthreads > 0 {
		cfg.TLS.SubthreadsPerEpoch = *subthreads
	}
	if *spacing > 0 {
		cfg.SubthreadSpacing = *spacing
	}
	switch *overflow {
	case "":
	case "stall":
		cfg.TLS.OverflowPolicy = tls.OverflowStall
	case "squash":
		cfg.TLS.OverflowPolicy = tls.OverflowSquash
	default:
		fmt.Fprintf(os.Stderr, "tlssim: -overflow must be stall or squash, not %q\n", *overflow)
		os.Exit(2)
	}

	if *checkRun {
		// Injectors are stateful (a consumed fault schedule), so Apply
		// builds a fresh one for the -check pass and another for the
		// measured run.
		ccfg := cfg
		if err := faults.Apply(&ccfg); err != nil {
			fmt.Fprintf(os.Stderr, "tlssim: %v\n", err)
			os.Exit(2)
		}
		if err := check.Differential(spec, ccfg); err != nil {
			fmt.Fprintf(os.Stderr, "tlssim: check failed: %v | repro: %s\n", err, repro())
			os.Exit(1)
		}
		fmt.Printf("check:      serial oracle clean (state digest, outputs, memory image)\n")
	}
	if err := faults.Apply(&cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tlssim: %v\n", err)
		os.Exit(2)
	}
	outputs.Attach(&cfg)

	// With -cache-dir, both program builds go through the persistent store:
	// a warm run decodes the recorded traces from disk instead of loading
	// the database and re-recording them.
	store, err := cliflags.OpenStore(*cacheDir, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlssim: %v\n", err)
		os.Exit(2)
	}
	defer store.Close()
	builder := workload.NewBuilder()
	builder.SetStore(store)

	seqRes, _ := builder.Run(spec, workload.Sequential)
	built := builder.Build(spec, exp.SequentialSoftware())
	res := sim.Run(cfg, built.Program)

	if err := outputs.Write(built.PCs.Name); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		run := report.BuildRun(report.RunParams{
			Benchmark:  bench.String(),
			Experiment: exp.String(),
			CPUs:       cfg.CPUs,
			Subthreads: cfg.TLS.SubthreadsPerEpoch,
			Spacing:    cfg.SubthreadSpacing,
			Epochs:     built.Stats.Epochs,
			Coverage:   built.Stats.Coverage,
		}, res, seqRes)
		if err := report.WriteRun(os.Stdout, run); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark:  %s\n", bench)
	fmt.Printf("experiment: %s (CPUs=%d, sub-threads=%d, spacing=%d)\n",
		exp, cfg.CPUs, cfg.TLS.SubthreadsPerEpoch, cfg.SubthreadSpacing)
	if built != nil {
		st := built.Stats
		fmt.Printf("program:    %d txns, %d epochs, coverage %.0f%%, avg thread %.0f instrs\n",
			st.Txns, st.Epochs, st.Coverage*100, st.AvgThreadSize)
	}
	fmt.Printf("\ncycles:     %d (speedup %.2fx over SEQUENTIAL's %d)\n",
		res.Cycles, res.Speedup(seqRes), seqRes.Cycles)

	fmt.Println("\n" + report.Legend())
	rows := []report.Row{
		{Label: "SEQUENTIAL", Result: seqRes},
		{Label: exp.String(), Result: res},
	}
	fmt.Print(report.BreakdownBars(rows, seqRes.Cycles, 4, 60))

	fmt.Printf("\nTLS protocol:\n")
	fmt.Printf("  primary violations:    %d\n", res.TLS.PrimaryViolations)
	fmt.Printf("  secondary violations:  %d\n", res.TLS.SecondaryViolations)
	fmt.Printf("  overflow squashes:     %d\n", res.TLS.OverflowSquashes)
	fmt.Printf("  sub-thread starts:     %d\n", res.TLS.SubthreadStarts)
	fmt.Printf("  exposed loads:         %d\n", res.TLS.ExposedLoads)
	fmt.Printf("  commits:               %d\n", res.TLS.Commits)
	fmt.Printf("  rewound instructions:  %d\n", res.RewoundInstrs)
	fmt.Printf("\nmemory:\n")
	fmt.Printf("  L1 hits/misses:        %d/%d\n", res.L1Hits, res.L1Misses)
	fmt.Printf("  L2 hits/misses:        %d/%d\n", res.L2Hits, res.L2Misses)
	fmt.Printf("  branches (mispredict): %d (%d)\n", res.Branches, res.Mispredicts)

	if built != nil && *profTop > 0 && res.TLS.PrimaryViolations > 0 {
		fmt.Printf("\ndependence profile (§3.1), top %d by failed cycles:\n%s",
			*profTop, res.Pairs.Report(built.PCs, *profTop))
	}
}
