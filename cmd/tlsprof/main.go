// Command tlsprof is the software interface to the hardware dependence
// profiler of §3.1: it runs a benchmark under TLS, collects the load/store PC
// pairs that triggered violations together with the failed-speculation cycles
// attributed to each, and prints them ranked by harm — the profile the
// programmer uses to drive the iterative tuning process of §3.2. With -json
// the profile is emitted machine-readable; -trace-out/-metrics-out capture
// the run's telemetry (timeline + metrics snapshot) alongside the profile.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"subthreads/internal/cliflags"
	"subthreads/internal/isa"
	"subthreads/internal/sim"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

// pairJSON is one dependence of the machine-readable profile.
type pairJSON struct {
	LoadPC       isa.PC `json:"load_pc"`
	LoadSite     string `json:"load_site"`
	StorePC      isa.PC `json:"store_pc"`
	StoreSite    string `json:"store_site"`
	FailedCycles uint64 `json:"failed_cycles"`
	Violations   uint64 `json:"violations"`
}

// profileJSON is the §3.1 dependence profile as JSON (-json).
type profileJSON struct {
	Benchmark           string     `json:"benchmark"`
	Experiment          string     `json:"experiment"`
	OptLevel            int        `json:"opt_level"`
	Cycles              uint64     `json:"cycles"`
	PrimaryViolations   uint64     `json:"primary_violations"`
	SecondaryViolations uint64     `json:"secondary_violations"`
	FailedCycles        uint64     `json:"failed_cycles_attributed"`
	PairsTracked        int        `json:"pairs_tracked"`
	Reclaimed           uint64     `json:"pairs_reclaimed"`
	Pairs               []pairJSON `json:"pairs"`
}

func main() {
	var (
		benchName   = flag.String("benchmark", "NEW ORDER", "benchmark name")
		txns        = flag.Int("txns", 8, "measured transactions")
		seed        = flag.Int64("seed", 42, "input seed")
		optLevel    = flag.Int("opt", 0, "database optimization level to profile (0 = unoptimized)")
		top         = flag.Int("top", 15, "number of dependences to report")
		allOrNone   = flag.Bool("all-or-nothing", false, "profile without sub-threads")
		jsonOut     = flag.Bool("json", false, "emit the dependence profile as JSON instead of text")
		cacheDir    = cliflags.AddCacheDir(flag.CommandLine)
		showVersion = cliflags.AddVersion(flag.CommandLine)
	)
	faults := cliflags.AddFaults(flag.CommandLine)
	outputs := cliflags.AddOutputs(flag.CommandLine, "")
	flag.Parse()
	cliflags.HandleVersion(*showVersion)

	// A failed simulation panics with a structured *sim.RunError; report it
	// on one line with the reproducing command and exit non-zero.
	defer func() {
		if p := recover(); p != nil {
			repro := "go run ./cmd/tlsprof " + strings.Join(os.Args[1:], " ")
			fmt.Fprintf(os.Stderr, "tlsprof: fatal: %v | repro: %s\n", p, repro)
			os.Exit(1)
		}
	}()

	bench, err := tpcc.Parse(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec := workload.DefaultSpec(bench)
	spec.Txns = *txns
	spec.Seed = *seed
	spec.OptLevel = *optLevel

	exp := workload.Baseline
	if *allOrNone {
		exp = workload.NoSubthread
	}
	cfg := workload.Machine(exp)
	if err := faults.Apply(&cfg); err != nil {
		fmt.Fprintf(os.Stderr, "tlsprof: %v\n", err)
		os.Exit(2)
	}
	outputs.Attach(&cfg)

	store, err := cliflags.OpenStore(*cacheDir, nil)
	if err != nil {
		fmt.Fprintf(os.Stderr, "tlsprof: %v\n", err)
		os.Exit(2)
	}
	defer store.Close()
	builder := workload.NewBuilder()
	builder.SetStore(store)

	built := builder.Build(spec, false)
	res := sim.Run(cfg, built.Program)

	if err := outputs.Write(built.PCs.Name); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *jsonOut {
		out := profileJSON{
			Benchmark:           bench.String(),
			Experiment:          exp.String(),
			OptLevel:            *optLevel,
			Cycles:              res.Cycles,
			PrimaryViolations:   res.TLS.PrimaryViolations,
			SecondaryViolations: res.TLS.SecondaryViolations,
			FailedCycles:        res.Pairs.TotalFailedCycles(),
			PairsTracked:        res.Pairs.Len(),
			Reclaimed:           res.Pairs.Reclaimed,
			Pairs:               []pairJSON{},
		}
		for _, st := range res.Pairs.Top(*top) {
			out.Pairs = append(out.Pairs, pairJSON{
				LoadPC:       st.LoadPC,
				LoadSite:     built.PCs.Name(st.LoadPC),
				StorePC:      st.StorePC,
				StoreSite:    built.PCs.Name(st.StorePC),
				FailedCycles: st.FailedCycles,
				Violations:   st.Violations,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}

	fmt.Printf("benchmark %s, optimization level %d, %s\n", bench, *optLevel, exp)
	fmt.Printf("violations: %d primary, %d secondary; failed cycles attributed: %d\n\n",
		res.TLS.PrimaryViolations, res.TLS.SecondaryViolations, res.Pairs.TotalFailedCycles())
	if res.TLS.PrimaryViolations == 0 {
		fmt.Println("no violated dependences — nothing to tune.")
		return
	}
	fmt.Print(res.Pairs.Report(built.PCs, *top))
	fmt.Println("\nTuning hint (§3.2): eliminate the top dependence in the DBMS code,")
	fmt.Println("re-run with -opt increased, and iterate until the profile is flat.")
}
