// Command tlsprof is the software interface to the hardware dependence
// profiler of §3.1: it runs a benchmark under TLS, collects the load/store PC
// pairs that triggered violations together with the failed-speculation cycles
// attributed to each, and prints them ranked by harm — the profile the
// programmer uses to drive the iterative tuning process of §3.2.
package main

import (
	"flag"
	"fmt"
	"os"

	"subthreads/internal/sim"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

func main() {
	var (
		benchName = flag.String("benchmark", "NEW ORDER", "benchmark name")
		txns      = flag.Int("txns", 8, "measured transactions")
		seed      = flag.Int64("seed", 42, "input seed")
		optLevel  = flag.Int("opt", 0, "database optimization level to profile (0 = unoptimized)")
		top       = flag.Int("top", 15, "number of dependences to report")
		allOrNone = flag.Bool("all-or-nothing", false, "profile without sub-threads")
	)
	flag.Parse()

	bench, err := tpcc.Parse(*benchName)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	spec := workload.DefaultSpec(bench)
	spec.Txns = *txns
	spec.Seed = *seed
	spec.OptLevel = *optLevel

	exp := workload.Baseline
	if *allOrNone {
		exp = workload.NoSubthread
	}
	built := workload.Build(spec, false)
	res := sim.Run(workload.Machine(exp), built.Program)

	fmt.Printf("benchmark %s, optimization level %d, %s\n", bench, *optLevel, exp)
	fmt.Printf("violations: %d primary, %d secondary; failed cycles attributed: %d\n\n",
		res.TLS.PrimaryViolations, res.TLS.SecondaryViolations, res.Pairs.TotalFailedCycles())
	if res.TLS.PrimaryViolations == 0 {
		fmt.Println("no violated dependences — nothing to tune.")
		return
	}
	fmt.Print(res.Pairs.Report(built.PCs, *top))
	fmt.Println("\nTuning hint (§3.2): eliminate the top dependence in the DBMS code,")
	fmt.Println("re-run with -opt increased, and iterate until the profile is flat.")
}
