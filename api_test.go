package subthreads_test

import (
	"testing"

	"subthreads"
)

// TestPublicAPISynthetic exercises the exported surface end to end with a
// hand-built program, as examples/quickstart does.
func TestPublicAPISynthetic(t *testing.T) {
	producer := subthreads.NewTraceBuilder()
	producer.ALU(20000)
	producer.Store(1, 0x1000)
	consumer := subthreads.NewTraceBuilder()
	consumer.ALU(15000)
	consumer.Load(2, 0x1000)
	consumer.ALU(5000)
	prog := &subthreads.Program{Units: []subthreads.Unit{
		{Trace: producer.Finish()},
		{Trace: consumer.Finish()},
	}}

	aonCfg := subthreads.DefaultSimConfig()
	aonCfg.TLS.SubthreadsPerEpoch = 1
	aonCfg.SubthreadSpacing = 0
	aon := subthreads.Simulate(aonCfg, prog)
	sub := subthreads.Simulate(subthreads.DefaultSimConfig(), prog)

	if aon.TLS.PrimaryViolations == 0 || sub.TLS.PrimaryViolations == 0 {
		t.Fatalf("dependence did not violate: %d / %d",
			aon.TLS.PrimaryViolations, sub.TLS.PrimaryViolations)
	}
	if sub.RewoundInstrs >= aon.RewoundInstrs {
		t.Errorf("sub-threads rewound %d, all-or-nothing %d", sub.RewoundInstrs, aon.RewoundInstrs)
	}
	if sub.Cycles >= aon.Cycles {
		t.Errorf("sub-threads %d cycles >= all-or-nothing %d", sub.Cycles, aon.Cycles)
	}
}

// TestPublicAPITPCC exercises the workload path of the exported surface.
func TestPublicAPITPCC(t *testing.T) {
	spec := subthreads.DefaultSpec(subthreads.NewOrder)
	spec.Scale = subthreads.Scale{Districts: 4, CustomersPerDistrict: 60, Items: 400, OrdersPerDistrict: 30}
	spec.Txns = 2
	spec.Warmup = 1

	seq, _ := subthreads.Run(spec, subthreads.Sequential)
	base, built := subthreads.Run(spec, subthreads.Baseline)
	if built.Stats.Epochs == 0 {
		t.Fatal("no speculative threads built")
	}
	if s := base.Speedup(seq); s <= 1.0 {
		t.Errorf("BASELINE speedup = %.2f on NEW ORDER", s)
	}
	if len(subthreads.Benchmarks()) != 7 {
		t.Errorf("Benchmarks() = %d entries", len(subthreads.Benchmarks()))
	}
	if subthreads.PaperScale().Items <= subthreads.DefaultScale().Items {
		t.Error("paper scale must exceed default scale")
	}
}
