package report

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"subthreads/internal/sim"
)

func fakeResult(cycles uint64, busy, idle uint64) *sim.Result {
	r := &sim.Result{Cycles: cycles}
	r.Breakdown[sim.Busy] = busy
	r.Breakdown[sim.Idle] = idle
	return r
}

func TestBreakdownBars(t *testing.T) {
	ref := fakeResult(100, 100, 300) // 1 CPU busy, 3 idle on a 4-CPU machine
	rows := []Row{{Label: "SEQUENTIAL", Result: ref}}
	out := BreakdownBars(rows, ref.Cycles, 4, 40)
	if !strings.Contains(out, "SEQUENTIAL") {
		t.Fatalf("missing label:\n%s", out)
	}
	bar := out[strings.Index(out, "|")+1:]
	// 25% busy, 75% idle of a 40-glyph bar.
	if got := strings.Count(bar, "#"); got != 10 {
		t.Errorf("busy glyphs = %d, want 10\n%s", got, out)
	}
	if got := strings.Count(bar, "."); got != 30 {
		t.Errorf("idle glyphs = %d, want 30\n%s", got, out)
	}
	// A half-time run renders a half-length bar.
	fast := fakeResult(50, 150, 50)
	out = BreakdownBars([]Row{{Label: "FAST", Result: fast}}, ref.Cycles, 4, 40)
	bar = out[strings.Index(out, "|")+1:]
	if total := strings.Count(bar, "#") + strings.Count(bar, "."); total != 20 {
		t.Errorf("half-time bar length = %d, want 20\n%s", total, out)
	}
}

func TestSpeedupTable(t *testing.T) {
	ref := fakeResult(100, 100, 0)
	fast := fakeResult(50, 200, 0)
	out := SpeedupTable([]Row{{Label: "X", Result: fast}}, ref)
	if !strings.Contains(out, "2.00x") {
		t.Errorf("missing speedup:\n%s", out)
	}
}

func TestTable(t *testing.T) {
	tb := NewTable("Benchmark", "Coverage", "Size")
	tb.AddRow("NEW ORDER", F(0.78, 2), K(62000))
	tb.AddRow("short") // padded
	out := tb.String()
	if !strings.Contains(out, "NEW ORDER") || !strings.Contains(out, "0.78") || !strings.Contains(out, "62k") {
		t.Errorf("table content wrong:\n%s", out)
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Errorf("table has %d lines, want header+rule+2 rows", len(lines))
	}
	// Column alignment: all lines equal length is not required, but the
	// header rule must be as long as the header.
	if len(lines[1]) < len("Benchmark") {
		t.Error("rule too short")
	}
}

func TestFormatters(t *testing.T) {
	if K(62345) != "62k" {
		t.Errorf("K = %q", K(62345))
	}
	if F(1.234, 1) != "1.2" {
		t.Errorf("F = %q", F(1.234, 1))
	}
	if I(42) != "42" {
		t.Errorf("I = %q", I(42))
	}
}

func TestResultJSON(t *testing.T) {
	r := fakeResult(100, 60, 40)
	r.CommittedInstrs = 500
	r.RewoundInstrs = 20
	r.EpochCount = 7
	r.TLS.PrimaryViolations = 3
	r.TLS.Commits = 7
	r.L1Hits = 90
	r.L1Misses = 10

	j := FromResult(r)
	if j.Cycles != 100 || j.EpochCount != 7 || j.CommittedInstrs != 500 {
		t.Errorf("FromResult core fields wrong: %+v", j)
	}
	if len(j.Breakdown) != int(sim.NumCategories) {
		t.Errorf("breakdown has %d keys, want %d", len(j.Breakdown), sim.NumCategories)
	}
	if j.Breakdown[sim.Busy.String()] != 60 || j.Breakdown[sim.Idle.String()] != 40 {
		t.Errorf("breakdown values wrong: %v", j.Breakdown)
	}
	if j.TLS.PrimaryViolations != 3 || j.TLS.Commits != 7 {
		t.Errorf("TLS stats wrong: %+v", j.TLS)
	}
	if j.Mem.L1Hits != 90 || j.Mem.L1Misses != 10 {
		t.Errorf("memory stats wrong: %+v", j.Mem)
	}

	var buf bytes.Buffer
	if err := WriteJSON(&buf, r); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back ResultJSON
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if back.Cycles != 100 || back.Breakdown[sim.Busy.String()] != 60 {
		t.Errorf("round trip lost data: %+v", back)
	}

	// Determinism: two encodings are byte-identical (map keys sorted).
	var buf2 bytes.Buffer
	if err := WriteJSON(&buf2, r); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteJSON output is not deterministic")
	}
}

func TestLegendMentionsAllCategories(t *testing.T) {
	l := Legend()
	for _, want := range []string{"busy", "cache miss", "sync", "failed", "idle"} {
		if !strings.Contains(l, want) {
			t.Errorf("legend missing %q", want)
		}
	}
}
