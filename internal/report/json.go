package report

import (
	"encoding/json"
	"io"

	"subthreads/internal/sim"
)

// TLSStatsJSON is the machine-readable form of the TLS protocol counters.
type TLSStatsJSON struct {
	PrimaryViolations   uint64 `json:"primary_violations"`
	SecondaryViolations uint64 `json:"secondary_violations"`
	OverflowSquashes    uint64 `json:"overflow_squashes"`
	OverflowStalls      uint64 `json:"overflow_stalls"`
	ExposedLoads        uint64 `json:"exposed_loads"`
	SpecStores          uint64 `json:"spec_stores"`
	SubthreadStarts     uint64 `json:"subthread_starts"`
	Commits             uint64 `json:"commits"`
}

// MemStatsJSON is the machine-readable form of the memory-system counters.
type MemStatsJSON struct {
	L1Hits          uint64 `json:"l1_hits"`
	L1Misses        uint64 `json:"l1_misses"`
	L2Hits          uint64 `json:"l2_hits"`
	L2Misses        uint64 `json:"l2_misses"`
	MemAccesses     uint64 `json:"mem_accesses"`
	L1Invalidations uint64 `json:"l1_invalidations"`
	L1IHits         uint64 `json:"l1i_hits"`
	L1IMisses       uint64 `json:"l1i_misses"`
}

// ResultJSON is the machine-readable form of a sim.Result, with the cycle
// breakdown keyed by category name so downstream tooling never depends on
// the Category ordering.
type ResultJSON struct {
	Cycles    uint64            `json:"cycles"`
	Breakdown map[string]uint64 `json:"breakdown"`

	CommittedInstrs uint64 `json:"committed_instrs"`
	RewoundInstrs   uint64 `json:"rewound_instrs"`
	SpecInstrs      uint64 `json:"spec_instrs"`
	EpochCount      int    `json:"epoch_count"`

	Branches    uint64 `json:"branches"`
	Mispredicts uint64 `json:"mispredicts"`

	LatchDeadlockBreaks uint64 `json:"latch_deadlock_breaks"`
	PredictorSyncs      uint64 `json:"predictor_syncs"`
	OverflowWaits       uint64 `json:"overflow_waits"`

	TLS TLSStatsJSON `json:"tls"`
	Mem MemStatsJSON `json:"memory"`
}

// FromResult converts a sim.Result to its JSON form.
func FromResult(r *sim.Result) ResultJSON {
	breakdown := make(map[string]uint64, sim.NumCategories)
	for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
		breakdown[cat.String()] = r.Breakdown[cat]
	}
	return ResultJSON{
		Cycles:          r.Cycles,
		Breakdown:       breakdown,
		CommittedInstrs: r.CommittedInstrs,
		RewoundInstrs:   r.RewoundInstrs,
		SpecInstrs:      r.SpecInstrs,
		EpochCount:      r.EpochCount,
		Branches:        r.Branches,
		Mispredicts:     r.Mispredicts,

		LatchDeadlockBreaks: r.LatchDeadlockBreaks,
		PredictorSyncs:      r.PredictorSyncs,
		OverflowWaits:       r.OverflowWaits,

		TLS: TLSStatsJSON{
			PrimaryViolations:   r.TLS.PrimaryViolations,
			SecondaryViolations: r.TLS.SecondaryViolations,
			OverflowSquashes:    r.TLS.OverflowSquashes,
			OverflowStalls:      r.TLS.OverflowStalls,
			ExposedLoads:        r.TLS.ExposedLoads,
			SpecStores:          r.TLS.SpecStores,
			SubthreadStarts:     r.TLS.SubthreadStarts,
			Commits:             r.TLS.Commits,
		},
		Mem: MemStatsJSON{
			L1Hits:          r.L1Hits,
			L1Misses:        r.L1Misses,
			L2Hits:          r.L2Hits,
			L2Misses:        r.L2Misses,
			MemAccesses:     r.MemAccesses,
			L1Invalidations: r.L1Invalidations,
			L1IHits:         r.L1IHits,
			L1IMisses:       r.L1IMisses,
		},
	}
}

// WriteJSON writes a sim.Result to w as indented JSON. Output is
// deterministic: encoding/json sorts the breakdown map's keys.
func WriteJSON(w io.Writer, r *sim.Result) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(FromResult(r))
}
