package report

import (
	"encoding/json"
	"io"

	"subthreads/internal/sim"
)

// RunParams names the run a measurement came from: the benchmark, the
// machine shape, and the program's provenance statistics. It is the
// identity half of a Run document; the sim.Results are the measurement
// half.
type RunParams struct {
	Benchmark  string
	Experiment string
	CPUs       int
	Subthreads int
	Spacing    uint64
	Epochs     int
	Coverage   float64
}

// Run is the machine-readable form of one full measurement — the document
// `tlssim -json` prints and the tlsd result endpoint serves. Both render
// through WriteRun, so for one spec the CLI and the daemon produce
// byte-identical bodies (pinned by internal/service's equivalence test and
// the CI smoke step). The flat fields are the headline numbers; Detail is
// the complete ResultJSON.
type Run struct {
	Benchmark        string     `json:"benchmark"`
	Experiment       string     `json:"experiment"`
	CPUs             int        `json:"cpus"`
	Subthreads       int        `json:"subthreads"`
	Spacing          uint64     `json:"spacing"`
	Cycles           uint64     `json:"cycles"`
	SequentialCycles uint64     `json:"sequential_cycles"`
	Speedup          float64    `json:"speedup"`
	Busy             uint64     `json:"busy_cycles"`
	CacheMiss        uint64     `json:"cache_miss_cycles"`
	Sync             uint64     `json:"sync_cycles"`
	Failed           uint64     `json:"failed_cycles"`
	Idle             uint64     `json:"idle_cycles"`
	Primary          uint64     `json:"primary_violations"`
	Secondary        uint64     `json:"secondary_violations"`
	SubthreadStarts  uint64     `json:"subthread_starts"`
	RewoundInstrs    uint64     `json:"rewound_instrs"`
	CommittedInstrs  uint64     `json:"committed_instrs"`
	Epochs           int        `json:"epochs"`
	Coverage         float64    `json:"coverage"`
	Detail           ResultJSON `json:"detail"`
}

// BuildRun assembles the document from a measured run and its sequential
// reference.
func BuildRun(p RunParams, res, seq *sim.Result) Run {
	return Run{
		Benchmark:        p.Benchmark,
		Experiment:       p.Experiment,
		CPUs:             p.CPUs,
		Subthreads:       p.Subthreads,
		Spacing:          p.Spacing,
		Cycles:           res.Cycles,
		SequentialCycles: seq.Cycles,
		Speedup:          res.Speedup(seq),
		Busy:             res.Breakdown[sim.Busy],
		CacheMiss:        res.Breakdown[sim.CacheMiss],
		Sync:             res.Breakdown[sim.Sync],
		Failed:           res.Breakdown[sim.Failed],
		Idle:             res.Breakdown[sim.Idle],
		Primary:          res.TLS.PrimaryViolations,
		Secondary:        res.TLS.SecondaryViolations,
		SubthreadStarts:  res.TLS.SubthreadStarts,
		RewoundInstrs:    res.RewoundInstrs,
		CommittedInstrs:  res.CommittedInstrs,
		Epochs:           p.Epochs,
		Coverage:         p.Coverage,
		Detail:           FromResult(res),
	}
}

// WriteRun writes the document as indented JSON. Bytes are deterministic
// for identical measurements (encoding/json sorts the breakdown map keys),
// which is what lets the daemon's content-addressed cache serve stored
// bodies verbatim.
func WriteRun(w io.Writer, r Run) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}
