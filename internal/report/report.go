// Package report renders experiment results the way the paper presents
// them: normalized execution-time breakdown bars (Figure 5/6), benchmark
// statistics tables (Table 2), and speedup summaries — as fixed-width text
// suitable for terminals and EXPERIMENTS.md.
package report

import (
	"fmt"
	"strings"

	"subthreads/internal/sim"
)

// Row is one experiment outcome to render.
type Row struct {
	Label  string
	Result *sim.Result
}

// barGlyphs maps each cycle category to the glyph used in text bars.
var barGlyphs = [sim.NumCategories]byte{
	sim.Busy:      '#',
	sim.CacheMiss: 'm',
	sim.Sync:      's',
	sim.Failed:    'x',
	sim.Idle:      '.',
}

// Legend explains the bar glyphs.
func Legend() string {
	return "legend: # busy   m cache miss   s latch/sync stall   x failed speculation   . idle"
}

// BreakdownBars renders one normalized-breakdown bar per row, scaled so the
// reference (first row by convention, usually SEQUENTIAL) is `width` glyphs
// long, mirroring the stacked bars of Figure 5.
func BreakdownBars(rows []Row, refCycles uint64, machineCPUs, width int) string {
	var b strings.Builder
	for _, r := range rows {
		norm := r.Result.NormalizedBreakdown(refCycles, machineCPUs)
		var bar strings.Builder
		total := 0.0
		for cat := sim.Category(0); cat < sim.NumCategories; cat++ {
			total += norm[cat]
			n := int(norm[cat]*float64(width) + 0.5)
			for i := 0; i < n; i++ {
				bar.WriteByte(barGlyphs[cat])
			}
		}
		fmt.Fprintf(&b, "%-16s %5.2f |%s\n", r.Label, total, bar.String())
	}
	return b.String()
}

// SpeedupTable renders per-row speedups against a reference result.
func SpeedupTable(rows []Row, ref *sim.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-16s %10s %9s %12s %12s %10s\n",
		"experiment", "Mcycles", "speedup", "violations", "failed%", "sync%")
	for _, r := range rows {
		res := r.Result
		total := float64(res.Breakdown.Total())
		failPct, syncPct := 0.0, 0.0
		if total > 0 {
			failPct = 100 * float64(res.Breakdown[sim.Failed]) / total
			syncPct = 100 * float64(res.Breakdown[sim.Sync]) / total
		}
		fmt.Fprintf(&b, "%-16s %10.2f %8.2fx %12d %11.1f%% %9.1f%%\n",
			r.Label, float64(res.Cycles)/1e6, res.Speedup(ref),
			res.TLS.PrimaryViolations+res.TLS.SecondaryViolations, failPct, syncPct)
	}
	return b.String()
}

// Table is a minimal fixed-width table builder.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends a row; short rows are padded with empty cells.
func (t *Table) AddRow(cells ...string) {
	for len(cells) < len(t.header) {
		cells = append(cells, "")
	}
	t.rows = append(t.rows, cells)
}

// String renders the table with column-aligned, right-justified cells
// (left-justified first column).
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			if i == 0 {
				fmt.Fprintf(&b, "%-*s", widths[i], c)
			} else {
				fmt.Fprintf(&b, "%*s", widths[i], c)
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// F formats a float with the given precision (helper for table cells).
func F(v float64, prec int) string { return fmt.Sprintf("%.*f", prec, v) }

// K formats an instruction count in thousands, as Table 2 does ("62k").
func K(v float64) string { return fmt.Sprintf("%.0fk", v/1000) }

// I formats an integer cell.
func I(v uint64) string { return fmt.Sprintf("%d", v) }
