package workload

import (
	"log/slog"
	"sync"
	"sync/atomic"

	"subthreads/internal/cas"
	"subthreads/internal/sim"
)

// casNamespace is where serialized Built programs live inside a cas.Store,
// keyed by CacheKey(spec, sequential).
const casNamespace = "built"

// buildKey identifies one distinct binary: the benchmark spec plus which
// software mode (sequential vs. TLS-transformed) it was compiled for. Spec is
// a comparable struct, so the key works directly as a map key.
type buildKey struct {
	Spec       Spec
	Sequential bool
}

// buildEntry is a single-flight cell: the first caller runs the fill (disk
// probe, then Build) inside the once; every concurrent or later caller waits
// on it and shares the result.
type buildEntry struct {
	once  sync.Once
	built *Built
}

// Builder memoizes Build results so that every sweep replaying the same
// binary against different hardware configurations pays for one database
// load + trace recording. A Built program is read-only under sim.Run (see
// TestBuiltImmutable), so one cached program can back any number of
// concurrent machines.
//
// With SetStore, the memory map gains a persistent tier underneath: a miss
// first probes the content-addressed store for a serialized Built (decoded
// without touching the database engine at all — the warm-restart path), and
// only a disk miss runs the real Build, whose result is then published for
// the next process. Lookup is three-level: memory → disk → build.
//
// A Builder is safe for concurrent use. The zero value is ready to use
// (memory-only).
type Builder struct {
	mu    sync.Mutex
	cache map[buildKey]*buildEntry

	store  *cas.Store // nil = no persistent tier
	logger *slog.Logger

	calls    atomic.Int64 // every Build call
	builds   atomic.Int64 // fills that ran the real Build
	diskHits atomic.Int64 // fills served by decoding a store entry
}

// NewBuilder returns an empty build cache.
func NewBuilder() *Builder { return &Builder{} }

// SetStore attaches the persistent tier (nil detaches it). Call before
// serving traffic; entries already memoized stay in memory either way.
func (b *Builder) SetStore(s *cas.Store) { b.store = s }

// SetLogger directs the builder's structured diagnostics (disk-entry decode
// failures) to l. A nil logger disables logging.
func (b *Builder) SetLogger(l *slog.Logger) { b.logger = l }

// Build returns the memoized program for (spec, sequential), building it on
// first use. Concurrent callers with the same key block until the one fill
// in flight — disk load or real build — completes.
func (b *Builder) Build(spec Spec, sequential bool) *Built {
	b.calls.Add(1)
	key := buildKey{Spec: spec, Sequential: sequential}
	b.mu.Lock()
	if b.cache == nil {
		b.cache = make(map[buildKey]*buildEntry)
	}
	e := b.cache[key]
	if e == nil {
		e = &buildEntry{}
		b.cache[key] = e
	}
	b.mu.Unlock()
	e.once.Do(func() {
		e.built = b.fill(spec, sequential)
	})
	return e.built
}

// fill resolves a memory miss: disk first, then the real build (publishing
// the result for the next process). A disk entry that fails to decode is
// quarantined — never fatal — and the build runs as if it were absent.
func (b *Builder) fill(spec Spec, sequential bool) *Built {
	diskKey := CacheKey(spec, sequential)
	if data, ok := b.store.Get(casNamespace, diskKey); ok {
		built, err := DecodeBuilt(data)
		if err == nil {
			b.diskHits.Add(1)
			return built
		}
		// The frame checksum was intact but the domain decode failed —
		// e.g. an entry written by a different builtVersion under a stale
		// key, or an encoder bug. Quarantine it and rebuild.
		b.store.Quarantine(casNamespace, diskKey, err)
		if b.logger != nil {
			b.logger.Warn("built cache entry undecodable, rebuilding",
				"key", diskKey, "sequential", sequential, "err", err)
		}
	}
	b.builds.Add(1)
	built := Build(spec, sequential)
	b.store.Put(casNamespace, diskKey, EncodeBuilt(built))
	return built
}

// BuildStats breaks Build calls down by which tier satisfied them.
//
// MemoryHits counts calls that found a filled (or in-flight) memory entry —
// concurrent callers that waited on a fill in progress count as memory hits,
// since they shared that fill rather than performing their own.
type BuildStats struct {
	MemoryHits int
	DiskHits   int
	Builds     int
}

// Stats returns the tier breakdown so far.
func (b *Builder) Stats() BuildStats {
	calls, builds, disk := int(b.calls.Load()), int(b.builds.Load()), int(b.diskHits.Load())
	return BuildStats{MemoryHits: calls - builds - disk, DiskHits: disk, Builds: builds}
}

// Builds reports how many actual (non-cached) Build calls the cache has
// performed — the acceptance check that a sweep builds each distinct binary
// exactly once, and that a warm restart builds nothing at all.
func (b *Builder) Builds() int { return int(b.builds.Load()) }

// Run is workload.Run through the cache: it reuses the memoized program for
// the experiment's software mode and simulates it on the experiment's machine.
func (b *Builder) Run(spec Spec, e Experiment) (*sim.Result, *Built) {
	built := b.Build(spec, e.SequentialSoftware())
	res := sim.Run(Machine(e), built.Program)
	return res, built
}

// RunConfig is workload.RunConfig through the cache: the TLS-transformed
// program on a custom machine.
func (b *Builder) RunConfig(spec Spec, cfg sim.Config) (*sim.Result, *Built) {
	built := b.Build(spec, false)
	res := sim.Run(cfg, built.Program)
	return res, built
}
