package workload

import (
	"sync"
	"sync/atomic"

	"subthreads/internal/sim"
)

// buildKey identifies one distinct binary: the benchmark spec plus which
// software mode (sequential vs. TLS-transformed) it was compiled for. Spec is
// a comparable struct, so the key works directly as a map key.
type buildKey struct {
	Spec       Spec
	Sequential bool
}

// buildEntry is a single-flight cell: the first caller runs Build inside the
// once; every concurrent or later caller waits on it and shares the result.
type buildEntry struct {
	once  sync.Once
	built *Built
}

// Builder memoizes Build results so that every sweep replaying the same
// binary against different hardware configurations pays for one database
// load + trace recording. A Built program is read-only under sim.Run (see
// TestBuiltImmutable), so one cached program can back any number of
// concurrent machines.
//
// A Builder is safe for concurrent use. The zero value is ready to use.
type Builder struct {
	mu     sync.Mutex
	cache  map[buildKey]*buildEntry
	builds atomic.Int64
}

// NewBuilder returns an empty build cache.
func NewBuilder() *Builder { return &Builder{} }

// Build returns the memoized program for (spec, sequential), building it on
// first use. Concurrent callers with the same key block until the one build
// in flight completes.
func (b *Builder) Build(spec Spec, sequential bool) *Built {
	key := buildKey{Spec: spec, Sequential: sequential}
	b.mu.Lock()
	if b.cache == nil {
		b.cache = make(map[buildKey]*buildEntry)
	}
	e := b.cache[key]
	if e == nil {
		e = &buildEntry{}
		b.cache[key] = e
	}
	b.mu.Unlock()
	e.once.Do(func() {
		b.builds.Add(1)
		e.built = Build(spec, sequential)
	})
	return e.built
}

// Builds reports how many actual (non-cached) Build calls the cache has
// performed — the acceptance check that a sweep builds each distinct binary
// exactly once.
func (b *Builder) Builds() int { return int(b.builds.Load()) }

// Run is workload.Run through the cache: it reuses the memoized program for
// the experiment's software mode and simulates it on the experiment's machine.
func (b *Builder) Run(spec Spec, e Experiment) (*sim.Result, *Built) {
	built := b.Build(spec, e.SequentialSoftware())
	res := sim.Run(Machine(e), built.Program)
	return res, built
}

// RunConfig is workload.RunConfig through the cache: the TLS-transformed
// program on a custom machine.
func (b *Builder) RunConfig(spec Spec, cfg sim.Config) (*sim.Result, *Built) {
	built := b.Build(spec, false)
	res := sim.Run(cfg, built.Program)
	return res, built
}
