package workload

import (
	"testing"

	"subthreads/internal/sim"
	"subthreads/internal/tpcc"
)

// tinySpec keeps workload tests fast.
func tinySpec(b tpcc.Benchmark) Spec {
	spec := DefaultSpec(b)
	spec.Scale = tpcc.Scale{Districts: 4, CustomersPerDistrict: 60, Items: 400, OrdersPerDistrict: 30}
	spec.Txns = 2
	spec.Warmup = 1
	return spec
}

func TestBuildSequential(t *testing.T) {
	built := Build(tinySpec(tpcc.NewOrder), true)
	if built.Stats.Epochs != 0 {
		t.Errorf("sequential build has %d epochs", built.Stats.Epochs)
	}
	for _, u := range built.Program.Units {
		if !u.Barrier {
			t.Fatal("sequential build must contain only barrier units")
		}
	}
	if len(built.Program.Units) != 2 {
		t.Errorf("units = %d, want one per measured transaction", len(built.Program.Units))
	}
}

func TestBuildTLS(t *testing.T) {
	built := Build(tinySpec(tpcc.NewOrder), false)
	st := built.Stats
	if st.Epochs == 0 || st.Coverage <= 0 || st.Coverage > 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.AvgThreadSize <= 0 || st.ThreadsPerTxn <= 0 {
		t.Fatalf("stats = %+v", st)
	}
	if built.Program.Epochs() != st.Epochs {
		t.Errorf("program epochs %d != stats %d", built.Program.Epochs(), st.Epochs)
	}
	if built.PCs == nil || built.PCs.Len() == 0 {
		t.Error("PC registry empty")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(tinySpec(tpcc.NewOrder), false)
	b := Build(tinySpec(tpcc.NewOrder), false)
	if a.Stats != b.Stats {
		t.Errorf("same spec built different stats: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestMachineConfigs(t *testing.T) {
	cases := []struct {
		e       Experiment
		cpus    int
		subs    int
		spacing uint64
		specOff bool
	}{
		{Sequential, 1, 1, 0, false},
		{TLSSeq, 1, 1, 0, false},
		{NoSubthread, 4, 1, 0, false},
		{Baseline, 4, 8, 5000, false},
		{NoSpeculation, 4, 1, 0, true},
		{PredictorSync, 4, 1, 0, false},
	}
	for _, c := range cases {
		cfg := Machine(c.e)
		if cfg.CPUs != c.cpus {
			t.Errorf("%v: CPUs = %d, want %d", c.e, cfg.CPUs, c.cpus)
		}
		if cfg.TLS.SubthreadsPerEpoch != c.subs {
			t.Errorf("%v: SubthreadsPerEpoch = %d, want %d", c.e, cfg.TLS.SubthreadsPerEpoch, c.subs)
		}
		if cfg.SubthreadSpacing != c.spacing {
			t.Errorf("%v: spacing = %d, want %d", c.e, cfg.SubthreadSpacing, c.spacing)
		}
		if cfg.TLS.SpeculationOff != c.specOff {
			t.Errorf("%v: SpeculationOff = %v", c.e, cfg.TLS.SpeculationOff)
		}
	}
	if !Machine(PredictorSync).UsePredictor {
		t.Error("PredictorSync must enable the predictor")
	}
}

func TestExperimentNames(t *testing.T) {
	seen := map[string]bool{}
	for e := Experiment(0); e < NumExperiments; e++ {
		name := e.String()
		if name == "" || seen[name] {
			t.Errorf("bad or duplicate name %q", name)
		}
		seen[name] = true
	}
}

// TestEndToEndNewOrderShape is the repository's core regression: on NEW
// ORDER, sub-threads must beat all-or-nothing TLS, which must beat
// single-CPU execution, and NO SPECULATION must bound them all — the
// qualitative content of Figure 5(a).
func TestEndToEndNewOrderShape(t *testing.T) {
	spec := tinySpec(tpcc.NewOrder)
	spec.Txns = 3

	seq, _ := Run(spec, Sequential)
	tlsSeq, _ := Run(spec, TLSSeq)
	noSub, _ := Run(spec, NoSubthread)
	baseline, _ := Run(spec, Baseline)
	noSpec, _ := Run(spec, NoSpeculation)

	check := func(name string, res *sim.Result, cpus int) {
		t.Helper()
		if got, want := res.Breakdown.Total(), uint64(cpus)*res.Cycles; got != want {
			t.Errorf("%s: breakdown %d != CPUs*cycles %d", name, got, want)
		}
	}
	check("seq", seq, 1)
	check("tls-seq", tlsSeq, 1)
	check("no-sub", noSub, 4)
	check("baseline", baseline, 4)
	check("no-spec", noSpec, 4)

	// TLS software overhead is small.
	if r := tlsSeq.Speedup(seq); r < 0.85 || r > 1.10 {
		t.Errorf("TLS-SEQ relative performance = %.2f, want ~0.93-1.05", r)
	}
	if s := baseline.Speedup(seq); s <= noSub.Speedup(seq) {
		t.Errorf("sub-threads (%.2f) must beat all-or-nothing (%.2f)", s, noSub.Speedup(seq))
	}
	if s := noSpec.Speedup(seq); s < baseline.Speedup(seq)*0.98 {
		t.Errorf("NO SPECULATION (%.2f) must bound BASELINE (%.2f)", s, baseline.Speedup(seq))
	}
	if baseline.TLS.SubthreadStarts == 0 {
		t.Error("baseline never started sub-threads")
	}
	if noSub.Breakdown[sim.Failed] == 0 {
		t.Error("all-or-nothing NEW ORDER shows no failed speculation")
	}
	if baseline.Breakdown[sim.Failed] >= noSub.Breakdown[sim.Failed] {
		t.Errorf("sub-threads did not reduce failed cycles: %d vs %d",
			baseline.Breakdown[sim.Failed], noSub.Breakdown[sim.Failed])
	}
}

func TestRunConfigCustomMachine(t *testing.T) {
	spec := tinySpec(tpcc.NewOrder)
	cfg := Machine(Baseline)
	cfg.TLS.SubthreadsPerEpoch = 2
	cfg.SubthreadSpacing = 2500
	res, built := RunConfig(spec, cfg)
	if res.Cycles == 0 || built.Stats.Epochs == 0 {
		t.Fatal("custom run produced nothing")
	}
}

func TestRunProfilerCollectsPairs(t *testing.T) {
	spec := tinySpec(tpcc.NewOrder)
	spec.Txns = 3
	res, built := Run(spec, NoSubthread)
	if res.TLS.PrimaryViolations == 0 {
		t.Skip("no violations on this seed; profiler untestable here")
	}
	top := res.Pairs.Top(5)
	if len(top) == 0 {
		t.Fatal("violations occurred but profiler recorded no pairs")
	}
	// The report must resolve site names through the workload's registry.
	rep := res.Pairs.Report(built.PCs, 5)
	if len(rep) == 0 {
		t.Error("empty profiler report")
	}
}

// TestRunDeterminism: the whole pipeline — loading, trace recording, and the
// cycle-level simulation — is deterministic, so results are exactly
// reproducible run to run.
func TestRunDeterminism(t *testing.T) {
	spec := tinySpec(tpcc.NewOrder)
	a, _ := Run(spec, Baseline)
	b, _ := Run(spec, Baseline)
	if a.Cycles != b.Cycles || a.Breakdown != b.Breakdown || a.TLS != b.TLS {
		t.Errorf("nondeterministic run:\n%+v\nvs\n%+v", a, b)
	}
}
