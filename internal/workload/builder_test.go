package workload

import (
	"reflect"
	"sync"
	"testing"

	"subthreads/internal/sim"
	"subthreads/internal/tpcc"
)

func TestBuilderCachesByKey(t *testing.T) {
	b := NewBuilder()
	spec := tinySpec(tpcc.NewOrder)

	first := b.Build(spec, false)
	if again := b.Build(spec, false); again != first {
		t.Error("same key must return the cached *Built")
	}
	if n := b.Builds(); n != 1 {
		t.Errorf("Builds() = %d after one distinct key, want 1", n)
	}

	// The software mode is part of the key.
	seq := b.Build(spec, true)
	if seq == first {
		t.Error("sequential build must not share the TLS build's entry")
	}
	// So is every Spec field.
	spec2 := spec
	spec2.Txns++
	if b.Build(spec2, false) == first {
		t.Error("different spec must not hit the cache")
	}
	if n := b.Builds(); n != 3 {
		t.Errorf("Builds() = %d after three distinct keys, want 3", n)
	}
}

// TestBuilderSingleFlight: concurrent requests for one key perform exactly
// one build, and everyone shares it. Run under -race this also exercises the
// cache's locking.
func TestBuilderSingleFlight(t *testing.T) {
	b := NewBuilder()
	spec := tinySpec(tpcc.NewOrder)

	const goroutines = 8
	got := make([]*Built, goroutines)
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = b.Build(spec, false)
		}(i)
	}
	wg.Wait()

	for i, g := range got {
		if g == nil || g != got[0] {
			t.Fatalf("goroutine %d got a different build", i)
		}
	}
	if n := b.Builds(); n != 1 {
		t.Errorf("Builds() = %d under contention, want 1", n)
	}
}

// TestBuilderMatchesUncached: results obtained through the cache are
// identical to fresh uncached builds — the cache must be invisible to every
// figure and sweep.
func TestBuilderMatchesUncached(t *testing.T) {
	b := NewBuilder()
	spec := tinySpec(tpcc.NewOrder)

	for _, e := range []Experiment{Sequential, NoSubthread, Baseline} {
		cached, _ := b.Run(spec, e)
		fresh, _ := Run(spec, e)
		if !reflect.DeepEqual(cached, fresh) {
			t.Errorf("%v: cached result differs from uncached:\n%+v\nvs\n%+v", e, cached, fresh)
		}
	}
	// Three experiments, two software modes -> exactly two builds.
	if n := b.Builds(); n != 2 {
		t.Errorf("Builds() = %d for three experiments over two modes, want 2", n)
	}
}

// TestBuiltImmutable guards the cache's core assumption: sim.Run treats the
// Program as read-only, so one shared Built yields identical Results run
// after run.
func TestBuiltImmutable(t *testing.T) {
	built := Build(tinySpec(tpcc.NewOrder), false)
	cfg := Machine(Baseline)

	a := sim.Run(cfg, built.Program)
	c := sim.Run(cfg, built.Program)
	if !reflect.DeepEqual(a, c) {
		t.Fatalf("second Run over a shared Built differs:\n%+v\nvs\n%+v", a, c)
	}
	// And on a different machine afterwards: the first runs must not have
	// perturbed the program.
	fresh := Build(tinySpec(tpcc.NewOrder), false)
	d := sim.Run(Machine(NoSubthread), built.Program)
	e := sim.Run(Machine(NoSubthread), fresh.Program)
	if !reflect.DeepEqual(d, e) {
		t.Fatalf("shared program was mutated by earlier runs:\n%+v\nvs\n%+v", d, e)
	}
}

// TestBuiltConcurrentRuns: many machines simulate one shared Built at once
// (the parallel runner's steady state). Under -race this verifies sim.Run
// never writes the shared program.
func TestBuiltConcurrentRuns(t *testing.T) {
	built := Build(tinySpec(tpcc.NewOrder), false)
	cfgs := []sim.Config{Machine(Baseline), Machine(NoSubthread), Machine(NoSpeculation)}

	const perCfg = 3
	results := make([]*sim.Result, len(cfgs)*perCfg)
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = sim.Run(cfgs[i%len(cfgs)], built.Program)
		}(i)
	}
	wg.Wait()

	// Same config -> identical result, regardless of interleaving.
	for i := len(cfgs); i < len(results); i++ {
		if !reflect.DeepEqual(results[i], results[i%len(cfgs)]) {
			t.Errorf("run %d differs from its config's first run", i)
		}
	}
}
