// Package workload assembles the paper's experiments: it loads a TPC-C
// database on the storage engine, executes a stream of transactions while
// recording their (decomposed) traces, and packages them as simulator
// programs for each hardware configuration of Figure 5/6.
//
// Every experiment variant replays the same seeded transaction inputs
// against an identically-loaded database, so configurations differ only in
// the software mode (sequential vs. TLS-transformed) and the hardware.
package workload

import (
	"fmt"

	"subthreads/internal/db"
	"subthreads/internal/isa"
	"subthreads/internal/sim"
	"subthreads/internal/tpcc"
)

// Spec describes one benchmark run.
type Spec struct {
	Bench  tpcc.Benchmark
	Scale  tpcc.Scale
	Txns   int // measured transactions
	Warmup int // transactions executed before timing (warm the pool, §4.1)
	Seed   int64
	// OptLevel is the number of tuning iterations applied to the engine
	// for TLS binaries (db.OptLevel); the paper's main results use the
	// fully-optimized engine.
	OptLevel int
}

// DefaultSpec returns a spec sized for minutes-long experiment suites.
func DefaultSpec(b tpcc.Benchmark) Spec {
	return Spec{
		Bench:    b,
		Scale:    tpcc.DefaultScale(),
		Txns:     8,
		Warmup:   2,
		Seed:     42,
		OptLevel: db.NumOptLevels - 1,
	}
}

// Stats summarizes the recorded traces — the raw material of Table 2.
type Stats struct {
	Txns          int
	Epochs        int
	TotalInstrs   uint64
	IterInstrs    uint64
	Coverage      float64 // fraction of instructions inside the parallelized loop
	AvgThreadSize float64 // dynamic instructions per speculative thread
	ThreadsPerTxn float64
}

// Built is a ready-to-simulate program plus its provenance.
type Built struct {
	Program *sim.Program
	Stats   Stats
	PCs     *isa.PCRegistry
	Env     *db.Env

	// Digest is the FNV-1a hash of the final database state after the
	// full (warm-up + measured) transaction stream, and Outputs the
	// client-visible result values of each measured transaction. Both are
	// functional — independent of software mode and memory layout — so
	// the flat/serial and TLS-transformed builds of one spec must agree;
	// the differential oracle (internal/check) compares them.
	Digest  uint64
	Outputs [][]int64
}

// Build loads a fresh database and records the benchmark's transaction
// stream. With sequential=true the engine is unoptimized and each
// transaction is one flat serial trace (the SEQUENTIAL binary); otherwise
// the engine applies spec.OptLevel tuning iterations and transactions are
// decomposed at their parallelized loop with TLS software overhead.
func Build(spec Spec, sequential bool) *Built {
	if spec.Txns < 1 {
		panic("workload: Txns < 1")
	}
	cfg := db.DefaultConfig()
	if sequential {
		cfg.Opt = db.OptNone()
	} else {
		cfg.Opt = db.OptLevel(spec.OptLevel)
	}
	env := db.NewEnv(cfg)
	database := tpcc.Load(env, spec.Scale, spec.Seed)
	inputs := tpcc.GenInputs(spec.Bench, spec.Scale, spec.Seed+1, spec.Warmup+spec.Txns)

	mode := tpcc.ModeTLS
	if sequential {
		mode = tpcc.ModeFlat
	}

	// Warm-up transactions advance database state; their traces are
	// discarded (the paper starts timing after warm-up).
	for _, in := range inputs[:spec.Warmup] {
		database.RunTxn(in, mode)
	}

	b := &Built{
		Program: &sim.Program{},
		PCs:     env.PCs,
		Env:     env,
	}
	st := &b.Stats
	st.Txns = spec.Txns
	for _, in := range inputs[spec.Warmup:] {
		segs := database.RunTxn(in, mode)
		b.Outputs = append(b.Outputs, database.LastOutput())
		for _, seg := range segs {
			b.Program.Units = append(b.Program.Units, sim.Unit{
				Trace:   seg.Trace,
				Barrier: !seg.Iter,
			})
			st.TotalInstrs += seg.Trace.Instrs()
			if seg.Iter {
				st.Epochs++
				st.IterInstrs += seg.Trace.Instrs()
			}
		}
	}
	if st.TotalInstrs > 0 {
		st.Coverage = float64(st.IterInstrs) / float64(st.TotalInstrs)
	}
	if st.Epochs > 0 {
		st.AvgThreadSize = float64(st.IterInstrs) / float64(st.Epochs)
	}
	st.ThreadsPerTxn = float64(st.Epochs) / float64(st.Txns)
	b.Digest = env.StateDigest()
	return b
}

// Experiment names the hardware/software configurations of Figure 5, plus
// the dependence-predictor ablation of §2.2.
type Experiment int

const (
	// Sequential: the original binary on one CPU, no TLS.
	Sequential Experiment = iota
	// TLSSeq: the TLS-transformed binary on one CPU (software overhead).
	TLSSeq
	// NoSubthread: 4 CPUs, conventional all-or-nothing TLS.
	NoSubthread
	// Baseline: 4 CPUs, 8 sub-threads per thread, 5000 speculative
	// instructions per sub-thread.
	Baseline
	// NoSpeculation: 4 CPUs, all dependences ignored (upper bound).
	NoSpeculation
	// PredictorSync: 4 CPUs, all-or-nothing TLS plus a Moshovos-style
	// dependence predictor synchronizing predicted-dependent loads.
	PredictorSync
	NumExperiments
)

var experimentNames = [...]string{
	Sequential:    "SEQUENTIAL",
	TLSSeq:        "TLS-SEQ",
	NoSubthread:   "NO SUB-THREAD",
	Baseline:      "BASELINE",
	NoSpeculation: "NO SPECULATION",
	PredictorSync: "PREDICTOR",
}

func (e Experiment) String() string {
	if int(e) < len(experimentNames) {
		return experimentNames[e]
	}
	return fmt.Sprintf("experiment(%d)", int(e))
}

// SequentialSoftware reports whether the experiment runs the original
// (non-TLS) binary.
func (e Experiment) SequentialSoftware() bool { return e == Sequential }

// Machine returns the simulator configuration for the experiment.
func Machine(e Experiment) sim.Config {
	cfg := sim.DefaultConfig()
	switch e {
	case Sequential, TLSSeq:
		cfg.CPUs = 1
		cfg.SubthreadSpacing = 0
		cfg.TLS.SubthreadsPerEpoch = 1
	case NoSubthread:
		cfg.SubthreadSpacing = 0
		cfg.TLS.SubthreadsPerEpoch = 1
	case Baseline:
		// 8 sub-threads x 5000 speculative instructions (§5).
	case NoSpeculation:
		cfg.TLS.SpeculationOff = true
		cfg.SubthreadSpacing = 0
		cfg.TLS.SubthreadsPerEpoch = 1
	case PredictorSync:
		cfg.SubthreadSpacing = 0
		cfg.TLS.SubthreadsPerEpoch = 1
		cfg.UsePredictor = true
	default:
		panic(fmt.Sprintf("workload: unknown experiment %v", e))
	}
	return cfg
}

// Run builds the program variant the experiment needs and simulates it.
func Run(spec Spec, e Experiment) (*sim.Result, *Built) {
	built := Build(spec, e.SequentialSoftware())
	res := sim.Run(Machine(e), built.Program)
	return res, built
}

// RunConfig simulates the TLS-transformed program on a custom machine —
// the Figure 6 sweeps and the ablations use this.
func RunConfig(spec Spec, cfg sim.Config) (*sim.Result, *Built) {
	built := Build(spec, false)
	res := sim.Run(cfg, built.Program)
	return res, built
}
