package workload

import (
	"bytes"
	"reflect"
	"testing"

	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/tpcc"
)

func smallSpec() Spec {
	s := DefaultSpec(tpcc.NewOrder)
	s.Txns = 3
	s.Warmup = 1
	return s
}

// renderRun produces the exact document tlssim -json and tlsd serve for a
// built program: simulate the experiment machine and the sequential
// reference over the given binaries, then render through internal/report.
func renderRun(t *testing.T, spec Spec, tls, seq *Built) []byte {
	t.Helper()
	cfg := Machine(Baseline)
	res := sim.Run(cfg, tls.Program)
	seqRes := sim.Run(Machine(Sequential), seq.Program)
	run := report.BuildRun(report.RunParams{
		Benchmark:  spec.Bench.String(),
		Experiment: Baseline.String(),
		CPUs:       cfg.CPUs,
		Subthreads: cfg.TLS.SubthreadsPerEpoch,
		Spacing:    cfg.SubthreadSpacing,
		Epochs:     tls.Stats.Epochs,
		Coverage:   tls.Stats.Coverage,
	}, res, seqRes)
	var buf bytes.Buffer
	if err := report.WriteRun(&buf, run); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	return buf.Bytes()
}

// The cache-correctness pin: a Built that goes through the binary codec must
// be indistinguishable from a fresh build all the way through rendering —
// the served JSON bytes are identical.
func TestBuiltRoundTripByteIdentical(t *testing.T) {
	spec := smallSpec()
	freshTLS := Build(spec, false)
	freshSeq := Build(spec, true)

	decode := func(b *Built) *Built {
		t.Helper()
		enc := EncodeBuilt(b)
		dec, err := DecodeBuilt(enc)
		if err != nil {
			t.Fatalf("DecodeBuilt: %v", err)
		}
		return dec
	}
	decTLS, decSeq := decode(freshTLS), decode(freshSeq)

	// Field-level identity first, so a mismatch names the broken field
	// instead of diffing two JSON documents.
	for _, c := range []struct {
		name       string
		fresh, dec *Built
	}{{"tls", freshTLS, decTLS}, {"seq", freshSeq, decSeq}} {
		if c.dec.Stats != c.fresh.Stats {
			t.Errorf("%s stats = %+v, want %+v", c.name, c.dec.Stats, c.fresh.Stats)
		}
		if c.dec.Digest != c.fresh.Digest {
			t.Errorf("%s digest = %x, want %x", c.name, c.dec.Digest, c.fresh.Digest)
		}
		if !reflect.DeepEqual(c.dec.Outputs, c.fresh.Outputs) {
			t.Errorf("%s outputs mismatch", c.name)
		}
		if !reflect.DeepEqual(c.dec.PCs.Names(), c.fresh.PCs.Names()) {
			t.Errorf("%s pc names mismatch", c.name)
		}
		if len(c.dec.Program.Units) != len(c.fresh.Program.Units) {
			t.Errorf("%s units = %d, want %d",
				c.name, len(c.dec.Program.Units), len(c.fresh.Program.Units))
		}
		if c.dec.Env != nil {
			t.Errorf("%s decoded Built carries an Env; the codec must drop it", c.name)
		}
	}
	if t.Failed() {
		t.FailNow()
	}

	want := renderRun(t, spec, freshTLS, freshSeq)
	got := renderRun(t, spec, decTLS, decSeq)
	if !bytes.Equal(got, want) {
		t.Fatalf("rendered run from decoded Built differs from fresh build\n got %d bytes\nwant %d bytes", len(got), len(want))
	}
}

// Re-encoding a decoded Built must reproduce the same bytes: the format has
// one canonical rendering per program, which is what makes disk entries
// stable across processes.
func TestEncodeBuiltDeterministic(t *testing.T) {
	b := Build(smallSpec(), false)
	enc1 := EncodeBuilt(b)
	dec, err := DecodeBuilt(enc1)
	if err != nil {
		t.Fatalf("DecodeBuilt: %v", err)
	}
	enc2 := EncodeBuilt(dec)
	if !bytes.Equal(enc1, enc2) {
		t.Fatal("encode(decode(encode(b))) != encode(b)")
	}
}

func TestDecodeBuiltRejectsMalformed(t *testing.T) {
	valid := EncodeBuilt(Build(smallSpec(), true))
	wrongVersion := append([]byte(nil), valid...)
	wrongVersion[len(builtMagic)] = builtVersion + 1
	trailing := append(append([]byte(nil), valid...), 0xaa)
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOPE\x01rest"),
		"wrong version": wrongVersion,
		"truncated":     valid[:len(valid)/3],
		"trailing":      trailing,
	}
	for name, data := range cases {
		if _, err := DecodeBuilt(data); err == nil {
			t.Errorf("%s: DecodeBuilt accepted malformed input", name)
		}
	}
}

func TestCacheKeyStableAndDistinct(t *testing.T) {
	spec := smallSpec()
	k1 := CacheKey(spec, false)
	k2 := CacheKey(spec, false)
	if k1 != k2 {
		t.Fatal("CacheKey not deterministic")
	}
	if len(k1) != 64 {
		t.Fatalf("CacheKey length = %d, want 64 hex chars", len(k1))
	}
	if CacheKey(spec, true) == k1 {
		t.Fatal("sequential flag not part of the cache key")
	}
	other := spec
	other.Txns++
	if CacheKey(other, false) == k1 {
		t.Fatal("spec change not reflected in the cache key")
	}
}
