package workload

import (
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"subthreads/internal/cas"
)

func openStore(t *testing.T, dir string, opts cas.Options) *cas.Store {
	t.Helper()
	s, err := cas.Open(dir, opts)
	if err != nil {
		t.Fatalf("cas.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// The warm-restart contract at the builder level: a second Builder over the
// same store directory — a new process — serves the program from disk
// without running Build, and the result is functionally identical.
func TestBuilderWarmFromDisk(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()

	b1 := NewBuilder()
	b1.SetStore(openStore(t, dir, cas.Options{}))
	cold := b1.Build(spec, false)
	if st := b1.Stats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("cold stats = %+v, want 1 build", st)
	}

	b2 := NewBuilder()
	b2.SetStore(openStore(t, dir, cas.Options{}))
	warm := b2.Build(spec, false)
	if st := b2.Stats(); st.Builds != 0 || st.DiskHits != 1 {
		t.Fatalf("warm stats = %+v, want 1 disk hit and no builds", st)
	}
	if warm.Digest != cold.Digest || warm.Stats != cold.Stats {
		t.Fatal("disk-warm program differs from the cold build")
	}

	// Second call in the same process is a memory hit, not another disk read.
	b2.Build(spec, false)
	if st := b2.Stats(); st.MemoryHits != 1 {
		t.Fatalf("stats = %+v, want 1 memory hit", st)
	}
}

// An undecodable store entry must fall back to a real build with a
// structured log line, and the poisoned entry must be quarantined so the
// rebuilt one replaces it.
func TestBuilderCorruptEntryFallsBack(t *testing.T) {
	dir := t.TempDir()
	spec := smallSpec()

	b1 := NewBuilder()
	s1 := openStore(t, dir, cas.Options{})
	b1.SetStore(s1)
	b1.Build(spec, true)
	s1.Close()

	// Replace the entry's payload with a frame that passes the cas checksum
	// but fails the domain decode (wrong magic).
	key := CacheKey(spec, true)
	s2 := openStore(t, dir, cas.Options{})
	s2.Put(casNamespace, key, []byte("XXXX not a built frame"))

	var logbuf strings.Builder
	b2 := NewBuilder()
	b2.SetStore(s2)
	b2.SetLogger(slog.New(slog.NewTextHandler(&logbuf, nil)))
	built := b2.Build(spec, true)
	if built == nil {
		t.Fatal("Build returned nil on corrupt entry")
	}
	if st := b2.Stats(); st.Builds != 1 || st.DiskHits != 0 {
		t.Fatalf("stats = %+v, want fallback build", st)
	}
	if !strings.Contains(logbuf.String(), "undecodable") {
		t.Fatalf("no structured fallback log, got %q", logbuf.String())
	}
	// Quarantine left debris for debugging, and the rebuild republished.
	matches, _ := filepath.Glob(filepath.Join(dir, casNamespace, "*", "*.quarantined"))
	if len(matches) != 1 {
		t.Fatalf("quarantined files = %v, want exactly one", matches)
	}

	b3 := NewBuilder()
	b3.SetStore(s2)
	b3.Build(spec, true)
	if st := b3.Stats(); st.DiskHits != 1 {
		t.Fatalf("stats after rebuild = %+v, want a disk hit", st)
	}
}

// A builder with no store behaves exactly as before (memory-only), and the
// split counters stay coherent under concurrency (run with -race).
func TestBuilderConcurrentSplitCounters(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a real workload repeatedly")
	}
	dir := t.TempDir()
	spec := smallSpec()
	b := NewBuilder()
	b.SetStore(openStore(t, dir, cas.Options{}))

	const callers = 8
	var wg sync.WaitGroup
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			b.Build(spec, false)
		}()
	}
	wg.Wait()
	st := b.Stats()
	if st.Builds != 1 {
		t.Fatalf("builds = %d, want exactly 1 under concurrency", st.Builds)
	}
	if st.MemoryHits+st.DiskHits+st.Builds != callers {
		t.Fatalf("stats %+v don't sum to %d calls", st, callers)
	}

	// Sanity: the published entry is really on disk.
	path := filepath.Join(dir, casNamespace)
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("no published namespace dir: %v", err)
	}
}
