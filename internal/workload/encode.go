package workload

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"

	"subthreads/internal/isa"
	"subthreads/internal/sim"
	"subthreads/internal/trace"
)

// Versioned binary encoding of a Built program for the persistent
// content-addressed cache: everything the serving and reporting paths read
// from a Built — the unit/trace program, the derived statistics, the PC
// registry, the functional digest, and the per-transaction outputs — in a
// compact custom frame (no gob/reflection). The db.Env is deliberately not
// captured: nothing reads it after Build returns, and a decoded Built
// carries Env == nil.
//
// The frame:
//
//	"TLSB"            magic
//	1 byte            builtVersion
//	stats             Txns, Epochs, TotalInstrs, IterInstrs as uvarints;
//	                  Coverage, AvgThreadSize, ThreadsPerTxn as float64 bits
//	8 bytes           functional state digest, little endian
//	outputs           uvarint txn count, then per txn uvarint value count +
//	                  zig-zag varint values
//	pcs               uvarint name count, then length-prefixed names
//	program           uvarint unit count, then per unit 1 flag byte
//	                  (bit0 = barrier) + the trace (trace.AppendBinary)
//
// builtVersion participates in CacheKey, so an encoding change simply
// misses old entries instead of having to parse them; a same-version entry
// that still fails to decode is quarantined by the caller and rebuilt.
const (
	builtMagic   = "TLSB"
	builtVersion = 1
)

// Caps keeping a corrupted-but-well-framed length from forcing giant
// allocations; real programs are a few thousand units and a few hundred
// instrumentation sites.
const (
	maxUnits   = 1 << 24
	maxNames   = 1 << 20
	maxNameLen = 1 << 12
	maxOutputs = 1 << 24
)

// CacheKey is the canonical content address of the Built program for
// (spec, sequential): the SHA-256 of the canonical JSON of the spec, the
// software mode, and the encoding version. Two processes (or two runs of
// one process) that would Build the same binary share a key.
func CacheKey(spec Spec, sequential bool) string {
	c := struct {
		V          int  `json:"v"`
		Spec       Spec `json:"spec"`
		Sequential bool `json:"sequential"`
	}{builtVersion, spec, sequential}
	b, err := json.Marshal(c)
	if err != nil {
		// Spec is plain data; failure here is a programming error.
		panic(fmt.Sprintf("workload: canonical spec encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// EncodeBuilt renders b in the versioned binary cache format.
func EncodeBuilt(b *Built) []byte {
	// Programs run to a few MB of events; start with a roomy buffer.
	buf := make([]byte, 0, 1<<16)
	buf = append(buf, builtMagic...)
	buf = append(buf, builtVersion)

	st := &b.Stats
	buf = binary.AppendUvarint(buf, uint64(st.Txns))
	buf = binary.AppendUvarint(buf, uint64(st.Epochs))
	buf = binary.AppendUvarint(buf, st.TotalInstrs)
	buf = binary.AppendUvarint(buf, st.IterInstrs)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.Coverage))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.AvgThreadSize))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(st.ThreadsPerTxn))

	buf = binary.LittleEndian.AppendUint64(buf, b.Digest)

	buf = binary.AppendUvarint(buf, uint64(len(b.Outputs)))
	for _, vals := range b.Outputs {
		buf = binary.AppendUvarint(buf, uint64(len(vals)))
		for _, v := range vals {
			buf = binary.AppendVarint(buf, v)
		}
	}

	names := b.PCs.Names()
	buf = binary.AppendUvarint(buf, uint64(len(names)))
	for _, n := range names {
		buf = binary.AppendUvarint(buf, uint64(len(n)))
		buf = append(buf, n...)
	}

	buf = binary.AppendUvarint(buf, uint64(len(b.Program.Units)))
	for _, u := range b.Program.Units {
		flags := byte(0)
		if u.Barrier {
			flags |= 1
		}
		buf = append(buf, flags)
		buf = u.Trace.AppendBinary(buf)
	}
	return buf
}

// DecodeBuilt parses the binary cache format back into a Built. The result
// is read-only shareable exactly like a fresh Build (and its Env is nil —
// nothing reads the environment after a build). Truncated or inconsistent
// input returns an error, never a panic.
func DecodeBuilt(data []byte) (*Built, error) {
	if len(data) < len(builtMagic)+1 {
		return nil, fmt.Errorf("workload: built frame truncated (%d bytes)", len(data))
	}
	if string(data[:len(builtMagic)]) != builtMagic {
		return nil, fmt.Errorf("workload: bad built magic")
	}
	if v := data[len(builtMagic)]; v != builtVersion {
		return nil, fmt.Errorf("workload: built encoding version %d, want %d", v, builtVersion)
	}
	data = data[len(builtMagic)+1:]

	d := &builtDecoder{data: data}
	b := &Built{Program: &sim.Program{}}
	st := &b.Stats
	st.Txns = int(d.uvarint("txns"))
	st.Epochs = int(d.uvarint("epochs"))
	st.TotalInstrs = d.uvarint("total instrs")
	st.IterInstrs = d.uvarint("iter instrs")
	st.Coverage = d.float64("coverage")
	st.AvgThreadSize = d.float64("avg thread size")
	st.ThreadsPerTxn = d.float64("threads per txn")
	b.Digest = d.uint64("digest")

	ntxn := d.uvarint("output txns")
	if d.err == nil && ntxn > maxOutputs {
		d.fail(fmt.Errorf("implausible output count %d", ntxn))
	}
	if d.err == nil {
		b.Outputs = make([][]int64, 0, ntxn)
	}
	for i := uint64(0); i < ntxn && d.err == nil; i++ {
		nvals := d.uvarint("output values")
		if nvals > maxOutputs {
			d.fail(fmt.Errorf("implausible output width %d", nvals))
			break
		}
		vals := make([]int64, 0, nvals)
		for j := uint64(0); j < nvals && d.err == nil; j++ {
			vals = append(vals, d.varint("output value"))
		}
		b.Outputs = append(b.Outputs, vals)
	}

	nnames := d.uvarint("pc names")
	if d.err == nil && nnames > maxNames {
		d.fail(fmt.Errorf("implausible name count %d", nnames))
	}
	names := make([]string, 0, min(nnames, maxNames))
	for i := uint64(0); i < nnames && d.err == nil; i++ {
		names = append(names, d.str("pc name"))
	}
	b.PCs = isa.PCRegistryFromNames(names)

	nunits := d.uvarint("units")
	if d.err == nil && nunits > maxUnits {
		d.fail(fmt.Errorf("implausible unit count %d", nunits))
	}
	if d.err == nil {
		b.Program.Units = make([]sim.Unit, 0, nunits)
	}
	for i := uint64(0); i < nunits && d.err == nil; i++ {
		flags := d.byte("unit flags")
		if d.err != nil {
			break
		}
		t, rest, err := trace.DecodeBinary(d.data)
		if err != nil {
			d.fail(err)
			break
		}
		d.data = rest
		b.Program.Units = append(b.Program.Units, sim.Unit{Trace: t, Barrier: flags&1 != 0})
	}
	if d.err != nil {
		return nil, fmt.Errorf("workload: %w", d.err)
	}
	if len(d.data) != 0 {
		return nil, fmt.Errorf("workload: %d trailing bytes after built frame", len(d.data))
	}
	if b.PCs.Len() != len(names) {
		return nil, fmt.Errorf("workload: duplicate pc names in built frame")
	}
	return b, nil
}

// builtDecoder is a cursor with sticky error handling over the frame body.
type builtDecoder struct {
	data []byte
	err  error
}

func (d *builtDecoder) fail(err error) {
	if d.err == nil {
		d.err = err
	}
}

func (d *builtDecoder) uvarint(field string) uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data)
	if n <= 0 {
		d.fail(fmt.Errorf("bad varint for %s", field))
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *builtDecoder) varint(field string) int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data)
	if n <= 0 {
		d.fail(fmt.Errorf("bad varint for %s", field))
		return 0
	}
	d.data = d.data[n:]
	return v
}

func (d *builtDecoder) uint64(field string) uint64 {
	if d.err != nil {
		return 0
	}
	if len(d.data) < 8 {
		d.fail(fmt.Errorf("truncated %s", field))
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data)
	d.data = d.data[8:]
	return v
}

func (d *builtDecoder) float64(field string) float64 {
	return math.Float64frombits(d.uint64(field))
}

func (d *builtDecoder) byte(field string) byte {
	if d.err != nil {
		return 0
	}
	if len(d.data) == 0 {
		d.fail(fmt.Errorf("truncated %s", field))
		return 0
	}
	v := d.data[0]
	d.data = d.data[1:]
	return v
}

func (d *builtDecoder) str(field string) string {
	n := d.uvarint(field + " length")
	if d.err != nil {
		return ""
	}
	if n > maxNameLen || uint64(len(d.data)) < n {
		d.fail(fmt.Errorf("bad length %d for %s", n, field))
		return ""
	}
	s := string(d.data[:n])
	d.data = d.data[n:]
	return s
}
