package trace

import "subthreads/internal/isa"

// Pos is a saved cursor position — the state a sub-thread checkpoint needs to
// restart execution from (the register-file backup of §2.2 is modeled as
// zero-cost, so a position is all there is to save).
type Pos struct {
	idx  int    // event index
	off  uint32 // instructions already consumed inside events[idx]
	done uint64 // total instructions consumed before this position
}

// Done reports how many dynamic instructions precede the position.
func (p Pos) Done() uint64 { return p.done }

// Index reports the event index of the position.
func (p Pos) Index() int { return p.idx }

// Offset reports the instructions already consumed inside the event at Index.
func (p Pos) Offset() uint32 { return p.off }

// MakePos reconstructs a position from its components — the inverse of
// Index/Offset/Done, used by the whole-machine snapshot codec to restore
// cursor and checkpoint state. The caller is responsible for the components
// describing a real position in the trace being walked.
func MakePos(idx int, off uint32, done uint64) Pos {
	return Pos{idx: idx, off: off, done: done}
}

// Cursor walks a Trace, supporting checkpoint (Pos) and rewind (Seek).
type Cursor struct {
	t   *Trace
	pos Pos
}

// NewCursor returns a cursor at the start of t.
func NewCursor(t *Trace) *Cursor { return &Cursor{t: t} }

// Reset repoints the cursor at the start of t, allowing one cursor to be
// reused across traces (the simulator keeps one per core).
func (c *Cursor) Reset(t *Trace) {
	c.t = t
	c.pos = Pos{}
}

// Trace returns the trace being walked.
func (c *Cursor) Trace() *Trace { return c.t }

// AtEnd reports whether the whole trace has been consumed.
func (c *Cursor) AtEnd() bool { return c.pos.idx >= len(c.t.events) }

// Done reports the number of dynamic instructions consumed so far.
func (c *Cursor) Done() uint64 { return c.pos.done }

// Pos returns the current position for later Seek.
func (c *Cursor) Pos() Pos { return c.pos }

// Seek rewinds (or forwards) the cursor to a previously captured position.
func (c *Cursor) Seek(p Pos) { c.pos = p }

// Rewind returns the cursor to the start of the trace.
func (c *Cursor) Rewind() { c.pos = Pos{} }

// Next consumes and returns the next event. For ALU runs it consumes at most
// maxALU instructions and returns an event with the clipped run length, so a
// 4-wide core can consume a long run across several cycles. ok is false at
// end of trace.
func (c *Cursor) Next(maxALU uint32) (ev Event, ok bool) {
	if c.AtEnd() {
		return Event{}, false
	}
	e := c.t.events[c.pos.idx]
	if e.Kind == isa.ALU {
		remaining := e.N - c.pos.off
		n := remaining
		if maxALU < n {
			n = maxALU
		}
		if n == 0 {
			// Caller has no issue slots; treat as a 0-instruction peek miss.
			return Event{}, false
		}
		c.pos.off += n
		c.pos.done += uint64(n)
		if c.pos.off == e.N {
			c.pos.idx++
			c.pos.off = 0
		}
		return Event{Kind: isa.ALU, N: n}, true
	}
	c.pos.idx++
	c.pos.done++
	e.N = 1
	return e, true
}

// Peek returns the next event kind without consuming it. ok is false at end.
func (c *Cursor) Peek() (k isa.Kind, ok bool) {
	if c.AtEnd() {
		return 0, false
	}
	return c.t.events[c.pos.idx].Kind, true
}

// PeekEvent returns the next event in full without consuming it. For ALU
// runs the returned N is the remaining run length.
func (c *Cursor) PeekEvent() (ev Event, ok bool) {
	if c.AtEnd() {
		return Event{}, false
	}
	ev = c.t.events[c.pos.idx]
	ev.N -= c.pos.off
	return ev, true
}
