package trace

import (
	"encoding/binary"
	"fmt"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

// Compact binary encoding of a Trace, used by the persistent build-artifact
// cache (internal/cas via internal/workload). The encoding is hand-rolled
// rather than gob/reflection so it is small, fast, versioned at the
// container level (workload's Built frame), and byte-stable: one event costs
// 1 byte of kind plus only the varint fields that kind actually carries.
//
// Decoding reconstructs the exact event sequence — ALU run lengths included
// — so a decoded trace replays cycle-identically to the recorded one; the
// derived instruction and per-kind counters are recomputed from the events,
// keeping a decoded trace self-consistent by construction.

// maxEvents bounds a single trace's decoded event count (a sanity cap so a
// corrupted-but-well-framed length cannot force a giant allocation; real
// traces are a few hundred thousand events).
const maxEvents = 1 << 28

// AppendBinary appends the compact encoding of t to buf and returns the
// extended slice.
func (t *Trace) AppendBinary(buf []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(t.events)))
	for i := range t.events {
		e := &t.events[i]
		buf = append(buf, byte(e.Kind))
		switch e.Kind {
		case isa.ALU:
			buf = binary.AppendUvarint(buf, uint64(e.N))
		case isa.Branch:
			buf = binary.AppendUvarint(buf, uint64(e.PC))
			taken := byte(0)
			if e.Taken {
				taken = 1
			}
			buf = append(buf, taken)
		case isa.Load, isa.Store, isa.LatchAcquire, isa.LatchRelease:
			buf = binary.AppendUvarint(buf, uint64(e.PC))
			buf = binary.AppendUvarint(buf, uint64(e.Addr))
		default:
			// Long-latency ops (IntMul, IntDiv, FP*) carry only their kind.
		}
	}
	return buf
}

// DecodeBinary decodes one trace from the front of data, returning the
// trace and the unconsumed remainder. Every field is bounds-checked: a
// truncated or inconsistent stream is an error, never a panic.
func DecodeBinary(data []byte) (*Trace, []byte, error) {
	n, data, err := uvarint(data, "event count")
	if err != nil {
		return nil, nil, err
	}
	if n > maxEvents {
		return nil, nil, fmt.Errorf("trace: implausible event count %d", n)
	}
	b := Builder{}
	b.t.events = make([]Event, 0, n)
	for i := uint64(0); i < n; i++ {
		if len(data) == 0 {
			return nil, nil, fmt.Errorf("trace: truncated at event %d/%d", i, n)
		}
		kind := isa.Kind(data[0])
		data = data[1:]
		if int(kind) >= isa.NumKinds {
			return nil, nil, fmt.Errorf("trace: unknown event kind %d", kind)
		}
		e := Event{Kind: kind, N: 1}
		switch kind {
		case isa.ALU:
			var run uint64
			run, data, err = uvarint(data, "alu run")
			if err != nil {
				return nil, nil, err
			}
			if run == 0 || run > 1<<32-1 {
				return nil, nil, fmt.Errorf("trace: bad alu run length %d", run)
			}
			e.N = uint32(run)
		case isa.Branch:
			var pc uint64
			pc, data, err = uvarint(data, "branch pc")
			if err != nil {
				return nil, nil, err
			}
			if len(data) == 0 {
				return nil, nil, fmt.Errorf("trace: truncated branch outcome")
			}
			if pc > 1<<32-1 {
				return nil, nil, fmt.Errorf("trace: branch pc %d out of range", pc)
			}
			e.PC, e.Taken = isa.PC(pc), data[0] != 0
			data = data[1:]
		case isa.Load, isa.Store, isa.LatchAcquire, isa.LatchRelease:
			var pc, addr uint64
			pc, data, err = uvarint(data, "mem pc")
			if err != nil {
				return nil, nil, err
			}
			addr, data, err = uvarint(data, "mem addr")
			if err != nil {
				return nil, nil, err
			}
			if pc > 1<<32-1 || addr > 1<<32-1 {
				return nil, nil, fmt.Errorf("trace: pc %d / addr %d out of range", pc, addr)
			}
			e.PC, e.Addr = isa.PC(pc), mem.Addr(addr)
		}
		// push (not the merging ALU method) preserves the recorded event
		// sequence exactly while recomputing instrs and per-kind counts.
		b.push(e)
	}
	return b.Finish(), data, nil
}

// uvarint consumes one varint from data, naming the field in errors.
func uvarint(data []byte, field string) (uint64, []byte, error) {
	v, n := binary.Uvarint(data)
	if n <= 0 {
		return 0, nil, fmt.Errorf("trace: bad varint for %s", field)
	}
	return v, data[n:], nil
}
