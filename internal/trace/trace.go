// Package trace holds the instruction traces that the workload substrate
// records and the simulator replays. A speculative thread (epoch) is one
// trace; rewinding to a sub-thread checkpoint is implemented by seeking the
// trace cursor back to a saved position and replaying — deterministic replay
// is exactly what the paper's trace-driven simulator does when a violated
// thread restarts.
package trace

import (
	"fmt"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

// Event is one entry of a trace. ALU events are run-length compressed:
// N consecutive simple integer instructions become a single event with
// N > 1. All other kinds have N == 1.
type Event struct {
	Kind  isa.Kind
	PC    isa.PC
	Addr  mem.Addr // Load, Store, LatchAcquire, LatchRelease
	N     uint32   // run length; >= 1
	Taken bool     // Branch outcome
}

func (e Event) String() string {
	switch e.Kind {
	case isa.ALU:
		return fmt.Sprintf("alu x%d", e.N)
	case isa.Branch:
		return fmt.Sprintf("branch pc=%d taken=%v", e.PC, e.Taken)
	case isa.Load, isa.Store, isa.LatchAcquire, isa.LatchRelease:
		return fmt.Sprintf("%v pc=%d addr=%v", e.Kind, e.PC, e.Addr)
	default:
		return e.Kind.String()
	}
}

// Trace is an immutable recorded instruction stream.
type Trace struct {
	events []Event
	instrs uint64
	counts [isa.NumKinds]uint64
}

// Events returns the underlying event slice (read-only by convention).
func (t *Trace) Events() []Event { return t.events }

// Instrs is the total dynamic instruction count of the trace.
func (t *Trace) Instrs() uint64 { return t.instrs }

// Count reports how many dynamic instructions of kind k the trace holds.
func (t *Trace) Count(k isa.Kind) uint64 { return t.counts[k] }

// MemRefs is the number of loads plus stores.
func (t *Trace) MemRefs() uint64 { return t.counts[isa.Load] + t.counts[isa.Store] }

// Recorder receives the instruction stream emitted by the workload substrate
// while it executes. Builder records it; Null discards it (used when loading
// the database, which is not timed).
type Recorder interface {
	Load(pc isa.PC, addr mem.Addr)
	Store(pc isa.PC, addr mem.Addr)
	ALU(n uint32)
	Op(k isa.Kind) // single long-latency op: IntMul, IntDiv, FPOp, FPDiv, FPSqrt
	Branch(pc isa.PC, taken bool)
	LatchAcquire(pc isa.PC, addr mem.Addr)
	LatchRelease(pc isa.PC, addr mem.Addr)
}

// Builder accumulates events into a Trace, merging consecutive ALU runs.
type Builder struct {
	t Trace
}

// NewBuilder returns an empty Builder.
func NewBuilder() *Builder { return &Builder{} }

// Reset discards everything recorded so far, retaining capacity.
func (b *Builder) Reset() {
	b.t.events = b.t.events[:0]
	b.t.instrs = 0
	b.t.counts = [isa.NumKinds]uint64{}
}

// Finish returns the recorded trace. The Builder must not be reused without
// Reset afterwards (the returned Trace aliases its storage).
func (b *Builder) Finish() *Trace {
	t := b.t
	return &t
}

// Instrs reports the instructions recorded so far.
func (b *Builder) Instrs() uint64 { return b.t.instrs }

func (b *Builder) push(e Event) {
	b.t.events = append(b.t.events, e)
	b.t.instrs += uint64(e.N)
	b.t.counts[e.Kind] += uint64(e.N)
}

// Load implements Recorder.
func (b *Builder) Load(pc isa.PC, addr mem.Addr) {
	b.push(Event{Kind: isa.Load, PC: pc, Addr: addr, N: 1})
}

// Store implements Recorder.
func (b *Builder) Store(pc isa.PC, addr mem.Addr) {
	b.push(Event{Kind: isa.Store, PC: pc, Addr: addr, N: 1})
}

// ALU implements Recorder, merging into a preceding ALU run when possible.
func (b *Builder) ALU(n uint32) {
	if n == 0 {
		return
	}
	if l := len(b.t.events); l > 0 && b.t.events[l-1].Kind == isa.ALU {
		b.t.events[l-1].N += n
		b.t.instrs += uint64(n)
		b.t.counts[isa.ALU] += uint64(n)
		return
	}
	b.push(Event{Kind: isa.ALU, N: n})
}

// Op implements Recorder.
func (b *Builder) Op(k isa.Kind) {
	b.push(Event{Kind: k, N: 1})
}

// Branch implements Recorder.
func (b *Builder) Branch(pc isa.PC, taken bool) {
	b.push(Event{Kind: isa.Branch, PC: pc, Taken: taken, N: 1})
}

// LatchAcquire implements Recorder.
func (b *Builder) LatchAcquire(pc isa.PC, addr mem.Addr) {
	b.push(Event{Kind: isa.LatchAcquire, PC: pc, Addr: addr, N: 1})
}

// LatchRelease implements Recorder.
func (b *Builder) LatchRelease(pc isa.PC, addr mem.Addr) {
	b.push(Event{Kind: isa.LatchRelease, PC: pc, Addr: addr, N: 1})
}

// Null is a Recorder that discards everything.
type Null struct{}

func (Null) Load(isa.PC, mem.Addr)         {}
func (Null) Store(isa.PC, mem.Addr)        {}
func (Null) ALU(uint32)                    {}
func (Null) Op(isa.Kind)                   {}
func (Null) Branch(isa.PC, bool)           {}
func (Null) LatchAcquire(isa.PC, mem.Addr) {}
func (Null) LatchRelease(isa.PC, mem.Addr) {}

var _ Recorder = (*Builder)(nil)
var _ Recorder = Null{}
