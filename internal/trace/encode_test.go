package trace

import (
	"reflect"
	"testing"

	"subthreads/internal/isa"
)

// sampleTrace exercises every event kind, including back-to-back ALU runs
// (which the Builder merges) and a run length > 1.
func sampleTrace() *Trace {
	b := NewBuilder()
	b.ALU(3)
	b.ALU(2) // merges with the run above
	b.Load(isa.PC(7), 0x1000)
	b.Store(isa.PC(8), 0x1008)
	b.Branch(isa.PC(9), true)
	b.Branch(isa.PC(9), false)
	b.Op(isa.IntMul)
	b.Op(isa.IntDiv)
	b.LatchAcquire(isa.PC(10), 0x2000)
	b.ALU(1)
	b.LatchRelease(isa.PC(10), 0x2000)
	return b.Finish()
}

func TestBinaryRoundTrip(t *testing.T) {
	want := sampleTrace()
	enc := want.AppendBinary(nil)
	got, rest, err := DecodeBinary(enc)
	if err != nil {
		t.Fatalf("DecodeBinary: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("DecodeBinary left %d bytes unconsumed", len(rest))
	}
	if !reflect.DeepEqual(got.Events(), want.Events()) {
		t.Fatalf("events round-trip mismatch:\n got %v\nwant %v", got.Events(), want.Events())
	}
	if got.Instrs() != want.Instrs() {
		t.Fatalf("instrs = %d, want %d", got.Instrs(), want.Instrs())
	}
	for k := isa.Kind(0); int(k) < isa.NumKinds; k++ {
		if got.Count(k) != want.Count(k) {
			t.Fatalf("count[%v] = %d, want %d", k, got.Count(k), want.Count(k))
		}
	}
}

// Encoding is prefix-framed: two traces concatenate and decode back in order.
func TestBinaryConcatenation(t *testing.T) {
	a := sampleTrace()
	b := NewBuilder()
	b.ALU(42)
	second := b.Finish()

	buf := a.AppendBinary(nil)
	buf = second.AppendBinary(buf)

	gotA, rest, err := DecodeBinary(buf)
	if err != nil {
		t.Fatalf("decode first: %v", err)
	}
	gotB, rest, err := DecodeBinary(rest)
	if err != nil {
		t.Fatalf("decode second: %v", err)
	}
	if len(rest) != 0 {
		t.Fatalf("%d trailing bytes", len(rest))
	}
	if !reflect.DeepEqual(gotA.Events(), a.Events()) || !reflect.DeepEqual(gotB.Events(), second.Events()) {
		t.Fatal("concatenated traces decoded out of order")
	}
}

// Garbage and truncation must produce errors, never panics.
func TestDecodeRejectsMalformed(t *testing.T) {
	valid := sampleTrace().AppendBinary(nil)
	cases := map[string][]byte{
		"empty":          {},
		"truncated":      valid[:len(valid)/2],
		"bad kind":       {1, 0xff},
		"zero alu run":   {1, byte(isa.ALU), 0},
		"truncated alu":  {1, byte(isa.ALU)},
		"huge count":     {0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		"missing events": {5},
	}
	for name, data := range cases {
		if _, _, err := DecodeBinary(data); err == nil {
			t.Errorf("%s: DecodeBinary accepted malformed input", name)
		}
	}
}
