package trace

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

func buildSample() *Trace {
	b := NewBuilder()
	b.ALU(10)
	b.Load(1, 0x100)
	b.ALU(3)
	b.ALU(4) // merges with previous run
	b.Store(2, 0x104)
	b.Branch(3, true)
	b.Op(isa.IntDiv)
	b.LatchAcquire(4, 0x200)
	b.LatchRelease(5, 0x200)
	return b.Finish()
}

func TestBuilderMergesALURuns(t *testing.T) {
	tr := buildSample()
	evs := tr.Events()
	// alu(10), load, alu(7), store, branch, idiv, latch-acq, latch-rel
	if len(evs) != 8 {
		t.Fatalf("got %d events, want 8: %v", len(evs), evs)
	}
	if evs[2].Kind != isa.ALU || evs[2].N != 7 {
		t.Errorf("ALU runs did not merge: %v", evs[2])
	}
	if tr.Instrs() != 10+1+7+1+1+1+1+1 {
		t.Errorf("Instrs = %d", tr.Instrs())
	}
	if tr.Count(isa.ALU) != 17 {
		t.Errorf("ALU count = %d", tr.Count(isa.ALU))
	}
	if tr.MemRefs() != 2 {
		t.Errorf("MemRefs = %d", tr.MemRefs())
	}
}

func TestBuilderZeroALUIgnored(t *testing.T) {
	b := NewBuilder()
	b.ALU(0)
	tr := b.Finish()
	if len(tr.Events()) != 0 || tr.Instrs() != 0 {
		t.Errorf("ALU(0) recorded something: %v", tr.Events())
	}
}

func TestBuilderReset(t *testing.T) {
	b := NewBuilder()
	b.ALU(5)
	b.Load(1, 0x10)
	b.Reset()
	if b.Instrs() != 0 {
		t.Fatalf("Instrs after Reset = %d", b.Instrs())
	}
	b.Store(2, 0x20)
	tr := b.Finish()
	if tr.Instrs() != 1 || tr.Count(isa.Store) != 1 || tr.Count(isa.ALU) != 0 {
		t.Errorf("post-Reset trace wrong: %+v", tr)
	}
}

func TestCursorWalk(t *testing.T) {
	tr := buildSample()
	c := NewCursor(tr)
	var instrs uint64
	for {
		ev, ok := c.Next(4)
		if !ok {
			break
		}
		instrs += uint64(ev.N)
		if ev.Kind == isa.ALU && ev.N > 4 {
			t.Errorf("ALU chunk %d exceeds maxALU 4", ev.N)
		}
	}
	if instrs != tr.Instrs() {
		t.Errorf("cursor consumed %d instrs, trace has %d", instrs, tr.Instrs())
	}
	if !c.AtEnd() {
		t.Error("cursor not at end")
	}
	if _, ok := c.Next(4); ok {
		t.Error("Next after end returned ok")
	}
}

func TestCursorALUClipping(t *testing.T) {
	b := NewBuilder()
	b.ALU(10)
	c := NewCursor(b.Finish())
	ev, ok := c.Next(4)
	if !ok || ev.N != 4 {
		t.Fatalf("first chunk = %v,%v", ev, ok)
	}
	ev, _ = c.Next(4)
	if ev.N != 4 {
		t.Fatalf("second chunk N = %d", ev.N)
	}
	ev, _ = c.Next(4)
	if ev.N != 2 {
		t.Fatalf("final chunk N = %d", ev.N)
	}
	if !c.AtEnd() {
		t.Error("not at end after consuming run")
	}
	if ev, ok := c.Next(0); ok {
		t.Errorf("Next(0) consumed %v", ev)
	}
}

func TestCursorNextZeroBudgetMidRun(t *testing.T) {
	b := NewBuilder()
	b.ALU(8)
	c := NewCursor(b.Finish())
	c.Next(3)
	if _, ok := c.Next(0); ok {
		t.Error("Next(0) mid-run must not consume")
	}
	if c.Done() != 3 {
		t.Errorf("Done = %d, want 3", c.Done())
	}
}

func TestCursorSeekRestoresExactly(t *testing.T) {
	tr := buildSample()
	c := NewCursor(tr)
	c.Next(4)
	c.Next(4) // mid-run positions too
	mark := c.Pos()
	var after []Event
	for {
		ev, ok := c.Next(4)
		if !ok {
			break
		}
		after = append(after, ev)
	}
	c.Seek(mark)
	if c.Done() != mark.Done() {
		t.Fatalf("Done after Seek = %d, want %d", c.Done(), mark.Done())
	}
	for i := 0; ; i++ {
		ev, ok := c.Next(4)
		if !ok {
			if i != len(after) {
				t.Fatalf("replay ended early at %d of %d", i, len(after))
			}
			break
		}
		if i >= len(after) || ev != after[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, ev, after[i])
		}
	}
}

func TestCursorRewind(t *testing.T) {
	tr := buildSample()
	c := NewCursor(tr)
	for {
		if _, ok := c.Next(16); !ok {
			break
		}
	}
	c.Rewind()
	if c.Done() != 0 || c.AtEnd() {
		t.Error("Rewind did not reset cursor")
	}
}

func TestPeek(t *testing.T) {
	tr := buildSample()
	c := NewCursor(tr)
	if k, ok := c.Peek(); !ok || k != isa.ALU {
		t.Errorf("Peek = %v,%v", k, ok)
	}
	c.Next(100) // consume the ALU run
	if k, ok := c.Peek(); !ok || k != isa.Load {
		t.Errorf("Peek after run = %v,%v", k, ok)
	}
}

// Property: replay from any checkpoint is deterministic — consuming the trace
// twice from the same Pos yields identical instruction counts. This is the
// invariant sub-thread rewind relies on.
func TestReplayDeterminismProperty(t *testing.T) {
	f := func(seed int64, budget uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder()
		for i := 0; i < 50; i++ {
			switch rng.Intn(5) {
			case 0:
				b.ALU(uint32(rng.Intn(20) + 1))
			case 1:
				b.Load(isa.PC(rng.Intn(10)), mem.Addr(rng.Intn(1024)*4))
			case 2:
				b.Store(isa.PC(rng.Intn(10)), mem.Addr(rng.Intn(1024)*4))
			case 3:
				b.Branch(isa.PC(rng.Intn(10)), rng.Intn(2) == 0)
			case 4:
				b.Op(isa.FPOp)
			}
		}
		tr := b.Finish()
		maxALU := uint32(budget%8) + 1
		c := NewCursor(tr)
		// Walk to a random midpoint, checkpoint, finish, then replay.
		steps := rng.Intn(40)
		for i := 0; i < steps; i++ {
			c.Next(maxALU)
		}
		mark := c.Pos()
		first := drain(c, maxALU)
		c.Seek(mark)
		second := drain(c, maxALU)
		return first == second && mark.Done()+first == tr.Instrs()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func drain(c *Cursor, maxALU uint32) uint64 {
	var n uint64
	for {
		ev, ok := c.Next(maxALU)
		if !ok {
			return n
		}
		n += uint64(ev.N)
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Kind: isa.ALU, N: 5}, "alu x5"},
		{Event{Kind: isa.Load, PC: 3, Addr: 0x20, N: 1}, "load pc=3 addr=0x00000020"},
		{Event{Kind: isa.IntDiv, N: 1}, "idiv"},
	}
	for _, c := range cases {
		if got := c.ev.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestPeekEvent(t *testing.T) {
	b := NewBuilder()
	b.ALU(10)
	b.Load(5, 0x40)
	c := NewCursor(b.Finish())
	ev, ok := c.PeekEvent()
	if !ok || ev.Kind != isa.ALU || ev.N != 10 {
		t.Fatalf("PeekEvent = %v,%v", ev, ok)
	}
	c.Next(4) // consume part of the run
	ev, _ = c.PeekEvent()
	if ev.N != 6 {
		t.Errorf("mid-run PeekEvent N = %d, want remaining 6", ev.N)
	}
	c.Next(100)
	ev, _ = c.PeekEvent()
	if ev.Kind != isa.Load || ev.Addr != 0x40 {
		t.Errorf("PeekEvent after run = %v", ev)
	}
	c.Next(1)
	if _, ok := c.PeekEvent(); ok {
		t.Error("PeekEvent at end returned ok")
	}
}
