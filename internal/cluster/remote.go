package cluster

import (
	"context"
	"io"
	"log/slog"
	"net/http"
	"sort"
	"sync"
	"time"

	"subthreads/internal/service"
)

// RemoteGroup is the cross-node cache-fetch path: before recomputing a
// digest it already missed locally, a daemon (or the router, when the
// digest's owner is down) asks sibling replicas' caches via the cheap
// GET /v1/cache/{digest} endpoint. Every sibling link carries its own
// circuit breaker (the same three-state service.Breaker that guards the
// disk CAS tier), so a sick or slow replica costs a few probes and is
// then skipped for a cooldown — the fetch path degrades to recompute,
// never to an outage.
type RemoteGroup struct {
	peers []string
	hc    *http.Client
	log   *slog.Logger

	mu       sync.Mutex
	breakers map[string]*service.Breaker
	stats    map[string]*peerCounters
}

type peerCounters struct {
	fetches uint64
	hits    uint64
	misses  uint64
	errors  uint64
}

// PeerStats is one sibling link's lifetime counters plus breaker state.
type PeerStats struct {
	URL     string               `json:"url"`
	Fetches uint64               `json:"fetches"`
	Hits    uint64               `json:"hits"`
	Misses  uint64               `json:"misses"`
	Errors  uint64               `json:"errors"`
	Breaker service.BreakerStats `json:"breaker"`
}

// RemoteOptions configures a RemoteGroup; zero values get defaults.
type RemoteOptions struct {
	// Timeout bounds each sibling probe (default 2s: a cache read plus a
	// LAN round trip, with slack for a result body of a few hundred KB).
	Timeout time.Duration
	// BreakerThreshold is the consecutive-failure trip count per link
	// (default 3 — trip fast; the fallback is a local recompute, not an
	// error).
	BreakerThreshold int
	// BreakerCooldown is how long a tripped link rests before a half-open
	// trial (default 5s).
	BreakerCooldown time.Duration
	// Logger receives per-link breaker transitions; nil disables logging.
	Logger *slog.Logger
}

// NewRemoteGroup builds the fetch path over the sibling base URLs.
func NewRemoteGroup(peers []string, opts RemoteOptions) *RemoteGroup {
	if opts.Timeout <= 0 {
		opts.Timeout = 2 * time.Second
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 3
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 5 * time.Second
	}
	g := &RemoteGroup{
		peers:    append([]string(nil), peers...),
		hc:       &http.Client{Timeout: opts.Timeout},
		log:      opts.Logger,
		breakers: make(map[string]*service.Breaker, len(peers)),
		stats:    make(map[string]*peerCounters, len(peers)),
	}
	for _, p := range g.peers {
		peer := p
		// Slow-call detection is disabled (the HTTP client timeout already
		// bounds a probe); only transport errors and 5xx count as failures.
		b := service.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.Timeout*2)
		if g.log != nil {
			b.OnChange(func(from, to string) {
				g.log.LogAttrs(context.Background(), slog.LevelWarn, "peer breaker transition",
					slog.String("component", "remote-cache"), slog.String("peer", peer),
					slog.String("from", from), slog.String("to", to))
			})
		}
		g.breakers[peer] = b
		g.stats[peer] = &peerCounters{}
	}
	return g
}

// Fetch asks siblings for digest's cached result, in a deterministic
// digest-rotated order (so concurrent fetches of different digests spread
// their first probes across the fleet) with any `preferred` URLs tried
// first — the router passes the ring's preference list so the digest's
// replica is asked before random siblings. Returns the first hit's body
// and the answering peer; ok is false when every sibling missed, failed,
// or was breaker-skipped. Never computes anything.
func (g *RemoteGroup) Fetch(ctx context.Context, digest string, preferred ...string) (body []byte, from string, ok bool) {
	if len(g.peers) == 0 {
		return nil, "", false
	}
	order := g.order(digest, preferred)
	for _, peer := range order {
		b := g.breakers[peer]
		if !b.Allow() {
			continue
		}
		body, outcome := g.fetchOne(ctx, peer, digest)
		g.mu.Lock()
		c := g.stats[peer]
		c.fetches++
		switch outcome {
		case fetchHit:
			c.hits++
		case fetchMiss:
			c.misses++
		default:
			c.errors++
		}
		g.mu.Unlock()
		if outcome == fetchHit {
			return body, peer, true
		}
		if ctx.Err() != nil {
			return nil, "", false
		}
	}
	return nil, "", false
}

type fetchOutcome int

const (
	fetchHit fetchOutcome = iota
	fetchMiss
	fetchErr
)

func (g *RemoteGroup) fetchOne(ctx context.Context, peer, digest string) ([]byte, fetchOutcome) {
	start := time.Now()
	b := g.breakers[peer]
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, peer+"/v1/cache/"+digest, nil)
	if err != nil {
		b.Observe("fetch", time.Since(start), true)
		return nil, fetchErr
	}
	resp, err := g.hc.Do(req)
	if err != nil {
		b.Observe("fetch", time.Since(start), true)
		return nil, fetchErr
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusOK:
		data, rerr := io.ReadAll(resp.Body)
		if rerr != nil || len(data) == 0 {
			b.Observe("fetch", time.Since(start), true)
			return nil, fetchErr
		}
		b.Observe("fetch", time.Since(start), false)
		return data, fetchHit
	case resp.StatusCode == http.StatusNotFound:
		// A miss is a healthy answer: the sibling is fine, it just does
		// not have the digest. Only transport errors and 5xx trip the link.
		b.Observe("fetch", time.Since(start), false)
		return nil, fetchMiss
	default:
		b.Observe("fetch", time.Since(start), resp.StatusCode >= 500)
		return nil, fetchErr
	}
}

// order returns the probe order: preferred URLs (that are configured
// peers) first, then the remaining peers rotated by the digest's hash.
func (g *RemoteGroup) order(digest string, preferred []string) []string {
	isPeer := make(map[string]bool, len(g.peers))
	for _, p := range g.peers {
		isPeer[p] = true
	}
	out := make([]string, 0, len(g.peers))
	taken := make(map[string]bool, len(g.peers))
	for _, p := range preferred {
		if isPeer[p] && !taken[p] {
			out = append(out, p)
			taken[p] = true
		}
	}
	start := int(ringHash(digest) % uint64(len(g.peers)))
	for i := 0; i < len(g.peers); i++ {
		p := g.peers[(start+i)%len(g.peers)]
		if !taken[p] {
			out = append(out, p)
			taken[p] = true
		}
	}
	return out
}

// Stats snapshots every sibling link, sorted by URL.
func (g *RemoteGroup) Stats() []PeerStats {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]PeerStats, 0, len(g.peers))
	for _, p := range g.peers {
		c := g.stats[p]
		out = append(out, PeerStats{
			URL: p, Fetches: c.fetches, Hits: c.hits, Misses: c.misses,
			Errors: c.errors, Breaker: g.breakers[p].Stats(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}
