package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"sync"
	"time"

	"subthreads/internal/service"
	"subthreads/internal/telemetry"
	"subthreads/internal/version"
)

// Router fronts a fleet of tlsd workers with the daemon's own HTTP
// surface: it resolves each submitted spec to its content digest, routes
// the request to the digest's owner on the ring, and proxies the
// response back verbatim — so a client cannot tell one tlsd from a
// cluster of them, and result bytes stay byte-identical to
// `tlssim -json`.
//
// Every worker link carries its own circuit breaker. When the owner is
// down (probe-ejected, breaker-open, or failing right now), a submission
// is rescued in cost order: first the sibling replicas' caches (a warm
// digest survives its owner), then a failover recompute on the next
// preference node, and only then a 502.
type Router struct {
	ring   *Ring
	prober *Prober
	remote *RemoteGroup
	hc     *http.Client
	log    *slog.Logger
	mux    *http.ServeMux

	started  time.Time
	breakers map[string]*service.Breaker // per-worker proxy link

	mu          sync.Mutex
	jobOwner    map[string]string // job ID -> worker base URL
	jobOrder    []string          // FIFO eviction for jobOwner
	perNode     map[string]*nodeCounters
	routed      uint64
	remoteHits  uint64
	failovers   uint64
	unroutable  uint64
	proxyMicros telemetry.Histogram
}

type nodeCounters struct {
	requests uint64
	errors   uint64
}

// maxJobOwners bounds the job->owner map; beyond it the oldest routes are
// forgotten (their jobs have long since been served or expired).
const maxJobOwners = 1 << 16

// Options configures a Router; zero values get defaults.
type Options struct {
	// Workers are the tlsd base URLs (no trailing slash); required.
	Workers []string
	// VNodes is the virtual-node count per worker (default 128).
	VNodes int
	// LoadFactor is the bounded-load slack (default 1.25).
	LoadFactor float64
	// Probe configures health probing of the workers.
	Probe ProberOptions
	// Remote configures the sibling cache-rescue fetch path.
	Remote RemoteOptions
	// BreakerThreshold / BreakerCooldown configure each worker's proxy-
	// link breaker (defaults 5 failures / 10s). Only transport errors
	// count — a worker's 4xx/5xx is an answer, not a dead link.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Logger receives routing and access lines; nil disables logging.
	Logger *slog.Logger
}

// NewRouter builds a router over the worker fleet. Call Start to begin
// health probing and Close to stop it.
func NewRouter(opts Options) (*Router, error) {
	ring, err := NewRing(opts.Workers, opts.VNodes, opts.LoadFactor)
	if err != nil {
		return nil, err
	}
	if opts.BreakerThreshold <= 0 {
		opts.BreakerThreshold = 5
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 10 * time.Second
	}
	opts.Probe.Logger = opts.Logger
	opts.Remote.Logger = opts.Logger
	rt := &Router{
		ring:   ring,
		remote: NewRemoteGroup(opts.Workers, opts.Remote),
		// No client timeout: a ?wait=1 submission legitimately holds the
		// connection for the whole simulation. Per-request contexts still
		// cancel abandoned proxies.
		hc:       &http.Client{},
		log:      opts.Logger,
		started:  time.Now(),
		breakers: make(map[string]*service.Breaker, len(opts.Workers)),
		jobOwner: make(map[string]string),
		perNode:  make(map[string]*nodeCounters, len(opts.Workers)),
	}
	rt.prober = NewProber(ring, opts.Probe)
	for _, w := range opts.Workers {
		node := w
		// Slow-call detection off (simulations take seconds by design):
		// only transport errors trip a proxy link.
		b := service.NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, 365*24*time.Hour)
		if rt.log != nil {
			b.OnChange(func(from, to string) {
				rt.log.LogAttrs(context.Background(), slog.LevelWarn, "worker breaker transition",
					slog.String("component", "router"), slog.String("node", node),
					slog.String("from", from), slog.String("to", to))
			})
		}
		rt.breakers[node] = b
		rt.perNode[node] = &nodeCounters{}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", rt.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", rt.handleJobProxy)
	mux.HandleFunc("DELETE /v1/jobs/{id}", rt.handleJobProxy)
	mux.HandleFunc("GET /v1/jobs/{id}/result", rt.handleJobProxy)
	mux.HandleFunc("GET /v1/jobs/{id}/events", rt.handleJobProxy)
	mux.HandleFunc("GET /v1/cache/{digest}", rt.handleCacheGet)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /readyz", rt.handleReadyz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	rt.mux = mux
	return rt, nil
}

// Start begins health probing (the first round runs synchronously in the
// probe goroutine, so readiness converges within one probe timeout).
func (rt *Router) Start() { rt.prober.Start() }

// Close stops health probing.
func (rt *Router) Close() { rt.prober.Stop() }

// Ring exposes the routing ring (tests pin placement through it).
func (rt *Router) Ring() *Ring { return rt.ring }

// Handler is the router's HTTP surface, wrapped in the same correlation
// and access-log middleware discipline as the daemon's.
func (rt *Router) Handler() http.Handler { return rt.observed(rt.mux) }

// observed assigns or validates the request's correlation ID, echoes it
// on the response, and emits one access-log line per request.
func (rt *Router) observed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		corr := service.SanitizeCorrelation(r.Header.Get(service.CorrelationHeader))
		if corr == "" {
			corr = service.NewCorrelationID()
		}
		w.Header().Set(service.CorrelationHeader, corr)
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r.WithContext(withCorr(r.Context(), corr)))
		if rt.log != nil {
			rt.log.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("component", "router"),
				slog.String("corr", corr),
				slog.String("method", r.Method),
				slog.String("path", r.URL.Path),
				slog.Int("status", sw.code),
				slog.Int64("dur_us", time.Since(start).Microseconds()))
		}
	})
}

type corrKey struct{}

func withCorr(ctx context.Context, corr string) context.Context {
	return context.WithValue(ctx, corrKey{}, corr)
}

func corrFrom(ctx context.Context) string {
	corr, _ := ctx.Value(corrKey{}).(string)
	return corr
}

// statusWriter records the response code and forwards Flush so SSE
// proxying streams instead of buffering.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	w.code = code
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// maxSpecBytes mirrors the daemon's submission body bound.
const maxSpecBytes = 1 << 20

// handleSubmit resolves the spec to its digest, routes it, and proxies.
// The rescue ladder when the owner cannot answer: sibling caches, then a
// failover recompute on the next preference node, then 502.
func (rt *Router) handleSubmit(w http.ResponseWriter, r *http.Request) {
	payload, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, "read body: %v", err)
		return
	}
	var spec service.JobSpec
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		// Same shape and status the daemon would answer, so clients see
		// one contract whether or not a router is in front.
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	res, err := spec.Resolve()
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	digest := res.Digest

	node, release, ok := rt.ring.Route(digest)
	if !ok {
		rt.mu.Lock()
		rt.unroutable++
		rt.mu.Unlock()
		writeError(w, http.StatusServiceUnavailable, "no alive workers")
		return
	}
	defer release()
	rt.mu.Lock()
	rt.routed++
	rt.mu.Unlock()

	pref := rt.ring.Preference(digest, len(rt.breakers))
	if rt.breakers[node].Allow() {
		if done := rt.proxySubmit(w, r, node, payload); done {
			return
		}
		// Transport failure mid-route: eject the node now rather than
		// waiting for the prober to notice.
		if rt.ring.SetAlive(node, false) && rt.log != nil {
			rt.log.LogAttrs(r.Context(), slog.LevelWarn, "worker ejected on proxy failure",
				slog.String("component", "router"), slog.String("node", node),
				slog.String("corr", corrFrom(r.Context())))
		}
	}

	// Rescue 1: the digest may be warm in a sibling's cache — serving it
	// from there preserves byte-identity and costs one LAN fetch.
	if body, from, ok := rt.remote.Fetch(r.Context(), digest, pref...); ok {
		rt.mu.Lock()
		rt.remoteHits++
		rt.mu.Unlock()
		if rt.log != nil {
			rt.log.LogAttrs(r.Context(), slog.LevelInfo, "submission rescued from sibling cache",
				slog.String("component", "router"), slog.String("digest", digest),
				slog.String("peer", from), slog.String("corr", corrFrom(r.Context())))
		}
		w.Header().Set("X-Job-Digest", digest)
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("X-Cache-Tier", service.TierRemote)
		w.Header().Set("X-Served-By", from)
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		return
	}

	// Rescue 2: recompute on the next preference node.
	for _, cand := range pref {
		if cand == node || !rt.breakers[cand].Allow() {
			continue
		}
		rt.mu.Lock()
		rt.failovers++
		rt.mu.Unlock()
		if rt.log != nil {
			rt.log.LogAttrs(r.Context(), slog.LevelWarn, "submission failed over",
				slog.String("component", "router"), slog.String("digest", digest),
				slog.String("from", node), slog.String("to", cand),
				slog.String("corr", corrFrom(r.Context())))
		}
		if done := rt.proxySubmit(w, r, cand, payload); done {
			return
		}
		if rt.ring.SetAlive(cand, false) && rt.log != nil {
			rt.log.LogAttrs(r.Context(), slog.LevelWarn, "worker ejected on proxy failure",
				slog.String("component", "router"), slog.String("node", cand),
				slog.String("corr", corrFrom(r.Context())))
		}
	}
	writeError(w, http.StatusBadGateway, "no worker could serve the submission")
}

// proxySubmit forwards the submission to node. It reports done=true when
// a response (any status) was relayed to the client, and false on a
// transport failure before any byte was written — the caller may then
// rescue the request elsewhere.
func (rt *Router) proxySubmit(w http.ResponseWriter, r *http.Request, node string, payload []byte) bool {
	url := node + "/v1/jobs"
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost, url, bytes.NewReader(payload))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.CorrelationHeader, corrFrom(r.Context()))
	return rt.relay(w, req, node, true)
}

// handleJobProxy forwards a job-scoped request (status, cancel, result,
// SSE events) to the worker that owns the job ID.
func (rt *Router) handleJobProxy(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rt.mu.Lock()
	node, ok := rt.jobOwner[id]
	rt.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return
	}
	url := node + r.URL.Path
	if r.URL.RawQuery != "" {
		url += "?" + r.URL.RawQuery
	}
	req, err := http.NewRequestWithContext(r.Context(), r.Method, url, nil)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	req.Header.Set(service.CorrelationHeader, corrFrom(r.Context()))
	if accept := r.Header.Get("Accept"); accept != "" {
		req.Header.Set("Accept", accept)
	}
	if !rt.relay(w, req, node, false) {
		writeError(w, http.StatusBadGateway, "worker %s unreachable", node)
	}
}

// relay performs the proxied request and copies the response through,
// streaming (with per-chunk flush) so SSE works. It observes the node's
// breaker and counters, records job ownership from X-Job-Id, and stamps
// X-Served-By. done=false only on a transport failure with nothing
// written yet.
func (rt *Router) relay(w http.ResponseWriter, req *http.Request, node string, recordOwner bool) bool {
	start := time.Now()
	b := rt.breakers[node]
	resp, err := rt.hc.Do(req)
	rt.mu.Lock()
	c := rt.perNode[node]
	c.requests++
	if err != nil {
		c.errors++
	}
	rt.mu.Unlock()
	if err != nil {
		b.Observe("proxy", time.Since(start), true)
		return false
	}
	defer resp.Body.Close()
	b.Observe("proxy", time.Since(start), false)

	if recordOwner {
		if id := resp.Header.Get("X-Job-Id"); id != "" {
			rt.recordOwner(id, node)
		}
	}
	h := w.Header()
	for k, vs := range resp.Header {
		if hopByHop(k) || k == service.CorrelationHeader {
			continue // the middleware already stamped the router's corr echo
		}
		h[k] = vs
	}
	h.Set("X-Served-By", node)
	w.WriteHeader(resp.StatusCode)
	flushCopy(w, resp.Body)
	rt.mu.Lock()
	rt.proxyMicros.Observe(uint64(time.Since(start).Microseconds()))
	rt.mu.Unlock()
	return true
}

func (rt *Router) recordOwner(id, node string) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	if _, seen := rt.jobOwner[id]; !seen {
		rt.jobOrder = append(rt.jobOrder, id)
	}
	rt.jobOwner[id] = node
	for len(rt.jobOrder) > maxJobOwners {
		delete(rt.jobOwner, rt.jobOrder[0])
		rt.jobOrder = rt.jobOrder[1:]
	}
}

// flushCopy copies body to w, flushing after every chunk so streamed
// responses (SSE events) reach the client as they happen.
func flushCopy(w http.ResponseWriter, body io.Reader) {
	f, _ := w.(http.Flusher)
	buf := make([]byte, 32*1024)
	for {
		n, err := body.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
			if f != nil {
				f.Flush()
			}
		}
		if err != nil {
			return
		}
	}
}

// hopByHop reports headers that must not be forwarded by a proxy.
func hopByHop(k string) bool {
	switch http.CanonicalHeaderKey(k) {
	case "Connection", "Keep-Alive", "Proxy-Authenticate", "Proxy-Authorization",
		"Te", "Trailer", "Transfer-Encoding", "Upgrade":
		return true
	}
	return false
}

// handleCacheGet answers a digest probe at the cluster level: it asks the
// digest's preference replicas (then the rest of the fleet) and relays
// the first hit — a read-only endpoint, it never schedules work.
func (rt *Router) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	pref := rt.ring.Preference(digest, len(rt.breakers))
	body, from, ok := rt.remote.Fetch(r.Context(), digest, pref...)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for digest %q", digest)
		return
	}
	w.Header().Set("X-Job-Digest", digest)
	w.Header().Set("X-Cache-Tier", service.TierRemote)
	w.Header().Set("X-Served-By", from)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// routerHealth is the /healthz document.
type routerHealth struct {
	Status  string       `json:"status"`
	Version version.Info `json:"version"`
	Nodes   []NodeInfo   `json:"nodes"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, routerHealth{
		Status:  "ok",
		Version: version.Get(),
		Nodes:   rt.ring.Nodes(),
	})
}

// handleReadyz is ready when at least one worker is alive.
func (rt *Router) handleReadyz(w http.ResponseWriter, r *http.Request) {
	alive := 0
	for _, n := range rt.ring.Nodes() {
		if n.Alive {
			alive++
		}
	}
	if alive == 0 {
		writeError(w, http.StatusServiceUnavailable, "no alive workers")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "alive_workers": alive})
}

// NodeMetrics is one worker's view in the router metrics document.
type NodeMetrics struct {
	URL      string               `json:"url"`
	Alive    bool                 `json:"alive"`
	Load     int                  `json:"load"`
	Requests uint64               `json:"requests"`
	Errors   uint64               `json:"errors"`
	Breaker  service.BreakerStats `json:"breaker"`
}

// RouterMetrics is the /metrics JSON document.
type RouterMetrics struct {
	UptimeSeconds      float64                     `json:"uptime_seconds"`
	Nodes              []NodeMetrics               `json:"nodes"`
	RingRebalances     uint64                      `json:"ring_rebalances"`
	Probes             uint64                      `json:"probes"`
	ProbeFailures      uint64                      `json:"probe_failures"`
	JobsRouted         uint64                      `json:"jobs_routed"`
	RemoteCacheHits    uint64                      `json:"remote_cache_hits"`
	Failovers          uint64                      `json:"failovers"`
	Unroutable         uint64                      `json:"unroutable"`
	ProxyLatencyMicros telemetry.HistogramSnapshot `json:"proxy_latency_micros"`
	RemotePeers        []PeerStats                 `json:"remote_peers"`
}

// MetricsSnapshot assembles the router metrics document.
func (rt *Router) MetricsSnapshot() RouterMetrics {
	nodes := rt.ring.Nodes()
	rt.mu.Lock()
	m := RouterMetrics{
		UptimeSeconds:      time.Since(rt.started).Seconds(),
		RingRebalances:     rt.ring.Rebalances(),
		Probes:             rt.prober.Probes(),
		ProbeFailures:      rt.prober.Failures(),
		JobsRouted:         rt.routed,
		RemoteCacheHits:    rt.remoteHits,
		Failovers:          rt.failovers,
		Unroutable:         rt.unroutable,
		ProxyLatencyMicros: rt.proxyMicros.Snapshot(),
	}
	for _, n := range nodes {
		c := rt.perNode[n.URL]
		m.Nodes = append(m.Nodes, NodeMetrics{
			URL: n.URL, Alive: n.Alive, Load: n.Load,
			Requests: c.requests, Errors: c.errors,
			Breaker: rt.breakers[n.URL].Stats(),
		})
	}
	rt.mu.Unlock()
	m.RemotePeers = rt.remote.Stats()
	return m
}

// handleMetrics serves the router metrics: Prometheus text exposition
// under Accept: text/plain (or the OpenMetrics type), JSON otherwise —
// the same negotiation the daemon's /metrics performs.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		w.WriteHeader(http.StatusOK)
		rt.writeProm(w)
		return
	}
	writeJSON(w, http.StatusOK, rt.MetricsSnapshot())
}

// writeProm renders the router metrics as tlsrouter_* Prometheus
// families; per-worker series carry a node label.
func (rt *Router) writeProm(w io.Writer) error {
	m := rt.MetricsSnapshot()
	v := version.Get()
	p := telemetry.NewPromWriter(w)

	p.Gauge("tlsrouter_build_info",
		"Build identity of the running router; the value is always 1.", 1,
		telemetry.PromLabel{Name: "module", Value: v.Module},
		telemetry.PromLabel{Name: "version", Value: v.Version},
		telemetry.PromLabel{Name: "revision", Value: v.Revision},
		telemetry.PromLabel{Name: "go", Value: v.Go})
	p.Gauge("tlsrouter_uptime_seconds", "Seconds since the router started.", m.UptimeSeconds)

	alive := 0
	for _, n := range m.Nodes {
		if n.Alive {
			alive++
		}
	}
	p.Gauge("tlsrouter_nodes", "Workers configured in the ring.", float64(len(m.Nodes)))
	p.Gauge("tlsrouter_nodes_alive", "Workers currently alive in the ring.", float64(alive))
	for _, n := range m.Nodes {
		lbl := telemetry.PromLabel{Name: "node", Value: n.URL}
		av := 0.0
		if n.Alive {
			av = 1
		}
		p.Gauge("tlsrouter_node_alive", "Whether the worker is in the ring (1) or ejected (0).", av, lbl)
		p.Gauge("tlsrouter_node_load", "In-flight routed submissions on the worker.", float64(n.Load), lbl)
		p.Counter("tlsrouter_node_requests_total", "Requests proxied to the worker.", n.Requests, lbl)
		p.Counter("tlsrouter_node_errors_total", "Proxy transport failures against the worker.", n.Errors, lbl)
		for _, st := range service.BreakerStateNames() {
			sv := 0.0
			if n.Breaker.State == st {
				sv = 1
			}
			p.Gauge("tlsrouter_node_breaker_state",
				"Worker proxy-link circuit-breaker state (one-hot across the state label).",
				sv, lbl, telemetry.PromLabel{Name: "state", Value: st})
		}
		p.Counter("tlsrouter_node_breaker_opens_total",
			"Times the worker's proxy-link breaker tripped open.", n.Breaker.Opens, lbl)
	}

	p.Counter("tlsrouter_ring_rebalances_total",
		"Ring membership transitions (ejections plus readmissions).", m.RingRebalances)
	p.Counter("tlsrouter_probes_total", "Health probes sent to workers.", m.Probes)
	p.Counter("tlsrouter_probe_failures_total", "Health probes that failed.", m.ProbeFailures)
	p.Counter("tlsrouter_jobs_routed_total", "Submissions routed by digest.", m.JobsRouted)
	p.Counter("tlsrouter_remote_cache_hits_total",
		"Submissions rescued from a sibling replica's cache.", m.RemoteCacheHits)
	p.Counter("tlsrouter_failovers_total",
		"Submissions recomputed on a failover worker after the owner failed.", m.Failovers)
	p.Counter("tlsrouter_unroutable_total",
		"Submissions rejected because no worker was alive.", m.Unroutable)
	p.Histogram("tlsrouter_proxy_latency_microseconds",
		"End-to-end latency of proxied requests.", m.ProxyLatencyMicros)

	for _, ps := range m.RemotePeers {
		lbl := telemetry.PromLabel{Name: "node", Value: ps.URL}
		p.Counter("tlsrouter_remote_fetches_total", "Sibling cache probes sent.", ps.Fetches, lbl)
		p.Counter("tlsrouter_remote_fetch_hits_total", "Sibling cache probes that hit.", ps.Hits, lbl)
		p.Counter("tlsrouter_remote_fetch_errors_total", "Sibling cache probes that failed.", ps.Errors, lbl)
	}
	return p.Flush()
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// wantsProm mirrors the daemon's /metrics content negotiation.
func wantsProm(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch strings.ToLower(mt) {
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}
