package cluster

import (
	"fmt"
	"testing"
)

func testWorkers(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://worker-%d:8080", i)
	}
	return out
}

func testKeys(n int) []string {
	out := make([]string, n)
	for i := range out {
		// Shaped like real keys: 64-hex digests come through ringHash the
		// same way, so any string population exercises the same code.
		out[i] = fmt.Sprintf("digest-%04d", i)
	}
	return out
}

// TestRingDeterministicPlacement pins that placement is a pure function
// of (workers, key): two independently built rings agree on every owner,
// and the keyspace spreads over all nodes.
func TestRingDeterministicPlacement(t *testing.T) {
	workers := testWorkers(4)
	a, err := NewRing(workers, 0, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	b, err := NewRing(workers, 0, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	perNode := map[string]int{}
	for _, k := range testKeys(1000) {
		oa, ok := a.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q): no owner on a live ring", k)
		}
		ob, _ := b.Owner(k)
		if oa != ob {
			t.Fatalf("Owner(%q): ring a says %s, ring b says %s", k, oa, ob)
		}
		perNode[oa]++
	}
	for _, w := range workers {
		if perNode[w] == 0 {
			t.Errorf("worker %s owns no keys out of 1000 — virtual nodes not spreading", w)
		}
	}
	t.Logf("distribution over 1000 keys: %v", perNode)
}

// TestRingMinimalMovement pins consistent hashing's defining property:
// ejecting one node moves only that node's keys, and readmitting it
// restores the original placement exactly.
func TestRingMinimalMovement(t *testing.T) {
	workers := testWorkers(4)
	r, err := NewRing(workers, 0, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	keys := testKeys(1000)
	before := make(map[string]string, len(keys))
	for _, k := range keys {
		before[k], _ = r.Owner(k)
	}
	victim := workers[1]
	if !r.SetAlive(victim, false) {
		t.Fatalf("SetAlive(%s, false) reported no change", victim)
	}
	moved := 0
	for _, k := range keys {
		after, ok := r.Owner(k)
		if !ok {
			t.Fatalf("Owner(%q): no owner with 3/4 nodes alive", k)
		}
		switch {
		case before[k] == victim:
			moved++
			if after == victim {
				t.Fatalf("key %q still owned by ejected node", k)
			}
		case after != before[k]:
			t.Fatalf("key %q moved from %s to %s although its owner %s stayed alive",
				k, before[k], after, before[k])
		}
	}
	if moved == 0 {
		t.Fatalf("ejected node owned no keys; test population too small")
	}
	if !r.SetAlive(victim, true) {
		t.Fatalf("SetAlive(%s, true) reported no change", victim)
	}
	for _, k := range keys {
		after, _ := r.Owner(k)
		if after != before[k] {
			t.Fatalf("key %q did not return to %s after readmission (got %s)", k, before[k], after)
		}
	}
	if got := r.Rebalances(); got != 2 {
		t.Fatalf("Rebalances = %d, want 2 (one ejection, one readmission)", got)
	}
}

// TestRingBoundedLoad pins the spill behaviour: piling un-released routes
// onto one hot key overflows its owner's bounded share onto the next
// preferences instead of queueing everything on one node.
func TestRingBoundedLoad(t *testing.T) {
	workers := testWorkers(3)
	r, err := NewRing(workers, 0, 1.25)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	const hot = "the-one-hot-digest"
	owner, _ := r.Owner(hot)
	used := map[string]int{}
	var releases []func()
	for i := 0; i < 30; i++ {
		node, release, ok := r.Route(hot)
		if !ok {
			t.Fatalf("Route: no node on a live ring")
		}
		used[node]++
		releases = append(releases, release)
	}
	if len(used) < 2 {
		t.Fatalf("30 concurrent routes of one key all landed on %v — bounded load never spilled", used)
	}
	if used[owner] == 0 {
		t.Fatalf("owner %s got none of its own key's routes: %v", owner, used)
	}
	for _, rel := range releases {
		rel()
	}
	for _, n := range r.Nodes() {
		if n.Load != 0 {
			t.Fatalf("node %s load %d after all releases, want 0", n.URL, n.Load)
		}
	}
	// With the fleet idle again, the hot key goes back to its owner.
	node, release, _ := r.Route(hot)
	release()
	if node != owner {
		t.Fatalf("idle-ring Route(%q) = %s, want owner %s", hot, node, owner)
	}
}

// TestRingAllDead pins the empty-fleet behaviour.
func TestRingAllDead(t *testing.T) {
	workers := testWorkers(2)
	r, err := NewRing(workers, 0, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	for _, w := range workers {
		r.SetAlive(w, false)
	}
	if _, ok := r.Owner("k"); ok {
		t.Fatalf("Owner found a node on an all-dead ring")
	}
	if _, _, ok := r.Route("k"); ok {
		t.Fatalf("Route found a node on an all-dead ring")
	}
	if pref := r.Preference("k", 4); len(pref) != 0 {
		t.Fatalf("Preference on an all-dead ring = %v, want empty", pref)
	}
}

// TestRingValidation pins constructor errors.
func TestRingValidation(t *testing.T) {
	if _, err := NewRing(nil, 0, 0); err == nil {
		t.Errorf("NewRing(nil) succeeded, want error")
	}
	if _, err := NewRing([]string{"http://a", "http://a"}, 0, 0); err == nil {
		t.Errorf("NewRing with duplicate worker succeeded, want error")
	}
	if _, err := NewRing([]string{"http://a", ""}, 0, 0); err == nil {
		t.Errorf("NewRing with empty worker succeeded, want error")
	}
}
