package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"subthreads/internal/inject"
	"subthreads/internal/report"
	"subthreads/internal/service"
	"subthreads/internal/sim"
	"subthreads/internal/workload"
)

// renderExpected reproduces cmd/tlssim's -json pipeline for a spec — the
// pin that a routed, rescued, or failed-over result is byte-identical to
// what the CLI prints (same helper the service e2e uses).
func renderExpected(t *testing.T, spec service.JobSpec) []byte {
	t.Helper()
	r, err := spec.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	cfg := r.Cfg
	if r.Inject != nil {
		cfg.Inject = inject.New(*r.Inject)
	}
	seqRes, _ := workload.Run(r.Spec, workload.Sequential)
	built := workload.Build(r.Spec, r.Exp.SequentialSoftware())
	res := sim.Run(cfg, built.Program)
	run := report.BuildRun(report.RunParams{
		Benchmark:  r.Spec.Bench.String(),
		Experiment: r.Exp.String(),
		CPUs:       cfg.CPUs,
		Subthreads: cfg.TLS.SubthreadsPerEpoch,
		Spacing:    cfg.SubthreadSpacing,
		Epochs:     built.Stats.Epochs,
		Coverage:   built.Stats.Coverage,
	}, res, seqRes)
	var buf bytes.Buffer
	if err := report.WriteRun(&buf, run); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	return buf.Bytes()
}

// testFleet is a 3-worker in-process cluster: each worker is a real
// service.Server behind httptest, wired to its siblings' caches through
// RemoteFetch exactly as `tlsd -peers` would wire it.
type testFleet struct {
	servers []*service.Server
	ts      []*httptest.Server
	urls    []string
	groups  []atomic.Pointer[RemoteGroup] // late-bound: URLs exist only after httptest starts
}

func newTestFleet(t *testing.T, n int) *testFleet {
	t.Helper()
	f := &testFleet{groups: make([]atomic.Pointer[RemoteGroup], n)}
	for i := 0; i < n; i++ {
		idx := i
		s := service.New(service.Options{
			Workers:    2,
			QueueDepth: 16,
			RemoteFetch: func(ctx context.Context, digest string) ([]byte, string, bool) {
				g := f.groups[idx].Load()
				if g == nil {
					return nil, "", false
				}
				return g.Fetch(ctx, digest)
			},
		})
		ts := httptest.NewServer(s.Handler())
		f.servers = append(f.servers, s)
		f.ts = append(f.ts, ts)
		f.urls = append(f.urls, ts.URL)
	}
	for i := 0; i < n; i++ {
		var peers []string
		for j := 0; j < n; j++ {
			if j != i {
				peers = append(peers, f.urls[j])
			}
		}
		f.groups[i].Store(NewRemoteGroup(peers, RemoteOptions{}))
	}
	t.Cleanup(func() {
		for i := range f.servers {
			f.ts[i].Close()
			ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
			if err := f.servers[i].Shutdown(ctx); err != nil {
				t.Errorf("worker %d Shutdown: %v", i, err)
			}
			cancel()
		}
	})
	return f
}

// specOwnedBy searches seed-space for a tiny spec whose digest the ring
// places on the given worker, so each scenario can target a known owner.
func specOwnedBy(t *testing.T, ring *Ring, owner string) service.JobSpec {
	t.Helper()
	for s := int64(0); s < 256; s++ {
		warmup := 1
		seed := 100 + s
		spec := service.JobSpec{Benchmark: "NEW ORDER", Txns: 2, Warmup: &warmup, Seed: &seed}
		r, err := spec.Resolve()
		if err != nil {
			t.Fatalf("Resolve: %v", err)
		}
		if got, _ := ring.Owner(r.Digest); got == owner {
			return spec
		}
	}
	t.Fatalf("no spec found owned by %s in 256 seeds", owner)
	return service.JobSpec{}
}

func postVia(t *testing.T, base string, spec service.JobSpec, corr string) *http.Response {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	req, err := http.NewRequest(http.MethodPost, base+"/v1/jobs?wait=1", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if corr != "" {
		req.Header.Set(service.CorrelationHeader, corr)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", base, err)
	}
	return resp
}

func readBody(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read body: %v", err)
	}
	return b
}

// TestClusterEndToEnd drives a 3-worker fleet behind a router through the
// scenarios the cluster design promises: digest-stable routing with
// byte-identical results, the worker-level remote cache tier, sibling-
// cache rescue when an owner dies warm, and failover recompute when no
// replica has the bytes.
func TestClusterEndToEnd(t *testing.T) {
	fleet := newTestFleet(t, 3)
	rt, err := NewRouter(Options{Workers: fleet.urls})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	// --- Scenario 1: routed submission, byte-identity, correlation echo.
	specA := specOwnedBy(t, rt.Ring(), fleet.urls[0])
	wantA := renderExpected(t, specA)
	resp := postVia(t, rts.URL, specA, "cluster-e2e-routed")
	body := readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("routed submit: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Served-By"); got != fleet.urls[0] {
		t.Fatalf("X-Served-By = %q, want owner %q", got, fleet.urls[0])
	}
	if got := resp.Header.Get(service.CorrelationHeader); got != "cluster-e2e-routed" {
		t.Fatalf("correlation echo = %q, want cluster-e2e-routed", got)
	}
	if !bytes.Equal(body, wantA) {
		t.Fatalf("routed result differs from tlssim -json bytes (%d vs %d bytes)", len(body), len(wantA))
	}

	// Resubmit: a memory hit on the same owner, same bytes.
	resp = postVia(t, rts.URL, specA, "")
	body = readBody(t, resp)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("resubmit X-Cache = %q, want hit", got)
	}
	if got := resp.Header.Get("X-Cache-Tier"); got != service.TierMemory {
		t.Fatalf("resubmit X-Cache-Tier = %q, want %q", got, service.TierMemory)
	}
	if !bytes.Equal(body, wantA) {
		t.Fatalf("cached result differs from first bytes")
	}

	// --- Scenario 2: worker-level remote cache tier. Compute specB on a
	// non-owner (worker 2, directly), then submit it to worker 0: its local
	// tiers miss and the sibling fetch finds worker 2's copy.
	specB := specOwnedBy(t, rt.Ring(), fleet.urls[1])
	wantB := renderExpected(t, specB)
	resp = postVia(t, fleet.urls[2], specB, "")
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(body, wantB) {
		t.Fatalf("priming worker 2: HTTP %d, match=%v", resp.StatusCode, bytes.Equal(body, wantB))
	}
	resp = postVia(t, fleet.urls[0], specB, "")
	body = readBody(t, resp)
	if got := resp.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("remote tier X-Cache = %q, want hit", got)
	}
	if got := resp.Header.Get("X-Cache-Tier"); got != service.TierRemote {
		t.Fatalf("remote tier X-Cache-Tier = %q, want %q", got, service.TierRemote)
	}
	if !bytes.Equal(body, wantB) {
		t.Fatalf("remote-tier result differs from tlssim -json bytes")
	}

	// --- Scenario 3: sibling-cache rescue through the router. specB's
	// owner (worker 1) dies; the router's owner proxy fails, and the rescue
	// ladder finds the bytes in a surviving sibling's cache.
	fleet.ts[1].Close()
	resp = postVia(t, rts.URL, specB, "cluster-e2e-rescue")
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("rescued submit: HTTP %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get("X-Cache-Tier"); got != service.TierRemote {
		t.Fatalf("rescue X-Cache-Tier = %q, want %q", got, service.TierRemote)
	}
	if by := resp.Header.Get("X-Served-By"); by == fleet.urls[1] {
		t.Fatalf("rescue served by the dead owner %q", by)
	}
	if !bytes.Equal(body, wantB) {
		t.Fatalf("rescued result differs from tlssim -json bytes")
	}
	if rt.Ring().Alive(fleet.urls[1]) {
		t.Fatalf("dead worker still alive in the ring after proxy failure")
	}

	// --- Scenario 4: failover recompute. A fresh spec owned by the dead
	// worker is cached nowhere, so the router recomputes it on the next
	// preference node — bytes still identical.
	// The owner is dead, so the live ring's Owner() reports a successor;
	// derive the original placement from a fresh ring over the full fleet.
	freshRing, err := NewRing(fleet.urls, 0, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	specC := func() service.JobSpec {
		for s := int64(0); s < 512; s++ {
			warmup := 1
			seed := 5000 + s
			spec := service.JobSpec{Benchmark: "STOCK LEVEL", Txns: 2, Warmup: &warmup, Seed: &seed}
			r, rerr := spec.Resolve()
			if rerr != nil {
				t.Fatalf("Resolve: %v", rerr)
			}
			if got, _ := freshRing.Owner(r.Digest); got == fleet.urls[1] {
				return spec
			}
		}
		t.Fatalf("no fresh spec owned by dead worker in 512 seeds")
		return service.JobSpec{}
	}()
	wantC := renderExpected(t, specC)
	resp = postVia(t, rts.URL, specC, "")
	body = readBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover submit: HTTP %d: %s", resp.StatusCode, body)
	}
	if by := resp.Header.Get("X-Served-By"); by == fleet.urls[1] {
		t.Fatalf("failover served by the dead owner %q", by)
	}
	if !bytes.Equal(body, wantC) {
		t.Fatalf("failover result differs from tlssim -json bytes")
	}

	m := rt.MetricsSnapshot()
	if m.RemoteCacheHits == 0 {
		t.Errorf("router RemoteCacheHits = 0 after a sibling-cache rescue")
	}
	if m.JobsRouted < 4 {
		t.Errorf("router JobsRouted = %d, want >= 4", m.JobsRouted)
	}
	if m.RingRebalances == 0 {
		t.Errorf("router RingRebalances = 0 after a worker death")
	}
}

// TestRouterJobProxyAndCancel pins the job-scoped proxy routes (status,
// result, DELETE-cancel) and the client's 409 contract through a router.
func TestRouterJobProxyAndCancel(t *testing.T) {
	fleet := newTestFleet(t, 2)
	rt, err := NewRouter(Options{Workers: fleet.urls})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	cli := &service.Client{Base: rts.URL}
	warmup := 1
	seed := int64(77)
	spec := service.JobSpec{Benchmark: "PAYMENT", Txns: 2, Warmup: &warmup, Seed: &seed}
	res, err := cli.Do(context.Background(), spec)
	if err != nil {
		t.Fatalf("Do via router: %v", err)
	}
	if res.CorrelationID == "" {
		t.Errorf("router response missing correlation ID")
	}
	if !bytes.Equal(res.Body, renderExpected(t, spec)) {
		t.Fatalf("routed client result differs from tlssim -json bytes")
	}

	// Submit async to learn the job ID, then exercise the proxied job
	// routes against it.
	b, _ := json.Marshal(spec)
	resp, err := http.Post(rts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("async POST: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	id := resp.Header.Get("X-Job-Id")
	if id == "" {
		t.Fatalf("async submit returned no X-Job-Id")
	}

	sresp, err := http.Get(rts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("proxied status: %v", err)
	}
	sbody := readBody(t, sresp)
	if sresp.StatusCode != http.StatusOK {
		t.Fatalf("proxied status: HTTP %d: %s", sresp.StatusCode, sbody)
	}

	rresp, err := http.Get(rts.URL + "/v1/jobs/" + id + "/result")
	if err != nil {
		t.Fatalf("proxied result: %v", err)
	}
	rbody := readBody(t, rresp)
	if rresp.StatusCode != http.StatusOK || !bytes.Equal(rbody, res.Body) {
		t.Fatalf("proxied result: HTTP %d, identical=%v", rresp.StatusCode, bytes.Equal(rbody, res.Body))
	}

	// The job is terminal (it was a cache hit on a finished digest), so
	// DELETE-cancel answers 409 and the client maps it to ErrAlreadyTerminal.
	if err := cli.Cancel(context.Background(), id); !errors.Is(err, service.ErrAlreadyTerminal) {
		t.Fatalf("Cancel of terminal job = %v, want ErrAlreadyTerminal", err)
	}

	// Unknown jobs 404 at the router without touching a worker.
	uresp, err := http.Get(rts.URL + "/v1/jobs/job-does-not-exist")
	if err != nil {
		t.Fatalf("unknown job status: %v", err)
	}
	readBody(t, uresp)
	if uresp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown job: HTTP %d, want 404", uresp.StatusCode)
	}
}

// TestProberEjectsAndReadmits drives the health prober against a worker
// that flips from healthy to failing and back.
func TestProberEjectsAndReadmits(t *testing.T) {
	var sick atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			http.NotFound(w, r)
			return
		}
		if sick.Load() {
			http.Error(w, "unwell", http.StatusInternalServerError)
			return
		}
		fmt.Fprintln(w, `{"status":"ok"}`)
	}))
	defer ts.Close()

	ring, err := NewRing([]string{ts.URL}, 0, 0)
	if err != nil {
		t.Fatalf("NewRing: %v", err)
	}
	p := NewProber(ring, ProberOptions{Interval: time.Hour, Threshold: 3})

	p.ProbeOnce()
	if !ring.Alive(ts.URL) {
		t.Fatalf("healthy worker ejected")
	}
	sick.Store(true)
	p.ProbeOnce()
	p.ProbeOnce()
	if !ring.Alive(ts.URL) {
		t.Fatalf("worker ejected before the failure threshold")
	}
	p.ProbeOnce()
	if ring.Alive(ts.URL) {
		t.Fatalf("worker not ejected after 3 consecutive failures")
	}
	sick.Store(false)
	p.ProbeOnce()
	if !ring.Alive(ts.URL) {
		t.Fatalf("recovered worker not readmitted on first healthy probe")
	}
	if got := ring.Rebalances(); got != 2 {
		t.Fatalf("Rebalances = %d, want 2", got)
	}
	if p.Probes() != 5 {
		t.Fatalf("Probes = %d, want 5", p.Probes())
	}
}

// TestRouterMetricsEndpoint pins both representations of /metrics.
func TestRouterMetricsEndpoint(t *testing.T) {
	fleet := newTestFleet(t, 2)
	rt, err := NewRouter(Options{Workers: fleet.urls})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	resp, err := http.Get(rts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	var m RouterMetrics
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decode metrics JSON: %v", err)
	}
	resp.Body.Close()
	if len(m.Nodes) != 2 {
		t.Fatalf("metrics nodes = %d, want 2", len(m.Nodes))
	}

	req, _ := http.NewRequest(http.MethodGet, rts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	presp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /metrics (prom): %v", err)
	}
	prom := readBody(t, presp)
	for _, want := range []string{
		"tlsrouter_build_info", "tlsrouter_nodes_alive", "tlsrouter_node_breaker_state",
		"tlsrouter_jobs_routed_total", "tlsrouter_remote_cache_hits_total",
	} {
		if !bytes.Contains(prom, []byte(want)) {
			t.Errorf("prom exposition missing family %s", want)
		}
	}
}
