// Package cluster scales tlsd from one process to a small fleet. It
// provides the three pieces the router binary (cmd/tlsrouter) composes:
//
//   - Ring: a bounded-load consistent-hash ring over worker base URLs.
//     Placement is keyed by the job digest, so the same spec always lands
//     on the same worker and its warm cache — the cluster-level analogue
//     of the daemon's content-addressed result cache.
//   - Prober: periodic /healthz probing that ejects dead workers from the
//     ring and readmits them when they recover.
//   - RemoteGroup: the cross-node cache-fetch path — cheap GET
//     /v1/cache/{digest} probes against sibling replicas, each link
//     wrapped in its own circuit breaker so a sick replica degrades to
//     recompute, never to an outage.
//
// The package deliberately depends on internal/service only for shared
// vocabulary (JobSpec, Breaker, correlation rules); service never imports
// cluster — the daemon learns about its peers through the RemoteFetch
// function cmd/tlsd wires into service.Options.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
	"strconv"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes and bounded load
// (Mirrokni et al.'s "consistent hashing with bounded loads"): a key's
// owner is the first alive node clockwise from the key's point, but a
// node already carrying more than LoadFactor times its fair share of
// in-flight routed requests is skipped, spilling the key to the next
// preference. That keeps placement deterministic and cache-friendly in
// the common case while preventing one hot digest from queueing the
// whole cluster behind a single worker.
//
// Membership changes (SetAlive) only remap keys owned by the affected
// node — the consistent-hashing minimal-movement property the ring tests
// pin — and each transition is counted as a rebalance for /metrics.
type Ring struct {
	vnodes int
	factor float64

	mu         sync.RWMutex
	nodes      map[string]*ringNode
	points     []ringPoint // sorted by hash; includes points of dead nodes
	rebalances uint64
}

type ringNode struct {
	alive bool
	load  int // in-flight routed requests (Route acquired, release pending)
}

type ringPoint struct {
	hash uint64
	node string
}

// NodeInfo is one node's status snapshot, for metrics and health output.
type NodeInfo struct {
	URL   string `json:"url"`
	Alive bool   `json:"alive"`
	Load  int    `json:"load"`
}

// NewRing builds a ring over the worker base URLs (all initially alive).
// vnodes is the number of virtual nodes per worker (default 128);
// loadFactor is the bounded-load slack over a perfectly fair share
// (default 1.25, and anything below 1 is a misconfiguration that would
// reject all routes, so it is clamped up).
func NewRing(workers []string, vnodes int, loadFactor float64) (*Ring, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("cluster ring: no workers")
	}
	if vnodes <= 0 {
		vnodes = 128
	}
	if loadFactor < 1 {
		loadFactor = 1.25
	}
	r := &Ring{
		vnodes: vnodes,
		factor: loadFactor,
		nodes:  make(map[string]*ringNode, len(workers)),
	}
	for _, w := range workers {
		if w == "" {
			return nil, fmt.Errorf("cluster ring: empty worker URL")
		}
		if _, dup := r.nodes[w]; dup {
			return nil, fmt.Errorf("cluster ring: duplicate worker %q", w)
		}
		r.nodes[w] = &ringNode{alive: true}
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{
				hash: ringHash(w + "#" + strconv.Itoa(i)),
				node: w,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r, nil
}

// ringHash maps a string to a point on the ring. SHA-256 (truncated to 64
// bits) matches the digest pipeline's hash and keeps placement stable
// across processes and restarts — no per-process seed.
func ringHash(s string) uint64 {
	sum := sha256.Sum256([]byte(s))
	return binary.BigEndian.Uint64(sum[:8])
}

// Preference returns up to n distinct alive nodes in ring-walk order from
// key's point: the owner first, then the successive failover/replica
// candidates. Empty when every node is dead.
func (r *Ring) Preference(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.preferenceLocked(key, n)
}

func (r *Ring) preferenceLocked(key string, n int) []string {
	if n <= 0 || len(r.points) == 0 {
		return nil
	}
	h := ringHash(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	seen := make(map[string]bool, n)
	out := make([]string, 0, n)
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if seen[p.node] {
			continue
		}
		seen[p.node] = true
		if r.nodes[p.node].alive {
			out = append(out, p.node)
		}
		if len(seen) == len(r.nodes) {
			break // every node visited; later points only repeat them
		}
	}
	return out
}

// Owner returns key's owner ignoring load: the first alive node on the
// walk. ok is false when the whole ring is dead.
func (r *Ring) Owner(key string) (string, bool) {
	pref := r.Preference(key, 1)
	if len(pref) == 0 {
		return "", false
	}
	return pref[0], true
}

// Route picks the node to carry one routed request for key under the
// bounded-load rule: the first alive node on key's walk whose load after
// admission stays within LoadFactor times the fair share spills to the
// next candidate otherwise. The returned release func MUST be called when
// the request completes; it decrements the node's in-flight load. ok is
// false only when every node is dead.
func (r *Ring) Route(key string) (node string, release func(), ok bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	alive, total := 0, 0
	for _, n := range r.nodes {
		if n.alive {
			alive++
			total += n.load
		}
	}
	if alive == 0 {
		return "", nil, false
	}
	// Ceil(factor * (total+1) / alive): the CHBL capacity each node may
	// hold once this request is admitted somewhere.
	capacity := int(r.factor * float64(total+1) / float64(alive))
	if float64(capacity) < r.factor*float64(total+1)/float64(alive) {
		capacity++
	}
	if capacity < 1 {
		capacity = 1
	}
	pref := r.preferenceLocked(key, alive)
	if len(pref) == 0 {
		return "", nil, false
	}
	node = pref[0]
	for _, cand := range pref {
		if r.nodes[cand].load+1 <= capacity {
			node = cand
			break
		}
	}
	st := r.nodes[node]
	st.load++
	var once sync.Once
	release = func() {
		once.Do(func() {
			r.mu.Lock()
			st.load--
			r.mu.Unlock()
		})
	}
	return node, release, true
}

// SetAlive marks a node up or down, returning whether the state changed.
// Each change is a rebalance: the node's arc of the keyspace moves to (or
// back from) its successors.
func (r *Ring) SetAlive(url string, alive bool) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	n, found := r.nodes[url]
	if !found || n.alive == alive {
		return false
	}
	n.alive = alive
	r.rebalances++
	return true
}

// Alive reports whether the node is currently in the ring (and known).
func (r *Ring) Alive(url string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, found := r.nodes[url]
	return found && n.alive
}

// Nodes returns every configured node's status, sorted by URL.
func (r *Ring) Nodes() []NodeInfo {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]NodeInfo, 0, len(r.nodes))
	for url, n := range r.nodes {
		out = append(out, NodeInfo{URL: url, Alive: n.alive, Load: n.load})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].URL < out[j].URL })
	return out
}

// Rebalances counts membership transitions since construction.
func (r *Ring) Rebalances() uint64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.rebalances
}
