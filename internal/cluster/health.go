package cluster

import (
	"context"
	"log/slog"
	"net/http"
	"sync"
	"sync/atomic"
	"time"
)

// Prober keeps the ring's membership honest: every Interval it GETs each
// configured worker's /healthz (dead or alive — dead nodes keep being
// probed so they are readmitted the moment they recover). A worker is
// ejected after Threshold consecutive failures — one slow scrape should
// not trigger a rebalance — and readmitted on the first success, because
// a recovering worker's warm disk cache is exactly what the ring wants
// back as soon as possible.
type Prober struct {
	ring      *Ring
	interval  time.Duration
	threshold int
	hc        *http.Client
	log       *slog.Logger

	probes   atomic.Uint64
	failures atomic.Uint64

	mu    sync.Mutex
	fails map[string]int // consecutive failures per node

	stop chan struct{}
	done chan struct{}
}

// ProberOptions configures a Prober; zero values get defaults.
type ProberOptions struct {
	// Interval between probe rounds (default 2s).
	Interval time.Duration
	// Timeout per probe request (default 1s).
	Timeout time.Duration
	// Threshold is the consecutive-failure count that ejects a node
	// (default 3).
	Threshold int
	// Logger receives ejection/readmission lines; nil disables logging.
	Logger *slog.Logger
}

// NewProber builds a prober over the ring's configured nodes.
func NewProber(ring *Ring, opts ProberOptions) *Prober {
	if opts.Interval <= 0 {
		opts.Interval = 2 * time.Second
	}
	if opts.Timeout <= 0 {
		opts.Timeout = time.Second
	}
	if opts.Threshold <= 0 {
		opts.Threshold = 3
	}
	return &Prober{
		ring:      ring,
		interval:  opts.Interval,
		threshold: opts.Threshold,
		hc:        &http.Client{Timeout: opts.Timeout},
		log:       opts.Logger,
		fails:     make(map[string]int),
		stop:      make(chan struct{}),
		done:      make(chan struct{}),
	}
}

// Start launches the probe loop. The first round runs immediately so a
// router booted against a half-dead fleet converges before its first
// routed request.
func (p *Prober) Start() {
	go func() {
		defer close(p.done)
		p.ProbeOnce()
		t := time.NewTicker(p.interval)
		defer t.Stop()
		for {
			select {
			case <-p.stop:
				return
			case <-t.C:
				p.ProbeOnce()
			}
		}
	}()
}

// Stop halts the probe loop and waits for it to exit.
func (p *Prober) Stop() {
	close(p.stop)
	<-p.done
}

// ProbeOnce probes every configured node once, in parallel, and applies
// eject/readmit transitions. Exported so tests and the router's startup
// path can force a round without waiting for the ticker.
func (p *Prober) ProbeOnce() {
	nodes := p.ring.Nodes()
	var wg sync.WaitGroup
	for _, n := range nodes {
		wg.Add(1)
		go func(url string) {
			defer wg.Done()
			p.probe(url)
		}(n.URL)
	}
	wg.Wait()
}

// Probes counts individual probe requests; Failures counts failed ones.
func (p *Prober) Probes() uint64   { return p.probes.Load() }
func (p *Prober) Failures() uint64 { return p.failures.Load() }

func (p *Prober) probe(url string) {
	p.probes.Add(1)
	healthy := false
	req, err := http.NewRequestWithContext(context.Background(), http.MethodGet, url+"/healthz", nil)
	if err == nil {
		resp, rerr := p.hc.Do(req)
		if rerr == nil {
			// Any response at all means the process is up; /healthz only
			// reports non-200 when the daemon itself says it is unwell.
			healthy = resp.StatusCode == http.StatusOK
			resp.Body.Close()
		}
	}
	if healthy {
		p.mu.Lock()
		p.fails[url] = 0
		p.mu.Unlock()
		if p.ring.SetAlive(url, true) && p.log != nil {
			p.log.LogAttrs(context.Background(), slog.LevelInfo, "worker readmitted",
				slog.String("component", "prober"), slog.String("node", url))
		}
		return
	}
	p.failures.Add(1)
	p.mu.Lock()
	p.fails[url]++
	eject := p.fails[url] >= p.threshold
	n := p.fails[url]
	p.mu.Unlock()
	if eject {
		if p.ring.SetAlive(url, false) && p.log != nil {
			p.log.LogAttrs(context.Background(), slog.LevelWarn, "worker ejected",
				slog.String("component", "prober"), slog.String("node", url),
				slog.Int("consecutive_failures", n))
		}
	}
}
