// Package tpcc implements the paper's experimental workload: the five TPC-C
// transactions (plus the NEW ORDER 150 and DELIVERY OUTER variants) running
// on the internal/db storage engine, configured as in §4.1 — a single
// warehouse, memory-resident data, transactions executed one at a time, and
// no terminal I/O, query planning, or wait times. As in the paper, the
// workload is written to match the TPC-C specification closely but is not
// validated; results are simulator speedups, not TPM-C.
package tpcc

import (
	"math/rand"

	"subthreads/internal/db"
	"subthreads/internal/mem"
)

// Scale sizes the single-warehouse dataset. The paper uses the full TPC-C
// cardinalities; the default here is scaled down so the whole experiment
// suite runs in minutes, which preserves per-thread work (set by the
// per-iteration code path, not the table sizes — only B-tree height changes,
// by one level).
type Scale struct {
	Districts            int
	CustomersPerDistrict int
	Items                int
	OrdersPerDistrict    int // pre-loaded order history
}

// DefaultScale is the scaled-down dataset for fast runs.
func DefaultScale() Scale {
	return Scale{
		Districts:            10,
		CustomersPerDistrict: 300,
		Items:                5000,
		OrdersPerDistrict:    120,
	}
}

// PaperScale is the full single-warehouse TPC-C dataset used by the paper.
func PaperScale() Scale {
	return Scale{
		Districts:            10,
		CustomersPerDistrict: 3000,
		Items:                100000,
		OrdersPerDistrict:    3000,
	}
}

// Field indices per table.
const (
	WTax = iota
	WYtd
	wFields
)
const (
	DTax = iota
	DYtd
	DNextOID
	dFields
)
const (
	CBalance = iota
	CYtdPayment
	CPaymentCnt
	CDeliveryCnt
	CLast // last-name bucket (0..999, per the TPC-C name distribution)
	CDiscount
	cFields
)
const (
	OCID = iota
	OOLCnt
	OCarrierID
	OEntryD
	oFields
)
const (
	NOOID = iota
	noFields
)
const (
	OLIID = iota
	OLQty
	OLAmount
	OLDeliveryD
	olFields
)
const (
	IPrice = iota
	IData
	iFields
)
const (
	SQuantity = iota
	SYtd
	SOrderCnt
	SRemoteCnt
	sFields
)

// DB is the loaded single-warehouse TPC-C database.
type DB struct {
	Env   *db.Env
	Scale Scale

	Warehouse *db.Tree
	District  *db.Tree
	Customer  *db.Tree
	CustIdx   *db.Tree // secondary index: (district, last-name bucket, c) -> customer row
	Order     *db.Tree
	NewOrder  *db.Tree
	OrderLine *db.Tree
	Item      *db.Tree
	Stock     *db.Tree
	History   *db.Tree

	wRow *db.Row

	// lastOrder tracks each customer's most recent order id (functional
	// bookkeeping for ORDER_STATUS).
	lastOrder map[int64]int64
	// oldestNewOrder tracks the delivery frontier per district.
	oldestNewOrder []int64
	histSeq        int64

	// aggBase is the STOCK LEVEL join/aggregation workspace: a shared
	// hash table every scanned order line inserts into — a genuine
	// cross-epoch dependence the tuning process cannot remove.
	aggBase    mem.Addr
	aggBuckets int

	// lastOut collects the most recent transaction's client-visible
	// result values (see LastOutput) for the differential oracle.
	lastOut []int64
}

// Key encodings (single warehouse).

// CustKey encodes (district, customer).
func CustKey(d, c int) int64 { return int64(d)*1_000_000 + int64(c) }

// CustIdxKey encodes (district, last-name bucket, customer) for the
// last-name secondary index.
func CustIdxKey(d, last, c int) int64 {
	return (int64(d)*1000+int64(last))*1_000_000 + int64(c)
}

// OrderKey encodes (district, order id).
func OrderKey(d int, o int64) int64 { return int64(d)*10_000_000 + o }

// OLKey encodes (district, order id, line number).
func OLKey(d int, o int64, l int) int64 { return OrderKey(d, o)*256 + int64(l) }

// Load builds and populates the database. Loading is functional only: no
// trace events are emitted (the paper does not time loading either).
func Load(env *db.Env, scale Scale, seed int64) *DB {
	d := &DB{
		Env:            env,
		Scale:          scale,
		Warehouse:      env.NewTree("warehouse"),
		District:       env.NewTree("district"),
		Customer:       env.NewTree("customer"),
		CustIdx:        env.NewTree("custidx"),
		Order:          env.NewTree("order"),
		NewOrder:       env.NewTree("neworder"),
		OrderLine:      env.NewTree("orderline"),
		Item:           env.NewTree("item"),
		Stock:          env.NewTree("stock"),
		History:        env.NewTree("history"),
		lastOrder:      make(map[int64]int64),
		oldestNewOrder: make([]int64, scale.Districts+1),
		aggBuckets:     64,
	}
	d.aggBase = env.Misc().Alloc(uint32(d.aggBuckets*mem.LineSize), mem.LineSize)
	rng := rand.New(rand.NewSource(seed))

	d.wRow = d.Warehouse.LoadInsertPadded(1, int64(rng.Intn(2000)), 0)

	for dist := 1; dist <= scale.Districts; dist++ {
		d.District.LoadInsertPadded(int64(dist),
			int64(rng.Intn(2000)),            // D_TAX
			0,                                // D_YTD
			int64(scale.OrdersPerDistrict+1), // D_NEXT_O_ID
		)
		buckets := lastBuckets(scale)
		for c := 1; c <= scale.CustomersPerDistrict; c++ {
			last := rng.Intn(buckets)
			d.Customer.LoadInsert(CustKey(dist, c),
				-10_00,                // C_BALANCE (cents)
				10_00,                 // C_YTD_PAYMENT
				1,                     // C_PAYMENT_CNT
				0,                     // C_DELIVERY_CNT
				int64(last),           // C_LAST bucket
				int64(rng.Intn(5000)), // C_DISCOUNT
			)
			d.CustIdx.LoadInsert(CustIdxKey(dist, last, c), int64(c))
		}
	}

	for i := 1; i <= scale.Items; i++ {
		d.Item.LoadInsert(int64(i), int64(100+rng.Intn(9900)), int64(rng.Int31()))
		d.Stock.LoadInsert(int64(i), int64(10+rng.Intn(90)), 0, 0, 0)
	}

	// Order history: the most recent third of each district's orders are
	// undelivered (have NEW_ORDER rows), per the TPC-C initial population.
	for dist := 1; dist <= scale.Districts; dist++ {
		undeliveredFrom := scale.OrdersPerDistrict*2/3 + 1
		d.oldestNewOrder[dist] = int64(undeliveredFrom)
		for o := 1; o <= scale.OrdersPerDistrict; o++ {
			cid := 1 + rng.Intn(scale.CustomersPerDistrict)
			nLines := 5 + rng.Intn(11)
			carrier := int64(1 + rng.Intn(10))
			if o >= undeliveredFrom {
				carrier = 0
				d.NewOrder.LoadInsert(OrderKey(dist, int64(o)), int64(o))
			}
			d.Order.LoadInsert(OrderKey(dist, int64(o)),
				int64(cid), int64(nLines), carrier, int64(o))
			d.lastOrder[CustKey(dist, cid)] = int64(o)
			for l := 1; l <= nLines; l++ {
				item := 1 + rng.Intn(scale.Items)
				d.OrderLine.LoadInsert(OLKey(dist, int64(o), l),
					int64(item), int64(1+rng.Intn(10)), int64(rng.Intn(10000)), 0)
			}
		}
	}
	return d
}

// nuRand is the TPC-C non-uniform random distribution NURand(A, x, y).
func nuRand(rng *rand.Rand, a, x, y int) int {
	return ((rng.Intn(a+1)|(x+rng.Intn(y-x+1)))+12)%(y-x+1) + x
}
