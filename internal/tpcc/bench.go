package tpcc

import "fmt"

// Benchmark identifies one of the paper's seven workload variants (§4.1):
// the five TPC-C transactions plus the scaled NEW ORDER 150 and the
// outer-loop-parallelized DELIVERY.
type Benchmark int

const (
	NewOrder Benchmark = iota
	NewOrder150
	Delivery
	DeliveryOuter
	StockLevel
	Payment
	OrderStatus
	NumBenchmarks
)

var benchNames = [...]string{
	NewOrder:      "NEW ORDER",
	NewOrder150:   "NEW ORDER 150",
	Delivery:      "DELIVERY",
	DeliveryOuter: "DELIVERY OUTER",
	StockLevel:    "STOCK LEVEL",
	Payment:       "PAYMENT",
	OrderStatus:   "ORDER STATUS",
}

func (b Benchmark) String() string {
	if int(b) < len(benchNames) {
		return benchNames[b]
	}
	return fmt.Sprintf("bench(%d)", int(b))
}

// All returns the benchmarks in the order the paper's figures present them.
func All() []Benchmark {
	return []Benchmark{NewOrder, NewOrder150, Delivery, DeliveryOuter, StockLevel, Payment, OrderStatus}
}

// TLSProfitable returns the five benchmarks Figure 6 sweeps (the paper drops
// PAYMENT and ORDER STATUS after Figure 5 shows they lack parallelism).
func TLSProfitable() []Benchmark {
	return []Benchmark{NewOrder, NewOrder150, Delivery, DeliveryOuter, StockLevel}
}

// Parse maps a benchmark name (case-sensitive, as printed) back to its id.
func Parse(name string) (Benchmark, error) {
	for b, n := range benchNames {
		if n == name {
			return Benchmark(b), nil
		}
	}
	return 0, fmt.Errorf("tpcc: unknown benchmark %q", name)
}
