package tpcc

// Per-transaction output capture for the differential oracle: each
// transaction records the values a TPC-C client would see (order ids,
// balances, delivery sums, stock-level counts) as it executes. The capture
// is purely functional — it emits no trace events and costs nothing in the
// simulation — so a flat/serial and a TLS-transformed execution of the same
// input stream must produce identical output vectors, and any difference
// pinpoints the first transaction whose semantics speculation broke.

// out appends client-visible result values for the running transaction.
func (d *DB) out(vs ...int64) { d.lastOut = append(d.lastOut, vs...) }

// LastOutput returns a copy of the client-visible output of the most recent
// RunTxn call.
func (d *DB) LastOutput() []int64 {
	return append([]int64(nil), d.lastOut...)
}
