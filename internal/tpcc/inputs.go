package tpcc

import "math/rand"

// ItemReq is one order line request of a NEW ORDER transaction.
type ItemReq struct {
	Item int
	Qty  int
}

// Input is one transaction's parameters. Inputs are generated once per
// experiment (seeded, per the TPC-C run rules as in §4.1) and replayed
// against every hardware configuration, so all configurations execute
// identical work.
type Input struct {
	Bench Benchmark
	D     int // district
	C     int // customer
	CLast int // last-name bucket (PAYMENT, ORDER STATUS)
	Items []ItemReq
	// Threshold for STOCK LEVEL.
	Threshold int
	// Rollback marks the TPC-C "1%" NEW ORDER case: the last item id is
	// invalid and the transaction must abort after its partial work.
	Rollback bool
}

// lastBuckets is the number of distinct last-name buckets for a scale —
// sized so a last-name lookup matches about 3 customers, as the TPC-C name
// distribution does.
func lastBuckets(s Scale) int {
	n := s.CustomersPerDistrict / 3
	if n < 1 {
		n = 1
	}
	if n > 1000 {
		n = 1000
	}
	return n
}

// GenInputs generates n transaction inputs for the benchmark.
func GenInputs(b Benchmark, s Scale, seed int64, n int) []Input {
	rng := rand.New(rand.NewSource(seed))
	buckets := lastBuckets(s)
	ins := make([]Input, 0, n)
	for i := 0; i < n; i++ {
		in := Input{
			Bench:     b,
			D:         1 + rng.Intn(s.Districts),
			C:         1 + nuRand(rng, 1023, 0, s.CustomersPerDistrict-1),
			CLast:     rng.Intn(buckets),
			Threshold: 10 + rng.Intn(11),
		}
		switch b {
		case NewOrder:
			in.Items = genItems(rng, s, 5, 15)
		case NewOrder150:
			// The paper scales the order to 50–150 items to provide
			// enough threads for 4 CPUs (§4.1).
			in.Items = genItems(rng, s, 50, 150)
		}
		if b == NewOrder || b == NewOrder150 {
			// TPC-C 2.4.1.4: one percent of NEW ORDER transactions
			// carry an unused item number as their last item and
			// roll back.
			if rng.Intn(100) == 0 {
				in.Rollback = true
				in.Items[len(in.Items)-1].Item = -1
			}
		}
		ins = append(ins, in)
	}
	return ins
}

// genItems picks between lo and hi distinct items with quantities 1..10.
func genItems(rng *rand.Rand, s Scale, lo, hi int) []ItemReq {
	n := lo + rng.Intn(hi-lo+1)
	if n > s.Items {
		n = s.Items
	}
	seen := make(map[int]bool, n)
	items := make([]ItemReq, 0, n)
	for len(items) < n {
		it := 1 + rng.Intn(s.Items)
		if seen[it] {
			continue
		}
		seen[it] = true
		items = append(items, ItemReq{Item: it, Qty: 1 + rng.Intn(10)})
	}
	return items
}
