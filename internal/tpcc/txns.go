package tpcc

import (
	"fmt"

	"subthreads/internal/db"
	"subthreads/internal/mem"
	"subthreads/internal/trace"
)

// Mode controls how a transaction execution is recorded.
type Mode int

const (
	// ModeFlat records the whole transaction as one serial trace with no
	// TLS software transformations — the SEQUENTIAL binary of Figure 5.
	ModeFlat Mode = iota
	// ModeTLS decomposes the transaction at the parallelized loop into
	// serial and iteration segments and injects the TLS thread-management
	// software overhead — the binary used by TLS-SEQ and all parallel
	// experiments.
	ModeTLS
)

// Segment is one piece of a decomposed transaction: either a serial region
// or one loop iteration (a speculative thread).
type Segment struct {
	Trace *trace.Trace
	Iter  bool
}

// tlsSpawnOverhead / tlsEndOverhead are the extra instructions the TLS
// software transformation adds around each speculative thread (§4.3: the
// overhead impacts single-CPU performance by a few percent).
const (
	tlsSpawnOverhead = 120
	tlsEndOverhead   = 80
	serialSlot       = 0
)

// emitter drives one transaction execution, cutting the recorded stream into
// segments at loop boundaries.
type emitter struct {
	d       *DB
	mode    Mode
	segs    []Segment
	b       *trace.Builder
	curIter bool
	serial  *db.Ctx
	txn     *db.Txn
	iterIdx int
}

func newEmitter(d *DB, mode Mode) *emitter {
	em := &emitter{d: d, mode: mode, b: trace.NewBuilder()}
	em.serial = d.Env.NewCtx(em.b, serialSlot)
	return em
}

// cut closes the current segment (if non-empty) and starts a new one.
func (em *emitter) cut(nextIter bool) {
	if em.b.Instrs() > 0 {
		em.segs = append(em.segs, Segment{Trace: em.b.Finish(), Iter: em.curIter})
		em.b = trace.NewBuilder()
	}
	em.curIter = nextIter
}

// begin starts the transaction on the serial context.
func (em *emitter) begin() *db.Ctx {
	em.txn = em.serial.Begin()
	return em.serial
}

// beginIter starts recording one loop iteration. In flat mode it is a no-op
// returning the serial context; in TLS mode it opens a fresh segment with a
// per-iteration context (private stack slot) attached to the transaction.
func (em *emitter) beginIter() *db.Ctx {
	if em.mode == ModeFlat {
		return em.serial
	}
	em.cut(true)
	nslots := em.d.Env.Config().Contexts
	slot := 1 + em.iterIdx%(nslots-1)
	em.iterIdx++
	c := em.d.Env.NewCtx(em.b, slot)
	c.AttachTxn(em.txn)
	c.Work("tls.spawn", tlsSpawnOverhead)
	return c
}

// endIter closes the current iteration.
func (em *emitter) endIter(c *db.Ctx) {
	if em.mode == ModeFlat {
		return
	}
	c.Work("tls.end", tlsEndOverhead)
}

// endLoop returns to serial recording after a parallelized loop.
func (em *emitter) endLoop() *db.Ctx {
	if em.mode == ModeFlat {
		return em.serial
	}
	em.cut(false)
	em.serial.SetRecorder(em.b)
	return em.serial
}

// finish commits nothing; it closes the final segment and returns the list.
func (em *emitter) finish() []Segment {
	em.cut(false)
	return em.segs
}

// RunTxn executes one transaction functionally while recording its
// decomposed trace. The database state advances exactly as a sequential
// execution would — the simulator's job is to preserve precisely these
// semantics under speculation.
func (d *DB) RunTxn(in Input, mode Mode) []Segment {
	d.lastOut = d.lastOut[:0]
	switch in.Bench {
	case NewOrder, NewOrder150:
		return d.newOrder(in, mode)
	case Payment:
		return d.payment(in, mode)
	case OrderStatus:
		return d.orderStatus(in, mode)
	case Delivery:
		return d.delivery(in, mode, false)
	case DeliveryOuter:
		return d.delivery(in, mode, true)
	case StockLevel:
		return d.stockLevel(in, mode)
	default:
		panic(fmt.Sprintf("tpcc: unknown benchmark %v", in.Bench))
	}
}

// newOrder is the TPC-C NEW ORDER transaction with its per-order-line loop
// parallelized — the paper's flagship workload (§1, §4.1). Each order line
// reads ITEM, reads and updates STOCK, and inserts an ORDER_LINE row.
func (d *DB) newOrder(in Input, mode Mode) []Segment {
	sqlRow := d.Env.Config().Costs.SQLRow
	em := newEmitter(d, mode)
	c := em.begin()

	c.Work("sql.neworder.begin", sqlRow)
	c.Lock(d.Warehouse, 1, false)
	d.wRow.ReadField(c, WTax)
	c.Lock(d.District, int64(in.D), true)
	drow, ok := d.District.GetForUpdate(c, int64(in.D))
	if !ok {
		panic("tpcc: district missing")
	}
	drow.ReadField(c, DTax)
	oid := drow.ReadField(c, DNextOID)
	drow.WriteField(c, DNextOID, oid+1)

	c.Work("sql.neworder.order", sqlRow)
	orow := d.Env.NewRow(c, oFields)
	orow.Fields[OCID] = int64(in.C)
	orow.Fields[OOLCnt] = int64(len(in.Items))
	orow.WriteField(c, OCID, int64(in.C))
	orow.WriteField(c, OOLCnt, int64(len(in.Items)))
	d.Order.Insert(c, OrderKey(in.D, oid), orow)
	norow := d.Env.NewRow(c, noFields)
	norow.WriteField(c, NOOID, oid)
	d.NewOrder.Insert(c, OrderKey(in.D, oid), norow)
	prevLast, hadLast := d.lastOrder[CustKey(in.D, in.C)]
	d.lastOrder[CustKey(in.D, in.C)] = oid
	d.out(oid, int64(len(in.Items)))

	for li, req := range in.Items {
		ic := em.beginIter()

		// SELECT i_price FROM item.
		ic.Work("sql.neworder.item", sqlRow)
		irow, ok := d.Item.Get(ic, int64(req.Item))
		if !ok {
			// TPC-C 2.4.1.4: an unused item number — the whole
			// transaction rolls back after its partial work.
			ic.Work("sql.neworder.notfound", sqlRow/4)
			em.endIter(ic)
			c = em.endLoop()
			c.Abort()
			if hadLast {
				d.lastOrder[CustKey(in.D, in.C)] = prevLast
			} else {
				delete(d.lastOrder, CustKey(in.D, in.C))
			}
			d.out(-1) // rolled back
			return em.finish()
		}
		price := irow.ReadField(ic, IPrice)

		// SELECT ... FROM stock FOR UPDATE.
		ic.Work("sql.neworder.stockread", sqlRow)
		ic.Lock(d.Stock, int64(req.Item), true)
		srow, ok := d.Stock.GetForUpdate(ic, int64(req.Item))
		if !ok {
			panic("tpcc: stock missing")
		}
		q := srow.ReadField(ic, SQuantity)
		newq := q - int64(req.Qty)
		if newq < 10 {
			newq += 91
		}

		// UPDATE stock.
		ic.Work("sql.neworder.stockwrite", sqlRow)
		srow.WriteField(ic, SQuantity, newq)
		srow.WriteField(ic, SYtd, srow.Fields[SYtd]+int64(req.Qty))
		srow.WriteField(ic, SOrderCnt, srow.Fields[SOrderCnt]+1)

		// INSERT INTO order_line.
		ic.Work("sql.neworder.olinsert", sqlRow)
		amount := int64(req.Qty) * price
		olrow := d.Env.NewRow(ic, olFields)
		olrow.Fields[OLIID] = int64(req.Item)
		olrow.Fields[OLQty] = int64(req.Qty)
		olrow.WriteField(ic, OLAmount, amount)
		d.OrderLine.Insert(ic, OLKey(in.D, oid, li+1), olrow)
		d.out(amount, newq)

		em.endIter(ic)
	}

	c = em.endLoop()
	c.Work("sql.neworder.total", sqlRow/2)
	c.Commit()
	return em.finish()
}

// payment is TPC-C PAYMENT: warehouse/district YTD updates and a customer
// payment, with the customer selected by last name. The parallelized loop is
// the last-name candidate scan — short, which is why the paper finds PAYMENT
// "lacks significant parallelism in the transaction code".
func (d *DB) payment(in Input, mode Mode) []Segment {
	sqlRow := d.Env.Config().Costs.SQLRow
	em := newEmitter(d, mode)
	c := em.begin()

	c.Work("sql.payment.warehouse", sqlRow)
	c.Lock(d.Warehouse, 1, true)
	d.wRow.WriteField(c, WYtd, d.wRow.Fields[WYtd]+100)
	c.Work("sql.payment.district", sqlRow)
	c.Lock(d.District, int64(in.D), true)
	drow, _ := d.District.GetForUpdate(c, int64(in.D))
	drow.WriteField(c, DYtd, drow.Fields[DYtd]+100)
	c.Work("sql.payment.setup", 4*sqlRow)

	cands := d.lastNameCandidates(in)
	for _, cid := range cands {
		ic := em.beginIter()
		ic.Work("sql.payment.cand", sqlRow)
		crow, ok := d.Customer.Get(ic, CustKey(in.D, cid))
		if !ok {
			panic("tpcc: customer missing")
		}
		crow.ReadField(ic, CBalance)
		crow.ReadField(ic, CLast)
		ic.Work("sql.payment.cand2", sqlRow)
		em.endIter(ic)
	}

	c = em.endLoop()
	chosen := cands[len(cands)/2]
	c.Work("sql.payment.update", sqlRow)
	c.Lock(d.Customer, CustKey(in.D, chosen), true)
	crow, _ := d.Customer.GetForUpdate(c, CustKey(in.D, chosen))
	crow.WriteField(c, CBalance, crow.Fields[CBalance]-100)
	crow.WriteField(c, CYtdPayment, crow.Fields[CYtdPayment]+100)
	crow.WriteField(c, CPaymentCnt, crow.Fields[CPaymentCnt]+1)
	d.out(int64(chosen), crow.Fields[CBalance])
	c.Work("sql.payment.history", sqlRow)
	d.histSeq++
	hrow := d.Env.NewRow(c, 2)
	hrow.WriteField(c, 0, CustKey(in.D, chosen))
	d.History.Insert(c, d.histSeq, hrow)
	c.Commit()
	return em.finish()
}

// orderStatus is TPC-C ORDER STATUS: look up a customer by last name, then
// read their most recent order and its lines. Like PAYMENT, the only loop
// worth parallelizing (the candidate scan) is short.
func (d *DB) orderStatus(in Input, mode Mode) []Segment {
	em := newEmitter(d, mode)
	c := em.begin()
	c.Work("sql.orderstatus.setup", 6000)

	cands := d.lastNameCandidates(in)
	for _, cid := range cands {
		ic := em.beginIter()
		ic.Work("sql.orderstatus.cand", 4200)
		crow, _ := d.Customer.Get(ic, CustKey(in.D, cid))
		crow.ReadField(ic, CBalance)
		crow.ReadField(ic, CLast)
		em.endIter(ic)
	}

	c = em.endLoop()
	chosen := cands[len(cands)/2]
	oid, hasOrder := d.lastOrder[CustKey(in.D, chosen)]
	d.out(int64(chosen))
	c.Work("sql.orderstatus.order", 12000)
	if hasOrder {
		orow, ok := d.Order.Get(c, OrderKey(in.D, oid))
		if ok {
			nl := orow.ReadField(c, OOLCnt)
			d.out(oid, nl)
			orow.ReadField(c, OCarrierID)
			for l := int64(1); l <= nl; l++ {
				olrow, ok := d.OrderLine.Get(c, OLKey(in.D, oid, int(l)))
				if !ok {
					continue
				}
				olrow.ReadField(c, OLIID)
				olrow.ReadField(c, OLAmount)
				c.Work("sql.orderstatus.line", 1500)
			}
		}
	}
	c.Commit()
	return em.finish()
}

// delivery is TPC-C DELIVERY: for each of the 10 districts, deliver the
// oldest undelivered order — delete its NEW_ORDER row, stamp the carrier,
// update every order line's delivery date, and credit the customer. The
// paper parallelizes either the inner per-order-line loop (63% coverage,
// ~33k-instruction threads) or the outer per-district loop (99% coverage,
// ~490k-instruction threads).
func (d *DB) delivery(in Input, mode Mode, outer bool) []Segment {
	costs := d.Env.Config().Costs
	sqlRow := costs.SQLRow
	em := newEmitter(d, mode)
	c := em.begin()
	c.Work("sql.delivery.begin", sqlRow/2)

	for dist := 1; dist <= d.Scale.Districts; dist++ {
		dc := c
		if outer {
			dc = em.beginIter()
		}

		// Find the oldest undelivered order in this district.
		dc.Work("sql.delivery.findorder", 2*sqlRow)
		var oid int64 = -1
		d.NewOrder.Scan(dc, OrderKey(dist, 0), 1, func(k int64, r *db.Row) bool {
			if k < OrderKey(dist+1, 0) {
				oid = r.Fields[NOOID]
			}
			return false
		})
		if oid < 0 {
			// No undelivered orders: skip the district (the TPC-C
			// "skipped delivery" case).
			d.out(-1)
			dc.Work("sql.delivery.skip", 400)
			if outer {
				em.endIter(dc)
			}
			continue
		}
		d.NewOrder.Delete(dc, OrderKey(dist, oid))
		d.oldestNewOrder[dist] = oid + 1

		dc.Work("sql.delivery.order", 2*sqlRow)
		orow, ok := d.Order.GetForUpdate(dc, OrderKey(dist, oid))
		if !ok {
			panic("tpcc: delivered order missing")
		}
		cid := orow.ReadField(dc, OCID)
		nl := orow.ReadField(dc, OOLCnt)
		orow.WriteField(dc, OCarrierID, int64(1+dist%10))
		dc.Work("sql.delivery.orderupd", 2*sqlRow)

		var sum int64
		for l := int64(1); l <= nl; l++ {
			lc := dc
			if !outer {
				lc = em.beginIter()
			}
			lc.Work("sql.delivery.line", sqlRow)
			olrow, ok := d.OrderLine.GetForUpdate(lc, OLKey(dist, oid, int(l)))
			if ok {
				sum += olrow.ReadField(lc, OLAmount)
				olrow.WriteField(lc, OLDeliveryD, int64(dist))
			}
			lc.Work("sql.delivery.lineupd", sqlRow)
			if !outer {
				em.endIter(lc)
			}
		}
		if !outer {
			dc = em.endLoop()
			c = dc
		}

		dc.Work("sql.delivery.customer", 2*sqlRow)
		dc.Lock(d.Customer, CustKey(dist, int(cid)), true)
		crow, ok := d.Customer.GetForUpdate(dc, CustKey(dist, int(cid)))
		if !ok {
			panic("tpcc: delivery customer missing")
		}
		crow.WriteField(dc, CBalance, crow.Fields[CBalance]+sum)
		crow.WriteField(dc, CDeliveryCnt, crow.Fields[CDeliveryCnt]+1)
		d.out(oid, cid, sum)

		if outer {
			em.endIter(dc)
		}
	}

	c = em.endLoop()
	c.Commit()
	return em.finish()
}

// stockLevel is TPC-C STOCK LEVEL: join the order lines of the district's 20
// most recent orders against STOCK and count items below the threshold. The
// parallelized loop is per recent order; the work is read-only, which is why
// this transaction approaches the NO SPECULATION upper bound once its cache
// behaviour allows.
func (d *DB) stockLevel(in Input, mode Mode) []Segment {
	em := newEmitter(d, mode)
	c := em.begin()
	c.Work("sql.stocklevel.district", 4000)
	drow, _ := d.District.Get(c, int64(in.D))
	next := drow.ReadField(c, DNextOID)

	lo := next - 20
	if lo < 1 {
		lo = 1
	}
	distinct := map[int64]bool{}
	for o := lo; o < next; o++ {
		ic := em.beginIter()
		ic.Work("sql.stocklevel.order", 1800)
		orow, ok := d.Order.Get(ic, OrderKey(in.D, o))
		if !ok {
			em.endIter(ic)
			continue
		}
		nl := orow.ReadField(ic, OOLCnt)
		for l := int64(1); l <= nl; l++ {
			olrow, ok := d.OrderLine.Get(ic, OLKey(in.D, o, int(l)))
			if !ok {
				continue
			}
			item := olrow.ReadField(ic, OLIID)
			srow, ok := d.Stock.Get(ic, item)
			if !ok {
				continue
			}
			// Insert the joined row into the shared aggregation
			// workspace — the hash-join build every epoch writes,
			// a dependence the tuning process cannot remove.
			bucket := d.aggBase + mem.Addr(int(uint64(item)*0x9e3779b9%uint64(d.aggBuckets))*mem.LineSize)
			ic.EmitLoad("stocklevel.agg.load", bucket)
			ic.EmitALU(5)
			ic.EmitStore("stocklevel.agg.store", bucket)
			if srow.ReadField(ic, SQuantity) < int64(in.Threshold) {
				distinct[item] = true
			}
			ic.Work("sql.stocklevel.check", 300)
		}
		em.endIter(ic)
	}

	c = em.endLoop()
	// Final aggregation pass over the workspace.
	for i := 0; i < d.aggBuckets; i++ {
		c.EmitLoad("stocklevel.agg.scan", d.aggBase+mem.Addr(i*mem.LineSize))
		c.EmitALU(6)
	}
	c.Work("sql.stocklevel.count", 2000+len(distinct)*20)
	d.out(int64(len(distinct)))
	c.Commit()
	return em.finish()
}

// lastNameCandidates returns the customers in the input's district matching
// the last-name bucket, guaranteed non-empty by falling back to the bucket of
// customer in.C (functional lookup only — the emitted scan cost lives in the
// transaction bodies).
func (d *DB) lastNameCandidates(in Input) []int {
	collect := func(bucket int) []int {
		var out []int
		from := CustIdxKey(in.D, bucket, 0)
		to := CustIdxKey(in.D, bucket+1, 0)
		d.CustIdx.Scan(nil, from, 0, func(k int64, r *db.Row) bool {
			if k >= to {
				return false
			}
			out = append(out, int(r.Fields[0]))
			return true
		})
		return out
	}
	if cands := collect(in.CLast); len(cands) > 0 {
		return cands
	}
	crow, ok := d.Customer.Get(nil, CustKey(in.D, in.C))
	if !ok {
		panic("tpcc: fallback customer missing")
	}
	cands := collect(int(crow.Fields[CLast]))
	if len(cands) == 0 {
		panic("tpcc: customer not in its own last-name bucket")
	}
	return cands
}
