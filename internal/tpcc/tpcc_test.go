package tpcc

import (
	"testing"

	"subthreads/internal/db"
	"subthreads/internal/mem"
)

func tinyScale() Scale {
	return Scale{Districts: 4, CustomersPerDistrict: 60, Items: 400, OrdersPerDistrict: 30}
}

func loadTiny(t *testing.T, opt db.OptFlags) *DB {
	t.Helper()
	cfg := db.DefaultConfig()
	cfg.Opt = opt
	env := db.NewEnv(cfg)
	return Load(env, tinyScale(), 1)
}

func TestLoadPopulatesTables(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	s := tinyScale()
	if d.Warehouse.Size != 1 {
		t.Errorf("warehouse size = %d", d.Warehouse.Size)
	}
	if d.District.Size != s.Districts {
		t.Errorf("district size = %d", d.District.Size)
	}
	if d.Customer.Size != s.Districts*s.CustomersPerDistrict {
		t.Errorf("customer size = %d", d.Customer.Size)
	}
	if d.Item.Size != s.Items || d.Stock.Size != s.Items {
		t.Errorf("item/stock sizes = %d/%d", d.Item.Size, d.Stock.Size)
	}
	if d.Order.Size != s.Districts*s.OrdersPerDistrict {
		t.Errorf("order size = %d", d.Order.Size)
	}
	// A third of orders are undelivered.
	undelivered := s.OrdersPerDistrict - s.OrdersPerDistrict*2/3
	if d.NewOrder.Size != s.Districts*undelivered {
		t.Errorf("neworder size = %d, want %d", d.NewOrder.Size, s.Districts*undelivered)
	}
	if d.OrderLine.Size < d.Order.Size*5 || d.OrderLine.Size > d.Order.Size*15 {
		t.Errorf("orderline size = %d for %d orders", d.OrderLine.Size, d.Order.Size)
	}
	// District next order id points past the loaded history.
	row, ok := d.District.Get(nil, 1)
	if !ok || row.Fields[DNextOID] != int64(s.OrdersPerDistrict+1) {
		t.Errorf("D_NEXT_O_ID = %v, %v", row, ok)
	}
}

func TestLoadDeterministic(t *testing.T) {
	d1 := loadTiny(t, db.OptAll())
	d2 := loadTiny(t, db.OptAll())
	if d1.Customer.Size != d2.Customer.Size || d1.OrderLine.Size != d2.OrderLine.Size {
		t.Error("same seed produced different databases")
	}
}

func TestKeyEncodings(t *testing.T) {
	if CustKey(3, 42) == CustKey(4, 42) || CustKey(3, 42) == CustKey(3, 43) {
		t.Error("CustKey collisions")
	}
	// Order keys must sort by district then order id.
	if !(OrderKey(1, 999999) < OrderKey(2, 1)) {
		t.Error("OrderKey ordering broken")
	}
	// Up to 255 order lines must not collide with the next order.
	if !(OLKey(1, 5, 255) < OLKey(1, 6, 1)) {
		t.Error("OLKey line range collides with next order")
	}
	if OLKey(1, 5, 1) == OLKey(1, 5, 2) {
		t.Error("OLKey line collision")
	}
}

func TestGenInputs(t *testing.T) {
	s := tinyScale()
	ins := GenInputs(NewOrder, s, 7, 50)
	if len(ins) != 50 {
		t.Fatalf("got %d inputs", len(ins))
	}
	for _, in := range ins {
		if in.D < 1 || in.D > s.Districts {
			t.Fatalf("district %d out of range", in.D)
		}
		if in.C < 1 || in.C > s.CustomersPerDistrict {
			t.Fatalf("customer %d out of range", in.C)
		}
		if len(in.Items) < 5 || len(in.Items) > 15 {
			t.Fatalf("%d items", len(in.Items))
		}
		seen := map[int]bool{}
		for _, it := range in.Items {
			if it.Item < 1 || it.Item > s.Items || it.Qty < 1 || it.Qty > 10 {
				t.Fatalf("bad item %+v", it)
			}
			if seen[it.Item] {
				t.Fatalf("duplicate item %d", it.Item)
			}
			seen[it.Item] = true
		}
	}
	// Determinism.
	again := GenInputs(NewOrder, s, 7, 50)
	for i := range ins {
		if ins[i].D != again[i].D || ins[i].C != again[i].C || len(ins[i].Items) != len(again[i].Items) {
			t.Fatal("inputs not deterministic")
		}
	}
}

func TestGenInputs150(t *testing.T) {
	ins := GenInputs(NewOrder150, PaperScale(), 7, 10)
	for _, in := range ins {
		if len(in.Items) < 50 || len(in.Items) > 150 {
			t.Fatalf("NEW ORDER 150 with %d items", len(in.Items))
		}
	}
}

func TestNewOrderFunctionalEffects(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	s := tinyScale()
	in := GenInputs(NewOrder, s, 9, 1)[0]
	before, _ := d.District.Get(nil, int64(in.D))
	oidBefore := before.Fields[DNextOID]
	ordersBefore := d.Order.Size
	olBefore := d.OrderLine.Size

	segs := d.RunTxn(in, ModeTLS)

	after, _ := d.District.Get(nil, int64(in.D))
	if after.Fields[DNextOID] != oidBefore+1 {
		t.Errorf("D_NEXT_O_ID %d -> %d", oidBefore, after.Fields[DNextOID])
	}
	if d.Order.Size != ordersBefore+1 {
		t.Errorf("order count %d -> %d", ordersBefore, d.Order.Size)
	}
	if d.OrderLine.Size != olBefore+len(in.Items) {
		t.Errorf("orderline grew by %d, want %d", d.OrderLine.Size-olBefore, len(in.Items))
	}
	// Decomposition: one iteration per order line, serial pre/post.
	iters := 0
	for _, seg := range segs {
		if seg.Iter {
			iters++
		}
	}
	if iters != len(in.Items) {
		t.Errorf("iterations = %d, want %d", iters, len(in.Items))
	}
	if segs[0].Iter || segs[len(segs)-1].Iter {
		t.Error("transaction must start and end with serial segments")
	}
	// The order row is readable.
	orow, ok := d.Order.Get(nil, OrderKey(in.D, oidBefore))
	if !ok || orow.Fields[OOLCnt] != int64(len(in.Items)) {
		t.Errorf("order row = %v, %v", orow, ok)
	}
}

func TestFlatModeSingleSegment(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	in := GenInputs(NewOrder, tinyScale(), 9, 1)[0]
	segs := d.RunTxn(in, ModeFlat)
	if len(segs) != 1 || segs[0].Iter {
		t.Fatalf("flat mode produced %d segments", len(segs))
	}
}

func TestTLSOverheadSmall(t *testing.T) {
	// The TLS software transformation must cost only a few percent
	// (the paper reports 0.93x-1.05x for TLS-SEQ).
	dFlat := loadTiny(t, db.OptAll())
	dTLS := loadTiny(t, db.OptAll())
	ins := GenInputs(NewOrder, tinyScale(), 9, 5)
	var flat, tls uint64
	for _, in := range ins {
		for _, seg := range dFlat.RunTxn(in, ModeFlat) {
			flat += seg.Trace.Instrs()
		}
		for _, seg := range dTLS.RunTxn(in, ModeTLS) {
			tls += seg.Trace.Instrs()
		}
	}
	ratio := float64(tls) / float64(flat)
	if ratio < 1.0 || ratio > 1.10 {
		t.Errorf("TLS software overhead ratio = %.3f, want 1.00-1.10", ratio)
	}
}

func TestDeliveryConsumesNewOrders(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	in := GenInputs(Delivery, tinyScale(), 9, 1)[0]
	noBefore := d.NewOrder.Size
	d.RunTxn(in, ModeTLS)
	if d.NewOrder.Size != noBefore-tinyScale().Districts {
		t.Errorf("NEW_ORDER %d -> %d, want one delivered per district",
			noBefore, d.NewOrder.Size)
	}
	// A second delivery consumes the next batch.
	d.RunTxn(in, ModeTLS)
	if d.NewOrder.Size != noBefore-2*tinyScale().Districts {
		t.Errorf("second delivery: NEW_ORDER = %d", d.NewOrder.Size)
	}
}

func TestDeliveryOuterSameEffectsAsInner(t *testing.T) {
	dI := loadTiny(t, db.OptAll())
	dO := loadTiny(t, db.OptAll())
	in := GenInputs(Delivery, tinyScale(), 9, 1)[0]
	inO := in
	inO.Bench = DeliveryOuter
	dI.RunTxn(in, ModeTLS)
	dO.RunTxn(inO, ModeTLS)
	if dI.NewOrder.Size != dO.NewOrder.Size {
		t.Errorf("inner/outer delivery diverged: %d vs %d", dI.NewOrder.Size, dO.NewOrder.Size)
	}
	// Outer: one iteration per district; inner: one per order line.
	segsO := dO.RunTxn(inO, ModeTLS)
	iters := 0
	for _, s := range segsO {
		if s.Iter {
			iters++
		}
	}
	if iters != tinyScale().Districts {
		t.Errorf("outer iterations = %d, want %d", iters, tinyScale().Districts)
	}
}

func TestStockLevelRuns(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	in := GenInputs(StockLevel, tinyScale(), 9, 1)[0]
	segs := d.RunTxn(in, ModeTLS)
	iters := 0
	for _, s := range segs {
		if s.Iter {
			iters++
		}
	}
	if iters < 10 || iters > 20 {
		t.Errorf("stock level iterations = %d, want ~20 recent orders", iters)
	}
}

func TestPaymentUpdatesBalances(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	in := GenInputs(Payment, tinyScale(), 9, 1)[0]
	wBefore := d.wRow.Fields[WYtd]
	d.RunTxn(in, ModeTLS)
	if d.wRow.Fields[WYtd] != wBefore+100 {
		t.Errorf("W_YTD %d -> %d", wBefore, d.wRow.Fields[WYtd])
	}
}

func TestOrderStatusReadOnly(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	in := GenInputs(OrderStatus, tinyScale(), 9, 1)[0]
	orders := d.Order.Size
	lines := d.OrderLine.Size
	d.RunTxn(in, ModeTLS)
	if d.Order.Size != orders || d.OrderLine.Size != lines {
		t.Error("ORDER STATUS modified the database")
	}
}

func TestLastNameCandidatesNonEmpty(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	for _, in := range GenInputs(Payment, tinyScale(), 11, 40) {
		cands := d.lastNameCandidates(in)
		if len(cands) == 0 {
			t.Fatalf("no candidates for %+v", in)
		}
	}
}

func TestBenchmarkNames(t *testing.T) {
	for _, b := range All() {
		got, err := Parse(b.String())
		if err != nil || got != b {
			t.Errorf("Parse(%q) = %v, %v", b.String(), got, err)
		}
	}
	if _, err := Parse("NOPE"); err == nil {
		t.Error("Parse of unknown name succeeded")
	}
	if len(TLSProfitable()) != 5 {
		t.Error("Figure 6 sweeps 5 benchmarks")
	}
}

func TestStateAdvancesIdenticallyAcrossModes(t *testing.T) {
	// The SEQUENTIAL and TLS experiment variants must see identical
	// database evolution for the comparison to be fair.
	dA := loadTiny(t, db.OptNone())
	dB := loadTiny(t, db.OptAll())
	ins := GenInputs(NewOrder, tinyScale(), 13, 6)
	for _, in := range ins {
		dA.RunTxn(in, ModeFlat)
		dB.RunTxn(in, ModeTLS)
	}
	if dA.Order.Size != dB.Order.Size || dA.OrderLine.Size != dB.OrderLine.Size {
		t.Error("optimization flags changed functional behaviour")
	}
	ra, _ := dA.District.Get(nil, 1)
	rb, _ := dB.District.Get(nil, 1)
	if ra.Fields[DNextOID] != rb.Fields[DNextOID] {
		t.Error("district sequence diverged across modes")
	}
}

func TestNewOrderRollback(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	in := GenInputs(NewOrder, tinyScale(), 9, 1)[0]
	in.Rollback = true
	in.Items[len(in.Items)-1].Item = -1

	before, _ := d.District.Get(nil, int64(in.D))
	oidBefore := before.Fields[DNextOID]
	orders := d.Order.Size
	lines := d.OrderLine.Size
	newOrders := d.NewOrder.Size
	srowBefore, _ := d.Stock.Get(nil, int64(in.Items[0].Item))
	qtyBefore := srowBefore.Fields[SQuantity]

	segs := d.RunTxn(in, ModeTLS)
	if len(segs) == 0 {
		t.Fatal("rollback txn produced no trace")
	}

	// Everything must be as it was: the undo log reverted the partial
	// work (district sequence, order/new-order/order-line inserts, stock
	// updates).
	after, _ := d.District.Get(nil, int64(in.D))
	if after.Fields[DNextOID] != oidBefore {
		t.Errorf("D_NEXT_O_ID not rolled back: %d -> %d", oidBefore, after.Fields[DNextOID])
	}
	if d.Order.Size != orders || d.OrderLine.Size != lines || d.NewOrder.Size != newOrders {
		t.Errorf("inserts not rolled back: orders %d->%d lines %d->%d",
			orders, d.Order.Size, lines, d.OrderLine.Size)
	}
	srowAfter, _ := d.Stock.Get(nil, int64(in.Items[0].Item))
	if srowAfter.Fields[SQuantity] != qtyBefore {
		t.Errorf("stock update not rolled back: %d -> %d", qtyBefore, srowAfter.Fields[SQuantity])
	}
	// A later transaction reuses the order id without duplicate-key
	// panics.
	in2 := GenInputs(NewOrder, tinyScale(), 10, 1)[0]
	in2.D = in.D
	d.RunTxn(in2, ModeTLS)
}

func TestRollbackInputsGenerated(t *testing.T) {
	ins := GenInputs(NewOrder, tinyScale(), 3, 1000)
	n := 0
	for _, in := range ins {
		if in.Rollback {
			n++
			if in.Items[len(in.Items)-1].Item != -1 {
				t.Fatal("rollback input lacks invalid item")
			}
		}
	}
	if n < 3 || n > 30 {
		t.Errorf("rollback rate = %d/1000, want ~1%%", n)
	}
}

func TestDeliverySkipsExhaustedDistricts(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	in := GenInputs(Delivery, tinyScale(), 9, 1)[0]
	// Drain every district's undelivered orders.
	for d.NewOrder.Size > 0 {
		d.RunTxn(in, ModeTLS)
	}
	orders := d.Order.Size
	segs := d.RunTxn(in, ModeTLS) // nothing left: all districts skip
	if d.NewOrder.Size != 0 || d.Order.Size != orders {
		t.Error("exhausted delivery modified state")
	}
	if len(segs) == 0 {
		t.Error("skip path emitted no trace")
	}
}

func TestStockLevelAggregationEmission(t *testing.T) {
	d := loadTiny(t, db.OptAll())
	in := GenInputs(StockLevel, tinyScale(), 9, 1)[0]
	segs := d.RunTxn(in, ModeTLS)
	// Every iteration must write the shared aggregation workspace (the
	// hard dependence), and the final count must read it serially.
	aggStores := 0
	for _, seg := range segs {
		if !seg.Iter {
			continue
		}
		for _, ev := range seg.Trace.Events() {
			if ev.Addr >= d.aggBase && ev.Addr < d.aggBase+mem.Addr(d.aggBuckets*mem.LineSize) {
				aggStores++
			}
		}
	}
	if aggStores == 0 {
		t.Error("stock level iterations never touch the shared aggregation workspace")
	}
}
