package inject

import (
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	cfg, err := Parse("seed=7,faults=40,window=200000,latch-every=128,latch-delay=8")
	if err != nil {
		t.Fatal(err)
	}
	want := Config{Seed: 7, Faults: 40, Window: 200000, LatchEvery: 128, LatchDelay: 8}
	if cfg != want {
		t.Fatalf("Parse = %+v, want %+v", cfg, want)
	}
	back, err := Parse(cfg.String())
	if err != nil {
		t.Fatalf("re-parsing %q: %v", cfg.String(), err)
	}
	if back != cfg {
		t.Errorf("round trip %+v != %+v", back, cfg)
	}
}

func TestParseDefaultsAndPartialSpec(t *testing.T) {
	cfg, err := Parse("seed=3")
	if err != nil {
		t.Fatal(err)
	}
	def := DefaultConfig()
	def.Seed = 3
	if cfg != def {
		t.Errorf("partial spec = %+v, want defaults with seed 3 (%+v)", cfg, def)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, s := range []string{"", "seed", "seed=x", "bogus=1", "faults=-2=3"} {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) accepted garbage", s)
		}
	}
}

func TestScheduleIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 11, Faults: 30, Window: 50000, LatchEvery: 64, LatchDelay: 4}
	a, b := New(cfg), New(cfg)
	var na, nb int
	for cyc := uint64(0); cyc < cfg.Window+1; cyc++ {
		for {
			fa, oka := a.Next(cyc)
			fb, okb := b.Next(cyc)
			if oka != okb || fa != fb {
				t.Fatalf("schedules diverge at cycle %d: %+v/%v vs %+v/%v", cyc, fa, oka, fb, okb)
			}
			if !oka {
				break
			}
			na, nb = na+1, nb+1
		}
		if a.LatchDelayed(cyc) != b.LatchDelayed(cyc) {
			t.Fatalf("latch delay diverges at cycle %d", cyc)
		}
	}
	if na != cfg.Faults {
		t.Errorf("delivered %d faults, want %d", na, cfg.Faults)
	}
	if a.Delivered() != uint64(cfg.Faults) || nb != na {
		t.Errorf("Delivered = %d/%d", a.Delivered(), nb)
	}
}

func TestSeedsProduceDistinctSchedules(t *testing.T) {
	cfg := DefaultConfig()
	a := New(cfg)
	cfg.Seed = 2
	b := New(cfg)
	same := true
	for cyc := uint64(0); cyc <= DefaultConfig().Window; cyc++ {
		fa, oka := a.Next(cyc)
		fb, okb := b.Next(cyc)
		if oka != okb || fa != fb {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical fault schedules")
	}
}

func TestFaultsLandInsideWindow(t *testing.T) {
	cfg := Config{Seed: 5, Faults: 100, Window: 1000, LatchEvery: 32, LatchDelay: 2}
	j := New(cfg)
	var prev uint64
	for i := 0; i < cfg.Faults; i++ {
		f, ok := j.Next(cfg.Window + 1)
		if !ok {
			t.Fatalf("only %d of %d faults delivered", i, cfg.Faults)
		}
		if f.Cycle < 1 || f.Cycle > cfg.Window {
			t.Errorf("fault %d at cycle %d, outside [1, %d]", i, f.Cycle, cfg.Window)
		}
		if f.Cycle < prev {
			t.Errorf("schedule not sorted: %d after %d", f.Cycle, prev)
		}
		prev = f.Cycle
	}
	if _, ok := j.Next(cfg.Window + 1); ok {
		t.Error("injector delivered more faults than configured")
	}
}
