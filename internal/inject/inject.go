// Package inject is the deterministic fault injector: it perturbs a
// simulation with synthetic violations (forced sub-thread squashes),
// overflow storms (synthetic speculative-buffer exhaustion, exercising both
// OverflowStall and OverflowSquash responses), and delayed latch grants.
// Every schedule is a pure function of its seed, so two runs with the same
// seed and configuration — on any worker count — see byte-identical fault
// sequences, and a failing schedule reproduces from its flag line alone.
package inject

import (
	"fmt"
	"sort"
	"strconv"
	"strings"

	"subthreads/internal/sim"
	"subthreads/internal/tls"
)

// DefaultWatchdog is the forward-progress bound the cmd tools apply when
// injection is enabled without an explicit watchdog: generous enough for the
// longest committed workloads, tight enough to convert a real livelock into
// an error in seconds.
const DefaultWatchdog = 5_000_000

// Config parameterizes one fault schedule.
type Config struct {
	// Seed selects the schedule; equal seeds give equal schedules.
	Seed uint64
	// Faults is how many squash/overflow faults to schedule.
	Faults int
	// Window is the cycle range [1, Window] the faults are spread over.
	Window uint64
	// LatchEvery suppresses latch grants on every cycle whose number is
	// congruent to a seed-dependent phase modulo LatchEvery, for
	// LatchDelay consecutive cycles. 0 disables latch delays.
	LatchEvery uint64
	// LatchDelay is how many cycles each latch-delay burst lasts.
	LatchDelay uint64
}

// DefaultConfig returns a moderate schedule: 25 faults over the first 120k
// cycles with short latch-delay bursts.
func DefaultConfig() Config {
	return Config{Seed: 1, Faults: 25, Window: 120_000, LatchEvery: 256, LatchDelay: 4}
}

// Parse reads a "-inject" flag value: comma-separated key=value pairs over
// the defaults, e.g. "seed=7,faults=40,window=200000,latch-every=128,
// latch-delay=8". An empty string is an error — injection off is expressed
// by not passing the flag.
func Parse(s string) (Config, error) {
	cfg := DefaultConfig()
	if strings.TrimSpace(s) == "" {
		return cfg, fmt.Errorf("inject: empty spec")
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("inject: %q is not key=value", part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("inject: bad value in %q: %v", part, err)
		}
		switch strings.TrimSpace(key) {
		case "seed":
			cfg.Seed = n
		case "faults":
			cfg.Faults = int(n)
		case "window":
			cfg.Window = n
		case "latch-every":
			cfg.LatchEvery = n
		case "latch-delay":
			cfg.LatchDelay = n
		default:
			return cfg, fmt.Errorf("inject: unknown key %q", key)
		}
	}
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	return cfg, nil
}

// String renders the config back into Parse's format (the repro line).
func (c Config) String() string {
	return fmt.Sprintf("seed=%d,faults=%d,window=%d,latch-every=%d,latch-delay=%d",
		c.Seed, c.Faults, c.Window, c.LatchEvery, c.LatchDelay)
}

// Injector implements sim.Injector over a pre-generated, sorted fault
// schedule. Injectors are single-use: construct a fresh one per sim run.
type Injector struct {
	cfg    Config
	sched  []sim.Fault
	next   int
	phase  uint64
	burst  uint64
	events uint64
}

var _ sim.Injector = (*Injector)(nil)

// New derives the full fault schedule from cfg.Seed.
func New(cfg Config) *Injector {
	if cfg.Window == 0 {
		cfg.Window = 1
	}
	rng := cfg.Seed
	sched := make([]sim.Fault, 0, cfg.Faults)
	for i := 0; i < cfg.Faults; i++ {
		sched = append(sched, sim.Fault{
			Cycle: 1 + splitmix64(&rng)%cfg.Window,
			Kind:  sim.FaultKind(splitmix64(&rng) % 2),
			CPU:   int(splitmix64(&rng) % 64),
			Ctx:   int(splitmix64(&rng) % tls.MaxSubthreads),
		})
	}
	sort.SliceStable(sched, func(i, j int) bool { return sched[i].Cycle < sched[j].Cycle })
	inj := &Injector{cfg: cfg, sched: sched, burst: cfg.LatchDelay}
	if cfg.LatchEvery > 0 {
		inj.phase = splitmix64(&rng) % cfg.LatchEvery
	}
	return inj
}

// Next pops the next scheduled fault due at or before now.
func (j *Injector) Next(now uint64) (sim.Fault, bool) {
	if j.next >= len(j.sched) || j.sched[j.next].Cycle > now {
		return sim.Fault{}, false
	}
	f := j.sched[j.next]
	j.next++
	j.events++
	return f, true
}

// LatchDelayed reports whether latch grants are suppressed on this cycle: a
// burst of LatchDelay cycles beginning at each multiple of LatchEvery (plus
// the seed-dependent phase). A pure function of now, so stalled retries and
// fresh acquires agree.
func (j *Injector) LatchDelayed(now uint64) bool {
	if j.cfg.LatchEvery == 0 || j.burst == 0 {
		return false
	}
	return (now+j.phase)%j.cfg.LatchEvery < j.burst
}

// Delivered reports how many scheduled faults Next has handed out.
func (j *Injector) Delivered() uint64 { return j.events }

// splitmix64 is the SplitMix64 generator: a tiny, well-distributed PRNG
// whose whole state is one word, so schedules derive from a seed alone.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
