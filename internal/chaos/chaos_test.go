package chaos

import (
	"errors"
	"testing"
)

func TestParseDefaultsAndOverrides(t *testing.T) {
	cfg, err := Parse("seed=7,disk-err=4,slow-ms=20")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	want := DefaultConfig()
	want.Seed, want.DiskErrEvery, want.SlowMS = 7, 4, 20
	if cfg != want {
		t.Errorf("Parse = %+v, want %+v", cfg, want)
	}
	for _, bad := range []string{"", "seed", "seed=x", "bogus=1"} {
		if _, err := Parse(bad); err == nil {
			t.Errorf("Parse(%q) accepted an invalid spec", bad)
		}
	}
}

func TestStringRoundTrips(t *testing.T) {
	cfg, err := Parse("seed=9,torn=3,panic=2")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	back, err := Parse(cfg.String())
	if err != nil || back != cfg {
		t.Errorf("String round-trip: %+v -> %q -> %+v (%v)", cfg, cfg.String(), back, err)
	}
}

// The reproducibility contract: equal seeds give equal fault sequences,
// operation by operation.
func TestScheduleIsDeterministic(t *testing.T) {
	cfg, _ := Parse("seed=42,disk-err=3,slow=4,slow-ms=1,torn=5,panic=3")
	a, b := New(cfg), New(cfg)
	for i := 0; i < 500; i++ {
		op := "load"
		if i%3 == 0 {
			op = "store"
		}
		fa, oka := a.Disk(op)
		fb, okb := b.Disk(op)
		if oka != okb || fa != fb {
			t.Fatalf("op %d (%s): schedules diverged: %+v/%v vs %+v/%v", i, op, fa, oka, fb, okb)
		}
		ma, pa := a.WorkerPanic()
		mb, pb := b.WorkerPanic()
		if pa != pb || ma != mb {
			t.Fatalf("job %d: panic schedules diverged", i)
		}
	}
	if a.Stats() != b.Stats() {
		t.Errorf("delivered-fault stats diverged: %+v vs %+v", a.Stats(), b.Stats())
	}
}

func TestSeedsChangeTheSchedule(t *testing.T) {
	mk := func(seed uint64) Stats {
		c := New(Config{Seed: seed, DiskErrEvery: 3, SlowEvery: 4, SlowMS: 1, TornEvery: 5, PanicEvery: 3})
		for i := 0; i < 300; i++ {
			c.Disk("load")
			c.Disk("store")
			c.WorkerPanic()
		}
		return c.Stats()
	}
	if mk(1) == mk(2) {
		t.Error("two different seeds delivered identical fault counts across every category")
	}
}

func TestProportionsRoughlyHold(t *testing.T) {
	const every, draws = 8, 4000
	c := New(Config{Seed: 11, DiskErrEvery: every})
	for i := 0; i < draws; i++ {
		c.Disk("load")
	}
	got := c.Stats().DiskErrs
	want := uint64(draws / every)
	if got < want/2 || got > want*2 {
		t.Errorf("1/%d schedule delivered %d faults over %d draws, want ~%d", every, got, draws, want)
	}
}

func TestZeroKnobsDeliverNothing(t *testing.T) {
	c := New(Config{Seed: 5})
	for i := 0; i < 200; i++ {
		if f, ok := c.Disk("load"); ok {
			t.Fatalf("zero config injected %+v", f)
		}
		if f, ok := c.Disk("store"); ok {
			t.Fatalf("zero config injected %+v", f)
		}
		if msg, ok := c.WorkerPanic(); ok {
			t.Fatalf("zero config scheduled a panic: %s", msg)
		}
	}
	if (c.Stats() != Stats{}) {
		t.Errorf("zero config counted faults: %+v", c.Stats())
	}
}

func TestInjectedErrIsRecognizable(t *testing.T) {
	c := New(Config{Seed: 3, DiskErrEvery: 1})
	f, ok := c.Disk("load")
	if !ok || !errors.Is(f.Err, ErrInjected) {
		t.Fatalf("every-op error schedule produced %+v, %v", f, ok)
	}
}

func TestNilStatsSafe(t *testing.T) {
	var c *Chaos
	if (c.Stats() != Stats{}) {
		t.Error("nil Chaos Stats not zero")
	}
}

func TestTornWriteReportsSuccessShape(t *testing.T) {
	c := New(Config{Seed: 13, TornEvery: 1})
	sawTorn := false
	for i := 0; i < 50; i++ {
		f, ok := c.Disk("store")
		if !ok {
			continue
		}
		if f.Err != nil {
			t.Fatalf("torn-only schedule injected a hard error: %+v", f)
		}
		if f.TornBytes > 0 {
			sawTorn = true
		}
	}
	if !sawTorn {
		t.Error("torn=1 schedule never tore a write")
	}
}
