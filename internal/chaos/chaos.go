// Package chaos is the serving-layer analogue of internal/inject: a seeded,
// deterministic fault schedule for the daemon's infrastructure rather than
// the simulated machine. It perturbs the persistent CAS tier (latency
// spikes, injected I/O errors, torn writes) and the job workers (panics
// mid-execution), exercising exactly the degradation paths the service
// claims to survive — breaker trips, quarantine, retry — without ever
// touching simulation results: a response that is served at all must still
// be byte-identical to tlssim -json.
//
// Every decision is a pure function of (seed, fault category, per-category
// operation counter), so a schedule reproduces from its flag line alone and
// is independent of goroutine interleaving across categories. Within one
// category, concurrent operations race for counter positions, but the set
// of positions that fire is fixed by the seed — the same proportion and
// pattern of faults lands every run.
package chaos

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"subthreads/internal/cas"
)

// ErrInjected is the error injected disk faults carry; consumers can
// errors.Is it to distinguish scheduled chaos from organic failures in
// logs and tests.
var ErrInjected = errors.New("chaos: injected I/O error")

// Config parameterizes one chaos schedule. Every knob is a "one in N"
// proportion (0 disables that fault class).
type Config struct {
	// Seed selects the schedule; equal seeds give equal schedules.
	Seed uint64
	// DiskErrEvery fails ~1/N disk loads and stores with ErrInjected.
	DiskErrEvery uint64
	// SlowEvery stalls ~1/N disk operations by SlowMS before they run.
	SlowEvery uint64
	// SlowMS is the injected latency spike, in milliseconds.
	SlowMS uint64
	// TornEvery tears ~1/N disk stores: the frame is truncated on disk
	// while the write reports success (latent corruption, detected and
	// quarantined by a later load).
	TornEvery uint64
	// PanicEvery panics ~1/N job executions inside the worker.
	PanicEvery uint64
}

// DefaultConfig returns a moderate schedule: roughly one in eight disk ops
// slow or failing, one in sixteen stores torn, one in ten jobs panicking.
func DefaultConfig() Config {
	return Config{Seed: 1, DiskErrEvery: 8, SlowEvery: 8, SlowMS: 5, TornEvery: 16, PanicEvery: 10}
}

// Parse reads a "-chaos" flag value: comma-separated key=value pairs over
// the defaults, e.g. "seed=7,disk-err=4,slow=8,slow-ms=20,torn=8,panic=6".
// An empty string is an error — chaos off is expressed by not passing the
// flag.
func Parse(s string) (Config, error) {
	cfg := DefaultConfig()
	if strings.TrimSpace(s) == "" {
		return cfg, fmt.Errorf("chaos: empty spec")
	}
	for _, part := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(part), "=")
		if !ok {
			return cfg, fmt.Errorf("chaos: %q is not key=value", part)
		}
		n, err := strconv.ParseUint(strings.TrimSpace(val), 10, 64)
		if err != nil {
			return cfg, fmt.Errorf("chaos: bad value in %q: %v", part, err)
		}
		switch strings.TrimSpace(key) {
		case "seed":
			cfg.Seed = n
		case "disk-err":
			cfg.DiskErrEvery = n
		case "slow":
			cfg.SlowEvery = n
		case "slow-ms":
			cfg.SlowMS = n
		case "torn":
			cfg.TornEvery = n
		case "panic":
			cfg.PanicEvery = n
		default:
			return cfg, fmt.Errorf("chaos: unknown key %q", key)
		}
	}
	return cfg, nil
}

// String renders the config back into Parse's format (the repro line).
func (c Config) String() string {
	return fmt.Sprintf("seed=%d,disk-err=%d,slow=%d,slow-ms=%d,torn=%d,panic=%d",
		c.Seed, c.DiskErrEvery, c.SlowEvery, c.SlowMS, c.TornEvery, c.PanicEvery)
}

// Stats counts the faults a schedule has actually delivered, exported on
// the daemon's /metrics so a chaos run is observable.
type Stats struct {
	DiskErrs  uint64 `json:"disk_errs"`
	DiskSlows uint64 `json:"disk_slows"`
	TornWrite uint64 `json:"torn_writes"`
	Panics    uint64 `json:"panics"`
}

// Fault-category salts: distinct streams per (category, flavor) so one
// operation's slow/error/torn decisions are independent draws.
const (
	catLoadErr uint64 = 0x10ad_e44 + iota
	catLoadSlow
	catStoreErr
	catStoreSlow
	catStoreTorn
	catPanic
)

// Chaos is one live schedule. It implements cas.FaultInjector for the disk
// tier; the service asks WorkerPanic per job execution. Safe for concurrent
// use.
type Chaos struct {
	cfg Config

	loads, stores, jobs atomic.Uint64

	diskErrs, diskSlows, torn, panics atomic.Uint64
}

var _ cas.FaultInjector = (*Chaos)(nil)

// New builds a live schedule from cfg.
func New(cfg Config) *Chaos { return &Chaos{cfg: cfg} }

// Config returns the schedule's configuration (the repro line).
func (c *Chaos) Config() Config { return c.cfg }

// fires reports whether the n-th draw of a category fires at proportion
// 1/every: a splitmix64 hash of (seed, category, n) — deterministic, and
// decorrelated across categories sharing a counter.
func (c *Chaos) fires(cat, n, every uint64) bool {
	if every == 0 {
		return false
	}
	x := c.cfg.Seed ^ cat
	_ = splitmix64(&x) // absorb the salt
	x ^= n
	return splitmix64(&x)%every == 0
}

// Disk implements cas.FaultInjector: the scheduled perturbation, if any,
// for the next disk operation of kind op ("load" or "store").
func (c *Chaos) Disk(op string) (cas.DiskFault, bool) {
	var f cas.DiskFault
	fired := false
	switch op {
	case "load":
		n := c.loads.Add(1)
		if c.fires(catLoadSlow, n, c.cfg.SlowEvery) {
			f.Delay = time.Duration(c.cfg.SlowMS) * time.Millisecond
			c.diskSlows.Add(1)
			fired = true
		}
		if c.fires(catLoadErr, n, c.cfg.DiskErrEvery) {
			f.Err = ErrInjected
			c.diskErrs.Add(1)
			fired = true
		}
	case "store":
		n := c.stores.Add(1)
		if c.fires(catStoreSlow, n, c.cfg.SlowEvery) {
			f.Delay = time.Duration(c.cfg.SlowMS) * time.Millisecond
			c.diskSlows.Add(1)
			fired = true
		}
		if c.fires(catStoreErr, n, c.cfg.DiskErrEvery) {
			f.Err = ErrInjected
			c.diskErrs.Add(1)
			fired = true
		} else if c.fires(catStoreTorn, n, c.cfg.TornEvery) {
			// Tear only writes that weren't already failed outright: a
			// torn write's whole point is that it reports success.
			f.TornBytes = 1 + int(n%23)
			c.torn.Add(1)
			fired = true
		}
	}
	return f, fired
}

// WorkerPanic reports whether the next job execution should panic inside
// the worker (exercising the service's panic containment). The panic value
// is the returned message.
func (c *Chaos) WorkerPanic() (string, bool) {
	n := c.jobs.Add(1)
	if !c.fires(catPanic, n, c.cfg.PanicEvery) {
		return "", false
	}
	c.panics.Add(1)
	return fmt.Sprintf("chaos: injected worker panic (job draw %d, %s)", n, c.cfg), true
}

// Stats snapshots the delivered-fault counters. Safe on a nil schedule
// (all zero), so callers never branch on whether -chaos was set.
func (c *Chaos) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	return Stats{
		DiskErrs:  c.diskErrs.Load(),
		DiskSlows: c.diskSlows.Load(),
		TornWrite: c.torn.Load(),
		Panics:    c.panics.Load(),
	}
}

// splitmix64 is the SplitMix64 generator (shared idiom with
// internal/inject): a tiny, well-distributed PRNG whose whole state is one
// word, so schedules derive from a seed alone.
func splitmix64(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
