package service

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"subthreads/internal/inject"
	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/workload"
)

// tinySpec is the smallest meaningful job: 2 measured transactions after a
// 1-transaction warm-up.
func tinySpec(bench string) JobSpec {
	warmup := 1
	return JobSpec{Benchmark: bench, Txns: 2, Warmup: &warmup}
}

// renderExpected reproduces cmd/tlssim's -json pipeline for a spec,
// independently of the service (fresh builds, no shared cache) — the pin
// that a served result is byte-identical to what the CLI prints.
func renderExpected(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	r, err := spec.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	cfg := r.Cfg
	if r.Inject != nil {
		cfg.Inject = inject.New(*r.Inject)
	}
	seqRes, _ := workload.Run(r.Spec, workload.Sequential)
	built := workload.Build(r.Spec, r.Exp.SequentialSoftware())
	res := sim.Run(cfg, built.Program)
	run := report.BuildRun(report.RunParams{
		Benchmark:  r.Spec.Bench.String(),
		Experiment: r.Exp.String(),
		CPUs:       cfg.CPUs,
		Subthreads: cfg.TLS.SubthreadsPerEpoch,
		Spacing:    cfg.SubthreadSpacing,
		Epochs:     built.Stats.Epochs,
		Coverage:   built.Stats.Coverage,
	}, res, seqRes)
	var buf bytes.Buffer
	if err := report.WriteRun(&buf, run); err != nil {
		t.Fatalf("WriteRun: %v", err)
	}
	return buf.Bytes()
}

func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s := New(opts)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		if err := s.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
	})
	return s, ts
}

func postJob(t *testing.T, ts *httptest.Server, spec JobSpec) *http.Response {
	t.Helper()
	b, err := json.Marshal(spec)
	if err != nil {
		t.Fatalf("marshal spec: %v", err)
	}
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	return resp
}

func decodeStatus(t *testing.T, r io.Reader) Status {
	t.Helper()
	var st Status
	if err := json.NewDecoder(r).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// waitDone polls the status endpoint until the job is terminal.
func waitDone(t *testing.T, ts *httptest.Server, id string) Status {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		st := decodeStatus(t, resp.Body)
		resp.Body.Close()
		if st.State == StateDone || st.State == StateFailed {
			return st
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %s did not finish", id)
	return Status{}
}

func getBody(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp, b
}

func TestResolveCanonicalDigest(t *testing.T) {
	// Spelling out the defaults must not change the content address.
	short := JobSpec{Benchmark: "NEW ORDER"}
	warmup, seed, opt := 2, int64(42), 5
	long := JobSpec{
		Benchmark:  "NEW ORDER",
		Experiment: "BASELINE",
		Txns:       8,
		Warmup:     &warmup,
		Seed:       &seed,
		Opt:        &opt,
	}
	a, err := short.Resolve()
	if err != nil {
		t.Fatalf("Resolve(short): %v", err)
	}
	b, err := long.Resolve()
	if err != nil {
		t.Fatalf("Resolve(long): %v", err)
	}
	if a.Digest != b.Digest {
		t.Errorf("defaulted and explicit specs digest differently:\n  %s\n  %s", a.Digest, b.Digest)
	}

	// Any semantic change must move the digest.
	for name, mut := range map[string]JobSpec{
		"seed":       {Benchmark: "NEW ORDER", Seed: ptr(int64(7))},
		"txns":       {Benchmark: "NEW ORDER", Txns: 4},
		"subthreads": {Benchmark: "NEW ORDER", Subthreads: 2},
		"overflow":   {Benchmark: "NEW ORDER", Overflow: "squash"},
		"paranoid":   {Benchmark: "NEW ORDER", Paranoid: true},
		"inject":     {Benchmark: "NEW ORDER", Inject: "seed=1,faults=5,window=60000"},
		"experiment": {Benchmark: "NEW ORDER", Experiment: "NO SUB-THREAD"},
	} {
		r, err := mut.Resolve()
		if err != nil {
			t.Fatalf("Resolve(%s): %v", name, err)
		}
		if r.Digest == a.Digest {
			t.Errorf("%s variant did not change the digest", name)
		}
	}

	// Invalid specs are rejected.
	for name, bad := range map[string]JobSpec{
		"benchmark":  {Benchmark: "NO SUCH BENCH"},
		"experiment": {Benchmark: "NEW ORDER", Experiment: "WARP"},
		"overflow":   {Benchmark: "NEW ORDER", Overflow: "explode"},
		"opt":        {Benchmark: "NEW ORDER", Opt: ptr(99)},
		"inject":     {Benchmark: "NEW ORDER", Inject: "gibberish"},
	} {
		if _, err := bad.Resolve(); err == nil {
			t.Errorf("Resolve accepted invalid %s", name)
		}
	}
}

func ptr[T any](v T) *T { return &v }

func TestEndToEndSubmitPollResultEvents(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	spec := tinySpec("NEW ORDER")

	resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("X-Cache = %q, want miss", got)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	if st.ID == "" || st.Digest == "" {
		t.Fatalf("submit returned incomplete status: %+v", st)
	}

	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job state = %s, want done (failure: %+v)", final.State, final.Failure)
	}

	rresp, body := getBody(t, ts.URL+final.ResultURL)
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("result status = %d, want 200", rresp.StatusCode)
	}
	want := renderExpected(t, spec)
	if !bytes.Equal(body, want) {
		t.Errorf("served result differs from tlssim -json rendering (%d vs %d bytes)", len(body), len(want))
	}

	// The SSE stream replays the full run even after completion.
	eresp, events := getBody(t, ts.URL+final.EventsURL)
	if eresp.StatusCode != http.StatusOK {
		t.Fatalf("events status = %d, want 200", eresp.StatusCode)
	}
	text := string(events)
	if !strings.Contains(text, "event: telemetry") {
		t.Errorf("SSE stream has no telemetry events:\n%.400s", text)
	}
	if !strings.Contains(text, `"kind":"epoch-commit"`) {
		t.Errorf("SSE stream has no epoch-commit event")
	}
	if !strings.HasSuffix(strings.TrimSpace(text), "}") || !strings.Contains(text, "event: done") {
		t.Errorf("SSE stream missing terminal done event:\n%.400s", text)
	}
}

func TestCacheHitServedWithoutResimulation(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})
	spec := tinySpec("STOCK LEVEL")

	resp := postJob(t, ts, spec)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	waitDone(t, ts, st.ID)
	_, first := getBody(t, ts.URL+"/v1/jobs/"+st.ID+"/result")
	builds := s.Builds()

	// Resubmitting the same spec returns the stored body immediately.
	hit := postJob(t, ts, spec)
	hitBody, err := io.ReadAll(hit.Body)
	hit.Body.Close()
	if err != nil {
		t.Fatalf("read hit body: %v", err)
	}
	if hit.StatusCode != http.StatusOK {
		t.Fatalf("cache-hit submit status = %d, want 200", hit.StatusCode)
	}
	if got := hit.Header.Get("X-Cache"); got != "hit" {
		t.Errorf("X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(hitBody, first) {
		t.Errorf("cache hit body differs from original result")
	}
	if s.Builds() != builds {
		t.Errorf("cache hit triggered %d new builds", s.Builds()-builds)
	}

	m := s.MetricsSnapshot()
	if m.CacheHits != 1 || m.JobsCompleted != 1 {
		t.Errorf("metrics: hits=%d completed=%d, want 1/1", m.CacheHits, m.JobsCompleted)
	}
	if m.CacheHitRatio <= 0 {
		t.Errorf("cache hit ratio not exported: %v", m.CacheHitRatio)
	}
}

func TestQueueFullReturns429(t *testing.T) {
	release := make(chan struct{})
	setRunningHook(t, func(*Job) { <-release })

	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	defer close(release)

	// First job occupies the worker; second fills the queue; third bounces.
	specs := []JobSpec{tinySpec("NEW ORDER"), tinySpec("STOCK LEVEL"), tinySpec("PAYMENT")}
	r1 := postJob(t, ts, specs[0])
	r1.Body.Close()
	// Wait until the worker holds job 1 so the queue is truly empty for job 2.
	waitState(t, ts, "job-1", StateRunning)

	r2 := postJob(t, ts, specs[1])
	r2.Body.Close()
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d, want 202", r2.StatusCode)
	}
	r3 := postJob(t, ts, specs[2])
	defer r3.Body.Close()
	if r3.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", r3.StatusCode)
	}
	if r3.Header.Get("Retry-After") == "" {
		t.Errorf("429 response missing Retry-After")
	}
}

// setRunningHook installs the worker seam for the test and removes it at
// cleanup (atomic store, so removal needs no ordering with worker exit).
func setRunningHook(t *testing.T, hook func(*Job)) {
	t.Helper()
	testHookRunning.Store(&hook)
	t.Cleanup(func() { testHookRunning.Store(nil) })
}

func waitState(t *testing.T, ts *httptest.Server, id string, want State) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatalf("GET status: %v", err)
		}
		st := decodeStatus(t, resp.Body)
		resp.Body.Close()
		if st.State == want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %s never reached %s", id, want)
}

func TestGracefulShutdownDrainsInFlight(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	setRunningHook(t, func(*Job) { started <- struct{}{}; <-release })

	s := New(Options{Workers: 1, QueueDepth: 4})
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	resp := postJob(t, ts, tinySpec("NEW ORDER"))
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	<-started // the worker holds the job

	done := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
		defer cancel()
		done <- s.Shutdown(ctx)
	}()

	// Admission stops immediately: readiness flips and submissions bounce.
	waitFor(t, func() bool {
		r, _ := getBody(t, ts.URL+"/readyz")
		return r.StatusCode == http.StatusServiceUnavailable
	}, "readyz never flipped to 503")
	r2 := postJob(t, ts, tinySpec("STOCK LEVEL"))
	r2.Body.Close()
	if r2.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit during drain = %d, want 503", r2.StatusCode)
	}

	select {
	case err := <-done:
		t.Fatalf("Shutdown returned before draining the in-flight job: %v", err)
	case <-time.After(50 * time.Millisecond):
	}

	close(release)
	if err := <-done; err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	// The drained job finished and its result is still servable.
	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("drained job state = %s, want done", final.State)
	}
	rr, _ := getBody(t, ts.URL+final.ResultURL)
	if rr.StatusCode != http.StatusOK {
		t.Errorf("result after drain = %d, want 200", rr.StatusCode)
	}
}

func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestConcurrentDuplicateSubmissions(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 32})
	spec := tinySpec("ORDER STATUS")

	const n = 16
	ids := make([]string, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp := postJob(t, ts, spec)
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var st Status
				if err := json.NewDecoder(resp.Body).Decode(&st); err == nil {
					ids[i] = st.ID
				}
			case http.StatusOK:
				ids[i] = resp.Header.Get("X-Job-Id")
			default:
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
			}
		}(i)
	}
	wg.Wait()

	want := ids[0]
	for i, id := range ids {
		if id != want {
			t.Errorf("submission %d landed on job %q, others on %q: duplicates not coalesced", i, id, want)
		}
	}
	waitDone(t, ts, want)
	m := s.MetricsSnapshot()
	if m.JobsCompleted != 1 {
		t.Errorf("jobs_completed = %d, want 1 (single-flight)", m.JobsCompleted)
	}
	if m.CacheMisses != 1 || m.CacheHits+m.DedupedInFlight != n-1 {
		t.Errorf("metrics: misses=%d hits=%d deduped=%d, want 1 miss and %d coalesced",
			m.CacheMisses, m.CacheHits, m.DedupedInFlight, n-1)
	}
}

// TestMixedSweep is the acceptance scenario: a 20-job mixed sweep with
// duplicates, submitted concurrently; every result must be byte-identical
// to the tlssim rendering of its spec, duplicates must be served from the
// digest index, and the hit ratio must be exported.
func TestMixedSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-simulation sweep")
	}
	s, ts := newTestServer(t, Options{Workers: 4, QueueDepth: 32})

	distinct := []JobSpec{
		tinySpec("NEW ORDER"),
		tinySpec("STOCK LEVEL"),
		tinySpec("PAYMENT"),
		tinySpec("ORDER STATUS"),
		{Benchmark: "NEW ORDER", Txns: 2, Warmup: ptr(1), Subthreads: 2},
		{Benchmark: "NEW ORDER", Txns: 2, Warmup: ptr(1), Spacing: 2000},
		{Benchmark: "STOCK LEVEL", Txns: 2, Warmup: ptr(1), Seed: ptr(int64(7))},
	}
	jobs := make([]JobSpec, 0, 20)
	for i := 0; i < 20; i++ {
		jobs = append(jobs, distinct[(i*3)%len(distinct)])
	}

	ids := make([]string, len(jobs))
	var wg sync.WaitGroup
	for i, spec := range jobs {
		wg.Add(1)
		go func(i int, spec JobSpec) {
			defer wg.Done()
			resp := postJob(t, ts, spec)
			defer resp.Body.Close()
			switch resp.StatusCode {
			case http.StatusAccepted:
				var st Status
				if err := json.NewDecoder(resp.Body).Decode(&st); err == nil {
					ids[i] = st.ID
				}
			case http.StatusOK:
				ids[i] = resp.Header.Get("X-Job-Id")
			default:
				t.Errorf("submit %d: status %d", i, resp.StatusCode)
			}
		}(i, spec)
	}
	wg.Wait()

	expected := make(map[string][]byte) // digest -> tlssim rendering
	for i, spec := range jobs {
		if ids[i] == "" {
			t.Fatalf("job %d has no id", i)
		}
		st := waitDone(t, ts, ids[i])
		if st.State != StateDone {
			t.Fatalf("job %d failed: %+v", i, st.Failure)
		}
		want, ok := expected[st.Digest]
		if !ok {
			want = renderExpected(t, spec)
			expected[st.Digest] = want
		}
		_, body := getBody(t, ts.URL+st.ResultURL)
		if !bytes.Equal(body, want) {
			t.Errorf("job %d (%s): served result differs from tlssim rendering", i, st.Digest[:12])
		}
	}
	if len(expected) != len(distinct) {
		t.Errorf("sweep produced %d distinct digests, want %d", len(expected), len(distinct))
	}

	m := s.MetricsSnapshot()
	if m.JobsCompleted != uint64(len(distinct)) {
		t.Errorf("jobs_completed = %d, want %d (duplicates must not re-simulate)", m.JobsCompleted, len(distinct))
	}
	if got := m.CacheHits + m.DedupedInFlight; got != uint64(len(jobs)-len(distinct)) {
		t.Errorf("coalesced submissions = %d, want %d", got, len(jobs)-len(distinct))
	}
	if m.CacheHitRatio <= 0 {
		t.Errorf("hit ratio not exported: %v", m.CacheHitRatio)
	}
}

func TestFailedJobSurfacesRunError(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	// A 1-cycle budget cannot finish any run: the job must fail with a
	// structured max-cycles error and the daemon must keep serving.
	spec := tinySpec("NEW ORDER")
	spec.MaxCycles = 1
	resp := postJob(t, ts, spec)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()

	final := waitDone(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Failure == nil || final.Failure.Kind != "max-cycles" {
		t.Fatalf("failure = %+v, want kind max-cycles", final.Failure)
	}
	if !strings.Contains(final.Failure.Repro, "go run ./cmd/tlssim") {
		t.Errorf("failure repro %q does not name tlssim", final.Failure.Repro)
	}
	rr, _ := getBody(t, ts.URL+final.ResultURL)
	if rr.StatusCode != http.StatusGone {
		t.Errorf("result of failed job = %d, want 410", rr.StatusCode)
	}

	// The failure freed the digest: resubmitting the same spec must start a
	// fresh job instead of replaying the failure as a cache hit.
	r2 := postJob(t, ts, spec)
	if r2.StatusCode != http.StatusAccepted {
		t.Fatalf("resubmit after failure = %d, want 202 (fresh job)", r2.StatusCode)
	}
	if got := r2.Header.Get("X-Cache"); got != "miss" {
		t.Errorf("resubmit after failure X-Cache = %q, want miss", got)
	}
	st2 := decodeStatus(t, r2.Body)
	r2.Body.Close()
	if st2.ID == st.ID {
		t.Errorf("resubmission attached to the failed job %s", st.ID)
	}
	waitDone(t, ts, st2.ID)

	// And the daemon is still healthy for well-formed work.
	r3 := postJob(t, ts, tinySpec("NEW ORDER"))
	st3 := decodeStatus(t, r3.Body)
	r3.Body.Close()
	if got := waitDone(t, ts, st3.ID); got.State != StateDone {
		t.Fatalf("follow-up job state = %s, want done", got.State)
	}
	m := s.MetricsSnapshot()
	if m.JobsFailed != 2 || m.JobsCompleted != 1 {
		t.Errorf("metrics failed=%d completed=%d, want 2/1", m.JobsFailed, m.JobsCompleted)
	}
}

func TestHealthzReportsVersion(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	resp, body := getBody(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	var h struct {
		Status  string `json:"status"`
		Version struct {
			Module string `json:"module"`
		} `json:"version"`
	}
	if err := json.Unmarshal(body, &h); err != nil {
		t.Fatalf("healthz body: %v\n%s", err, body)
	}
	if h.Status != "ok" || h.Version.Module != "subthreads" {
		t.Errorf("healthz = %s, want ok/subthreads", body)
	}
}

func TestReproCommandRoundTrips(t *testing.T) {
	spec := JobSpec{
		Benchmark:  "DELIVERY OUTER",
		Subthreads: 4,
		Spacing:    10000,
		Overflow:   "squash",
		Paranoid:   true,
		Inject:     "seed=3,faults=10,window=60000",
	}
	r, err := spec.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	repro := r.ReproCommand()
	for _, want := range []string{
		`-benchmark "DELIVERY OUTER"`, "-subthreads 4", "-spacing 10000",
		"-overflow squash", "-paranoid", "-inject", "-json",
	} {
		if !strings.Contains(repro, want) {
			t.Errorf("repro %q missing %q", repro, want)
		}
	}
}

func TestBenchReportShape(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the serving benchmark")
	}
	rep, err := RunBench(2, 2)
	if err != nil {
		t.Fatalf("RunBench: %v", err)
	}
	if rep.Jobs != rep.DistinctSpecs*2 || rep.CacheMisses != uint64(rep.DistinctSpecs) {
		t.Errorf("bench shape off: %+v", rep)
	}
	if rep.CacheHitRatio <= 0 || rep.JobsPerSec <= 0 {
		t.Errorf("bench metrics empty: %+v", rep)
	}
	// The stage breakdown must be populated and account for the cold path:
	// a simulated job spends most of its time in build+sim, and the sum of
	// the in-worker stages cannot exceed the submit-to-done mean.
	if rep.BuildLatencyMS <= 0 || rep.SimLatencyMS <= 0 || rep.RenderLatencyMS <= 0 {
		t.Errorf("stage breakdown empty: %+v", rep)
	}
	inWorker := rep.BuildLatencyMS + rep.SimLatencyMS + rep.RenderLatencyMS
	if inWorker > rep.ColdLatencyMS {
		t.Errorf("stage sum %.3fms exceeds cold latency %.3fms", inWorker, rep.ColdLatencyMS)
	}
	// The warm-restart phase: every spec served from disk, nothing rebuilt.
	if rep.DiskWarmHits != uint64(rep.DistinctSpecs) || rep.DiskWarmBuilds != 0 {
		t.Errorf("disk-warm phase off: %+v", rep)
	}
	if rep.DiskWarmHitLatencyMicros <= 0 {
		t.Errorf("disk-warm latency empty: %+v", rep)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(rep); err != nil {
		t.Fatalf("encode: %v", err)
	}
	if !strings.Contains(buf.String(), "jobs_per_sec") {
		t.Errorf("report JSON missing jobs_per_sec: %s", buf.String())
	}
}
