package service

import (
	"context"
	"log/slog"
	"testing"
	"time"

	"subthreads/internal/telemetry"
)

// shutdownServer drains a server created outside newTestServer.
func shutdownServer(t testing.TB, s *Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Errorf("Shutdown: %v", err)
	}
}

// TestDisabledObservabilityIsAllocationFree pins the library contract: with
// Options.Logger unset, every logging site reduces to one nil check — zero
// allocations per call — so embedding the server costs nothing when
// observability is off.
func TestDisabledObservabilityIsAllocationFree(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer shutdownServer(t, s)
	if a := testing.AllocsPerRun(100, func() {
		s.jlog(slog.LevelInfo, "noop")
	}); a != 0 {
		t.Errorf("nil-logger jlog allocates %.0f per call, want 0", a)
	}
}

// epochCommits counts committed epochs in a telemetry stream.
func epochCommits(evs []telemetry.Event) int {
	n := 0
	for i := range evs {
		if evs[i].Kind == telemetry.EpochCommit {
			n++
		}
	}
	return n
}

// servingAllocBudget bounds the serving hot path with observability off, in
// allocations per committed epoch. The simulator's own budget is ~416
// allocs/epoch (BenchmarkSimulate, PR 2); the serving path additionally
// retains every telemetry event for SSE replay and renders the result
// document once per run, so the bound carries headroom for that amortized
// cost — but a per-epoch allocation regression from logging, correlation,
// stage timing, or the (disabled) flight recorder would blow through it.
const servingAllocBudget = 600

func TestServingHotPathStaysWithinAllocBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("runs full simulations")
	}
	s := New(Options{Workers: 1, QueueDepth: 1}) // no Logger, no FlightDir
	defer shutdownServer(t, s)

	spec := tinySpec("NEW ORDER")
	r, err := spec.Resolve()
	if err != nil {
		t.Fatalf("Resolve: %v", err)
	}
	// Warm the shared build cache so the measurement sees only the per-run
	// serving path: simulate, sequential reference, render.
	warm := newJob("warm", "c", spec, r, time.Now(), 0)
	if _, failure := s.execute(warm); failure != nil {
		t.Fatalf("warm-up failed: %+v", failure)
	}
	epochs := epochCommits(warm.fan.Events())
	if epochs == 0 {
		t.Fatal("warm-up run committed no epochs")
	}

	allocs := testing.AllocsPerRun(3, func() {
		j := newJob("bench", "c", spec, r, time.Now(), 0)
		if _, failure := s.execute(j); failure != nil {
			t.Fatalf("job failed: %+v", failure)
		}
	})
	perEpoch := allocs / float64(epochs)
	t.Logf("observability off: %.0f allocs/run over %d epochs = %.1f allocs/epoch (budget %d)",
		allocs, epochs, perEpoch, servingAllocBudget)
	if perEpoch > servingAllocBudget {
		t.Errorf("disabled-observability serving path allocates %.1f/epoch, budget %d", perEpoch, servingAllocBudget)
	}
}

// BenchmarkExecuteObservabilityOff is the benchmark form of the guard for
// `go test -bench -benchmem`: one iteration is one served run on a server
// with logging and the flight recorder disabled.
func BenchmarkExecuteObservabilityOff(b *testing.B) {
	s := New(Options{Workers: 1, QueueDepth: 1})
	defer shutdownServer(b, s)
	spec := tinySpec("NEW ORDER")
	r, err := spec.Resolve()
	if err != nil {
		b.Fatalf("Resolve: %v", err)
	}
	warm := newJob("warm", "c", spec, r, time.Now(), 0)
	if _, failure := s.execute(warm); failure != nil {
		b.Fatalf("warm-up failed: %+v", failure)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		j := newJob("bench", "c", spec, r, time.Now(), 0)
		if _, failure := s.execute(j); failure != nil {
			b.Fatalf("job failed: %+v", failure)
		}
	}
	b.ReportMetric(float64(epochCommits(warm.fan.Events())), "epochs")
}
