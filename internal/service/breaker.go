package service

import (
	"sync"
	"time"
)

// Breaker states. The classic three-state machine: closed (disk trusted),
// open (disk bypassed — the daemon serves memory and rebuilds), half-open
// (one probe in flight deciding which way to go).
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// breaker is the circuit breaker around the disk CAS tier. It watches every
// store operation through cas.Store's observer hook (an operation counts as
// a failure if it errors or exceeds slowCall) and trips open after
// threshold consecutive failures. While open, allow() short-circuits the
// service's result-tier disk probes and publishes, so a sick disk degrades
// the daemon to memory-plus-rebuild instead of dragging every request
// through slow I/O. After cooldown, one probe is let through half-open: its
// outcome closes or re-opens the circuit.
//
// The zero threshold/cooldown/slowCall values are replaced by defaults in
// newBreaker. All methods are safe on a nil breaker (allow always true) so
// a store-less server never branches.
type breaker struct {
	threshold int
	cooldown  time.Duration
	slowCall  time.Duration
	now       func() time.Time       // test seam
	onChange  func(from, to string)  // transition log hook; may be nil

	mu       sync.Mutex
	state    string
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // half-open: the single probe slot is taken
	opens    uint64
	shorts   uint64
}

// Breaker defaults: five consecutive failures open the circuit, a probe is
// attempted after ten seconds, and a disk call slower than 250ms counts as
// a failure even when it succeeds.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 10 * time.Second
	defaultBreakerSlowCall  = 250 * time.Millisecond
)

func newBreaker(threshold int, cooldown, slowCall time.Duration) *breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	if slowCall <= 0 {
		slowCall = defaultBreakerSlowCall
	}
	return &breaker{
		threshold: threshold,
		cooldown:  cooldown,
		slowCall:  slowCall,
		now:       time.Now,
		state:     breakerClosed,
	}
}

// allow reports whether a result-tier disk operation should be attempted.
// false means short-circuit: skip the disk, serve from memory or rebuild.
func (b *breaker) allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.shorts++
			return false
		}
		b.setStateLocked(breakerHalfOpen)
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			b.shorts++
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// observe feeds one disk-operation outcome into the state machine. Wired as
// the cas.Store observer, so it sees the build cache's disk traffic too —
// any tier's misbehavior is evidence about the same disk.
func (b *breaker) observe(_ string, d time.Duration, failed bool) {
	if b == nil {
		return
	}
	bad := failed || d >= b.slowCall
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if !bad {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.tripLocked()
		}
	case breakerHalfOpen:
		b.probing = false
		if bad {
			b.tripLocked()
			return
		}
		b.setStateLocked(breakerClosed)
		b.fails = 0
	case breakerOpen:
		// A straggler from before the trip; the probe decides, not this.
	}
}

// tripLocked opens the circuit. Caller holds mu.
func (b *breaker) tripLocked() {
	b.setStateLocked(breakerOpen)
	b.openedAt = b.now()
	b.opens++
	b.fails = 0
	b.probing = false
}

// setStateLocked transitions and reports. Caller holds mu.
func (b *breaker) setStateLocked(to string) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// BreakerStats is the /metrics view of the breaker.
type BreakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               uint64 `json:"opens"`
	ShortCircuits       uint64 `json:"short_circuits"`
}

// stats snapshots the breaker. Safe on nil (a permanently closed circuit).
func (b *breaker) stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: breakerClosed}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state,
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		ShortCircuits:       b.shorts,
	}
}
