package service

import (
	"sync"
	"time"
)

// Breaker states. The classic three-state machine: closed (dependency
// trusted), open (dependency bypassed — the caller degrades), half-open (one
// probe in flight deciding which way to go).
const (
	breakerClosed   = "closed"
	breakerOpen     = "open"
	breakerHalfOpen = "half-open"
)

// Breaker is a hystrix-style circuit breaker around one fallible dependency.
// The daemon wraps its disk CAS tier in one (an operation counts as a
// failure if it errors or exceeds slowCall) and internal/cluster wraps each
// inter-node link in its own, so a sick replica degrades its callers to
// recompute instead of dragging every request through a dead socket. It
// trips open after threshold consecutive failures; while open, Allow()
// short-circuits callers. After cooldown, one probe is let through
// half-open: its outcome closes or re-opens the circuit.
//
// The zero threshold/cooldown/slowCall values are replaced by defaults in
// NewBreaker. All methods are safe on a nil Breaker (Allow always true) so
// callers without a breaker never branch.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	slowCall  time.Duration
	now       func() time.Time      // test seam
	onChange  func(from, to string) // transition log hook; may be nil

	mu       sync.Mutex
	state    string
	fails    int // consecutive failures while closed
	openedAt time.Time
	probing  bool // half-open: the single probe slot is taken
	opens    uint64
	shorts   uint64
}

// Breaker defaults: five consecutive failures open the circuit, a probe is
// attempted after ten seconds, and a call slower than 250ms counts as a
// failure even when it succeeds.
const (
	defaultBreakerThreshold = 5
	defaultBreakerCooldown  = 10 * time.Second
	defaultBreakerSlowCall  = 250 * time.Millisecond
)

// NewBreaker builds a breaker. Zero arguments take the package defaults; a
// caller whose operations are legitimately slow (e.g. a proxied simulation)
// should pass a large slowCall so only real errors count.
func NewBreaker(threshold int, cooldown, slowCall time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = defaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = defaultBreakerCooldown
	}
	if slowCall <= 0 {
		slowCall = defaultBreakerSlowCall
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		slowCall:  slowCall,
		now:       time.Now,
		state:     breakerClosed,
	}
}

// OnChange registers a state-transition hook (for logging); it is called
// with the breaker's lock held, so it must not re-enter the breaker.
func (b *Breaker) OnChange(fn func(from, to string)) {
	if b != nil {
		b.onChange = fn
	}
}

// Allow reports whether an operation should be attempted. false means
// short-circuit: skip the dependency and degrade.
func (b *Breaker) Allow() bool {
	if b == nil {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			b.shorts++
			return false
		}
		b.setStateLocked(breakerHalfOpen)
		b.probing = true
		return true
	case breakerHalfOpen:
		if b.probing {
			b.shorts++
			return false
		}
		b.probing = true
		return true
	default:
		return true
	}
}

// Observe feeds one operation outcome into the state machine. The daemon
// wires it as the cas.Store observer (so it sees the build cache's disk
// traffic too — any tier's misbehavior is evidence about the same disk);
// the cluster layer calls it after each inter-node request. The first
// argument names the operation and exists to satisfy the store's observer
// signature; the state machine ignores it.
func (b *Breaker) Observe(_ string, d time.Duration, failed bool) {
	if b == nil {
		return
	}
	bad := failed || d >= b.slowCall
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerClosed:
		if !bad {
			b.fails = 0
			return
		}
		b.fails++
		if b.fails >= b.threshold {
			b.tripLocked()
		}
	case breakerHalfOpen:
		b.probing = false
		if bad {
			b.tripLocked()
			return
		}
		b.setStateLocked(breakerClosed)
		b.fails = 0
	case breakerOpen:
		// A straggler from before the trip; the probe decides, not this.
	}
}

// tripLocked opens the circuit. Caller holds mu.
func (b *Breaker) tripLocked() {
	b.setStateLocked(breakerOpen)
	b.openedAt = b.now()
	b.opens++
	b.fails = 0
	b.probing = false
}

// setStateLocked transitions and reports. Caller holds mu.
func (b *Breaker) setStateLocked(to string) {
	if b.state == to {
		return
	}
	from := b.state
	b.state = to
	if b.onChange != nil {
		b.onChange(from, to)
	}
}

// BreakerStats is the /metrics view of a breaker.
type BreakerStats struct {
	State               string `json:"state"`
	ConsecutiveFailures int    `json:"consecutive_failures"`
	Opens               uint64 `json:"opens"`
	ShortCircuits       uint64 `json:"short_circuits"`
}

// Stats snapshots the breaker. Safe on nil (a permanently closed circuit).
func (b *Breaker) Stats() BreakerStats {
	if b == nil {
		return BreakerStats{State: breakerClosed}
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:               b.state,
		ConsecutiveFailures: b.fails,
		Opens:               b.opens,
		ShortCircuits:       b.shorts,
	}
}

// BreakerStateNames lists the breaker states in the order the Prometheus
// one-hot state gauges enumerate them.
func BreakerStateNames() [3]string {
	return [3]string{breakerClosed, breakerOpen, breakerHalfOpen}
}
