package service

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"subthreads/internal/telemetry"
)

// runJobSpec posts a spec, waits for completion, and returns the result body.
func runJobSpec(t *testing.T, ts *httptest.Server, spec JobSpec) []byte {
	t.Helper()
	resp := postJob(t, ts, spec)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	final := waitDone(t, ts, st.ID)
	if final.State != StateDone {
		t.Fatalf("job state = %s (%+v)", final.State, final.Failure)
	}
	_, body := getBody(t, ts.URL+final.ResultURL)
	return body
}

// The snapshot warm-start contract: the first job of a {workload, prefix}
// group publishes a machine checkpoint, and every later spec that differs
// only in fork-safe parameters — sub-thread spacing, count, overflow policy —
// forks its simulation from it, in this process life or (via the persistent
// store) a later one. Every forked body must stay byte-identical to the
// tlssim -json rendering.
func TestSnapshotWarmStartForksDominatedSpecs(t *testing.T) {
	dir := t.TempDir()
	base := tinySpec("NEW ORDER")

	s1, ts1 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	body1 := runJobSpec(t, ts1, base)
	if want := renderExpected(t, base); !bytes.Equal(body1, want) {
		t.Fatal("cold body differs from tlssim -json rendering")
	}
	m := s1.MetricsSnapshot()
	if m.SnapshotPuts != 1 {
		t.Fatalf("snapshot_puts = %d, want 1", m.SnapshotPuts)
	}
	if m.JobsReplayed == 0 || m.JobsForked != 0 {
		t.Fatalf("cold split forked=%d replayed=%d, want 0/>0", m.JobsForked, m.JobsReplayed)
	}

	// A dominated spec in the same life: same workload, divergent spacing.
	spaced := base
	spaced.Spacing = 2500
	body2 := runJobSpec(t, ts1, spaced)
	if want := renderExpected(t, spaced); !bytes.Equal(body2, want) {
		t.Fatal("forked body differs from tlssim -json rendering")
	}
	m = s1.MetricsSnapshot()
	if m.SnapshotHits != 1 || m.JobsForked != 1 {
		t.Fatalf("after spaced job: snapshot_hits=%d jobs_forked=%d, want 1/1", m.SnapshotHits, m.JobsForked)
	}

	// A restarted daemon forks a third variant from the on-disk checkpoint.
	s2, ts2 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	squash := base
	squash.Overflow = "squash"
	body3 := runJobSpec(t, ts2, squash)
	if want := renderExpected(t, squash); !bytes.Equal(body3, want) {
		t.Fatal("restart-forked body differs from tlssim -json rendering")
	}
	if m := s2.MetricsSnapshot(); m.SnapshotHits != 1 || m.JobsForked != 1 {
		t.Fatalf("restart life: snapshot_hits=%d jobs_forked=%d, want 1/1", m.SnapshotHits, m.JobsForked)
	}
}

// A corrupt checkpoint must be quarantined and the job replayed in full —
// the tier degrades, it never fails a job or serves wrong bytes.
func TestCorruptSnapshotQuarantinedNeverFatal(t *testing.T) {
	dir := t.TempDir()
	base := tinySpec("STOCK LEVEL")

	_, ts1 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	runJobSpec(t, ts1, base)

	// Overwrite the published checkpoint with bytes that pass the store's
	// integrity check but are not a snapshot frame.
	r, err := base.Resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	key := snapshotKey(r.Spec, r.Cfg)
	store2 := openTestStore(t, dir)
	if _, ok := store2.Get(casSnapNS, key); !ok {
		t.Fatalf("no stored checkpoint under key %s", key)
	}
	store2.Put(casSnapNS, key, []byte("not a snapshot frame"))

	s2, ts2 := newTestServer(t, Options{Workers: 1, Store: store2})
	spaced := base
	spaced.Spacing = 2500
	body := runJobSpec(t, ts2, spaced)
	if want := renderExpected(t, spaced); !bytes.Equal(body, want) {
		t.Fatal("replayed body differs from tlssim -json rendering")
	}
	m := s2.MetricsSnapshot()
	if m.SnapshotCorrupt != 1 || m.JobsForked != 0 || m.JobsReplayed == 0 {
		t.Fatalf("corrupt handling: corrupt=%d forked=%d replayed=%d, want 1/0/>0",
			m.SnapshotCorrupt, m.JobsForked, m.JobsReplayed)
	}
	// The replay recaptured and republished a healthy checkpoint over the
	// quarantined one; a third life forks again.
	if m.SnapshotPuts != 1 {
		t.Fatalf("snapshot_puts after replay = %d, want 1", m.SnapshotPuts)
	}
	s3, ts3 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	squash := base
	squash.Overflow = "squash"
	runJobSpec(t, ts3, squash)
	if m := s3.MetricsSnapshot(); m.SnapshotHits != 1 {
		t.Fatalf("self-heal: snapshot_hits = %d, want 1", m.SnapshotHits)
	}
}

// Fault-injected jobs never fork: a checkpoint would skip scheduled faults.
func TestInjectedJobsNeverFork(t *testing.T) {
	dir := t.TempDir()
	base := tinySpec("NEW ORDER")

	s1, ts1 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	runJobSpec(t, ts1, base) // publishes a checkpoint

	injected := base
	injected.Spacing = 2500
	injected.Inject = "seed=7,faults=2"
	runJobSpec(t, ts1, injected)
	m := s1.MetricsSnapshot()
	if m.JobsForked != 0 {
		t.Fatalf("injected job forked (jobs_forked=%d)", m.JobsForked)
	}
}

// The snapshot metric families must pass the exposition linter and carry the
// fork-vs-replay split.
func TestPromExposesSnapshotFamilies(t *testing.T) {
	dir := t.TempDir()
	base := tinySpec("NEW ORDER")

	_, ts1 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	runJobSpec(t, ts1, base)
	spaced := base
	spaced.Spacing = 2500
	runJobSpec(t, ts1, spaced)

	req, _ := http.NewRequest("GET", ts1.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := telemetry.LintProm(body); err != nil {
		t.Fatalf("exposition does not lint: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"tlsd_snapshot_hit_total 1",
		"tlsd_snapshot_miss_total 1",
		"tlsd_snapshot_put_total 1",
		"tlsd_snapshot_corrupt_total 0",
		"tlsd_jobs_forked_total 1",
		"tlsd_jobs_replayed_total 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}
