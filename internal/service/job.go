package service

import (
	"sync"
	"time"

	"subthreads/internal/telemetry"
)

// State is a job's lifecycle position. Jobs move strictly
// queued -> running -> done | failed.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning State = "running"
	// StateDone: finished; the result body is cached and servable.
	StateDone State = "done"
	// StateFailed: the simulation ended with a structured error (watchdog,
	// audit, cycle budget); the failure is in the status, the daemon lives.
	StateFailed State = "failed"
)

// Failure is the job-status form of a *sim.RunError: what kind of failure,
// when, and the exact CLI command that reproduces it.
type Failure struct {
	Kind  string `json:"kind"`
	Cycle uint64 `json:"cycle"`
	Error string `json:"error"`
	Repro string `json:"repro"`
}

// Job is one admitted simulation. All mutable state is behind mu; the
// identity fields (id, spec, resolved form, fan-out sink) are set at
// creation and never change.
type Job struct {
	id  string
	res *Resolved

	// fan retains the job's full telemetry stream and feeds the SSE
	// endpoint; it is closed when the job finishes, completing the stream.
	fan *telemetry.Fanout

	// done is closed when the job reaches a terminal state.
	done chan struct{}

	mu        sync.Mutex
	spec      JobSpec
	state     State
	submitted time.Time
	finished  time.Time
	body      []byte
	failure   *Failure
}

func newJob(id string, spec JobSpec, r *Resolved, now time.Time) *Job {
	return &Job{
		id:        id,
		res:       r,
		fan:       telemetry.NewFanout(),
		done:      make(chan struct{}),
		spec:      spec,
		state:     StateQueued,
		submitted: now,
	}
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// Digest returns the job's content address.
func (j *Job) Digest() string { return j.res.Digest }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events returns the job's telemetry fan-out (live during the run, complete
// and closed afterwards).
func (j *Job) Events() *telemetry.Fanout { return j.fan }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the rendered result body, or nil unless the job is done.
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.body
}

// setRunning transitions queued -> running.
func (j *Job) setRunning() {
	j.mu.Lock()
	j.state = StateRunning
	j.mu.Unlock()
}

// finish records the terminal state, closes the done channel, and completes
// the telemetry stream.
func (j *Job) finish(body []byte, failure *Failure, now time.Time) {
	j.mu.Lock()
	if failure != nil {
		j.state = StateFailed
		j.failure = failure
	} else {
		j.state = StateDone
		j.body = body
	}
	j.finished = now
	j.mu.Unlock()
	j.fan.Close()
	close(j.done)
}

// Status is the JSON view of a job (GET /v1/jobs/{id}).
type Status struct {
	ID     string  `json:"id"`
	State  State   `json:"state"`
	Digest string  `json:"digest"`
	Spec   JobSpec `json:"spec"`
	// Submitted is when the job was admitted (RFC 3339, UTC).
	Submitted string `json:"submitted"`
	// ElapsedMS is queue+run wall time so far (or total, once terminal).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Failure carries the structured error of a failed job.
	Failure *Failure `json:"failure,omitempty"`
	// ResultURL / EventsURL are the job's other endpoints.
	ResultURL string `json:"result_url"`
	EventsURL string `json:"events_url"`
}

// StatusAt renders the job's status as of now.
func (j *Job) StatusAt(now time.Time) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := now
	if !j.finished.IsZero() {
		end = j.finished
	}
	return Status{
		ID:        j.id,
		State:     j.state,
		Digest:    j.res.Digest,
		Spec:      j.spec,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		ElapsedMS: float64(end.Sub(j.submitted).Microseconds()) / 1000,
		Failure:   j.failure,
		ResultURL: "/v1/jobs/" + j.id + "/result",
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
}
