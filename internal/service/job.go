package service

import (
	"context"
	"errors"
	"sync"
	"time"

	"subthreads/internal/telemetry"
)

// State is a job's lifecycle position. Jobs move strictly
// queued -> running -> done | failed.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning State = "running"
	// StateDone: finished; the result body is cached and servable.
	StateDone State = "done"
	// StateFailed: the simulation ended with a structured error (watchdog,
	// audit, cycle budget); the failure is in the status, the daemon lives.
	StateFailed State = "failed"
)

// Failure is the job-status form of a *sim.RunError: what kind of failure,
// when, and the exact CLI command that reproduces it.
type Failure struct {
	Kind  string `json:"kind"`
	Cycle uint64 `json:"cycle"`
	Error string `json:"error"`
	Repro string `json:"repro"`
	// FlightRecord is the path of the flight-recorder JSONL dump written
	// for this failure (empty when the recorder is disabled).
	FlightRecord string `json:"flight_record,omitempty"`
}

// stage indexes the serving-pipeline segments whose latency the daemon
// accounts separately: queue wait, workload build, simulation, and result
// rendering. The build and sim stages each accumulate both the TLS and the
// sequential-reference passes.
type stage int

const (
	stageQueue stage = iota
	stageBuild
	stageSim
	stageRender
	numStages
)

var stageNames = [numStages]string{"queue", "build", "sim", "render"}

func (st stage) String() string { return stageNames[st] }

// Job is one admitted simulation. All mutable state is behind mu; the
// identity fields (id, correlation ID, spec, resolved form, sinks) are set
// at creation and never change.
type Job struct {
	id string
	// corr is the correlation ID of the submission that created the job; it
	// stamps the job's SSE events, log lines, and flight-record filename.
	corr string
	res  *Resolved

	// fan retains the job's full telemetry stream and feeds the SSE
	// endpoint; it is closed when the job finishes, completing the stream.
	fan *telemetry.Fanout
	// flight is the bounded ring of recent telemetry events dumped when the
	// job fails with a structured error; nil when the recorder is disabled.
	flight *telemetry.Ring

	// done is closed when the job reaches a terminal state.
	done chan struct{}

	// ctx carries the job's deadline and cancellation signal; the worker
	// threads it into sim.Config.Cancel and checks it between pipeline
	// stages. nil on jobs that never execute (cache and disk-warm hits).
	ctx context.Context
	// cancelCause cancels ctx with an explicit cause — the cause picks the
	// Failure kind ("timeout" | "cancelled" | "drain").
	cancelCause context.CancelCauseFunc
	// stopTimer releases the deadline timer once the job is terminal.
	stopTimer context.CancelFunc

	mu        sync.Mutex
	spec      JobSpec
	state     State
	stage     stage
	stageFrom time.Time
	stageDur  [numStages]time.Duration
	submitted time.Time
	finished  time.Time
	body      []byte
	failure   *Failure
	// claimed settles the race between the worker that pops the job and a
	// canceller that fires while it is still queued: exactly one of them
	// executes/finishes the job.
	claimed bool
	// waiters counts live synchronous watchers (?wait=1 submissions);
	// detached marks that at least one asynchronous submitter wants the
	// result regardless of connections. A job whose last waiter disconnects
	// with no detached submitter is cancelled — nobody is listening.
	waiters  int
	detached bool
}

func newJob(id, corr string, spec JobSpec, r *Resolved, now time.Time, flightEvents int) *Job {
	j := &Job{
		id:        id,
		corr:      corr,
		res:       r,
		fan:       telemetry.NewFanout(),
		done:      make(chan struct{}),
		spec:      spec,
		state:     StateQueued,
		stageFrom: now,
		submitted: now,
	}
	if flightEvents > 0 {
		j.flight = telemetry.NewRing(flightEvents)
	}
	return j
}

// Cancellation causes: the cause a job context was cancelled with selects
// the structured Failure kind reported for the abandoned run.
var (
	// errWatchersGone cancels a job whose last synchronous watcher
	// disconnected with no asynchronous submitter attached.
	errWatchersGone = errors.New("service: all watchers disconnected")
	// errDrainCancelled cancels stragglers when the shutdown grace expires.
	errDrainCancelled = errors.New("service: cancelled by shutdown drain")
	// errCancelRequested cancels a job on DELETE /v1/jobs/{id}.
	errCancelRequested = errors.New("service: cancelled by request")
)

// cancelKind maps a context cause onto the Failure kind.
func cancelKind(cause error) string {
	switch {
	case errors.Is(cause, context.DeadlineExceeded):
		return "timeout"
	case errors.Is(cause, errDrainCancelled):
		return "drain"
	default:
		return "cancelled"
	}
}

// arm attaches the job's cancellation context: an optional deadline of
// timeout from now (the deadline covers queue wait too — it is the
// submitter's end-to-end budget, not a running-time budget).
func (j *Job) arm(timeout time.Duration, now time.Time) {
	ctx, cancel := context.WithCancelCause(context.Background())
	j.cancelCause = cancel
	if timeout > 0 {
		j.ctx, j.stopTimer = context.WithDeadline(ctx, now.Add(timeout))
	} else {
		j.ctx, j.stopTimer = ctx, func() {}
	}
}

// Cancel cancels the job with the given cause. A no-op on jobs without a
// cancellation context (cache hits) and on already-terminal jobs (the
// context fires, but nobody is listening anymore).
func (j *Job) Cancel(cause error) {
	if j.cancelCause != nil {
		j.cancelCause(cause)
	}
}

// release frees the context resources (deadline timer, cause slot) once the
// job is terminal.
func (j *Job) release() {
	if j.stopTimer != nil {
		j.stopTimer()
	}
	if j.cancelCause != nil {
		j.cancelCause(context.Canceled)
	}
}

// claim resolves who owns the job's execution: the first caller (the worker
// that popped it, or a canceller that fired while it was queued) wins and
// must drive it to a terminal state; everyone else backs off.
func (j *Job) claim() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.claimed {
		return false
	}
	j.claimed = true
	return true
}

// detach marks that an asynchronous submitter wants the result regardless
// of who stays connected: watcher bookkeeping never cancels a detached job.
func (j *Job) detach() {
	j.mu.Lock()
	j.detached = true
	j.mu.Unlock()
}

// addWaiter registers a synchronous watcher.
func (j *Job) addWaiter() {
	j.mu.Lock()
	j.waiters++
	j.mu.Unlock()
}

// removeWaiter drops a synchronous watcher; the last one leaving a live,
// non-detached job cancels it — its result has no audience.
func (j *Job) removeWaiter() {
	j.mu.Lock()
	j.waiters--
	abandon := j.waiters == 0 && !j.detached && j.state != StateDone && j.state != StateFailed
	j.mu.Unlock()
	if abandon {
		j.Cancel(errWatchersGone)
	}
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// CorrelationID returns the correlation ID of the submission that created
// the job.
func (j *Job) CorrelationID() string { return j.corr }

// Digest returns the job's content address.
func (j *Job) Digest() string { return j.res.Digest }

// enterStage marks the pipeline segment the job is currently in (surfaced
// by /debug/requests) and restarts the segment clock.
func (j *Job) enterStage(st stage, now time.Time) {
	j.mu.Lock()
	j.stage = st
	j.stageFrom = now
	j.mu.Unlock()
}

// addStage charges d to one pipeline segment.
func (j *Job) addStage(st stage, d time.Duration) {
	j.mu.Lock()
	j.stageDur[st] += d
	j.mu.Unlock()
}

// leaveStage charges the time since from to st and returns the new clock
// reading — the boundary between two segments is read once.
func (j *Job) leaveStage(st stage, from time.Time) time.Time {
	now := time.Now()
	j.addStage(st, now.Sub(from))
	return now
}

// stageDurations snapshots the per-segment time charged so far.
func (j *Job) stageDurations() [numStages]time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stageDur
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events returns the job's telemetry fan-out (live during the run, complete
// and closed afterwards).
func (j *Job) Events() *telemetry.Fanout { return j.fan }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the rendered result body, or nil unless the job is done.
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.body
}

// setRunning transitions queued -> running, charging the elapsed time to
// the queue-wait stage; it returns that wait for the lifecycle log.
func (j *Job) setRunning(now time.Time) time.Duration {
	j.mu.Lock()
	j.state = StateRunning
	wait := now.Sub(j.submitted)
	j.stageDur[stageQueue] = wait
	j.stageFrom = now
	j.mu.Unlock()
	return wait
}

// finish records the terminal state, closes the done channel, and completes
// the telemetry stream.
func (j *Job) finish(body []byte, failure *Failure, now time.Time) {
	j.mu.Lock()
	if failure != nil {
		j.state = StateFailed
		j.failure = failure
	} else {
		j.state = StateDone
		j.body = body
	}
	j.finished = now
	j.mu.Unlock()
	j.fan.Close()
	close(j.done)
}

// Status is the JSON view of a job (GET /v1/jobs/{id}).
type Status struct {
	ID     string  `json:"id"`
	State  State   `json:"state"`
	Digest string  `json:"digest"`
	Spec   JobSpec `json:"spec"`
	// Submitted is when the job was admitted (RFC 3339, UTC).
	Submitted string `json:"submitted"`
	// ElapsedMS is queue+run wall time so far (or total, once terminal).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Failure carries the structured error of a failed job.
	Failure *Failure `json:"failure,omitempty"`
	// ResultURL / EventsURL are the job's other endpoints.
	ResultURL string `json:"result_url"`
	EventsURL string `json:"events_url"`
}

// StatusAt renders the job's status as of now.
func (j *Job) StatusAt(now time.Time) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := now
	if !j.finished.IsZero() {
		end = j.finished
	}
	return Status{
		ID:        j.id,
		State:     j.state,
		Digest:    j.res.Digest,
		Spec:      j.spec,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		ElapsedMS: float64(end.Sub(j.submitted).Microseconds()) / 1000,
		Failure:   j.failure,
		ResultURL: "/v1/jobs/" + j.id + "/result",
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
}
