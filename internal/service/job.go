package service

import (
	"sync"
	"time"

	"subthreads/internal/telemetry"
)

// State is a job's lifecycle position. Jobs move strictly
// queued -> running -> done | failed.
type State string

const (
	// StateQueued: admitted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is simulating it.
	StateRunning State = "running"
	// StateDone: finished; the result body is cached and servable.
	StateDone State = "done"
	// StateFailed: the simulation ended with a structured error (watchdog,
	// audit, cycle budget); the failure is in the status, the daemon lives.
	StateFailed State = "failed"
)

// Failure is the job-status form of a *sim.RunError: what kind of failure,
// when, and the exact CLI command that reproduces it.
type Failure struct {
	Kind  string `json:"kind"`
	Cycle uint64 `json:"cycle"`
	Error string `json:"error"`
	Repro string `json:"repro"`
	// FlightRecord is the path of the flight-recorder JSONL dump written
	// for this failure (empty when the recorder is disabled).
	FlightRecord string `json:"flight_record,omitempty"`
}

// stage indexes the serving-pipeline segments whose latency the daemon
// accounts separately: queue wait, workload build, simulation, and result
// rendering. The build and sim stages each accumulate both the TLS and the
// sequential-reference passes.
type stage int

const (
	stageQueue stage = iota
	stageBuild
	stageSim
	stageRender
	numStages
)

var stageNames = [numStages]string{"queue", "build", "sim", "render"}

func (st stage) String() string { return stageNames[st] }

// Job is one admitted simulation. All mutable state is behind mu; the
// identity fields (id, correlation ID, spec, resolved form, sinks) are set
// at creation and never change.
type Job struct {
	id string
	// corr is the correlation ID of the submission that created the job; it
	// stamps the job's SSE events, log lines, and flight-record filename.
	corr string
	res  *Resolved

	// fan retains the job's full telemetry stream and feeds the SSE
	// endpoint; it is closed when the job finishes, completing the stream.
	fan *telemetry.Fanout
	// flight is the bounded ring of recent telemetry events dumped when the
	// job fails with a structured error; nil when the recorder is disabled.
	flight *telemetry.Ring

	// done is closed when the job reaches a terminal state.
	done chan struct{}

	mu        sync.Mutex
	spec      JobSpec
	state     State
	stage     stage
	stageFrom time.Time
	stageDur  [numStages]time.Duration
	submitted time.Time
	finished  time.Time
	body      []byte
	failure   *Failure
}

func newJob(id, corr string, spec JobSpec, r *Resolved, now time.Time, flightEvents int) *Job {
	j := &Job{
		id:        id,
		corr:      corr,
		res:       r,
		fan:       telemetry.NewFanout(),
		done:      make(chan struct{}),
		spec:      spec,
		state:     StateQueued,
		stageFrom: now,
		submitted: now,
	}
	if flightEvents > 0 {
		j.flight = telemetry.NewRing(flightEvents)
	}
	return j
}

// ID returns the job identifier.
func (j *Job) ID() string { return j.id }

// CorrelationID returns the correlation ID of the submission that created
// the job.
func (j *Job) CorrelationID() string { return j.corr }

// Digest returns the job's content address.
func (j *Job) Digest() string { return j.res.Digest }

// enterStage marks the pipeline segment the job is currently in (surfaced
// by /debug/requests) and restarts the segment clock.
func (j *Job) enterStage(st stage, now time.Time) {
	j.mu.Lock()
	j.stage = st
	j.stageFrom = now
	j.mu.Unlock()
}

// addStage charges d to one pipeline segment.
func (j *Job) addStage(st stage, d time.Duration) {
	j.mu.Lock()
	j.stageDur[st] += d
	j.mu.Unlock()
}

// leaveStage charges the time since from to st and returns the new clock
// reading — the boundary between two segments is read once.
func (j *Job) leaveStage(st stage, from time.Time) time.Time {
	now := time.Now()
	j.addStage(st, now.Sub(from))
	return now
}

// stageDurations snapshots the per-segment time charged so far.
func (j *Job) stageDurations() [numStages]time.Duration {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.stageDur
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Events returns the job's telemetry fan-out (live during the run, complete
// and closed afterwards).
func (j *Job) Events() *telemetry.Fanout { return j.fan }

// State returns the current lifecycle state.
func (j *Job) State() State {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state
}

// Result returns the rendered result body, or nil unless the job is done.
func (j *Job) Result() []byte {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.body
}

// setRunning transitions queued -> running, charging the elapsed time to
// the queue-wait stage; it returns that wait for the lifecycle log.
func (j *Job) setRunning(now time.Time) time.Duration {
	j.mu.Lock()
	j.state = StateRunning
	wait := now.Sub(j.submitted)
	j.stageDur[stageQueue] = wait
	j.stageFrom = now
	j.mu.Unlock()
	return wait
}

// finish records the terminal state, closes the done channel, and completes
// the telemetry stream.
func (j *Job) finish(body []byte, failure *Failure, now time.Time) {
	j.mu.Lock()
	if failure != nil {
		j.state = StateFailed
		j.failure = failure
	} else {
		j.state = StateDone
		j.body = body
	}
	j.finished = now
	j.mu.Unlock()
	j.fan.Close()
	close(j.done)
}

// Status is the JSON view of a job (GET /v1/jobs/{id}).
type Status struct {
	ID     string  `json:"id"`
	State  State   `json:"state"`
	Digest string  `json:"digest"`
	Spec   JobSpec `json:"spec"`
	// Submitted is when the job was admitted (RFC 3339, UTC).
	Submitted string `json:"submitted"`
	// ElapsedMS is queue+run wall time so far (or total, once terminal).
	ElapsedMS float64 `json:"elapsed_ms"`
	// Failure carries the structured error of a failed job.
	Failure *Failure `json:"failure,omitempty"`
	// ResultURL / EventsURL are the job's other endpoints.
	ResultURL string `json:"result_url"`
	EventsURL string `json:"events_url"`
}

// StatusAt renders the job's status as of now.
func (j *Job) StatusAt(now time.Time) Status {
	j.mu.Lock()
	defer j.mu.Unlock()
	end := now
	if !j.finished.IsZero() {
		end = j.finished
	}
	return Status{
		ID:        j.id,
		State:     j.state,
		Digest:    j.res.Digest,
		Spec:      j.spec,
		Submitted: j.submitted.UTC().Format(time.RFC3339Nano),
		ElapsedMS: float64(end.Sub(j.submitted).Microseconds()) / 1000,
		Failure:   j.failure,
		ResultURL: "/v1/jobs/" + j.id + "/result",
		EventsURL: "/v1/jobs/" + j.id + "/events",
	}
}
