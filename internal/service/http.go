package service

import (
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"subthreads/internal/telemetry"
	"subthreads/internal/version"
)

// httpMux is the server's route table (Go 1.22 pattern syntax).
type httpMux = *http.ServeMux

// Handler returns the daemon's HTTP API, wrapped in the observability
// middleware (per-request correlation IDs + structured access logging):
//
//	POST   /v1/jobs              submit a JobSpec (JSON body); ?wait=1
//	                             blocks until the job is terminal
//	GET    /v1/jobs/{id}         job status
//	DELETE /v1/jobs/{id}         cancel a live job
//	GET    /v1/jobs/{id}/result  the result document (tlssim -json bytes)
//	GET    /v1/jobs/{id}/events  live telemetry stream (Server-Sent Events)
//	GET  /healthz                liveness + build version
//	GET  /readyz                 readiness (503 while draining)
//	GET  /metrics                serving metrics snapshot (JSON, or
//	                             Prometheus text under Accept: text/plain)
//
// Every route declares its method, so a wrong-method request is a uniform
// 405 with an Allow header, and every response names its Content-Type.
func (s *Server) Handler() http.Handler { return s.observed(s.mux) }

// observed wraps next with the observability middleware: it accepts or
// generates the X-Correlation-ID, echoes it on the response, threads it
// through the request context into job admission, and writes one structured
// access-log line per request (method, path, status, bytes, latency,
// correlation ID). With logging disabled the middleware still maintains the
// correlation contract.
func (s *Server) observed(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		corr := sanitizeCorrelation(r.Header.Get(CorrelationHeader))
		if corr == "" {
			corr = NewCorrelationID()
		}
		w.Header().Set(CorrelationHeader, corr)
		r = r.WithContext(withCorrelation(r.Context(), corr))

		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		next.ServeHTTP(sw, r)
		if s.log == nil {
			return
		}
		s.log.LogAttrs(r.Context(), slog.LevelInfo, "http access",
			slog.String("method", r.Method),
			slog.String("path", r.URL.Path),
			slog.Int("status", sw.status()),
			slog.Int("bytes", sw.bytes),
			slog.Float64("latency_ms", ms(time.Since(start))),
			slog.String("correlation_id", corr))
	})
}

// statusWriter captures the response status and body size for the access
// log. It forwards Flush so the SSE endpoint still streams through it.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += n
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// status returns the logged status code (200 when the handler never wrote).
func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

func (s *Server) routes() {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleStatus)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	mux.HandleFunc("GET /v1/jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	mux.HandleFunc("GET /v1/cache/{digest}", s.handleCacheGet)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /readyz", s.handleReadyz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
}

// maxSpecBytes bounds a submission body; real specs are a few hundred bytes.
const maxSpecBytes = 1 << 20

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// retrySeconds renders a Retry-After duration as whole seconds (ceiling,
// minimum 1 — a zero Retry-After would mean "immediately", which is never
// what a rejection wants to say).
func retrySeconds(d time.Duration) string {
	secs := int64((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.FormatInt(secs, 10)
}

// handleSubmit admits a job. Responses:
//
//	200  digest hit on a completed job — the cached result body, verbatim
//	     (also the terminal response of a ?wait=1 submission)
//	202  admitted (or attached to an in-flight duplicate) — job status
//	400  invalid spec
//	410  ?wait=1 submission whose job failed — status with the failure
//	422  digest quarantined after repeated deterministic failures
//	     (Retry-After = remaining quarantine)
//	429  queue full, or the deadline provably can't be met (Retry-After
//	     computed from queue depth × observed mean service time)
//	503  draining
//
// Without ?wait=1 a submission is asynchronous and detaches the job: it
// runs to completion no matter who stays connected. With ?wait=1 the
// response blocks until the job is terminal, and the job is cancelled if
// every waiting client disconnects first (nobody would ever see the
// result).
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxSpecBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, "bad job spec: %v", err)
		return
	}
	j, info, err := s.SubmitDetailed(spec, correlationFrom(r.Context()))
	hit := info.Hit
	var poisoned *PoisonedError
	var unmeetable *UnmeetableDeadlineError
	var full *QueueFullError
	switch {
	case err == nil:
	case errors.As(err, &full):
		w.Header().Set("Retry-After", retrySeconds(full.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "queue full (capacity %d); retry later", s.opts.QueueDepth)
		return
	case errors.As(err, &poisoned):
		w.Header().Set("Retry-After", retrySeconds(poisoned.RetryAfter))
		writeError(w, http.StatusUnprocessableEntity, "%v; retry after the quarantine expires", poisoned)
		return
	case errors.As(err, &unmeetable):
		w.Header().Set("Retry-After", retrySeconds(unmeetable.RetryAfter))
		writeError(w, http.StatusTooManyRequests, "%v", unmeetable)
		return
	case errors.Is(err, ErrDraining):
		writeError(w, http.StatusServiceUnavailable, "draining: admission stopped")
		return
	default:
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	w.Header().Set("X-Job-Id", j.ID())
	w.Header().Set("X-Job-Digest", j.Digest())
	if hit && j.State() == StateDone {
		// Content-addressed fast path: the stored body, byte-identical to
		// the run that produced it (and to tlssim -json for this spec).
		// X-Cache-Tier names where the bytes came from (memory, disk, or a
		// sibling replica's cache) so clients can assert hit provenance.
		w.Header().Set("X-Cache", "hit")
		w.Header().Set("X-Cache-Tier", info.Tier)
		w.Header().Set("Content-Type", "application/json")
		w.Write(j.Result())
		return
	}
	if hit {
		w.Header().Set("X-Cache", "dedup")
	} else {
		w.Header().Set("X-Cache", "miss")
	}

	if r.URL.Query().Get("wait") == "1" {
		s.waitAndServe(w, r, j)
		return
	}
	// Asynchronous submission: the submitter wants the job to run whether
	// or not anyone stays connected.
	j.detach()
	writeJSON(w, http.StatusAccepted, j.StatusAt(time.Now()))
}

// waitAndServe blocks a ?wait=1 submission until its job is terminal, then
// serves the result (200) or the failure status (410). A disconnect drops
// the registration; the last waiter leaving a non-detached job cancels it.
func (s *Server) waitAndServe(w http.ResponseWriter, r *http.Request, j *Job) {
	j.addWaiter()
	defer j.removeWaiter()
	select {
	case <-j.Done():
	case <-r.Context().Done():
		// Client gone: nothing to write. removeWaiter cancels the job if
		// this was the last audience it had.
		return
	}
	if j.State() == StateDone {
		w.Header().Set("Content-Type", "application/json")
		w.Write(j.Result())
		return
	}
	writeJSON(w, http.StatusGone, j.StatusAt(time.Now()))
}

// handleCancel cancels a live job (DELETE /v1/jobs/{id}). Responses:
//
//	202  cancellation signalled — status (the terminal failure lands
//	     within one watchdog/cancellation-poll interval)
//	409  the job is already terminal — status, unchanged
func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	switch j.State() {
	case StateDone, StateFailed:
		writeJSON(w, http.StatusConflict, j.StatusAt(time.Now()))
		return
	}
	j.Cancel(errCancelRequested)
	writeJSON(w, http.StatusAccepted, j.StatusAt(time.Now()))
}

func (s *Server) job(w http.ResponseWriter, r *http.Request) *Job {
	id := r.PathValue("id")
	j, ok := s.Job(id)
	if !ok {
		writeError(w, http.StatusNotFound, "no such job %q", id)
		return nil
	}
	return j
}

// handleCacheGet serves a previously computed result body by digest — the
// cheap sibling-cache endpoint behind the cluster's cross-node fetch path
// (GET /v1/cache/{digest}). It consults only the caches — a completed job in
// memory, then the breaker-gated persistent store — and never computes, so
// probing a replica costs a lookup, not a simulation. Responses:
//
//	200  the stored result body (X-Cache-Tier: memory|disk)
//	404  this node has no stored result for the digest
func (s *Server) handleCacheGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	if !validDigest(digest) {
		writeError(w, http.StatusNotFound, "no cached result for %q", digest)
		return
	}
	body, tier, ok := s.CachedResult(digest)
	if !ok {
		writeError(w, http.StatusNotFound, "no cached result for %s", digest)
		return
	}
	w.Header().Set("X-Cache-Tier", tier)
	w.Header().Set("X-Job-Digest", digest)
	w.Header().Set("Content-Type", "application/json")
	w.Write(body)
}

// validDigest reports whether a path segment looks like a content address
// (64 lowercase hex characters) — anything else can't name a stored result
// and must never reach the store as a key.
func validDigest(s string) bool {
	if len(s) != 64 {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		if !('0' <= c && c <= '9' || 'a' <= c && c <= 'f') {
			return false
		}
	}
	return true
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	if j := s.job(w, r); j != nil {
		writeJSON(w, http.StatusOK, j.StatusAt(time.Now()))
	}
}

// handleResult serves the result document. Responses:
//
//	200  done — the document
//	202  still queued/running — job status
//	410  failed — job status with the structured failure
func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	switch j.State() {
	case StateDone:
		w.Header().Set("X-Job-Digest", j.Digest())
		w.Header().Set("Content-Type", "application/json")
		w.Write(j.Result())
	case StateFailed:
		writeJSON(w, http.StatusGone, j.StatusAt(time.Now()))
	default:
		writeJSON(w, http.StatusAccepted, j.StatusAt(time.Now()))
	}
}

// handleEvents streams the job's telemetry as Server-Sent Events: each
// protocol event as `event: telemetry` with a JSON data line, then a final
// `event: done` carrying the terminal status. Every event block carries the
// job's correlation ID in the SSE `id:` field, so a consumer can correlate a
// stream with the daemon's logs without the `data:` payloads (the telemetry
// JSON, unchanged from the library encoding) having to change. Late
// subscribers replay the full stream; the connection closes when the stream
// completes or the client goes away.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(w, r)
	if j == nil {
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Job-Id", j.ID())
	w.Header().Set(CorrelationHeader, j.CorrelationID())
	w.WriteHeader(http.StatusOK)

	// The SSE id: field is set per block, not per connection, so every event
	// a client buffers or replays keeps its correlation stamp.
	stamp := "id: " + j.CorrelationID() + "\n"
	fmt.Fprintf(w, "%sevent: job\ndata: {\"id\":%q,\"correlation_id\":%q,\"digest\":%q}\n\n",
		stamp, j.ID(), j.CorrelationID(), j.Digest())
	flusher.Flush()

	sub := j.Events().Subscribe()
	defer sub.Cancel()
	enc := json.NewEncoder(sseData{w})
	for {
		evs, done := sub.Next()
		for i := range evs {
			w.Write([]byte(stamp))
			w.Write([]byte("event: telemetry\n"))
			enc.Encode(&evs[i]) // writes "data: {...}\n"
			w.Write([]byte("\n"))
		}
		if len(evs) > 0 {
			flusher.Flush()
		}
		if done {
			st := j.StatusAt(time.Now())
			w.Write([]byte(stamp))
			w.Write([]byte("event: done\n"))
			enc.Encode(st)
			w.Write([]byte("\n"))
			flusher.Flush()
			return
		}
		select {
		case <-sub.Wait():
		case <-r.Context().Done():
			return
		}
	}
}

// sseData prefixes every JSON document with the SSE "data: " field name.
// json.Encoder terminates each document with '\n', completing the line.
type sseData struct{ w http.ResponseWriter }

func (d sseData) Write(p []byte) (int, error) {
	if _, err := d.w.Write([]byte("data: ")); err != nil {
		return 0, err
	}
	return d.w.Write(p)
}

// health is the /healthz document.
type health struct {
	Status  string       `json:"status"`
	Version version.Info `json:"version"`
	Jobs    uint64       `json:"jobs_submitted"`
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	s.mu.Lock()
	n := s.submitted
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, health{Status: "ok", Version: version.Get(), Jobs: n})
}

func (s *Server) handleReadyz(w http.ResponseWriter, _ *http.Request) {
	if s.Draining() {
		writeError(w, http.StatusServiceUnavailable, "draining")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ready"})
}

// handleMetrics serves the metrics snapshot in the representation the
// client asked for: Prometheus text exposition when the Accept header names
// text/plain or the OpenMetrics type, the historical JSON document
// otherwise (a browser's or curl's */* keeps getting JSON, so existing
// scrapers and the smoke script are unchanged).
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if wantsProm(r.Header.Get("Accept")) {
		w.Header().Set("Content-Type", telemetry.PromContentType)
		w.WriteHeader(http.StatusOK)
		s.writeProm(w)
		return
	}
	writeJSON(w, http.StatusOK, s.MetricsSnapshot())
}

// wantsProm reports whether an Accept header asks for Prometheus text
// exposition rather than the default JSON.
func wantsProm(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		switch strings.ToLower(mt) {
		case "text/plain", "application/openmetrics-text":
			return true
		}
	}
	return false
}

// Interface checks: the fan-out sink must remain a telemetry emitter.
var _ telemetry.Emitter = (*telemetry.Fanout)(nil)
