package service

import (
	"io"
	"strconv"

	"subthreads/internal/telemetry"
	"subthreads/internal/version"
)

// writeProm renders the serving metrics in Prometheus text exposition
// format — the same snapshot /metrics serves as JSON, re-expressed as
// tlsd_* families so a stock Prometheus scraper can consume the daemon
// without any sidecar. The four pipeline stages share one histogram family
// distinguished by a stage label, and the build identity rides on the
// conventional always-1 tlsd_build_info gauge.
func (s *Server) writeProm(w io.Writer) error {
	m := s.MetricsSnapshot()
	v := version.Get()
	p := telemetry.NewPromWriter(w)

	p.Gauge("tlsd_build_info",
		"Build identity of the running daemon; the value is always 1.", 1,
		telemetry.PromLabel{Name: "module", Value: v.Module},
		telemetry.PromLabel{Name: "version", Value: v.Version},
		telemetry.PromLabel{Name: "revision", Value: v.Revision},
		telemetry.PromLabel{Name: "modified", Value: strconv.FormatBool(v.Modified)},
		telemetry.PromLabel{Name: "go", Value: v.Go})

	p.Gauge("tlsd_uptime_seconds", "Seconds since the daemon started.", m.UptimeSeconds)
	p.Gauge("tlsd_workers", "Simulation worker-pool size.", float64(m.Workers))
	p.Gauge("tlsd_queue_depth", "Jobs waiting in the admission queue.", float64(m.QueueDepth))
	p.Gauge("tlsd_queue_capacity", "Admission queue capacity.", float64(m.QueueCapacity))
	p.Gauge("tlsd_jobs_in_flight", "Jobs currently simulating.", float64(m.InFlight))

	p.Counter("tlsd_jobs_submitted_total", "Job submissions admitted or rejected.", m.JobsSubmitted)
	p.Counter("tlsd_jobs_completed_total", "Jobs that finished with a servable result.", m.JobsCompleted)
	p.Counter("tlsd_jobs_failed_total", "Jobs that ended in a structured failure.", m.JobsFailed)
	p.Counter("tlsd_jobs_rejected_total", "Submissions rejected because the queue was full.", m.JobsRejected)
	p.Counter("tlsd_jobs_timeout_total", "Jobs abandoned on their end-to-end deadline.", m.JobsTimedOut)
	p.Counter("tlsd_jobs_cancelled_total", "Jobs abandoned by client disconnect, DELETE, or shutdown drain.", m.JobsCancelled)
	p.Counter("tlsd_jobs_rejected_poisoned_total", "Submissions fast-failed on a quarantined digest.", m.JobsRejectedPoisoned)
	p.Counter("tlsd_jobs_rejected_deadline_total", "Submissions rejected as provably unable to meet their deadline.", m.JobsRejectedDeadline)
	p.Gauge("tlsd_poisoned_digests", "Digests currently in the poison quarantine window.", float64(m.PoisonedDigests))

	p.Gauge("tlsd_cache_entries", "Distinct digests with a live job or stored result.", float64(m.CacheEntries))
	p.Counter("tlsd_cache_hits_total", "Submissions served from the in-memory result cache.", m.CacheHits)
	p.Counter("tlsd_cache_disk_hits_total", "Submissions served from the persistent result store.", m.CacheDiskHits)
	p.Counter("tlsd_cache_remote_hits_total", "Submissions served from a sibling replica's cache.", m.CacheRemoteHits)
	p.Counter("tlsd_cache_misses_total", "Submissions that required a new simulation.", m.CacheMisses)
	p.Counter("tlsd_cache_probes_total", "Sibling-cache probes answered (GET /v1/cache/{digest}).", m.CacheProbes)
	p.Counter("tlsd_cache_probe_hits_total", "Sibling-cache probes that found a stored result.", m.CacheProbeHits)
	p.Counter("tlsd_cache_deduped_total", "Submissions attached to an already in-flight duplicate.", m.DedupedInFlight)
	p.Gauge("tlsd_cache_hit_ratio", "Fraction of classified submissions served without new work (0 until the first job).", m.CacheHitRatio)

	p.Counter("tlsd_snapshot_hit_total", "Jobs forked from a stored machine checkpoint.", m.SnapshotHits)
	p.Counter("tlsd_snapshot_miss_total", "Checkpoint probes that found no stored snapshot.", m.SnapshotMisses)
	p.Counter("tlsd_snapshot_put_total", "Machine checkpoints published to the persistent store.", m.SnapshotPuts)
	p.Counter("tlsd_snapshot_corrupt_total", "Machine checkpoints quarantined as undecodable or inapplicable.", m.SnapshotCorrupt)
	p.Counter("tlsd_jobs_forked_total", "Executed jobs whose main simulation forked from a checkpoint.", m.JobsForked)
	p.Counter("tlsd_jobs_replayed_total", "Executed jobs whose main simulation ran in full.", m.JobsReplayed)

	p.Histogram("tlsd_job_cold_latency_microseconds",
		"Submit-to-terminal latency of executed jobs.", m.ColdLatencyMicros)
	p.Histogram("tlsd_cache_hit_latency_microseconds",
		"Lookup latency of memory cache-hit submissions.", m.HitLatencyMicros)
	p.Histogram("tlsd_cache_disk_hit_latency_microseconds",
		"Lookup latency of disk-warm hit submissions (includes the store read).", m.DiskHitLatencyMicros)
	p.Histogram("tlsd_cache_remote_hit_latency_microseconds",
		"Lookup latency of sibling-cache hit submissions (includes the network fetch).", m.RemoteHitLatencyMicros)
	for st := stage(0); st < numStages; st++ {
		p.Histogram("tlsd_job_stage_latency_microseconds",
			"Executed-job latency by pipeline stage (queue wait, workload build, simulation, result render).",
			m.stageSnapshot(st), telemetry.PromLabel{Name: "stage", Value: st.String()})
	}

	if m.CAS != nil {
		c := m.CAS
		p.Counter("tlsd_cas_hit_total", "Persistent-store reads that found a valid entry.", c.Hits)
		p.Counter("tlsd_cas_miss_total", "Persistent-store reads that found nothing servable.", c.Misses)
		p.Counter("tlsd_cas_put_total", "Entries published to the persistent store.", c.Puts)
		p.Counter("tlsd_cas_eviction_total", "Entries evicted to stay under the store's size cap.", c.Evictions)
		p.Counter("tlsd_cas_corrupt_total", "Entries quarantined as corrupt or undecodable.", c.Corrupt)
		p.Gauge("tlsd_cas_entries", "Entries resident in the persistent store.", float64(c.Entries))
		p.Gauge("tlsd_cas_size_bytes", "Bytes resident in the persistent store.", float64(c.Bytes))
		p.Histogram("tlsd_cas_load_latency_microseconds",
			"Latency of persistent-store disk reads (hits only).", c.LoadMicros)
		p.Histogram("tlsd_cas_store_latency_microseconds",
			"Latency of persistent-store disk writes.", c.StoreMicros)
	}
	if m.Breaker != nil {
		for _, st := range []string{breakerClosed, breakerOpen, breakerHalfOpen} {
			v := 0.0
			if m.Breaker.State == st {
				v = 1
			}
			p.Gauge("tlsd_cas_breaker_state",
				"Disk CAS tier circuit-breaker state (one-hot across the state label).",
				v, telemetry.PromLabel{Name: "state", Value: st})
		}
		p.Counter("tlsd_cas_breaker_opens_total",
			"Times the disk CAS tier circuit breaker tripped open.", m.Breaker.Opens)
		p.Counter("tlsd_cas_breaker_short_circuits_total",
			"Result-tier disk operations skipped while the breaker was open.", m.Breaker.ShortCircuits)
	}
	if m.Chaos != nil {
		for _, f := range []struct {
			kind string
			n    uint64
		}{
			{"disk-err", m.Chaos.DiskErrs},
			{"disk-slow", m.Chaos.DiskSlows},
			{"torn-write", m.Chaos.TornWrite},
			{"panic", m.Chaos.Panics},
		} {
			p.Counter("tlsd_chaos_faults_total",
				"Faults the -chaos schedule has delivered, by kind.",
				f.n, telemetry.PromLabel{Name: "kind", Value: f.kind})
		}
	}
	return p.Flush()
}
