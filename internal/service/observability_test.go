package service

import (
	"bytes"
	"encoding/json"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"sync"
	"testing"

	"subthreads/internal/telemetry"
)

// syncBuffer serializes the slog handler's writes: workers, the HTTP mux,
// and the test body all log concurrently.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// logLines decodes the buffer's JSON log records.
func logLines(t *testing.T, b *syncBuffer) []map[string]any {
	t.Helper()
	var out []map[string]any
	dec := json.NewDecoder(strings.NewReader(b.String()))
	for dec.More() {
		var m map[string]any
		if err := dec.Decode(&m); err != nil {
			t.Fatalf("log line is not JSON: %v\n%s", err, b.String())
		}
		out = append(out, m)
	}
	return out
}

// findLog returns the first record with the given msg and all required
// string fields matching, or nil.
func findLog(lines []map[string]any, msg string, fields map[string]string) map[string]any {
	for _, l := range lines {
		if l["msg"] != msg {
			continue
		}
		ok := true
		for k, v := range fields {
			if s, _ := l[k].(string); s != v {
				ok = false
				break
			}
		}
		if ok {
			return l
		}
	}
	return nil
}

var hexCorr = regexp.MustCompile(`^[0-9a-f]{16}$`)

func TestCorrelationIDHeaderContract(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	// A log-safe client-supplied ID is accepted and echoed.
	req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
	req.Header.Set(CorrelationHeader, "sweep-42.a:b")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /healthz: %v", err)
	}
	resp.Body.Close()
	if got := resp.Header.Get(CorrelationHeader); got != "sweep-42.a:b" {
		t.Errorf("client ID not echoed: got %q", got)
	}

	// No header: the daemon generates one and returns it.
	resp2, body := getBody(t, ts.URL+"/healthz")
	gen := resp2.Header.Get(CorrelationHeader)
	if !hexCorr.MatchString(gen) {
		t.Errorf("generated correlation ID %q is not 16 hex chars (body %s)", gen, body)
	}

	// Values the transport won't even carry are rejected at the source.
	for _, bad := range []string{"", "a\nb", "evil=\"x\"", strings.Repeat("y", 129)} {
		if got := sanitizeCorrelation(bad); got != "" {
			t.Errorf("sanitizeCorrelation(%q) = %q, want rejection", bad, got)
		}
	}

	// A header that could inject log lines or filenames is replaced.
	for _, bad := range []string{"two words", "../../etc", strings.Repeat("x", 200)} {
		req, _ := http.NewRequest("GET", ts.URL+"/healthz", nil)
		req.Header.Set(CorrelationHeader, bad)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		resp.Body.Close()
		if got := resp.Header.Get(CorrelationHeader); got == bad || !hexCorr.MatchString(got) {
			t.Errorf("unsafe ID %q not replaced: got %q", bad, got)
		}
	}
}

func TestSSEEventsCarryCorrelationID(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	const corr = "trace-7"
	b, _ := json.Marshal(tinySpec("NEW ORDER"))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(CorrelationHeader, corr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/jobs: %v", err)
	}
	if got := resp.Header.Get(CorrelationHeader); got != corr {
		t.Errorf("submit response correlation = %q, want %q", got, corr)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	waitDone(t, ts, st.ID)

	eresp, events := getBody(t, ts.URL+st.EventsURL)
	if got := eresp.Header.Get(CorrelationHeader); got != corr {
		t.Errorf("events response header correlation = %q, want the job's %q", got, corr)
	}
	text := string(events)
	// Every SSE block — the job preamble, each telemetry event, the done
	// terminator — carries the job's correlation ID in its id: field.
	blocks := strings.Count(text, "event: ")
	stamps := strings.Count(text, "id: "+corr+"\n")
	if blocks == 0 || stamps != blocks {
		t.Errorf("SSE stream has %d event blocks but %d correlation stamps:\n%.400s", blocks, stamps, text)
	}
	if !strings.Contains(text, `"correlation_id":"`+corr+`"`) {
		t.Errorf("job preamble does not carry the correlation ID:\n%.200s", text)
	}
	// The telemetry payloads themselves are the library encoding, unchanged:
	// no correlation field is injected into data: lines of telemetry events.
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, "data: ") && strings.Contains(line, `"kind"`) &&
			strings.Contains(line, "correlation") {
			t.Errorf("telemetry payload was rewritten: %s", line)
		}
	}
}

func TestStructuredLogsCoverLifecycle(t *testing.T) {
	var sb syncBuffer
	logger := slog.New(slog.NewJSONHandler(&sb, nil))
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, Logger: logger})

	const corr = "life-1"
	b, _ := json.Marshal(tinySpec("PAYMENT"))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(b))
	req.Header.Set(CorrelationHeader, corr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	waitDone(t, ts, st.ID)

	// Resubmit: the cache hit gets its own correlation ID but names the
	// job's original one.
	req2, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(b))
	req2.Header.Set(CorrelationHeader, "life-2")
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	resp2.Body.Close()

	waitFor(t, func() bool {
		return findLog(logLines(t, &sb), "job completed", map[string]string{"correlation_id": corr}) != nil
	}, "job completed was never logged")
	lines := logLines(t, &sb)

	access := findLog(lines, "http access", map[string]string{
		"method": "POST", "path": "/v1/jobs", "correlation_id": corr,
	})
	if access == nil {
		t.Fatalf("no access log for the submit request:\n%s", sb.String())
	}
	for _, k := range []string{"status", "bytes", "latency_ms"} {
		if _, ok := access[k].(float64); !ok {
			t.Errorf("access log missing %s: %v", k, access)
		}
	}

	if findLog(lines, "job enqueued", map[string]string{"correlation_id": corr, "job": st.ID, "digest": st.Digest}) == nil {
		t.Errorf("no enqueued log line:\n%s", sb.String())
	}
	if findLog(lines, "job started", map[string]string{"correlation_id": corr, "job": st.ID}) == nil {
		t.Errorf("no started log line:\n%s", sb.String())
	}
	done := findLog(lines, "job completed", map[string]string{"correlation_id": corr, "job": st.ID, "digest": st.Digest})
	if done == nil {
		t.Fatalf("no completed log line:\n%s", sb.String())
	}
	for _, k := range []string{"queue_wait_ms", "build_ms", "sim_ms", "render_ms", "total_ms", "bytes"} {
		if _, ok := done[k].(float64); !ok {
			t.Errorf("completed log missing %s: %v", k, done)
		}
	}
	if findLog(lines, "job cache hit", map[string]string{
		"correlation_id": "life-2", "job": st.ID, "job_correlation_id": corr,
	}) == nil {
		t.Errorf("no cache-hit log line naming both correlation IDs:\n%s", sb.String())
	}
}

func TestMetricsContentNegotiation(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	resp := postJob(t, ts, tinySpec("NEW ORDER"))
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	waitDone(t, ts, st.ID)

	get := func(accept string) (*http.Response, []byte) {
		t.Helper()
		req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp, b
	}

	// No Accept, and curl's */*, keep the historical JSON document.
	for _, accept := range []string{"", "*/*", "application/json"} {
		resp, body := get(accept)
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("Accept %q: Content-Type = %q, want application/json", accept, ct)
		}
		var m Metrics
		if err := json.Unmarshal(body, &m); err != nil {
			t.Fatalf("Accept %q: /metrics is not the JSON snapshot: %v", accept, err)
		}
		if m.JobsCompleted != 1 {
			t.Errorf("Accept %q: jobs_completed = %d, want 1", accept, m.JobsCompleted)
		}
	}

	// A Prometheus scraper's Accept gets the text exposition.
	for _, accept := range []string{
		"text/plain",
		"text/plain; version=0.0.4",
		"application/openmetrics-text;version=1.0.0;charset=utf-8, text/plain",
	} {
		resp, body := get(accept)
		if ct := resp.Header.Get("Content-Type"); ct != telemetry.PromContentType {
			t.Errorf("Accept %q: Content-Type = %q, want %q", accept, ct, telemetry.PromContentType)
		}
		if err := telemetry.LintProm(body); err != nil {
			t.Errorf("Accept %q: exposition does not lint: %v\n%s", accept, err, body)
		}
		text := string(body)
		for _, want := range []string{
			`tlsd_build_info{module="subthreads"`,
			"tlsd_jobs_completed_total 1",
			`tlsd_job_stage_latency_microseconds_count{stage="sim"} 1`,
			`tlsd_job_stage_latency_microseconds_bucket{stage="queue",le="+Inf"} 1`,
			"tlsd_job_cold_latency_microseconds_count 1",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("Accept %q: exposition missing %q:\n%s", accept, want, text)
			}
		}
	}
}

// TestFreshDaemonScrapeIsClean is the zero-jobs guard: before any job has
// run, every summary that divides by a count must render as 0, never NaN,
// in both representations.
func TestFreshDaemonScrapeIsClean(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	_, body := getBody(t, ts.URL+"/metrics")
	var m Metrics
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("fresh JSON snapshot invalid: %v\n%s", err, body)
	}
	if m.CacheHitRatio != 0 {
		t.Errorf("fresh cache_hit_ratio = %v, want 0", m.CacheHitRatio)
	}
	if strings.Contains(string(body), "NaN") {
		t.Errorf("fresh JSON snapshot contains NaN:\n%s", body)
	}

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	prom, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err := telemetry.LintProm(prom); err != nil {
		t.Errorf("fresh exposition does not lint: %v\n%s", err, prom)
	}
	text := string(prom)
	if strings.Contains(text, "NaN") || strings.Contains(text, "Inf ") {
		t.Errorf("fresh exposition contains non-finite values:\n%s", text)
	}
	if !strings.Contains(text, "tlsd_cache_hit_ratio 0") {
		t.Errorf("fresh exposition missing zero hit ratio:\n%s", text)
	}
	// All-zero histograms still render complete series.
	if !strings.Contains(text, `tlsd_job_stage_latency_microseconds_bucket{stage="render",le="+Inf"} 0`) {
		t.Errorf("fresh exposition missing empty stage histogram:\n%s", text)
	}
}

func TestDebugSurface(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	setRunningHook(t, func(*Job) { started <- struct{}{}; <-release })

	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	defer close(release)
	dbg := httptest.NewServer(s.DebugHandler())
	defer dbg.Close()

	const corr = "debug-1"
	b, _ := json.Marshal(tinySpec("NEW ORDER"))
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(b))
	req.Header.Set(CorrelationHeader, corr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	<-started // the worker holds the job in flight

	rresp, body := getBody(t, dbg.URL+"/debug/requests")
	if rresp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/requests = %d, want 200", rresp.StatusCode)
	}
	var snap struct {
		InFlight int            `json:"in_flight"`
		Jobs     []debugRequest `json:"jobs"`
	}
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/debug/requests body: %v\n%s", err, body)
	}
	if snap.InFlight != 1 || len(snap.Jobs) != 1 {
		t.Fatalf("snapshot = %+v, want exactly the held job", snap)
	}
	got := snap.Jobs[0]
	if got.ID != st.ID || got.CorrelationID != corr || got.Digest != st.Digest {
		t.Errorf("snapshot identity = %+v, want job %s corr %s", got, st.ID, corr)
	}
	if got.State != StateRunning || got.Stage == "" || got.ElapsedMS < 0 {
		t.Errorf("snapshot progress = %+v, want running with a stage", got)
	}

	// The pprof surface is mounted and answers.
	presp, pbody := getBody(t, dbg.URL+"/debug/pprof/")
	if presp.StatusCode != http.StatusOK || !strings.Contains(string(pbody), "goroutine") {
		t.Errorf("/debug/pprof/ = %d, want the pprof index", presp.StatusCode)
	}
}

func TestFlightRecorderDumpsOnFailure(t *testing.T) {
	dir := t.TempDir()
	var sb syncBuffer
	_, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 4, FlightDir: dir, FlightEvents: 64,
		Logger: slog.New(slog.NewJSONHandler(&sb, nil)),
	})

	// The acceptance scenario: a seeded injection run whose forward-progress
	// watchdog trips deterministically mid-run, so the ring has a telemetry
	// tail when the structured failure dumps it.
	spec := tinySpec("NEW ORDER")
	spec.Inject = "seed=1,faults=5,window=60000"
	spec.Watchdog = 2000
	const corr = "crash-1"
	b, _ := json.Marshal(spec)
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs", bytes.NewReader(b))
	req.Header.Set(CorrelationHeader, corr)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()

	final := waitDone(t, ts, st.ID)
	if final.State != StateFailed || final.Failure == nil {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Failure.Kind != "watchdog" {
		t.Fatalf("failure kind = %q, want watchdog (injected livelock)", final.Failure.Kind)
	}
	path := final.Failure.FlightRecord
	if path == "" {
		t.Fatalf("failure carries no flight record: %+v", final.Failure)
	}
	if filepath.Dir(path) != dir || !strings.Contains(filepath.Base(path), corr) {
		t.Errorf("flight record %q not under %s with correlation %s", path, dir, corr)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("flight record unreadable: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(data) == 0 || len(lines) == 0 {
		t.Fatalf("flight record is empty")
	}
	if len(lines) > 64 {
		t.Errorf("flight record has %d events, ring bound is 64", len(lines))
	}
	for i, line := range lines {
		var ev struct {
			Kind string `json:"kind"`
		}
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Kind == "" {
			t.Fatalf("flight record line %d is not a telemetry event: %v\n%s", i, err, line)
		}
	}

	// The failure log line references the dump by path and correlation ID.
	failed := findLog(logLines(t, &sb), "job failed", map[string]string{
		"correlation_id": corr, "job": st.ID, "flight_record": path, "kind": "watchdog",
	})
	if failed == nil {
		t.Errorf("no failure log referencing the flight record:\n%s", sb.String())
	}
}

func TestFlightRecorderDisabledByDefault(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	spec := tinySpec("NEW ORDER")
	spec.MaxCycles = 1
	resp := postJob(t, ts, spec)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	final := waitDone(t, ts, st.ID)
	if final.State != StateFailed {
		t.Fatalf("state = %s, want failed", final.State)
	}
	if final.Failure.FlightRecord != "" {
		t.Errorf("flight record %q written with the recorder disabled", final.Failure.FlightRecord)
	}
}

// TestMuxMethodConsistency audits the route table: every endpoint declares
// its method, so the wrong verb is a 405 naming the right one, and unknown
// paths are 404 — no handler silently accepts a method it doesn't implement.
func TestMuxMethodConsistency(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})

	for _, c := range []struct {
		method, path string
		allow        string
	}{
		{"GET", "/v1/jobs", "POST"},  // collection is submit-only
		{"GET", "/v1/nothing", ""},   // unknown path stays 404
		{"GET", "/debug/pprof/", ""}, // profiling is not on the public port
		{"PUT", "/v1/jobs/job-1", "GET"},
		{"PUT", "/v1/jobs/job-1", "DELETE"}, // cancel is a first-class method
		{"DELETE", "/v1/jobs/job-1", ""},    // supported method, unknown job
		{"POST", "/v1/jobs/job-1/result", "GET"},
		{"POST", "/v1/jobs/job-1/events", "GET"},
		{"POST", "/healthz", "GET"},
		{"POST", "/readyz", "GET"},
		{"POST", "/metrics", "GET"},
		{"PUT", "/metrics", "GET"},
	} {
		req, _ := http.NewRequest(c.method, ts.URL+c.path, nil)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("%s %s: %v", c.method, c.path, err)
		}
		resp.Body.Close()
		if c.allow == "" {
			if resp.StatusCode != http.StatusNotFound {
				t.Errorf("%s %s = %d, want 404", c.method, c.path, resp.StatusCode)
			}
			continue
		}
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s = %d, want 405", c.method, c.path, resp.StatusCode)
		}
		if got := resp.Header.Get("Allow"); !strings.Contains(got, c.allow) {
			t.Errorf("%s %s Allow = %q, want %q", c.method, c.path, got, c.allow)
		}
	}
}
