package service

import (
	"bytes"
	"context"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"subthreads/internal/chaos"
	"subthreads/internal/telemetry"
)

// chaosOptions is an aggressive, fully deterministic fault schedule: every
// 3rd disk read errors, every 4th disk op stalls 5ms, every 3rd write is
// torn, every 6th job execution panics its worker.
func chaosConfig() chaos.Config {
	return chaos.Config{Seed: 1, DiskErrEvery: 3, SlowEvery: 4, SlowMS: 5, TornEvery: 3, PanicEvery: 6}
}

// The chaos acceptance test: under injected disk errors, latency spikes,
// torn writes, and worker panics, every result the daemon eventually serves
// is byte-identical to the tlssim rendering, and no request hangs — the
// retrying client either gets the right bytes or a classified error within
// its budget.
func TestChaosResultsStayByteIdentical(t *testing.T) {
	ch := chaos.New(chaosConfig())
	s, ts := newTestServer(t, Options{
		Workers:    2,
		QueueDepth: 16,
		Store:      openTestStore(t, t.TempDir()),
		Chaos:      ch,
		// Panics are deterministic failures and would quarantine digests the
		// client is about to retry; chaos runs disable the fast-fail so every
		// retry is a real attempt.
		PoisonThreshold: 1 << 20,
	})

	specs := []JobSpec{
		tinySpec("NEW ORDER"),
		tinySpec("PAYMENT"),
		tinySpec("DELIVERY"),
		tinySpec("ORDER STATUS"),
		tinySpec("STOCK LEVEL"),
	}
	want := make([][]byte, len(specs))
	for i, spec := range specs {
		want[i] = renderExpected(t, spec)
	}

	// Concurrent retrying clients: each spec is submitted repeatedly (the
	// repeats exercise the cache tiers under fault injection too).
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*rounds)
	for i, spec := range specs {
		for r := 0; r < rounds; r++ {
			wg.Add(1)
			go func(i int, spec JobSpec) {
				defer wg.Done()
				c := &Client{Base: ts.URL, Retries: 10, BaseDelay: time.Millisecond, Seed: uint64(i + 1)}
				ctx, cancel := context.WithTimeout(context.Background(), 2*time.Minute)
				defer cancel()
				body, err := c.Run(ctx, spec)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(body, want[i]) {
					t.Errorf("spec %d: served %d bytes differ from tlssim rendering (%d bytes)",
						i, len(body), len(want[i]))
				}
			}(i, spec)
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("client run failed under chaos: %v", err)
	}

	// The schedule must actually have fired — a chaos test that injected
	// nothing proves nothing.
	cs := ch.Stats()
	if cs.DiskErrs == 0 && cs.TornWrite == 0 && cs.DiskSlows == 0 {
		t.Errorf("no disk faults delivered: %+v (schedule too sparse for this run)", cs)
	}
	m := s.MetricsSnapshot()
	if m.Chaos == nil {
		t.Fatalf("metrics omit the chaos block while chaos is armed")
	}
	if m.JobsCompleted == 0 {
		t.Errorf("no jobs completed under chaos")
	}
}

// The same fault schedule twice delivers the same faults: the schedule is a
// pure function of the seed and the draw sequence, which is what makes a
// chaos failure reproducible.
func TestChaosScheduleIsDeterministic(t *testing.T) {
	run := func() chaos.Stats {
		ch := chaos.New(chaosConfig())
		_, ts := newTestServer(t, Options{
			Workers: 1, QueueDepth: 8,
			Store: openTestStore(t, t.TempDir()),
			Chaos: ch, PoisonThreshold: 1 << 20,
		})
		c := &Client{Base: ts.URL, Retries: 10, BaseDelay: time.Millisecond, Seed: 1}
		for _, bench := range []string{"NEW ORDER", "PAYMENT"} {
			if _, err := c.Run(context.Background(), tinySpec(bench)); err != nil {
				t.Fatalf("%s under chaos: %v", bench, err)
			}
		}
		return ch.Stats()
	}
	// One worker and a sequential client keep the draw order identical, so
	// the delivered-fault counters must match exactly.
	if a, b := run(), run(); a != b {
		t.Errorf("two identical chaos runs diverged: %+v vs %+v", a, b)
	}
}

// A disk that fails every operation trips the breaker; the daemon keeps
// serving (memory + rebuild) and the degradation is visible in both metric
// representations.
func TestBreakerOpensUnderDiskFaultsAndServes(t *testing.T) {
	ch := chaos.New(chaos.Config{Seed: 1, DiskErrEvery: 1})
	s, ts := newTestServer(t, Options{
		Workers: 1, QueueDepth: 8,
		Store:            openTestStore(t, t.TempDir()),
		Chaos:            ch,
		BreakerThreshold: 3,
		BreakerCooldown:  time.Hour, // stay open for the test's lifetime
		PoisonThreshold:  1 << 20,
	})

	c := &Client{Base: ts.URL, Retries: 10, BaseDelay: time.Millisecond, Seed: 1}
	for i, bench := range []string{"NEW ORDER", "PAYMENT", "DELIVERY", "ORDER STATUS"} {
		body, err := c.Run(context.Background(), tinySpec(bench))
		if err != nil {
			t.Fatalf("job %d under total disk failure: %v", i, err)
		}
		if want := renderExpected(t, tinySpec(bench)); !bytes.Equal(body, want) {
			t.Errorf("job %d: degraded-mode body differs from tlssim rendering", i)
		}
	}

	m := s.MetricsSnapshot()
	if m.Breaker == nil || m.Breaker.State != "open" {
		t.Fatalf("breaker = %+v, want open under total disk failure", m.Breaker)
	}
	if m.Breaker.ShortCircuits == 0 {
		t.Errorf("open breaker short-circuited nothing")
	}
	if m.JobsCompleted == 0 {
		t.Errorf("no jobs completed while degraded")
	}
}

// A Prometheus scrape of a chaos-and-breaker-armed daemon stays lintable:
// the degraded-mode families obey the same exposition rules as the rest.
func TestChaosAndBreakerPromFamiliesLint(t *testing.T) {
	ch := chaos.New(chaosConfig())
	s, _ := newTestServer(t, Options{
		Workers: 1, QueueDepth: 4,
		Store: openTestStore(t, t.TempDir()),
		Chaos: ch, PoisonThreshold: 1 << 20,
	})
	req := httptest.NewRequest(http.MethodGet, "/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	rec := httptest.NewRecorder()
	s.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("scrape status = %d", rec.Code)
	}
	if err := telemetry.LintProm(rec.Body.Bytes()); err != nil {
		t.Errorf("chaos/breaker scrape fails lint: %v", err)
	}
	body := rec.Body.String()
	for _, family := range []string{
		"tlsd_cas_breaker_state", "tlsd_cas_breaker_opens_total",
		"tlsd_cas_breaker_short_circuits_total", "tlsd_chaos_faults_total",
		"tlsd_jobs_timeout_total", "tlsd_jobs_cancelled_total",
		"tlsd_jobs_rejected_poisoned_total", "tlsd_jobs_rejected_deadline_total",
		"tlsd_poisoned_digests",
	} {
		if !bytes.Contains([]byte(body), []byte(family)) {
			t.Errorf("scrape is missing %s", family)
		}
	}
}
