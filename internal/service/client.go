package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"
)

// Client is a minimal retrying client for the daemon's job API, used by the
// e2e suites and the future load generator. It submits synchronously
// (?wait=1), classifies responses into permanent and retryable failures,
// and retries the latter under a bounded budget with exponential backoff,
// seeded jitter, and respect for the server's Retry-After — the well-
// behaved client the service's backpressure design assumes.
type Client struct {
	// Base is the server's base URL (no trailing slash), e.g. the
	// httptest.Server.URL in tests or http://localhost:8080 in production.
	Base string
	// HTTP is the underlying client; nil uses http.DefaultClient.
	HTTP *http.Client
	// Retries bounds the retry budget: up to Retries re-submissions after
	// the first attempt (default 4).
	Retries int
	// BaseDelay seeds the exponential backoff (default 100ms); MaxDelay
	// caps it (default 5s). A server Retry-After larger than the computed
	// backoff wins.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Seed drives the backoff jitter, so tests get reproducible retry
	// timing. 0 means seed 1.
	Seed uint64

	mu  sync.Mutex
	rng uint64
	up  bool
}

// PermanentError is a terminal client outcome: retrying cannot help
// (invalid spec, quarantined digest, retry budget exhausted on failures).
type PermanentError struct {
	Status int
	Msg    string
}

func (e *PermanentError) Error() string {
	return fmt.Sprintf("service client: permanent failure (HTTP %d): %s", e.Status, e.Msg)
}

// ErrAlreadyTerminal reports that a DELETE-cancel found the job already
// terminal (HTTP 409): the cancellation changed nothing, but the job's
// outcome — done or failed — is settled and fetchable. Callers that only
// wanted the job to stop can treat it as success.
var ErrAlreadyTerminal = errors.New("service client: job already terminal; cancel changed nothing")

// Result is one successful synchronous submission: the body plus the serving
// metadata the daemon stamps on the response, so load generators and cluster
// tests can assert hit provenance without re-parsing logs.
type Result struct {
	// Body is the result document, byte-identical to `tlssim -json`.
	Body []byte
	// Cache is the X-Cache response header: "hit", "dedup", or "miss"
	// ("miss" and "dedup" submissions still block until the run finishes).
	Cache string
	// Tier is the X-Cache-Tier header of a hit: "memory", "disk", or
	// "remote" ("" on a miss).
	Tier string
	// CorrelationID is the X-Correlation-ID echoed (or generated) by the
	// server that answered.
	CorrelationID string
	// Attempts counts submissions performed, including the successful one.
	Attempts int
}

// Run submits spec and blocks until it has the result body or a permanent
// failure. The returned bytes are byte-identical to `tlssim -json` for the
// same spec. See Do for the full result metadata.
func (c *Client) Run(ctx context.Context, spec JobSpec) ([]byte, error) {
	res, err := c.Do(ctx, spec)
	if err != nil {
		return nil, err
	}
	return res.Body, nil
}

// Do submits spec and blocks until it has the result or a permanent
// failure, retrying retryable outcomes (queue full, draining, unmeetable
// deadline, failed runs — a failed job's digest is released, so a retry is
// a fresh attempt) within the budget.
func (c *Client) Do(ctx context.Context, spec JobSpec) (*Result, error) {
	payload, err := json.Marshal(spec)
	if err != nil {
		return nil, fmt.Errorf("service client: encode spec: %w", err)
	}
	retries := c.Retries
	if retries <= 0 {
		retries = 4
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		res, retryAfter, retryable, err := c.once(ctx, payload)
		if err == nil {
			res.Attempts = attempt + 1
			return res, nil
		}
		lastErr = err
		if !retryable || attempt >= retries {
			return nil, lastErr
		}
		delay := c.backoff(attempt)
		if retryAfter > delay {
			delay = retryAfter
		}
		select {
		case <-ctx.Done():
			return nil, context.Cause(ctx)
		case <-time.After(delay):
		}
	}
}

// Cancel requests cancellation of a live job (DELETE /v1/jobs/{id}). nil
// means the cancellation was signalled (HTTP 202); ErrAlreadyTerminal means
// the job had already finished (HTTP 409) — by the daemon's contract the
// job's state is settled either way, so callers that only care that the job
// is no longer running can treat both as success.
func (c *Client) Cancel(ctx context.Context, jobID string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete,
		c.Base+"/v1/jobs/"+jobID, nil)
	if err != nil {
		return err
	}
	resp, err := c.http().Do(req)
	if err != nil {
		return fmt.Errorf("service client: %w", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	switch resp.StatusCode {
	case http.StatusAccepted:
		return nil
	case http.StatusConflict:
		return ErrAlreadyTerminal
	default:
		return &PermanentError{Status: resp.StatusCode, Msg: compact(data)}
	}
}

// http returns the underlying HTTP client.
func (c *Client) http() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// once performs a single synchronous submission.
func (c *Client) once(ctx context.Context, payload []byte) (res *Result, retryAfter time.Duration, retryable bool, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		c.Base+"/v1/jobs?wait=1", bytes.NewReader(payload))
	if err != nil {
		return nil, 0, false, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.http().Do(req)
	if err != nil {
		// Transport errors (daemon restarting, connection refused) are the
		// canonical retryable failure.
		return nil, 0, true, fmt.Errorf("service client: %w", err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, true, fmt.Errorf("service client: read response: %w", err)
	}
	switch resp.StatusCode {
	case http.StatusOK:
		return &Result{
			Body:          data,
			Cache:         resp.Header.Get("X-Cache"),
			Tier:          resp.Header.Get("X-Cache-Tier"),
			CorrelationID: resp.Header.Get(CorrelationHeader),
		}, 0, false, nil
	case http.StatusBadRequest, http.StatusUnprocessableEntity:
		// Invalid or quarantined: identical resubmissions keep failing
		// until something else changes; don't spend the budget on them.
		return nil, 0, false, &PermanentError{Status: resp.StatusCode, Msg: compact(data)}
	case http.StatusTooManyRequests, http.StatusServiceUnavailable,
		http.StatusGone, http.StatusAccepted:
		// Backpressure, drain, a failed run (its digest was released), or
		// an async-shaped response: all worth retrying.
		return nil, headerRetryAfter(resp), true,
			fmt.Errorf("service client: retryable failure (HTTP %d): %s", resp.StatusCode, compact(data))
	default:
		return nil, 0, false, &PermanentError{Status: resp.StatusCode, Msg: compact(data)}
	}
}

// backoff computes the delay before retry #attempt: exponential from
// BaseDelay, capped at MaxDelay, scaled by a seeded jitter in [0.5, 1.5).
func (c *Client) backoff(attempt int) time.Duration {
	base := c.BaseDelay
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	max := c.MaxDelay
	if max <= 0 {
		max = 5 * time.Second
	}
	d := base << uint(attempt)
	if d <= 0 || d > max {
		d = max
	}
	c.mu.Lock()
	if !c.up {
		c.rng = c.Seed
		if c.rng == 0 {
			c.rng = 1
		}
		c.up = true
	}
	r := clientSplitmix(&c.rng)
	c.mu.Unlock()
	jitter := 0.5 + float64(r%1024)/1024
	return time.Duration(float64(d) * jitter)
}

// headerRetryAfter parses a whole-seconds Retry-After header (the only form
// the daemon emits); 0 when absent or malformed.
func headerRetryAfter(resp *http.Response) time.Duration {
	v := resp.Header.Get("Retry-After")
	if v == "" {
		return 0
	}
	secs, err := strconv.Atoi(v)
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// compact flattens an error-response body into one log-friendly line.
func compact(data []byte) string {
	var e struct {
		Error string `json:"error"`
	}
	if json.Unmarshal(data, &e) == nil && e.Error != "" {
		return e.Error
	}
	s := string(data)
	if len(s) > 200 {
		s = s[:200] + "..."
	}
	return s
}

// clientSplitmix is the SplitMix64 step (shared idiom with internal/inject
// and internal/chaos), giving the client deterministic jitter from a seed.
func clientSplitmix(x *uint64) uint64 {
	*x += 0x9e3779b97f4a7c15
	z := *x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
