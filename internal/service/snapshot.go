package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"log/slog"

	"subthreads/internal/sim"
	"subthreads/internal/workload"
)

// The snapshot tier: alongside rendered result bodies ("result") and recorded
// programs ("built"), the persistent store keeps whole-machine checkpoints of
// each workload's leading barrier prefix, keyed by {workload digest, machine
// prefix digest}. A job whose exact digest misses every result tier but whose
// workload + prefix-invariant machine parameters match a stored checkpoint
// forks the simulation from it instead of replaying the prefix — the warm
// start covers machine state, not just Built artifacts. sim.ResumeE's
// byte-identity contract keeps the rendered body, and therefore the content
// address, exactly what a full run would have produced.

// casSnapNS is the store namespace for machine checkpoints.
const casSnapNS = "snap"

// snapshotKey names the checkpoint a resolved run could fork from: the
// workload (spec) digest crossed with the machine's prefix digest. The
// capture cycle is deterministic given both, so it lives inside the frame
// rather than in the key.
func snapshotKey(spec workload.Spec, cfg sim.Config) string {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("service: spec encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:24] + "-" + sim.PrefixDigest(cfg)[:24]
}

// simTLS runs a job's main (TLS-configured) simulation through the snapshot
// tier. Fault-injected jobs never fork (a checkpoint would skip scheduled
// faults) and sequential-software jobs have no speculative suffix worth
// forking into; both replay in full. A corrupt or inapplicable checkpoint is
// quarantined and the job falls back to a full replay — the tier can only
// ever save work, never fail a job.
func (s *Server) simTLS(j *Job, cfg sim.Config, built *workload.Built, r *Resolved) (*sim.Result, error) {
	if cfg.Inject != nil || r.Exp.SequentialSoftware() || s.store == nil {
		s.noteSim(false)
		return sim.RunE(cfg, built.Program)
	}
	key := snapshotKey(r.Spec, cfg)
	if s.breaker.Allow() {
		if data, ok := s.store.Get(casSnapNS, key); ok {
			if res, err := s.forkFrom(j, cfg, built, key, data); err == nil {
				return res, nil
			}
		} else {
			s.bumpSnap(&s.snapMisses)
		}
	}

	// Full replay; capture the prefix checkpoint on the way through and
	// publish it for the next run of this {workload, prefix} group.
	var captured *sim.Snapshot
	runCfg := cfg
	runCfg.SnapshotAtPrefix = true
	runCfg.SnapshotSink = func(snap *sim.Snapshot) {
		if snap.Forkable {
			captured = snap
		}
	}
	res, err := sim.RunE(runCfg, built.Program)
	s.noteSim(false)
	if err == nil && captured != nil && s.breaker.Allow() {
		s.store.Put(casSnapNS, key, captured.Encode())
		s.bumpSnap(&s.snapPuts)
		s.jlog(slog.LevelInfo, "snapshot published",
			slog.String("correlation_id", j.corr),
			slog.String("job", j.id),
			slog.String("snapshot", key),
			slog.Uint64("cycle", captured.Cycle))
	}
	return res, err
}

// forkFrom resumes a job's simulation from stored checkpoint bytes. Any
// failure — undecodable frame, or a frame that no longer applies to this
// program — quarantines the entry and returns the error so the caller
// replays in full.
func (s *Server) forkFrom(j *Job, cfg sim.Config, built *workload.Built, key string, data []byte) (*sim.Result, error) {
	snap, err := sim.DecodeSnapshot(data)
	if err == nil {
		var res *sim.Result
		if res, err = sim.ResumeE(cfg, built.Program, snap); err == nil {
			s.bumpSnap(&s.snapHits)
			s.noteSim(true)
			s.jlog(slog.LevelInfo, "job forked from snapshot",
				slog.String("correlation_id", j.corr),
				slog.String("job", j.id),
				slog.String("snapshot", key),
				slog.Uint64("cycle", snap.Cycle))
			return res, nil
		}
	}
	s.bumpSnap(&s.snapCorrupt)
	s.store.Quarantine(casSnapNS, key, err)
	s.jlog(slog.LevelWarn, "snapshot quarantined",
		slog.String("correlation_id", j.corr),
		slog.String("job", j.id),
		slog.String("snapshot", key),
		slog.String("error", err.Error()))
	return nil, err
}

func (s *Server) bumpSnap(c *uint64) {
	s.mu.Lock()
	*c++
	s.mu.Unlock()
}

// noteSim records a job's main simulation as forked from a checkpoint or
// replayed in full.
func (s *Server) noteSim(forked bool) {
	s.mu.Lock()
	if forked {
		s.jobsForked++
	} else {
		s.jobsReplayed++
	}
	s.mu.Unlock()
}
