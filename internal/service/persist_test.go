package service

import (
	"bytes"
	"io"
	"net/http"
	"strings"
	"testing"

	"subthreads/internal/cas"
	"subthreads/internal/telemetry"
)

func openTestStore(t *testing.T, dir string) *cas.Store {
	t.Helper()
	s, err := cas.Open(dir, cas.Options{})
	if err != nil {
		t.Fatalf("cas.Open: %v", err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

// The warm-restart contract end to end: a brand-new server over the same
// cache directory — a restarted daemon — serves a previously computed spec
// as a hit, byte-identical to the first life's body and to the tlssim
// rendering, without building or simulating anything.
func TestWarmRestartServesFromDisk(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("NEW ORDER")

	// First life: cold run, result published to the store.
	s1, ts1 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	resp := postJob(t, ts1, spec)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	final := waitDone(t, ts1, st.ID)
	if final.State != StateDone {
		t.Fatalf("cold job state = %s", final.State)
	}
	_, coldBody := getBody(t, ts1.URL+final.ResultURL)
	if s1.Builds() != 2 {
		t.Fatalf("cold builds = %d, want 2 (TLS + sequential)", s1.Builds())
	}

	// Second life: new server, new memory, same directory. A 200 hit serves
	// the stored result body verbatim as the submission response.
	s2, ts2 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	resp2 := postJob(t, ts2, spec)
	warmBody, err := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if err != nil {
		t.Fatalf("read warm body: %v", err)
	}
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("warm resubmission status = %d, want 200", resp2.StatusCode)
	}
	if got := resp2.Header.Get("X-Cache"); got != "hit" {
		t.Fatalf("X-Cache = %q, want hit", got)
	}
	if !bytes.Equal(warmBody, coldBody) {
		t.Fatalf("warm body differs from cold body (%d vs %d bytes)", len(warmBody), len(coldBody))
	}
	if want := renderExpected(t, spec); !bytes.Equal(warmBody, want) {
		t.Fatal("warm body differs from tlssim -json rendering")
	}
	// The whole point: the restarted daemon did no build work at all.
	if s2.Builds() != 0 {
		t.Fatalf("warm builds = %d, want 0", s2.Builds())
	}

	m := s2.MetricsSnapshot()
	if m.CacheDiskHits != 1 {
		t.Fatalf("cache_disk_hits = %d, want 1", m.CacheDiskHits)
	}
	if m.DiskHitLatencyMicros.Count != 1 {
		t.Fatalf("disk_hit_latency count = %d, want 1", m.DiskHitLatencyMicros.Count)
	}
	if m.CAS == nil || m.CAS.Hits == 0 {
		t.Fatalf("cas stats = %+v, want at least one hit", m.CAS)
	}

	// Third submission in the second life is a plain memory hit.
	resp3 := postJob(t, ts2, spec)
	resp3.Body.Close()
	if m := s2.MetricsSnapshot(); m.CacheHits != 1 || m.CacheDiskHits != 1 {
		t.Fatalf("after resubmit: hits=%d disk=%d, want 1/1", m.CacheHits, m.CacheDiskHits)
	}
}

// A restarted daemon whose store has only the built programs (result entries
// evicted or absent) still skips the build stage: the builder's disk tier
// warms it. This pins the two-namespace split working independently.
func TestWarmRestartRebuildsFromBuiltNamespace(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("STOCK LEVEL")

	_, ts1 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	resp := postJob(t, ts1, spec)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	waitDone(t, ts1, st.ID)

	// Drop the result entry, keep the built programs.
	r, err := spec.Resolve()
	if err != nil {
		t.Fatalf("resolve: %v", err)
	}
	store2 := openTestStore(t, dir)
	store2.Quarantine(casResultNS, r.Digest, nil)

	s2, ts2 := newTestServer(t, Options{Workers: 1, Store: store2})
	resp2 := postJob(t, ts2, spec)
	st2 := decodeStatus(t, resp2.Body)
	resp2.Body.Close()
	final := waitDone(t, ts2, st2.ID)
	if final.State != StateDone {
		t.Fatalf("job state = %s", final.State)
	}
	// Simulated again (no stored result) but built nothing: both programs
	// came from the store's built namespace.
	if s2.Builds() != 0 {
		t.Fatalf("builds = %d, want 0 (programs from disk)", s2.Builds())
	}
	if st := s2.BuildStats(); st.DiskHits != 2 {
		t.Fatalf("builder stats = %+v, want 2 disk hits", st)
	}
	_, body := getBody(t, ts2.URL+final.ResultURL)
	if want := renderExpected(t, spec); !bytes.Equal(body, want) {
		t.Fatal("disk-built body differs from tlssim -json rendering")
	}
}

// The cas metric families must pass the exposition linter and carry the
// tier's counters once the store has seen traffic.
func TestPromExposesCASFamilies(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec("NEW ORDER")

	_, ts1 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	resp := postJob(t, ts1, spec)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	waitDone(t, ts1, st.ID)

	// Restarted daemon: the resubmission is a cas hit.
	_, ts2 := newTestServer(t, Options{Workers: 1, Store: openTestStore(t, dir)})
	resp2 := postJob(t, ts2, spec)
	resp2.Body.Close()

	req, _ := http.NewRequest("GET", ts2.URL+"/metrics", nil)
	req.Header.Set("Accept", "text/plain")
	promResp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(promResp.Body)
	promResp.Body.Close()
	if err := telemetry.LintProm(body); err != nil {
		t.Fatalf("store-enabled exposition does not lint: %v\n%s", err, body)
	}
	text := string(body)
	for _, want := range []string{
		"tlsd_cache_disk_hits_total 1",
		"tlsd_cache_disk_hit_latency_microseconds_count 1",
		"tlsd_cas_hit_total 1",
		"tlsd_cas_miss_total",
		"tlsd_cas_eviction_total 0",
		"tlsd_cas_corrupt_total 0",
		"tlsd_cas_load_latency_microseconds_count 1",
		"tlsd_cas_store_latency_microseconds_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q", want)
		}
	}
}

// Without a store every path must behave exactly as before; this is the
// regression guard for the nil tier.
func TestNoStoreUnchangedBehavior(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1})
	spec := tinySpec("NEW ORDER")
	resp := postJob(t, ts, spec)
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	waitDone(t, ts, st.ID)
	m := s.MetricsSnapshot()
	if m.CAS != nil {
		t.Fatalf("cas stats present without a store: %+v", m.CAS)
	}
	if m.CacheDiskHits != 0 {
		t.Fatalf("disk hits without a store: %d", m.CacheDiskHits)
	}
}
