package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"

	"subthreads/internal/cas"
	"subthreads/internal/version"
)

// BenchReport is the serving-layer benchmark artifact (BENCH_service.json):
// throughput of a repeated sweep through the full HTTP-free serving path
// (queue, workers, digest cache), and the cold-vs-hit latency split that
// justifies the content-addressed cache.
type BenchReport struct {
	// Host records what machine and toolchain produced the numbers.
	Host version.HostInfo `json:"host"`

	Workers       int     `json:"workers"`
	QueueCapacity int     `json:"queue_capacity"`
	DistinctSpecs int     `json:"distinct_specs"`
	Rounds        int     `json:"rounds"`
	Jobs          int     `json:"jobs"`
	WallMS        float64 `json:"wall_ms"`
	JobsPerSec    float64 `json:"jobs_per_sec"`

	CacheHits     uint64  `json:"cache_hits"`
	CacheMisses   uint64  `json:"cache_misses"`
	CacheHitRatio float64 `json:"cache_hit_ratio"`
	// ColdLatencyMS is the mean submit-to-done wall time of a simulated
	// job; HitLatencyMicros the mean lookup time of a cache-hit submission.
	ColdLatencyMS    float64 `json:"cold_latency_ms"`
	HitLatencyMicros float64 `json:"hit_latency_micros"`
	// The cold path broken down by pipeline stage (mean milliseconds per
	// executed job): queue wait, workload build (TLS + sequential),
	// simulation (TLS + sequential reference), and result rendering. The
	// same distributions back the tlsd_job_stage_latency_microseconds
	// histograms on /metrics.
	QueueWaitMS     float64 `json:"queue_wait_ms"`
	BuildLatencyMS  float64 `json:"build_latency_ms"`
	SimLatencyMS    float64 `json:"sim_latency_ms"`
	RenderLatencyMS float64 `json:"render_latency_ms"`
	// DistinctBuilds counts workload builds performed by the shared build
	// cache (at most 2 per distinct spec: TLS + sequential).
	DistinctBuilds int `json:"distinct_builds"`

	// The warm-restart phase: after the sweep above, a second server is
	// created over the same persistent cache directory — a simulated daemon
	// restart — and the sweep is resubmitted once. Every submission must be
	// served from disk (DiskWarmHits == DistinctSpecs, DiskWarmBuilds == 0);
	// DiskWarmHitLatencyMicros is the mean lookup-plus-disk-read latency,
	// the number that justifies "warm from byte one".
	DiskWarmHits             uint64  `json:"disk_warm_hits"`
	DiskWarmBuilds           int     `json:"disk_warm_builds"`
	DiskWarmHitLatencyMicros float64 `json:"disk_warm_hit_latency_micros"`
}

// benchSpecs is the repeated sweep: a small design-space slice (sub-thread
// count x spacing over two benchmarks) shaped like the paper's Figure 6
// cells, sized to finish in seconds.
func benchSpecs() []JobSpec {
	warmup, seed := 1, int64(42)
	var specs []JobSpec
	for _, bench := range []string{"NEW ORDER", "STOCK LEVEL"} {
		for _, sub := range []int{2, 4, 8} {
			specs = append(specs, JobSpec{
				Benchmark:  bench,
				Txns:       3,
				Warmup:     &warmup,
				Seed:       &seed,
				Subthreads: sub,
			})
		}
	}
	return specs
}

// RunBench drives a fresh in-process server through rounds repetitions of
// the sweep (round 1 cold, the rest cache hits) with workers workers, and
// returns the measured report.
func RunBench(workers, rounds int) (BenchReport, error) {
	specs := benchSpecs()
	// The sweep runs against a persistent store in a throwaway directory so
	// the final phase can measure a simulated daemon restart (a second
	// server over the same directory, warm from byte one).
	casDir, err := os.MkdirTemp("", "tlsd-bench-cas-")
	if err != nil {
		return BenchReport{}, err
	}
	defer os.RemoveAll(casDir)
	store, err := cas.Open(casDir, cas.Options{})
	if err != nil {
		return BenchReport{}, err
	}
	defer store.Close()
	s := New(Options{Workers: workers, QueueDepth: len(specs) * rounds, Store: store})

	start := time.Now()
	var wg sync.WaitGroup
	errs := make(chan error, len(specs)*rounds)
	for round := 0; round < rounds; round++ {
		for _, spec := range specs {
			j, _, err := s.Submit(spec)
			if err != nil {
				return BenchReport{}, err
			}
			wg.Add(1)
			go func(j *Job) {
				defer wg.Done()
				<-j.Done()
				if j.State() != StateDone {
					errs <- fmt.Errorf("service: bench job %s failed", j.ID())
				}
			}(j)
		}
		// Let each later round hit the result cache rather than racing the
		// first round's in-flight jobs into dedup.
		if round == 0 {
			wg.Wait()
		}
	}
	wg.Wait()
	wall := time.Since(start)
	close(errs)
	for err := range errs {
		return BenchReport{}, err
	}
	if err := s.Shutdown(context.Background()); err != nil {
		return BenchReport{}, err
	}

	m := s.MetricsSnapshot()
	total := len(specs) * rounds
	rep := BenchReport{
		Host:             version.Host(),
		Workers:          m.Workers,
		QueueCapacity:    m.QueueCapacity,
		DistinctSpecs:    len(specs),
		Rounds:           rounds,
		Jobs:             total,
		WallMS:           float64(wall.Microseconds()) / 1000,
		JobsPerSec:       float64(total) / wall.Seconds(),
		CacheHits:        m.CacheHits + m.DedupedInFlight,
		CacheMisses:      m.CacheMisses,
		CacheHitRatio:    m.CacheHitRatio,
		ColdLatencyMS:    m.ColdLatencyMicros.Mean / 1000,
		HitLatencyMicros: m.HitLatencyMicros.Mean,
		QueueWaitMS:      m.QueueWaitMicros.Mean / 1000,
		BuildLatencyMS:   m.BuildLatencyMicros.Mean / 1000,
		SimLatencyMS:     m.SimLatencyMicros.Mean / 1000,
		RenderLatencyMS:  m.RenderLatencyMicros.Mean / 1000,
		DistinctBuilds:   s.Builds(),
	}

	// Warm-restart phase: a fresh server, empty memory, same directory.
	warm := New(Options{Workers: workers, QueueDepth: len(specs), Store: store})
	for _, spec := range specs {
		j, hit, err := warm.Submit(spec)
		if err != nil {
			return BenchReport{}, err
		}
		if !hit || j.State() != StateDone {
			return BenchReport{}, fmt.Errorf("service: bench restart spec not disk-warm (hit=%v state=%s)", hit, j.State())
		}
	}
	if err := warm.Shutdown(context.Background()); err != nil {
		return BenchReport{}, err
	}
	wm := warm.MetricsSnapshot()
	rep.DiskWarmHits = wm.CacheDiskHits
	rep.DiskWarmBuilds = warm.Builds()
	rep.DiskWarmHitLatencyMicros = wm.DiskHitLatencyMicros.Mean
	return rep, nil
}

// WriteBench runs the benchmark and writes the report as indented JSON.
func WriteBench(w io.Writer, workers, rounds int) error {
	rep, err := RunBench(workers, rounds)
	if err != nil {
		return err
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rep)
}
