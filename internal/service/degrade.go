// Degraded-mode admission: the poison-digest quarantine and deadline-aware
// rejection. Both exist to stop the daemon from burning workers on jobs
// that are already known to end badly — a digest that keeps failing
// deterministically, or a deadline the current backlog provably cannot
// meet — and to tell the client when a retry is worth it instead.
package service

import (
	"fmt"
	"time"
)

// PoisonedError rejects a submission whose digest is quarantined: it failed
// deterministically Failures times within the poison TTL, so re-running it
// would burn a worker to reproduce a known failure. The HTTP layer maps it
// to 422 with Retry-After (the quarantine's remaining TTL).
type PoisonedError struct {
	Digest     string
	Failures   int
	LastKind   string
	RetryAfter time.Duration
}

func (e *PoisonedError) Error() string {
	return fmt.Sprintf("service: digest %s quarantined after %d deterministic failures (last: %s)",
		e.Digest, e.Failures, e.LastKind)
}

// UnmeetableDeadlineError rejects a submission whose deadline is provably
// too tight: the observed mean service time plus the expected queue wait
// already exceeds it. Mapped to 429 with a computed Retry-After (when the
// backlog has drained, the same deadline may be feasible).
type UnmeetableDeadlineError struct {
	Deadline   time.Duration
	Estimate   time.Duration
	RetryAfter time.Duration
}

func (e *UnmeetableDeadlineError) Error() string {
	return fmt.Sprintf("service: deadline %v cannot be met (estimated %v to completion)",
		e.Deadline.Round(time.Millisecond), e.Estimate.Round(time.Millisecond))
}

// QueueFullError rejects a submission because the admission queue is at
// capacity, carrying the computed Retry-After (expected time for the
// backlog to open a slot). errors.Is(err, ErrQueueFull) holds, so existing
// callers keep working.
type QueueFullError struct {
	RetryAfter time.Duration
}

func (e *QueueFullError) Error() string { return ErrQueueFull.Error() }
func (e *QueueFullError) Is(target error) bool {
	return target == ErrQueueFull
}

// Poison-quarantine defaults: three deterministic failures within ten
// minutes quarantine a digest for the remainder of the window.
const (
	defaultPoisonThreshold = 3
	defaultPoisonTTL       = 10 * time.Minute
)

// poisonEntry tracks one digest's recent deterministic failures.
type poisonEntry struct {
	fails int
	until time.Time // observation window / quarantine expiry
	kind  string    // most recent failure kind
}

// deterministicFailure reports whether a failure kind indicts the job
// itself rather than the circumstances of this run. Timeouts, client
// cancellations, and drain aborts say nothing about what a retry would do,
// so they never poison a digest.
func deterministicFailure(kind string) bool {
	switch kind {
	case "timeout", "cancelled", "drain":
		return false
	}
	return true
}

// notePoisonLocked records one deterministic failure of digest. The window
// slides: each failure restarts the TTL, so a digest failing steadily stays
// quarantined. Caller holds s.mu.
func (s *Server) notePoisonLocked(digest string, f *Failure, now time.Time) {
	e := s.poison[digest]
	if e == nil || now.After(e.until) {
		e = &poisonEntry{}
		s.poison[digest] = e
	}
	e.fails++
	e.kind = f.Kind
	e.until = now.Add(s.opts.PoisonTTL)
}

// poisonedLocked reports whether digest is quarantined right now, expiring
// stale entries as a side effect. Caller holds s.mu.
func (s *Server) poisonedLocked(digest string, now time.Time) *PoisonedError {
	e := s.poison[digest]
	if e == nil {
		return nil
	}
	if now.After(e.until) {
		delete(s.poison, digest)
		return nil
	}
	if e.fails < s.opts.PoisonThreshold {
		return nil
	}
	return &PoisonedError{
		Digest:     digest,
		Failures:   e.fails,
		LastKind:   e.kind,
		RetryAfter: clampRetryAfter(e.until.Sub(now)),
	}
}

// meanServiceLocked is the observed mean per-job service time — the sum of
// the build, sim, and render stage means (each stage histogram observes
// exactly once per executed job). ok is false until the first job has
// executed: a cold server never second-guesses a deadline. Caller holds
// s.mu.
func (s *Server) meanServiceLocked() (time.Duration, bool) {
	var sum uint64
	cnt := s.stageMicros[stageSim].Count
	if cnt == 0 {
		return 0, false
	}
	for _, st := range []stage{stageBuild, stageSim, stageRender} {
		sum += s.stageMicros[st].Sum
	}
	return time.Duration(sum/cnt) * time.Microsecond, true
}

// backlogWaitLocked estimates how long a job admitted now waits for a
// worker: the jobs ahead of it (queued + in flight), served at the mean
// service rate by the worker pool. Caller holds s.mu.
func (s *Server) backlogWaitLocked(svc time.Duration) time.Duration {
	ahead := len(s.queue) + s.inFlight
	return time.Duration(ahead) * svc / time.Duration(s.opts.Workers)
}

// clampRetryAfter bounds a computed Retry-After to [1s, 60s]: never "now"
// (the condition that caused the rejection still holds), never so far out a
// client gives up on a queue that drains in seconds.
func clampRetryAfter(d time.Duration) time.Duration {
	if d < time.Second {
		return time.Second
	}
	if d > time.Minute {
		return time.Minute
	}
	return d
}

// retryAfterLocked computes the Retry-After for a queue-full rejection:
// the expected time for the backlog to open a slot, clamped. Without
// latency data it falls back to the floor. Caller holds s.mu.
func (s *Server) retryAfterLocked() time.Duration {
	svc, ok := s.meanServiceLocked()
	if !ok {
		return time.Second
	}
	return clampRetryAfter(s.backlogWaitLocked(svc))
}

// minJobTimeout is the floor on an effective per-job deadline: anything
// shorter than 10ms cannot even round-trip the pipeline bookkeeping and
// would reject every job at admission.
const minJobTimeout = 10 * time.Millisecond

// jobTimeout resolves a submission's effective deadline: the spec's own
// timeout_ms, floored at minJobTimeout and ceilinged by the server-wide
// -job-timeout (a client may ask for less time than the operator allows,
// never more); with no spec timeout the server-wide default applies. Zero
// means no deadline.
func (s *Server) jobTimeout(spec JobSpec) time.Duration {
	ceiling := s.opts.JobTimeout
	if spec.TimeoutMS == 0 {
		return ceiling
	}
	d := time.Duration(spec.TimeoutMS) * time.Millisecond
	if d < minJobTimeout {
		d = minJobTimeout
	}
	if ceiling > 0 && d > ceiling {
		d = ceiling
	}
	return d
}
