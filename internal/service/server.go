package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"subthreads/internal/cas"
	"subthreads/internal/chaos"
	"subthreads/internal/inject"
	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/telemetry"
	"subthreads/internal/workload"
)

// Options sizes the daemon.
type Options struct {
	// Workers is the simulation worker-pool size; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO admission queue; default 64. A full
	// queue rejects submissions (HTTP 429) instead of buffering without
	// bound — backpressure is the service's overload story.
	QueueDepth int
	// DefaultMaxCycles caps jobs that set no cycle budget of their own
	// (the server-wide deadline); 0 leaves them unbounded.
	DefaultMaxCycles uint64
	// Paranoid forces the protocol invariant auditor on every job.
	Paranoid bool
	// Inject is a server-wide fault-injection spec applied to jobs that
	// carry none — the chaos-mode default for soak testing the daemon.
	Inject string
	// Logger receives the access and job-lifecycle logs. nil — the library
	// default — disables logging entirely: every logging site reduces to
	// one branch, keeping the embedded serving path allocation-clean.
	Logger *slog.Logger
	// FlightDir enables the failure flight recorder: each job keeps a
	// bounded ring of its most recent telemetry events, and a job that
	// fails with a structured *sim.RunError dumps the ring as JSONL into
	// this directory (filename <job>-<correlation>.jsonl, path logged and
	// attached to the failure). "" disables the recorder.
	FlightDir string
	// FlightEvents caps the per-job flight ring; default 4096.
	FlightEvents int
	// Store is the persistent content-addressed tier shared by the build
	// cache and the result cache. With a store, a restarted daemon serves
	// previously-computed results from byte one — no database load, no
	// trace recording, no simulation — and rebuilds nothing whose program
	// is already on disk. nil keeps both caches memory-only.
	Store *cas.Store
	// JobTimeout is the server-wide end-to-end deadline applied to jobs
	// that set no timeout_ms of their own, and the ceiling on the ones
	// that do. 0 disables the default deadline (paper-scale runs can take
	// arbitrarily long).
	JobTimeout time.Duration
	// PoisonThreshold quarantines a digest after this many deterministic
	// failures within PoisonTTL (default 3); PoisonTTL is the sliding
	// window and quarantine duration (default 10m). Quarantined digests
	// fast-fail at admission (HTTP 422) instead of re-burning workers.
	PoisonThreshold int
	PoisonTTL       time.Duration
	// Breaker knobs for the circuit around the disk CAS tier: consecutive
	// failures to open (default 5), cooldown before a half-open probe
	// (default 10s), and the latency above which a call counts as a
	// failure (default 250ms). Zero values take the defaults; the breaker
	// exists only when Store is set.
	BreakerThreshold int
	BreakerCooldown  time.Duration
	BreakerSlowCall  time.Duration
	// Chaos, when non-nil, arms the deterministic fault schedule: it is
	// installed as the store's fault injector and consulted per job
	// execution for worker panics. Test/soak plumbing — see internal/chaos.
	Chaos *chaos.Chaos
	// RemoteFetch, when non-nil, is the cross-node cache tier: on a local
	// miss (memory and disk both empty), the daemon asks sibling replicas
	// for the digest's rendered result before falling back to recompute.
	// It returns the body, the sibling it came from (for the log line),
	// and whether anything was found. Wired by cmd/tlsd -peers through
	// internal/cluster's per-node circuit breakers; a fetched body is also
	// published to the local store so warmth spreads through the cluster.
	RemoteFetch func(ctx context.Context, digest string) (body []byte, from string, ok bool)
}

// Cache tiers: where a hit submission's bytes came from. The HTTP layer
// surfaces the tier on the X-Cache-Tier response header so clients (tlsload,
// the router tests) can assert hit provenance without re-parsing logs.
const (
	// TierMemory: an existing completed job for this digest.
	TierMemory = "memory"
	// TierDedup: an in-flight job for this digest; the submission attached.
	TierDedup = "dedup"
	// TierDisk: the persistent store had the rendered body.
	TierDisk = "disk"
	// TierRemote: a sibling replica's cache had the rendered body.
	TierRemote = "remote"
)

// casResultNS is the store namespace for rendered result bodies, keyed by
// the resolved job digest — the same digest that keys the in-memory cache.
const casResultNS = "result"

// ErrQueueFull rejects a submission because the admission queue is at
// capacity; the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("service: queue full")

// ErrDraining rejects a submission because the server is shutting down; the
// HTTP layer maps it to 503.
var ErrDraining = errors.New("service: draining")

// BadSpecError wraps a spec validation failure (HTTP 400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }
func (e *BadSpecError) Unwrap() error { return e.Err }

// Server is the simulation service: it admits JobSpecs into a bounded FIFO
// queue, runs them on a fixed worker pool sharing one workload build cache,
// content-addresses every result, and serves job state over HTTP (see
// http.go). Create with New; stop with Shutdown.
type Server struct {
	opts    Options
	builder *workload.Builder
	store   *cas.Store // nil = no persistent tier
	breaker *Breaker   // nil = no persistent tier to break around
	chaos   *chaos.Chaos
	mux     httpMux
	log     *slog.Logger // nil = logging disabled
	started time.Time

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   uint64
	jobs     map[string]*Job
	byDigest map[string]*Job
	poison   map[string]*poisonEntry

	// Metrics (guarded by mu). Latencies reuse the telemetry histogram so
	// /metrics speaks the same snapshot schema as the simulator's metrics.
	submitted     uint64
	completed     uint64
	failed        uint64
	cacheHits     uint64 // digest hit on a completed job: result served as-is
	deduped       uint64 // digest hit on a queued/running job: attached, no new work
	diskHits      uint64 // digest hit in the persistent store: served from disk
	remoteHits    uint64 // digest hit in a sibling replica's cache: served remotely
	cacheProbes   uint64 // GET /v1/cache/{digest} sibling probes answered
	probeHits     uint64 // sibling probes that found a stored result
	cacheMisses   uint64
	rejected      uint64
	timedOut      uint64 // jobs abandoned on their deadline ("timeout" failures)
	cancelled     uint64 // jobs abandoned by disconnect/DELETE/drain
	poisonRejects uint64 // submissions fast-failed on a quarantined digest
	deadlineRej   uint64 // submissions rejected as unable to meet their deadline
	snapHits      uint64 // checkpoint tier: jobs forked from a stored snapshot
	snapMisses    uint64 // checkpoint tier: probes that found no snapshot
	snapPuts      uint64 // checkpoint tier: snapshots published to the store
	snapCorrupt   uint64 // checkpoint tier: snapshots quarantined as unusable
	jobsForked    uint64 // executed jobs whose main sim forked from a snapshot
	jobsReplayed  uint64 // executed jobs whose main sim ran in full
	inFlight      int
	coldMicros      telemetry.Histogram // submit -> terminal, simulated jobs
	hitMicros       telemetry.Histogram // lookup time of memory cache-hit submissions
	diskHitMicros   telemetry.Histogram // lookup time of disk-warm hit submissions
	remoteHitMicros telemetry.Histogram // lookup time of sibling-cache hit submissions
	// stageMicros breaks the cold path down by pipeline segment (queue
	// wait, build, sim, render) for every executed job.
	stageMicros [numStages]telemetry.Histogram
}

// New starts a server: the worker pool is live on return. The caller owns
// shutdown via Shutdown.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.FlightEvents <= 0 {
		opts.FlightEvents = 4096
	}
	if opts.PoisonThreshold <= 0 {
		opts.PoisonThreshold = defaultPoisonThreshold
	}
	if opts.PoisonTTL <= 0 {
		opts.PoisonTTL = defaultPoisonTTL
	}
	s := &Server{
		opts:     opts,
		builder:  workload.NewBuilder(),
		store:    opts.Store,
		chaos:    opts.Chaos,
		log:      opts.Logger,
		started:  time.Now(),
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     make(map[string]*Job),
		byDigest: make(map[string]*Job),
		poison:   make(map[string]*poisonEntry),
	}
	s.builder.SetStore(opts.Store)
	s.builder.SetLogger(opts.Logger)
	if opts.Store != nil {
		s.breaker = NewBreaker(opts.BreakerThreshold, opts.BreakerCooldown, opts.BreakerSlowCall)
		s.breaker.OnChange(func(from, to string) {
			s.jlog(slog.LevelWarn, "cas breaker state changed",
				slog.String("from", from), slog.String("to", to))
		})
		opts.Store.SetObserver(s.breaker.Observe)
	}
	if opts.Chaos != nil && opts.Store != nil {
		opts.Store.SetFaults(opts.Chaos)
	}
	s.routes()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// normalize overlays the server-wide defaults a spec didn't set itself.
// This happens before Resolve, so the overlays are part of the digest —
// content addresses always name exactly what was simulated.
func (s *Server) normalize(spec JobSpec) JobSpec {
	if s.opts.Paranoid {
		spec.Paranoid = true
	}
	if spec.Inject == "" {
		spec.Inject = s.opts.Inject
	}
	if spec.MaxCycles == 0 {
		spec.MaxCycles = s.opts.DefaultMaxCycles
	}
	return spec
}

// Submit admits a spec. On a digest hit it returns the existing job —
// completed (a cache hit: the stored result serves without re-simulation)
// or still in flight (deduplicated: the submission attaches to the one run)
// — otherwise it enqueues a new job. hit reports whether the job already
// existed. Errors: *BadSpecError, *QueueFullError (errors.Is ErrQueueFull),
// *PoisonedError, *UnmeetableDeadlineError, ErrDraining.
func (s *Server) Submit(spec JobSpec) (j *Job, hit bool, err error) {
	return s.SubmitCorrelated(spec, "")
}

// SubmitCorrelated is Submit with an explicit correlation ID: corr tags
// this submission's lifecycle log lines and, when the submission creates a
// new job, becomes the job's correlation ID (stamped on its SSE events and
// flight record). "" generates a fresh ID.
func (s *Server) SubmitCorrelated(spec JobSpec, corr string) (j *Job, hit bool, err error) {
	j, info, err := s.SubmitDetailed(spec, corr)
	return j, info.Hit, err
}

// SubmitInfo describes how a submission was satisfied: whether it hit an
// existing result or run, and which cache tier served it (TierMemory,
// TierDedup, TierDisk, TierRemote; "" for a miss that enqueued new work).
type SubmitInfo struct {
	Hit  bool
	Tier string
}

// SubmitDetailed is SubmitCorrelated plus hit provenance — the HTTP layer
// uses the tier to stamp the X-Cache-Tier response header, and the cluster
// tests use it to pin where bytes came from.
func (s *Server) SubmitDetailed(spec JobSpec, corr string) (j *Job, info SubmitInfo, err error) {
	if corr == "" {
		corr = NewCorrelationID()
	}
	spec = s.normalize(spec)
	start := time.Now()
	r, err := spec.Resolve()
	if err != nil {
		return nil, SubmitInfo{}, &BadSpecError{Err: err}
	}

	j, tier, from, queueLen, err := s.admit(spec, r, corr, start)
	info = SubmitInfo{Hit: tier != "", Tier: tier}
	switch {
	case err != nil:
		s.jlog(slog.LevelWarn, "job rejected",
			slog.String("correlation_id", corr),
			slog.String("digest", r.Digest),
			slog.String("reason", err.Error()))
	case tier == "":
		s.jlog(slog.LevelInfo, "job enqueued",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("digest", r.Digest),
			slog.Int("queue_len", queueLen))
	case tier == TierDisk:
		s.jlog(slog.LevelInfo, "job disk-warm hit",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("digest", r.Digest),
			slog.Int("bytes", len(j.Result())))
	case tier == TierRemote:
		s.jlog(slog.LevelInfo, "job remote-warm hit",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("digest", r.Digest),
			slog.String("peer", from),
			slog.Int("bytes", len(j.Result())))
	case tier == TierMemory:
		s.jlog(slog.LevelInfo, "job cache hit",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("job_correlation_id", j.corr),
			slog.String("digest", r.Digest))
	default:
		s.jlog(slog.LevelInfo, "job deduplicated",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("job_correlation_id", j.corr),
			slog.String("digest", r.Digest))
	}
	return j, info, err
}

// admit is the tiered core of SubmitDetailed: memory (an existing job for
// this digest), then the persistent store (a result computed by an earlier
// process — or an earlier life of this one), then the sibling replicas'
// caches (a result computed anywhere in the cluster), then a real enqueue.
// Disk and network I/O happen outside the server lock; cas single-flights
// concurrent loads of one key, and the locked re-check after each probe
// keeps the first installation the winner. from names the sibling that
// served a TierRemote hit ("" otherwise).
func (s *Server) admit(spec JobSpec, r *Resolved, corr string, start time.Time) (j *Job, tier, from string, queueLen int, err error) {
	s.mu.Lock()
	s.submitted++
	if prev, t := s.memoryHitLocked(r.Digest, start); t != "" {
		s.mu.Unlock()
		return prev, t, "", len(s.queue), nil
	}
	// Poison quarantine: a digest that keeps failing deterministically
	// fast-fails here instead of burning another worker. Checked before
	// the disk probe too — a quarantined digest has no stored result.
	if pe := s.poisonedLocked(r.Digest, start); pe != nil {
		s.poisonRejects++
		s.mu.Unlock()
		return nil, "", "", 0, pe
	}
	s.mu.Unlock()

	if s.breaker.Allow() {
		if body, ok := s.store.Get(casResultNS, r.Digest); ok {
			now := time.Now()
			s.mu.Lock()
			defer s.mu.Unlock()
			// Another submission may have installed this digest while we were
			// reading the disk; serve that one instead of replacing it.
			if prev, t := s.memoryHitLocked(r.Digest, start); t != "" {
				return prev, t, "", len(s.queue), nil
			}
			j = s.installFinishedLocked(corr, spec, r, start, body, now)
			s.diskHits++
			s.diskHitMicros.Observe(uint64(time.Since(start).Microseconds()))
			return j, TierDisk, "", len(s.queue), nil
		}
	}

	if s.opts.RemoteFetch != nil {
		if body, peer, ok := s.opts.RemoteFetch(context.Background(), r.Digest); ok {
			now := time.Now()
			s.mu.Lock()
			if prev, t := s.memoryHitLocked(r.Digest, start); t != "" {
				s.mu.Unlock()
				return prev, t, "", len(s.queue), nil
			}
			j = s.installFinishedLocked(corr, spec, r, start, body, now)
			s.remoteHits++
			s.remoteHitMicros.Observe(uint64(time.Since(start).Microseconds()))
			queueLen = len(s.queue)
			s.mu.Unlock()
			// Spread the warmth: publish the fetched body locally so the next
			// restart — and the next sibling probe — finds it on this node.
			// Outside the lock (disk I/O), gated by the disk breaker.
			if s.breaker.Allow() {
				s.store.Put(casResultNS, r.Digest, body)
			}
			return j, TierRemote, peer, queueLen, nil
		}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check: a duplicate submission may have enqueued while we missed
	// the disk.
	if prev, t := s.memoryHitLocked(r.Digest, start); t != "" {
		return prev, t, "", len(s.queue), nil
	}
	if s.draining {
		return nil, "", "", 0, ErrDraining
	}
	// Deadline-aware admission: reject a deadline the observed service
	// rate and current backlog provably cannot meet, instead of admitting
	// a job whose only possible outcome is a timeout failure.
	timeout := s.jobTimeout(spec)
	if timeout > 0 {
		if svc, ok := s.meanServiceLocked(); ok {
			if wait := s.backlogWaitLocked(svc); wait+svc > timeout {
				s.deadlineRej++
				return nil, "", "", 0, &UnmeetableDeadlineError{
					Deadline:   timeout,
					Estimate:   wait + svc,
					RetryAfter: clampRetryAfter(wait),
				}
			}
		}
	}
	s.cacheMisses++
	s.nextID++
	flightEvents := 0
	if s.opts.FlightDir != "" {
		flightEvents = s.opts.FlightEvents
	}
	j = newJob("job-"+strconv.FormatUint(s.nextID, 10), corr, spec, r, start, flightEvents)
	j.arm(timeout, start)
	select {
	case s.queue <- j:
	default:
		s.rejected++
		s.cacheMisses-- // never admitted; keep the hit ratio honest
		j.release()
		return nil, "", "", 0, &QueueFullError{RetryAfter: s.retryAfterLocked()}
	}
	s.jobs[j.id] = j
	s.byDigest[r.Digest] = j
	go s.watchCancel(j)
	return j, "", "", len(s.queue), nil
}

// installFinishedLocked installs a pre-finished job for a body fetched from
// a warm tier (disk or a sibling replica): the submission gets a job whose
// result serves immediately, and future submissions of the digest are
// memory hits. Caller holds s.mu.
func (s *Server) installFinishedLocked(corr string, spec JobSpec, r *Resolved, start time.Time, body []byte, now time.Time) *Job {
	s.nextID++
	j := newJob("job-"+strconv.FormatUint(s.nextID, 10), corr, spec, r, start, 0)
	j.finish(body, nil, now)
	s.jobs[j.id] = j
	s.byDigest[r.Digest] = j
	return j
}

// memoryHitLocked classifies a digest hit on an existing job and counts it,
// returning the serving tier (TierMemory for a completed job, TierDedup for
// an in-flight one, "" for no hit). A failed job never serves as a hit (its
// digest claim is dropped on failure; the state check covers the window
// before the drop).
func (s *Server) memoryHitLocked(digest string, start time.Time) (*Job, string) {
	prev := s.byDigest[digest]
	if prev == nil || prev.State() == StateFailed {
		return nil, ""
	}
	if prev.State() == StateDone {
		s.cacheHits++
		s.hitMicros.Observe(uint64(time.Since(start).Microseconds()))
		return prev, TierMemory
	}
	s.deduped++
	return prev, TierDedup
}

// CachedResult answers the sibling-cache probe (GET /v1/cache/{digest}): the
// stored bytes for a digest if this node already has them — a completed job
// in memory, or the persistent store (breaker-gated) — and the tier they
// came from. It never computes and never touches the admission queue, so a
// sibling probing N replicas costs N lookups, not N simulations.
func (s *Server) CachedResult(digest string) (body []byte, tier string, ok bool) {
	s.mu.Lock()
	s.cacheProbes++
	prev := s.byDigest[digest]
	s.mu.Unlock()
	if prev != nil && prev.State() == StateDone {
		s.mu.Lock()
		s.probeHits++
		s.mu.Unlock()
		return prev.Result(), TierMemory, true
	}
	if s.breaker.Allow() {
		if body, ok := s.store.Get(casResultNS, digest); ok {
			s.mu.Lock()
			s.probeHits++
			s.mu.Unlock()
			return body, TierDisk, true
		}
	}
	return nil, "", false
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// ErrDrainTimeout reports that Shutdown's grace period expired and the
// remaining jobs were cancelled (and reported as structured "drain"
// failures) rather than waited out. The shutdown itself still completed
// cleanly — the error is information, not a malfunction.
var ErrDrainTimeout = errors.New("service: drain deadline exceeded; stragglers cancelled")

// Shutdown stops admission (readiness flips immediately), drains every
// queued and in-flight job, and stops the worker pool. It returns nil on a
// clean drain. If ctx expires first, every straggler is cancelled — queued
// jobs fail immediately, running simulations abort at their next
// cancellation poll — and Shutdown waits for the pool to reap them before
// returning ErrDrainTimeout. It never hangs forever on a stuck job.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
	}

	n := s.cancelStragglers()
	s.jlog(slog.LevelWarn, "drain deadline exceeded; stragglers cancelled",
		slog.Int("jobs", n))
	<-drained
	if n > 0 {
		return fmt.Errorf("%w (%d job(s))", ErrDrainTimeout, n)
	}
	return nil
}

// cancelStragglers cancels every non-terminal job with the drain cause and
// reports how many there were.
func (s *Server) cancelStragglers() int {
	s.mu.Lock()
	var live []*Job
	for _, j := range s.jobs {
		switch j.State() {
		case StateQueued, StateRunning:
			live = append(live, j)
		}
	}
	s.mu.Unlock()
	for _, j := range live {
		j.Cancel(errDrainCancelled)
	}
	return len(live)
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// testHookRunning, when set, is called by runJob after the job enters
// StateRunning and before the simulation starts — the seam the tests use to
// hold a worker in flight deterministically. Atomic so a test can clear it
// without synchronizing with every worker.
var testHookRunning atomic.Pointer[func(*Job)]

// watchCancel finishes a job whose cancellation fires while it is still
// queued: the worker that eventually pops it finds it claimed and skips.
// Exits as soon as the job reaches a terminal state by any path.
func (s *Server) watchCancel(j *Job) {
	select {
	case <-j.done:
		return
	case <-j.ctx.Done():
	}
	if !j.claim() {
		// A worker owns the job; the in-run cancellation poll aborts it.
		return
	}
	now := time.Now()
	cause := context.Cause(j.ctx)
	failure := &Failure{
		Kind:  cancelKind(cause),
		Error: cause.Error(),
		Repro: j.res.ReproCommand(),
	}
	j.finish(nil, failure, now)
	j.release()

	s.mu.Lock()
	s.failed++
	if failure.Kind == "timeout" {
		s.timedOut++
	} else {
		s.cancelled++
	}
	// The digest is free again immediately: a resubmission starts fresh
	// instead of attaching to a corpse.
	if s.byDigest[j.res.Digest] == j {
		delete(s.byDigest, j.res.Digest)
	}
	s.mu.Unlock()
	s.jlog(slog.LevelWarn, "job cancelled while queued",
		slog.String("correlation_id", j.corr),
		slog.String("job", j.id),
		slog.String("digest", j.res.Digest),
		slog.String("kind", failure.Kind),
		slog.String("cause", cause.Error()))
}

// runJob executes one job end to end and publishes its terminal state.
func (s *Server) runJob(j *Job) {
	if !j.claim() {
		// Cancelled while queued: watchCancel already finished it; popping
		// it here freed its queue slot.
		return
	}
	wait := j.setRunning(time.Now())
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	s.jlog(slog.LevelInfo, "job started",
		slog.String("correlation_id", j.corr),
		slog.String("job", j.id),
		slog.Float64("queue_wait_ms", ms(wait)))

	if hook := testHookRunning.Load(); hook != nil {
		(*hook)(j)
	}
	body, failure := s.execute(j)
	finished := time.Now()
	j.finish(body, failure, finished)
	j.release()
	stages := j.stageDurations()

	s.mu.Lock()
	s.inFlight--
	if failure != nil {
		s.failed++
		switch failure.Kind {
		case "timeout":
			s.timedOut++
		case "cancelled", "drain":
			s.cancelled++
		}
		// A failed run is not a servable result: drop its digest claim so
		// a resubmission retries instead of replaying the failure forever.
		if s.byDigest[j.res.Digest] == j {
			delete(s.byDigest, j.res.Digest)
		}
		// Deterministic failures feed the poison quarantine; timeouts and
		// cancellations say nothing about a retry and never do.
		if deterministicFailure(failure.Kind) {
			s.notePoisonLocked(j.res.Digest, failure, finished)
		}
	} else {
		s.completed++
		delete(s.poison, j.res.Digest)
	}
	for st := stage(0); st < numStages; st++ {
		s.stageMicros[st].Observe(uint64(stages[st].Microseconds()))
	}
	s.coldMicros.Observe(uint64(finished.Sub(j.submitted).Microseconds()))
	s.mu.Unlock()

	if failure == nil && s.breaker.Allow() {
		// Publish the rendered body so a future process — or this one
		// after a restart — serves the digest from disk. Outside the lock:
		// Put is disk I/O. Gated by the breaker: while the disk is sick,
		// skipping the publish is the degradation, not a loss.
		s.store.Put(casResultNS, j.res.Digest, body)
	}

	if failure != nil {
		s.jlog(slog.LevelError, "job failed",
			slog.String("correlation_id", j.corr),
			slog.String("job", j.id),
			slog.String("digest", j.res.Digest),
			slog.String("kind", failure.Kind),
			slog.Uint64("cycle", failure.Cycle),
			slog.String("error", failure.Error),
			slog.String("flight_record", failure.FlightRecord),
			slog.String("repro", failure.Repro))
		return
	}
	s.jlog(slog.LevelInfo, "job completed",
		slog.String("correlation_id", j.corr),
		slog.String("job", j.id),
		slog.String("digest", j.res.Digest),
		slog.Int("bytes", len(body)),
		slog.Float64("queue_wait_ms", ms(stages[stageQueue])),
		slog.Float64("build_ms", ms(stages[stageBuild])),
		slog.Float64("sim_ms", ms(stages[stageSim])),
		slog.Float64("render_ms", ms(stages[stageRender])),
		slog.Float64("total_ms", ms(finished.Sub(j.submitted))))
}

// ms renders a duration as fractional milliseconds for log attributes.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// execute runs the simulation for j and renders the result document — the
// exact bytes `tlssim -json` prints for the same spec. A structured
// *sim.RunError (and, defensively, any other panic) becomes a Failure; the
// daemon never dies with a job.
func (s *Server) execute(j *Job) (body []byte, failure *Failure) {
	defer func() {
		if p := recover(); p != nil {
			if re, ok := p.(*sim.RunError); ok {
				failure = s.failureFrom(j, re)
				return
			}
			failure = &Failure{
				Kind:  "panic",
				Error: fmt.Sprint(p),
				Repro: j.res.ReproCommand(),
			}
		}
	}()

	if s.chaos != nil {
		if msg, ok := s.chaos.WorkerPanic(); ok {
			// The scheduled worker fault: thrown here so it travels the
			// same recover path an organic worker bug would.
			panic(msg)
		}
	}

	r := j.res
	cfg := r.Cfg
	if r.Inject != nil {
		// Injectors are single-use: arm a fresh schedule per run.
		cfg.Inject = inject.New(*r.Inject)
	}
	if j.ctx != nil {
		// The serving deadline / disconnect signal, polled by the sim loop
		// every CancelPollCycles. context.Cause is nil while the context
		// lives — exactly the contract sim.Config.Cancel wants.
		jctx := j.ctx
		cfg.Cancel = func() error { return context.Cause(jctx) }
	}
	cfg.Telemetry = j.fan
	if j.flight != nil {
		// The flight ring rides alongside the SSE fan-out: same stream,
		// bounded retention, dumped only on a structured failure.
		cfg.Telemetry = telemetry.Multi(j.fan, j.flight)
	}

	t := time.Now()
	if f := s.abortedFailure(j, 0); f != nil {
		return nil, f
	}
	j.enterStage(stageBuild, t)
	built := s.builder.Build(r.Spec, r.Exp.SequentialSoftware())
	t = j.leaveStage(stageBuild, t)
	j.enterStage(stageSim, t)
	res, err := s.simTLS(j, cfg, built, r)
	t = j.leaveStage(stageSim, t)
	if err != nil {
		var re *sim.RunError
		if errors.As(err, &re) {
			return nil, s.failureFrom(j, re)
		}
		return nil, &Failure{Kind: "error", Error: err.Error(), Repro: r.ReproCommand()}
	}
	if f := s.abortedFailure(j, res.Cycles); f != nil {
		return nil, f
	}
	j.enterStage(stageBuild, t)
	seqBuilt := s.builder.Build(r.Spec, true)
	t = j.leaveStage(stageBuild, t)
	j.enterStage(stageSim, t)
	seqCfg := workload.Machine(workload.Sequential)
	seqCfg.Cancel = cfg.Cancel
	seqRes, err := sim.RunE(seqCfg, seqBuilt.Program)
	t = j.leaveStage(stageSim, t)
	if err != nil {
		var re *sim.RunError
		if errors.As(err, &re) {
			return nil, s.failureFrom(j, re)
		}
		return nil, &Failure{Kind: "error", Error: err.Error(), Repro: r.ReproCommand()}
	}

	j.enterStage(stageRender, t)
	run := report.BuildRun(report.RunParams{
		Benchmark:  r.Spec.Bench.String(),
		Experiment: r.Exp.String(),
		CPUs:       cfg.CPUs,
		Subthreads: cfg.TLS.SubthreadsPerEpoch,
		Spacing:    cfg.SubthreadSpacing,
		Epochs:     built.Stats.Epochs,
		Coverage:   built.Stats.Coverage,
	}, res, seqRes)
	var buf bytes.Buffer
	err = report.WriteRun(&buf, run)
	j.leaveStage(stageRender, t)
	if err != nil {
		return nil, &Failure{Kind: "encode", Error: err.Error(), Repro: r.ReproCommand()}
	}
	return buf.Bytes(), nil
}

// failureFrom converts a structured simulation error into the job's Failure
// and, when the flight recorder is armed, dumps the job's telemetry tail.
// A sim-level "cancelled" abandonment is re-labeled by its context cause —
// "timeout" for a deadline, "drain" for shutdown, "cancelled" otherwise —
// so the status tells the submitter what actually happened.
func (s *Server) failureFrom(j *Job, re *sim.RunError) *Failure {
	kind := re.Kind
	if kind == "cancelled" && j.ctx != nil {
		if cause := context.Cause(j.ctx); cause != nil {
			kind = cancelKind(cause)
		}
	}
	return &Failure{
		Kind:         kind,
		Cycle:        re.Cycle,
		Error:        re.Error(),
		Repro:        j.res.ReproCommand(),
		FlightRecord: s.dumpFlight(j),
	}
}

// abortedFailure reports a between-stage cancellation: the job's context
// fired while no simulation was running to poll it (before the build, or
// between the TLS and sequential passes). nil while the job is live.
func (s *Server) abortedFailure(j *Job, cycle uint64) *Failure {
	if j.ctx == nil {
		return nil
	}
	cause := context.Cause(j.ctx)
	if cause == nil {
		return nil
	}
	return &Failure{
		Kind:         cancelKind(cause),
		Cycle:        cycle,
		Error:        cause.Error(),
		Repro:        j.res.ReproCommand(),
		FlightRecord: s.dumpFlight(j),
	}
}

// dumpFlight writes the job's flight-recorder ring as JSONL under
// Options.FlightDir and returns the path ("" when the recorder is disabled
// or the dump fails — the job's failure is never masked by a dump error).
func (s *Server) dumpFlight(j *Job) string {
	if j.flight == nil {
		return ""
	}
	if err := os.MkdirAll(s.opts.FlightDir, 0o755); err != nil {
		s.jlog(slog.LevelWarn, "flight record not written",
			slog.String("correlation_id", j.corr),
			slog.String("job", j.id),
			slog.String("error", err.Error()))
		return ""
	}
	path := filepath.Join(s.opts.FlightDir, j.id+"-"+j.corr+".jsonl")
	f, err := os.Create(path)
	if err == nil {
		err = telemetry.EncodeJSONL(f, j.flight.Events())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		s.jlog(slog.LevelWarn, "flight record not written",
			slog.String("correlation_id", j.corr),
			slog.String("job", j.id),
			slog.String("path", path),
			slog.String("error", err.Error()))
		return ""
	}
	return path
}

// Metrics is the /metrics snapshot: queue pressure, worker occupancy, cache
// effectiveness, job outcomes, and latency distributions (microseconds,
// telemetry histogram schema).
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	InFlight      int     `json:"in_flight"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsRejected  uint64 `json:"jobs_rejected_queue_full"`
	// Deadline/cancellation outcomes and degraded-mode rejections.
	JobsTimedOut         uint64 `json:"jobs_timed_out"`
	JobsCancelled        uint64 `json:"jobs_cancelled"`
	JobsRejectedPoisoned uint64 `json:"jobs_rejected_poisoned"`
	JobsRejectedDeadline uint64 `json:"jobs_rejected_deadline"`
	PoisonedDigests      int    `json:"poisoned_digests"`

	CacheEntries    int     `json:"cache_entries"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheDiskHits   uint64  `json:"cache_disk_hits"`
	CacheRemoteHits uint64  `json:"cache_remote_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	DedupedInFlight uint64  `json:"deduped_in_flight"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`
	// Sibling-cache probes answered by this node (GET /v1/cache/{digest})
	// and how many found a stored result.
	CacheProbes    uint64 `json:"cache_probes"`
	CacheProbeHits uint64 `json:"cache_probe_hits"`

	// Checkpoint tier: machine-state snapshots forked from / probed /
	// published / quarantined, and the executed-job fork-vs-replay split.
	SnapshotHits    uint64 `json:"snapshot_hits"`
	SnapshotMisses  uint64 `json:"snapshot_misses"`
	SnapshotPuts    uint64 `json:"snapshot_puts"`
	SnapshotCorrupt uint64 `json:"snapshot_corrupt"`
	JobsForked      uint64 `json:"jobs_forked"`
	JobsReplayed    uint64 `json:"jobs_replayed"`

	ColdLatencyMicros      telemetry.HistogramSnapshot `json:"cold_latency_micros"`
	HitLatencyMicros       telemetry.HistogramSnapshot `json:"cache_hit_latency_micros"`
	DiskHitLatencyMicros   telemetry.HistogramSnapshot `json:"disk_hit_latency_micros"`
	RemoteHitLatencyMicros telemetry.HistogramSnapshot `json:"remote_hit_latency_micros"`

	// CAS is the persistent store's own view — hits, misses, evictions,
	// quarantined entries, resident set, and disk I/O latencies. nil when
	// the daemon runs without a cache directory.
	CAS *cas.Stats `json:"cas,omitempty"`
	// Breaker is the disk-tier circuit breaker's state and counters. nil
	// without a persistent store.
	Breaker *BreakerStats `json:"cas_breaker,omitempty"`
	// Chaos counts the faults the -chaos schedule has delivered. nil when
	// chaos is off.
	Chaos *chaos.Stats `json:"chaos,omitempty"`

	// Per-stage breakdown of the cold path, observed once per executed job:
	// queue wait, workload build, simulation, result render.
	QueueWaitMicros     telemetry.HistogramSnapshot `json:"queue_wait_micros"`
	BuildLatencyMicros  telemetry.HistogramSnapshot `json:"build_latency_micros"`
	SimLatencyMicros    telemetry.HistogramSnapshot `json:"sim_latency_micros"`
	RenderLatencyMicros telemetry.HistogramSnapshot `json:"render_latency_micros"`
}

// stageSnapshot returns the snapshot of one stage histogram, indexed the
// same way the Prometheus exposition labels them.
func (m *Metrics) stageSnapshot(st stage) telemetry.HistogramSnapshot {
	switch st {
	case stageQueue:
		return m.QueueWaitMicros
	case stageBuild:
		return m.BuildLatencyMicros
	case stageSim:
		return m.SimLatencyMicros
	default:
		return m.RenderLatencyMicros
	}
}

// MetricsSnapshot captures the current serving metrics.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.opts.QueueDepth,
		InFlight:      s.inFlight,

		JobsSubmitted: s.submitted,
		JobsCompleted: s.completed,
		JobsFailed:    s.failed,
		JobsRejected:  s.rejected,

		JobsTimedOut:         s.timedOut,
		JobsCancelled:        s.cancelled,
		JobsRejectedPoisoned: s.poisonRejects,
		JobsRejectedDeadline: s.deadlineRej,
		PoisonedDigests:      len(s.poison),

		CacheEntries:    len(s.byDigest),
		CacheHits:       s.cacheHits,
		CacheDiskHits:   s.diskHits,
		CacheRemoteHits: s.remoteHits,
		CacheMisses:     s.cacheMisses,
		DedupedInFlight: s.deduped,
		CacheProbes:     s.cacheProbes,
		CacheProbeHits:  s.probeHits,

		SnapshotHits:    s.snapHits,
		SnapshotMisses:  s.snapMisses,
		SnapshotPuts:    s.snapPuts,
		SnapshotCorrupt: s.snapCorrupt,
		JobsForked:      s.jobsForked,
		JobsReplayed:    s.jobsReplayed,

		ColdLatencyMicros:      s.coldMicros.Snapshot(),
		HitLatencyMicros:       s.hitMicros.Snapshot(),
		DiskHitLatencyMicros:   s.diskHitMicros.Snapshot(),
		RemoteHitLatencyMicros: s.remoteHitMicros.Snapshot(),

		QueueWaitMicros:     s.stageMicros[stageQueue].Snapshot(),
		BuildLatencyMicros:  s.stageMicros[stageBuild].Snapshot(),
		SimLatencyMicros:    s.stageMicros[stageSim].Snapshot(),
		RenderLatencyMicros: s.stageMicros[stageRender].Snapshot(),
	}
	if s.store != nil {
		st := s.store.Stats()
		m.CAS = &st
		bs := s.breaker.Stats()
		m.Breaker = &bs
	}
	if s.chaos != nil {
		cs := s.chaos.Stats()
		m.Chaos = &cs
	}
	if served := m.CacheHits + m.CacheDiskHits + m.CacheRemoteHits + m.DedupedInFlight + m.CacheMisses; served > 0 {
		m.CacheHitRatio = float64(m.CacheHits+m.CacheDiskHits+m.CacheRemoteHits+m.DedupedInFlight) / float64(served)
	}
	return m
}

// Builds reports how many distinct workload builds the shared cache has
// performed (test instrumentation).
func (s *Server) Builds() int { return s.builder.Builds() }

// BuildStats reports the build cache's tier breakdown: memory hits, disk
// (persistent-store) hits, and real builds.
func (s *Server) BuildStats() workload.BuildStats { return s.builder.Stats() }
