package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"subthreads/internal/cas"
	"subthreads/internal/inject"
	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/telemetry"
	"subthreads/internal/workload"
)

// Options sizes the daemon.
type Options struct {
	// Workers is the simulation worker-pool size; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO admission queue; default 64. A full
	// queue rejects submissions (HTTP 429) instead of buffering without
	// bound — backpressure is the service's overload story.
	QueueDepth int
	// DefaultMaxCycles caps jobs that set no cycle budget of their own
	// (the server-wide deadline); 0 leaves them unbounded.
	DefaultMaxCycles uint64
	// Paranoid forces the protocol invariant auditor on every job.
	Paranoid bool
	// Inject is a server-wide fault-injection spec applied to jobs that
	// carry none — the chaos-mode default for soak testing the daemon.
	Inject string
	// Logger receives the access and job-lifecycle logs. nil — the library
	// default — disables logging entirely: every logging site reduces to
	// one branch, keeping the embedded serving path allocation-clean.
	Logger *slog.Logger
	// FlightDir enables the failure flight recorder: each job keeps a
	// bounded ring of its most recent telemetry events, and a job that
	// fails with a structured *sim.RunError dumps the ring as JSONL into
	// this directory (filename <job>-<correlation>.jsonl, path logged and
	// attached to the failure). "" disables the recorder.
	FlightDir string
	// FlightEvents caps the per-job flight ring; default 4096.
	FlightEvents int
	// Store is the persistent content-addressed tier shared by the build
	// cache and the result cache. With a store, a restarted daemon serves
	// previously-computed results from byte one — no database load, no
	// trace recording, no simulation — and rebuilds nothing whose program
	// is already on disk. nil keeps both caches memory-only.
	Store *cas.Store
}

// casResultNS is the store namespace for rendered result bodies, keyed by
// the resolved job digest — the same digest that keys the in-memory cache.
const casResultNS = "result"

// ErrQueueFull rejects a submission because the admission queue is at
// capacity; the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("service: queue full")

// ErrDraining rejects a submission because the server is shutting down; the
// HTTP layer maps it to 503.
var ErrDraining = errors.New("service: draining")

// BadSpecError wraps a spec validation failure (HTTP 400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }
func (e *BadSpecError) Unwrap() error { return e.Err }

// Server is the simulation service: it admits JobSpecs into a bounded FIFO
// queue, runs them on a fixed worker pool sharing one workload build cache,
// content-addresses every result, and serves job state over HTTP (see
// http.go). Create with New; stop with Shutdown.
type Server struct {
	opts    Options
	builder *workload.Builder
	store   *cas.Store // nil = no persistent tier
	mux     httpMux
	log     *slog.Logger // nil = logging disabled
	started time.Time

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   uint64
	jobs     map[string]*Job
	byDigest map[string]*Job

	// Metrics (guarded by mu). Latencies reuse the telemetry histogram so
	// /metrics speaks the same snapshot schema as the simulator's metrics.
	submitted     uint64
	completed     uint64
	failed        uint64
	cacheHits     uint64 // digest hit on a completed job: result served as-is
	deduped       uint64 // digest hit on a queued/running job: attached, no new work
	diskHits      uint64 // digest hit in the persistent store: served from disk
	cacheMisses   uint64
	rejected      uint64
	inFlight      int
	coldMicros    telemetry.Histogram // submit -> terminal, simulated jobs
	hitMicros     telemetry.Histogram // lookup time of memory cache-hit submissions
	diskHitMicros telemetry.Histogram // lookup time of disk-warm hit submissions
	// stageMicros breaks the cold path down by pipeline segment (queue
	// wait, build, sim, render) for every executed job.
	stageMicros [numStages]telemetry.Histogram
}

// New starts a server: the worker pool is live on return. The caller owns
// shutdown via Shutdown.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	if opts.FlightEvents <= 0 {
		opts.FlightEvents = 4096
	}
	s := &Server{
		opts:     opts,
		builder:  workload.NewBuilder(),
		store:    opts.Store,
		log:      opts.Logger,
		started:  time.Now(),
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     make(map[string]*Job),
		byDigest: make(map[string]*Job),
	}
	s.builder.SetStore(opts.Store)
	s.builder.SetLogger(opts.Logger)
	s.routes()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// normalize overlays the server-wide defaults a spec didn't set itself.
// This happens before Resolve, so the overlays are part of the digest —
// content addresses always name exactly what was simulated.
func (s *Server) normalize(spec JobSpec) JobSpec {
	if s.opts.Paranoid {
		spec.Paranoid = true
	}
	if spec.Inject == "" {
		spec.Inject = s.opts.Inject
	}
	if spec.MaxCycles == 0 {
		spec.MaxCycles = s.opts.DefaultMaxCycles
	}
	return spec
}

// Submit admits a spec. On a digest hit it returns the existing job —
// completed (a cache hit: the stored result serves without re-simulation)
// or still in flight (deduplicated: the submission attaches to the one run)
// — otherwise it enqueues a new job. hit reports whether the job already
// existed. Errors: *BadSpecError, ErrQueueFull, ErrDraining.
func (s *Server) Submit(spec JobSpec) (j *Job, hit bool, err error) {
	return s.SubmitCorrelated(spec, "")
}

// SubmitCorrelated is Submit with an explicit correlation ID: corr tags
// this submission's lifecycle log lines and, when the submission creates a
// new job, becomes the job's correlation ID (stamped on its SSE events and
// flight record). "" generates a fresh ID.
func (s *Server) SubmitCorrelated(spec JobSpec, corr string) (j *Job, hit bool, err error) {
	if corr == "" {
		corr = NewCorrelationID()
	}
	spec = s.normalize(spec)
	start := time.Now()
	r, err := spec.Resolve()
	if err != nil {
		return nil, false, &BadSpecError{Err: err}
	}

	j, hit, disk, queueLen, err := s.admit(spec, r, corr, start)
	switch {
	case err != nil:
		s.jlog(slog.LevelWarn, "job rejected",
			slog.String("correlation_id", corr),
			slog.String("digest", r.Digest),
			slog.String("reason", err.Error()))
	case !hit:
		s.jlog(slog.LevelInfo, "job enqueued",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("digest", r.Digest),
			slog.Int("queue_len", queueLen))
	case disk:
		s.jlog(slog.LevelInfo, "job disk-warm hit",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("digest", r.Digest),
			slog.Int("bytes", len(j.Result())))
	case j.State() == StateDone:
		s.jlog(slog.LevelInfo, "job cache hit",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("job_correlation_id", j.corr),
			slog.String("digest", r.Digest))
	default:
		s.jlog(slog.LevelInfo, "job deduplicated",
			slog.String("correlation_id", corr),
			slog.String("job", j.id),
			slog.String("job_correlation_id", j.corr),
			slog.String("digest", r.Digest))
	}
	return j, hit, err
}

// admit is the tiered core of SubmitCorrelated: memory (an existing job for
// this digest), then the persistent store (a result computed by an earlier
// process — or an earlier life of this one), then a real enqueue. Disk I/O
// happens outside the server lock; cas single-flights concurrent loads of
// one key, and the locked re-check after the probe keeps the first
// installation the winner.
func (s *Server) admit(spec JobSpec, r *Resolved, corr string, start time.Time) (j *Job, hit, disk bool, queueLen int, err error) {
	s.mu.Lock()
	s.submitted++
	if prev, served := s.memoryHitLocked(r.Digest, start); served {
		s.mu.Unlock()
		return prev, true, false, len(s.queue), nil
	}
	s.mu.Unlock()

	if body, ok := s.store.Get(casResultNS, r.Digest); ok {
		now := time.Now()
		s.mu.Lock()
		defer s.mu.Unlock()
		// Another submission may have installed this digest while we were
		// reading the disk; serve that one instead of replacing it.
		if prev, served := s.memoryHitLocked(r.Digest, start); served {
			return prev, true, false, len(s.queue), nil
		}
		s.nextID++
		j = newJob("job-"+strconv.FormatUint(s.nextID, 10), corr, spec, r, start, 0)
		j.finish(body, nil, now)
		s.jobs[j.id] = j
		s.byDigest[r.Digest] = j
		s.diskHits++
		s.diskHitMicros.Observe(uint64(time.Since(start).Microseconds()))
		return j, true, true, len(s.queue), nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	// Re-check: a duplicate submission may have enqueued while we missed
	// the disk.
	if prev, served := s.memoryHitLocked(r.Digest, start); served {
		return prev, true, false, len(s.queue), nil
	}
	if s.draining {
		return nil, false, false, 0, ErrDraining
	}
	s.cacheMisses++
	s.nextID++
	flightEvents := 0
	if s.opts.FlightDir != "" {
		flightEvents = s.opts.FlightEvents
	}
	j = newJob("job-"+strconv.FormatUint(s.nextID, 10), corr, spec, r, start, flightEvents)
	select {
	case s.queue <- j:
	default:
		s.rejected++
		s.cacheMisses-- // never admitted; keep the hit ratio honest
		return nil, false, false, 0, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.byDigest[r.Digest] = j
	return j, false, false, len(s.queue), nil
}

// memoryHitLocked classifies a digest hit on an existing job and counts it.
// A failed job never serves as a hit (its digest claim is dropped on
// failure; the state check covers the window before the drop).
func (s *Server) memoryHitLocked(digest string, start time.Time) (*Job, bool) {
	prev := s.byDigest[digest]
	if prev == nil || prev.State() == StateFailed {
		return nil, false
	}
	if prev.State() == StateDone {
		s.cacheHits++
		s.hitMicros.Observe(uint64(time.Since(start).Microseconds()))
	} else {
		s.deduped++
	}
	return prev, true
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops admission (readiness flips immediately), drains every
// queued and in-flight job, and stops the worker pool. It returns nil once
// drained, or ctx's error if the deadline expires first (workers then
// finish in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// testHookRunning, when set, is called by runJob after the job enters
// StateRunning and before the simulation starts — the seam the tests use to
// hold a worker in flight deterministically. Atomic so a test can clear it
// without synchronizing with every worker.
var testHookRunning atomic.Pointer[func(*Job)]

// runJob executes one job end to end and publishes its terminal state.
func (s *Server) runJob(j *Job) {
	wait := j.setRunning(time.Now())
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()
	s.jlog(slog.LevelInfo, "job started",
		slog.String("correlation_id", j.corr),
		slog.String("job", j.id),
		slog.Float64("queue_wait_ms", ms(wait)))

	if hook := testHookRunning.Load(); hook != nil {
		(*hook)(j)
	}
	body, failure := s.execute(j)
	finished := time.Now()
	j.finish(body, failure, finished)
	stages := j.stageDurations()

	s.mu.Lock()
	s.inFlight--
	if failure != nil {
		s.failed++
		// A failed run is not a servable result: drop its digest claim so
		// a resubmission retries instead of replaying the failure forever.
		if s.byDigest[j.res.Digest] == j {
			delete(s.byDigest, j.res.Digest)
		}
	} else {
		s.completed++
	}
	for st := stage(0); st < numStages; st++ {
		s.stageMicros[st].Observe(uint64(stages[st].Microseconds()))
	}
	s.coldMicros.Observe(uint64(finished.Sub(j.submitted).Microseconds()))
	s.mu.Unlock()

	if failure == nil {
		// Publish the rendered body so a future process — or this one
		// after a restart — serves the digest from disk. Outside the lock:
		// Put is disk I/O.
		s.store.Put(casResultNS, j.res.Digest, body)
	}

	if failure != nil {
		s.jlog(slog.LevelError, "job failed",
			slog.String("correlation_id", j.corr),
			slog.String("job", j.id),
			slog.String("digest", j.res.Digest),
			slog.String("kind", failure.Kind),
			slog.Uint64("cycle", failure.Cycle),
			slog.String("error", failure.Error),
			slog.String("flight_record", failure.FlightRecord),
			slog.String("repro", failure.Repro))
		return
	}
	s.jlog(slog.LevelInfo, "job completed",
		slog.String("correlation_id", j.corr),
		slog.String("job", j.id),
		slog.String("digest", j.res.Digest),
		slog.Int("bytes", len(body)),
		slog.Float64("queue_wait_ms", ms(stages[stageQueue])),
		slog.Float64("build_ms", ms(stages[stageBuild])),
		slog.Float64("sim_ms", ms(stages[stageSim])),
		slog.Float64("render_ms", ms(stages[stageRender])),
		slog.Float64("total_ms", ms(finished.Sub(j.submitted))))
}

// ms renders a duration as fractional milliseconds for log attributes.
func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }

// execute runs the simulation for j and renders the result document — the
// exact bytes `tlssim -json` prints for the same spec. A structured
// *sim.RunError (and, defensively, any other panic) becomes a Failure; the
// daemon never dies with a job.
func (s *Server) execute(j *Job) (body []byte, failure *Failure) {
	defer func() {
		if p := recover(); p != nil {
			if re, ok := p.(*sim.RunError); ok {
				failure = s.failureFrom(j, re)
				return
			}
			failure = &Failure{
				Kind:  "panic",
				Error: fmt.Sprint(p),
				Repro: j.res.ReproCommand(),
			}
		}
	}()

	r := j.res
	cfg := r.Cfg
	if r.Inject != nil {
		// Injectors are single-use: arm a fresh schedule per run.
		cfg.Inject = inject.New(*r.Inject)
	}
	cfg.Telemetry = j.fan
	if j.flight != nil {
		// The flight ring rides alongside the SSE fan-out: same stream,
		// bounded retention, dumped only on a structured failure.
		cfg.Telemetry = telemetry.Multi(j.fan, j.flight)
	}

	t := time.Now()
	j.enterStage(stageBuild, t)
	built := s.builder.Build(r.Spec, r.Exp.SequentialSoftware())
	t = j.leaveStage(stageBuild, t)
	j.enterStage(stageSim, t)
	res, err := sim.RunE(cfg, built.Program)
	t = j.leaveStage(stageSim, t)
	if err != nil {
		var re *sim.RunError
		if errors.As(err, &re) {
			return nil, s.failureFrom(j, re)
		}
		return nil, &Failure{Kind: "error", Error: err.Error(), Repro: r.ReproCommand()}
	}
	j.enterStage(stageBuild, t)
	seqBuilt := s.builder.Build(r.Spec, true)
	t = j.leaveStage(stageBuild, t)
	j.enterStage(stageSim, t)
	seqRes := sim.Run(workload.Machine(workload.Sequential), seqBuilt.Program)
	t = j.leaveStage(stageSim, t)

	j.enterStage(stageRender, t)
	run := report.BuildRun(report.RunParams{
		Benchmark:  r.Spec.Bench.String(),
		Experiment: r.Exp.String(),
		CPUs:       cfg.CPUs,
		Subthreads: cfg.TLS.SubthreadsPerEpoch,
		Spacing:    cfg.SubthreadSpacing,
		Epochs:     built.Stats.Epochs,
		Coverage:   built.Stats.Coverage,
	}, res, seqRes)
	var buf bytes.Buffer
	err = report.WriteRun(&buf, run)
	j.leaveStage(stageRender, t)
	if err != nil {
		return nil, &Failure{Kind: "encode", Error: err.Error(), Repro: r.ReproCommand()}
	}
	return buf.Bytes(), nil
}

// failureFrom converts a structured simulation error into the job's Failure
// and, when the flight recorder is armed, dumps the job's telemetry tail.
func (s *Server) failureFrom(j *Job, re *sim.RunError) *Failure {
	return &Failure{
		Kind:         re.Kind,
		Cycle:        re.Cycle,
		Error:        re.Error(),
		Repro:        j.res.ReproCommand(),
		FlightRecord: s.dumpFlight(j),
	}
}

// dumpFlight writes the job's flight-recorder ring as JSONL under
// Options.FlightDir and returns the path ("" when the recorder is disabled
// or the dump fails — the job's failure is never masked by a dump error).
func (s *Server) dumpFlight(j *Job) string {
	if j.flight == nil {
		return ""
	}
	if err := os.MkdirAll(s.opts.FlightDir, 0o755); err != nil {
		s.jlog(slog.LevelWarn, "flight record not written",
			slog.String("correlation_id", j.corr),
			slog.String("job", j.id),
			slog.String("error", err.Error()))
		return ""
	}
	path := filepath.Join(s.opts.FlightDir, j.id+"-"+j.corr+".jsonl")
	f, err := os.Create(path)
	if err == nil {
		err = telemetry.EncodeJSONL(f, j.flight.Events())
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		s.jlog(slog.LevelWarn, "flight record not written",
			slog.String("correlation_id", j.corr),
			slog.String("job", j.id),
			slog.String("path", path),
			slog.String("error", err.Error()))
		return ""
	}
	return path
}

// Metrics is the /metrics snapshot: queue pressure, worker occupancy, cache
// effectiveness, job outcomes, and latency distributions (microseconds,
// telemetry histogram schema).
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	InFlight      int     `json:"in_flight"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsRejected  uint64 `json:"jobs_rejected_queue_full"`

	CacheEntries    int     `json:"cache_entries"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheDiskHits   uint64  `json:"cache_disk_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	DedupedInFlight uint64  `json:"deduped_in_flight"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`

	ColdLatencyMicros    telemetry.HistogramSnapshot `json:"cold_latency_micros"`
	HitLatencyMicros     telemetry.HistogramSnapshot `json:"cache_hit_latency_micros"`
	DiskHitLatencyMicros telemetry.HistogramSnapshot `json:"disk_hit_latency_micros"`

	// CAS is the persistent store's own view — hits, misses, evictions,
	// quarantined entries, resident set, and disk I/O latencies. nil when
	// the daemon runs without a cache directory.
	CAS *cas.Stats `json:"cas,omitempty"`

	// Per-stage breakdown of the cold path, observed once per executed job:
	// queue wait, workload build, simulation, result render.
	QueueWaitMicros     telemetry.HistogramSnapshot `json:"queue_wait_micros"`
	BuildLatencyMicros  telemetry.HistogramSnapshot `json:"build_latency_micros"`
	SimLatencyMicros    telemetry.HistogramSnapshot `json:"sim_latency_micros"`
	RenderLatencyMicros telemetry.HistogramSnapshot `json:"render_latency_micros"`
}

// stageSnapshot returns the snapshot of one stage histogram, indexed the
// same way the Prometheus exposition labels them.
func (m *Metrics) stageSnapshot(st stage) telemetry.HistogramSnapshot {
	switch st {
	case stageQueue:
		return m.QueueWaitMicros
	case stageBuild:
		return m.BuildLatencyMicros
	case stageSim:
		return m.SimLatencyMicros
	default:
		return m.RenderLatencyMicros
	}
}

// MetricsSnapshot captures the current serving metrics.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.opts.QueueDepth,
		InFlight:      s.inFlight,

		JobsSubmitted: s.submitted,
		JobsCompleted: s.completed,
		JobsFailed:    s.failed,
		JobsRejected:  s.rejected,

		CacheEntries:    len(s.byDigest),
		CacheHits:       s.cacheHits,
		CacheDiskHits:   s.diskHits,
		CacheMisses:     s.cacheMisses,
		DedupedInFlight: s.deduped,

		ColdLatencyMicros:    s.coldMicros.Snapshot(),
		HitLatencyMicros:     s.hitMicros.Snapshot(),
		DiskHitLatencyMicros: s.diskHitMicros.Snapshot(),

		QueueWaitMicros:     s.stageMicros[stageQueue].Snapshot(),
		BuildLatencyMicros:  s.stageMicros[stageBuild].Snapshot(),
		SimLatencyMicros:    s.stageMicros[stageSim].Snapshot(),
		RenderLatencyMicros: s.stageMicros[stageRender].Snapshot(),
	}
	if s.store != nil {
		st := s.store.Stats()
		m.CAS = &st
	}
	if served := m.CacheHits + m.CacheDiskHits + m.DedupedInFlight + m.CacheMisses; served > 0 {
		m.CacheHitRatio = float64(m.CacheHits+m.CacheDiskHits+m.DedupedInFlight) / float64(served)
	}
	return m
}

// Builds reports how many distinct workload builds the shared cache has
// performed (test instrumentation).
func (s *Server) Builds() int { return s.builder.Builds() }

// BuildStats reports the build cache's tier breakdown: memory hits, disk
// (persistent-store) hits, and real builds.
func (s *Server) BuildStats() workload.BuildStats { return s.builder.Stats() }
