package service

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"subthreads/internal/inject"
	"subthreads/internal/report"
	"subthreads/internal/sim"
	"subthreads/internal/telemetry"
	"subthreads/internal/workload"
)

// Options sizes the daemon.
type Options struct {
	// Workers is the simulation worker-pool size; default GOMAXPROCS.
	Workers int
	// QueueDepth bounds the FIFO admission queue; default 64. A full
	// queue rejects submissions (HTTP 429) instead of buffering without
	// bound — backpressure is the service's overload story.
	QueueDepth int
	// DefaultMaxCycles caps jobs that set no cycle budget of their own
	// (the server-wide deadline); 0 leaves them unbounded.
	DefaultMaxCycles uint64
	// Paranoid forces the protocol invariant auditor on every job.
	Paranoid bool
	// Inject is a server-wide fault-injection spec applied to jobs that
	// carry none — the chaos-mode default for soak testing the daemon.
	Inject string
}

// ErrQueueFull rejects a submission because the admission queue is at
// capacity; the HTTP layer maps it to 429 + Retry-After.
var ErrQueueFull = errors.New("service: queue full")

// ErrDraining rejects a submission because the server is shutting down; the
// HTTP layer maps it to 503.
var ErrDraining = errors.New("service: draining")

// BadSpecError wraps a spec validation failure (HTTP 400).
type BadSpecError struct{ Err error }

func (e *BadSpecError) Error() string { return e.Err.Error() }
func (e *BadSpecError) Unwrap() error { return e.Err }

// Server is the simulation service: it admits JobSpecs into a bounded FIFO
// queue, runs them on a fixed worker pool sharing one workload build cache,
// content-addresses every result, and serves job state over HTTP (see
// http.go). Create with New; stop with Shutdown.
type Server struct {
	opts    Options
	builder *workload.Builder
	mux     httpMux
	started time.Time

	queue chan *Job
	wg    sync.WaitGroup

	mu       sync.Mutex
	draining bool
	nextID   uint64
	jobs     map[string]*Job
	byDigest map[string]*Job

	// Metrics (guarded by mu). Latencies reuse the telemetry histogram so
	// /metrics speaks the same snapshot schema as the simulator's metrics.
	submitted   uint64
	completed   uint64
	failed      uint64
	cacheHits   uint64 // digest hit on a completed job: result served as-is
	deduped     uint64 // digest hit on a queued/running job: attached, no new work
	cacheMisses uint64
	rejected    uint64
	inFlight    int
	coldMicros  telemetry.Histogram // submit -> terminal, simulated jobs
	hitMicros   telemetry.Histogram // lookup time of cache-hit submissions
}

// New starts a server: the worker pool is live on return. The caller owns
// shutdown via Shutdown.
func New(opts Options) *Server {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 64
	}
	s := &Server{
		opts:     opts,
		builder:  workload.NewBuilder(),
		started:  time.Now(),
		queue:    make(chan *Job, opts.QueueDepth),
		jobs:     make(map[string]*Job),
		byDigest: make(map[string]*Job),
	}
	s.routes()
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// normalize overlays the server-wide defaults a spec didn't set itself.
// This happens before Resolve, so the overlays are part of the digest —
// content addresses always name exactly what was simulated.
func (s *Server) normalize(spec JobSpec) JobSpec {
	if s.opts.Paranoid {
		spec.Paranoid = true
	}
	if spec.Inject == "" {
		spec.Inject = s.opts.Inject
	}
	if spec.MaxCycles == 0 {
		spec.MaxCycles = s.opts.DefaultMaxCycles
	}
	return spec
}

// Submit admits a spec. On a digest hit it returns the existing job —
// completed (a cache hit: the stored result serves without re-simulation)
// or still in flight (deduplicated: the submission attaches to the one run)
// — otherwise it enqueues a new job. hit reports whether the job already
// existed. Errors: *BadSpecError, ErrQueueFull, ErrDraining.
func (s *Server) Submit(spec JobSpec) (j *Job, hit bool, err error) {
	spec = s.normalize(spec)
	start := time.Now()
	r, err := spec.Resolve()
	if err != nil {
		return nil, false, &BadSpecError{Err: err}
	}

	s.mu.Lock()
	defer s.mu.Unlock()
	s.submitted++
	// A failed job never serves as a hit (its digest claim is dropped on
	// failure; the state check covers the window before the drop).
	if prev := s.byDigest[r.Digest]; prev != nil && prev.State() != StateFailed {
		if prev.State() == StateDone {
			s.cacheHits++
			s.hitMicros.Observe(uint64(time.Since(start).Microseconds()))
		} else {
			s.deduped++
		}
		return prev, true, nil
	}
	if s.draining {
		return nil, false, ErrDraining
	}
	s.cacheMisses++
	s.nextID++
	j = newJob("job-"+strconv.FormatUint(s.nextID, 10), spec, r, start)
	select {
	case s.queue <- j:
	default:
		s.rejected++
		s.cacheMisses-- // never admitted; keep the hit ratio honest
		return nil, false, ErrQueueFull
	}
	s.jobs[j.id] = j
	s.byDigest[r.Digest] = j
	return j, false, nil
}

// Job looks a job up by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Draining reports whether admission has stopped.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown stops admission (readiness flips immediately), drains every
// queued and in-flight job, and stops the worker pool. It returns nil once
// drained, or ctx's error if the deadline expires first (workers then
// finish in the background).
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.draining {
		s.draining = true
		close(s.queue)
	}
	s.mu.Unlock()

	drained := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(drained)
	}()
	select {
	case <-drained:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// worker drains the queue until Shutdown closes it.
func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		s.runJob(j)
	}
}

// testHookRunning, when set, is called by runJob after the job enters
// StateRunning and before the simulation starts — the seam the tests use to
// hold a worker in flight deterministically. Atomic so a test can clear it
// without synchronizing with every worker.
var testHookRunning atomic.Pointer[func(*Job)]

// runJob executes one job end to end and publishes its terminal state.
func (s *Server) runJob(j *Job) {
	j.setRunning()
	s.mu.Lock()
	s.inFlight++
	s.mu.Unlock()

	if hook := testHookRunning.Load(); hook != nil {
		(*hook)(j)
	}
	body, failure := s.execute(j)
	finished := time.Now()
	j.finish(body, failure, finished)

	s.mu.Lock()
	s.inFlight--
	if failure != nil {
		s.failed++
		// A failed run is not a servable result: drop its digest claim so
		// a resubmission retries instead of replaying the failure forever.
		if s.byDigest[j.res.Digest] == j {
			delete(s.byDigest, j.res.Digest)
		}
	} else {
		s.completed++
	}
	s.coldMicros.Observe(uint64(finished.Sub(j.submitted).Microseconds()))
	s.mu.Unlock()
}

// execute runs the simulation for j and renders the result document — the
// exact bytes `tlssim -json` prints for the same spec. A structured
// *sim.RunError (and, defensively, any other panic) becomes a Failure; the
// daemon never dies with a job.
func (s *Server) execute(j *Job) (body []byte, failure *Failure) {
	defer func() {
		if p := recover(); p != nil {
			if re, ok := p.(*sim.RunError); ok {
				failure = s.failureFrom(j, re)
				return
			}
			failure = &Failure{
				Kind:  "panic",
				Error: fmt.Sprint(p),
				Repro: j.res.ReproCommand(),
			}
		}
	}()

	r := j.res
	cfg := r.Cfg
	if r.Inject != nil {
		// Injectors are single-use: arm a fresh schedule per run.
		cfg.Inject = inject.New(*r.Inject)
	}
	cfg.Telemetry = j.fan

	built := s.builder.Build(r.Spec, r.Exp.SequentialSoftware())
	res, err := sim.RunE(cfg, built.Program)
	if err != nil {
		var re *sim.RunError
		if errors.As(err, &re) {
			return nil, s.failureFrom(j, re)
		}
		return nil, &Failure{Kind: "error", Error: err.Error(), Repro: r.ReproCommand()}
	}
	seqBuilt := s.builder.Build(r.Spec, true)
	seqRes := sim.Run(workload.Machine(workload.Sequential), seqBuilt.Program)

	run := report.BuildRun(report.RunParams{
		Benchmark:  r.Spec.Bench.String(),
		Experiment: r.Exp.String(),
		CPUs:       cfg.CPUs,
		Subthreads: cfg.TLS.SubthreadsPerEpoch,
		Spacing:    cfg.SubthreadSpacing,
		Epochs:     built.Stats.Epochs,
		Coverage:   built.Stats.Coverage,
	}, res, seqRes)
	var buf bytes.Buffer
	if err := report.WriteRun(&buf, run); err != nil {
		return nil, &Failure{Kind: "encode", Error: err.Error(), Repro: r.ReproCommand()}
	}
	return buf.Bytes(), nil
}

func (s *Server) failureFrom(j *Job, re *sim.RunError) *Failure {
	return &Failure{
		Kind:  re.Kind,
		Cycle: re.Cycle,
		Error: re.Error(),
		Repro: j.res.ReproCommand(),
	}
}

// Metrics is the /metrics snapshot: queue pressure, worker occupancy, cache
// effectiveness, job outcomes, and latency distributions (microseconds,
// telemetry histogram schema).
type Metrics struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Workers       int     `json:"workers"`
	QueueDepth    int     `json:"queue_depth"`
	QueueCapacity int     `json:"queue_capacity"`
	InFlight      int     `json:"in_flight"`

	JobsSubmitted uint64 `json:"jobs_submitted"`
	JobsCompleted uint64 `json:"jobs_completed"`
	JobsFailed    uint64 `json:"jobs_failed"`
	JobsRejected  uint64 `json:"jobs_rejected_queue_full"`

	CacheEntries    int     `json:"cache_entries"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	DedupedInFlight uint64  `json:"deduped_in_flight"`
	CacheHitRatio   float64 `json:"cache_hit_ratio"`

	ColdLatencyMicros telemetry.HistogramSnapshot `json:"cold_latency_micros"`
	HitLatencyMicros  telemetry.HistogramSnapshot `json:"cache_hit_latency_micros"`
}

// MetricsSnapshot captures the current serving metrics.
func (s *Server) MetricsSnapshot() Metrics {
	s.mu.Lock()
	defer s.mu.Unlock()
	m := Metrics{
		UptimeSeconds: time.Since(s.started).Seconds(),
		Workers:       s.opts.Workers,
		QueueDepth:    len(s.queue),
		QueueCapacity: s.opts.QueueDepth,
		InFlight:      s.inFlight,

		JobsSubmitted: s.submitted,
		JobsCompleted: s.completed,
		JobsFailed:    s.failed,
		JobsRejected:  s.rejected,

		CacheEntries:    len(s.byDigest),
		CacheHits:       s.cacheHits,
		CacheMisses:     s.cacheMisses,
		DedupedInFlight: s.deduped,

		ColdLatencyMicros: s.coldMicros.Snapshot(),
		HitLatencyMicros:  s.hitMicros.Snapshot(),
	}
	if served := m.CacheHits + m.DedupedInFlight + m.CacheMisses; served > 0 {
		m.CacheHitRatio = float64(m.CacheHits+m.DedupedInFlight) / float64(served)
	}
	return m
}

// Builds reports how many distinct workload builds the shared cache has
// performed (test instrumentation).
func (s *Server) Builds() int { return s.builder.Builds() }
