package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"log/slog"
	"strconv"
	"sync/atomic"
)

// CorrelationHeader is the HTTP request/response header carrying the
// correlation ID. A client may supply one (any log-safe token up to 128
// bytes); otherwise the daemon generates one. The ID is echoed on every
// response, stamped on every SSE event of the job the request created, and
// attached to every access and job-lifecycle log line — it never appears in
// a result body, which stays byte-identical to `tlssim -json`.
const CorrelationHeader = "X-Correlation-ID"

// corrFallback numbers correlation IDs if crypto/rand ever fails.
var corrFallback atomic.Uint64

// NewCorrelationID returns a fresh 16-hex-character correlation ID.
func NewCorrelationID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "corr-" + strconv.FormatUint(corrFallback.Add(1), 10)
	}
	return hex.EncodeToString(b[:])
}

// sanitizeCorrelation returns the client-supplied ID if it is log-safe —
// non-empty, at most 128 bytes, and limited to [A-Za-z0-9._:-] so a header
// can't inject log lines or path traversal into flight-record names — and
// "" otherwise (the caller then generates one).
func sanitizeCorrelation(s string) string {
	if len(s) == 0 || len(s) > 128 {
		return ""
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case 'a' <= c && c <= 'z', 'A' <= c && c <= 'Z', '0' <= c && c <= '9':
		case c == '-' || c == '_' || c == '.' || c == ':':
		default:
			return ""
		}
	}
	return s
}

// SanitizeCorrelation applies the daemon's correlation-ID rules for other
// layers (the cluster router validates a client-supplied ID with the same
// rules before logging or forwarding it): the ID if log-safe, "" otherwise.
func SanitizeCorrelation(s string) string { return sanitizeCorrelation(s) }

// corrKey keys the correlation ID in a request context.
type corrKey struct{}

func withCorrelation(ctx context.Context, corr string) context.Context {
	return context.WithValue(ctx, corrKey{}, corr)
}

// correlationFrom returns the request's correlation ID ("" outside the
// observability middleware).
func correlationFrom(ctx context.Context) string {
	corr, _ := ctx.Value(corrKey{}).(string)
	return corr
}

// jlog emits one job-lifecycle log line. A nil logger — the library default,
// Options.Logger unset — reduces every logging site to this one branch, so
// the disabled-observability path stays allocation-free.
func (s *Server) jlog(level slog.Level, msg string, attrs ...slog.Attr) {
	if s.log == nil {
		return
	}
	s.log.LogAttrs(context.Background(), level, msg, attrs...)
}
