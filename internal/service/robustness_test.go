package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// holdWorkers installs the running-hook so every worker parks until release
// is closed, and returns (started, release). started receives one signal per
// job that reaches StateRunning.
func holdWorkers(t *testing.T) (started chan string, release chan struct{}) {
	t.Helper()
	started = make(chan string, 16)
	release = make(chan struct{})
	hook := func(j *Job) {
		started <- j.ID()
		<-release
	}
	testHookRunning.Store(&hook)
	t.Cleanup(func() {
		testHookRunning.Store(nil)
		select {
		case <-release:
		default:
			close(release)
		}
	})
	return started, release
}

// failingSpec deterministically fails: a 10-cycle budget cannot complete any
// transaction, so the run ends in a structured "max-cycles" error.
func failingSpec() JobSpec {
	warmup := 0
	return JobSpec{Benchmark: "NEW ORDER", Txns: 1, Warmup: &warmup, MaxCycles: 10}
}

// A job with a tiny end-to-end deadline must fail with kind "timeout" and
// release its worker, queue slot, and digest claim — not hang, not report a
// generic error.
func TestJobTimeoutProducesStructuredFailure(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	started, release := holdWorkers(t)

	spec := tinySpec("NEW ORDER")
	spec.TimeoutMS = 30
	resp := postJob(t, ts, spec)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit status = %d, want 202", resp.StatusCode)
	}
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	<-started // the worker holds the job past its deadline

	// The deadline fires while the job is held; once released, the worker
	// must notice before (or instead of) simulating and fail it promptly.
	time.Sleep(50 * time.Millisecond)
	close(release)
	final := waitDone(t, ts, st.ID)
	if final.State != StateFailed || final.Failure == nil {
		t.Fatalf("state = %s, failure = %+v; want failed with a failure", final.State, final.Failure)
	}
	if final.Failure.Kind != "timeout" {
		t.Errorf("failure kind = %q, want timeout", final.Failure.Kind)
	}
	if final.Failure.Repro == "" {
		t.Errorf("timeout failure carries no repro command")
	}

	// The digest is free again: a resubmission without the deadline runs
	// fresh rather than attaching to the corpse.
	testHookRunning.Store(nil)
	spec2 := tinySpec("NEW ORDER")
	resp2 := postJob(t, ts, spec2)
	st2 := decodeStatus(t, resp2.Body)
	resp2.Body.Close()
	if st2.ID == st.ID {
		t.Fatalf("resubmission attached to the timed-out job %s", st.ID)
	}
	if got := waitDone(t, ts, st2.ID); got.State != StateDone {
		t.Fatalf("resubmitted job state = %s, want done", got.State)
	}

	m := s.MetricsSnapshot()
	if m.JobsTimedOut == 0 {
		t.Errorf("JobsTimedOut = 0 after a timeout failure")
	}
}

// DELETE /v1/jobs/{id} on a running job aborts it within the cancellation
// poll and reports kind "cancelled"; a second DELETE is a 409.
func TestCancelRunningJob(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	started, release := holdWorkers(t)

	resp := postJob(t, ts, tinySpec("NEW ORDER"))
	st := decodeStatus(t, resp.Body)
	resp.Body.Close()
	<-started

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE: %v", err)
	}
	dresp.Body.Close()
	if dresp.StatusCode != http.StatusAccepted {
		t.Fatalf("DELETE status = %d, want 202", dresp.StatusCode)
	}

	close(release)
	final := waitDone(t, ts, st.ID)
	if final.State != StateFailed || final.Failure == nil || final.Failure.Kind != "cancelled" {
		t.Fatalf("after DELETE: state=%s failure=%+v; want failed/cancelled", final.State, final.Failure)
	}

	// Cancelling a terminal job is a conflict, not a second cancellation.
	dresp2, err := http.DefaultClient.Do(req.Clone(context.Background()))
	if err != nil {
		t.Fatalf("second DELETE: %v", err)
	}
	dresp2.Body.Close()
	if dresp2.StatusCode != http.StatusConflict {
		t.Errorf("DELETE on terminal job = %d, want 409", dresp2.StatusCode)
	}
	if m := s.MetricsSnapshot(); m.JobsCancelled == 0 {
		t.Errorf("JobsCancelled = 0 after an explicit cancel")
	}
}

// Cancelling a job that is still queued must finish it without a worker ever
// touching it, and must not leak its queue slot.
func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	started, release := holdWorkers(t)

	// Occupy the only worker, then queue a second, distinct job.
	resp := postJob(t, ts, tinySpec("NEW ORDER"))
	holder := decodeStatus(t, resp.Body)
	resp.Body.Close()
	<-started

	queuedSpec := tinySpec("PAYMENT")
	resp2 := postJob(t, ts, queuedSpec)
	queued := decodeStatus(t, resp2.Body)
	resp2.Body.Close()
	if queued.State != StateQueued {
		t.Fatalf("second job state = %s, want queued", queued.State)
	}

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil)
	dresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("DELETE queued: %v", err)
	}
	dresp.Body.Close()

	// The cancellation lands without the worker's help — it is still held.
	final := waitDone(t, ts, queued.ID)
	if final.State != StateFailed || final.Failure == nil || final.Failure.Kind != "cancelled" {
		t.Fatalf("queued cancel: state=%s failure=%+v", final.State, final.Failure)
	}

	close(release)
	if got := waitDone(t, ts, holder.ID); got.State != StateDone {
		t.Fatalf("held job state = %s, want done", got.State)
	}

	// The cancelled job's slot is free: the queue accepts new work again.
	testHookRunning.Store(nil)
	resp3 := postJob(t, ts, tinySpec("PAYMENT"))
	st3 := decodeStatus(t, resp3.Body)
	resp3.Body.Close()
	if got := waitDone(t, ts, st3.ID); got.State != StateDone {
		t.Fatalf("post-cancel resubmission state = %s, want done", got.State)
	}
}

// A ?wait=1 submitter that disconnects while it is the only audience cancels
// the job; an async (detached) submission survives its submitter.
func TestWaiterDisconnectCancelsUnwatchedJob(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4})
	started, release := holdWorkers(t)

	spec := tinySpec("NEW ORDER")
	b, _ := json.Marshal(spec)
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodPost,
		ts.URL+"/v1/jobs?wait=1", bytes.NewReader(b))
	req.Header.Set("Content-Type", "application/json")
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if resp != nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	id := <-started // the job is running, held by the hook
	cancel()        // the only watcher walks away
	if err := <-errCh; err == nil {
		t.Fatalf("expected the aborted wait request to error")
	}
	close(release)

	final := waitDone(t, ts, id)
	if final.State != StateFailed || final.Failure == nil || final.Failure.Kind != "cancelled" {
		t.Fatalf("abandoned job: state=%s failure=%+v; want failed/cancelled", final.State, final.Failure)
	}
}

// ?wait=1 blocks to the terminal state: 200 with the result body on success,
// 410 with the structured failure on a failed run.
func TestWaitServesTerminalState(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2, QueueDepth: 8})

	spec := tinySpec("NEW ORDER")
	b, _ := json.Marshal(spec)
	resp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST wait=1: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait=1 success status = %d, want 200", resp.StatusCode)
	}
	var got bytes.Buffer
	got.ReadFrom(resp.Body)
	if want := renderExpected(t, spec); !bytes.Equal(got.Bytes(), want) {
		t.Fatalf("wait=1 body differs from tlssim rendering (%d vs %d bytes)", got.Len(), len(want))
	}

	fb, _ := json.Marshal(failingSpec())
	fresp, err := http.Post(ts.URL+"/v1/jobs?wait=1", "application/json", bytes.NewReader(fb))
	if err != nil {
		t.Fatalf("POST failing wait=1: %v", err)
	}
	defer fresp.Body.Close()
	if fresp.StatusCode != http.StatusGone {
		t.Fatalf("wait=1 failure status = %d, want 410", fresp.StatusCode)
	}
	st := decodeStatus(t, fresp.Body)
	if st.Failure == nil || st.Failure.Kind != "max-cycles" {
		t.Fatalf("wait=1 failure = %+v, want kind max-cycles", st.Failure)
	}
}

// Repeated deterministic failures quarantine the digest: the Nth submission
// is rejected 422 with a Retry-After, without burning a worker; a timeout
// never contributes to the quarantine.
func TestPoisonQuarantine(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 4, PoisonThreshold: 2, PoisonTTL: time.Minute})

	spec := failingSpec()
	for i := 0; i < 2; i++ {
		resp := postJob(t, ts, spec)
		st := decodeStatus(t, resp.Body)
		resp.Body.Close()
		final := waitDone(t, ts, st.ID)
		if final.State != StateFailed || final.Failure.Kind != "max-cycles" {
			t.Fatalf("run %d: state=%s failure=%+v", i, final.State, final.Failure)
		}
	}

	resp := postJob(t, ts, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("poisoned submission status = %d, want 422", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("poisoned rejection has no Retry-After")
	}
	m := s.MetricsSnapshot()
	if m.JobsRejectedPoisoned != 1 || m.PoisonedDigests != 1 {
		t.Errorf("poison metrics = rejected %d / quarantined %d, want 1 / 1",
			m.JobsRejectedPoisoned, m.PoisonedDigests)
	}

	// A healthy digest is unaffected.
	okResp := postJob(t, ts, tinySpec("NEW ORDER"))
	st := decodeStatus(t, okResp.Body)
	okResp.Body.Close()
	if got := waitDone(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("healthy digest state = %s, want done", got.State)
	}
}

func TestTimeoutFailuresNeverPoison(t *testing.T) {
	s := New(Options{Workers: 1, PoisonThreshold: 1, PoisonTTL: time.Minute})
	defer s.Shutdown(context.Background())
	now := time.Now()
	s.mu.Lock()
	for _, kind := range []string{"timeout", "cancelled", "drain"} {
		if deterministicFailure(kind) {
			t.Errorf("%s counted as deterministic", kind)
		}
		// Even threshold-1 config must not quarantine on these kinds; the
		// runJob path gates on deterministicFailure before notePoisonLocked.
		if deterministicFailure(kind) {
			s.notePoisonLocked("d", &Failure{Kind: kind}, now)
		}
	}
	if pe := s.poisonedLocked("d", now); pe != nil {
		t.Errorf("non-deterministic kinds quarantined the digest: %v", pe)
	}
	s.mu.Unlock()
}

// Deadline-aware admission: once the server has observed service latencies,
// a deadline smaller than the provable backlog wait is rejected up front
// with a computed Retry-After; generous deadlines still pass.
func TestDeadlineAwareAdmission(t *testing.T) {
	s, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 8})

	// Teach the estimator an implausibly slow pipeline: 2s per job.
	s.mu.Lock()
	s.stageMicros[stageBuild].Observe(500_000)
	s.stageMicros[stageSim].Observe(1_000_000)
	s.stageMicros[stageRender].Observe(500_000)
	s.inFlight = 1 // a fake straggler ahead of the new submission
	s.mu.Unlock()

	spec := tinySpec("NEW ORDER")
	spec.TimeoutMS = 100 // < 1 backlog slot x 2s mean service
	resp := postJob(t, ts, spec)
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("unmeetable deadline status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Errorf("unmeetable-deadline rejection has no Retry-After")
	}
	if m := s.MetricsSnapshot(); m.JobsRejectedDeadline != 1 {
		t.Errorf("JobsRejectedDeadline = %d, want 1", m.JobsRejectedDeadline)
	}

	s.mu.Lock()
	s.inFlight = 0
	s.mu.Unlock()
	spec.TimeoutMS = 60_000
	resp2 := postJob(t, ts, spec)
	st := decodeStatus(t, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusAccepted {
		t.Fatalf("feasible deadline status = %d, want 202", resp2.StatusCode)
	}
	if got := waitDone(t, ts, st.ID); got.State != StateDone {
		t.Fatalf("feasible-deadline job state = %s, want done", got.State)
	}
}

func TestJobTimeoutResolution(t *testing.T) {
	s := New(Options{Workers: 1, JobTimeout: time.Second})
	defer s.Shutdown(context.Background())
	for _, c := range []struct {
		ms   uint64
		want time.Duration
	}{
		{0, time.Second},              // inherit the server default
		{1, minJobTimeout},            // floored
		{100, 100 * time.Millisecond}, // honored
		{5_000, time.Second},          // ceilinged by -job-timeout
	} {
		if got := s.jobTimeout(JobSpec{TimeoutMS: c.ms}); got != c.want {
			t.Errorf("jobTimeout(%dms) = %v, want %v", c.ms, got, c.want)
		}
	}

	unlimited := New(Options{Workers: 1})
	defer unlimited.Shutdown(context.Background())
	if got := unlimited.jobTimeout(JobSpec{}); got != 0 {
		t.Errorf("no-default jobTimeout = %v, want 0 (no deadline)", got)
	}
	if got := unlimited.jobTimeout(JobSpec{TimeoutMS: 50}); got != 50*time.Millisecond {
		t.Errorf("spec timeout without ceiling = %v, want 50ms", got)
	}
}

// timeout_ms is a serving parameter: it must not move the content digest, or
// the cache would fragment by deadline.
func TestTimeoutExcludedFromDigest(t *testing.T) {
	a, err := tinySpec("NEW ORDER").Resolve()
	if err != nil {
		t.Fatal(err)
	}
	withTimeout := tinySpec("NEW ORDER")
	withTimeout.TimeoutMS = 1234
	b, err := withTimeout.Resolve()
	if err != nil {
		t.Fatal(err)
	}
	if a.Digest != b.Digest {
		t.Errorf("timeout_ms changed the digest: %s vs %s", a.Digest, b.Digest)
	}
}

// The breaker state machine: threshold consecutive failures open it, the
// cooldown admits one half-open probe, and the probe's outcome decides.
func TestBreakerLifecycle(t *testing.T) {
	clock := time.Unix(0, 0)
	b := NewBreaker(3, 10*time.Second, 250*time.Millisecond)
	b.now = func() time.Time { return clock }
	var transitions []string
	b.OnChange(func(from, to string) { transitions = append(transitions, from+">"+to) })

	for i := 0; i < 3; i++ {
		if !b.Allow() {
			t.Fatalf("closed breaker denied op %d", i)
		}
		b.Observe("load", time.Millisecond, true)
	}
	if st := b.Stats(); st.State != breakerOpen || st.Opens != 1 {
		t.Fatalf("after 3 failures: %+v, want open/1", st)
	}
	if b.Allow() {
		t.Fatalf("open breaker allowed an op inside the cooldown")
	}

	// A slow success is a failure too: it must not be able to close a
	// half-open probe later, and while closed it counts toward the trip.
	clock = clock.Add(11 * time.Second)
	if !b.Allow() { // half-open probe slot
		t.Fatalf("breaker denied the half-open probe after cooldown")
	}
	if b.Allow() { // second op during the probe short-circuits
		t.Fatalf("half-open breaker allowed a second concurrent op")
	}
	b.Observe("load", 300*time.Millisecond, false) // slow success = failure
	if st := b.Stats(); st.State != breakerOpen || st.Opens != 2 {
		t.Fatalf("slow probe should re-open: %+v", st)
	}

	clock = clock.Add(11 * time.Second)
	if !b.Allow() {
		t.Fatalf("breaker denied the second probe")
	}
	b.Observe("load", time.Millisecond, false)
	if st := b.Stats(); st.State != breakerClosed {
		t.Fatalf("clean probe should close: %+v", st)
	}
	if st := b.Stats(); st.ShortCircuits == 0 {
		t.Errorf("short circuits were not counted")
	}
	want := "closed>open,open>half-open,half-open>open,open>half-open,half-open>closed"
	if got := strings.Join(transitions, ","); got != want {
		t.Errorf("transitions = %s, want %s", got, want)
	}

	var nilB *Breaker
	if !nilB.Allow() {
		t.Errorf("nil breaker must always allow")
	}
	nilB.Observe("load", 0, true) // must not panic
	if st := nilB.Stats(); st.State != breakerClosed {
		t.Errorf("nil breaker stats = %+v", st)
	}
}

// Shutdown past its grace cancels stragglers with structured "drain"
// failures instead of hanging, and reports ErrDrainTimeout.
func TestDrainTimeoutCancelsStragglers(t *testing.T) {
	s := New(Options{Workers: 1, QueueDepth: 4})
	ts := newHTTPServer(t, s)
	started, release := holdWorkers(t)

	resp := postJob(t, ts, tinySpec("NEW ORDER"))
	running := decodeStatus(t, resp.Body)
	resp.Body.Close()
	<-started
	resp2 := postJob(t, ts, tinySpec("PAYMENT"))
	queued := decodeStatus(t, resp2.Body)
	resp2.Body.Close()

	// Let the held worker proceed only after the drain deadline has fired;
	// the job it holds must then die on the drain cancellation, not finish.
	go func() {
		time.Sleep(150 * time.Millisecond)
		close(release)
	}()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	err := s.Shutdown(ctx)
	if !errors.Is(err, ErrDrainTimeout) {
		t.Fatalf("Shutdown = %v, want ErrDrainTimeout", err)
	}

	for _, id := range []string{running.ID, queued.ID} {
		j, ok := s.Job(id)
		if !ok {
			t.Fatalf("job %s vanished", id)
		}
		st := j.StatusAt(time.Now())
		if st.State != StateFailed || st.Failure == nil || st.Failure.Kind != "drain" {
			t.Errorf("straggler %s: state=%s failure=%+v; want failed/drain", id, st.State, st.Failure)
		}
	}
	if m := s.MetricsSnapshot(); m.JobsCancelled != 2 {
		t.Errorf("JobsCancelled = %d, want 2", m.JobsCancelled)
	}
}

// newHTTPServer wraps a caller-owned Server (whose Shutdown the test drives
// itself) in an httptest server.
func newHTTPServer(t *testing.T, s *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// newStubServer is a bare HTTP backend for client tests.
func newStubServer(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

// The retrying client: retryable statuses are retried with the server's
// Retry-After honored, permanent ones are not, and the budget is bounded.
func TestClientRetriesRetryableStatuses(t *testing.T) {
	var calls atomic.Int64
	backend := newStubServer(t, func(w http.ResponseWriter, r *http.Request) {
		switch calls.Add(1) {
		case 1:
			w.Header().Set("Retry-After", "0")
			w.WriteHeader(http.StatusTooManyRequests)
		case 2:
			w.WriteHeader(http.StatusServiceUnavailable)
		default:
			w.Write([]byte(`{"ok":true}`))
		}
	})
	c := &Client{Base: backend.URL, Retries: 4, BaseDelay: time.Millisecond, Seed: 7}
	body, err := c.Run(context.Background(), tinySpec("NEW ORDER"))
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if string(body) != `{"ok":true}` || calls.Load() != 3 {
		t.Fatalf("body=%q calls=%d, want success on the 3rd attempt", body, calls.Load())
	}
}

func TestClientStopsOnPermanentFailure(t *testing.T) {
	var calls atomic.Int64
	backend := newStubServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		writeError(w, http.StatusUnprocessableEntity, "quarantined")
	})
	c := &Client{Base: backend.URL, Retries: 4, BaseDelay: time.Millisecond}
	_, err := c.Run(context.Background(), tinySpec("NEW ORDER"))
	var perm *PermanentError
	if !errors.As(err, &perm) || perm.Status != http.StatusUnprocessableEntity {
		t.Fatalf("err = %v, want PermanentError(422)", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("calls = %d, want 1 (no retries on a permanent failure)", calls.Load())
	}
	if !strings.Contains(perm.Msg, "quarantined") {
		t.Errorf("permanent error lost the server message: %q", perm.Msg)
	}
}

func TestClientExhaustsBudget(t *testing.T) {
	var calls atomic.Int64
	backend := newStubServer(t, func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
	})
	c := &Client{Base: backend.URL, Retries: 2, BaseDelay: time.Millisecond}
	if _, err := c.Run(context.Background(), tinySpec("NEW ORDER")); err == nil {
		t.Fatalf("Run succeeded against a permanently unavailable server")
	}
	if calls.Load() != 3 {
		t.Fatalf("calls = %d, want 3 (1 attempt + 2 retries)", calls.Load())
	}
}
