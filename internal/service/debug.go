package service

import (
	"net/http"
	"net/http/pprof"
	"sort"
	"time"
)

// DebugHandler returns the daemon's diagnostics surface, served on an
// opt-in address separate from the API (tlsd -debug-addr) so profiling can
// never be reached through the public port:
//
//	GET /debug/pprof/...     the standard net/http/pprof profiles
//	GET /debug/requests      snapshot of queued and running jobs
func (s *Server) DebugHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	return mux
}

// debugRequest is one in-flight job in the /debug/requests snapshot.
type debugRequest struct {
	ID            string `json:"id"`
	CorrelationID string `json:"correlation_id"`
	Digest        string `json:"digest"`
	State         State  `json:"state"`
	// Stage is the pipeline segment the job is currently in (queue, build,
	// sim, render); StageElapsedMS is how long it has been there.
	Stage          string  `json:"stage"`
	StageElapsedMS float64 `json:"stage_elapsed_ms"`
	// ElapsedMS is total time since admission.
	ElapsedMS float64 `json:"elapsed_ms"`
}

// handleDebugRequests snapshots every non-terminal job: what it is, where in
// the pipeline it is, and for how long — the first question an operator asks
// of a daemon that looks stuck.
func (s *Server) handleDebugRequests(w http.ResponseWriter, _ *http.Request) {
	now := time.Now()
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()

	reqs := make([]debugRequest, 0, len(jobs))
	for _, j := range jobs {
		j.mu.Lock()
		if j.state == StateQueued || j.state == StateRunning {
			reqs = append(reqs, debugRequest{
				ID:             j.id,
				CorrelationID:  j.corr,
				Digest:         j.res.Digest,
				State:          j.state,
				Stage:          j.stage.String(),
				StageElapsedMS: ms(now.Sub(j.stageFrom)),
				ElapsedMS:      ms(now.Sub(j.submitted)),
			})
		}
		j.mu.Unlock()
	}
	sort.Slice(reqs, func(a, b int) bool { return reqs[a].ID < reqs[b].ID })
	writeJSON(w, http.StatusOK, struct {
		InFlight int            `json:"in_flight"`
		Jobs     []debugRequest `json:"jobs"`
	}{len(reqs), reqs})
}
