// Package service is the simulation-serving layer behind cmd/tlsd: a job
// model over the simulator, a bounded FIFO queue with backpressure, a
// GOMAXPROCS-sized worker pool sharing one workload build cache, a
// content-addressed result cache keyed by the canonical digest of each
// resolved run, and per-job telemetry fan-out for live event streaming.
//
// The serving contract is byte-level reproducibility: a job's result body
// is rendered through the same report.Run pipeline as `tlssim -json`, so
// the daemon, the CLI, and the cache all agree on the exact bytes for one
// spec — which is what makes content addressing sound.
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"strconv"
	"strings"

	"subthreads/internal/db"
	"subthreads/internal/inject"
	"subthreads/internal/sim"
	"subthreads/internal/tls"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

// JobSpec is the wire form of one simulation request (POST /v1/jobs). Each
// field mirrors the matching cmd/tlssim flag and takes the same default
// when omitted, so every job has a direct CLI repro command. Pointer fields
// distinguish "omitted" from an explicit zero.
type JobSpec struct {
	// Benchmark names the workload (tlssim -list); required.
	Benchmark string `json:"benchmark"`
	// Experiment is the machine/software configuration; default BASELINE.
	Experiment string `json:"experiment,omitempty"`
	// Txns is the measured transaction count; default 8.
	Txns int `json:"txns,omitempty"`
	// Warmup is the warm-up transaction count; default 2.
	Warmup *int `json:"warmup,omitempty"`
	// Seed is the input seed; default 42.
	Seed *int64 `json:"seed,omitempty"`
	// Opt is the database optimization level; default fully optimized.
	Opt *int `json:"opt,omitempty"`
	// Paper selects the full single-warehouse TPC-C scale.
	Paper bool `json:"paper,omitempty"`
	// Subthreads overrides the sub-thread contexts per thread (0 = keep
	// the experiment's value).
	Subthreads int `json:"subthreads,omitempty"`
	// Spacing overrides the speculative instructions per sub-thread.
	Spacing uint64 `json:"spacing,omitempty"`
	// Overflow selects the victim-cache overflow policy: "stall"|"squash".
	Overflow string `json:"overflow,omitempty"`
	// Paranoid enables the protocol invariant auditor for this job.
	Paranoid bool `json:"paranoid,omitempty"`
	// Inject is a fault-injection spec (see internal/inject).
	Inject string `json:"inject,omitempty"`
	// MaxCycles is the job's hard cycle budget (its deadline, mapped onto
	// sim.Config.MaxCycles); 0 inherits the server default.
	MaxCycles uint64 `json:"max_cycles,omitempty"`
	// Watchdog bounds cycles without a commit (sim.Config.WatchdogCycles).
	Watchdog uint64 `json:"watchdog_cycles,omitempty"`
	// TimeoutMS is the submission's end-to-end wall-clock deadline in
	// milliseconds, covering queue wait, build, simulation, and render. A
	// serving parameter, not a simulation parameter: it is floored at 10ms,
	// ceilinged by the daemon's -job-timeout, and deliberately excluded
	// from the content digest — the same simulation under a different
	// deadline is still the same simulation, so it shares cache entries.
	// 0 inherits the server-wide -job-timeout (which may be "none").
	TimeoutMS uint64 `json:"timeout_ms,omitempty"`
}

// Resolved is a fully-determined simulation: every default applied, the
// machine configured, and the content address computed. Cfg's runtime
// fields (Telemetry, Oracle, Inject) are left nil — the worker arms them
// per run, and they never participate in the digest.
type Resolved struct {
	Spec   workload.Spec
	Exp    workload.Experiment
	Cfg    sim.Config
	Inject *inject.Config
	// Digest is the content address of the run: the SHA-256 of the
	// canonical JSON encoding of (workload spec, experiment, machine
	// configuration, injection schedule). Two JobSpecs that resolve to the
	// same simulation share a digest regardless of which fields were
	// spelled out.
	Digest string
}

// Resolve validates the spec, applies tlssim's defaults, and computes the
// content address.
func (js JobSpec) Resolve() (*Resolved, error) {
	bench, err := tpcc.Parse(js.Benchmark)
	if err != nil {
		return nil, fmt.Errorf("service: %w", err)
	}
	expName := js.Experiment
	if expName == "" {
		expName = workload.Baseline.String()
	}
	exp := workload.Experiment(-1)
	for e := workload.Experiment(0); e < workload.NumExperiments; e++ {
		if e.String() == expName {
			exp = e
		}
	}
	if exp < 0 {
		return nil, fmt.Errorf("service: unknown experiment %q", expName)
	}

	spec := workload.DefaultSpec(bench)
	if js.Txns != 0 {
		spec.Txns = js.Txns
	}
	if spec.Txns < 1 {
		return nil, fmt.Errorf("service: txns must be >= 1, got %d", spec.Txns)
	}
	if js.Warmup != nil {
		spec.Warmup = *js.Warmup
	}
	if spec.Warmup < 0 {
		return nil, fmt.Errorf("service: warmup must be >= 0, got %d", spec.Warmup)
	}
	if js.Seed != nil {
		spec.Seed = *js.Seed
	}
	if js.Opt != nil {
		spec.OptLevel = *js.Opt
	}
	if spec.OptLevel < 0 || spec.OptLevel >= db.NumOptLevels {
		return nil, fmt.Errorf("service: opt must be in [0, %d], got %d", db.NumOptLevels-1, spec.OptLevel)
	}
	if js.Paper {
		spec.Scale = tpcc.PaperScale()
	}

	cfg := workload.Machine(exp)
	if js.Subthreads > 0 {
		cfg.TLS.SubthreadsPerEpoch = js.Subthreads
	}
	if js.Spacing > 0 {
		cfg.SubthreadSpacing = js.Spacing
	}
	switch js.Overflow {
	case "":
	case "stall":
		cfg.TLS.OverflowPolicy = tls.OverflowStall
	case "squash":
		cfg.TLS.OverflowPolicy = tls.OverflowSquash
	default:
		return nil, fmt.Errorf("service: overflow must be stall or squash, not %q", js.Overflow)
	}
	cfg.Paranoid = js.Paranoid
	cfg.MaxCycles = js.MaxCycles
	cfg.WatchdogCycles = js.Watchdog

	var icfg *inject.Config
	if js.Inject != "" {
		c, err := inject.Parse(js.Inject)
		if err != nil {
			return nil, fmt.Errorf("service: %w", err)
		}
		icfg = &c
		if cfg.WatchdogCycles == 0 {
			cfg.WatchdogCycles = inject.DefaultWatchdog
		}
	}

	r := &Resolved{Spec: spec, Exp: exp, Cfg: cfg, Inject: icfg}
	r.Digest = r.digest()
	return r, nil
}

// canonicalRun is the digest pre-image. It embeds the full resolved machine
// configuration so any future semantic Config field automatically joins the
// content address; the runtime-only interface fields are nil'd before
// hashing.
type canonicalRun struct {
	Spec       workload.Spec  `json:"spec"`
	Experiment string         `json:"experiment"`
	Config     sim.Config     `json:"config"`
	Inject     *inject.Config `json:"inject,omitempty"`
}

// digest computes the content address of the resolved run.
func (r *Resolved) digest() string {
	c := canonicalRun{Spec: r.Spec, Experiment: r.Exp.String(), Config: r.Cfg, Inject: r.Inject}
	c.Config.Telemetry = nil
	c.Config.Oracle = nil
	c.Config.Inject = nil
	b, err := json.Marshal(c)
	if err != nil {
		// All digested fields are plain data; failure here is a
		// programming error, not an input error.
		panic(fmt.Sprintf("service: canonical encoding failed: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// ReproCommand is the cmd/tlssim invocation that reproduces this job —
// attached to every structured failure so a daemon-side watchdog trip or
// audit abort is one paste away from a local debugger.
func (r *Resolved) ReproCommand() string {
	args := []string{
		"go", "run", "./cmd/tlssim",
		"-benchmark", strconv.Quote(r.Spec.Bench.String()),
		"-experiment", strconv.Quote(r.Exp.String()),
		"-txns", strconv.Itoa(r.Spec.Txns),
		"-warmup", strconv.Itoa(r.Spec.Warmup),
		"-seed", strconv.FormatInt(r.Spec.Seed, 10),
		"-opt", strconv.Itoa(r.Spec.OptLevel),
	}
	if r.Spec.Scale == tpcc.PaperScale() {
		args = append(args, "-paper")
	}
	if r.Cfg.TLS.SubthreadsPerEpoch != workload.Machine(r.Exp).TLS.SubthreadsPerEpoch {
		args = append(args, "-subthreads", strconv.Itoa(r.Cfg.TLS.SubthreadsPerEpoch))
	}
	if r.Cfg.SubthreadSpacing != workload.Machine(r.Exp).SubthreadSpacing {
		args = append(args, "-spacing", strconv.FormatUint(r.Cfg.SubthreadSpacing, 10))
	}
	if r.Cfg.TLS.OverflowPolicy == tls.OverflowSquash {
		args = append(args, "-overflow", "squash")
	}
	if r.Cfg.Paranoid {
		args = append(args, "-paranoid")
	}
	if r.Inject != nil {
		args = append(args, "-inject", strconv.Quote(r.Inject.String()))
	}
	args = append(args, "-json")
	return strings.Join(args, " ")
}
