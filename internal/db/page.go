package db

import "subthreads/internal/mem"

// Page is one database page: a simulated 4KB block plus its buffer-pool
// frame metadata. Layout within the page:
//
//	base+0   page id
//	base+4   entry count        <- the header word leaf inserts contend on
//	base+8   level / flags
//	base+64  slot array (4 bytes per slot)
//	base+1024 key area (8 bytes per key)
type Page struct {
	id    uint32
	base  mem.Addr
	frame mem.Addr // buffer-pool frame metadata (pin count, LRU links)
	latch mem.Addr
	dirty bool
}

func (p *Page) hdrCount() mem.Addr { return p.base + 4 }
func (p *Page) slotAddr(i int) mem.Addr {
	return p.base + 64 + mem.Addr(i*4)
}
func (p *Page) keyAddr(i int) mem.Addr {
	return p.base + 1024 + mem.Addr(i*8)
}

// newPage allocates a page with its frame and latch metadata.
func (e *Env) newPage() *Page {
	e.nextPg++
	return &Page{
		id:    e.nextPg,
		base:  e.heap.Alloc(uint32(e.cfg.PageSize), uint32(e.cfg.PageSize)),
		frame: e.misc.AllocLine(),
		latch: e.misc.AllocLine(),
	}
}

// Pool is the buffer pool: a hash table from page id to frame, plus a global
// LRU list. The paper's workloads are memory resident (1MB+ pool, no disk),
// so Get never misses; what matters is the memory traffic of the lookup —
// and, unoptimized, the pin-count store and LRU-head store that make every
// page touch a cross-epoch dependence.
type Pool struct {
	env     *Env
	buckets []mem.Addr
	lruHead mem.Addr
	// dirtyShards are the pool's dirty-page accounting words (BerkeleyDB
	// shards its mpool statistics across regions), updated when a clean
	// page is first dirtied. Commit-time flushing needs this accounting,
	// so the tuning process cannot privatize it — one of the remaining
	// "actual data dependences which are difficult to optimize away" (§5).
	dirtyShards [16]mem.Addr
	dirtyPages  []*Page
}

func newPool(e *Env, nbuckets int) *Pool {
	p := &Pool{env: e, lruHead: e.misc.AllocLine()}
	for i := range p.dirtyShards {
		p.dirtyShards[i] = e.misc.AllocLine()
	}
	p.buckets = make([]mem.Addr, nbuckets)
	for i := range p.buckets {
		p.buckets[i] = e.misc.AllocLine()
	}
	return p
}

// get emits a buffer-pool lookup of pg, optionally for writing.
func (p *Pool) get(c *Ctx, pg *Page, write bool) {
	e := p.env
	c.work("pool.get", e.cfg.Costs.PoolGet)
	bucket := p.buckets[int(pg.id)%len(p.buckets)]
	c.rec.Load(e.site("pool.bucket.load"), bucket)
	c.rec.ALU(4)
	c.rec.Load(e.site("pool.frame.load"), pg.frame)
	if !e.cfg.Opt.PinlessReads {
		// Pin the frame and bump the LRU list: two stores to hot
		// shared metadata.
		c.rec.ALU(2)
		c.rec.Store(e.site("pool.frame.pin"), pg.frame)
		c.rec.Load(e.site("pool.lru.load"), p.lruHead)
		c.rec.ALU(3)
		c.rec.Store(e.site("pool.lru.store"), p.lruHead)
	}
	if write {
		// Mark the frame dirty. With pinless reads this is the only
		// frame store, and only writers perform it. Write intent makes
		// the transaction a writing one: its commit must flush.
		c.noteWrite()
		c.rec.ALU(2)
		c.rec.Store(e.site("pool.frame.dirty"), pg.frame)
		if !pg.dirty {
			// Clean-to-dirty transition: bump the pool's
			// dirty-page accounting shard.
			pg.dirty = true
			p.dirtyPages = append(p.dirtyPages, pg)
			shard := p.dirtyShards[pg.id%uint32(len(p.dirtyShards))]
			c.rec.Load(e.site("pool.dirty.count.load"), shard)
			c.rec.ALU(3)
			c.rec.Store(e.site("pool.dirty.count.store"), shard)
		}
	}
}

// unpin emits the unpin store of the unoptimized pool.
func (p *Pool) unpin(c *Ctx, pg *Page) {
	if p.env.cfg.Opt.PinlessReads {
		return
	}
	c.rec.ALU(2)
	c.rec.Store(p.env.site("pool.frame.unpin"), pg.frame)
}

// latchPage acquires the page latch. Unoptimized, it is an escaped-
// speculation latch: the simulator serializes conflicting epochs on it
// (Latch Stall). With LazyLatches, readers emit only a latch-word load and
// writers rely on TLS conflict detection.
func (e *Env) latchPage(c *Ctx, pg *Page, write bool) {
	if e.cfg.Opt.LazyLatches {
		c.rec.Load(e.site("latch.read"), pg.latch)
		c.rec.ALU(2)
		return
	}
	c.rec.LatchAcquire(e.site("latch.acquire"), pg.latch)
	c.rec.ALU(4)
	_ = write
}

// unlatchPage releases the page latch when escaped latching is in use.
func (e *Env) unlatchPage(c *Ctx, pg *Page) {
	if e.cfg.Opt.LazyLatches {
		return
	}
	c.rec.ALU(2)
	c.rec.LatchRelease(e.site("latch.release"), pg.latch)
}

// flushDirty models the commit-time flush: the dirty-page accounting is
// read back and every dirty page becomes clean again.
func (p *Pool) flushDirty(c *Ctx) {
	for _, shard := range p.dirtyShards {
		c.rec.Load(p.env.site("pool.dirty.count.load"), shard)
		c.rec.ALU(2)
	}
	c.work("pool.flush", 40*len(p.dirtyPages))
	for _, pg := range p.dirtyPages {
		pg.dirty = false
	}
	p.dirtyPages = p.dirtyPages[:0]
}
