package db

import (
	"fmt"

	"subthreads/internal/mem"
)

// Tree is a B+-tree table index. Every descent, probe, and modification
// emits the corresponding loads, stores, and latch traffic at the page's
// simulated addresses — so two epochs inserting into the same leaf really do
// conflict on the leaf's entry-count word, exactly the kind of internal
// dependence the paper's workloads exhibit.
type Tree struct {
	id     int
	name   string
	env    *Env
	root   *node
	height int
	stats  mem.Addr // shared record-count statistics word

	// Size is the number of live entries (functional bookkeeping).
	Size int
	// Splits counts leaf/internal splits (diagnostics).
	Splits uint64
}

type node struct {
	page *Page
	leaf bool
	keys []int64
	rows []*Row  // leaf payloads
	kids []*node // internal children
	next *node   // leaf chain
}

// NewTree creates an empty table index.
func (e *Env) NewTree(name string) *Tree {
	t := &Tree{
		id:    len(e.trees) + 1,
		name:  name,
		env:   e,
		stats: e.misc.AllocLine(),
	}
	t.root = t.newNode(true)
	t.height = 1
	e.trees = append(e.trees, t)
	return t
}

// Name returns the tree's table name.
func (t *Tree) Name() string { return t.name }

// Height returns the current tree height.
func (t *Tree) Height() int { return t.height }

func (t *Tree) newNode(leaf bool) *node {
	return &node{page: t.env.newPage(), leaf: leaf}
}

// findIdx returns the index of the first key >= key, emitting binary-search
// probes when c != nil.
func (t *Tree) findIdx(c *Ctx, n *node, key int64) int {
	lo, hi := 0, len(n.keys)
	if c != nil {
		c.rec.Load(t.env.site(t.name+".hdr.count.load"), n.page.hdrCount())
		c.rec.ALU(3)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if c != nil {
			c.rec.Load(t.env.site(t.name+".key.probe"), n.page.keyAddr(mid))
			c.rec.ALU(4)
			c.rec.Branch(t.env.site(t.name+".probe.branch"), c.nextHash()%2 == 0)
		}
		if n.keys[mid] < key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// upperIdx returns the index of the child to descend into: the number of
// separator keys <= key. Emission matches findIdx.
func (t *Tree) upperIdx(c *Ctx, n *node, key int64) int {
	lo, hi := 0, len(n.keys)
	if c != nil {
		c.rec.Load(t.env.site(t.name+".hdr.count.load"), n.page.hdrCount())
		c.rec.ALU(3)
	}
	for lo < hi {
		mid := (lo + hi) / 2
		if c != nil {
			c.rec.Load(t.env.site(t.name+".key.probe"), n.page.keyAddr(mid))
			c.rec.ALU(4)
			c.rec.Branch(t.env.site(t.name+".probe.branch"), c.nextHash()%2 == 0)
		}
		if n.keys[mid] <= key {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// descend walks from the root to the leaf for key, emitting pool lookups,
// latch traffic (crab latching when escaped latches are in use), and
// per-level compute. It returns the leaf and the path of internal nodes for
// split propagation.
func (t *Tree) descend(c *Ctx, key int64, forWrite bool) (leaf *node, path []*node) {
	n := t.root
	var prev *node
	for {
		if c != nil {
			t.env.pool.get(c, n.page, forWrite && n.leaf)
			t.env.latchPage(c, n.page, forWrite && n.leaf)
			if prev != nil {
				t.env.unlatchPage(c, prev.page) // crab latching
			}
			c.work(t.name+".descend", t.env.cfg.Costs.BtreeLevel)
		}
		if n.leaf {
			return n, path
		}
		path = append(path, n)
		// Canonical B+-tree routing: keys[j] separates kids[j] and
		// kids[j+1]; descend into the first child whose upper bound
		// exceeds key.
		i := t.upperIdx(c, n, key)
		if c != nil {
			c.rec.Load(t.env.site(t.name+".child.load"), n.page.slotAddr(i))
			t.env.pool.unpin(c, n.page)
		}
		prev = n
		n = n.kids[i]
	}
}

// Get looks up key, emitting the full read path. The row is returned without
// copying; callers emit field reads through Row.ReadField.
func (t *Tree) Get(c *Ctx, key int64) (*Row, bool) {
	leaf, _ := t.descend(c, key, false)
	i := t.findIdx(c, leaf, key)
	found := i < len(leaf.keys) && leaf.keys[i] == key
	if c != nil {
		if found {
			c.rec.Load(t.env.site(t.name+".row.ptr"), leaf.page.slotAddr(i))
			c.work(t.name+".get", t.env.cfg.Costs.RowRead)
		}
		t.env.unlatchPage(c, leaf.page)
		t.env.pool.unpin(c, leaf.page)
	}
	if !found {
		return nil, false
	}
	return leaf.rows[i], true
}

// GetForUpdate looks up key with write intent: the page is fetched for
// writing (marking the frame dirty and bumping the pool's dirty-page
// accounting), as an UPDATE's current-mode cursor does.
func (t *Tree) GetForUpdate(c *Ctx, key int64) (*Row, bool) {
	leaf, _ := t.descend(c, key, true)
	i := t.findIdx(c, leaf, key)
	found := i < len(leaf.keys) && leaf.keys[i] == key
	if c != nil {
		if found {
			c.rec.Load(t.env.site(t.name+".row.ptr"), leaf.page.slotAddr(i))
			c.work(t.name+".get", t.env.cfg.Costs.RowRead)
		}
		t.env.unlatchPage(c, leaf.page)
		t.env.pool.unpin(c, leaf.page)
	}
	if !found {
		return nil, false
	}
	return leaf.rows[i], true
}

// Insert adds (key, row); duplicate keys are rejected with a panic — the
// TPC-C workloads never generate duplicates, so one indicates a bug.
func (t *Tree) Insert(c *Ctx, key int64, row *Row) {
	leaf, path := t.descend(c, key, true)
	i := t.findIdx(c, leaf, key)
	if i < len(leaf.keys) && leaf.keys[i] == key {
		panic(fmt.Sprintf("db: duplicate key %d in %s", key, t.name))
	}
	if c != nil {
		c.noteWrite()
		// Slot shift, key/pointer stores, and the entry-count update:
		// the leaf header store is the contended word.
		c.work(t.name+".insert", t.env.cfg.Costs.LeafInsert)
		c.rec.Store(t.env.site(t.name+".slot.shift"), leaf.page.slotAddr(i))
		c.rec.Store(t.env.site(t.name+".key.store"), leaf.page.keyAddr(i))
		c.rec.Store(t.env.site(t.name+".rowptr.store"), leaf.page.slotAddr(i))
		c.rec.ALU(4)
		c.rec.Store(t.env.site(t.name+".hdr.count.store"), leaf.page.hdrCount())
	}
	leaf.keys = insertAt(leaf.keys, i, key)
	leaf.rows = insertRowAt(leaf.rows, i, row)
	t.Size++
	if c != nil {
		c.noteUndo(func() { t.Delete(nil, key) })
	}
	if len(leaf.keys) > t.env.cfg.NodeCapacity {
		t.split(c, leaf, path)
	}
	if c != nil {
		t.env.unlatchPage(c, leaf.page)
		t.env.pool.unpin(c, leaf.page)
		// Table record-count statistics: one of the "actual data
		// dependences which are difficult to optimize away" (§5) —
		// every insert into the same table conflicts here.
		c.rec.Load(t.env.site(t.name+".stats.load"), t.stats)
		c.rec.ALU(3)
		c.rec.Store(t.env.site(t.name+".stats.store"), t.stats)
		t.env.log.record(c, 8)
	}
}

// Delete removes key, reporting whether it was present. Underflow merging is
// not implemented (deletes are rare in these workloads — only DELIVERY
// removes NEW_ORDER rows — and BerkeleyDB also leaves pages underfull).
func (t *Tree) Delete(c *Ctx, key int64) bool {
	leaf, _ := t.descend(c, key, true)
	i := t.findIdx(c, leaf, key)
	if i >= len(leaf.keys) || leaf.keys[i] != key {
		if c != nil {
			t.env.unlatchPage(c, leaf.page)
			t.env.pool.unpin(c, leaf.page)
		}
		return false
	}
	if c != nil {
		c.noteWrite()
		c.work(t.name+".delete", t.env.cfg.Costs.LeafDelete)
		c.rec.Store(t.env.site(t.name+".slot.shift"), leaf.page.slotAddr(i))
		c.rec.ALU(4)
		c.rec.Store(t.env.site(t.name+".hdr.count.store"), leaf.page.hdrCount())
		t.env.unlatchPage(c, leaf.page)
		t.env.pool.unpin(c, leaf.page)
		c.rec.Load(t.env.site(t.name+".stats.load"), t.stats)
		c.rec.ALU(3)
		c.rec.Store(t.env.site(t.name+".stats.store"), t.stats)
		t.env.log.record(c, 6)
	}
	if c != nil {
		row := leaf.rows[i]
		c.noteUndo(func() { t.Insert(nil, key, row) })
	}
	leaf.keys = append(leaf.keys[:i], leaf.keys[i+1:]...)
	leaf.rows = append(leaf.rows[:i], leaf.rows[i+1:]...)
	t.Size--
	return true
}

// Scan walks entries with key >= from in order, emitting leaf-chain reads,
// until fn returns false or max entries have been visited (max <= 0 means
// unlimited).
func (t *Tree) Scan(c *Ctx, from int64, max int, fn func(key int64, r *Row) bool) {
	leaf, _ := t.descend(c, from, false)
	i := t.findIdx(c, leaf, from)
	seen := 0
	for leaf != nil {
		for ; i < len(leaf.keys); i++ {
			if c != nil {
				c.rec.Load(t.env.site(t.name+".scan.key"), leaf.page.keyAddr(i))
				c.rec.Load(t.env.site(t.name+".scan.ptr"), leaf.page.slotAddr(i))
				c.rec.ALU(6)
				c.branchSeq++
				c.rec.Branch(t.env.site(t.name+".scan.branch"), true)
			}
			if !fn(leaf.keys[i], leaf.rows[i]) {
				if c != nil {
					t.env.unlatchPage(c, leaf.page)
					t.env.pool.unpin(c, leaf.page)
				}
				return
			}
			seen++
			if max > 0 && seen >= max {
				if c != nil {
					t.env.unlatchPage(c, leaf.page)
					t.env.pool.unpin(c, leaf.page)
				}
				return
			}
		}
		next := leaf.next
		if c != nil {
			t.env.unlatchPage(c, leaf.page)
			t.env.pool.unpin(c, leaf.page)
			if next != nil {
				t.env.pool.get(c, next.page, false)
				t.env.latchPage(c, next.page, false)
				c.rec.Load(t.env.site(t.name+".hdr.count.load"), next.page.hdrCount())
			}
		}
		leaf = next
		i = 0
	}
}

// split divides an overfull node, propagating up the path. Leaf splits copy
// the upper half and publish its first key as the separator; internal splits
// push the middle separator up.
func (t *Tree) split(c *Ctx, n *node, path []*node) {
	t.Splits++
	right := t.newNode(n.leaf)
	var sep int64
	var mid int
	if n.leaf {
		mid = len(n.keys) / 2
		right.keys = append(right.keys, n.keys[mid:]...)
		right.rows = append(right.rows, n.rows[mid:]...)
		n.keys = n.keys[:mid]
		n.rows = n.rows[:mid]
		right.next = n.next
		n.next = right
		sep = right.keys[0]
	} else {
		mid = len(n.keys) / 2
		sep = n.keys[mid]
		right.keys = append(right.keys, n.keys[mid+1:]...)
		right.kids = append(right.kids, n.kids[mid+1:]...)
		n.keys = n.keys[:mid]
		n.kids = n.kids[:mid+1]
	}

	if c != nil {
		// Moving half the entries is a burst of page traffic.
		c.work(t.name+".split", 800)
		for i := 0; i < 8; i++ {
			c.rec.Load(t.env.site(t.name+".split.copy.load"), n.page.keyAddr(mid+i))
			c.rec.Store(t.env.site(t.name+".split.copy.store"), right.page.keyAddr(i))
		}
		c.rec.Store(t.env.site(t.name+".hdr.count.store"), n.page.hdrCount())
		c.rec.Store(t.env.site(t.name+".hdr.count.store"), right.page.hdrCount())
	}

	if len(path) == 0 {
		// Grow a new root.
		root := t.newNode(false)
		root.keys = []int64{sep}
		root.kids = []*node{n, right}
		t.root = root
		t.height++
		return
	}
	parent := path[len(path)-1]
	i := parentIdx(parent, n)
	parent.keys = insertAt(parent.keys, i, sep)
	parent.kids = insertNodeAt(parent.kids, i+1, right)
	if c != nil {
		c.rec.Store(t.env.site(t.name+".parent.key.store"), parent.page.keyAddr(i))
		c.rec.Store(t.env.site(t.name+".hdr.count.store"), parent.page.hdrCount())
	}
	if len(parent.keys) > t.env.cfg.NodeCapacity {
		t.split(c, parent, path[:len(path)-1])
	}
}

func parentIdx(parent, child *node) int {
	for i, k := range parent.kids {
		if k == child {
			return i
		}
	}
	panic("db: split child not found in parent")
}

func insertAt(s []int64, i int, v int64) []int64 {
	s = append(s, 0)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertRowAt(s []*Row, i int, v *Row) []*Row {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func insertNodeAt(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

// LoadInsert bulk-loads (key, row) without emitting trace events; the paper
// does not time database loading either. Rows are packed contiguously, so
// adjacent rows of a table can share cache lines — the realistic false-
// sharing the line-granularity dependence tracking of §2.1 is exposed to.
func (t *Tree) LoadInsert(key int64, fields ...int64) *Row {
	row := t.env.newRowQuiet(len(fields))
	copy(row.Fields, fields)
	t.Insert(nil, key, row)
	return row
}

// LoadInsertPadded bulk-loads a row on its own cache line. Used for small hot
// tables (WAREHOUSE, DISTRICT) whose rows would otherwise all share one line
// and serialize every transaction — the padding the paper's tuning process
// applies to hot structures.
func (t *Tree) LoadInsertPadded(key int64, fields ...int64) *Row {
	size := uint32(len(fields) * 8)
	if size == 0 {
		size = 8
	}
	row := &Row{
		addr:   t.env.heap.Alloc(size, mem.LineSize),
		Fields: make([]int64, len(fields)),
	}
	copy(row.Fields, fields)
	t.Insert(nil, key, row)
	return row
}
