package db

import (
	"subthreads/internal/mem"
	"subthreads/internal/trace"
)

// Ctx is one execution context of the engine: it carries the trace recorder
// the current epoch's instruction stream is emitted into, a private stack
// working set (so that register spills and locals hit the L1 without creating
// false cross-epoch dependences), and the per-context resources selected by
// the optimization flags (log buffer, allocation pool).
//
// The workload layer creates one Ctx per speculative thread, numbered by a
// slot so that concurrently-live epochs never share private addresses.
type Ctx struct {
	env  *Env
	rec  trace.Recorder
	slot int

	txn *Txn

	stackBase  mem.Addr
	stackLines int
	stackIdx   int
	hashState  uint32
	branchSeq  uint32
}

// ctxStackLines sizes each context's private stack arena (128 lines = 4KB).
// Stores advance through it like a call stack, so one cache line is written
// by at most a couple of sub-thread contexts — bounding the number of
// speculative versions per line, as a real sliding stack does.
const ctxStackLines = 128

// NewCtx creates an execution context recording into rec. slot selects the
// private stack/log/alloc resources; concurrently-executing contexts must use
// distinct slots (the workload layer uses epochIndex mod Contexts).
func (e *Env) NewCtx(rec trace.Recorder, slot int) *Ctx {
	slot = slot % e.cfg.Contexts
	return &Ctx{
		env:        e,
		rec:        rec,
		slot:       slot,
		stackBase:  e.stacks.Base + mem.Addr(slot*ctxStackLines*mem.LineSize),
		stackLines: ctxStackLines,
		hashState:  uint32(slot)*2654435761 + 12345,
	}
}

// SetRecorder redirects subsequent emission (used when one logical context
// spans several recorded traces).
func (c *Ctx) SetRecorder(rec trace.Recorder) { c.rec = rec }

// Env returns the owning environment.
func (c *Ctx) Env() *Env { return c.env }

// Slot returns the context's resource slot.
func (c *Ctx) Slot() int { return c.slot }

// stackStoreAddr returns the next private stack store address: stores fill
// a line word by word, then advance to the next line (a growing frame).
func (c *Ctx) stackStoreAddr() mem.Addr {
	c.stackIdx++
	return c.stackWordAddr(c.stackIdx)
}

// stackLoadAddr returns a private stack load address within the recently
// written window (locals and spills of the active frames).
func (c *Ctx) stackLoadAddr() mem.Addr {
	window := 8 * mem.WordsPerLine
	back := int(c.nextHash()) % window
	idx := c.stackIdx - back
	if idx < 0 {
		idx += c.stackLines * mem.WordsPerLine
	}
	return c.stackWordAddr(idx)
}

func (c *Ctx) stackWordAddr(idx int) mem.Addr {
	word := idx % mem.WordsPerLine
	line := (idx / mem.WordsPerLine) % c.stackLines
	return c.stackBase + mem.Addr(line*mem.LineSize+word*mem.WordSize)
}

// nextHash steps a cheap deterministic PRNG used for branch outcomes, so
// traces are reproducible run to run.
func (c *Ctx) nextHash() uint32 {
	c.hashState = c.hashState*1664525 + 1013904223
	return c.hashState >> 8
}

// Work emits n instructions of synthetic compute attributed to the named
// site: a realistic mix of ALU runs, private-stack loads/stores, and
// branches (mostly well-predicted loop branches with a data-dependent
// minority). The block structure is 36 instructions: 2 branches, 1 load,
// 1 store, 32 ALU.
func (c *Ctx) Work(site string, n int) {
	if n <= 0 {
		return
	}
	pcB1 := c.env.site(site + ".loop")
	pcB2 := c.env.site(site + ".cond")
	pcL := c.env.site(site + ".spill.load")
	pcS := c.env.site(site + ".spill.store")
	for n >= 36 {
		c.rec.ALU(10)
		c.rec.Load(pcL, c.stackLoadAddr())
		c.rec.ALU(6)
		// Loop branch: taken ~15 of 16 times.
		c.branchSeq++
		c.rec.Branch(pcB1, c.branchSeq%16 != 0)
		c.rec.ALU(10)
		c.rec.Store(pcS, c.stackStoreAddr())
		c.rec.ALU(6)
		// Data-dependent branch: ~75% taken, hash driven.
		c.rec.Branch(pcB2, c.nextHash()%4 != 0)
		n -= 36
	}
	if n > 0 {
		c.rec.ALU(uint32(n))
	}
}

// work is shorthand used by engine internals.
func (c *Ctx) work(site string, n int) { c.Work(site, n) }

// Txn is a transaction: it owns the lock set (for lock inheritance) and
// emits begin/commit overhead.
type Txn struct {
	id     uint64
	held   map[lockKey]struct{}
	env    *Env
	writes int
	// undo holds the compensation actions for every modification, in
	// order; Abort applies them in reverse (the log-driven rollback of a
	// real engine).
	undo []func()
	// chain is the transaction's lock-list head. Intra-transaction
	// epochs share the transaction, so every first acquisition of a lock
	// links into this shared word — transaction bookkeeping that
	// correctness requires and the tuning process cannot privatize (§5:
	// "actual data dependences which are difficult to optimize away").
	chain mem.Addr
}

// noteWrite records that the transaction modified data (its commit must
// flush the log).
func (c *Ctx) noteWrite() {
	if c.txn != nil {
		c.txn.writes++
	}
}

// noteUndo registers a compensation action for Abort.
func (c *Ctx) noteUndo(fn func()) {
	if c.txn != nil {
		c.txn.undo = append(c.txn.undo, fn)
	}
}

// Begin starts a transaction on this context.
func (c *Ctx) Begin() *Txn {
	c.env.nextTxn++
	t := &Txn{
		id:    c.env.nextTxn,
		held:  make(map[lockKey]struct{}),
		env:   c.env,
		chain: c.env.misc.AllocLine(),
	}
	c.txn = t
	c.work("txn.begin", c.env.cfg.Costs.TxnBegin)
	c.env.log.record(c, 4)
	return t
}

// AttachTxn makes an existing transaction current on this context — the
// intra-transaction parallelism of the paper: every epoch of the parallelized
// loop runs under the *same* transaction.
func (c *Ctx) AttachTxn(t *Txn) { c.txn = t }

// Txn returns the context's current transaction.
func (c *Ctx) Txn() *Txn { return c.txn }

// Commit finishes the context's transaction: a writing transaction pays the
// full commit cost (log flush); a read-only one commits cheaply.
func (c *Ctx) Commit() {
	t := c.txn
	if t == nil {
		panic("db: Commit without transaction")
	}
	if t.writes == 0 {
		c.work("txn.commit.ro", c.env.cfg.Costs.ReadOnlyCommit)
		c.work("txn.unlock", len(t.held)*40)
		t.held = make(map[lockKey]struct{})
		c.txn = nil
		return
	}
	c.work("txn.commit", c.env.cfg.Costs.TxnCommit)
	c.env.log.commitFlush(c)
	c.env.pool.flushDirty(c)
	// Release locks: one pass over the lock set.
	c.work("txn.unlock", len(t.held)*40)
	t.held = make(map[lockKey]struct{})
	t.undo = nil
	c.txn = nil
}

// Abort rolls the context's transaction back: the undo log is walked in
// reverse, compensating every modification both functionally (the database
// state reverts) and in the emitted trace (each undone change is a page
// write, as a real log-driven rollback performs). TPC-C requires this path:
// one percent of NEW ORDER transactions carry an invalid item and must roll
// back.
func (c *Ctx) Abort() {
	t := c.txn
	if t == nil {
		panic("db: Abort without transaction")
	}
	c.work("txn.abort", c.env.cfg.Costs.TxnBegin)
	for i := len(t.undo) - 1; i >= 0; i-- {
		t.undo[i]()
		// Each compensation reads the log record and writes the page.
		c.work("txn.undo", 300)
		c.env.log.record(c, 4)
	}
	c.env.log.commitFlush(c) // abort record + flush
	c.env.pool.flushDirty(c)
	c.work("txn.unlock", len(t.held)*40)
	t.held = make(map[lockKey]struct{})
	t.undo = nil
	c.txn = nil
}
