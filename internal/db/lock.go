package db

import "subthreads/internal/mem"

// LockTable is the two-phase-locking lock manager. Unoptimized, every row
// lock hashes to a bucket and stores the new lock into the bucket chain — so
// two epochs locking rows that hash together conflict, and every lock also
// bumps a global lock counter. With LockInheritance, an epoch that locks a
// row its transaction already holds only *loads* the bucket; since the
// paper's intra-transaction epochs all run under one transaction, this
// removes almost all lock-table stores from the loop body.
type LockTable struct {
	env     *Env
	buckets []mem.Addr
	counter mem.Addr
	// perSlot holds per-context lock sub-lists: with LockInheritance the
	// engine links each epoch's new locks into a private sub-list that is
	// merged into the transaction at commit, instead of appending to the
	// transaction's shared chain (the paper's intra-transaction epochs
	// all lock under one transaction, so the shared chain would be a
	// guaranteed cross-epoch dependence).
	perSlot []mem.Addr

	// Acquired and Inherited count lock-manager outcomes for tests and
	// diagnostics.
	Acquired  uint64
	Inherited uint64
}

type lockKey struct {
	tree *Tree
	key  int64
}

func newLockTable(e *Env, nbuckets int) *LockTable {
	lt := &LockTable{env: e, counter: e.misc.AllocLine()}
	lt.buckets = make([]mem.Addr, nbuckets)
	for i := range lt.buckets {
		lt.buckets[i] = e.misc.AllocLine()
	}
	lt.perSlot = make([]mem.Addr, e.cfg.Contexts)
	for i := range lt.perSlot {
		lt.perSlot[i] = e.misc.AllocLine()
	}
	return lt
}

func (lt *LockTable) bucketOf(t *Tree, key int64) mem.Addr {
	h := uint64(key)*0x9e3779b97f4a7c15 + uint64(t.id)
	return lt.buckets[h%uint64(len(lt.buckets))]
}

// Lock acquires a row lock for the context's transaction, emitting the
// lock-manager memory behaviour.
func (c *Ctx) Lock(t *Tree, key int64, exclusive bool) {
	e := c.env
	lt := e.locks
	if c.txn == nil {
		panic("db: Lock outside transaction")
	}
	c.work("lock.acquire", e.cfg.Costs.Lock)
	bucket := lt.bucketOf(t, key)
	c.rec.Load(e.site("lock.bucket.load"), bucket)
	c.rec.ALU(6)

	k := lockKey{tree: t, key: key}
	if _, held := c.txn.held[k]; held && e.cfg.Opt.LockInheritance {
		// Inherited from the surrounding transaction: read-only check.
		lt.Inherited++
		return
	}
	c.txn.held[k] = struct{}{}
	lt.Acquired++
	// Link the lock into the bucket chain and into the transaction's
	// lock list. With LockInheritance the lock list is a per-context
	// sub-list (merged at commit); without it, every epoch appends to the
	// transaction's shared chain.
	c.rec.Store(e.site("lock.bucket.store"), bucket)
	chain := c.txn.chain
	if e.cfg.Opt.LockInheritance {
		chain = lt.perSlot[c.slot]
	}
	c.rec.Load(e.site("txn.lockchain.load"), chain)
	c.rec.ALU(4)
	c.rec.Store(e.site("txn.lockchain.store"), chain)
	if !e.cfg.Opt.LockInheritance {
		c.rec.Load(e.site("lock.counter.load"), lt.counter)
		c.rec.ALU(2)
		c.rec.Store(e.site("lock.counter.store"), lt.counter)
	}
	_ = exclusive
}
