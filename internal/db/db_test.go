package db

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/trace"
)

func newTestEnv(opt OptFlags) *Env {
	cfg := DefaultConfig()
	cfg.Opt = opt
	cfg.NodeCapacity = 8 // force splits with few keys
	return NewEnv(cfg)
}

func TestBTreeFunctionalAgainstMap(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	ref := map[int64][]int64{}
	rng := rand.New(rand.NewSource(7))
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()

	for i := 0; i < 2000; i++ {
		k := int64(rng.Intn(5000))
		if _, dup := ref[k]; dup {
			continue
		}
		row := e.NewRow(c, 2)
		row.Fields[0] = k * 10
		tree.Insert(c, k, row)
		ref[k] = row.Fields
	}
	if tree.Size != len(ref) {
		t.Fatalf("Size = %d, want %d", tree.Size, len(ref))
	}
	if tree.Splits == 0 || tree.Height() < 2 {
		t.Errorf("no splits happened (Splits=%d Height=%d)", tree.Splits, tree.Height())
	}
	for k, want := range ref {
		row, ok := tree.Get(c, k)
		if !ok {
			t.Fatalf("key %d missing", k)
		}
		if row.Fields[0] != want[0] {
			t.Fatalf("key %d: field = %d, want %d", k, row.Fields[0], want[0])
		}
	}
	// Absent keys miss.
	for i := 0; i < 100; i++ {
		k := int64(5000 + rng.Intn(1000))
		if _, ok := tree.Get(c, k); ok {
			t.Fatalf("phantom key %d", k)
		}
	}
}

func TestBTreeDelete(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	for k := int64(0); k < 100; k++ {
		tree.Insert(c, k, e.NewRow(c, 1))
	}
	for k := int64(0); k < 100; k += 2 {
		if !tree.Delete(c, k) {
			t.Fatalf("Delete(%d) missed", k)
		}
	}
	if tree.Delete(c, 0) {
		t.Fatal("double delete succeeded")
	}
	for k := int64(0); k < 100; k++ {
		_, ok := tree.Get(c, k)
		if want := k%2 == 1; ok != want {
			t.Fatalf("Get(%d) = %v, want %v", k, ok, want)
		}
	}
	if tree.Size != 50 {
		t.Errorf("Size = %d", tree.Size)
	}
}

func TestBTreeScan(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	for k := int64(0); k < 200; k += 2 {
		r := e.NewRow(c, 1)
		r.Fields[0] = k
		tree.Insert(c, k, r)
	}
	var got []int64
	tree.Scan(c, 50, 10, func(k int64, r *Row) bool {
		got = append(got, k)
		return true
	})
	if len(got) != 10 || got[0] != 50 || got[9] != 68 {
		t.Errorf("Scan = %v", got)
	}
	// Early stop.
	n := 0
	tree.Scan(c, 0, 0, func(k int64, r *Row) bool {
		n++
		return n < 5
	})
	if n != 5 {
		t.Errorf("early-stop scan visited %d", n)
	}
	// Full scan is ordered.
	var all []int64
	tree.Scan(c, -1, 0, func(k int64, r *Row) bool {
		all = append(all, k)
		return true
	})
	if len(all) != 100 {
		t.Fatalf("full scan = %d entries", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i] <= all[i-1] {
			t.Fatalf("scan out of order at %d: %v", i, all[i-2:i+1])
		}
	}
}

func TestBTreeRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		e := newTestEnv(OptAll())
		tree := e.NewTree("t")
		c := e.NewCtx(trace.Null{}, 0)
		c.Begin()
		ref := map[int64]bool{}
		for i := 0; i < 500; i++ {
			k := int64(rng.Intn(300))
			switch rng.Intn(3) {
			case 0:
				if !ref[k] {
					tree.Insert(c, k, e.NewRow(c, 1))
					ref[k] = true
				}
			case 1:
				if tree.Delete(c, k) != ref[k] {
					return false
				}
				ref[k] = false
			case 2:
				if _, ok := tree.Get(c, k); ok != ref[k] {
					return false
				}
			}
		}
		n := 0
		for _, live := range ref {
			if live {
				n++
			}
		}
		return tree.Size == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestDuplicateInsertPanics(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	tree.Insert(c, 1, e.NewRow(c, 1))
	defer func() {
		if recover() == nil {
			t.Error("duplicate insert did not panic")
		}
	}()
	tree.Insert(c, 1, e.NewRow(c, 1))
}

func TestLoadInsertEmitsNothing(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	for k := int64(0); k < 50; k++ {
		tree.LoadInsert(k, k*2)
	}
	if tree.Size != 50 {
		t.Errorf("Size = %d", tree.Size)
	}
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	r, ok := tree.Get(c, 7)
	if !ok || r.Fields[0] != 14 {
		t.Errorf("Get(7) = %v,%v", r, ok)
	}
}

func countKind(tr *trace.Trace, k isa.Kind) int {
	return int(tr.Count(k))
}

// recordOp runs fn with a fresh recording context and returns the trace.
func recordOp(e *Env, slot int, fn func(c *Ctx)) *trace.Trace {
	b := trace.NewBuilder()
	c := e.NewCtx(b, slot)
	c.Begin()
	fn(c)
	return b.Finish()
}

func TestWorkEmitsExactInstructionCount(t *testing.T) {
	e := newTestEnv(OptAll())
	for _, n := range []int{0, 1, 35, 36, 37, 1000, 5431} {
		b := trace.NewBuilder()
		c := e.NewCtx(b, 0)
		c.Work("x", n)
		if got := b.Finish().Instrs(); got != uint64(n) {
			t.Errorf("Work(%d) emitted %d instructions", n, got)
		}
	}
}

func TestWorkMixIsRealistic(t *testing.T) {
	e := newTestEnv(OptAll())
	b := trace.NewBuilder()
	c := e.NewCtx(b, 0)
	c.Work("x", 36000)
	tr := b.Finish()
	frac := func(k isa.Kind) float64 { return float64(tr.Count(k)) / float64(tr.Instrs()) }
	if f := frac(isa.Branch); f < 0.04 || f > 0.08 {
		t.Errorf("branch fraction = %.3f", f)
	}
	if f := frac(isa.Load) + frac(isa.Store); f < 0.04 || f > 0.09 {
		t.Errorf("memory fraction = %.3f", f)
	}
}

func TestWorkStackAddressesArePrivateAndSmall(t *testing.T) {
	e := newTestEnv(OptAll())
	b0 := trace.NewBuilder()
	c0 := e.NewCtx(b0, 0)
	c0.Work("x", 3600)
	b1 := trace.NewBuilder()
	c1 := e.NewCtx(b1, 1)
	c1.Work("x", 3600)
	lines0 := map[mem.Addr]bool{}
	for _, ev := range b0.Finish().Events() {
		if ev.Kind.IsMemory() {
			lines0[ev.Addr.Line()] = true
		}
	}
	if len(lines0) > ctxStackLines {
		t.Errorf("slot 0 touched %d lines, want <= %d", len(lines0), ctxStackLines)
	}
	for _, ev := range b1.Finish().Events() {
		if ev.Kind.IsMemory() && lines0[ev.Addr.Line()] {
			t.Fatalf("slots share stack line %v", ev.Addr.Line())
		}
	}
}

func TestLatchEmissionByOptLevel(t *testing.T) {
	lazy := newTestEnv(OptAll())
	tree := lazy.NewTree("t")
	tree.LoadInsert(1, 1)
	tr := recordOp(lazy, 0, func(c *Ctx) { tree.Get(c, 1) })
	if countKind(tr, isa.LatchAcquire) != 0 {
		t.Error("LazyLatches still emitted escaped latches")
	}

	eager := newTestEnv(OptNone())
	tree2 := eager.NewTree("t")
	tree2.LoadInsert(1, 1)
	tr = recordOp(eager, 0, func(c *Ctx) { tree2.Get(c, 1) })
	acq, rel := countKind(tr, isa.LatchAcquire), countKind(tr, isa.LatchRelease)
	if acq == 0 {
		t.Fatal("unoptimized engine emitted no escaped latches")
	}
	if acq != rel {
		t.Errorf("latch acquire/release unbalanced: %d vs %d", acq, rel)
	}
}

func TestLogTailDependenceRemovedByPerEpochLog(t *testing.T) {
	shared := newTestEnv(OptNone())
	trShared := recordOp(shared, 0, func(c *Ctx) { shared.log.record(c, 8) })
	tailStores := 0
	for _, ev := range trShared.Events() {
		if ev.Kind == isa.Store && ev.Addr.Line() == shared.log.tail.Line() {
			tailStores++
		}
	}
	if tailStores == 0 {
		t.Fatal("unoptimized log never stored the shared tail")
	}

	private := newTestEnv(OptAll())
	// Two contexts append: their stores must hit disjoint lines and never
	// the tail.
	tr0 := recordOp(private, 0, func(c *Ctx) { private.log.record(c, 8) })
	tr1 := recordOp(private, 1, func(c *Ctx) { private.log.record(c, 8) })
	lines0 := map[mem.Addr]bool{}
	for _, ev := range tr0.Events() {
		if ev.Kind == isa.Store && private.logReg.Contains(ev.Addr) {
			lines0[ev.Addr.Line()] = true
		}
		if ev.Kind == isa.Store && ev.Addr.Line() == private.log.tail.Line() {
			t.Fatal("PerEpochLog still stored the shared tail in the loop body")
		}
	}
	for _, ev := range tr1.Events() {
		if ev.Kind == isa.Store && lines0[ev.Addr.Line()] {
			t.Fatal("two contexts share a log buffer line")
		}
	}
}

// lockStores records a single Lock call in isolation and counts its stores
// to shared lock-table metadata.
func lockStores(e *Env, c *Ctx, tree *Tree, key int64) int {
	b := trace.NewBuilder()
	c.SetRecorder(b)
	c.Lock(tree, key, true)
	n := 0
	for _, ev := range b.Finish().Events() {
		if ev.Kind == isa.Store && e.misc.Contains(ev.Addr) {
			n++
		}
	}
	return n
}

func TestLockInheritance(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	if s := lockStores(e, c, tree, 42); s == 0 {
		t.Error("first acquisition emitted no lock-table store")
	}
	if s := lockStores(e, c, tree, 42); s != 0 {
		t.Errorf("inherited lock emitted %d lock-table stores", s)
	}
	if e.locks.Inherited != 1 || e.locks.Acquired != 1 {
		t.Errorf("lock stats: %+v", e.locks)
	}

	// Without inheritance, repeated locks keep storing.
	e2 := newTestEnv(OptNone())
	tree2 := e2.NewTree("t")
	c2 := e2.NewCtx(trace.Null{}, 0)
	c2.Begin()
	s1 := lockStores(e2, c2, tree2, 42)
	s2 := lockStores(e2, c2, tree2, 42)
	if s1 == 0 || s2 == 0 {
		t.Errorf("unoptimized locks stopped storing: first %d, repeat %d", s1, s2)
	}
}

func TestAllocatorDependenceRemovedByPerCPUAlloc(t *testing.T) {
	sharedEnv := newTestEnv(OptNone())
	tr := recordOp(sharedEnv, 0, func(c *Ctx) { sharedEnv.NewRow(c, 2) })
	hit := false
	for _, ev := range tr.Events() {
		if ev.Kind == isa.Store && ev.Addr == sharedEnv.alloc.word {
			hit = true
		}
	}
	if !hit {
		t.Fatal("unoptimized allocator never stored the shared bump pointer")
	}

	priv := newTestEnv(OptAll())
	tr0 := recordOp(priv, 0, func(c *Ctx) { priv.NewRow(c, 2) })
	tr1 := recordOp(priv, 1, func(c *Ctx) { priv.NewRow(c, 2) })
	touched := func(tr *trace.Trace, a mem.Addr) bool {
		for _, ev := range tr.Events() {
			if ev.Kind.IsMemory() && ev.Addr == a {
				return true
			}
		}
		return false
	}
	if touched(tr0, priv.alloc.word) {
		t.Error("PerCPUAlloc still touches the shared bump pointer")
	}
	if touched(tr0, priv.alloc.perCtx[1]) || touched(tr1, priv.alloc.perCtx[0]) {
		t.Error("contexts touched each other's allocation pools")
	}
}

func TestPoolStoresRemovedByPinlessReads(t *testing.T) {
	eager := newTestEnv(OptNone())
	tree := eager.NewTree("t")
	tree.LoadInsert(1, 1)
	trEager := recordOp(eager, 0, func(c *Ctx) { tree.Get(c, 1) })

	lazy := newTestEnv(OptAll())
	tree2 := lazy.NewTree("t")
	tree2.LoadInsert(1, 1)
	trLazy := recordOp(lazy, 0, func(c *Ctx) { tree2.Get(c, 1) })

	// Count stores to pool metadata (frame/LRU lines live in misc).
	poolStores := func(e *Env, tr *trace.Trace) int {
		n := 0
		for _, ev := range tr.Events() {
			if ev.Kind == isa.Store && e.misc.Contains(ev.Addr) {
				n++
			}
		}
		return n
	}
	if s := poolStores(lazy, trLazy); s != 0 {
		t.Errorf("pinless read still stored pool metadata %d times", s)
	}
	if s := poolStores(eager, trEager); s == 0 {
		t.Error("unoptimized read never stored pool metadata")
	}
}

func TestInsertEmitsLeafHeaderStore(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("orderline")
	for k := int64(0); k < 4; k++ {
		tree.LoadInsert(k, k)
	}
	tr := recordOp(e, 0, func(c *Ctx) {
		tree.Insert(c, 100, e.NewRow(c, 1))
	})
	pc := e.PCs.Site("orderline.hdr.count.store")
	found := false
	for _, ev := range tr.Events() {
		if ev.Kind == isa.Store && ev.PC == pc {
			found = true
		}
	}
	if !found {
		t.Error("insert did not emit the leaf header store (the contended dependence)")
	}
}

func TestOptLevelsAreCumulative(t *testing.T) {
	prev := 0
	for n := 0; n < NumOptLevels; n++ {
		f := OptLevel(n)
		count := 0
		for _, on := range []bool{f.LazyLatches, f.PinlessReads, f.PerEpochLog, f.LockInheritance, f.PerCPUAlloc} {
			if on {
				count++
			}
		}
		if count != n && !(n == 5 && count == 5) {
			t.Errorf("OptLevel(%d) enables %d flags", n, count)
		}
		if count < prev {
			t.Errorf("OptLevel(%d) lost a flag", n)
		}
		prev = count
	}
	if OptLevel(5) != OptAll() {
		t.Error("OptLevel(5) != OptAll()")
	}
}

func TestRowFieldAddresses(t *testing.T) {
	e := newTestEnv(OptAll())
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	r := e.NewRow(c, 4)
	if r.fieldAddr(1)-r.fieldAddr(0) != 8 {
		t.Error("fields not 8 bytes apart")
	}
	b := trace.NewBuilder()
	c.SetRecorder(b)
	r.WriteField(c, 2, 99)
	if v := r.ReadField(c, 2); v != 99 {
		t.Errorf("ReadField = %d", v)
	}
	tr := b.Finish()
	if tr.Count(isa.Store) != 1 || tr.Count(isa.Load) != 2 {
		t.Errorf("field RMW emitted loads=%d stores=%d", tr.Count(isa.Load), tr.Count(isa.Store))
	}
}

func TestTxnLifecycle(t *testing.T) {
	e := newTestEnv(OptAll())
	b := trace.NewBuilder()
	c := e.NewCtx(b, 0)
	txn := c.Begin()
	if c.Txn() != txn {
		t.Fatal("Txn() mismatch")
	}
	tree := e.NewTree("t")
	c.Lock(tree, 1, true)
	c.Commit()
	if c.Txn() != nil {
		t.Error("transaction still attached after Commit")
	}
	if b.Finish().Instrs() == 0 {
		t.Error("txn lifecycle emitted nothing")
	}
}

func TestCommitWithoutTxnPanics(t *testing.T) {
	e := newTestEnv(OptAll())
	c := e.NewCtx(trace.Null{}, 0)
	defer func() {
		if recover() == nil {
			t.Error("Commit without Begin did not panic")
		}
	}()
	c.Commit()
}

func TestGetForUpdateEmitsDirtyAccounting(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	tree.LoadInsert(1, 7)
	pcDirty := e.PCs.Site("pool.dirty.count.store")

	countDirty := func(tr *trace.Trace) int {
		n := 0
		for _, ev := range tr.Events() {
			if ev.Kind == isa.Store && ev.PC == pcDirty {
				n++
			}
		}
		return n
	}
	read := recordOp(e, 0, func(c *Ctx) { tree.Get(c, 1) })
	if countDirty(read) != 0 {
		t.Error("plain Get emitted dirty accounting")
	}
	upd := recordOp(e, 0, func(c *Ctx) { tree.GetForUpdate(c, 1) })
	if countDirty(upd) != 1 {
		t.Errorf("GetForUpdate dirty stores = %d, want 1 (clean->dirty transition)", countDirty(upd))
	}
	// The page is now dirty: a second write-get must not re-count.
	upd2 := recordOp(e, 0, func(c *Ctx) { tree.GetForUpdate(c, 1) })
	if countDirty(upd2) != 0 {
		t.Error("already-dirty page re-counted")
	}
}

func TestCommitFlushCleansDirtyPages(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	tree.LoadInsert(1, 7)
	pcDirty := e.PCs.Site("pool.dirty.count.store")
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	tree.GetForUpdate(c, 1)
	c.Commit() // flush: the page becomes clean again
	b := trace.NewBuilder()
	c = e.NewCtx(b, 0)
	c.Begin()
	tree.GetForUpdate(c, 1)
	n := 0
	for _, ev := range b.Finish().Events() {
		if ev.Kind == isa.Store && ev.PC == pcDirty {
			n++
		}
	}
	if n != 1 {
		t.Errorf("post-flush dirtying counted %d times, want 1", n)
	}
}

func TestAbortRevertsEverything(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	r0 := tree.LoadInsert(1, 10)
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	r0.WriteField(c, 0, 99)
	r2 := e.NewRow(c, 1)
	tree.Insert(c, 2, r2)
	tree.Delete(c, 1)
	c.Abort()
	if c.Txn() != nil {
		t.Error("transaction still attached after Abort")
	}
	// Field write undone, insert undone, delete undone.
	got, ok := tree.Get(nil, 1)
	if !ok || got.Fields[0] != 10 {
		t.Errorf("delete/write not rolled back: %v %v", got, ok)
	}
	if _, ok := tree.Get(nil, 2); ok {
		t.Error("insert not rolled back")
	}
	if tree.Size != 1 {
		t.Errorf("Size = %d, want 1", tree.Size)
	}
}

func TestAbortEmitsUndoTrace(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	b := trace.NewBuilder()
	c := e.NewCtx(b, 0)
	c.Begin()
	tree.Insert(c, 5, e.NewRow(c, 1))
	before := b.Instrs()
	c.Abort()
	if b.Instrs() <= before {
		t.Error("Abort emitted no rollback work")
	}
}

func TestAbortWithoutTxnPanics(t *testing.T) {
	e := newTestEnv(OptAll())
	c := e.NewCtx(trace.Null{}, 0)
	defer func() {
		if recover() == nil {
			t.Error("Abort without Begin did not panic")
		}
	}()
	c.Abort()
}

func TestReadOnlyCommitIsCheap(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	tree.LoadInsert(1, 7)

	cost := func(write bool) uint64 {
		b := trace.NewBuilder()
		c := e.NewCtx(b, 0)
		c.Begin()
		if write {
			r, _ := tree.Get(c, 1)
			r.WriteField(c, 0, 8)
		} else {
			tree.Get(c, 1)
		}
		pre := b.Instrs()
		c.Commit()
		return b.Instrs() - pre
	}
	ro, rw := cost(false), cost(true)
	if ro*2 >= rw {
		t.Errorf("read-only commit (%d instrs) not much cheaper than writing commit (%d)", ro, rw)
	}
}

func TestScanCrossesLeaves(t *testing.T) {
	e := newTestEnv(OptAll()) // NodeCapacity 8: 30 keys span several leaves
	tree := e.NewTree("t")
	for k := int64(0); k < 30; k++ {
		tree.LoadInsert(k, k)
	}
	b := trace.NewBuilder()
	c := e.NewCtx(b, 0)
	c.Begin()
	n := 0
	tree.Scan(c, 0, 0, func(k int64, r *Row) bool { n++; return true })
	if n != 30 {
		t.Fatalf("scan visited %d", n)
	}
	// Leaf-chain walks emit header loads for each subsequent leaf.
	pcHdr := e.PCs.Site("t.hdr.count.load")
	hdrLoads := 0
	for _, ev := range b.Finish().Events() {
		if ev.Kind == isa.Load && ev.PC == pcHdr {
			hdrLoads++
		}
	}
	if hdrLoads < 3 {
		t.Errorf("leaf-chain header loads = %d, want several", hdrLoads)
	}
}

func TestSplitEmitsPageTraffic(t *testing.T) {
	e := newTestEnv(OptAll())
	tree := e.NewTree("t")
	for k := int64(0); k < 8; k++ {
		tree.LoadInsert(k, k)
	}
	tr := recordOp(e, 0, func(c *Ctx) {
		tree.Insert(c, 100, e.NewRow(c, 1)) // 9th entry: split at capacity 8
	})
	pcCopy := e.PCs.Site("t.split.copy.store")
	n := 0
	for _, ev := range tr.Events() {
		if ev.Kind == isa.Store && ev.PC == pcCopy {
			n++
		}
	}
	if tree.Splits == 0 || n == 0 {
		t.Errorf("split traffic missing: splits=%d copy stores=%d", tree.Splits, n)
	}
}

func TestLogLSNAdvances(t *testing.T) {
	e := newTestEnv(OptAll())
	c := e.NewCtx(trace.Null{}, 0)
	c.Begin()
	before := e.Log().LSN()
	e.Log().Record(c, 4)
	if e.Log().LSN() != before+1 {
		t.Errorf("LSN %d -> %d", before, e.Log().LSN())
	}
}
