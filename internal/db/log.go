package db

import "subthreads/internal/mem"

// Log is the write-ahead log. Unoptimized, every record append loads and
// stores the shared log-tail pointer — a dependence between *every* pair of
// epochs, and the first thing the paper's tuning process removes. With
// PerEpochLog each context appends to a private buffer, and the tail is only
// touched by the serial commit flush.
type Log struct {
	env  *Env
	tail mem.Addr
	lsn  uint64

	bufs    []mem.Addr // per-context buffer base
	bufOff  []int
	bufSize int
}

func newLog(e *Env) *Log {
	l := &Log{
		env:     e,
		tail:    e.misc.AllocLine(),
		bufSize: 64 * 1024,
	}
	l.bufs = make([]mem.Addr, e.cfg.Contexts)
	l.bufOff = make([]int, e.cfg.Contexts)
	for i := range l.bufs {
		l.bufs[i] = e.logReg.Alloc(uint32(l.bufSize), mem.LineSize)
	}
	return l
}

// record appends a log record of the given payload size (in words),
// emitting the tail update and a handful of body stores.
func (l *Log) record(c *Ctx, words int) {
	e := l.env
	c.work("log.record", e.cfg.Costs.LogRecord)
	l.lsn++
	bodyStores := words
	if bodyStores > 6 {
		bodyStores = 6 // the rest of the copy is folded into Work above
	}
	if e.cfg.Opt.PerEpochLog {
		base := l.bufs[c.slot]
		off := &l.bufOff[c.slot]
		for i := 0; i < bodyStores; i++ {
			c.rec.Store(e.site("log.buf.store"), base+mem.Addr(*off%l.bufSize))
			*off += mem.WordSize
		}
		return
	}
	// Shared tail: the classic cross-epoch dependence.
	c.rec.Load(e.site("log.tail.load"), l.tail)
	c.rec.ALU(4)
	c.rec.Store(e.site("log.tail.store"), l.tail)
	for i := 0; i < bodyStores; i++ {
		c.rec.Store(e.site("log.body.store"), l.tail+mem.Addr((i+1)*mem.WordSize))
	}
}

// commitFlush emits the serial log flush at transaction commit: the tail is
// advanced once, covering all buffered records.
func (l *Log) commitFlush(c *Ctx) {
	e := l.env
	c.work("log.flush", 600)
	c.rec.Load(e.site("log.tail.load"), l.tail)
	c.rec.ALU(8)
	c.rec.Store(e.site("log.tail.store"), l.tail)
	for i := range l.bufOff {
		l.bufOff[i] = 0
	}
}

// LSN returns the current log sequence number (functional bookkeeping).
func (l *Log) LSN() uint64 { return l.lsn }

// Record is the exported form of record, for workloads that append custom
// log records.
func (l *Log) Record(c *Ctx, words int) { l.record(c, words) }
