// Package db is the storage-engine substrate the TPC-C transactions run on —
// a from-scratch engine in the spirit of BerkeleyDB (which the paper builds
// on): slotted pages behind a buffer pool, B+-trees, page latches, a
// two-phase-locking lock table, and a write-ahead log.
//
// The engine executes real data-structure code over Go-native state, but
// every structure also owns simulated addresses (internal/mem), and every
// operation emits loads, stores, branches, latch operations, and calibrated
// compute into a trace recorder. The paper's observation — that cross-thread
// dependences come from *database internals* (log tail, latches, B-tree page
// headers, buffer-pool metadata), not from the SQL itself — falls out
// naturally: those internals are shared simulated addresses here.
//
// OptFlags reproduces the iterative tuning process of §3.2 / the authors'
// VLDB'05 paper: each flag removes one class of cross-epoch dependence, and
// the fully-optimized configuration is what the paper's Figure 5 benchmarks
// run.
package db

import (
	"fmt"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

// OptFlags selects which TLS-oriented optimizations are applied to the
// engine. Each corresponds to one iteration of the profile-and-tune loop of
// §3.2: the profiler points at a load/store pair, the "programmer" removes
// it.
type OptFlags struct {
	// LazyLatches stops crab-latching B-tree descents with escaped
	// (synchronizing) latches; conflicts are left to TLS dependence
	// tracking instead.
	LazyLatches bool
	// PinlessReads removes buffer-pool pin/unpin reference-count stores
	// and the LRU-list bump on every page access.
	PinlessReads bool
	// PerEpochLog gives each execution context a private log buffer,
	// removing the log-tail dependence from the loop body.
	PerEpochLog bool
	// LockInheritance lets epochs inherit row locks already held by the
	// surrounding transaction instead of re-acquiring them with stores.
	LockInheritance bool
	// PerCPUAlloc gives each context a private allocation pool, removing
	// the global heap-bump-pointer dependence on inserts.
	PerCPUAlloc bool
}

// OptNone returns the unoptimized engine — the starting point of the tuning
// process.
func OptNone() OptFlags { return OptFlags{} }

// OptAll returns the fully-optimized engine used by the paper's main
// evaluation.
func OptAll() OptFlags {
	return OptFlags{
		LazyLatches:     true,
		PinlessReads:    true,
		PerEpochLog:     true,
		LockInheritance: true,
		PerCPUAlloc:     true,
	}
}

// OptLevel returns the cumulative optimization state after n tuning
// iterations (0 = none ... 5 = all), mirroring Figure 2's one-dependence-at-
// a-time narrative.
func OptLevel(n int) OptFlags {
	var f OptFlags
	if n >= 1 {
		f.LazyLatches = true
	}
	if n >= 2 {
		f.PinlessReads = true
	}
	if n >= 3 {
		f.PerEpochLog = true
	}
	if n >= 4 {
		f.LockInheritance = true
	}
	if n >= 5 {
		f.PerCPUAlloc = true
	}
	return f
}

// NumOptLevels is the number of distinct OptLevel configurations.
const NumOptLevels = 6

// Config parameterizes the engine.
type Config struct {
	Opt OptFlags
	// PageSize is the slotted-page size in bytes.
	PageSize int
	// NodeCapacity is the number of entries per B+-tree node.
	NodeCapacity int
	// Contexts is the number of concurrent execution contexts to
	// provision private stacks, log buffers, and allocation pools for.
	Contexts int
	// Costs calibrates the synthetic compute surrounding each operation.
	Costs Costs
}

// DefaultConfig returns an engine configuration sized like the paper's
// BerkeleyDB setup (4KB pages) with costs calibrated so TPC-C thread sizes
// land in the Table 2 ranges.
func DefaultConfig() Config {
	return Config{
		Opt:          OptAll(),
		PageSize:     4096,
		NodeCapacity: 64,
		Contexts:     16,
		Costs:        DefaultCosts(),
	}
}

// Env is one database environment: address space, buffer pool, lock table,
// log, and the PC registry for instrumentation sites.
type Env struct {
	cfg   Config
	Space *mem.Space
	PCs   *isa.PCRegistry

	heap   *mem.Region
	stacks *mem.Region
	logReg *mem.Region
	misc   *mem.Region

	pool    *Pool
	locks   *LockTable
	log     *Log
	alloc   allocator
	nextPg  uint32
	nextTxn uint64

	trees []*Tree
}

// NewEnv creates an environment. The address-space regions are sized
// generously; exhaustion panics (it would be a workload-sizing bug).
func NewEnv(cfg Config) *Env {
	if cfg.PageSize <= 0 || cfg.NodeCapacity < 4 || cfg.Contexts < 1 {
		panic(fmt.Sprintf("db: bad config %+v", cfg))
	}
	sp := mem.NewSpace()
	e := &Env{
		cfg:    cfg,
		Space:  sp,
		PCs:    isa.NewPCRegistry(),
		heap:   sp.NewRegion("heap", 512<<20),
		stacks: sp.NewRegion("stacks", 1<<20),
		logReg: sp.NewRegion("log", 64<<20),
		misc:   sp.NewRegion("misc", 32<<20),
	}
	e.pool = newPool(e, 1024)
	e.locks = newLockTable(e, 256)
	e.log = newLog(e)
	e.alloc.init(e)
	return e
}

// Config returns the environment's configuration.
func (e *Env) Config() Config { return e.cfg }

// Opt returns the active optimization flags.
func (e *Env) Opt() OptFlags { return e.cfg.Opt }

// Trees returns the tables created in this environment.
func (e *Env) Trees() []*Tree { return e.trees }

// Misc exposes the metadata region for workload-level shared structures
// (e.g. aggregation workspaces) that live alongside engine metadata.
func (e *Env) Misc() *mem.Region { return e.misc }

// EmitLoad / EmitStore / EmitALU let the workload layer emit raw accesses to
// addresses it manages (shared aggregation state), through the context's
// recorder with a named site.
func (c *Ctx) EmitLoad(site string, addr mem.Addr) { c.rec.Load(c.env.site(site), addr) }
func (c *Ctx) EmitStore(site string, addr mem.Addr) {
	c.noteWrite()
	c.rec.Store(c.env.site(site), addr)
}
func (c *Ctx) EmitALU(n uint32) { c.rec.ALU(n) }

// site returns the stable synthetic PC for a named instrumentation site.
func (e *Env) site(name string) isa.PC { return e.PCs.Site(name) }

// allocator is the heap allocator for row storage. Unoptimized, it is a
// single bump pointer whose word every insert loads and stores — a classic
// cross-epoch dependence — and rows allocated by different epochs land on
// adjacent (often shared) cache lines. With PerCPUAlloc each context owns a
// private pool: private bump word and a private arena, so neither the
// metadata nor the fresh rows are shared.
type allocator struct {
	env    *Env
	word   mem.Addr // the shared bump pointer's simulated address
	perCtx []mem.Addr
	arenas []*mem.Region
}

func (a *allocator) init(e *Env) {
	a.env = e
	a.word = e.misc.AllocLine()
	a.perCtx = make([]mem.Addr, e.cfg.Contexts)
	a.arenas = make([]*mem.Region, e.cfg.Contexts)
	for i := range a.perCtx {
		a.perCtx[i] = e.misc.AllocLine()
		a.arenas[i] = e.Space.NewRegion(fmt.Sprintf("arena-%d", i), 16<<20)
	}
}

// alloc carves words out of the heap, emitting the allocator's memory
// behaviour into the context's trace.
func (a *allocator) alloc(c *Ctx, words int) mem.Addr {
	pcL := a.env.site("heap.bump.load")
	pcS := a.env.site("heap.bump.store")
	if a.env.cfg.Opt.PerCPUAlloc {
		// Private pool: same code path, private metadata and arena.
		c.rec.Load(pcL, a.perCtx[c.slot])
		c.rec.ALU(6)
		c.rec.Store(pcS, a.perCtx[c.slot])
		return a.arenas[c.slot].AllocWords(words)
	}
	c.rec.Load(pcL, a.word)
	c.rec.ALU(6)
	c.rec.Store(pcS, a.word)
	return a.env.heap.AllocWords(words)
}

// Row is one table row: a simulated record plus Go-native field values.
type Row struct {
	addr   mem.Addr
	Fields []int64
}

// Addr returns the row's simulated base address.
func (r *Row) Addr() mem.Addr { return r.addr }

// fieldAddr returns the simulated address of field i.
func (r *Row) fieldAddr(i int) mem.Addr {
	return r.addr + mem.Addr(i*8)
}

// NewRow allocates a row with n fields, emitting allocator traffic.
func (e *Env) NewRow(c *Ctx, n int) *Row {
	addr := e.alloc.alloc(c, n*2)
	return &Row{addr: addr, Fields: make([]int64, n)}
}

// newRowQuiet allocates a row without emitting trace events (bulk loading).
func (e *Env) newRowQuiet(n int) *Row {
	return &Row{addr: e.heap.AllocWords(n * 2), Fields: make([]int64, n)}
}

// ReadField emits the loads for reading field i and returns its value.
func (r *Row) ReadField(c *Ctx, i int) int64 {
	c.rec.Load(c.env.site("row.field.load"), r.fieldAddr(i))
	c.rec.ALU(2)
	return r.Fields[i]
}

// WriteField emits a read-modify-write of field i.
func (r *Row) WriteField(c *Ctx, i int, v int64) {
	c.noteWrite()
	old := r.Fields[i]
	c.noteUndo(func() { r.Fields[i] = old })
	c.rec.Load(c.env.site("row.field.load"), r.fieldAddr(i))
	c.rec.ALU(3)
	c.rec.Store(c.env.site("row.field.store"), r.fieldAddr(i))
	r.Fields[i] = v
}

// Log exposes the environment's write-ahead log.
func (e *Env) Log() *Log { return e.log }
