package db

// Costs calibrates the synthetic compute that surrounds each engine
// operation, standing in for the instructions of the real BerkeleyDB + SQL
// code paths that our trace generator does not execute natively. The values
// are chosen so that the TPC-C speculative threads land in the paper's
// Table 2 size ranges (7.5k–490k dynamic instructions per thread).
type Costs struct {
	// BtreeLevel is charged per level of a B+-tree descent.
	BtreeLevel int
	// PoolGet is charged per buffer-pool page lookup.
	PoolGet int
	// RowRead / RowUpdate wrap record access.
	RowRead   int
	RowUpdate int
	// LeafInsert / LeafDelete wrap leaf modifications.
	LeafInsert int
	LeafDelete int
	// Lock is charged per lock-manager call.
	Lock int
	// LogRecord is charged per WAL append.
	LogRecord int
	// SQLRow is the SQL-layer overhead per statement row — parsing
	// cursors, copying tuples, predicate evaluation. This dominates
	// thread size, as in the paper's workloads.
	SQLRow int
	// TxnBegin / TxnCommit wrap transactions. TxnCommit is the cost of a
	// writing transaction's commit (log flush); read-only commits cost
	// ReadOnlyCommit.
	TxnBegin       int
	TxnCommit      int
	ReadOnlyCommit int
}

// DefaultCosts returns the calibrated cost model.
func DefaultCosts() Costs {
	return Costs{
		BtreeLevel:     450,
		PoolGet:        250,
		RowRead:        900,
		RowUpdate:      1100,
		LeafInsert:     1600,
		LeafDelete:     1400,
		Lock:           800,
		LogRecord:      600,
		SQLRow:         12000,
		TxnBegin:       6000,
		TxnCommit:      30000,
		ReadOnlyCommit: 5000,
	}
}
