package db

import "math"

// StateDigest hashes the logical content of every table — tree name, then
// each (key, fields) row in key order — into one FNV-1a word. It reads the
// functional state only (no simulated addresses, no trace emission), so two
// executions that computed the same database agree on the digest regardless
// of software mode or memory layout. The differential oracle compares the
// digest of a flat/serial build against the TLS-transformed build.
func (e *Env) StateDigest() uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	byte8 := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime
			v >>= 8
		}
	}
	for _, t := range e.trees {
		for i := 0; i < len(t.name); i++ {
			h ^= uint64(t.name[i])
			h *= prime
		}
		t.Scan(nil, math.MinInt64, 0, func(key int64, r *Row) bool {
			byte8(uint64(key))
			byte8(uint64(len(r.Fields)))
			for _, f := range r.Fields {
				byte8(uint64(f))
			}
			return true
		})
	}
	return h
}
