package isa

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		ALU:          "alu",
		IntDiv:       "idiv",
		Branch:       "branch",
		Load:         "load",
		Store:        "store",
		LatchAcquire: "latch-acq",
		LatchRelease: "latch-rel",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
	if got := Kind(200).String(); got != "kind(200)" {
		t.Errorf("unknown kind = %q", got)
	}
}

func TestIsMemory(t *testing.T) {
	for k := Kind(0); int(k) < NumKinds; k++ {
		want := k == Load || k == Store
		if got := k.IsMemory(); got != want {
			t.Errorf("%v.IsMemory() = %v, want %v", k, got, want)
		}
	}
}

func TestDefaultLatenciesMatchTable1(t *testing.T) {
	l := DefaultLatencies()
	cases := []struct {
		kind Kind
		want uint32
	}{
		{ALU, 1},
		{IntMul, 2},
		{IntDiv, 76},
		{FPOp, 2},
		{FPDiv, 15},
		{FPSqrt, 20},
		{Branch, 1},
		{Load, 1},  // issue slot only; memory latency is elsewhere
		{Store, 1}, // issue slot only
	}
	for _, c := range cases {
		if got := l.Of(c.kind); got != c.want {
			t.Errorf("latency of %v = %d, want %d", c.kind, got, c.want)
		}
	}
	if l.MispredictPenalty == 0 {
		t.Error("mispredict penalty must be nonzero")
	}
}

func TestPCRegistry(t *testing.T) {
	r := NewPCRegistry()
	a := r.Site("btree.search.key")
	b := r.Site("log.append.tail")
	if a == b {
		t.Fatalf("distinct sites got same PC %d", a)
	}
	if a == 0 || b == 0 {
		t.Fatal("PC 0 must be reserved")
	}
	if again := r.Site("btree.search.key"); again != a {
		t.Errorf("Site not stable: %d then %d", a, again)
	}
	if got := r.Name(a); got != "btree.search.key" {
		t.Errorf("Name(%d) = %q", a, got)
	}
	if got := r.Name(0); got != "<none>" {
		t.Errorf("Name(0) = %q", got)
	}
	if got := r.Name(9999); got != "<unknown>" {
		t.Errorf("Name(9999) = %q", got)
	}
	if r.Len() != 2 {
		t.Errorf("Len = %d, want 2", r.Len())
	}
}
