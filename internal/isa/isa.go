// Package isa defines the abstract instruction set used by the trace-driven
// simulator: the event kinds a simulated program can emit, the functional-unit
// latencies from Table 1 of the paper, and a registry that hands out stable
// synthetic program counters for instrumentation sites.
//
// The simulator is trace driven, like the one in the paper: the workload
// substrate (internal/db, internal/tpcc) executes real data-structure code
// over a simulated address space and records a stream of events; the timing
// model replays that stream. Instructions are therefore classified only as
// precisely as the timing model needs.
package isa

import "fmt"

// Kind classifies a trace event.
type Kind uint8

const (
	// ALU is a run of simple integer operations (1-cycle latency each).
	// Runs are compressed: one event carries a repeat count.
	ALU Kind = iota
	// IntMul is an integer multiply (2 cycles, Table 1).
	IntMul
	// IntDiv is an integer divide (76 cycles, Table 1).
	IntDiv
	// FPOp is a generic floating-point operation (2 cycles, Table 1).
	FPOp
	// FPDiv is a floating-point divide (15 cycles, Table 1).
	FPDiv
	// FPSqrt is a floating-point square root (20 cycles, Table 1).
	FPSqrt
	// Branch is a conditional branch with a recorded outcome; the core
	// model charges a penalty on mispredictions.
	Branch
	// Load reads one word of simulated memory.
	Load
	// Store writes one word of simulated memory.
	Store
	// LatchAcquire acquires a latch using escaped speculation: a
	// speculative epoch that finds the latch held by a logically-earlier
	// uncommitted epoch stalls (the paper's "Latch Stall" category).
	LatchAcquire
	// LatchRelease releases a latch acquired with LatchAcquire.
	LatchRelease
	numKinds
)

// NumKinds is the number of distinct event kinds.
const NumKinds = int(numKinds)

var kindNames = [...]string{
	ALU:          "alu",
	IntMul:       "imul",
	IntDiv:       "idiv",
	FPOp:         "fp",
	FPDiv:        "fpdiv",
	FPSqrt:       "fpsqrt",
	Branch:       "branch",
	Load:         "load",
	Store:        "store",
	LatchAcquire: "latch-acq",
	LatchRelease: "latch-rel",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// IsMemory reports whether events of this kind access simulated memory
// (and therefore participate in dependence tracking).
func (k Kind) IsMemory() bool {
	return k == Load || k == Store
}

// Latencies holds per-kind execution latencies in cycles, mirroring the
// pipeline parameters of Table 1 in the paper.
type Latencies struct {
	ALU    uint32 // all other integer: 1 cycle
	IntMul uint32 // 2 cycles
	IntDiv uint32 // 76 cycles
	FPOp   uint32 // all other FP: 2 cycles
	FPDiv  uint32 // 15 cycles
	FPSqrt uint32 // 20 cycles
	Branch uint32 // 1 cycle when predicted correctly

	// MispredictPenalty is charged when the branch predictor is wrong
	// (front-end refill of the modeled pipeline).
	MispredictPenalty uint32
}

// DefaultLatencies returns the latencies from Table 1 of the paper.
func DefaultLatencies() Latencies {
	return Latencies{
		ALU:               1,
		IntMul:            2,
		IntDiv:            76,
		FPOp:              2,
		FPDiv:             15,
		FPSqrt:            20,
		Branch:            1,
		MispredictPenalty: 12,
	}
}

// Of returns the execution latency for one instruction of kind k.
// Memory and latch kinds are resolved by the memory system, not here;
// they report 1 (the issue slot).
func (l *Latencies) Of(k Kind) uint32 {
	switch k {
	case ALU:
		return l.ALU
	case IntMul:
		return l.IntMul
	case IntDiv:
		return l.IntDiv
	case FPOp:
		return l.FPOp
	case FPDiv:
		return l.FPDiv
	case FPSqrt:
		return l.FPSqrt
	case Branch:
		return l.Branch
	default:
		return 1
	}
}
