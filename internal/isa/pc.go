package isa

// PC is a synthetic program counter. The workload substrate registers one PC
// per static instrumentation site (a named load, store, or branch in the
// database engine), so the profiling support of §3.1 — which reports
// load/store PC pairs to the programmer — has stable, human-readable PCs to
// work with.
type PC uint32

// PCRegistry assigns stable PCs to named instrumentation sites. It is not
// safe for concurrent use; the simulator is single-goroutine by design
// (a discrete simulation with a global clock).
type PCRegistry struct {
	byName map[string]PC
	names  []string
	next   PC
}

// NewPCRegistry returns an empty registry. PC 0 is reserved and never issued
// so that the zero value of PC means "no site".
func NewPCRegistry() *PCRegistry {
	return &PCRegistry{
		byName: make(map[string]PC),
		names:  []string{"<none>"},
		next:   1,
	}
}

// Site returns the PC for name, assigning a fresh one on first use.
// PCs are assigned densely starting at 1, spaced by 4 when converted with
// Addr to resemble real instruction addresses.
func (r *PCRegistry) Site(name string) PC {
	if pc, ok := r.byName[name]; ok {
		return pc
	}
	pc := r.next
	r.next++
	r.byName[name] = pc
	r.names = append(r.names, name)
	return pc
}

// Name returns the site name for pc, or "<none>" for the zero PC and
// "<unknown>" for a PC this registry never issued.
func (r *PCRegistry) Name(pc PC) string {
	if int(pc) < len(r.names) {
		return r.names[pc]
	}
	return "<unknown>"
}

// Len reports how many sites have been registered (excluding the reserved
// zero PC).
func (r *PCRegistry) Len() int { return len(r.names) - 1 }

// Names returns the registered site names in PC order (PC 1 first), the
// serializable form of the registry: PCRegistryFromNames(r.Names()) yields
// a registry that resolves every PC this one issued to the same name.
func (r *PCRegistry) Names() []string {
	out := make([]string, len(r.names)-1)
	copy(out, r.names[1:])
	return out
}

// PCRegistryFromNames rebuilds a registry from a Names snapshot, assigning
// PCs 1..len(names) in order — the decode half of persisting a registry.
func PCRegistryFromNames(names []string) *PCRegistry {
	r := NewPCRegistry()
	for _, n := range names {
		r.Site(n)
	}
	return r
}
