// Package mem models the simulated physical address space that the workload
// substrate allocates its data structures in. Only addresses matter: the
// simulator tracks dependences and cache behaviour by address, while the
// database engine keeps its actual data in native Go structures. This mirrors
// the paper's trace-driven methodology, where the simulator consumes address
// traces rather than architecturally executing the program.
package mem

import "fmt"

// Addr is a simulated physical address.
type Addr uint32

// Geometry constants shared by the whole memory system (Table 1: 32 B lines).
const (
	// WordSize is the access granularity of loads and stores, and the
	// granularity at which speculative modifications are tracked in the L2.
	WordSize = 4
	// LineSize is the cache line size everywhere in the hierarchy.
	LineSize = 32
	// WordsPerLine is how many speculative-modification mask bits a line needs.
	WordsPerLine = LineSize / WordSize
)

// Line returns the line-aligned base address containing a.
func (a Addr) Line() Addr { return a &^ (LineSize - 1) }

// LineIndex returns the dense index of a's line in the address space —
// the index direct-mapped hardware tables (and their software models) use
// instead of hashing the address.
func (a Addr) LineIndex() uint32 { return uint32(a) / LineSize }

// Word returns the word-aligned address containing a.
func (a Addr) Word() Addr { return a &^ (WordSize - 1) }

// WordInLine returns the index (0..WordsPerLine-1) of a's word within its line.
func (a Addr) WordInLine() uint { return uint(a%LineSize) / WordSize }

// WordMask returns the single-bit speculative-modification mask for a's word.
func WordMask(a Addr) uint8 { return 1 << a.WordInLine() }

func (a Addr) String() string { return fmt.Sprintf("0x%08x", uint32(a)) }

// A Region is a named carve-out of the address space (heap pages, the log,
// the lock table, per-CPU private stacks, ...). Keeping structures in
// distinct regions makes simulator diagnostics and profiler output readable.
type Region struct {
	Name string
	Base Addr
	Size uint32

	cur Addr
}

// Remaining reports how many bytes are still unallocated in the region.
func (r *Region) Remaining() uint32 { return r.Size - uint32(r.cur-r.Base) }

// Alloc carves size bytes, aligned to align (a power of two), out of the
// region. It panics if the region is exhausted: the workloads size their
// regions up front, so exhaustion is a programming error, not a runtime
// condition to handle.
func (r *Region) Alloc(size, align uint32) Addr {
	if align == 0 || align&(align-1) != 0 {
		panic(fmt.Sprintf("mem: bad alignment %d", align))
	}
	a := (r.cur + Addr(align-1)) &^ Addr(align-1)
	end := a + Addr(size)
	if end < a || uint32(end-r.Base) > r.Size {
		panic(fmt.Sprintf("mem: region %q exhausted (size %d, requested %d)", r.Name, r.Size, size))
	}
	r.cur = end
	return a
}

// AllocWords is shorthand for allocating n word-aligned words.
func (r *Region) AllocWords(n int) Addr {
	return r.Alloc(uint32(n)*WordSize, WordSize)
}

// AllocLine allocates one full line-aligned cache line. Hot shared words
// (latches, counters, list heads) get their own line to make false sharing
// between unrelated structures impossible — any cross-thread conflict the
// simulator reports on them is a genuine dependence.
func (r *Region) AllocLine() Addr {
	return r.Alloc(LineSize, LineSize)
}

// Contains reports whether a falls inside the region.
func (r *Region) Contains(a Addr) bool {
	return a >= r.Base && uint32(a-r.Base) < r.Size
}

// Space is the whole simulated address space, subdivided into regions.
type Space struct {
	regions []*Region
	next    Addr
}

// NewSpace returns an empty address space. Address 0 is left unmapped so the
// zero Addr can mean "nothing".
func NewSpace() *Space {
	return &Space{next: LineSize}
}

// NewRegion carves a fresh region of the given size (rounded up to a line)
// out of the space.
func (s *Space) NewRegion(name string, size uint32) *Region {
	size = (size + LineSize - 1) &^ (LineSize - 1)
	base := s.next
	end := base + Addr(size)
	if end < base {
		panic(fmt.Sprintf("mem: address space exhausted creating region %q", name))
	}
	s.next = end
	r := &Region{Name: name, Base: base, Size: size, cur: base}
	s.regions = append(s.regions, r)
	return r
}

// RegionOf returns the region containing a, or nil.
func (s *Space) RegionOf(a Addr) *Region {
	for _, r := range s.regions {
		if r.Contains(a) {
			return r
		}
	}
	return nil
}

// Used reports the total bytes carved into regions so far.
func (s *Space) Used() uint32 { return uint32(s.next) }
