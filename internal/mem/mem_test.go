package mem

import (
	"testing"
	"testing/quick"
)

func TestGeometry(t *testing.T) {
	a := Addr(0x1234)
	if got := a.Line(); got != 0x1220 {
		t.Errorf("Line(%v) = %v", a, got)
	}
	if got := a.Word(); got != 0x1234 {
		t.Errorf("Word(%v) = %v", a, got)
	}
	b := Addr(0x1236)
	if got := b.Word(); got != 0x1234 {
		t.Errorf("Word(%v) = %v", b, got)
	}
	if got := a.WordInLine(); got != 5 {
		t.Errorf("WordInLine(%v) = %d, want 5", a, got)
	}
	if got := WordMask(a); got != 1<<5 {
		t.Errorf("WordMask(%v) = %08b", a, got)
	}
}

func TestGeometryProperties(t *testing.T) {
	f := func(raw uint32) bool {
		a := Addr(raw)
		l := a.Line()
		return l%LineSize == 0 && // aligned
			a >= l && a < l+LineSize && // contains a
			a.WordInLine() < WordsPerLine &&
			WordMask(a) != 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionAlloc(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion("heap", 4096)
	if r.Base == 0 {
		t.Fatal("region base must not be 0")
	}
	if r.Base%LineSize != 0 {
		t.Fatalf("region base %v not line aligned", r.Base)
	}
	a := r.AllocWords(1)
	b := r.AllocWords(1)
	if b != a+WordSize {
		t.Errorf("sequential word allocs: %v then %v", a, b)
	}
	l := r.AllocLine()
	if l%LineSize != 0 {
		t.Errorf("AllocLine returned unaligned %v", l)
	}
	if !r.Contains(a) || !r.Contains(l) {
		t.Error("region does not contain its own allocations")
	}
	if r.Contains(r.Base + Addr(r.Size)) {
		t.Error("region claims to contain its one-past-end address")
	}
}

func TestRegionExhaustionPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on exhaustion")
		}
	}()
	s := NewSpace()
	r := s.NewRegion("tiny", 64)
	r.Alloc(128, 4)
}

func TestBadAlignmentPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-power-of-two alignment")
		}
	}()
	s := NewSpace()
	r := s.NewRegion("x", 64)
	r.Alloc(4, 3)
}

func TestRegionsDisjoint(t *testing.T) {
	s := NewSpace()
	a := s.NewRegion("a", 100) // rounds up to 128
	b := s.NewRegion("b", 100)
	if a.Base+Addr(a.Size) > b.Base {
		t.Errorf("regions overlap: a=[%v,+%d) b=[%v,+%d)", a.Base, a.Size, b.Base, b.Size)
	}
	if got := s.RegionOf(a.Base + 4); got != a {
		t.Errorf("RegionOf inside a = %v", got)
	}
	if got := s.RegionOf(b.Base); got != b {
		t.Errorf("RegionOf inside b = %v", got)
	}
	if got := s.RegionOf(0); got != nil {
		t.Errorf("RegionOf(0) = %v, want nil", got)
	}
}

func TestRemaining(t *testing.T) {
	s := NewSpace()
	r := s.NewRegion("r", 128)
	if r.Remaining() != 128 {
		t.Fatalf("fresh Remaining = %d", r.Remaining())
	}
	r.AllocWords(2)
	if r.Remaining() != 120 {
		t.Errorf("after 8 bytes, Remaining = %d", r.Remaining())
	}
}
