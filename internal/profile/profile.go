// Package profile implements the paper's hardware support for profiling
// violated inter-thread dependences (§3.1):
//
//   - Each processor maintains an *exposed load table*: a moderate-sized
//     direct-mapped table of load PCs indexed by cache tag, updated on every
//     exposed speculative load.
//   - When the L2 detects a violation, it pairs the violating store PC with
//     the exposed load PC looked up by cache tag, and charges the failed
//     speculation cycles of the rewound sub-thread(s) to that load/store PC
//     pair.
//   - The L2 keeps a bounded list of pairs; on overflow the entry with the
//     least total cycles is reclaimed. A software interface exposes the list
//     so the programmer can tune away the most harmful dependences (§3.2).
package profile

import (
	"fmt"
	"sort"
	"strings"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

// ExposedLoadTable is the per-processor direct-mapped table of exposed load
// PCs, indexed by cache tag.
type ExposedLoadTable struct {
	tags []mem.Addr
	pcs  []isa.PC
	mask uint32
}

// NewExposedLoadTable builds a table with the given number of entries
// (a power of two).
func NewExposedLoadTable(entries int) *ExposedLoadTable {
	if entries <= 0 || entries&(entries-1) != 0 {
		panic(fmt.Sprintf("profile: table entries %d not a power of two", entries))
	}
	return &ExposedLoadTable{
		tags: make([]mem.Addr, entries),
		pcs:  make([]isa.PC, entries),
		mask: uint32(entries - 1),
	}
}

func (t *ExposedLoadTable) index(line mem.Addr) uint32 {
	return uint32(line/mem.LineSize) & t.mask
}

// Record notes that the exposed load at pc touched addr's line. A later
// conflicting entry simply overwrites (direct mapped).
func (t *ExposedLoadTable) Record(addr mem.Addr, pc isa.PC) {
	line := addr.Line()
	i := t.index(line)
	t.tags[i] = line
	t.pcs[i] = pc
}

// Lookup returns the PC of the most recent exposed load of addr's line.
// ok is false when the entry was overwritten or never recorded.
func (t *ExposedLoadTable) Lookup(addr mem.Addr) (isa.PC, bool) {
	line := addr.Line()
	i := t.index(line)
	if t.tags[i] != line || t.pcs[i] == 0 {
		return 0, false
	}
	return t.pcs[i], true
}

// Reset clears the table (on epoch switch).
func (t *ExposedLoadTable) Reset() {
	for i := range t.tags {
		t.tags[i] = 0
		t.pcs[i] = 0
	}
}

// Pair identifies one static cross-thread dependence.
type Pair struct {
	LoadPC  isa.PC
	StorePC isa.PC
}

// PairStat is one row of the profiler's report.
type PairStat struct {
	Pair
	// FailedCycles is the total failed speculation attributed to this
	// dependence — the metric the programmer sorts by when tuning (§3.2).
	FailedCycles uint64
	// Violations counts how many rewinds this pair caused.
	Violations uint64
}

// PairList is the L2-resident bounded list of load/store PC pairs with
// attributed failed-speculation cycles.
type PairList struct {
	capacity int
	pairs    map[Pair]*PairStat

	// Reclaimed counts evictions forced by the capacity bound.
	Reclaimed uint64
}

// NewPairList builds a list bounded to capacity entries.
func NewPairList(capacity int) *PairList {
	if capacity < 1 {
		panic("profile: pair list capacity < 1")
	}
	return &PairList{capacity: capacity, pairs: make(map[Pair]*PairStat)}
}

// Attribute charges cycles of failed speculation to the load/store pair.
// When the list is full, the entry with the least total cycles is reclaimed
// to make room (§3.1).
func (l *PairList) Attribute(p Pair, cycles uint64) {
	if st := l.pairs[p]; st != nil {
		st.FailedCycles += cycles
		st.Violations++
		return
	}
	if len(l.pairs) >= l.capacity {
		var worst Pair
		min := ^uint64(0)
		for pair, st := range l.pairs {
			if st.FailedCycles < min {
				min = st.FailedCycles
				worst = pair
			}
		}
		delete(l.pairs, worst)
		l.Reclaimed++
	}
	l.pairs[p] = &PairStat{Pair: p, FailedCycles: cycles, Violations: 1}
}

// Len reports the number of tracked pairs.
func (l *PairList) Len() int { return len(l.pairs) }

// Top returns up to n pairs ordered by decreasing failed cycles — the
// software interface the programmer tunes from.
func (l *PairList) Top(n int) []PairStat {
	out := make([]PairStat, 0, len(l.pairs))
	for _, st := range l.pairs {
		out = append(out, *st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].FailedCycles != out[j].FailedCycles {
			return out[i].FailedCycles > out[j].FailedCycles
		}
		if out[i].LoadPC != out[j].LoadPC {
			return out[i].LoadPC < out[j].LoadPC
		}
		return out[i].StorePC < out[j].StorePC
	})
	if n < len(out) {
		out = out[:n]
	}
	return out
}

// TotalFailedCycles sums the attributed cycles across all tracked pairs.
func (l *PairList) TotalFailedCycles() uint64 {
	var sum uint64
	for _, st := range l.pairs {
		sum += st.FailedCycles
	}
	return sum
}

// Report renders the top n dependences with site names resolved through the
// PC registry, mimicking the profile the paper's programmer iterates on.
func (l *PairList) Report(reg *isa.PCRegistry, n int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-10s  %-34s -> %-34s\n", "failed(cyc)", "violations", "load site", "store site")
	for _, st := range l.Top(n) {
		fmt.Fprintf(&b, "%-12d %-10d  %-34s -> %-34s\n",
			st.FailedCycles, st.Violations, reg.Name(st.LoadPC), reg.Name(st.StorePC))
	}
	return b.String()
}
