package profile

import (
	"strings"
	"testing"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

func TestExposedLoadTable(t *testing.T) {
	tbl := NewExposedLoadTable(8)
	a := mem.Addr(0x100)
	tbl.Record(a+4, 7) // same line as a
	pc, ok := tbl.Lookup(a)
	if !ok || pc != 7 {
		t.Fatalf("Lookup = %v,%v", pc, ok)
	}
	if _, ok := tbl.Lookup(0x900); ok {
		t.Error("lookup of unrecorded line hit")
	}
	tbl.Reset()
	if _, ok := tbl.Lookup(a); ok {
		t.Error("lookup after Reset hit")
	}
}

func TestExposedLoadTableConflict(t *testing.T) {
	tbl := NewExposedLoadTable(2) // lines 0 and 2 collide
	l0 := mem.Addr(0 * mem.LineSize)
	l2 := mem.Addr(2 * mem.LineSize)
	tbl.Record(l0, 1)
	tbl.Record(l2, 2) // evicts l0 (direct mapped)
	if _, ok := tbl.Lookup(l0); ok {
		t.Error("conflicting entry survived")
	}
	if pc, ok := tbl.Lookup(l2); !ok || pc != 2 {
		t.Errorf("winner lost: %v,%v", pc, ok)
	}
}

func TestExposedLoadTableValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("non-power-of-two size did not panic")
		}
	}()
	NewExposedLoadTable(3)
}

func TestPairListAttribution(t *testing.T) {
	l := NewPairList(4)
	p := Pair{LoadPC: 1, StorePC: 2}
	l.Attribute(p, 100)
	l.Attribute(p, 50)
	top := l.Top(10)
	if len(top) != 1 || top[0].FailedCycles != 150 || top[0].Violations != 2 {
		t.Fatalf("top = %+v", top)
	}
	if l.TotalFailedCycles() != 150 {
		t.Errorf("TotalFailedCycles = %d", l.TotalFailedCycles())
	}
}

func TestPairListOrdering(t *testing.T) {
	l := NewPairList(8)
	l.Attribute(Pair{1, 2}, 10)
	l.Attribute(Pair{3, 4}, 1000)
	l.Attribute(Pair{5, 6}, 100)
	top := l.Top(2)
	if len(top) != 2 || top[0].Pair != (Pair{3, 4}) || top[1].Pair != (Pair{5, 6}) {
		t.Errorf("Top(2) = %+v", top)
	}
}

func TestPairListReclaimsLeastCycles(t *testing.T) {
	l := NewPairList(2)
	l.Attribute(Pair{1, 1}, 500)
	l.Attribute(Pair{2, 2}, 10) // the cheap one
	l.Attribute(Pair{3, 3}, 300)
	if l.Len() != 2 || l.Reclaimed != 1 {
		t.Fatalf("Len=%d Reclaimed=%d", l.Len(), l.Reclaimed)
	}
	for _, st := range l.Top(10) {
		if st.Pair == (Pair{2, 2}) {
			t.Error("least-cycles entry survived reclamation")
		}
	}
}

func TestPairListReport(t *testing.T) {
	reg := isa.NewPCRegistry()
	load := reg.Site("btree.leaf.nentries.load")
	store := reg.Site("btree.leaf.nentries.store")
	l := NewPairList(4)
	l.Attribute(Pair{LoadPC: load, StorePC: store}, 1234)
	rep := l.Report(reg, 5)
	if !strings.Contains(rep, "btree.leaf.nentries.load") || !strings.Contains(rep, "1234") {
		t.Errorf("report missing content:\n%s", rep)
	}
}
