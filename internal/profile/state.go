package profile

import (
	"sort"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/snapbin"
)

// Snapshot codecs. The exposed load table serializes only its live entries
// (most slots are empty between epochs); the pair list serializes in
// ascending (LoadPC, StorePC) order so the encoding is deterministic.

const maxSnapPairs = 1 << 22

// AppendState serializes the table's live entries.
func (t *ExposedLoadTable) AppendState(w *snapbin.Writer) {
	live := 0
	for i := range t.tags {
		if t.tags[i] != 0 || t.pcs[i] != 0 {
			live++
		}
	}
	w.Uvarint(uint64(live))
	for i := range t.tags {
		if t.tags[i] != 0 || t.pcs[i] != 0 {
			w.Uvarint(uint64(i))
			w.Uvarint(uint64(t.tags[i]))
			w.Uvarint(uint64(t.pcs[i]))
		}
	}
}

// RestoreState rebuilds the table from r; slot indexes outside the restore
// target's geometry latch an error.
func (t *ExposedLoadTable) RestoreState(r *snapbin.Reader) {
	t.Reset()
	n := r.Count("exposed-load entries", len(t.tags))
	for i := 0; i < n && r.Err() == nil; i++ {
		slot := r.Uvarint("exposed-load slot")
		if r.Err() == nil && slot >= uint64(len(t.tags)) {
			r.Failf("exposed-load slot %d out of range (%d entries)", slot, len(t.tags))
			return
		}
		tag := mem.Addr(r.Uvarint("exposed-load tag"))
		pc := isa.PC(r.Uvarint("exposed-load pc"))
		if r.Err() == nil {
			t.tags[slot] = tag
			t.pcs[slot] = pc
		}
	}
}

// AppendState serializes the pair list's entries and reclaim count.
func (l *PairList) AppendState(w *snapbin.Writer) {
	pairs := make([]Pair, 0, len(l.pairs))
	for p := range l.pairs {
		pairs = append(pairs, p)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].LoadPC != pairs[j].LoadPC {
			return pairs[i].LoadPC < pairs[j].LoadPC
		}
		return pairs[i].StorePC < pairs[j].StorePC
	})
	w.Uvarint(uint64(len(pairs)))
	for _, p := range pairs {
		st := l.pairs[p]
		w.Uvarint(uint64(p.LoadPC))
		w.Uvarint(uint64(p.StorePC))
		w.Uvarint(st.FailedCycles)
		w.Uvarint(st.Violations)
	}
	w.Uvarint(l.Reclaimed)
}

// RestoreState rebuilds the pair list from r; entry counts above the restore
// target's capacity latch an error.
func (l *PairList) RestoreState(r *snapbin.Reader) {
	n := r.Count("pair-list entries", min(l.capacity, maxSnapPairs))
	clear(l.pairs)
	for i := 0; i < n && r.Err() == nil; i++ {
		p := Pair{
			LoadPC:  isa.PC(r.Uvarint("pair load pc")),
			StorePC: isa.PC(r.Uvarint("pair store pc")),
		}
		st := &PairStat{Pair: p}
		st.FailedCycles = r.Uvarint("pair failed cycles")
		st.Violations = r.Uvarint("pair violations")
		if r.Err() == nil {
			l.pairs[p] = st
		}
	}
	l.Reclaimed = r.Uvarint("pair reclaimed")
}

// Empty reports whether the profile carries no state — the forkability test
// for prefix snapshots.
func (l *PairList) Empty() bool { return len(l.pairs) == 0 && l.Reclaimed == 0 }
