// Package cas is the persistent tier of the repo's content-addressed
// caches: a size-bounded on-disk store of immutable byte entries keyed by
// (namespace, digest). The in-memory tiers stay where they are today — the
// workload build cache keeps decoded programs, the serving daemon keeps
// completed jobs — and this store sits beneath them, so a restarted or
// freshly scaled-out process is warm from byte one.
//
// Guarantees:
//
//   - Atomic publication. Entries are written to a temp file in the store
//     and renamed into place, so a reader never observes a half-written
//     entry — not even from a concurrent process sharing the directory.
//   - Corruption tolerance. Every entry carries a versioned header and a
//     payload checksum; a truncated, garbage, or wrong-version entry is
//     quarantined (renamed aside) and reported as a miss, never an error.
//     Consumers rebuild and overwrite.
//   - Bounded size. The store tracks entry sizes and evicts least-recently
//     used entries when the configured budget is exceeded; recency survives
//     restarts through a small on-disk index (best effort — a missing or
//     stale index only degrades eviction order, never correctness).
//   - Single-flight loads. Concurrent Gets of one key share a single disk
//     read and validation pass.
//
// All methods are safe on a nil *Store (a disabled persistent tier): Get
// misses, Put discards, Stats is zero. Callers therefore never branch on
// whether -cache-dir was set.
package cas

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"log/slog"
	"os"
	"path/filepath"
	"sync"
	"time"

	"subthreads/internal/telemetry"
)

// Entry file format: a fixed header followed by the payload.
//
//	offset  size  field
//	0       4     magic "tlcs"
//	4       1     format version (entryVersion)
//	5       3     reserved (zero)
//	8       8     payload length, little endian
//	16      8     FNV-1a 64 of the payload, little endian
//	24      -     payload
const (
	entryMagic   = "tlcs"
	entryVersion = 1
	headerSize   = 24
	entryExt     = ".cas"
)

// DefaultMaxBytes bounds the store when Options.MaxBytes is zero: 1 GiB,
// roomy for thousands of serialized workloads and result documents.
const DefaultMaxBytes = 1 << 30

// indexFile is the on-disk LRU index, relative to the store root.
const indexFile = "index.json"

// Options configures Open.
type Options struct {
	// MaxBytes bounds the total payload+header bytes on disk; the least
	// recently used entries are evicted past it. 0 means DefaultMaxBytes.
	MaxBytes int64
	// Logger receives eviction and quarantine reports. nil disables
	// logging (the library convention shared with internal/service).
	Logger *slog.Logger
}

// Stats is a point-in-time snapshot of the store's counters, exported to
// the daemon's /metrics (JSON and tlsd_cas_* Prometheus families).
type Stats struct {
	// Hits / Misses classify Get calls; a quarantined entry counts as
	// both Corrupt and a miss.
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Puts      uint64 `json:"puts"`
	Evictions uint64 `json:"evictions"`
	Corrupt   uint64 `json:"corrupt"`
	// Entries / Bytes describe the resident set.
	Entries int   `json:"entries"`
	Bytes   int64 `json:"bytes"`
	// LoadMicros / StoreMicros time successful disk reads and writes.
	LoadMicros  telemetry.HistogramSnapshot `json:"load_micros"`
	StoreMicros telemetry.HistogramSnapshot `json:"store_micros"`
}

// DiskFault is one injected perturbation of a disk operation. The chaos
// harness (internal/chaos) produces these on a seeded deterministic
// schedule; the store consults its injector before each disk touch.
type DiskFault struct {
	// Delay stalls the operation before it runs, modeling a latency spike.
	// The stall is charged to the operation's observed latency, so slow-call
	// detectors (the service's breaker) see it.
	Delay time.Duration
	// Err fails the operation outright: a load reports a miss, a store is
	// dropped (both paths the store already survives for real I/O errors).
	Err error
	// TornBytes, when > 0 on a store, truncates the on-disk frame to at
	// most that many bytes while still reporting success to the writer —
	// a torn write. The damage is latent: a later load fails frame
	// validation and quarantines the entry.
	TornBytes int
}

// FaultInjector supplies deterministic disk faults. The store asks before
// every disk operation; op is "load" or "store". Implementations must be
// safe for concurrent use (the store calls from many goroutines).
type FaultInjector interface {
	Disk(op string) (DiskFault, bool)
}

// SetFaults installs (or, with nil, removes) a fault injector. Safe on a
// nil store. Test/chaos plumbing only — production opens never set one.
func (s *Store) SetFaults(f FaultInjector) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.faults = f
	s.mu.Unlock()
}

// SetObserver installs a per-operation outcome hook: op is "load" or
// "store", d the operation's wall duration (injected delays included), and
// failed reports an I/O error or corrupt entry — a clean miss (no such
// entry) is not a failure. The service's circuit breaker feeds on this.
// Called outside the store's lock. Safe on a nil store.
func (s *Store) SetObserver(fn func(op string, d time.Duration, failed bool)) {
	if s == nil {
		return
	}
	s.mu.Lock()
	s.observer = fn
	s.mu.Unlock()
}

// faultFor consults the installed injector, if any, for op.
func (s *Store) faultFor(op string) (DiskFault, bool) {
	s.mu.Lock()
	inj := s.faults
	s.mu.Unlock()
	if inj == nil {
		return DiskFault{}, false
	}
	return inj.Disk(op)
}

// observe reports one disk-operation outcome to the installed observer.
func (s *Store) observe(op string, d time.Duration, failed bool) {
	s.mu.Lock()
	fn := s.observer
	s.mu.Unlock()
	if fn != nil {
		fn(op, d, failed)
	}
}

// entry is the accounting record of one on-disk file.
type entry struct {
	size int64  // header + payload bytes on disk
	used uint64 // logical LRU clock reading of the last touch
}

// flight is one in-progress disk load shared by concurrent Gets.
type flight struct {
	done chan struct{}
	data []byte
	ok   bool
}

// Store is a persistent content-addressed byte store rooted at one
// directory. It is safe for concurrent use within a process, and atomic
// publication keeps concurrent processes sharing the directory safe too
// (each process maintains its own view of the LRU index; the last writer's
// index wins, and Open rebuilds accounting from the directory itself).
type Store struct {
	dir string
	max int64
	log *slog.Logger

	mu      sync.Mutex
	entries map[string]*entry // rel path -> accounting
	total   int64
	clock   uint64
	flights map[string]*flight

	hits, misses, puts, evictions, corrupt uint64
	loadMicros, storeMicros                telemetry.Histogram

	faults   FaultInjector
	observer func(op string, d time.Duration, failed bool)
}

// Open opens (creating if needed) the store rooted at dir and rebuilds its
// accounting: the directory scan is ground truth for which entries exist,
// the on-disk index (when readable) restores their recency order.
func Open(dir string, opts Options) (*Store, error) {
	if dir == "" {
		return nil, errors.New("cas: empty store directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("cas: %w", err)
	}
	s := &Store{
		dir:     dir,
		max:     opts.MaxBytes,
		log:     opts.Logger,
		entries: make(map[string]*entry),
		flights: make(map[string]*flight),
	}
	if s.max <= 0 {
		s.max = DefaultMaxBytes
	}
	s.load()
	return s, nil
}

// persistedIndex is the JSON schema of the on-disk LRU index.
type persistedIndex struct {
	Clock   uint64            `json:"clock"`
	Entries map[string]uint64 `json:"entries"` // rel path -> last-use clock
}

// load scans the store directory and merges the persisted recency index.
func (s *Store) load() {
	var idx persistedIndex
	if data, err := os.ReadFile(filepath.Join(s.dir, indexFile)); err == nil {
		// A corrupt index is ignored wholesale: eviction order degrades
		// to "unknown age", nothing else.
		if json.Unmarshal(data, &idx) != nil {
			idx = persistedIndex{}
		}
	}
	s.clock = idx.Clock
	filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || filepath.Ext(path) != entryExt {
			return nil
		}
		info, err := d.Info()
		if err != nil {
			return nil
		}
		rel, err := filepath.Rel(s.dir, path)
		if err != nil {
			return nil
		}
		s.entries[rel] = &entry{size: info.Size(), used: idx.Entries[rel]}
		s.total += info.Size()
		return nil
	})
}

// persistIndexLocked writes the LRU index atomically. Best effort: an index
// write failure is logged and ignored (the store still works, recency just
// won't survive this process). Caller holds mu.
func (s *Store) persistIndexLocked() {
	idx := persistedIndex{Clock: s.clock, Entries: make(map[string]uint64, len(s.entries))}
	for rel, e := range s.entries {
		idx.Entries[rel] = e.used
	}
	data, err := json.Marshal(idx)
	if err == nil {
		err = writeFileAtomic(filepath.Join(s.dir, indexFile), data)
	}
	if err != nil && s.log != nil {
		s.log.Warn("cas index not persisted",
			slog.String("dir", s.dir), slog.String("error", err.Error()))
	}
}

// entryPath maps (namespace, key) to the entry's path relative to the store
// root, fanning out on the first two key characters so one directory never
// holds the whole store.
func entryPath(namespace, key string) string {
	if !safeName(namespace) || !safeName(key) {
		// Keys are digests and namespaces are package-chosen constants;
		// anything else is a programming error, not an input error.
		panic(fmt.Sprintf("cas: unsafe entry name %q/%q", namespace, key))
	}
	fan := key
	if len(fan) > 2 {
		fan = key[:2]
	}
	return filepath.Join(namespace, fan, key+entryExt)
}

// safeName accepts the filesystem-safe alphabet entry names may use.
func safeName(s string) bool {
	if s == "" {
		return false
	}
	for _, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '-', c == '_', c == '.':
		default:
			return false
		}
	}
	return s[0] != '.'
}

// Get returns the payload stored under (namespace, key), or ok=false on a
// miss. The returned bytes are shared and must be treated as read-only.
// Concurrent Gets of one key share a single disk read; a corrupt entry is
// quarantined and reported as a miss.
func (s *Store) Get(namespace, key string) (data []byte, ok bool) {
	if s == nil {
		return nil, false
	}
	rel := entryPath(namespace, key)

	s.mu.Lock()
	if f := s.flights[rel]; f != nil {
		s.mu.Unlock()
		<-f.done
		return f.data, f.ok
	}
	f := &flight{done: make(chan struct{})}
	s.flights[rel] = f
	s.mu.Unlock()

	f.data, f.ok = s.loadEntry(rel)
	s.mu.Lock()
	delete(s.flights, rel)
	s.mu.Unlock()
	close(f.done)
	return f.data, f.ok
}

// loadEntry reads and validates one entry file, maintaining the counters
// and the LRU accounting.
func (s *Store) loadEntry(rel string) ([]byte, bool) {
	fault, injected := s.faultFor("load")
	start := time.Now()
	if fault.Delay > 0 {
		time.Sleep(fault.Delay)
	}
	var raw []byte
	var err error
	if injected && fault.Err != nil {
		err = fault.Err
	} else {
		raw, err = os.ReadFile(filepath.Join(s.dir, rel))
	}
	if err != nil {
		s.mu.Lock()
		s.misses++
		if e := s.entries[rel]; e != nil && errors.Is(err, fs.ErrNotExist) {
			// The file vanished under us (another process evicted it);
			// drop the stale accounting.
			s.total -= e.size
			delete(s.entries, rel)
		}
		s.mu.Unlock()
		// A clean miss (no such entry) is healthy; anything else is the
		// disk misbehaving and feeds slow/error detection.
		s.observe("load", time.Since(start), !errors.Is(err, fs.ErrNotExist))
		return nil, false
	}
	payload, err := decodeEntry(raw)
	if err != nil {
		s.quarantine(rel, int64(len(raw)), err)
		s.observe("load", time.Since(start), true)
		return nil, false
	}

	s.mu.Lock()
	s.hits++
	s.loadMicros.Observe(uint64(time.Since(start).Microseconds()))
	s.clock++
	if e := s.entries[rel]; e != nil {
		e.used = s.clock
	} else {
		// Written by another process after Open: adopt it.
		s.entries[rel] = &entry{size: int64(len(raw)), used: s.clock}
		s.total += int64(len(raw))
	}
	s.mu.Unlock()
	s.observe("load", time.Since(start), false)
	return payload, true
}

// Put stores payload under (namespace, key), atomically replacing any
// previous entry, then evicts past the size budget. Failures are logged and
// swallowed: the persistent tier is an optimization, never a correctness
// dependency, so a full disk degrades to cold behavior.
func (s *Store) Put(namespace, key string, payload []byte) {
	if s == nil {
		return
	}
	rel := entryPath(namespace, key)
	fault, injected := s.faultFor("store")
	start := time.Now()
	if fault.Delay > 0 {
		time.Sleep(fault.Delay)
	}
	err := fault.Err
	if !injected || err == nil {
		frame := encodeEntry(payload)
		if injected && fault.TornBytes > 0 && fault.TornBytes < len(frame) {
			// Torn write: persist a truncated frame but report success.
			// The checksum pass on a later load quarantines the debris.
			frame = frame[:fault.TornBytes]
		}
		err = writeFileAtomic(filepath.Join(s.dir, rel), frame)
	}
	if err != nil {
		if s.log != nil {
			s.log.Warn("cas store failed",
				slog.String("entry", rel), slog.String("error", err.Error()))
		}
		s.observe("store", time.Since(start), true)
		return
	}
	size := int64(headerSize + len(payload))

	s.mu.Lock()
	s.puts++
	s.storeMicros.Observe(uint64(time.Since(start).Microseconds()))
	s.clock++
	if e := s.entries[rel]; e != nil {
		s.total += size - e.size
		e.size, e.used = size, s.clock
	} else {
		s.entries[rel] = &entry{size: size, used: s.clock}
		s.total += size
	}
	evicted := s.evictLocked(rel)
	s.persistIndexLocked()
	s.mu.Unlock()
	s.observe("store", time.Since(start), false)

	if s.log != nil {
		for _, ev := range evicted {
			s.log.Info("cas entry evicted", slog.String("entry", ev))
		}
	}
}

// evictLocked removes least-recently-used entries until the store fits the
// budget, never evicting keep (the entry just written). Caller holds mu.
func (s *Store) evictLocked(keep string) []string {
	var evicted []string
	for s.total > s.max && len(s.entries) > 1 {
		victim, oldest := "", uint64(0)
		for rel, e := range s.entries {
			if rel == keep {
				continue
			}
			if victim == "" || e.used < oldest {
				victim, oldest = rel, e.used
			}
		}
		if victim == "" {
			break
		}
		s.total -= s.entries[victim].size
		delete(s.entries, victim)
		s.evictions++
		os.Remove(filepath.Join(s.dir, victim))
		evicted = append(evicted, victim)
	}
	return evicted
}

// Quarantine removes an entry whose bytes validated but whose domain decode
// failed (e.g. an old workload encoding version): it is renamed aside,
// counted as corrupt, and logged, so the caller's rebuild overwrites a
// clean slot. Safe on a nil store.
func (s *Store) Quarantine(namespace, key string, reason error) {
	if s == nil {
		return
	}
	rel := entryPath(namespace, key)
	s.mu.Lock()
	size := int64(0)
	if e := s.entries[rel]; e != nil {
		size = e.size
	}
	s.mu.Unlock()
	s.quarantine(rel, size, reason)
}

// quarantine renames an invalid entry aside (overwriting any previous
// quarantined copy, so the debris stays bounded) and drops its accounting.
func (s *Store) quarantine(rel string, size int64, reason error) {
	path := filepath.Join(s.dir, rel)
	if err := os.Rename(path, path+".quarantined"); err != nil && !errors.Is(err, fs.ErrNotExist) {
		// Renaming failed (e.g. permissions): remove outright rather than
		// letting a poisoned entry be re-read forever.
		os.Remove(path)
	}
	s.mu.Lock()
	s.corrupt++
	s.misses++
	if e := s.entries[rel]; e != nil {
		s.total -= e.size
		if size == 0 {
			size = e.size
		}
		delete(s.entries, rel)
	}
	s.persistIndexLocked()
	s.mu.Unlock()
	if s.log != nil {
		s.log.Warn("cas entry quarantined",
			slog.String("entry", rel),
			slog.Int64("bytes", size),
			slog.String("reason", reason.Error()))
	}
}

// Stats snapshots the store's counters. Safe on a nil store (all zero).
func (s *Store) Stats() Stats {
	if s == nil {
		return Stats{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return Stats{
		Hits:        s.hits,
		Misses:      s.misses,
		Puts:        s.puts,
		Evictions:   s.evictions,
		Corrupt:     s.corrupt,
		Entries:     len(s.entries),
		Bytes:       s.total,
		LoadMicros:  s.loadMicros.Snapshot(),
		StoreMicros: s.storeMicros.Snapshot(),
	}
}

// Close persists the LRU index (recording the touches since the last Put).
// The store stays usable; Close exists so clean shutdowns keep recency.
func (s *Store) Close() error {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	s.persistIndexLocked()
	s.mu.Unlock()
	return nil
}

// Dir returns the store root ("" on a nil store).
func (s *Store) Dir() string {
	if s == nil {
		return ""
	}
	return s.dir
}

// encodeEntry frames a payload with the versioned header and checksum.
func encodeEntry(payload []byte) []byte {
	buf := make([]byte, headerSize, headerSize+len(payload))
	copy(buf, entryMagic)
	buf[4] = entryVersion
	binary.LittleEndian.PutUint64(buf[8:], uint64(len(payload)))
	binary.LittleEndian.PutUint64(buf[16:], checksum(payload))
	return append(buf, payload...)
}

// decodeEntry validates the frame and returns the payload.
func decodeEntry(raw []byte) ([]byte, error) {
	if len(raw) < headerSize {
		return nil, fmt.Errorf("truncated header (%d bytes)", len(raw))
	}
	if string(raw[:4]) != entryMagic {
		return nil, errors.New("bad magic")
	}
	if raw[4] != entryVersion {
		return nil, fmt.Errorf("entry version %d, want %d", raw[4], entryVersion)
	}
	n := binary.LittleEndian.Uint64(raw[8:])
	if n != uint64(len(raw)-headerSize) {
		return nil, fmt.Errorf("payload length %d, have %d bytes", n, len(raw)-headerSize)
	}
	payload := raw[headerSize:]
	if sum := checksum(payload); sum != binary.LittleEndian.Uint64(raw[16:]) {
		return nil, errors.New("checksum mismatch")
	}
	return payload, nil
}

// checksum is FNV-1a 64 over the payload.
func checksum(payload []byte) uint64 {
	h := fnv.New64a()
	h.Write(payload)
	return h.Sum64()
}

// writeFileAtomic publishes data at path via a temp file in the same
// directory and an atomic rename, so concurrent readers (and concurrent
// processes) see either the old complete entry or the new complete entry.
func writeFileAtomic(path string, data []byte) error {
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Chmod(tmp, 0o644)
	}
	if err == nil {
		err = os.Rename(tmp, path)
	}
	if err != nil {
		os.Remove(tmp)
	}
	return err
}
