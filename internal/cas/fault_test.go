package cas

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Fault-injection tests: the store's behavior under injected disk errors,
// torn writes, and latency spikes. A local stub injector is used instead of
// internal/chaos (which imports cas) so these stay in-package; the seeded
// schedule itself is covered by the chaos package's tests.

// stubFaults injects a fixed fault on every Nth operation of each kind.
type stubFaults struct {
	loadEvery, storeEvery uint64
	load, store           DiskFault

	loads, stores atomic.Uint64
}

func (f *stubFaults) Disk(op string) (DiskFault, bool) {
	switch op {
	case "load":
		if f.loadEvery > 0 && f.loads.Add(1)%f.loadEvery == 0 {
			return f.load, true
		}
	case "store":
		if f.storeEvery > 0 && f.stores.Add(1)%f.storeEvery == 0 {
			return f.store, true
		}
	}
	return DiskFault{}, false
}

func TestInjectedLoadErrorIsMissNotCorruption(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.Put("built", "aa11", []byte("payload"))
	s.SetFaults(&stubFaults{loadEvery: 1, load: DiskFault{Err: errors.New("injected EIO")}})
	if _, ok := s.Get("built", "aa11"); ok {
		t.Fatal("Get succeeded through an injected read error")
	}
	s.SetFaults(nil)
	got, ok := s.Get("built", "aa11")
	if !ok || string(got) != "payload" {
		t.Fatalf("entry lost after a transient read error: %q, %v", got, ok)
	}
	st := s.Stats()
	if st.Corrupt != 0 {
		t.Errorf("transient read error counted as corruption: %+v", st)
	}
	if st.Entries != 1 {
		t.Errorf("transient read error dropped the entry accounting: %+v", st)
	}
}

func TestTornWriteQuarantinedOnRead(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.SetFaults(&stubFaults{storeEvery: 1, store: DiskFault{TornBytes: headerSize + 3}})
	s.Put("result", "bb22", []byte("a body longer than three bytes"))
	s.SetFaults(nil)

	if _, ok := s.Get("result", "bb22"); ok {
		t.Fatal("Get served a torn entry")
	}
	st := s.Stats()
	if st.Corrupt != 1 {
		t.Errorf("Corrupt = %d, want 1 (torn frame must quarantine)", st.Corrupt)
	}
	if st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("quarantine left accounting behind: %+v", st)
	}

	// The slot is clean: a rebuild overwrites and round-trips.
	body := []byte("rebuilt body")
	s.Put("result", "bb22", body)
	got, ok := s.Get("result", "bb22")
	if !ok || !bytes.Equal(got, body) {
		t.Fatalf("rebuild after torn-write quarantine failed: %q, %v", got, ok)
	}
}

func TestInjectedStoreErrorDropsPut(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	s.SetFaults(&stubFaults{storeEvery: 1, store: DiskFault{Err: errors.New("injected ENOSPC")}})
	s.Put("built", "cc33", []byte("never lands"))
	s.SetFaults(nil)
	if _, ok := s.Get("built", "cc33"); ok {
		t.Fatal("Get hit an entry whose Put was injected to fail")
	}
	if st := s.Stats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("failed Put left accounting behind: %+v", st)
	}
}

func TestObserverSeesLatencyAndFailures(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	var mu sync.Mutex
	type obs struct {
		op     string
		d      time.Duration
		failed bool
	}
	var seen []obs
	s.SetObserver(func(op string, d time.Duration, failed bool) {
		mu.Lock()
		seen = append(seen, obs{op, d, failed})
		mu.Unlock()
	})

	const spike = 5 * time.Millisecond
	s.SetFaults(&stubFaults{loadEvery: 2, load: DiskFault{Delay: spike, Err: errors.New("slow EIO")}})
	s.Put("built", "dd44", []byte("x")) // store, ok
	s.Get("built", "dd44")              // load 1: clean hit
	s.Get("built", "dd44")              // load 2: injected slow error
	s.Get("built", "nope")              // load 3: clean miss — NOT a failure

	mu.Lock()
	defer mu.Unlock()
	if len(seen) != 4 {
		t.Fatalf("observer saw %d ops, want 4: %+v", len(seen), seen)
	}
	if seen[0].op != "store" || seen[0].failed {
		t.Errorf("store observation = %+v, want healthy store", seen[0])
	}
	if seen[1].op != "load" || seen[1].failed {
		t.Errorf("clean hit observation = %+v", seen[1])
	}
	if !seen[2].failed || seen[2].d < spike {
		t.Errorf("injected slow error observation = %+v, want failed with >= %v latency", seen[2], spike)
	}
	if seen[3].failed {
		t.Errorf("clean miss observation = %+v, want not-failed", seen[3])
	}
}

// The satellite requirement: quarantine and eviction stay correct under
// concurrent chaos-injected I/O errors and torn writes (run under -race by
// CI). Every surviving readable entry must round-trip exactly, and the
// store's accounting must match the directory when the dust settles.
func TestConcurrentChaosQuarantineAndEviction(t *testing.T) {
	// A cap small enough that eviction churns throughout the run.
	s := open(t, t.TempDir(), Options{MaxBytes: 8 << 10})
	s.SetFaults(&stubFaults{
		loadEvery:  7,
		load:       DiskFault{Err: errors.New("injected EIO"), Delay: 50 * time.Microsecond},
		storeEvery: 5,
		store:      DiskFault{TornBytes: headerSize + 1},
	})

	const (
		workers = 8
		keys    = 32
		rounds  = 40
	)
	payload := func(k int) []byte {
		return bytes.Repeat([]byte{byte(k)}, 256+k)
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				k := (w + r) % keys
				key := fmt.Sprintf("k%02d", k)
				if got, ok := s.Get("chaos", key); ok {
					if !bytes.Equal(got, payload(k)) {
						t.Errorf("key %s served wrong bytes under chaos", key)
					}
				} else {
					s.Put("chaos", key, payload(k))
				}
			}
		}(w)
	}
	wg.Wait()
	s.SetFaults(nil)

	// Post-chaos: every key either round-trips exactly or misses cleanly
	// (evicted / torn-then-quarantined); a rebuild always lands.
	for k := 0; k < keys; k++ {
		key := fmt.Sprintf("k%02d", k)
		got, ok := s.Get("chaos", key)
		if !ok {
			s.Put("chaos", key, payload(k))
			got, ok = s.Get("chaos", key)
		}
		if !ok || !bytes.Equal(got, payload(k)) {
			t.Fatalf("key %s does not round-trip after chaos: ok=%v", key, ok)
		}
	}
	st := s.Stats()
	if st.Bytes > 8<<10+int64(headerSize+keys+512) {
		t.Errorf("eviction lost control of the budget under chaos: %d bytes resident", st.Bytes)
	}
	if st.Corrupt == 0 {
		t.Error("no torn write was ever detected — injection did not exercise quarantine")
	}
	if st.Evictions == 0 {
		t.Error("no eviction under a tiny budget — the cap was not exercised")
	}
}
