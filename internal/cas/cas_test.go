package cas

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

func open(t *testing.T, dir string, opts Options) *Store {
	t.Helper()
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%q): %v", dir, err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	payload := []byte("the exact bytes that were stored")
	s.Put("built", "abc123", payload)
	got, ok := s.Get("built", "abc123")
	if !ok {
		t.Fatal("Get missed a freshly stored entry")
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("Get = %q, want %q", got, payload)
	}
	if _, ok := s.Get("built", "unknown"); ok {
		t.Fatal("Get hit an entry that was never stored")
	}
	st := s.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Puts != 1 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 put", st)
	}
	if st.Entries != 1 || st.Bytes != int64(headerSize+len(payload)) {
		t.Fatalf("stats = %+v, want 1 entry of %d bytes", st, headerSize+len(payload))
	}
}

// The warm-restart contract: a second store over the same directory serves
// the first store's entries from byte one.
func TestReopenWarm(t *testing.T) {
	dir := t.TempDir()
	s1 := open(t, dir, Options{})
	s1.Put("result", "deadbeef", []byte("served body"))
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := open(t, dir, Options{})
	got, ok := s2.Get("result", "deadbeef")
	if !ok || string(got) != "served body" {
		t.Fatalf("reopened store Get = %q, %v; want the stored body", got, ok)
	}
}

func TestCorruptEntryQuarantined(t *testing.T) {
	dir := t.TempDir()
	var logbuf strings.Builder
	logger := slog.New(slog.NewTextHandler(&logbuf, nil))
	s := open(t, dir, Options{Logger: logger})
	s.Put("built", "feedface", []byte("good payload"))

	path := filepath.Join(dir, entryPath("built", "feedface"))
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:headerSize/2] }},
		{"garbage", func(b []byte) []byte { return []byte("not a cas entry at all") }},
		{"flipped-payload", func(b []byte) []byte {
			b[len(b)-1] ^= 0xff
			return b
		}},
		{"wrong-version", func(b []byte) []byte {
			b[4] = entryVersion + 7
			return b
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			s.Put("built", "feedface", []byte("good payload"))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("read entry: %v", err)
			}
			if err := os.WriteFile(path, tc.mutate(raw), 0o644); err != nil {
				t.Fatalf("corrupt entry: %v", err)
			}
			logbuf.Reset()
			if _, ok := s.Get("built", "feedface"); ok {
				t.Fatal("Get served a corrupted entry")
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatalf("corrupted entry still in place: %v", err)
			}
			if _, err := os.Stat(path + ".quarantined"); err != nil {
				t.Fatalf("no quarantined copy: %v", err)
			}
			if !strings.Contains(logbuf.String(), "cas entry quarantined") {
				t.Fatalf("no structured quarantine log, got %q", logbuf.String())
			}
			// The slot is clean: a rebuild stores and serves again.
			s.Put("built", "feedface", []byte("rebuilt payload"))
			if got, ok := s.Get("built", "feedface"); !ok || string(got) != "rebuilt payload" {
				t.Fatalf("rebuild after quarantine: Get = %q, %v", got, ok)
			}
		})
	}
	if st := s.Stats(); st.Corrupt != uint64(len(cases)) {
		t.Fatalf("corrupt counter = %d, want %d", st.Corrupt, len(cases))
	}
}

func TestEvictionUnderSizeCap(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("x"), 100)
	entrySize := int64(headerSize + len(payload))
	// Room for exactly three entries.
	s := open(t, dir, Options{MaxBytes: 3 * entrySize})

	for i := 0; i < 3; i++ {
		s.Put("ns", fmt.Sprintf("key%d", i), payload)
	}
	// Touch key0 so key1 becomes the LRU victim.
	if _, ok := s.Get("ns", "key0"); !ok {
		t.Fatal("key0 missing before eviction")
	}
	s.Put("ns", "key3", payload)

	if _, ok := s.Get("ns", "key1"); ok {
		t.Fatal("LRU entry key1 survived past the size cap")
	}
	for _, k := range []string{"key0", "key2", "key3"} {
		if _, ok := s.Get("ns", k); !ok {
			t.Fatalf("entry %s evicted out of LRU order", k)
		}
	}
	st := s.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > 3*entrySize || st.Entries != 3 {
		t.Fatalf("stats = %+v, want 3 entries within %d bytes", st, 3*entrySize)
	}
	// The evicted file is gone from disk, not just from accounting.
	if _, err := os.Stat(filepath.Join(dir, entryPath("ns", "key1"))); !os.IsNotExist(err) {
		t.Fatalf("evicted entry file still on disk: %v", err)
	}
}

// Recency survives a clean restart through the on-disk index: the entry
// touched before reopening must outlive an untouched older one.
func TestIndexPersistsRecency(t *testing.T) {
	dir := t.TempDir()
	payload := bytes.Repeat([]byte("y"), 64)
	entrySize := int64(headerSize + len(payload))
	s1 := open(t, dir, Options{MaxBytes: 2 * entrySize})
	s1.Put("ns", "older", payload)
	s1.Put("ns", "newer", payload)
	if _, ok := s1.Get("ns", "older"); !ok {
		t.Fatal("older missing")
	}
	if err := s1.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	s2 := open(t, dir, Options{MaxBytes: 2 * entrySize})
	s2.Put("ns", "third", payload) // must evict "newer", not the re-touched "older"
	if _, ok := s2.Get("ns", "newer"); ok {
		t.Fatal("eviction order ignored the persisted index")
	}
	if _, ok := s2.Get("ns", "older"); !ok {
		t.Fatal("recently-used entry evicted after restart")
	}
}

// Two stores over one directory — the multi-process sharing model — must be
// race-free and never serve torn bytes (run under -race).
func TestConcurrentProcessesSafe(t *testing.T) {
	dir := t.TempDir()
	a := open(t, dir, Options{})
	b := open(t, dir, Options{})

	payloads := make([][]byte, 8)
	for i := range payloads {
		payloads[i] = bytes.Repeat([]byte{byte('a' + i)}, 256+i)
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := a
			if w%2 == 1 {
				s = b
			}
			for i := 0; i < 50; i++ {
				k := fmt.Sprintf("key%d", (w+i)%len(payloads))
				s.Put("shared", k, payloads[(w+i)%len(payloads)])
				if got, ok := s.Get("shared", k); ok {
					want := payloads[(w+i)%len(payloads)]
					if !bytes.Equal(got, want) {
						t.Errorf("torn read: key %s got %d bytes, want %d", k, len(got), len(want))
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
}

// Every method must be a safe no-op on a nil store — call sites never
// branch on whether the persistent tier is enabled.
func TestNilStore(t *testing.T) {
	var s *Store
	if _, ok := s.Get("ns", "key"); ok {
		t.Fatal("nil store Get hit")
	}
	s.Put("ns", "key", []byte("data"))
	s.Quarantine("ns", "key", fmt.Errorf("reason"))
	if st := s.Stats(); st.Hits != 0 || st.Misses != 0 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("nil store stats = %+v, want zero", st)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("nil store Close: %v", err)
	}
	if s.Dir() != "" {
		t.Fatal("nil store Dir not empty")
	}
}

func TestSingleFlightSharesLoad(t *testing.T) {
	s := open(t, t.TempDir(), Options{})
	payload := bytes.Repeat([]byte("z"), 1<<16)
	s.Put("ns", "big", payload)

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if got, ok := s.Get("ns", "big"); !ok || !bytes.Equal(got, payload) {
				t.Error("concurrent Get failed")
			}
		}()
	}
	wg.Wait()
}
