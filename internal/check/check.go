// Package check is the differential serial oracle: TLS's whole correctness
// contract is that speculative execution with sub-thread rewinds produces
// exactly the serial result (PAPER.md §2), and this package verifies it end
// to end for a workload.
//
// Two comparisons back the contract:
//
//   - Functional: the same transaction stream is built once flat/serial and
//     once TLS-transformed; the final database state digests and the
//     per-transaction client-visible outputs must match (workload.Built).
//   - Architectural: the speculative simulation of the TLS program is
//     observed through sim.MemOracle, reconstructing the memory image its
//     commits produce (stores surviving every squash, folded in commit
//     order). That image must equal a serial replay of the same traces.
//     Traces carry no data values, so a word's value is identified by its
//     last writer — the (unit, instruction-sequence) pair of the store —
//     which is exactly what serial semantics dictate.
//
// A mismatch yields a first-divergence report: the lowest diverging word
// address, the serial writer, and the speculative writer with its epoch and
// sub-thread context.
package check

import (
	"fmt"
	"sort"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/sim"
	"subthreads/internal/workload"
)

// Cell identifies the last writer of one memory word: the program unit
// (== epoch ID) and the unit-relative instruction sequence number of the
// store. Ctx is the sub-thread context that performed the surviving
// speculative store (always 0 in serial images).
type Cell struct {
	Unit uint64
	Seq  uint64
	Ctx  int
}

// Image maps word addresses to their final writers.
type Image map[mem.Addr]Cell

// SerialImage replays the program's traces in unit order — the defining
// serial semantics — and returns the resulting memory image.
func SerialImage(prog *sim.Program) Image {
	img := make(Image)
	for i, u := range prog.Units {
		var done uint64
		for _, ev := range u.Trace.Events() {
			done += uint64(ev.N)
			if ev.Kind == isa.Store {
				img[ev.Addr.Word()] = Cell{Unit: uint64(i), Seq: done}
			}
		}
	}
	return img
}

// pend is one store buffered by a speculative context, not yet committed.
type pend struct {
	addr mem.Addr
	seq  uint64
}

// Oracle implements sim.MemOracle: it buffers every store per (unit,
// context), discards buffers on squash, and folds the survivors into the
// committed image at commit — reconstructing exactly the state the TLS
// protocol promises to make architectural.
type Oracle struct {
	img     Image
	pending map[uint64][][]pend // unit -> per-context store buffers
}

var _ sim.MemOracle = (*Oracle)(nil)

// NewOracle returns an empty oracle; install it as sim.Config.Oracle.
func NewOracle() *Oracle {
	return &Oracle{img: make(Image), pending: make(map[uint64][][]pend)}
}

// OnStore buffers a store by unit's context ctx at instruction seq.
func (o *Oracle) OnStore(unit uint64, ctx int, addr mem.Addr, seq uint64) {
	ctxs := o.pending[unit]
	for len(ctxs) <= ctx {
		ctxs = append(ctxs, nil)
	}
	ctxs[ctx] = append(ctxs[ctx], pend{addr: addr, seq: seq})
	o.pending[unit] = ctxs
}

// OnSquash discards the buffered stores of contexts ctx and later — the
// stores the rewind undid. Re-execution will re-buffer them.
func (o *Oracle) OnSquash(unit uint64, ctx int) {
	ctxs := o.pending[unit]
	for c := ctx; c < len(ctxs); c++ {
		ctxs[c] = ctxs[c][:0]
	}
}

// OnCommit folds the unit's surviving stores into the committed image.
// Contexts in ascending order, stores in buffer order, reproduces the
// unit's program order; units commit oldest-first, so the fold order across
// units is the serial order too.
func (o *Oracle) OnCommit(unit uint64) {
	for ctx, stores := range o.pending[unit] {
		for _, s := range stores {
			o.img[s.addr.Word()] = Cell{Unit: unit, Seq: s.seq, Ctx: ctx}
		}
	}
	delete(o.pending, unit)
}

// Image returns the committed image reconstructed so far.
func (o *Oracle) Image() Image { return o.img }

// Done verifies the run retired cleanly: every buffered store must have been
// committed or squashed away.
func (o *Oracle) Done() error {
	for unit, ctxs := range o.pending {
		n := 0
		for _, stores := range ctxs {
			n += len(stores)
		}
		if n > 0 {
			return fmt.Errorf("check: unit %d left %d uncommitted buffered stores", unit, n)
		}
	}
	return nil
}

// Divergence is a first-divergence report: the lowest word address whose
// final writer differs between the serial and speculative images. A nil
// writer means that side never wrote the word.
type Divergence struct {
	Addr   mem.Addr
	Serial *Cell
	Spec   *Cell
}

func (d *Divergence) Error() string {
	side := func(c *Cell, ctxed bool) string {
		if c == nil {
			return "no writer"
		}
		if ctxed {
			return fmt.Sprintf("epoch %d instr %d (sub-thread ctx %d)", c.Unit, c.Seq, c.Ctx)
		}
		return fmt.Sprintf("unit %d instr %d", c.Unit, c.Seq)
	}
	return fmt.Sprintf("check: memory divergence at %v: serial writer %s, speculative writer %s",
		d.Addr, side(d.Serial, false), side(d.Spec, true))
}

// Compare diffs the serial and speculative images, returning the lowest-
// address divergence (deterministic first report) or nil when identical.
func Compare(serial, spec Image) *Divergence {
	addrs := make([]mem.Addr, 0, len(serial))
	for a := range serial {
		addrs = append(addrs, a)
	}
	for a := range spec {
		if _, ok := serial[a]; !ok {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		s, haveS := serial[a]
		p, haveP := spec[a]
		if haveS && haveP && s.Unit == p.Unit && s.Seq == p.Seq {
			continue
		}
		d := &Divergence{Addr: a}
		if haveS {
			d.Serial = &s
		}
		if haveP {
			d.Spec = &p
		}
		return d
	}
	return nil
}

// Differential runs the full oracle for one workload: functional state
// digest and per-transaction outputs (flat vs. TLS build), then the
// speculative simulation of the TLS program under cfg with the
// architectural store oracle attached, compared against a serial replay.
// It returns nil when speculation preserved serial semantics exactly.
func Differential(spec workload.Spec, cfg sim.Config) error {
	flat := workload.Build(spec, true)
	tlsB := workload.Build(spec, false)

	if flat.Digest != tlsB.Digest {
		return fmt.Errorf(
			"check: database state digest diverged: flat/serial %#x, TLS-transformed %#x",
			flat.Digest, tlsB.Digest)
	}
	if len(flat.Outputs) != len(tlsB.Outputs) {
		return fmt.Errorf("check: transaction count diverged: %d flat vs %d TLS",
			len(flat.Outputs), len(tlsB.Outputs))
	}
	for i := range flat.Outputs {
		f, t := flat.Outputs[i], tlsB.Outputs[i]
		n := len(f)
		if len(t) < n {
			n = len(t)
		}
		for j := 0; j < n; j++ {
			if f[j] != t[j] {
				return fmt.Errorf(
					"check: transaction %d output diverged at value %d: flat %d, TLS %d",
					i, j, f[j], t[j])
			}
		}
		if len(f) != len(t) {
			return fmt.Errorf(
				"check: transaction %d output length diverged: flat %d values, TLS %d",
				i, len(f), len(t))
		}
	}

	o := NewOracle()
	cfg.Oracle = o
	if _, err := sim.RunE(cfg, tlsB.Program); err != nil {
		return err
	}
	if err := o.Done(); err != nil {
		return err
	}
	if d := Compare(SerialImage(tlsB.Program), o.Image()); d != nil {
		return d
	}
	return nil
}
