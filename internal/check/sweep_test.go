package check

import (
	"errors"
	"testing"

	"subthreads/internal/inject"
	"subthreads/internal/sim"
	"subthreads/internal/tls"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

// TestInjectionSweep is the stress acceptance test: 12 seeded fault
// schedules under each overflow policy (24 runs), all with the paranoid
// auditor and the serial oracle attached. Every run must either retire with
// an oracle-clean committed state or abandon with a structured *sim.RunError
// — never hang (the watchdog and cycle budget bound each run) and never
// corrupt state silently.
func TestInjectionSweep(t *testing.T) {
	built := workload.Build(smallSpec(tpcc.NewOrder), false)
	serial := SerialImage(built.Program)

	clean, structured := 0, 0
	for _, policy := range []tls.OverflowPolicy{tls.OverflowStall, tls.OverflowSquash} {
		for seed := uint64(1); seed <= 12; seed++ {
			icfg := inject.DefaultConfig()
			icfg.Seed = seed
			icfg.Faults = 15
			icfg.Window = 60_000

			cfg := workload.Machine(workload.Baseline)
			cfg.TLS.OverflowPolicy = policy
			cfg.Paranoid = true
			cfg.Inject = inject.New(icfg)
			cfg.WatchdogCycles = 500_000
			cfg.MaxCycles = 20_000_000
			o := NewOracle()
			cfg.Oracle = o

			res, err := sim.RunE(cfg, built.Program)
			if err != nil {
				var re *sim.RunError
				if !errors.As(err, &re) {
					t.Fatalf("policy=%v seed=%d: unstructured failure %T: %v", policy, seed, err, err)
				}
				structured++
				continue
			}
			if res.InjectedFaults == 0 {
				t.Errorf("policy=%v seed=%d: no faults delivered", policy, seed)
			}
			if derr := o.Done(); derr != nil {
				t.Errorf("policy=%v seed=%d: %v", policy, seed, derr)
			}
			if d := Compare(serial, o.Image()); d != nil {
				t.Errorf("policy=%v seed=%d: injected faults corrupted state: %v", policy, seed, d)
			}
			clean++
		}
	}
	t.Logf("sweep: %d oracle-clean commits, %d structured aborts (of 24 runs)", clean, structured)
	if clean == 0 {
		t.Error("every injected run aborted; the sweep exercised no commit paths")
	}
}
