package check

import (
	"strings"
	"testing"

	"subthreads/internal/mem"
	"subthreads/internal/sim"
	"subthreads/internal/tpcc"
	"subthreads/internal/workload"
)

func smallSpec(b tpcc.Benchmark) workload.Spec {
	spec := workload.DefaultSpec(b)
	spec.Txns = 3
	spec.Warmup = 1
	return spec
}

// TestDifferentialCleanOnAllBenchmarks is the oracle's primary claim: every
// committed workload, run speculatively with sub-threads on the baseline
// machine, produces exactly the serial state, outputs, and memory image —
// with the paranoid protocol auditor enabled throughout.
func TestDifferentialCleanOnAllBenchmarks(t *testing.T) {
	for _, b := range tpcc.All() {
		b := b
		t.Run(b.String(), func(t *testing.T) {
			cfg := workload.Machine(workload.Baseline)
			cfg.Paranoid = true
			if err := Differential(smallSpec(b), cfg); err != nil {
				t.Errorf("differential oracle failed: %v", err)
			}
		})
	}
}

func TestDifferentialCleanUnderOtherMachines(t *testing.T) {
	for _, e := range []workload.Experiment{workload.NoSubthread, workload.PredictorSync} {
		cfg := workload.Machine(e)
		cfg.Paranoid = true
		if err := Differential(smallSpec(tpcc.NewOrder), cfg); err != nil {
			t.Errorf("%v: %v", e, err)
		}
	}
}

func TestCompareReportsLowestDivergentAddress(t *testing.T) {
	w := func(n int) mem.Addr { return mem.Addr(n * mem.WordSize) }
	serial := Image{
		w(1): {Unit: 0, Seq: 10},
		w(5): {Unit: 1, Seq: 20},
		w(9): {Unit: 2, Seq: 30},
	}
	spec := Image{
		w(1): {Unit: 0, Seq: 10},
		w(5): {Unit: 3, Seq: 7, Ctx: 2}, // wrong writer
		w(9): {Unit: 9, Seq: 9},         // also wrong, but higher address
	}
	d := Compare(serial, spec)
	if d == nil {
		t.Fatal("divergent images compared equal")
	}
	if d.Addr != w(5) {
		t.Errorf("first divergence at %v, want %v", d.Addr, w(5))
	}
	if d.Serial == nil || d.Serial.Unit != 1 || d.Spec == nil || d.Spec.Unit != 3 {
		t.Errorf("divergence writers = %+v", d)
	}
	msg := d.Error()
	for _, want := range []string{"divergence", "epoch 3", "sub-thread ctx 2"} {
		if !strings.Contains(msg, want) {
			t.Errorf("report %q missing %q", msg, want)
		}
	}
	if Compare(serial, serial) != nil {
		t.Error("identical images reported divergent")
	}
}

func TestCompareCatchesMissingWriter(t *testing.T) {
	a := mem.Addr(64)
	d := Compare(Image{a: {Unit: 4, Seq: 2}}, Image{})
	if d == nil || d.Spec != nil || d.Serial == nil {
		t.Fatalf("missing speculative writer not reported: %+v", d)
	}
	if !strings.Contains(d.Error(), "no writer") {
		t.Errorf("report %q missing %q", d.Error(), "no writer")
	}
}

// lossyOracle simulates a protocol bug — a commit path that loses one unit's
// speculative stores (as a broken SM directory or squash-without-replay
// would) — by dropping every OnStore of the victim unit.
type lossyOracle struct {
	inner  *Oracle
	victim uint64
}

func (l *lossyOracle) OnStore(unit uint64, ctx int, addr mem.Addr, seq uint64) {
	if unit == l.victim {
		return
	}
	l.inner.OnStore(unit, ctx, addr, seq)
}
func (l *lossyOracle) OnSquash(unit uint64, ctx int) { l.inner.OnSquash(unit, ctx) }
func (l *lossyOracle) OnCommit(unit uint64)          { l.inner.OnCommit(unit) }

// TestSeededBugCaughtWithFirstDivergenceReport seeds the bug above into a
// real speculative TPC-C run and requires the differential comparison to
// fail with a first-divergence report naming the lost writer.
func TestSeededBugCaughtWithFirstDivergenceReport(t *testing.T) {
	built := workload.Build(smallSpec(tpcc.NewOrder), false)
	serial := SerialImage(built.Program)

	// Pick a victim unit that is the final writer of at least one word, so
	// losing its stores is architecturally visible.
	var victim uint64
	for _, c := range serial {
		if c.Unit > 0 {
			victim = c.Unit
			break
		}
	}
	if victim == 0 {
		t.Fatal("no speculative unit finally writes any word; scenario broken")
	}

	o := &lossyOracle{inner: NewOracle(), victim: victim}
	cfg := workload.Machine(workload.Baseline)
	cfg.Oracle = o
	if _, err := sim.RunE(cfg, built.Program); err != nil {
		t.Fatal(err)
	}
	d := Compare(serial, o.inner.Image())
	if d == nil {
		t.Fatal("seeded store-loss bug escaped the differential oracle")
	}
	if d.Serial == nil {
		t.Fatalf("divergence has no serial writer: %+v", d)
	}
	if !strings.Contains(d.Error(), "divergence at") {
		t.Errorf("report %q does not locate the divergence", d.Error())
	}
	t.Logf("first-divergence report: %v", d)
}

func TestOracleDoneDetectsUncommittedStores(t *testing.T) {
	o := NewOracle()
	o.OnStore(3, 1, mem.Addr(128), 7)
	if err := o.Done(); err == nil {
		t.Error("uncommitted buffered store not reported")
	}
	o.OnSquash(3, 0)
	if err := o.Done(); err != nil {
		t.Errorf("squashed store still pending: %v", err)
	}
}

func TestOracleSquashDiscardsOnlyLaterContexts(t *testing.T) {
	o := NewOracle()
	a, b := mem.Addr(0), mem.Addr(64)
	o.OnStore(1, 0, a, 5)
	o.OnStore(1, 2, b, 9)
	o.OnSquash(1, 1) // rewind to ctx 1: ctx 0's store survives
	o.OnCommit(1)
	img := o.Image()
	if _, ok := img[a.Word()]; !ok {
		t.Error("pre-rewind store discarded by a later-context squash")
	}
	if _, ok := img[b.Word()]; ok {
		t.Error("squashed store committed")
	}
}
