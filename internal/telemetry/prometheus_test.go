package telemetry

import (
	"bytes"
	"math"
	"os"
	"strings"
	"testing"
)

func TestPromWriterFormat(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(1)
	h.Observe(5)

	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("jobs_total", "Jobs.", 3)
	p.Gauge("queue_depth", "Depth.", 2)
	p.Histogram("latency_micros", "Latency.", h.Snapshot(), PromLabel{"stage", "build"})
	p.Histogram("latency_micros", "Latency.", HistogramSnapshot{}, PromLabel{"stage", "sim"})
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}

	want := strings.Join([]string{
		"# HELP jobs_total Jobs.",
		"# TYPE jobs_total counter",
		"jobs_total 3",
		"# HELP queue_depth Depth.",
		"# TYPE queue_depth gauge",
		"queue_depth 2",
		"# HELP latency_micros Latency.",
		"# TYPE latency_micros histogram",
		`latency_micros_bucket{stage="build",le="0"} 1`,
		`latency_micros_bucket{stage="build",le="1"} 2`,
		`latency_micros_bucket{stage="build",le="7"} 3`,
		`latency_micros_bucket{stage="build",le="+Inf"} 3`,
		`latency_micros_sum{stage="build"} 6`,
		`latency_micros_count{stage="build"} 3`,
		`latency_micros_bucket{stage="sim",le="+Inf"} 0`,
		`latency_micros_sum{stage="sim"} 0`,
		`latency_micros_count{stage="sim"} 0`,
		"",
	}, "\n")
	if got := buf.String(); got != want {
		t.Errorf("exposition output:\n%s\nwant:\n%s", got, want)
	}
	if err := LintProm(buf.Bytes()); err != nil {
		t.Errorf("LintProm rejects the writer's own output: %v", err)
	}
}

func TestPromWriterNeverEmitsNonFinite(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Gauge("ratio", "A ratio that divides by zero on a fresh daemon.", math.NaN())
	p.Gauge("rate", "Same, for infinities.", math.Inf(1))
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := buf.String()
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("writer leaked a non-finite value:\n%s", out)
	}
	if !strings.Contains(out, "ratio 0") || !strings.Contains(out, "rate 0") {
		t.Errorf("non-finite values not sanitized to 0:\n%s", out)
	}
	if err := LintProm(buf.Bytes()); err != nil {
		t.Errorf("LintProm: %v", err)
	}
}

func TestPromWriterEscapesLabelsAndHelp(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Gauge("info", "line one\nline \\two", 1, PromLabel{"v", `a"b\c` + "\nd"})
	if err := p.Flush(); err != nil {
		t.Fatalf("Flush: %v", err)
	}
	out := buf.String()
	if !strings.Contains(out, `# HELP info line one\nline \\two`) {
		t.Errorf("HELP not escaped:\n%s", out)
	}
	if !strings.Contains(out, `info{v="a\"b\\c\nd"} 1`) {
		t.Errorf("label value not escaped:\n%s", out)
	}
	if err := LintProm(buf.Bytes()); err != nil {
		t.Errorf("LintProm: %v", err)
	}
}

func TestPromWriterRejectsRetypedFamily(t *testing.T) {
	var buf bytes.Buffer
	p := NewPromWriter(&buf)
	p.Counter("x_total", "X.", 1)
	p.Gauge("x_total", "X again.", 2)
	if err := p.Flush(); err == nil {
		t.Error("redeclaring a family with a different type did not error")
	}
}

func TestSnapshotWriteProm(t *testing.T) {
	m := NewMetrics()
	m.Emit(Event{Kind: EpochStart, Epoch: 1, Cycle: 10})
	m.Emit(Event{Kind: EpochCommit, Epoch: 1, Cycle: 50})
	m.Emit(Event{Kind: PrimaryViolation, Epoch: 1, Cycle: 30, Depth: 2, Instrs: 100})

	var buf bytes.Buffer
	if err := m.Snapshot().WriteProm(&buf, "tlssim"); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		`tlssim_events_total{kind="epoch-start"} 1`,
		`tlssim_events_total{kind="violation-primary"} 1`,
		"# TYPE tlssim_epoch_lifetime_cycles histogram",
		"tlssim_violation_rewind_depth_count 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("WriteProm output missing %q:\n%s", want, out)
		}
	}
	if err := LintProm(buf.Bytes()); err != nil {
		t.Errorf("LintProm: %v", err)
	}

	// Determinism: two renderings of the same snapshot are byte-identical.
	var buf2 bytes.Buffer
	if err := m.Snapshot().WriteProm(&buf2, "tlssim"); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteProm output is not deterministic")
	}
}

func TestLintPromRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"nan value":          "# TYPE x gauge\nx NaN\n",
		"inf value":          "# TYPE x gauge\nx +Inf\n",
		"no type":            "orphan 1\n",
		"bad name":           "# TYPE 9x gauge\n9x 1\n",
		"bad label":          "# TYPE x gauge\nx{9l=\"v\"} 1\n",
		"unterminated label": "# TYPE x gauge\nx{l=\"v 1\n",
		"retyped family":     "# TYPE x gauge\n# TYPE x counter\nx 1\n",
		"unknown type":       "# TYPE x sparkline\nx 1\n",
		"non-cumulative": "# TYPE h histogram\n" +
			`h_bucket{le="1"} 5` + "\n" + `h_bucket{le="2"} 3` + "\n" +
			`h_bucket{le="+Inf"} 5` + "\nh_sum 9\nh_count 5\n",
		"inf bucket mismatch": "# TYPE h histogram\n" +
			`h_bucket{le="+Inf"} 4` + "\nh_sum 9\nh_count 5\n",
		"missing inf bucket": "# TYPE h histogram\nh_sum 9\nh_count 5\n",
		"bare histogram sample": "# TYPE h histogram\nh 1\n" +
			`h_bucket{le="+Inf"} 1` + "\nh_sum 1\nh_count 1\n",
	}
	for name, doc := range cases {
		if err := LintProm([]byte(doc)); err == nil {
			t.Errorf("%s: linter accepted malformed document:\n%s", name, doc)
		}
	}
}

func TestLintPromAcceptsValid(t *testing.T) {
	doc := "# A bare comment.\n" +
		"# HELP up Whether the target is up.\n# TYPE up gauge\nup 1\n" +
		"# TYPE reqs_total counter\nreqs_total{code=\"200\"} 10 1712000000\n" +
		"# TYPE h histogram\n" +
		`h_bucket{le="0.5"} 1` + "\n" + `h_bucket{le="+Inf"} 2` + "\nh_sum 3.5\nh_count 2\n"
	if err := LintProm([]byte(doc)); err != nil {
		t.Errorf("linter rejected a valid document: %v", err)
	}
}

// TestLintPromFile lints an exposition document named by PROMLINT_FILE —
// the hook scripts/tlsd-smoke.sh uses to validate a live daemon's /metrics
// scrape with the in-repo linter. Skipped when the variable is unset.
func TestLintPromFile(t *testing.T) {
	path := os.Getenv("PROMLINT_FILE")
	if path == "" {
		t.Skip("PROMLINT_FILE not set (used by scripts/tlsd-smoke.sh)")
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	if err := LintProm(data); err != nil {
		t.Fatalf("%s is not valid Prometheus text exposition: %v", path, err)
	}
}
