package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"subthreads/internal/isa"
)

func TestKindNamesAndJSON(t *testing.T) {
	seen := map[string]bool{}
	for k := Kind(0); k < NumKinds; k++ {
		name := k.String()
		if strings.HasPrefix(name, "kind(") {
			t.Errorf("kind %d has no name", k)
		}
		if seen[name] {
			t.Errorf("duplicate kind name %q", name)
		}
		seen[name] = true
		b, err := json.Marshal(k)
		if err != nil {
			t.Fatal(err)
		}
		if string(b) != `"`+name+`"` {
			t.Errorf("kind %d marshals to %s", k, b)
		}
	}
}

func TestBufferAndNoop(t *testing.T) {
	var b Buffer
	Noop{}.Emit(Event{Kind: EpochStart})
	b.Emit(Event{Cycle: 1, Kind: EpochStart})
	b.Emit(Event{Cycle: 2, Kind: EpochCommit})
	if len(b.Events) != 2 || b.Events[1].Kind != EpochCommit {
		t.Fatalf("buffer captured %+v", b.Events)
	}
	b.Reset()
	if len(b.Events) != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestRingKeepsTail(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 10; i++ {
		r.Emit(Event{Cycle: uint64(i)})
	}
	if r.Len() != 4 {
		t.Fatalf("Len = %d, want 4", r.Len())
	}
	if r.Dropped != 6 {
		t.Fatalf("Dropped = %d, want 6", r.Dropped)
	}
	evs := r.Events()
	for i, ev := range evs {
		if want := uint64(6 + i); ev.Cycle != want {
			t.Errorf("event %d cycle = %d, want %d", i, ev.Cycle, want)
		}
	}
	// Partially-filled ring returns only what it holds, oldest first.
	r2 := NewRing(8)
	r2.Emit(Event{Cycle: 7})
	if got := r2.Events(); len(got) != 1 || got[0].Cycle != 7 {
		t.Fatalf("partial ring events = %+v", got)
	}
}

func TestJSONLStreamMatchesBatchEncode(t *testing.T) {
	events := []Event{
		{Cycle: 10, CPU: 1, Kind: EpochStart, Epoch: 3},
		{Cycle: 20, CPU: 1, Kind: PrimaryViolation, Epoch: 3, Ctx: 2, Depth: 1,
			Instrs: 500, LoadPC: 7, StorePC: 9, Addr: 0x40},
		{Cycle: 30, CPU: 1, Kind: EpochCommit, Epoch: 3, Instrs: 9000},
	}
	var stream bytes.Buffer
	j := NewJSONL(&stream)
	for _, ev := range events {
		j.Emit(ev)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	var batch bytes.Buffer
	if err := EncodeJSONL(&batch, events); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(stream.Bytes(), batch.Bytes()) {
		t.Error("streaming and batch JSONL differ")
	}
	lines := strings.Split(strings.TrimSpace(stream.String()), "\n")
	if len(lines) != len(events) {
		t.Fatalf("%d lines for %d events", len(lines), len(events))
	}
	var decoded map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &decoded); err != nil {
		t.Fatalf("line 1 is not JSON: %v", err)
	}
	if decoded["kind"] != "violation-primary" {
		t.Errorf("kind = %v", decoded["kind"])
	}
	if _, ok := decoded["load_pc"]; !ok {
		t.Error("violation line lost load_pc")
	}
	// Zero-valued kind-specific fields are omitted.
	if strings.Contains(lines[0], "load_pc") {
		t.Error("epoch-start line carries load_pc")
	}
}

func TestMulti(t *testing.T) {
	var a, b Buffer
	m := Multi(&a, nil, &b)
	m.Emit(Event{Cycle: 1})
	if len(a.Events) != 1 || len(b.Events) != 1 {
		t.Fatal("multi did not fan out")
	}
	if Multi() != nil {
		t.Error("empty Multi should be nil")
	}
	if Multi(nil, &a) != &a {
		t.Error("single-sink Multi should unwrap")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{0, 1, 2, 3, 4, 1000} {
		h.Observe(v)
	}
	if h.Count != 6 || h.Sum != 1010 || h.Min != 0 || h.Max != 1000 {
		t.Fatalf("histogram stats = %+v", h)
	}
	s := h.Snapshot()
	want := map[uint64]uint64{0: 1, 1: 1, 3: 2, 7: 1, 1023: 1}
	if len(s.Buckets) != len(want) {
		t.Fatalf("buckets = %+v", s.Buckets)
	}
	for _, b := range s.Buckets {
		if want[b.Le] != b.Count {
			t.Errorf("bucket le=%d count=%d, want %d", b.Le, b.Count, want[b.Le])
		}
	}
	if got := h.Mean(); got < 168 || got > 169 {
		t.Errorf("mean = %v", got)
	}
}

func TestMetricsFromEventStream(t *testing.T) {
	m := NewMetrics()
	feed := []Event{
		{Cycle: 0, CPU: 0, Kind: EpochStart, Epoch: 1},
		{Cycle: 5, CPU: 0, Kind: LatchStall, Addr: 0x100},
		{Cycle: 15, CPU: 0, Kind: LatchAcquired, Addr: 0x100, Ctx: 0},
		{Cycle: 40, CPU: 0, Kind: LatchReleased, Addr: 0x100},
		{Cycle: 50, CPU: 0, Kind: PrimaryViolation, Epoch: 1, Ctx: 1, Depth: 2, Instrs: 800},
		{Cycle: 90, CPU: 0, Kind: PrimaryViolation, Epoch: 1, Ctx: 0, Depth: 3, Instrs: 2000},
		{Cycle: 100, CPU: 0, Kind: EpochCommit, Epoch: 1, Instrs: 5000},
	}
	for _, ev := range feed {
		m.Emit(ev)
	}
	if got := m.Count(PrimaryViolation); got != 2 {
		t.Errorf("primary count = %d", got)
	}
	if m.LatchHold.Count != 1 || m.LatchHold.Sum != 25 {
		t.Errorf("latch hold = %+v", m.LatchHold)
	}
	if m.LatchStallCycles.Count != 1 || m.LatchStallCycles.Sum != 10 {
		t.Errorf("latch stall = %+v", m.LatchStallCycles)
	}
	if m.EpochLifetime.Count != 1 || m.EpochLifetime.Sum != 100 {
		t.Errorf("epoch lifetime = %+v", m.EpochLifetime)
	}
	if m.InterViolationGap.Count != 1 || m.InterViolationGap.Sum != 40 {
		t.Errorf("inter-violation gap = %+v", m.InterViolationGap)
	}
	if m.RewindDepth.Sum != 5 || m.RewindInstrs.Sum != 2800 {
		t.Errorf("rewind histograms = %+v %+v", m.RewindDepth, m.RewindInstrs)
	}
	snap := m.Snapshot()
	if snap.Events != uint64(len(feed)) {
		t.Errorf("snapshot events = %d, want %d", snap.Events, len(feed))
	}
	var out bytes.Buffer
	if err := m.WriteJSON(&out); err != nil {
		t.Fatal(err)
	}
	var decoded Snapshot
	if err := json.Unmarshal(out.Bytes(), &decoded); err != nil {
		t.Fatalf("snapshot JSON invalid: %v", err)
	}
	if decoded.Counters["violation-primary"] != 2 {
		t.Errorf("decoded counters = %+v", decoded.Counters)
	}
	if decoded.Histograms["latch_hold_cycles"].Sum != 25 {
		t.Errorf("decoded latch hold = %+v", decoded.Histograms["latch_hold_cycles"])
	}
}

// TestMetricsSquashClosesHolds checks that a violation finishes the rewound
// contexts' latch holds and cancels a pending stall.
func TestMetricsSquashClosesHolds(t *testing.T) {
	m := NewMetrics()
	m.Emit(Event{Cycle: 0, CPU: 2, Kind: LatchAcquired, Addr: 0x40, Ctx: 3})
	m.Emit(Event{Cycle: 5, CPU: 2, Kind: LatchAcquired, Addr: 0x80, Ctx: 1})
	m.Emit(Event{Cycle: 8, CPU: 2, Kind: LatchStall, Addr: 0xc0})
	m.Emit(Event{Cycle: 10, CPU: 2, Kind: SecondaryViolation, Epoch: 7, Ctx: 2, Depth: 1})
	// The ctx-3 hold (>= rewind target 2) closed at cycle 10; ctx-1 survives.
	if m.LatchHold.Count != 1 || m.LatchHold.Sum != 10 {
		t.Fatalf("latch hold after squash = %+v", m.LatchHold)
	}
	m.Emit(Event{Cycle: 20, CPU: 2, Kind: LatchReleased, Addr: 0x80})
	if m.LatchHold.Count != 2 || m.LatchHold.Sum != 25 {
		t.Fatalf("surviving hold = %+v", m.LatchHold)
	}
	// The stall was cancelled: a later acquire records no stall time.
	m.Emit(Event{Cycle: 30, CPU: 2, Kind: LatchAcquired, Addr: 0xc0})
	if m.LatchStallCycles.Count != 0 {
		t.Fatalf("stall survived squash = %+v", m.LatchStallCycles)
	}
}

func TestChromeTraceSyntheticStream(t *testing.T) {
	events := []Event{
		{Cycle: 0, CPU: 0, Kind: EpochStart, Epoch: 0},
		{Cycle: 0, CPU: 0, Kind: HomefreeToken, Epoch: 0},
		{Cycle: 10, CPU: 1, Kind: EpochStart, Epoch: 1},
		{Cycle: 100, CPU: 1, Kind: SubthreadStart, Epoch: 1, Ctx: 1},
		{Cycle: 150, CPU: 1, Kind: LatchStall, Epoch: 1, Addr: 0x200},
		{Cycle: 180, CPU: 1, Kind: LatchAcquired, Epoch: 1, Ctx: 1, Addr: 0x200},
		{Cycle: 200, CPU: 1, Kind: PrimaryViolation, Epoch: 1, Ctx: 1, Depth: 1,
			Instrs: 900, LoadPC: 3, StorePC: 4, Addr: 0x80},
		{Cycle: 260, CPU: 1, Kind: LatchReleased, Epoch: 1, Addr: 0x200},
		{Cycle: 300, CPU: 0, Kind: EpochCommit, Epoch: 0, Instrs: 4000},
		{Cycle: 300, CPU: 1, Kind: HomefreeToken, Epoch: 1},
		{Cycle: 400, CPU: 1, Kind: EpochCommit, Epoch: 1, Instrs: 5000},
	}
	var out bytes.Buffer
	err := WriteChromeTrace(&out, events, TraceOptions{SiteName: func(pc isa.PC) string {
		return "site"
	}})
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(out.Bytes(), &doc); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	var haveEpoch, haveCtx, haveViolation, haveLatch, haveReplay bool
	for _, ev := range doc.TraceEvents {
		name, _ := ev["name"].(string)
		ph, _ := ev["ph"].(string)
		switch {
		case ph == "X" && name == "epoch 1":
			haveEpoch = true
			if ev["dur"].(float64) != 390 {
				t.Errorf("epoch 1 dur = %v", ev["dur"])
			}
		case ph == "X" && name == "ctx 0":
			haveCtx = true
		case ph == "X" && name == "ctx 1 (replay)":
			haveReplay = true
		case ph == "i" && name == "primary violation":
			haveViolation = true
		case ph == "X" && strings.HasPrefix(name, "latch 0x"):
			haveLatch = true
		}
	}
	if !haveEpoch || !haveCtx || !haveViolation || !haveLatch || !haveReplay {
		t.Errorf("missing trace elements: epoch=%v ctx=%v violation=%v latch=%v replay=%v\n%s",
			haveEpoch, haveCtx, haveViolation, haveLatch, haveReplay, out.String())
	}
}
