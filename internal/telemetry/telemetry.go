// Package telemetry is the simulator's observability layer: cycle-stamped
// protocol events emitted by internal/sim at every TLS protocol point, the
// sinks that capture them (ring buffer, unbounded buffer, streaming JSONL),
// a Chrome trace-event exporter that renders per-CPU timelines loadable in
// ui.perfetto.dev, and a metrics layer (counters + power-of-two histograms)
// snapshotted to JSON.
//
// Instrumentation is zero-overhead when disabled: the simulator guards every
// emission site with a nil test on the configured Emitter, and sites exist
// only at protocol events (epoch lifecycle, sub-thread spawns, violations,
// latch traffic, stalls) — never on the per-instruction hot path. Event
// streams are deterministic: two runs with the same seed and configuration
// produce byte-identical JSONL encodings.
//
// # Event schema
//
// Every event carries the cycle it happened on, the CPU it happened to, the
// epoch ID and sub-thread context involved, and a Kind. Kind-specific fields:
//
//	EpochStart         an epoch began on CPU; Barrier marks serial regions.
//	EpochCommit        the epoch committed; Ctx is the final context, Instrs
//	                   the trace length retired.
//	SubthreadStart     a sub-thread checkpoint was taken; Ctx is the new
//	                   context (§2.2).
//	PrimaryViolation   the epoch's own exposed load was violated: Ctx is the
//	                   rewind target, Depth the number of sub-thread contexts
//	                   rewound, Instrs the instructions rewound, LoadPC/
//	                   StorePC the offending dependence pair (§3.1), Addr the
//	                   violated address.
//	SecondaryViolation a logically-earlier epoch's violation cascaded here
//	                   (Figure 4); Ctx/Depth/Instrs as above.
//	OverflowSquash     speculative state fell out of the victim cache and the
//	                   owning sub-thread rewound (§2.1).
//	LatchAcquired      an escaped-speculation latch was granted; Addr is the
//	                   latch address.
//	LatchStall         the epoch began stalling on a latch held by another
//	                   live epoch (the paper's "Latch Stall").
//	LatchReleased      the latch at Addr was released.
//	HomefreeToken      the epoch became the oldest and received the homefree
//	                   token (it can no longer be violated).
//	OverflowStall      the epoch stalled because speculative state could not
//	                   be buffered (OverflowStall policy, §2.1).
//	OverflowResume     the overflow stall ended (an earlier epoch committed).
//	DeadlockBreak      the latch-deadlock watchdog squashed this epoch.
//	InjectSquash       the fault injector force-squashed this sub-thread.
//	InjectOverflow     the fault injector synthesized buffer exhaustion here.
//	WatchdogTrip       the forward-progress watchdog abandoned the run.
//	AuditFail          the paranoid auditor found a broken invariant.
//
// Unused fields are zero and omitted from JSON encodings.
package telemetry

import (
	"fmt"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

// Kind classifies a telemetry event.
type Kind uint8

const (
	// EpochStart: a speculative thread (or barrier unit) began on a CPU.
	EpochStart Kind = iota
	// EpochCommit: the oldest epoch passed its state to the architecture.
	EpochCommit
	// SubthreadStart: a sub-thread checkpoint was taken (§2.2).
	SubthreadStart
	// PrimaryViolation: an exposed load was violated by an earlier store.
	PrimaryViolation
	// SecondaryViolation: a cascading rewind from an earlier epoch's
	// violation (Figure 4).
	SecondaryViolation
	// OverflowSquash: speculative state could not be buffered and the
	// owning sub-thread rewound (§2.1).
	OverflowSquash
	// LatchAcquired: an escaped-speculation latch was granted.
	LatchAcquired
	// LatchStall: execution began stalling on a held latch.
	LatchStall
	// LatchReleased: a latch was released.
	LatchReleased
	// HomefreeToken: the epoch became oldest and can commit freely.
	HomefreeToken
	// OverflowStall: the epoch stalled on speculative-buffer exhaustion.
	OverflowStall
	// OverflowResume: the overflow stall ended.
	OverflowResume
	// DeadlockBreak: the watchdog squashed a latch-deadlocked epoch.
	DeadlockBreak
	// InjectSquash: the fault injector force-squashed a sub-thread.
	InjectSquash
	// InjectOverflow: the fault injector synthesized buffer exhaustion.
	InjectOverflow
	// WatchdogTrip: the forward-progress watchdog (or cycle budget)
	// abandoned the run.
	WatchdogTrip
	// AuditFail: the paranoid protocol auditor found a broken invariant
	// and the run was abandoned.
	AuditFail
	// NumKinds is the number of distinct event kinds.
	NumKinds
)

var kindNames = [...]string{
	EpochStart:         "epoch-start",
	EpochCommit:        "epoch-commit",
	SubthreadStart:     "subthread-start",
	PrimaryViolation:   "violation-primary",
	SecondaryViolation: "violation-secondary",
	OverflowSquash:     "overflow-squash",
	LatchAcquired:      "latch-acquired",
	LatchStall:         "latch-stall",
	LatchReleased:      "latch-released",
	HomefreeToken:      "homefree-token",
	OverflowStall:      "overflow-stall",
	OverflowResume:     "overflow-resume",
	DeadlockBreak:      "deadlock-break",
	InjectSquash:       "inject-squash",
	InjectOverflow:     "inject-overflow",
	WatchdogTrip:       "watchdog-trip",
	AuditFail:          "audit-fail",
}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// MarshalJSON encodes the kind as its string name, keeping JSONL streams and
// metric snapshots readable and stable across kind renumbering.
func (k Kind) MarshalJSON() ([]byte, error) {
	return []byte(`"` + k.String() + `"`), nil
}

// Event is one cycle-stamped protocol event. See the package comment for the
// per-kind field schema.
type Event struct {
	Cycle uint64 `json:"cycle"`
	CPU   int    `json:"cpu"`
	Kind  Kind   `json:"kind"`
	Epoch uint64 `json:"epoch"`
	Ctx   int    `json:"ctx"`
	// Barrier marks EpochStart events for serial (barrier) units.
	Barrier bool `json:"barrier,omitempty"`
	// Depth is the number of sub-thread contexts a violation rewound.
	Depth int `json:"depth,omitempty"`
	// Instrs is the instructions rewound (violations) or retired (commits).
	Instrs uint64 `json:"instrs,omitempty"`
	// LoadPC/StorePC identify the violated dependence pair (§3.1).
	LoadPC  isa.PC `json:"load_pc,omitempty"`
	StorePC isa.PC `json:"store_pc,omitempty"`
	// Addr is the violated address or the latch address.
	Addr mem.Addr `json:"addr,omitempty"`
}

// Emitter receives the event stream. Implementations must not mutate events
// and must be deterministic observers: the simulator's behaviour is identical
// with any emitter, including none.
//
// The simulator treats a nil Emitter as disabled instrumentation; Noop is the
// explicit no-op for call sites that want a non-nil default.
type Emitter interface {
	Emit(Event)
}

// Noop discards every event — the explicit form of disabled telemetry.
type Noop struct{}

// Emit implements Emitter by doing nothing.
func (Noop) Emit(Event) {}
