package telemetry

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// PromContentType is the Content-Type of the Prometheus text exposition
// format this encoder produces (version 0.0.4).
const PromContentType = "text/plain; version=0.0.4; charset=utf-8"

// PromLabel is one name="value" pair on a Prometheus series.
type PromLabel struct {
	Name  string
	Value string
}

// PromWriter renders metrics in the Prometheus text exposition format
// (version 0.0.4) without any client-library dependency. It writes one
// `# HELP` / `# TYPE` header per metric family (repeated calls with the same
// name — e.g. one histogram per label value — share the family header), and
// it never emits NaN or ±Inf sample values: non-finite inputs are written as
// 0, so a scrape of a freshly started process is always clean.
//
// Errors are sticky: the first write error is kept and later calls are
// no-ops; check Flush.
type PromWriter struct {
	w    *bufio.Writer
	err  error
	seen map[string]string // family name -> declared type
}

// NewPromWriter returns an exposition writer over w.
func NewPromWriter(w io.Writer) *PromWriter {
	return &PromWriter{w: bufio.NewWriter(w), seen: make(map[string]string)}
}

// Counter writes one counter sample. Counter names should end in _total by
// Prometheus convention.
func (p *PromWriter) Counter(name, help string, v uint64, labels ...PromLabel) {
	p.family(name, help, "counter")
	p.sample(name, labels, float64(v))
}

// Gauge writes one gauge sample.
func (p *PromWriter) Gauge(name, help string, v float64, labels ...PromLabel) {
	p.family(name, help, "gauge")
	p.sample(name, labels, v)
}

// Histogram writes one histogram series: cumulative _bucket samples (le is
// the inclusive upper bound of each retained power-of-two bucket), the +Inf
// bucket, _sum, and _count. An empty snapshot renders as a valid all-zero
// histogram.
func (p *PromWriter) Histogram(name, help string, s HistogramSnapshot, labels ...PromLabel) {
	p.family(name, help, "histogram")
	cum := uint64(0)
	for _, b := range s.Buckets {
		cum += b.Count
		p.sample(name+"_bucket", withLabel(labels, PromLabel{"le", strconv.FormatUint(b.Le, 10)}), float64(cum))
	}
	p.sample(name+"_bucket", withLabel(labels, PromLabel{"le", "+Inf"}), float64(s.Count))
	p.sample(name+"_sum", labels, float64(s.Sum))
	p.sample(name+"_count", labels, float64(s.Count))
}

// Flush drains the buffer and returns the first error encountered.
func (p *PromWriter) Flush() error {
	if err := p.w.Flush(); p.err == nil {
		p.err = err
	}
	return p.err
}

// family writes the HELP/TYPE header the first time a family name appears.
func (p *PromWriter) family(name, help, typ string) {
	if p.err != nil {
		return
	}
	if prev, ok := p.seen[name]; ok {
		if prev != typ {
			p.err = fmt.Errorf("telemetry: metric %s redeclared as %s (was %s)", name, typ, prev)
		}
		return
	}
	p.seen[name] = typ
	_, p.err = fmt.Fprintf(p.w, "# HELP %s %s\n# TYPE %s %s\n", name, escapeHelp(help), name, typ)
}

func (p *PromWriter) sample(name string, labels []PromLabel, v float64) {
	if p.err != nil {
		return
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		v = 0
	}
	if _, err := p.w.WriteString(name); err != nil {
		p.err = err
		return
	}
	if len(labels) > 0 {
		p.w.WriteByte('{')
		for i, l := range labels {
			if i > 0 {
				p.w.WriteByte(',')
			}
			p.w.WriteString(l.Name)
			p.w.WriteString(`="`)
			p.w.WriteString(escapeLabel(l.Value))
			p.w.WriteByte('"')
		}
		p.w.WriteByte('}')
	}
	p.w.WriteByte(' ')
	p.w.WriteString(strconv.FormatFloat(v, 'g', -1, 64))
	p.err = p.w.WriteByte('\n')
}

func withLabel(labels []PromLabel, extra PromLabel) []PromLabel {
	out := make([]PromLabel, 0, len(labels)+1)
	out = append(out, labels...)
	return append(out, extra)
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline.
func escapeLabel(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

// escapeHelp escapes HELP text: backslash and newline.
func escapeHelp(s string) string {
	if !strings.ContainsAny(s, "\\\n") {
		return s
	}
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}

// WriteProm renders the metrics snapshot in Prometheus text exposition
// format under the given namespace: every event-kind counter as one
// `<ns>_events_total{kind="..."}` series and every histogram as
// `<ns>_<name>`. Map iteration is sorted, so identical snapshots produce
// identical bytes.
func (s Snapshot) WriteProm(w io.Writer, namespace string) error {
	p := NewPromWriter(w)
	kinds := make([]string, 0, len(s.Counters))
	for k := range s.Counters {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	for _, k := range kinds {
		p.Counter(namespace+"_events_total", "Protocol telemetry events by kind.",
			s.Counters[k], PromLabel{"kind", k})
	}
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		p.Histogram(namespace+"_"+n, "Distribution of "+n+".", s.Histograms[n])
	}
	return p.Flush()
}
