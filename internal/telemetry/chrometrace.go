package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

// TraceOptions customizes the Chrome trace-event export.
type TraceOptions struct {
	// SiteName resolves a synthetic PC to its instrumentation-site name for
	// violation annotations (typically isa.PCRegistry.Name). nil renders
	// raw PC numbers.
	SiteName func(isa.PC) string
}

// chromeEvent is one entry of the Chrome trace-event JSON array. Timestamps
// are nominally microseconds; the export maps one simulated cycle to one
// microsecond, so Perfetto's "us" readout is really cycles.
type chromeEvent struct {
	Name  string         `json:"name"`
	Phase string         `json:"ph"`
	TS    uint64         `json:"ts"`
	Dur   uint64         `json:"dur,omitempty"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// Each CPU owns three timeline lanes in the rendered trace.
const (
	laneEpoch    = 0 // epoch slices, homefree/deadlock instants
	laneSubthr   = 1 // sub-thread context slices, violation instants
	laneLatch    = 2 // latch holds, latch/overflow stalls
	lanesPerCPU  = 3
	tracePID     = 0
	instantScope = "t" // thread-scoped instant marks
)

func laneTID(cpu, lane int) int { return cpu*lanesPerCPU + lane }

// openSlice is a duration event under construction.
type openSlice struct {
	name  string
	start uint64
	args  map[string]any
	depth int // re-entrant latch acquisitions
	ctx   int // acquiring sub-thread context (latch holds)
}

// traceBuilder accumulates chromeEvents while scanning the stream.
type traceBuilder struct {
	opt  TraceOptions
	out  []chromeEvent
	last uint64 // latest cycle seen, used to close dangling slices
}

func (tb *traceBuilder) site(pc isa.PC) string {
	if tb.opt.SiteName != nil {
		return tb.opt.SiteName(pc)
	}
	return fmt.Sprintf("pc%d", pc)
}

func (tb *traceBuilder) slice(cpu, lane int, s *openSlice, end uint64) {
	if s == nil {
		return
	}
	tb.out = append(tb.out, chromeEvent{
		Name: s.name, Phase: "X", TS: s.start, Dur: end - s.start,
		PID: tracePID, TID: laneTID(cpu, lane), Args: s.args,
	})
}

func (tb *traceBuilder) instant(cpu, lane int, cycle uint64, name string, args map[string]any) {
	tb.out = append(tb.out, chromeEvent{
		Name: name, Phase: "i", TS: cycle, Scope: instantScope,
		PID: tracePID, TID: laneTID(cpu, lane), Args: args,
	})
}

// closeHolds ends every open latch hold acquired in context minCtx or later,
// in address order so the output stays deterministic.
func (tb *traceBuilder) closeHolds(cpu int, holds map[mem.Addr]*openSlice, minCtx int, end uint64) {
	addrs := make([]mem.Addr, 0, len(holds))
	for a, h := range holds {
		if h.ctx >= minCtx {
			addrs = append(addrs, a)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, a := range addrs {
		tb.slice(cpu, laneLatch, holds[a], end)
		delete(holds, a)
	}
}

func (tb *traceBuilder) meta(tid int, key, value string) {
	tb.out = append(tb.out, chromeEvent{
		Name: key, Phase: "M", PID: tracePID, TID: tid,
		Args: map[string]any{"name": value},
	})
}

// cpuState tracks the open slices of one CPU's three lanes.
type cpuState struct {
	epoch  *openSlice
	subthr *openSlice
	stall  *openSlice              // latch or overflow stall on laneLatch
	holds  map[mem.Addr]*openSlice // open latch holds
}

// WriteChromeTrace renders the event stream as Chrome trace-event JSON
// (the object form, {"traceEvents": [...]}), loadable in ui.perfetto.dev or
// chrome://tracing. Each CPU gets three lanes: epochs (with homefree-token
// and deadlock-break instants), sub-thread contexts (with violation
// instants), and latches/stalls. One simulated cycle renders as one
// microsecond. Events must be in emission (cycle) order, as produced by any
// sink in this package.
func WriteChromeTrace(w io.Writer, events []Event, opt TraceOptions) error {
	tb := &traceBuilder{opt: opt}
	cpus := map[int]*cpuState{}
	cpu := func(id int) *cpuState {
		s := cpus[id]
		if s == nil {
			s = &cpuState{holds: make(map[mem.Addr]*openSlice)}
			cpus[id] = s
			tb.meta(laneTID(id, laneEpoch), "thread_name", fmt.Sprintf("cpu%d epochs", id))
			tb.meta(laneTID(id, laneSubthr), "thread_name", fmt.Sprintf("cpu%d sub-threads", id))
			tb.meta(laneTID(id, laneLatch), "thread_name", fmt.Sprintf("cpu%d latches", id))
		}
		return s
	}
	tb.out = append(tb.out, chromeEvent{
		Name: "process_name", Phase: "M", PID: tracePID,
		Args: map[string]any{"name": "subthreads TLS simulator"},
	})

	for _, ev := range events {
		if ev.Cycle > tb.last {
			tb.last = ev.Cycle
		}
		c := cpu(ev.CPU)
		switch ev.Kind {
		case EpochStart:
			name := fmt.Sprintf("epoch %d", ev.Epoch)
			if ev.Barrier {
				name = fmt.Sprintf("barrier %d", ev.Epoch)
			}
			c.epoch = &openSlice{name: name, start: ev.Cycle}
			c.subthr = &openSlice{name: "ctx 0", start: ev.Cycle}

		case EpochCommit:
			tb.slice(ev.CPU, laneEpoch, c.epoch, ev.Cycle)
			tb.slice(ev.CPU, laneSubthr, c.subthr, ev.Cycle)
			tb.slice(ev.CPU, laneLatch, c.stall, ev.Cycle)
			tb.closeHolds(ev.CPU, c.holds, 0, ev.Cycle)
			c.epoch, c.subthr, c.stall = nil, nil, nil

		case SubthreadStart:
			tb.slice(ev.CPU, laneSubthr, c.subthr, ev.Cycle)
			c.subthr = &openSlice{name: fmt.Sprintf("ctx %d", ev.Ctx), start: ev.Cycle}

		case PrimaryViolation, SecondaryViolation, OverflowSquash:
			args := map[string]any{
				"depth":          ev.Depth,
				"rewound_instrs": ev.Instrs,
				"rewind_ctx":     ev.Ctx,
			}
			name := "secondary violation"
			switch ev.Kind {
			case PrimaryViolation:
				name = "primary violation"
				args["load"] = tb.site(ev.LoadPC)
				args["store"] = tb.site(ev.StorePC)
				args["addr"] = ev.Addr.String()
			case OverflowSquash:
				name = "overflow squash"
			}
			tb.instant(ev.CPU, laneSubthr, ev.Cycle, name, args)
			// The violated contexts disappear: close the running context
			// slice and reopen at the rewind target.
			tb.slice(ev.CPU, laneSubthr, c.subthr, ev.Cycle)
			c.subthr = &openSlice{name: fmt.Sprintf("ctx %d (replay)", ev.Ctx), start: ev.Cycle}
			// Squashed contexts release their latches and cancel stalls.
			tb.slice(ev.CPU, laneLatch, c.stall, ev.Cycle)
			c.stall = nil
			tb.closeHolds(ev.CPU, c.holds, ev.Ctx, ev.Cycle)

		case LatchAcquired:
			tb.slice(ev.CPU, laneLatch, c.stall, ev.Cycle)
			c.stall = nil
			if h := c.holds[ev.Addr]; h != nil {
				h.depth++ // re-entrant acquire extends the open hold
				break
			}
			c.holds[ev.Addr] = &openSlice{
				name: "latch " + ev.Addr.String(), start: ev.Cycle, depth: 1, ctx: ev.Ctx,
			}

		case LatchReleased:
			h := c.holds[ev.Addr]
			if h == nil {
				break // release of an acquire undone by a squash
			}
			h.depth--
			if h.depth == 0 {
				tb.slice(ev.CPU, laneLatch, h, ev.Cycle)
				delete(c.holds, ev.Addr)
			}

		case LatchStall:
			c.stall = &openSlice{name: "latch stall " + ev.Addr.String(), start: ev.Cycle}

		case OverflowStall:
			c.stall = &openSlice{name: "overflow stall", start: ev.Cycle}

		case OverflowResume:
			tb.slice(ev.CPU, laneLatch, c.stall, ev.Cycle)
			c.stall = nil

		case HomefreeToken:
			tb.instant(ev.CPU, laneEpoch, ev.Cycle, "homefree token", nil)

		case DeadlockBreak:
			tb.instant(ev.CPU, laneEpoch, ev.Cycle, "deadlock break", nil)

		case InjectSquash:
			tb.instant(ev.CPU, laneSubthr, ev.Cycle, "injected squash", nil)

		case InjectOverflow:
			tb.instant(ev.CPU, laneSubthr, ev.Cycle, "injected overflow", nil)

		case WatchdogTrip:
			tb.instant(ev.CPU, laneEpoch, ev.Cycle, "watchdog trip", nil)

		case AuditFail:
			tb.instant(ev.CPU, laneEpoch, ev.Cycle, "audit failure", nil)
		}
	}

	// Close anything still open at the end of the stream (aborted runs,
	// ring-buffer tails), in CPU order so the output stays deterministic.
	ids := make([]int, 0, len(cpus))
	for id := range cpus {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		c := cpus[id]
		tb.slice(id, laneEpoch, c.epoch, tb.last)
		tb.slice(id, laneSubthr, c.subthr, tb.last)
		tb.slice(id, laneLatch, c.stall, tb.last)
		tb.closeHolds(id, c.holds, 0, tb.last)
	}

	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
		TimeUnit    string        `json:"displayTimeUnit"`
	}{tb.out, "ms"})
}
