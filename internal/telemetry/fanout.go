package telemetry

import "sync"

// Fanout is a concurrency-safe emitter that retains the full event stream
// of one run and fans it out to any number of subscribers — the sink behind
// the serving daemon's per-job SSE stream (internal/service). The simulator
// emits from a worker goroutine while subscribers drain from HTTP handler
// goroutines; late subscribers replay the history from the beginning, so a
// stream opened after the run finished still delivers every event.
//
// Unlike the single-goroutine sinks (Buffer, Ring, JSONL), every method is
// safe for concurrent use.
type Fanout struct {
	mu     sync.Mutex
	events []Event
	closed bool
	subs   map[*FanoutSub]struct{}
}

// NewFanout returns an empty, open fan-out sink.
func NewFanout() *Fanout {
	return &Fanout{subs: make(map[*FanoutSub]struct{})}
}

// Emit implements Emitter: it appends the event and wakes every subscriber.
// Events emitted after Close are dropped — a complete stream never grows, so
// a subscriber that observed completion has seen everything.
func (f *Fanout) Emit(ev Event) {
	f.mu.Lock()
	if f.closed {
		f.mu.Unlock()
		return
	}
	f.events = append(f.events, ev)
	for s := range f.subs {
		s.wake()
	}
	f.mu.Unlock()
}

// Close marks the stream complete — the run is over, no further events will
// arrive — and wakes every subscriber so it can observe completion. Close is
// idempotent.
func (f *Fanout) Close() {
	f.mu.Lock()
	f.closed = true
	for s := range f.subs {
		s.wake()
	}
	f.mu.Unlock()
}

// Closed reports whether the stream is complete.
func (f *Fanout) Closed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.closed
}

// Len reports how many events the stream holds so far.
func (f *Fanout) Len() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return len(f.events)
}

// Events returns a snapshot copy of the stream so far.
func (f *Fanout) Events() []Event {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]Event(nil), f.events...)
}

// Subscribe returns a cursor over the stream starting at the beginning.
// Cancel it when done to release the wake channel.
func (f *Fanout) Subscribe() *FanoutSub {
	s := &FanoutSub{f: f, ch: make(chan struct{}, 1)}
	f.mu.Lock()
	f.subs[s] = struct{}{}
	if len(f.events) > 0 || f.closed {
		s.wake()
	}
	f.mu.Unlock()
	return s
}

// FanoutSub is one subscription: a cursor plus a coalesced wake channel.
type FanoutSub struct {
	f      *Fanout
	ch     chan struct{}
	cursor int
}

// wake signals the subscriber without blocking; pending signals coalesce.
func (s *FanoutSub) wake() {
	select {
	case s.ch <- struct{}{}:
	default:
	}
}

// Wait returns the wake channel: it receives (coalesced) whenever events
// arrive past the cursor or the stream closes. The idiom is
//
//	for {
//		evs, done := sub.Next()
//		... deliver evs ...
//		if done { return }
//		select {
//		case <-sub.Wait():
//		case <-ctx.Done():
//			return
//		}
//	}
func (s *FanoutSub) Wait() <-chan struct{} { return s.ch }

// Next drains the events past the cursor (a copy, possibly empty) and
// reports whether the stream is both complete and fully drained.
func (s *FanoutSub) Next() (evs []Event, done bool) {
	s.f.mu.Lock()
	defer s.f.mu.Unlock()
	if s.cursor < len(s.f.events) {
		evs = append([]Event(nil), s.f.events[s.cursor:]...)
		s.cursor = len(s.f.events)
	}
	return evs, s.f.closed && s.cursor == len(s.f.events)
}

// Cancel removes the subscription. Further Next calls still work (the
// retained stream is shared) but no more wakes are delivered.
func (s *FanoutSub) Cancel() {
	s.f.mu.Lock()
	delete(s.f.subs, s)
	s.f.mu.Unlock()
}
