package telemetry

import (
	"fmt"
	"math"
	"strconv"
	"strings"
)

// LintProm validates a Prometheus text exposition document — the in-repo
// linter behind the CI smoke test's /metrics scrape. It checks what a real
// scraper would choke on:
//
//   - HELP/TYPE comment lines are well-formed and each family is typed once;
//   - every sample line parses (metric name, optional labels, float value)
//     with legal metric and label name characters;
//   - every sample belongs to a declared family (histogram samples may use
//     the _bucket/_sum/_count suffixes of a histogram-typed family);
//   - no sample value is NaN or ±Inf — a fresh daemon must scrape clean;
//   - histogram buckets are cumulative (non-decreasing in document order per
//     label set) and every bucket series ends with le="+Inf" equal to _count.
func LintProm(data []byte) error {
	l := promLint{
		types:   make(map[string]string),
		buckets: make(map[string]float64),
		infs:    make(map[string]float64),
		counts:  make(map[string]float64),
	}
	for i, line := range strings.Split(string(data), "\n") {
		if err := l.line(line); err != nil {
			return fmt.Errorf("line %d: %w", i+1, err)
		}
	}
	return l.finish()
}

type promLint struct {
	types   map[string]string  // family -> type
	buckets map[string]float64 // family + label set (minus le) -> last cumulative count
	infs    map[string]float64 // family + label set -> +Inf bucket value
	counts  map[string]float64 // family + label set -> _count value
}

func (l *promLint) line(line string) error {
	line = strings.TrimRight(line, "\r")
	if line == "" {
		return nil
	}
	if strings.HasPrefix(line, "#") {
		return l.comment(line)
	}
	return l.sample(line)
}

func (l *promLint) comment(line string) error {
	fields := strings.SplitN(line, " ", 4)
	if len(fields) < 2 {
		return nil // bare comment, ignored by scrapers
	}
	switch fields[1] {
	case "HELP":
		if len(fields) < 3 || !validMetricName(fields[2]) {
			return fmt.Errorf("malformed HELP comment %q", line)
		}
	case "TYPE":
		if len(fields) != 4 {
			return fmt.Errorf("malformed TYPE comment %q", line)
		}
		name, typ := fields[2], fields[3]
		if !validMetricName(name) {
			return fmt.Errorf("bad metric name %q in TYPE", name)
		}
		switch typ {
		case "counter", "gauge", "histogram", "summary", "untyped":
		default:
			return fmt.Errorf("unknown metric type %q", typ)
		}
		if prev, ok := l.types[name]; ok {
			return fmt.Errorf("family %s retyped as %s (was %s)", name, typ, prev)
		}
		l.types[name] = typ
	}
	return nil
}

func (l *promLint) sample(line string) error {
	name, labels, rest, err := splitSample(line)
	if err != nil {
		return err
	}
	if !validMetricName(name) {
		return fmt.Errorf("bad metric name %q", name)
	}
	valueField := strings.Fields(rest)
	if len(valueField) < 1 || len(valueField) > 2 {
		return fmt.Errorf("expected value [timestamp] after %q, got %q", name, rest)
	}
	v, err := strconv.ParseFloat(valueField[0], 64)
	if err != nil {
		return fmt.Errorf("bad sample value %q: %v", valueField[0], err)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s has non-finite value %q", name, valueField[0])
	}

	family, suffix := name, ""
	for _, sfx := range []string{"_bucket", "_sum", "_count"} {
		base := strings.TrimSuffix(name, sfx)
		if base != name && l.types[base] == "histogram" {
			family, suffix = base, sfx
			break
		}
	}
	typ, ok := l.types[family]
	if !ok {
		return fmt.Errorf("sample %s has no TYPE declaration", name)
	}
	if typ != "histogram" {
		return nil
	}
	if suffix == "" {
		return fmt.Errorf("histogram family %s has a bare sample %s", family, name)
	}

	le, key := "", family
	for _, lb := range labels {
		if lb.Name == "le" {
			le = lb.Value
			continue
		}
		key += "|" + lb.Name + "=" + lb.Value
	}
	switch suffix {
	case "_bucket":
		if le == "" {
			return fmt.Errorf("%s_bucket sample without le label", family)
		}
		if v < l.buckets[key] {
			return fmt.Errorf("%s buckets not cumulative: le=%q dropped to %v", family, le, v)
		}
		l.buckets[key] = v
		if le == "+Inf" {
			l.infs[key] = v
		} else if _, err := strconv.ParseFloat(le, 64); err != nil {
			return fmt.Errorf("%s has unparsable le %q", family, le)
		}
	case "_count":
		l.counts[key] = v
	}
	return nil
}

func (l *promLint) finish() error {
	for key, count := range l.counts {
		inf, ok := l.infs[key]
		if !ok {
			return fmt.Errorf("histogram series %s has no le=\"+Inf\" bucket", key)
		}
		if inf != count {
			return fmt.Errorf("histogram series %s: +Inf bucket %v != count %v", key, inf, count)
		}
	}
	for key := range l.infs {
		if _, ok := l.counts[key]; !ok {
			return fmt.Errorf("histogram series %s has buckets but no _count", key)
		}
	}
	return nil
}

// splitSample splits a sample line into name, labels, and the value rest.
func splitSample(line string) (name string, labels []PromLabel, rest string, err error) {
	brace := strings.IndexByte(line, '{')
	if brace < 0 {
		sp := strings.IndexByte(line, ' ')
		if sp < 0 {
			return "", nil, "", fmt.Errorf("sample %q has no value", line)
		}
		return line[:sp], nil, line[sp+1:], nil
	}
	name = line[:brace]
	i := brace + 1
	for {
		if i >= len(line) {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		if line[i] == '}' {
			i++
			break
		}
		eq := strings.IndexByte(line[i:], '=')
		if eq < 0 {
			return "", nil, "", fmt.Errorf("label without '=' in %q", line)
		}
		lname := line[i : i+eq]
		if !validLabelName(lname) {
			return "", nil, "", fmt.Errorf("bad label name %q", lname)
		}
		i += eq + 1
		if i >= len(line) || line[i] != '"' {
			return "", nil, "", fmt.Errorf("unquoted label value in %q", line)
		}
		i++
		var val strings.Builder
		for {
			if i >= len(line) {
				return "", nil, "", fmt.Errorf("unterminated label value in %q", line)
			}
			c := line[i]
			if c == '\\' && i+1 < len(line) {
				switch line[i+1] {
				case '\\':
					val.WriteByte('\\')
				case '"':
					val.WriteByte('"')
				case 'n':
					val.WriteByte('\n')
				default:
					return "", nil, "", fmt.Errorf("bad escape \\%c in %q", line[i+1], line)
				}
				i += 2
				continue
			}
			if c == '"' {
				i++
				break
			}
			val.WriteByte(c)
			i++
		}
		labels = append(labels, PromLabel{lname, val.String()})
		if i < len(line) && line[i] == ',' {
			i++
		}
	}
	if i >= len(line) || line[i] != ' ' {
		return "", nil, "", fmt.Errorf("no value after label set in %q", line)
	}
	return name, labels, line[i+1:], nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			i > 0 && '0' <= c && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || 'a' <= c && c <= 'z' || 'A' <= c && c <= 'Z' ||
			i > 0 && '0' <= c && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}
