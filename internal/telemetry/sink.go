package telemetry

import (
	"bufio"
	"encoding/json"
	"io"
)

// Buffer is an unbounded in-memory sink, the raw material for the Chrome
// trace exporter and offline analysis.
type Buffer struct {
	Events []Event
}

// Emit implements Emitter.
func (b *Buffer) Emit(ev Event) { b.Events = append(b.Events, ev) }

// Reset discards the captured events, keeping the allocation.
func (b *Buffer) Reset() { b.Events = b.Events[:0] }

// Ring is a bounded in-memory sink that keeps the most recent events,
// overwriting the oldest when full — the "flight recorder" mode for long
// runs where only the tail matters.
type Ring struct {
	buf     []Event
	next    int
	full    bool
	Dropped uint64
}

// NewRing returns a ring holding at most capacity events.
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		panic("telemetry: ring capacity < 1")
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Emitter.
func (r *Ring) Emit(ev Event) {
	if r.full {
		r.Dropped++
	}
	r.buf[r.next] = ev
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// Len reports how many events the ring currently holds.
func (r *Ring) Len() int {
	if r.full {
		return len(r.buf)
	}
	return r.next
}

// Events returns the retained events, oldest first.
func (r *Ring) Events() []Event {
	if !r.full {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	out = append(out, r.buf[:r.next]...)
	return out
}

// JSONL streams each event as one JSON object per line — the on-disk event
// format, suitable for `jq` pipelines and byte-for-byte determinism checks.
// Encoding errors are sticky: the first one is kept and later emits are
// dropped; check Flush (or Err) after the run.
type JSONL struct {
	w   *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a streaming JSONL sink over w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriter(w)
	return &JSONL{w: bw, enc: json.NewEncoder(bw)}
}

// Emit implements Emitter.
func (j *JSONL) Emit(ev Event) {
	if j.err != nil {
		return
	}
	j.err = j.enc.Encode(ev)
}

// Err returns the first error the sink encountered, if any.
func (j *JSONL) Err() error { return j.err }

// Flush drains the buffer and returns the first error encountered.
func (j *JSONL) Flush() error {
	if err := j.w.Flush(); j.err == nil {
		j.err = err
	}
	return j.err
}

// multi fans one stream out to several sinks.
type multi []Emitter

func (m multi) Emit(ev Event) {
	for _, e := range m {
		e.Emit(ev)
	}
}

// Multi returns an emitter that forwards every event to each non-nil sink.
// With zero or one live sink it avoids the fan-out indirection entirely.
func Multi(sinks ...Emitter) Emitter {
	live := make(multi, 0, len(sinks))
	for _, s := range sinks {
		if s != nil {
			live = append(live, s)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

// EncodeJSONL writes events as JSON Lines to w — the batch counterpart of the
// streaming JSONL sink, producing identical bytes for identical streams.
func EncodeJSONL(w io.Writer, events []Event) error {
	j := NewJSONL(w)
	for _, ev := range events {
		j.Emit(ev)
	}
	return j.Flush()
}
