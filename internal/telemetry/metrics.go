package telemetry

import (
	"encoding/json"
	"io"
	"math/bits"

	"subthreads/internal/mem"
)

// Histogram is a power-of-two-bucketed distribution of uint64 samples.
// Bucket i counts samples whose bit length is i: bucket 0 holds zeros,
// bucket i (i >= 1) holds values in [2^(i-1), 2^i).
type Histogram struct {
	Count   uint64
	Sum     uint64
	Min     uint64
	Max     uint64
	buckets [65]uint64
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h.Count == 0 || v < h.Min {
		h.Min = v
	}
	if v > h.Max {
		h.Max = v
	}
	h.Count++
	h.Sum += v
	h.buckets[bits.Len64(v)]++
}

// Mean returns the average sample, or 0 with no samples.
func (h *Histogram) Mean() float64 {
	if h.Count == 0 {
		return 0
	}
	return float64(h.Sum) / float64(h.Count)
}

// Bucket is one non-empty histogram bucket in a snapshot: Count samples were
// <= Le (and greater than the previous bucket's Le).
type Bucket struct {
	Le    uint64 `json:"le"`
	Count uint64 `json:"count"`
}

// HistogramSnapshot is the JSON form of a histogram.
type HistogramSnapshot struct {
	Count   uint64   `json:"count"`
	Sum     uint64   `json:"sum"`
	Min     uint64   `json:"min"`
	Max     uint64   `json:"max"`
	Mean    float64  `json:"mean"`
	Buckets []Bucket `json:"buckets,omitempty"`
}

// Snapshot renders the histogram, listing only non-empty buckets.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Count: h.Count, Sum: h.Sum, Min: h.Min, Max: h.Max, Mean: h.Mean()}
	for i, n := range h.buckets {
		if n == 0 {
			continue
		}
		le := uint64(0)
		if i > 0 {
			le = 1<<uint(i) - 1
		}
		s.Buckets = append(s.Buckets, Bucket{Le: le, Count: n})
	}
	return s
}

// latchKey identifies one open latch hold.
type latchKey struct {
	cpu  int
	addr mem.Addr
}

// latchOpen is the state of one in-progress latch hold.
type latchOpen struct {
	since uint64
	ctx   int
	depth int
}

// Metrics consumes the event stream and maintains the paper-relevant
// distributions: how deep violations rewind, how long latches are held, how
// long epochs live, and how far apart violations land. It implements Emitter
// so it can tap the stream directly (alone or via Multi).
type Metrics struct {
	counters [NumKinds]uint64

	// RewindDepth is the sub-thread contexts rewound per violation — the
	// paper's core claim is that this stays small (§2.2).
	RewindDepth Histogram
	// RewindInstrs is the instructions rewound per violation.
	RewindInstrs Histogram
	// LatchHold is cycles from latch acquisition to release.
	LatchHold Histogram
	// LatchStallCycles is cycles spent waiting for a held latch.
	LatchStallCycles Histogram
	// EpochLifetime is cycles from epoch start to commit.
	EpochLifetime Histogram
	// InterViolationGap is cycles between consecutive primary violations.
	InterViolationGap Histogram

	epochStart  map[uint64]uint64 // epoch ID -> start cycle
	latches     map[latchKey]*latchOpen
	stallSince  map[int]uint64 // CPU -> latch-stall begin cycle
	lastPrimary uint64
	sawPrimary  bool
}

// NewMetrics returns an empty metrics collector.
func NewMetrics() *Metrics {
	return &Metrics{
		epochStart: make(map[uint64]uint64),
		latches:    make(map[latchKey]*latchOpen),
		stallSince: make(map[int]uint64),
	}
}

// Count returns how many events of kind k were seen.
func (m *Metrics) Count(k Kind) uint64 {
	if int(k) < len(m.counters) {
		return m.counters[k]
	}
	return 0
}

// Emit implements Emitter.
func (m *Metrics) Emit(ev Event) {
	if int(ev.Kind) < len(m.counters) {
		m.counters[ev.Kind]++
	}
	switch ev.Kind {
	case EpochStart:
		m.epochStart[ev.Epoch] = ev.Cycle

	case EpochCommit:
		if start, ok := m.epochStart[ev.Epoch]; ok {
			m.EpochLifetime.Observe(ev.Cycle - start)
			delete(m.epochStart, ev.Epoch)
		}
		m.closeLatches(ev.CPU, 0, ev.Cycle)

	case PrimaryViolation, SecondaryViolation, OverflowSquash:
		m.RewindDepth.Observe(uint64(ev.Depth))
		m.RewindInstrs.Observe(ev.Instrs)
		if ev.Kind == PrimaryViolation {
			if m.sawPrimary {
				m.InterViolationGap.Observe(ev.Cycle - m.lastPrimary)
			}
			m.sawPrimary = true
			m.lastPrimary = ev.Cycle
		}
		// Holds acquired by the rewound contexts were released by the
		// squash; their hold time still counts — the latch was occupied.
		m.closeLatches(ev.CPU, ev.Ctx, ev.Cycle)
		delete(m.stallSince, ev.CPU)

	case LatchAcquired:
		if since, ok := m.stallSince[ev.CPU]; ok {
			m.LatchStallCycles.Observe(ev.Cycle - since)
			delete(m.stallSince, ev.CPU)
		}
		k := latchKey{ev.CPU, ev.Addr}
		if lo := m.latches[k]; lo != nil {
			lo.depth++
			return
		}
		m.latches[k] = &latchOpen{since: ev.Cycle, ctx: ev.Ctx, depth: 1}

	case LatchStall:
		m.stallSince[ev.CPU] = ev.Cycle

	case LatchReleased:
		k := latchKey{ev.CPU, ev.Addr}
		lo := m.latches[k]
		if lo == nil {
			return // release whose acquire was undone by a squash
		}
		lo.depth--
		if lo.depth == 0 {
			m.LatchHold.Observe(ev.Cycle - lo.since)
			delete(m.latches, k)
		}
	}
}

// closeLatches finishes every open hold of the CPU acquired in context
// minCtx or later.
func (m *Metrics) closeLatches(cpu, minCtx int, cycle uint64) {
	for k, lo := range m.latches {
		if k.cpu == cpu && lo.ctx >= minCtx {
			m.LatchHold.Observe(cycle - lo.since)
			delete(m.latches, k)
		}
	}
}

// Snapshot is the JSON form of the metrics at one point in time.
type Snapshot struct {
	// Events is the total number of events consumed.
	Events uint64 `json:"events"`
	// Counters maps event-kind names to occurrence counts.
	Counters map[string]uint64 `json:"counters"`
	// Histograms maps distribution names to their snapshots.
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Snapshot captures the current state.
func (m *Metrics) Snapshot() Snapshot {
	s := Snapshot{
		Counters:   make(map[string]uint64, NumKinds),
		Histograms: make(map[string]HistogramSnapshot, 6),
	}
	for k := Kind(0); k < NumKinds; k++ {
		s.Events += m.counters[k]
		s.Counters[k.String()] = m.counters[k]
	}
	s.Histograms["violation_rewind_depth"] = m.RewindDepth.Snapshot()
	s.Histograms["violation_rewind_instrs"] = m.RewindInstrs.Snapshot()
	s.Histograms["latch_hold_cycles"] = m.LatchHold.Snapshot()
	s.Histograms["latch_stall_cycles"] = m.LatchStallCycles.Snapshot()
	s.Histograms["epoch_lifetime_cycles"] = m.EpochLifetime.Snapshot()
	s.Histograms["inter_violation_gap_cycles"] = m.InterViolationGap.Snapshot()
	return s
}

// WriteJSON writes an indented snapshot to w. encoding/json sorts map keys,
// so identical metric states produce identical bytes.
func (m *Metrics) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m.Snapshot())
}
