package telemetry

import (
	"sync"
	"testing"
)

func fanoutDrain(sub *FanoutSub) []Event {
	var got []Event
	for {
		evs, done := sub.Next()
		got = append(got, evs...)
		if done {
			return got
		}
		<-sub.Wait()
	}
}

func TestFanoutDeliversInOrder(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe()
	for i := 0; i < 100; i++ {
		f.Emit(Event{Cycle: uint64(i)})
	}
	f.Close()
	got := fanoutDrain(sub)
	if len(got) != 100 {
		t.Fatalf("delivered %d events, want 100", len(got))
	}
	for i, e := range got {
		if e.Cycle != uint64(i) {
			t.Fatalf("event %d has cycle %d: order not preserved", i, e.Cycle)
		}
	}
}

func TestFanoutLateSubscriberReplaysFromStart(t *testing.T) {
	f := NewFanout()
	for i := 0; i < 10; i++ {
		f.Emit(Event{Cycle: uint64(i)})
	}
	f.Close()

	// Subscribing after close still yields the whole retained stream.
	sub := f.Subscribe()
	got := fanoutDrain(sub)
	if len(got) != 10 || got[0].Cycle != 0 || got[9].Cycle != 9 {
		t.Fatalf("late subscriber saw %d events (first %v), want full replay", len(got), got)
	}
}

func TestFanoutConcurrentEmitAndSubscribe(t *testing.T) {
	const emitters, perEmitter, subscribers = 4, 250, 8
	f := NewFanout()

	var wg sync.WaitGroup
	results := make([][]Event, subscribers)
	for i := 0; i < subscribers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i] = fanoutDrain(f.Subscribe())
		}(i)
	}

	var emit sync.WaitGroup
	for e := 0; e < emitters; e++ {
		emit.Add(1)
		go func(e int) {
			defer emit.Done()
			for i := 0; i < perEmitter; i++ {
				f.Emit(Event{CPU: e, Cycle: uint64(i)})
			}
		}(e)
	}
	emit.Wait()
	f.Close()
	wg.Wait()

	want := f.Events()
	if len(want) != emitters*perEmitter {
		t.Fatalf("retained %d events, want %d", len(want), emitters*perEmitter)
	}
	for i, got := range results {
		if len(got) != len(want) {
			t.Fatalf("subscriber %d saw %d events, want %d", i, len(got), len(want))
		}
		// Every subscriber sees the one retained order, whatever it is.
		for k := range got {
			if got[k] != want[k] {
				t.Fatalf("subscriber %d diverges from retained order at %d", i, k)
			}
		}
	}
}

func TestFanoutCloseIsIdempotentAndEmitAfterCloseDrops(t *testing.T) {
	f := NewFanout()
	f.Emit(Event{Cycle: 1})
	f.Close()
	f.Close()
	f.Emit(Event{Cycle: 2}) // dropped: the stream is complete
	if !f.Closed() {
		t.Error("Closed() = false after Close")
	}
	if f.Len() != 1 {
		t.Errorf("Len() = %d after post-close emit, want 1", f.Len())
	}
	if got := fanoutDrain(f.Subscribe()); len(got) != 1 || got[0].Cycle != 1 {
		t.Errorf("drained %v, want the single pre-close event", got)
	}
}

// TestFanoutCorrelatedStreamsStayIsolated models the serving daemon's
// per-job fan-out under full concurrency (run with -race): each job has its
// own Fanout whose events are stamped with the job's identity (Epoch stands
// in for the correlation ID the SSE layer attaches), publishers for all jobs
// emit concurrently, and both live and late subscribers must observe only
// their own job's events, in emission order, with the stamp preserved on
// every event. Interleaving one job's events into another job's stream —
// the cross-correlation bug this test guards against — would surface as a
// foreign Epoch or an order break.
func TestFanoutCorrelatedStreamsStayIsolated(t *testing.T) {
	const jobs, events, lateSubs = 8, 200, 2

	fans := make([]*Fanout, jobs)
	for j := range fans {
		fans[j] = NewFanout()
	}

	var wg sync.WaitGroup
	live := make([][]Event, jobs)
	for j := 0; j < jobs; j++ {
		wg.Add(1)
		go func(j int) { // live subscriber, racing the publisher
			defer wg.Done()
			live[j] = fanoutDrain(fans[j].Subscribe())
		}(j)
	}
	var pubs sync.WaitGroup
	for j := 0; j < jobs; j++ {
		pubs.Add(1)
		go func(j int) { // one publisher per job, all concurrent
			defer pubs.Done()
			for i := 0; i < events; i++ {
				fans[j].Emit(Event{Epoch: uint64(j), Cycle: uint64(i)})
			}
			fans[j].Close()
		}(j)
	}
	pubs.Wait()
	wg.Wait()

	check := func(j int, got []Event, who string) {
		t.Helper()
		if len(got) != events {
			t.Fatalf("job %d %s subscriber saw %d events, want %d", j, who, len(got), events)
		}
		for i, ev := range got {
			if ev.Epoch != uint64(j) {
				t.Fatalf("job %d %s subscriber saw job %d's event at %d: streams interleaved", j, who, ev.Epoch, i)
			}
			if ev.Cycle != uint64(i) {
				t.Fatalf("job %d %s subscriber saw cycle %d at position %d: order broken", j, who, ev.Cycle, i)
			}
		}
	}
	for j := 0; j < jobs; j++ {
		check(j, live[j], "live")
		// Late subscribers replay the closed stream and must see the same
		// correlated, ordered history.
		for s := 0; s < lateSubs; s++ {
			check(j, fanoutDrain(fans[j].Subscribe()), "late")
		}
	}
}

func TestFanoutCancelStopsDelivery(t *testing.T) {
	f := NewFanout()
	sub := f.Subscribe()
	f.Emit(Event{Cycle: 1})
	sub.Cancel()
	// A cancelled subscriber must not deadlock emitters or Close.
	f.Emit(Event{Cycle: 2})
	f.Close()
	if f.Len() != 2 {
		t.Errorf("Len() = %d, want 2", f.Len())
	}
}
