package cliflags

import (
	"flag"
	"testing"

	"subthreads/internal/inject"
	"subthreads/internal/sim"
	"subthreads/internal/telemetry"
	"subthreads/internal/version"
)

func TestFaultsApply(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := AddFaults(fs)
	if err := fs.Parse([]string{"-paranoid", "-inject", "seed=1,faults=5,window=60000"}); err != nil {
		t.Fatal(err)
	}

	cfg := sim.DefaultConfig()
	if err := f.Apply(&cfg); err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if !cfg.Paranoid {
		t.Error("-paranoid not applied")
	}
	if cfg.Inject == nil {
		t.Error("-inject built no injector")
	}
	if cfg.WatchdogCycles != inject.DefaultWatchdog {
		t.Errorf("watchdog = %d, want the injection default %d", cfg.WatchdogCycles, inject.DefaultWatchdog)
	}

	// Injectors are single-use: a second Apply must arm a fresh one.
	cfg2 := sim.DefaultConfig()
	if err := f.Apply(&cfg2); err != nil {
		t.Fatalf("second Apply: %v", err)
	}
	if cfg2.Inject == cfg.Inject {
		t.Error("Apply reused a consumed injector")
	}
}

func TestFaultsBadSpec(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	f := AddFaults(fs)
	if err := fs.Parse([]string{"-inject", "gibberish"}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Config(); err == nil {
		t.Error("Config accepted an unparsable -inject spec")
	}
	cfg := sim.DefaultConfig()
	if err := f.Apply(&cfg); err == nil {
		t.Error("Apply accepted an unparsable -inject spec")
	}
}

func TestOutputsAttachPreservesExistingSink(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	o := AddOutputs(fs, "")
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	o.Demand() // force capture even with no -trace-out/-metrics-out

	existing := &telemetry.Buffer{}
	cfg := sim.DefaultConfig()
	cfg.Telemetry = existing
	o.Attach(&cfg)

	cfg.Telemetry.Emit(telemetry.Event{Cycle: 7})
	if got := len(existing.Events); got != 1 {
		t.Errorf("pre-existing sink saw %d events, want 1", got)
	}
	if got := len(o.Events()); got != 1 {
		t.Errorf("demanded capture saw %d events, want 1", got)
	}
	if o.Metrics() == nil {
		t.Error("Demand did not force the metrics layer")
	}
}

func TestVersionString(t *testing.T) {
	v := version.Get()
	if v.Module != "subthreads" {
		t.Errorf("module = %q, want subthreads", v.Module)
	}
	if v.Go == "" || v.Version == "" {
		t.Errorf("incomplete build identity: %+v", v)
	}
	if s := v.String(); s == "" {
		t.Error("empty String()")
	}
}
