// Package cliflags factors the flag wiring shared by every command —
// tlssim, tlsprof, tlstrace, experiments, and tlsd — so the hardening
// switches (-paranoid, -inject), the telemetry captures (-trace-out,
// -metrics-out), and -version behave identically everywhere instead of
// being re-implemented per main.
package cliflags

import (
	"flag"
	"fmt"
	"log/slog"
	"os"

	"subthreads/internal/cas"
	"subthreads/internal/chaos"
	"subthreads/internal/inject"
	"subthreads/internal/isa"
	"subthreads/internal/sim"
	"subthreads/internal/telemetry"
	"subthreads/internal/version"
)

// Faults is the hardening flag pair: the paranoid protocol auditor and the
// deterministic fault injector.
type Faults struct {
	Paranoid bool
	Inject   string
}

// AddFaults registers -paranoid and -inject on fs.
func AddFaults(fs *flag.FlagSet) *Faults {
	f := &Faults{}
	fs.BoolVar(&f.Paranoid, "paranoid", false,
		"audit TLS protocol invariants every cycle boundary (abort on violation)")
	fs.StringVar(&f.Inject, "inject", "",
		"fault injection spec, e.g. seed=1,faults=25,window=120000 (see internal/inject)")
	return f
}

// Config parses the injection spec, or returns nil when injection is off.
func (f *Faults) Config() (*inject.Config, error) {
	if f.Inject == "" {
		return nil, nil
	}
	c, err := inject.Parse(f.Inject)
	if err != nil {
		return nil, err
	}
	return &c, nil
}

// Apply arms cfg with the selected hardening: the auditor, a fresh injector
// (injectors are single-use — call Apply once per simulation), and the
// default forward-progress watchdog whenever faults are injected.
func (f *Faults) Apply(cfg *sim.Config) error {
	cfg.Paranoid = f.Paranoid
	ic, err := f.Config()
	if err != nil {
		return err
	}
	if ic != nil {
		cfg.Inject = inject.New(*ic)
		if cfg.WatchdogCycles == 0 {
			cfg.WatchdogCycles = inject.DefaultWatchdog
		}
	}
	return nil
}

// Outputs is the telemetry-capture flag pair: a Chrome trace-event timeline
// and a metrics snapshot.
type Outputs struct {
	TraceOut   string
	MetricsOut string

	demand  bool
	buf     *telemetry.Buffer
	metrics *telemetry.Metrics
}

// AddOutputs registers -trace-out and -metrics-out on fs. traceDefault lets
// tlstrace default to writing a timeline while the other commands default
// to none.
func AddOutputs(fs *flag.FlagSet, traceDefault string) *Outputs {
	o := &Outputs{}
	fs.StringVar(&o.TraceOut, "trace-out", traceDefault,
		"write a Chrome trace-event timeline (ui.perfetto.dev)")
	fs.StringVar(&o.MetricsOut, "metrics-out", "",
		"write a telemetry metrics snapshot as JSON")
	return o
}

// Demand forces the event buffer and metrics sinks on even when no output
// file was requested — for commands that print live statistics regardless.
func (o *Outputs) Demand() { o.demand = true }

// Attach installs the sinks the selected outputs need on cfg.Telemetry,
// preserving any emitter already configured; extra sinks (e.g. a JSONL
// stream) ride along. When nothing is captured, cfg.Telemetry is left
// untouched, keeping the zero-overhead nil-emitter path.
func (o *Outputs) Attach(cfg *sim.Config, extra ...telemetry.Emitter) {
	if o.TraceOut != "" || o.demand {
		o.buf = &telemetry.Buffer{}
	}
	if o.MetricsOut != "" || o.demand {
		o.metrics = telemetry.NewMetrics()
	}
	sinks := append([]telemetry.Emitter{cfg.Telemetry}, extra...)
	if o.buf != nil {
		sinks = append(sinks, o.buf)
	}
	if o.metrics != nil {
		sinks = append(sinks, o.metrics)
	}
	cfg.Telemetry = telemetry.Multi(sinks...)
}

// Events returns the captured event stream (nil unless Attach armed the
// buffer).
func (o *Outputs) Events() []telemetry.Event {
	if o.buf == nil {
		return nil
	}
	return o.buf.Events
}

// Metrics returns the metrics sink (nil unless Attach armed it).
func (o *Outputs) Metrics() *telemetry.Metrics { return o.metrics }

// Write renders the requested output files, resolving instrumentation-site
// PCs through name (may be nil).
func (o *Outputs) Write(name func(isa.PC) string) error {
	if o.TraceOut != "" {
		if err := writeFile(o.TraceOut, func(f *os.File) error {
			return telemetry.WriteChromeTrace(f, o.buf.Events, telemetry.TraceOptions{SiteName: name})
		}); err != nil {
			return err
		}
	}
	if o.MetricsOut != "" {
		if err := writeFile(o.MetricsOut, func(f *os.File) error {
			return o.metrics.WriteJSON(f)
		}); err != nil {
			return err
		}
	}
	return nil
}

// writeFile creates path, runs write on it, and closes it, reporting the
// first error.
func writeFile(path string, write func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// AddCacheDir registers -cache-dir on fs: the persistent content-addressed
// store for build artifacts and results, shared by every command. Empty —
// the default — keeps the caches in-memory only, exactly the behavior
// before the flag existed.
func AddCacheDir(fs *flag.FlagSet) *string {
	return fs.String("cache-dir", "",
		"persistent cache directory for build artifacts and results (empty = in-memory only)")
}

// OpenStore opens the persistent store for a -cache-dir value. "" returns a
// nil store — every cas.Store method is a safe no-op on nil, so call sites
// never branch on whether persistence is enabled. logger (may be nil)
// receives the store's corruption/quarantine diagnostics. The caller owns
// Close (a nil store's Close is also a no-op).
func OpenStore(dir string, logger *slog.Logger) (*cas.Store, error) {
	if dir == "" {
		return nil, nil
	}
	s, err := cas.Open(dir, cas.Options{Logger: logger})
	if err != nil {
		return nil, fmt.Errorf("open cache dir %s: %w", dir, err)
	}
	return s, nil
}

// AddChaos registers -chaos on fs: the deterministic infrastructure-fault
// schedule (disk errors, latency spikes, torn writes, worker panics) for
// soak-testing the daemon's degraded modes. Distinct from -inject, which
// perturbs the simulated machine: -chaos perturbs the serving machinery
// around it and never changes result bytes.
func AddChaos(fs *flag.FlagSet) *string {
	return fs.String("chaos", "",
		"deterministic serving-fault schedule, e.g. seed=1,disk-err=8,slow=8,slow-ms=5,torn=16,panic=10; \"on\" = defaults (see internal/chaos)")
}

// OpenChaos parses a -chaos value. "" returns nil (chaos off); "on" arms the
// default schedule.
func OpenChaos(spec string) (*chaos.Chaos, error) {
	if spec == "" {
		return nil, nil
	}
	if spec == "on" {
		return chaos.New(chaos.DefaultConfig()), nil
	}
	cfg, err := chaos.Parse(spec)
	if err != nil {
		return nil, err
	}
	return chaos.New(cfg), nil
}

// AddVersion registers -version on fs.
func AddVersion(fs *flag.FlagSet) *bool {
	return fs.Bool("version", false, "print the build version and exit")
}

// HandleVersion prints the build identity and exits when -version was given.
// Call it immediately after flag parsing.
func HandleVersion(show bool) {
	if show {
		fmt.Println(version.Get().String())
		os.Exit(0)
	}
}
