// Package predict implements a dependence predictor in the style of
// Moshovos et al. (ISCA'97), which the paper evaluated and abandoned before
// proposing sub-threads (§1.2, §2.2): load PCs whose exposed loads caused
// violations are predicted to be dependent again, and predicted-dependent
// loads synchronize (stall) instead of speculating.
//
// The paper found this ineffective for database threads because "only one of
// several dynamic instances of the same load PC caused the dependence" — the
// predictor cannot tell which instance to synchronize, so it stalls them all.
// The predictor ablation in cmd/experiments reproduces that comparison.
package predict

import "subthreads/internal/isa"

// Predictor tracks, per load PC, a saturating confidence that the next
// dynamic instance of the load will be involved in a cross-thread dependence.
type Predictor struct {
	conf map[isa.PC]uint8

	// Trained counts violation-driven confidence increments; Decayed
	// counts wasted synchronizations that lowered confidence.
	Trained uint64
	Decayed uint64
}

// New returns an empty predictor.
func New() *Predictor {
	return &Predictor{conf: make(map[isa.PC]uint8)}
}

const (
	confMax  = 3
	confSync = 2 // predict dependent at 2 and 3
)

// RecordViolation trains the predictor: the exposed load at pc was violated.
func (p *Predictor) RecordViolation(pc isa.PC) {
	if pc == 0 {
		return
	}
	if c := p.conf[pc]; c < confMax {
		p.conf[pc] = c + 1
	}
	p.Trained++
}

// ShouldSync reports whether the next dynamic instance of the load at pc
// should synchronize with earlier epochs instead of speculating.
func (p *Predictor) ShouldSync(pc isa.PC) bool {
	return p.conf[pc] >= confSync
}

// RecordUseless decays confidence after a synchronization that turned out to
// be unnecessary (no earlier epoch produced the value).
func (p *Predictor) RecordUseless(pc isa.PC) {
	if c := p.conf[pc]; c > 0 {
		p.conf[pc] = c - 1
	}
	p.Decayed++
}

// Tracked reports the number of load PCs with nonzero confidence.
func (p *Predictor) Tracked() int {
	n := 0
	for _, c := range p.conf {
		if c > 0 {
			n++
		}
	}
	return n
}
