package predict

import (
	"sort"

	"subthreads/internal/isa"
	"subthreads/internal/snapbin"
)

// Snapshot codec: the confidence map serializes in ascending PC order so the
// encoding is deterministic regardless of map iteration order.

const maxSnapPCs = 1 << 22

// AppendState serializes the predictor's confidence table and counters.
func (p *Predictor) AppendState(w *snapbin.Writer) {
	pcs := make([]isa.PC, 0, len(p.conf))
	for pc := range p.conf {
		pcs = append(pcs, pc)
	}
	sort.Slice(pcs, func(i, j int) bool { return pcs[i] < pcs[j] })
	w.Uvarint(uint64(len(pcs)))
	for _, pc := range pcs {
		w.Uvarint(uint64(pc))
		w.U8(p.conf[pc])
	}
	w.Uvarint(p.Trained)
	w.Uvarint(p.Decayed)
}

// RestoreState rebuilds the predictor from r.
func (p *Predictor) RestoreState(r *snapbin.Reader) {
	n := r.Count("predictor pcs", maxSnapPCs)
	clear(p.conf)
	for i := 0; i < n && r.Err() == nil; i++ {
		pc := isa.PC(r.Uvarint("predictor pc"))
		p.conf[pc] = r.U8("predictor confidence")
	}
	p.Trained = r.Uvarint("predictor trained")
	p.Decayed = r.Uvarint("predictor decayed")
}

// Empty reports whether the predictor carries no trained state at all — the
// forkability test for prefix snapshots (an untouched predictor restores
// identically under any configuration).
func (p *Predictor) Empty() bool {
	return len(p.conf) == 0 && p.Trained == 0 && p.Decayed == 0
}
