package predict

import "testing"

func TestPredictorWarmsUp(t *testing.T) {
	p := New()
	if p.ShouldSync(5) {
		t.Fatal("cold predictor predicted dependent")
	}
	p.RecordViolation(5)
	if p.ShouldSync(5) {
		t.Fatal("one violation should not reach sync threshold")
	}
	p.RecordViolation(5)
	if !p.ShouldSync(5) {
		t.Fatal("two violations must reach sync threshold")
	}
}

func TestPredictorDecay(t *testing.T) {
	p := New()
	p.RecordViolation(5)
	p.RecordViolation(5)
	p.RecordUseless(5)
	if p.ShouldSync(5) {
		t.Error("one decay must drop below threshold")
	}
	p.RecordUseless(5)
	p.RecordUseless(5) // saturates at 0
	if p.conf[5] != 0 {
		t.Errorf("conf = %d, want 0", p.conf[5])
	}
}

func TestPredictorSaturation(t *testing.T) {
	p := New()
	for i := 0; i < 10; i++ {
		p.RecordViolation(7)
	}
	if p.conf[7] != confMax {
		t.Errorf("conf = %d, want %d", p.conf[7], confMax)
	}
	if p.Trained != 10 {
		t.Errorf("Trained = %d", p.Trained)
	}
}

func TestZeroPCIgnored(t *testing.T) {
	p := New()
	p.RecordViolation(0)
	if p.Tracked() != 0 {
		t.Error("zero PC trained the predictor")
	}
}

func TestTracked(t *testing.T) {
	p := New()
	p.RecordViolation(1)
	p.RecordViolation(2)
	p.RecordViolation(2)
	if p.Tracked() != 2 {
		t.Errorf("Tracked = %d", p.Tracked())
	}
}
