package tls

import "subthreads/internal/mem"

// Escaped-speculation latches (§2, §4.3 of the companion tech report): the
// parallelized DBMS acquires a few latches non-speculatively even while the
// surrounding epoch is speculative. A speculative epoch that finds such a
// latch held by another live epoch must stall — the paper's "Latch Stall"
// category. Latch acquisition is an isolated undoable action: when the
// acquiring sub-thread is squashed, the acquisition is undone.

type latchState struct {
	holder    *Epoch
	holderCtx int
	depth     int // re-entrant acquires by the same epoch
}

type heldLatch struct {
	addr mem.Addr
	ctx  int
}

// AcquireLatch tries to take the latch at addr for epoch e. It reports false
// when the latch is held by a different live epoch, in which case the caller
// must stall and retry. Re-entrant acquisition by the holder succeeds.
func (g *Engine) AcquireLatch(e *Epoch, addr mem.Addr) bool {
	if g.cfg.SpeculationOff {
		// The NO SPECULATION upper bound ignores all dependences,
		// including latch ordering.
		return true
	}
	ls := g.latches[addr]
	if ls == nil {
		ls = &latchState{}
		g.latches[addr] = ls
	}
	switch {
	case ls.holder == nil:
		ls.holder = e
		ls.holderCtx = e.CurCtx
		ls.depth = 1
		e.latches = append(e.latches, heldLatch{addr: addr, ctx: e.CurCtx})
		return true
	case ls.holder == e:
		ls.depth++
		return true
	default:
		return false
	}
}

// ReleaseLatch releases one acquisition of the latch at addr by epoch e.
// Releasing a latch the epoch does not hold is a no-op: after a squash the
// re-executed trace may contain releases whose acquires were undone.
func (g *Engine) ReleaseLatch(e *Epoch, addr mem.Addr) {
	ls := g.latches[addr]
	if ls == nil || ls.holder != e {
		return
	}
	ls.depth--
	if ls.depth > 0 {
		return
	}
	ls.holder = nil
	for i := len(e.latches) - 1; i >= 0; i-- {
		if e.latches[i].addr == addr {
			e.latches = append(e.latches[:i], e.latches[i+1:]...)
			break
		}
	}
}

// LatchHolder reports which epoch holds the latch at addr (nil when free).
func (g *Engine) LatchHolder(addr mem.Addr) *Epoch {
	if ls := g.latches[addr]; ls != nil {
		return ls.holder
	}
	return nil
}

// releaseLatchesFrom force-releases every latch epoch e acquired in context
// ctx or later (squash path), or all of them when ctx == 0 (commit path uses
// 0 as well, where any remainder indicates an unbalanced workload trace).
func (g *Engine) releaseLatchesFrom(e *Epoch, ctx int) {
	w := 0
	for _, hl := range e.latches {
		if hl.ctx >= ctx {
			if ls := g.latches[hl.addr]; ls != nil && ls.holder == e {
				ls.holder = nil
				ls.depth = 0
			}
			continue
		}
		e.latches[w] = hl
		w++
	}
	e.latches = e.latches[:w]
}
