// Package tls implements the paper's hardware support for thread-level
// speculation with large speculative threads and sub-threads (§2):
//
//   - Speculative state is buffered in the shared L2: speculatively-loaded
//     state is tracked per cache line (SL bits, one per sub-thread context),
//     speculatively-modified state per word (SM masks per context).
//   - The L1s are write-through, so stores propagate aggressively to the L2
//     where logically-later epochs can consume them without violations.
//   - Multiple versions of a line occupy the ways of an L2 set; speculative
//     lines evicted by conflicts land in the speculative victim cache.
//   - Sub-threads (§2.2): each epoch owns several hardware thread contexts;
//     starting a sub-thread checkpoints the epoch (zero-cycle register
//     backup) and shifts speculative-state accrual to the next context. A
//     violation rewinds only to the sub-thread that performed the exposed
//     load, and the sub-thread start table makes secondary violations
//     restart logically-later epochs selectively (Figure 4b).
//
// The engine is purely architectural bookkeeping: it decides what is exposed,
// who gets violated, and which contexts rewind. The simulator (internal/sim)
// owns cursors, checkpoints, and the clock.
package tls

import (
	"fmt"

	"subthreads/internal/cache"
	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

// MaxSubthreads is the hardware cap on sub-thread contexts per epoch.
// The paper evaluates up to 8; we leave headroom for ablations.
const MaxSubthreads = 16

// Config parameterizes the TLS hardware.
type Config struct {
	// CPUs is the number of cores sharing the L2 (one epoch per core).
	CPUs int
	// SubthreadsPerEpoch is the number of hardware contexts per epoch.
	// 1 models the conventional all-or-nothing TLS architecture.
	SubthreadsPerEpoch int
	// StartTable enables the sub-thread start table, which lets secondary
	// violations restart only dependent sub-threads (Figure 4b). With it
	// disabled, a secondary violation restarts the whole later epoch
	// (Figure 4a).
	StartTable bool
	// SpeculationOff disables all dependence tracking: the NO SPECULATION
	// upper bound of Figure 5, which incorrectly treats every access as
	// non-speculative.
	SpeculationOff bool
	// OverflowPolicy selects what happens when speculative state cannot
	// be buffered (an L2 set full of speculative versions and a full
	// victim cache).
	OverflowPolicy OverflowPolicy
	// L2 geometry and the speculative victim cache capacity (Table 1).
	L2Sets, L2Ways int
	VictimEntries  int
	// Paranoid re-validates the protocol invariants (commit order, SL/SM
	// context bounds, cache version occupancy, latch ownership) at every
	// protocol event. The first failure is latched in AuditErr; the
	// simulator surfaces it as a structured run error.
	Paranoid bool
}

// OverflowPolicy selects the response to speculative-buffer exhaustion.
type OverflowPolicy uint8

const (
	// OverflowStall refuses to buffer the new speculative state and
	// stalls the requesting epoch until an earlier epoch commits (the
	// paper's design: "stalling threads due to cache overflows", §2.1).
	OverflowStall OverflowPolicy = iota
	// OverflowSquash squashes the sub-thread owning the speculative
	// version that would be lost — a simpler but more expensive response.
	OverflowSquash
)

func (p OverflowPolicy) String() string {
	switch p {
	case OverflowStall:
		return "stall"
	case OverflowSquash:
		return "squash"
	default:
		return fmt.Sprintf("policy(%d)", uint8(p))
	}
}

// DefaultConfig returns the paper's BASELINE hardware: 4 CPUs, 8 sub-threads
// per epoch with the start table, 2MB 4-way L2, 64-entry victim cache.
func DefaultConfig() Config {
	return Config{
		CPUs:               4,
		SubthreadsPerEpoch: 8,
		StartTable:         true,
		OverflowPolicy:     OverflowStall,
		L2Sets:             16384,
		L2Ways:             4,
		VictimEntries:      64,
	}
}

func (c Config) validate() error {
	if c.CPUs < 1 {
		return fmt.Errorf("tls: CPUs = %d", c.CPUs)
	}
	if c.SubthreadsPerEpoch < 1 || c.SubthreadsPerEpoch > MaxSubthreads {
		return fmt.Errorf("tls: SubthreadsPerEpoch = %d (1..%d)", c.SubthreadsPerEpoch, MaxSubthreads)
	}
	return nil
}

// Reason says why a sub-thread (and everything after it) was squashed.
type Reason uint8

const (
	// Primary: the epoch's own exposed load was violated by an earlier
	// epoch's store.
	Primary Reason = iota
	// Secondary: a logically-earlier epoch was violated, so values this
	// epoch may have consumed are being rewound.
	Secondary
	// Overflow: speculative state could not be buffered (L2 set conflict
	// cascaded through a full victim cache), so the owning sub-thread is
	// squashed. The paper stalls instead; squashing is the conservative
	// equivalent and is shown by the victim-cache experiment to vanish at
	// the paper's 64-entry size.
	Overflow
)

func (r Reason) String() string {
	switch r {
	case Primary:
		return "primary"
	case Secondary:
		return "secondary"
	case Overflow:
		return "overflow"
	default:
		return fmt.Sprintf("reason(%d)", uint8(r))
	}
}

// Squash tells the simulator to rewind an epoch to the checkpoint of a
// sub-thread context. The engine has already cleaned up the architectural
// state when a Squash is returned.
type Squash struct {
	Epoch  *Epoch
	Ctx    int
	Reason Reason
	// For Primary squashes: the offending store and the violated address.
	StorePC    isa.PC
	StoreEpoch uint64
	Addr       mem.Addr
}

// Stats counts protocol events.
type Stats struct {
	PrimaryViolations   uint64
	SecondaryViolations uint64
	OverflowSquashes    uint64
	OverflowStalls      uint64
	ExposedLoads        uint64
	SpecStores          uint64
	SubthreadStarts     uint64
	Commits             uint64
}

// lineMeta is the L2 directory state for one cache line: which epochs have
// exposed speculative loads of the line (ctx bitmask) and which words each
// context speculatively modified.
type lineMeta struct {
	load  map[uint64]uint32
	store map[uint64]*[MaxSubthreads]uint8
}

func (lm *lineMeta) empty() bool { return len(lm.load) == 0 && len(lm.store) == 0 }

// Engine is the TLS protocol state machine plus the L2/victim tag stores it
// manages occupancy in.
type Engine struct {
	cfg    Config
	L2     *cache.Cache
	Victim *cache.Victim

	lines  lineTab
	order  []*Epoch // live epochs, oldest first
	nextID uint64

	latches map[mem.Addr]*latchState

	// Free lists: directory entries and SM/start-table arrays churn once
	// per line per epoch, so they are recycled instead of reallocated (the
	// hardware analogue is that these are fixed tables, not heap objects).
	metaPool []*lineMeta
	smPool   []*[MaxSubthreads]uint8

	// auditErr latches the first paranoid-mode invariant failure.
	auditErr error

	Stats
}

// NewEngine builds the TLS hardware described by cfg.
func NewEngine(cfg Config) *Engine {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Engine{
		cfg:     cfg,
		L2:      cache.New(cache.Config{Name: "L2", Sets: cfg.L2Sets, Ways: cfg.L2Ways}),
		Victim:  cache.NewVictim(cfg.VictimEntries),
		latches: make(map[mem.Addr]*latchState),
	}
}

// getSM pops a zeroed sub-thread byte array from the free list.
func (g *Engine) getSM() *[MaxSubthreads]uint8 {
	if n := len(g.smPool); n > 0 {
		sm := g.smPool[n-1]
		g.smPool = g.smPool[:n-1]
		return sm
	}
	return new([MaxSubthreads]uint8)
}

// putSM recycles a sub-thread byte array, zeroing it for the next user.
func (g *Engine) putSM(sm *[MaxSubthreads]uint8) {
	*sm = [MaxSubthreads]uint8{}
	g.smPool = append(g.smPool, sm)
}

// Config returns the engine's configuration.
func (g *Engine) Config() Config { return g.cfg }

// Live reports how many epochs are in flight.
func (g *Engine) Live() int { return len(g.order) }

// Oldest returns the logically-oldest live epoch (the one holding the
// homefree token), or nil.
func (g *Engine) Oldest() *Epoch {
	if len(g.order) == 0 {
		return nil
	}
	return g.order[0]
}

func (g *Engine) meta(line mem.Addr) *lineMeta {
	lm := g.lines.get(line)
	if lm == nil {
		if n := len(g.metaPool); n > 0 {
			lm = g.metaPool[n-1]
			g.metaPool = g.metaPool[:n-1]
		} else {
			lm = &lineMeta{
				load:  make(map[uint64]uint32),
				store: make(map[uint64]*[MaxSubthreads]uint8),
			}
		}
		g.lines.set(line, lm)
	}
	return lm
}

func (g *Engine) dropMetaIfEmpty(line mem.Addr, lm *lineMeta) {
	if lm.empty() {
		g.lines.set(line, nil)
		g.metaPool = append(g.metaPool, lm)
	}
}

// speculative reports whether e's accesses must be tracked: the oldest epoch
// can never be violated, so its state commits directly.
func (g *Engine) speculative(e *Epoch) bool {
	return !g.cfg.SpeculationOff && len(g.order) > 0 && g.order[0] != e
}

// Speculative is the exported form of the oldest-epoch test, used by the
// simulator to decide when to keep spawning sub-threads.
func (g *Engine) Speculative(e *Epoch) bool { return g.speculative(e) }

// classOf ranks cache entries for eviction: committed copies can always be
// written back (class 0); speculative versions must be preserved (class 1).
func classOf(e cache.Entry) int {
	if e.Ver == cache.VerCommitted {
		return 0
	}
	return 1
}

// insertL2 adds an entry to the L2 tag store, spilling evicted speculative
// versions into the victim cache. With OverflowStall, an insert that would
// force speculative state out of a full victim cache is refused and the
// caller must stall the requesting epoch (stall=true, nothing inserted);
// with OverflowSquash, the owner of the lost version is squashed instead.
// Versions owned by the oldest live epoch are committed-class and are never
// stalled over.
func (g *Engine) insertL2(e cache.Entry) (sqs []Squash, stall bool) {
	if e.Ver != cache.VerCommitted && !g.L2.Present(e) {
		// A speculative version re-entering the L2 migrates out of the
		// victim cache: the same (line, version) must never be resident
		// twice, or a later rewind/commit would leave a stale copy
		// behind in whichever structure it touched second.
		g.Victim.Remove(e)
	}
	if g.cfg.OverflowPolicy == OverflowStall && !g.L2.Present(e) && g.Victim.Full() {
		if g.L2.VictimClass(e.Line, classOf) == 1 {
			// The set is full of speculative versions and the
			// victim cache cannot absorb another: check whether
			// the displaced version would belong to a live,
			// non-oldest epoch (whose state must not be lost).
			// The precise victim is only known after insertion;
			// being conservative here (any speculative victim
			// stalls) matches hardware that checks way state.
			g.OverflowStalls++
			return nil, true
		}
	}
	victim, evicted := g.L2.Insert(e, classOf)
	if !evicted || victim.Ver == cache.VerCommitted {
		return nil, false
	}
	over, overflowed := g.Victim.Insert(victim)
	if !overflowed {
		return nil, false
	}
	return g.squashOverflow(over), false
}

// squashOverflow handles a speculative version falling out of the victim
// cache: the owning sub-thread can no longer be buffered, so it rewinds.
// Versions owned by the oldest epoch are safe to write back (that epoch can
// never be violated), so they are simply dropped.
func (g *Engine) squashOverflow(over cache.Entry) []Squash {
	owner, ctx := g.ownerOf(over.Ver)
	if owner == nil || owner == g.Oldest() {
		return nil
	}
	g.OverflowSquashes++
	set := newSquashSet()
	set.add(owner, ctx, Squash{Epoch: owner, Ctx: ctx, Reason: Overflow})
	g.addSecondaries(set, owner, ctx)
	return g.applySquashes(set)
}

// ownerOf maps a cache version tag back to the live epoch and context that
// owns it.
func (g *Engine) ownerOf(v cache.Ver) (*Epoch, int) {
	if v == cache.VerCommitted {
		return nil, 0
	}
	slot := int(v) / MaxSubthreads
	ctx := int(v) % MaxSubthreads
	for _, e := range g.order {
		if e.Slot == slot {
			return e, ctx
		}
	}
	return nil, 0
}

func verOf(e *Epoch, ctx int) cache.Ver {
	return cache.Ver(e.Slot*MaxSubthreads + ctx)
}

// AccessResult reports the architectural outcome of a load or store.
type AccessResult struct {
	// L2Hit is true when the line (any version) was resident in the L2 or
	// the victim cache; false means a memory fetch.
	L2Hit bool
	// Exposed is set for loads that were exposed (not covered by an
	// earlier store of the same epoch) and therefore recorded an SL bit.
	Exposed bool
	// Squashes lists every rewind this access caused, already applied to
	// the architectural state. For stores these are dependence violations;
	// for either kind they may be buffer-overflow squashes.
	Squashes []Squash
	// Stall is set (under OverflowStall) when the access's speculative
	// state could not be buffered: the epoch must stall until an earlier
	// epoch commits, then resume.
	Stall bool
}

// Load performs the architectural part of a data load by epoch e.
func (g *Engine) Load(e *Epoch, addr mem.Addr) AccessResult {
	line := addr.Line()
	var res AccessResult
	res.L2Hit = g.L2.LookupLine(line) || g.Victim.LookupLine(line)
	if !res.L2Hit {
		// Fetch from memory: the committed copy becomes resident.
		// A committed copy is evictable, so this insert never stalls.
		res.Squashes, _ = g.insertL2(cache.Entry{Line: line, Ver: cache.VerCommitted})
	}
	if !g.speculative(e) {
		return res
	}
	lm := g.meta(line)
	// Exposedness: a load is exposed unless an earlier store of the same
	// epoch (any live context) already produced this word (§2.2, §3.1).
	mask := mem.WordMask(addr)
	if sm := lm.store[e.ID]; sm != nil {
		for c := 0; c <= e.CurCtx; c++ {
			if sm[c]&mask != 0 {
				return res
			}
		}
	}
	res.Exposed = true
	g.ExposedLoads++
	bit := uint32(1) << uint(e.CurCtx)
	if lm.load[e.ID]&bit == 0 {
		lm.load[e.ID] |= bit
		e.addLine(e.CurCtx, line)
	}
	if g.cfg.Paranoid && len(res.Squashes) > 0 {
		g.audit("load")
	}
	return res
}

// Store performs the architectural part of a data store by epoch e: it
// propagates through the write-through L1 to the L2, records speculative
// modification state, and detects violations of logically-later epochs.
func (g *Engine) Store(e *Epoch, pc isa.PC, addr mem.Addr) AccessResult {
	line := addr.Line()
	var res AccessResult
	res.L2Hit = g.L2.LookupLine(line) || g.Victim.LookupLine(line)

	var set *squashSet
	if !g.cfg.SpeculationOff {
		// Dependence check: any logically-later epoch with an exposed
		// speculative load of this line is violated (loaded state is
		// tracked at line granularity, §2.1). The violated sub-thread
		// is the earliest context holding an SL bit.
		if lm := g.lines.get(line); lm != nil {
			after := false
			for _, ep := range g.order {
				if ep == e {
					after = true
					continue
				}
				if !after {
					continue
				}
				bits := lm.load[ep.ID]
				if bits == 0 {
					continue
				}
				ctx := lowestBit(bits)
				g.PrimaryViolations++
				if set == nil {
					set = newSquashSet()
				}
				set.add(ep, ctx, Squash{
					Epoch: ep, Ctx: ctx, Reason: Primary,
					StorePC: pc, StoreEpoch: e.ID, Addr: addr,
				})
				g.addSecondaries(set, ep, ctx)
			}
		}
	}

	if g.speculative(e) {
		g.SpecStores++
		lm := g.meta(line)
		sm := lm.store[e.ID]
		if sm == nil {
			sm = g.getSM()
			lm.store[e.ID] = sm
		}
		mask := mem.WordMask(addr)
		if sm[e.CurCtx]&mask == 0 {
			sm[e.CurCtx] |= mask
			e.addLine(e.CurCtx, line)
		}
		// Apply the dependence violations first, then buffer the new
		// version: an overflow squash computed after the violations see
		// a consistent context state.
		res.Squashes = g.applySquashes(set)
		sqs, stall := g.insertL2(cache.Entry{Line: line, Ver: verOf(e, e.CurCtx)})
		res.Squashes = append(res.Squashes, sqs...)
		res.Stall = stall
		if g.cfg.Paranoid && len(res.Squashes) > 0 {
			g.audit("store")
		}
		return res
	}

	// Non-speculative store: the committed copy is updated in place.
	if !res.L2Hit {
		res.Squashes = g.applySquashes(set)
		sqs, _ := g.insertL2(cache.Entry{Line: line, Ver: cache.VerCommitted})
		res.Squashes = append(res.Squashes, sqs...)
	} else {
		res.Squashes = g.applySquashes(set)
	}
	if g.cfg.Paranoid && len(res.Squashes) > 0 {
		g.audit("store")
	}
	return res
}

func lowestBit(bits uint32) int {
	for i := 0; i < 32; i++ {
		if bits&(1<<uint(i)) != 0 {
			return i
		}
	}
	return 0
}

// ForceSquash rewinds epoch e to context ctx for a protocol-external reason
// (latch-deadlock breaking in the simulator), applying secondary violations
// exactly as a dependence violation would.
func (g *Engine) ForceSquash(e *Epoch, ctx int, reason Reason) []Squash {
	set := newSquashSet()
	set.add(e, ctx, Squash{Epoch: e, Ctx: ctx, Reason: reason})
	g.addSecondaries(set, e, ctx)
	sqs := g.applySquashes(set)
	g.audit("force-squash")
	return sqs
}

// ProducerWrote reports whether any live epoch logically earlier than e has
// speculatively written the word at addr — i.e. whether a synchronized
// (predicted-dependent) load of that word can now proceed with a forwarded
// value. Used by the dependence-predictor ablation.
func (g *Engine) ProducerWrote(e *Epoch, addr mem.Addr) bool {
	lm := g.lines.get(addr.Line())
	if lm == nil {
		return false
	}
	mask := mem.WordMask(addr)
	for _, ep := range g.order {
		if ep == e {
			return false
		}
		if sm := lm.store[ep.ID]; sm != nil {
			for c := 0; c <= ep.CurCtx; c++ {
				if sm[c]&mask != 0 {
					return true
				}
			}
		}
	}
	return false
}
