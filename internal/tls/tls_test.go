package tls

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subthreads/internal/cache"
	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.L2Sets = 64
	cfg.L2Ways = 4
	cfg.VictimEntries = 8
	return cfg
}

func addr(line, word int) mem.Addr {
	return mem.Addr(line*mem.LineSize + word*mem.WordSize)
}

func TestConfigValidation(t *testing.T) {
	for _, cfg := range []Config{
		{CPUs: 0, SubthreadsPerEpoch: 4, L2Sets: 4, L2Ways: 1},
		{CPUs: 4, SubthreadsPerEpoch: 0, L2Sets: 4, L2Ways: 1},
		{CPUs: 4, SubthreadsPerEpoch: MaxSubthreads + 1, L2Sets: 4, L2Ways: 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewEngine(%+v) did not panic", cfg)
				}
			}()
			NewEngine(cfg)
		}()
	}
}

func TestEpochLifecycle(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	if g.Oldest() != e0 || g.Live() != 2 {
		t.Fatal("order wrong after starts")
	}
	if g.Speculative(e0) {
		t.Error("oldest epoch must be non-speculative")
	}
	if !g.Speculative(e1) {
		t.Error("later epoch must be speculative")
	}
	e0.Completed = true
	if got, _ := g.CommitOldest(); got != e0 {
		t.Fatal("committed wrong epoch")
	}
	if g.Oldest() != e1 || g.Speculative(e1) {
		t.Error("token did not pass to e1")
	}
	if g.Commits != 1 {
		t.Errorf("Commits = %d", g.Commits)
	}
}

func TestStartEpochValidation(t *testing.T) {
	g := NewEngine(smallConfig())
	g.StartEpoch(5, 0)
	for name, fn := range map[string]func(){
		"out-of-order id": func() { g.StartEpoch(3, 1) },
		"occupied slot":   func() { g.StartEpoch(6, 0) },
		"bad slot":        func() { g.StartEpoch(7, 99) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPrimaryViolationOnExposedLoad(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(3, 2)

	res := g.Load(e1, a)
	if !res.Exposed {
		t.Fatal("speculative load not exposed")
	}
	res = g.Store(e0, 42, a)
	if len(res.Squashes) != 1 {
		t.Fatalf("squashes = %v", res.Squashes)
	}
	sq := res.Squashes[0]
	if sq.Epoch != e1 || sq.Ctx != 0 || sq.Reason != Primary || sq.StorePC != 42 || sq.StoreEpoch != 0 {
		t.Errorf("squash = %+v", sq)
	}
	if g.PrimaryViolations != 1 {
		t.Errorf("PrimaryViolations = %d", g.PrimaryViolations)
	}
}

func TestForwardedValueAvoidsViolation(t *testing.T) {
	// Store by the earlier epoch happens first; the later epoch's load
	// reads the propagated version — no violation (§2.1).
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(3, 2)
	g.Store(e0, 1, a)
	g.Load(e1, a)
	res := g.Store(e0, 1, a) // second store to the same word
	if len(res.Squashes) != 0 {
		// The load was still exposed and SL was set, so a second
		// store DOES violate: the load already consumed a value that
		// is now stale. This is the correct TLS behaviour.
		if res.Squashes[0].Epoch != e1 {
			t.Errorf("unexpected squash target %+v", res.Squashes[0])
		}
		return
	}
	t.Error("second store to a consumed word must violate")
}

func TestOwnStoreCoversLoad(t *testing.T) {
	// A load preceded by the same epoch's store to the word is not
	// exposed and cannot be violated.
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(4, 1)
	g.Store(e1, 9, a)
	res := g.Load(e1, a)
	if res.Exposed {
		t.Fatal("covered load marked exposed")
	}
	res = g.Store(e0, 10, a)
	if len(res.Squashes) != 0 {
		t.Errorf("covered load violated: %v", res.Squashes)
	}
}

func TestOwnStoreDifferentWordDoesNotCover(t *testing.T) {
	// SM is tracked per word: a store to word 0 does not cover a load of
	// word 1, and loaded state is tracked per line, so the line becomes
	// violable.
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	g.Store(e1, 9, addr(4, 0))
	res := g.Load(e1, addr(4, 1))
	if !res.Exposed {
		t.Fatal("load of uncovered word must be exposed")
	}
	res = g.Store(e0, 10, addr(4, 5))
	if len(res.Squashes) != 1 {
		t.Error("line-granularity detection must violate on any word of a loaded line")
	}
}

func TestOldestEpochCannotBeViolated(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(5, 0)
	res := g.Load(e0, a)
	if res.Exposed {
		t.Fatal("oldest epoch's load must not be tracked")
	}
	res = g.Store(e1, 1, a)
	if len(res.Squashes) != 0 {
		t.Errorf("later store violated the oldest epoch: %v", res.Squashes)
	}
}

func TestLaterStoreDoesNotViolateEarlierLoad(t *testing.T) {
	g := NewEngine(smallConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	e2 := g.StartEpoch(2, 2)
	a := addr(6, 0)
	g.Load(e1, a) // speculative, exposed
	res := g.Store(e2, 1, a)
	if len(res.Squashes) != 0 {
		t.Errorf("logically-later store violated an earlier epoch: %v", res.Squashes)
	}
}

func TestSubthreadViolationRewindsPartially(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	early := addr(7, 0)
	late := addr(8, 0)
	g.Load(e1, early) // exposed in ctx 0
	if !g.StartSubthread(e1) {
		t.Fatal("StartSubthread failed")
	}
	if e1.CurCtx != 1 {
		t.Fatalf("CurCtx = %d", e1.CurCtx)
	}
	g.Load(e1, late) // exposed in ctx 1
	res := g.Store(e0, 1, late)
	if len(res.Squashes) != 1 || res.Squashes[0].Ctx != 1 {
		t.Fatalf("want rewind to ctx 1, got %v", res.Squashes)
	}
	if e1.CurCtx != 1 {
		t.Errorf("CurCtx after rewind = %d", e1.CurCtx)
	}
	// Ctx 0's SL on `early` must survive: a store to it still violates,
	// now at ctx 0.
	res = g.Store(e0, 2, early)
	if len(res.Squashes) != 1 || res.Squashes[0].Ctx != 0 {
		t.Fatalf("ctx 0 state lost: %v", res.Squashes)
	}
	// Ctx 1's SL on `late` was squashed: storing again must not
	// re-violate.
	res = g.Store(e0, 3, late)
	if len(res.Squashes) != 0 {
		t.Errorf("squashed SL state still triggers violations: %v", res.Squashes)
	}
}

func TestViolationPicksEarliestContext(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(9, 0)
	g.Load(e1, a) // ctx 0
	g.StartSubthread(e1)
	g.Load(e1, a) // ctx 1 — SL already set at line granularity per ctx
	res := g.Store(e0, 1, a)
	if len(res.Squashes) != 1 || res.Squashes[0].Ctx != 0 {
		t.Errorf("violation must rewind to the earliest loading context: %v", res.Squashes)
	}
}

func TestAllOrNothingConfig(t *testing.T) {
	cfg := smallConfig()
	cfg.SubthreadsPerEpoch = 1
	g := NewEngine(cfg)
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	if g.StartSubthread(e1) {
		t.Error("all-or-nothing hardware must refuse sub-threads")
	}
}

func TestSubthreadExhaustion(t *testing.T) {
	cfg := smallConfig()
	cfg.SubthreadsPerEpoch = 3
	g := NewEngine(cfg)
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	if !g.StartSubthread(e1) || !g.StartSubthread(e1) {
		t.Fatal("first two sub-threads must start")
	}
	if g.StartSubthread(e1) {
		t.Error("context overflow must refuse")
	}
	if e1.CurCtx != 2 {
		t.Errorf("CurCtx = %d", e1.CurCtx)
	}
	// After a rewind to ctx 1, one context is free again.
	g.rewind(e1, 1)
	if !g.StartSubthread(e1) {
		t.Error("context freed by rewind must be reusable")
	}
}

// TestSecondaryViolationSelective reproduces Figure 4: epochs 2, 3, 4 are
// live behind epoch 1. Epoch 3 and 4 start their second sub-threads *after*
// epoch 2 starts its second sub-thread, so when epoch 2 is violated in
// sub-thread b (ctx 1), epochs 3 and 4 restart from their recorded contexts
// (ctx 1 = sub-threads 3b and 4b), not from the beginning.
func TestSecondaryViolationSelective(t *testing.T) {
	g := NewEngine(smallConfig())
	e1 := g.StartEpoch(1, 0)
	e2 := g.StartEpoch(2, 1)
	e3 := g.StartEpoch(3, 2)
	e4 := g.StartEpoch(4, 3)

	// Sub-threads 3a/4a run first (ctx 0), then 2b starts, then 3b/4b.
	g.StartSubthread(e2) // 2b starts while e3, e4 are in ctx 0
	g.StartSubthread(e3) // 3b
	g.StartSubthread(e4) // 4b

	a := addr(10, 0)
	g.Load(e2, a) // exposed in 2b (ctx 1)
	res := g.Store(e1, 1, a)

	got := map[*Epoch]Squash{}
	for _, sq := range res.Squashes {
		got[sq.Epoch] = sq
	}
	if sq := got[e2]; sq.Ctx != 1 || sq.Reason != Primary {
		t.Errorf("e2 squash = %+v, want primary at ctx 1", sq)
	}
	// e3 and e4 were in ctx 0 when 2b started: with the start table they
	// restart from... their recorded context. They started their own ctx 1
	// *after* 2b began, so the recorded context for (e2, ctx1) is 0.
	if sq := got[e3]; sq.Reason != Secondary || sq.Ctx != 0 {
		t.Errorf("e3 squash = %+v", sq)
	}

	// Now re-run the scenario of Figure 4(b): 3a and 4a complete (i.e.
	// e3/e4 start ctx 1) BEFORE 2b starts. Then a violation of 2b must
	// restart only 3b/4b (ctx 1), preserving 3a/4a.
	g2 := NewEngine(smallConfig())
	f1 := g2.StartEpoch(1, 0)
	f2 := g2.StartEpoch(2, 1)
	f3 := g2.StartEpoch(3, 2)
	f4 := g2.StartEpoch(4, 3)
	g2.StartSubthread(f3) // 3b underway
	g2.StartSubthread(f4) // 4b underway
	g2.StartSubthread(f2) // 2b starts: f3, f4 record ctx 1

	g2.Load(f2, a)
	res = g2.Store(f1, 1, a)
	got = map[*Epoch]Squash{}
	for _, sq := range res.Squashes {
		got[sq.Epoch] = sq
	}
	if sq := got[f3]; sq.Reason != Secondary || sq.Ctx != 1 {
		t.Errorf("f3 squash = %+v, want secondary at ctx 1 (3a preserved)", sq)
	}
	if sq := got[f4]; sq.Reason != Secondary || sq.Ctx != 1 {
		t.Errorf("f4 squash = %+v, want secondary at ctx 1 (4a preserved)", sq)
	}
}

func TestSecondaryViolationWithoutStartTable(t *testing.T) {
	cfg := smallConfig()
	cfg.StartTable = false
	g := NewEngine(cfg)
	f1 := g.StartEpoch(1, 0)
	f2 := g.StartEpoch(2, 1)
	f3 := g.StartEpoch(3, 2)
	g.StartSubthread(f3) // f3 is in ctx 1
	g.StartSubthread(f2)

	a := addr(11, 0)
	g.Load(f2, a)
	res := g.Store(f1, 1, a)
	for _, sq := range res.Squashes {
		if sq.Epoch == f3 && sq.Ctx != 0 {
			t.Errorf("without start table f3 must fully restart, got ctx %d", sq.Ctx)
		}
	}
	if g.SecondaryViolations == 0 {
		t.Error("no secondary violations recorded")
	}
}

func TestPrimaryBeatsSecondary(t *testing.T) {
	// One store can violate several epochs; an epoch that is both a
	// primary target and a secondary target of an earlier primary must
	// rewind to the deepest (earliest) context.
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	e2 := g.StartEpoch(2, 2)
	a := addr(12, 0)
	g.Load(e1, a) // e1 ctx 0
	g.StartSubthread(e2)
	g.Load(e2, a) // e2 ctx 1: primary target at ctx 1, secondary at ctx 0
	res := g.Store(e0, 1, a)
	var e2sq *Squash
	for i := range res.Squashes {
		if res.Squashes[i].Epoch == e2 {
			e2sq = &res.Squashes[i]
		}
	}
	if e2sq == nil || e2sq.Ctx != 0 {
		t.Errorf("e2 must rewind to ctx 0 (secondary subsumes primary), got %+v", e2sq)
	}
}

func TestCommitClearsState(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(13, 0)
	g.Load(e1, a)
	g.Store(e1, 1, addr(13, 1))
	e0.Completed = true
	g.CommitOldest()
	e1.Completed = true
	g.CommitOldest()
	if g.lines.live() != 0 {
		t.Errorf("line metadata leaked after commits: %d entries", g.lines.live())
	}
	// The committed version must be resident as the committed copy.
	if !g.L2.Present(cache.Entry{Line: addr(13, 0).Line(), Ver: cache.VerCommitted}) {
		t.Error("committed copy missing after flash commit")
	}
	// A fresh epoch storing to that line must not see ghost violations.
	e2 := g.StartEpoch(2, 0)
	_ = e2
	res := g.Store(e2, 1, a)
	if len(res.Squashes) != 0 {
		t.Errorf("ghost violation after commit: %v", res.Squashes)
	}
}

func TestCommitIncompletePanics(t *testing.T) {
	g := NewEngine(smallConfig())
	g.StartEpoch(0, 0)
	defer func() {
		if recover() == nil {
			t.Error("committing incomplete epoch did not panic")
		}
	}()
	g.CommitOldest()
}

func TestViolationClearsCompleted(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(14, 0)
	g.Load(e1, a)
	e1.Completed = true
	g.Store(e0, 1, a)
	if e1.Completed {
		t.Error("violated epoch still marked Completed")
	}
	if e1.Violations != 1 {
		t.Errorf("Violations = %d", e1.Violations)
	}
}

func TestVersionsOccupyWays(t *testing.T) {
	g := NewEngine(smallConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(15, 0)
	g.Store(e1, 1, a) // version in ctx 0
	g.StartSubthread(e1)
	g.Store(e1, 1, a) // version in ctx 1
	line := a.Line()
	// committed copy absent (store-allocate inserts only versions when
	// speculative and line was absent — the two versions occupy 2 ways).
	n := 0
	for c := 0; c < MaxSubthreads; c++ {
		if g.L2.Present(cache.Entry{Line: line, Ver: verOf(e1, c)}) {
			n++
		}
	}
	if n != 2 {
		t.Errorf("resident versions = %d, want 2 (one per sub-thread, §2.1)", n)
	}
}

func TestVictimOverflowSquash(t *testing.T) {
	cfg := smallConfig()
	cfg.OverflowPolicy = OverflowSquash
	cfg.L2Sets = 1 // every line collides
	cfg.L2Ways = 2
	cfg.VictimEntries = 1
	g := NewEngine(cfg)
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	// Three speculative versions cannot fit in 2 ways + 1 victim entry
	// once a fourth line arrives.
	g.Store(e1, 1, addr(1, 0))
	g.Store(e1, 1, addr(2, 0))
	g.Store(e1, 1, addr(3, 0))
	res := g.Store(e1, 1, addr(4, 0))
	found := false
	for _, sq := range res.Squashes {
		if sq.Reason == Overflow && sq.Epoch == e1 {
			found = true
		}
	}
	if !found && g.OverflowSquashes == 0 {
		t.Errorf("no overflow squash despite tiny victim cache: %v", res.Squashes)
	}
}

func TestOverflowStallPolicy(t *testing.T) {
	cfg := smallConfig()
	cfg.OverflowPolicy = OverflowStall
	cfg.L2Sets = 1
	cfg.L2Ways = 2
	cfg.VictimEntries = 1
	g := NewEngine(cfg)
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	stalled := false
	for i := 1; i < 10 && !stalled; i++ {
		res := g.Store(e1, 1, addr(i, 0))
		if len(res.Squashes) != 0 {
			t.Fatalf("stall policy squashed: %v", res.Squashes)
		}
		stalled = res.Stall
	}
	if !stalled {
		t.Error("stall policy never requested a stall despite tiny buffers")
	}
	if g.OverflowStalls == 0 {
		t.Error("OverflowStalls not counted")
	}
}

func TestOldestEpochOverflowIsSafe(t *testing.T) {
	cfg := smallConfig()
	cfg.OverflowPolicy = OverflowSquash
	cfg.L2Sets = 1
	cfg.L2Ways = 2
	cfg.VictimEntries = 1
	g := NewEngine(cfg)
	e0 := g.StartEpoch(0, 0)
	// All state belongs to the oldest epoch: its lines are written back,
	// never squashed.
	for i := 1; i < 10; i++ {
		res := g.Store(e0, 1, addr(i, 0))
		if len(res.Squashes) != 0 {
			t.Fatalf("oldest epoch squashed on overflow: %v", res.Squashes)
		}
	}
	if g.OverflowSquashes != 0 {
		t.Errorf("OverflowSquashes = %d", g.OverflowSquashes)
	}
}

func TestSpeculationOffMode(t *testing.T) {
	cfg := smallConfig()
	cfg.SpeculationOff = true
	g := NewEngine(cfg)
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(16, 0)
	res := g.Load(e1, a)
	if res.Exposed {
		t.Error("NO SPECULATION mode tracked a load")
	}
	res = g.Store(e0, 1, a)
	if len(res.Squashes) != 0 {
		t.Errorf("NO SPECULATION mode violated: %v", res.Squashes)
	}
	if !g.AcquireLatch(e1, addr(17, 0)) {
		t.Error("NO SPECULATION latch must always grant")
	}
}

func TestL2HitMissTiming(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	a := addr(18, 0)
	res := g.Load(e0, a)
	if res.L2Hit {
		t.Error("first touch must miss")
	}
	res = g.Load(e0, a)
	if !res.L2Hit {
		t.Error("second touch must hit (committed copy resident)")
	}
}

func TestSpecVersionServesLaterLoad(t *testing.T) {
	// Aggressive update propagation: a later epoch's load of a line whose
	// only copy is an earlier epoch's speculative version is an L2 hit.
	g := NewEngine(smallConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	e2 := g.StartEpoch(2, 2)
	a := addr(19, 0)
	g.Store(e1, 1, a)
	res := g.Load(e2, a)
	if !res.L2Hit {
		t.Error("load of forwarded speculative version must hit in L2")
	}
}

func TestLatchBasics(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	l := addr(20, 0)
	if !g.AcquireLatch(e0, l) {
		t.Fatal("free latch refused")
	}
	if !g.AcquireLatch(e0, l) {
		t.Fatal("re-entrant acquire refused")
	}
	if g.AcquireLatch(e1, l) {
		t.Fatal("held latch granted to another epoch")
	}
	g.ReleaseLatch(e0, l)
	if g.AcquireLatch(e1, l) {
		t.Fatal("latch freed before matching releases")
	}
	g.ReleaseLatch(e0, l)
	if !g.AcquireLatch(e1, l) {
		t.Fatal("released latch refused")
	}
	if g.LatchHolder(l) != e1 {
		t.Error("LatchHolder wrong")
	}
}

func TestLatchReleasedOnSquash(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	l := addr(21, 0)
	a := addr(22, 0)
	g.StartSubthread(e1)
	g.AcquireLatch(e1, l) // acquired in ctx 1
	g.Load(e1, a)         // exposed in ctx 1
	g.Store(e0, 1, a)     // violates e1 at ctx 1
	if g.LatchHolder(l) != nil {
		t.Error("latch not released by squash of acquiring context")
	}
}

func TestLatchSurvivesLaterSquash(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	l := addr(23, 0)
	a := addr(24, 0)
	g.AcquireLatch(e1, l) // ctx 0
	g.StartSubthread(e1)
	g.Load(e1, a)     // exposed in ctx 1
	g.Store(e0, 1, a) // violates ctx 1 only
	if g.LatchHolder(l) != e1 {
		t.Error("latch acquired before the squashed context must survive")
	}
}

func TestReleaseUnheldLatchIsNoop(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	g.ReleaseLatch(e0, addr(25, 0)) // must not panic
}

func TestCommitReleasesLatches(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	l := addr(26, 0)
	g.AcquireLatch(e0, l)
	e0.Completed = true
	g.CommitOldest()
	if !g.AcquireLatch(e1, l) {
		t.Error("latch leaked across commit")
	}
}

func TestAbortAll(t *testing.T) {
	g := NewEngine(smallConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	g.Load(e1, addr(27, 0))
	g.Store(e1, 1, addr(28, 0))
	g.AcquireLatch(e0, addr(29, 0))
	g.AbortAll()
	if g.Live() != 0 || g.lines.live() != 0 {
		t.Error("AbortAll left state behind")
	}
}

func TestStringersAndAccessors(t *testing.T) {
	if Primary.String() != "primary" || Secondary.String() != "secondary" || Overflow.String() != "overflow" {
		t.Error("Reason strings wrong")
	}
	if OverflowStall.String() != "stall" || OverflowSquash.String() != "squash" {
		t.Error("OverflowPolicy strings wrong")
	}
	g := NewEngine(smallConfig())
	if g.Config().SubthreadsPerEpoch != smallConfig().SubthreadsPerEpoch {
		t.Error("Config accessor wrong")
	}
	if g.Oldest() != nil {
		t.Error("Oldest of empty engine not nil")
	}
}

func TestForceSquash(t *testing.T) {
	g := NewEngine(smallConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	e2 := g.StartEpoch(2, 2)
	g.StartSubthread(e1)
	g.Load(e1, addr(30, 0))
	sqs := g.ForceSquash(e1, 0, Secondary)
	found1, found2 := false, false
	for _, sq := range sqs {
		if sq.Epoch == e1 && sq.Ctx == 0 {
			found1 = true
		}
		if sq.Epoch == e2 {
			found2 = true
		}
	}
	if !found1 || !found2 {
		t.Errorf("ForceSquash targets wrong: %v", sqs)
	}
	if e1.CurCtx != 0 {
		t.Errorf("CurCtx = %d after force squash", e1.CurCtx)
	}
}

func TestProducerWrote(t *testing.T) {
	g := NewEngine(smallConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	e2 := g.StartEpoch(2, 2)
	a := addr(31, 2)
	if g.ProducerWrote(e2, a) {
		t.Error("phantom producer")
	}
	g.Store(e1, 1, a)
	if !g.ProducerWrote(e2, a) {
		t.Error("producer store not visible")
	}
	if g.ProducerWrote(e1, a) {
		t.Error("own store counted as producer")
	}
	// A different word of the same line is not a producer match.
	if g.ProducerWrote(e2, addr(31, 5)) {
		t.Error("word granularity violated")
	}
}

func TestLowestBit(t *testing.T) {
	if lowestBit(0b1000) != 3 || lowestBit(1) != 0 || lowestBit(0) != 0 {
		t.Error("lowestBit wrong")
	}
}

func TestCommitCascadePromotesVictimVersions(t *testing.T) {
	// Force a version into the victim cache, then commit its owner: the
	// version must come back as a committed L2 entry.
	cfg := smallConfig()
	cfg.OverflowPolicy = OverflowSquash
	cfg.L2Sets = 1
	cfg.L2Ways = 2
	cfg.VictimEntries = 4
	g := NewEngine(cfg)
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	g.Store(e1, 1, addr(1, 0))
	// Fill the set so e1's version gets evicted into the victim cache.
	g.Load(e0, addr(2, 0))
	g.Load(e0, addr(3, 0))
	g.Load(e0, addr(4, 0))
	e0.Completed = true
	g.CommitOldest()
	e1.Completed = true
	g.CommitOldest()
	if !g.L2.PresentLine(addr(1, 0).Line()) && !g.Victim.PresentLine(addr(1, 0).Line()) {
		t.Error("committed version lost entirely")
	}
}

// TestEngineInvariantsUnderRandomOps drives the protocol with random
// interleavings of loads, stores, sub-thread starts, completions, and
// commits, checking the architectural invariants the simulator relies on:
// squash contexts never exceed the victim's live context, the oldest epoch
// is never squashed, and committing everything leaves no directory state
// behind.
func TestEngineInvariantsUnderRandomOps(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		cfg := smallConfig()
		cfg.SubthreadsPerEpoch = 4
		g := NewEngine(cfg)

		var live []*Epoch
		nextID := uint64(0)
		freeSlots := []int{0, 1, 2, 3}
		start := func() {
			if len(freeSlots) == 0 {
				return
			}
			slot := freeSlots[0]
			freeSlots = freeSlots[1:]
			live = append(live, g.StartEpoch(nextID, slot))
			nextID++
		}
		start()
		start()

		for i := 0; i < 400; i++ {
			if len(live) == 0 {
				start()
				continue
			}
			e := live[rng.Intn(len(live))]
			a := addr(rng.Intn(40), rng.Intn(8))
			switch rng.Intn(6) {
			case 0:
				g.Load(e, a)
			case 1:
				res := g.Store(e, isa.PC(rng.Intn(20)+1), a)
				for _, sq := range res.Squashes {
					if sq.Epoch == g.Oldest() {
						t.Fatalf("oldest epoch squashed")
					}
					if sq.Ctx > sq.Epoch.CurCtx {
						t.Fatalf("squash ctx %d > CurCtx %d", sq.Ctx, sq.Epoch.CurCtx)
					}
				}
			case 2:
				g.StartSubthread(e)
			case 3:
				start()
			case 4:
				e.Completed = true
				if g.Oldest() == e {
					g.CommitOldest()
					for j, l := range live {
						if l == e {
							live = append(live[:j], live[j+1:]...)
							break
						}
					}
					freeSlots = append(freeSlots, e.Slot)
				} else {
					e.Completed = false
				}
			case 5:
				g.AcquireLatch(e, addr(50+rng.Intn(4), 0))
			}
		}
		// Drain: complete and commit everything in order.
		for g.Live() > 0 {
			e := g.Oldest()
			e.Completed = true
			g.CommitOldest()
		}
		return g.lines.live() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
