package tls

import (
	"sort"

	"subthreads/internal/cache"
	"subthreads/internal/mem"
	"subthreads/internal/snapbin"
)

// Snapshot codec for the TLS engine: the live epoch list (with start tables,
// per-context line lists, and held latches), the L2 directory, the latch
// table, the L2/victim tag stores, and the protocol statistics. Everything
// map-shaped serializes in sorted key order so the encoding is deterministic.
//
// Epoch pointers (latch holders; the simulator's per-core epoch and
// homefree-token references) serialize as indexes into the commit order,
// which restore reconstructs in the same order. The free-list pools
// (metaPool, smPool) are deliberately not serialized: recycled objects are
// zeroed on reuse, so an empty pool is behaviorally identical.

const maxSnapLines = 1 << 24

// AppendState serializes the engine's complete architectural state.
func (g *Engine) AppendState(w *snapbin.Writer) {
	w.Uvarint(g.PrimaryViolations)
	w.Uvarint(g.SecondaryViolations)
	w.Uvarint(g.OverflowSquashes)
	w.Uvarint(g.OverflowStalls)
	w.Uvarint(g.ExposedLoads)
	w.Uvarint(g.SpecStores)
	w.Uvarint(g.SubthreadStarts)
	w.Uvarint(g.Commits)
	w.Uvarint(g.nextID)

	// Live epochs, oldest first.
	w.Uvarint(uint64(len(g.order)))
	for _, e := range g.order {
		w.Uvarint(e.ID)
		w.Int(e.Slot)
		w.Int(e.CurCtx)
		w.Bool(e.Completed)
		w.Uvarint(e.Violations)
		appendSMMap(w, e.startTable)
		for ctx := 0; ctx < MaxSubthreads; ctx++ {
			lines := e.ctxLines[ctx]
			w.Uvarint(uint64(len(lines)))
			for _, line := range lines {
				w.Uvarint(uint64(line))
			}
		}
		w.Uvarint(uint64(len(e.latches)))
		for _, hl := range e.latches {
			w.Uvarint(uint64(hl.addr))
			w.Int(hl.ctx)
		}
	}

	// Latch table: only held latches carry state (a free latchState is
	// behaviorally identical to an absent entry).
	type heldEntry struct {
		addr mem.Addr
		ls   *latchState
	}
	var held []heldEntry
	for addr, ls := range g.latches {
		if ls.holder != nil {
			held = append(held, heldEntry{addr, ls})
		}
	}
	sort.Slice(held, func(i, j int) bool { return held[i].addr < held[j].addr })
	w.Uvarint(uint64(len(held)))
	for _, h := range held {
		w.Uvarint(uint64(h.addr))
		w.Int(g.orderIndex(h.ls.holder))
		w.Int(h.ls.holderCtx)
		w.Int(h.ls.depth)
	}

	// L2 directory, ascending line order (forEach contract).
	lineCount := uint64(0)
	g.lines.forEach(func(mem.Addr, *lineMeta) { lineCount++ })
	w.Uvarint(lineCount)
	g.lines.forEach(func(line mem.Addr, lm *lineMeta) {
		w.Uvarint(uint64(line))
		appendLoadMap(w, lm.load)
		appendSMMap(w, lm.store)
	})

	g.L2.AppendState(w)
	g.Victim.AppendState(w)
}

// RestoreState rebuilds the engine's architectural state from r into a
// freshly-constructed engine. The configuration is NOT restored: it belongs
// to the restore target, which is what lets a forkable snapshot restore under
// a different sub-thread configuration.
func (g *Engine) RestoreState(r *snapbin.Reader) {
	g.PrimaryViolations = r.Uvarint("tls primary violations")
	g.SecondaryViolations = r.Uvarint("tls secondary violations")
	g.OverflowSquashes = r.Uvarint("tls overflow squashes")
	g.OverflowStalls = r.Uvarint("tls overflow stalls")
	g.ExposedLoads = r.Uvarint("tls exposed loads")
	g.SpecStores = r.Uvarint("tls spec stores")
	g.SubthreadStarts = r.Uvarint("tls subthread starts")
	g.Commits = r.Uvarint("tls commits")
	g.nextID = r.Uvarint("tls next id")

	// Epochs are reconstructed directly rather than through StartEpoch:
	// the restored IDs predate nextID, which StartEpoch correctly rejects
	// for live registration.
	nEpochs := r.Count("tls epochs", g.cfg.CPUs)
	g.order = g.order[:0]
	for i := 0; i < nEpochs && r.Err() == nil; i++ {
		e := &Epoch{
			ID:         r.Uvarint("epoch id"),
			Slot:       r.Int("epoch slot"),
			CurCtx:     r.Int("epoch ctx"),
			Completed:  r.Bool("epoch completed"),
			Violations: r.Uvarint("epoch violations"),
			startTable: make(map[uint64]*[MaxSubthreads]uint8),
		}
		if r.Err() == nil && (e.Slot < 0 || e.Slot >= g.cfg.CPUs || e.CurCtx < 0 || e.CurCtx >= MaxSubthreads) {
			r.Failf("epoch %d: slot %d / ctx %d out of range", e.ID, e.Slot, e.CurCtx)
			return
		}
		restoreSMMap(r, e.startTable, "start table")
		for ctx := 0; ctx < MaxSubthreads; ctx++ {
			n := r.Count("epoch ctx lines", maxSnapLines)
			for j := 0; j < n && r.Err() == nil; j++ {
				e.ctxLines[ctx] = append(e.ctxLines[ctx], mem.Addr(r.Uvarint("epoch line")))
			}
		}
		nLatch := r.Count("epoch latches", maxSnapLines)
		for j := 0; j < nLatch && r.Err() == nil; j++ {
			e.latches = append(e.latches, heldLatch{
				addr: mem.Addr(r.Uvarint("held latch addr")),
				ctx:  r.Int("held latch ctx"),
			})
		}
		g.order = append(g.order, e)
	}

	nHeld := r.Count("tls latches", maxSnapLines)
	for i := 0; i < nHeld && r.Err() == nil; i++ {
		addr := mem.Addr(r.Uvarint("latch addr"))
		holder := r.Int("latch holder")
		ls := &latchState{
			holderCtx: r.Int("latch holder ctx"),
			depth:     r.Int("latch depth"),
		}
		if r.Err() != nil {
			return
		}
		if holder < 0 || holder >= len(g.order) {
			r.Failf("latch %v: holder index %d out of range", addr, holder)
			return
		}
		ls.holder = g.order[holder]
		g.latches[addr] = ls
	}

	nLines := r.Count("tls lines", maxSnapLines)
	for i := 0; i < nLines && r.Err() == nil; i++ {
		line := mem.Addr(r.Uvarint("tls line"))
		lm := &lineMeta{
			load:  make(map[uint64]uint32),
			store: make(map[uint64]*[MaxSubthreads]uint8),
		}
		restoreLoadMap(r, lm.load)
		restoreSMMap(r, lm.store, "store masks")
		if r.Err() == nil {
			g.lines.set(line, lm)
		}
	}

	g.L2.RestoreState(r)
	g.Victim.RestoreState(r)
}

// appendSMMap serializes a map of per-context byte arrays in ascending key
// order (start tables and SM masks share the shape).
func appendSMMap(w *snapbin.Writer, m map[uint64]*[MaxSubthreads]uint8) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Uvarint(k)
		w.Raw(m[k][:])
	}
}

func restoreSMMap(r *snapbin.Reader, m map[uint64]*[MaxSubthreads]uint8, field string) {
	n := r.Count(field, maxSnapLines)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Uvarint(field + " key")
		raw := r.Raw(MaxSubthreads, field+" bytes")
		if r.Err() == nil {
			arr := new([MaxSubthreads]uint8)
			copy(arr[:], raw)
			m[k] = arr
		}
	}
}

// appendLoadMap serializes SL bitmasks in ascending epoch-ID order.
func appendLoadMap(w *snapbin.Writer, m map[uint64]uint32) {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	w.Uvarint(uint64(len(keys)))
	for _, k := range keys {
		w.Uvarint(k)
		w.Uvarint(uint64(m[k]))
	}
}

func restoreLoadMap(r *snapbin.Reader, m map[uint64]uint32) {
	n := r.Count("load bits", maxSnapLines)
	for i := 0; i < n && r.Err() == nil; i++ {
		k := r.Uvarint("load bits key")
		v := uint32(r.Uvarint("load bits value"))
		if r.Err() == nil {
			m[k] = v
		}
	}
}

// orderIndex maps a live epoch to its commit-order index, or -1.
func (g *Engine) orderIndex(e *Epoch) int {
	for i, live := range g.order {
		if live == e {
			return i
		}
	}
	return -1
}

// OrderIndex maps a live epoch to its commit-order index (-1 for nil or a
// retired epoch) — the serialized form of an epoch pointer.
func (g *Engine) OrderIndex(e *Epoch) int {
	if e == nil {
		return -1
	}
	return g.orderIndex(e)
}

// EpochAt returns the live epoch at a commit-order index, or nil when the
// index is -1 or out of range.
func (g *Engine) EpochAt(i int) *Epoch {
	if i < 0 || i >= len(g.order) {
		return nil
	}
	return g.order[i]
}

// Forkable reports whether the engine carries no speculative or epoch-local
// state that a different sub-thread configuration could have produced
// differently: an empty L2 directory, an empty victim cache, only committed
// versions in the L2, every latch free, and every live epoch still in its
// first context with nothing held and nothing recorded. A snapshot taken in
// this state restores correctly under any configuration that agrees on the
// prefix-invariant machine parameters.
func (g *Engine) Forkable() bool {
	if g.auditErr != nil || g.lines.live() != 0 || g.Victim.Len() != 0 {
		return false
	}
	committedOnly := true
	g.L2.ForEach(func(e cache.Entry) {
		if e.Ver != cache.VerCommitted {
			committedOnly = false
		}
	})
	if !committedOnly {
		return false
	}
	for _, ls := range g.latches {
		if ls.holder != nil {
			return false
		}
	}
	for _, e := range g.order {
		if e.CurCtx != 0 || len(e.latches) != 0 || len(e.startTable) != 0 {
			return false
		}
	}
	return true
}
