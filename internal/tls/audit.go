package tls

import (
	"fmt"
	"sort"

	"subthreads/internal/cache"
	"subthreads/internal/mem"
)

// The paranoid-mode protocol auditor. With Config.Paranoid set, the engine
// re-derives its core invariants from scratch after every protocol event
// (epoch start, sub-thread start, squash application, commit):
//
//   - commit order: live epochs strictly ordered by ID, one per slot, every
//     slot in range, every CurCtx within the configured context count;
//   - context bounds: no SL bit, SM word mask, or ctxLines entry may refer
//     to a context later than its epoch's CurCtx (a freed context) or to an
//     epoch that is no longer live;
//   - version occupancy: every speculative version resident in the L2 or the
//     victim cache is owned by a live (epoch, context) with matching SM
//     state, and no version is resident in both structures at once. The
//     converse (SM bits without a resident version) is legal: under
//     OverflowStall a refused insert leaves the modification mask set while
//     the epoch stalls;
//   - latches: every held latch names a live holder that records the hold in
//     a still-live context.
//
// The first violation is latched; the simulator polls AuditErr each cycle
// and abandons the run with a structured error. The audit is a full state
// scan, so paranoid mode costs time proportional to live speculative state —
// it is a validation tool, not a fast path.

// AuditError describes the first protocol-invariant failure a paranoid run
// detected: the protocol event being processed when the state went bad, the
// invariant that broke, and the offending state.
type AuditError struct {
	Event     string
	Invariant string
	Detail    string
}

func (e *AuditError) Error() string {
	return fmt.Sprintf("tls: audit at %s: %s: %s", e.Event, e.Invariant, e.Detail)
}

// AuditErr returns the first invariant failure detected by paranoid mode,
// or nil.
func (g *Engine) AuditErr() error { return g.auditErr }

// audit runs the full invariant scan after a protocol event, latching the
// first failure. It is a no-op unless Config.Paranoid is set; once an error
// is latched the (now inconsistent) state is not re-scanned.
func (g *Engine) audit(event string) {
	if !g.cfg.Paranoid || g.auditErr != nil {
		return
	}
	g.auditErr = g.runAudit(event)
}

func (g *Engine) runAudit(event string) error {
	fail := func(invariant, format string, args ...any) error {
		return &AuditError{Event: event, Invariant: invariant, Detail: fmt.Sprintf(format, args...)}
	}

	// Commit-order and per-epoch context bounds.
	byID := make(map[uint64]*Epoch, len(g.order))
	slots := make(map[int]uint64, len(g.order))
	for i, e := range g.order {
		if i > 0 && e.ID <= g.order[i-1].ID {
			return fail("commit-order monotonicity",
				"epoch %d ordered after epoch %d", e.ID, g.order[i-1].ID)
		}
		if e.Slot < 0 || e.Slot >= g.cfg.CPUs {
			return fail("slot range", "epoch %d on slot %d (of %d)", e.ID, e.Slot, g.cfg.CPUs)
		}
		if prev, dup := slots[e.Slot]; dup {
			return fail("slot uniqueness",
				"epochs %d and %d both live on slot %d", prev, e.ID, e.Slot)
		}
		slots[e.Slot] = e.ID
		if e.CurCtx < 0 || e.CurCtx >= g.cfg.SubthreadsPerEpoch {
			return fail("context bounds",
				"epoch %d in context %d (of %d)", e.ID, e.CurCtx, g.cfg.SubthreadsPerEpoch)
		}
		for c := e.CurCtx + 1; c < MaxSubthreads; c++ {
			if len(e.ctxLines[c]) != 0 {
				return fail("freed-context cleanup",
					"epoch %d keeps %d tracked lines in freed context %d (CurCtx %d)",
					e.ID, len(e.ctxLines[c]), c, e.CurCtx)
			}
		}
		byID[e.ID] = e
	}

	// Directory: SL bits and SM masks must belong to live epochs and live
	// contexts. Map keys are visited in sorted order so the first failure
	// reported is deterministic.
	var derr error
	g.lines.forEach(func(line mem.Addr, lm *lineMeta) {
		if derr != nil {
			return
		}
		for _, id := range sortedKeysLoad(lm.load) {
			bits := lm.load[id]
			ep := byID[id]
			if ep == nil {
				derr = fail("SL liveness",
					"line %v holds SL bits %#x for dead epoch %d", line, bits, id)
				return
			}
			if bits == 0 {
				derr = fail("SL cleanup", "line %v keeps an empty SL entry for epoch %d", line, id)
				return
			}
			if high := bits >> uint(ep.CurCtx+1); high != 0 {
				derr = fail("SL context bounds",
					"line %v SL bits %#x of epoch %d span freed contexts (CurCtx %d)",
					line, bits, id, ep.CurCtx)
				return
			}
		}
		for _, id := range sortedKeysStore(lm.store) {
			sm := lm.store[id]
			ep := byID[id]
			if ep == nil {
				derr = fail("SM liveness", "line %v holds SM masks for dead epoch %d", line, id)
				return
			}
			any := uint8(0)
			for c, w := range sm {
				any |= w
				if w != 0 && c > ep.CurCtx {
					derr = fail("SM context bounds",
						"line %v SM mask %#x of epoch %d in freed context %d (CurCtx %d)",
						line, w, id, c, ep.CurCtx)
					return
				}
			}
			if any == 0 {
				derr = fail("SM cleanup", "line %v keeps an all-zero SM entry for epoch %d", line, id)
				return
			}
		}
	})
	if derr != nil {
		return derr
	}

	// Version occupancy: each resident speculative version must be owned by
	// a live (epoch, context) that recorded matching SM state, and must live
	// in exactly one of L2 and victim cache.
	checkVer := func(where string, ent cache.Entry) error {
		if ent.Ver == cache.VerCommitted {
			return nil
		}
		owner, ctx := g.ownerOf(ent.Ver)
		if owner == nil {
			return fail("version liveness",
				"%s holds %v owned by no live epoch", where, ent)
		}
		if ctx > owner.CurCtx {
			return fail("version context bounds",
				"%s holds %v of epoch %d context %d (CurCtx %d)",
				where, ent, owner.ID, ctx, owner.CurCtx)
		}
		lm := g.lines.get(ent.Line)
		if lm == nil || lm.store[owner.ID] == nil || lm.store[owner.ID][ctx] == 0 {
			return fail("version accounting",
				"%s holds %v of epoch %d context %d with no SM state",
				where, ent, owner.ID, ctx)
		}
		return nil
	}
	var cerr error
	g.L2.ForEach(func(ent cache.Entry) {
		if cerr == nil {
			cerr = checkVer("L2", ent)
		}
	})
	if cerr != nil {
		return cerr
	}
	g.Victim.ForEach(func(ent cache.Entry) {
		if cerr != nil {
			return
		}
		if cerr = checkVer("victim cache", ent); cerr != nil {
			return
		}
		if ent.Ver != cache.VerCommitted && g.L2.Present(ent) {
			cerr = fail("version occupancy",
				"%v resident in both L2 and victim cache", ent)
		}
	})
	if cerr != nil {
		return cerr
	}

	// Latches: every held latch names a live holder recording the hold in a
	// live context.
	addrs := make([]mem.Addr, 0, len(g.latches))
	for addr, ls := range g.latches {
		if ls.holder != nil {
			addrs = append(addrs, addr)
		}
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	for _, addr := range addrs {
		ls := g.latches[addr]
		if byID[ls.holder.ID] != ls.holder {
			return fail("latch liveness",
				"latch %v held by dead epoch %d", addr, ls.holder.ID)
		}
		found := false
		for _, hl := range ls.holder.latches {
			if hl.addr == addr {
				found = true
				if hl.ctx > ls.holder.CurCtx {
					return fail("latch context bounds",
						"latch %v held by epoch %d from freed context %d (CurCtx %d)",
						addr, ls.holder.ID, hl.ctx, ls.holder.CurCtx)
				}
				break
			}
		}
		if !found {
			return fail("latch accounting",
				"latch %v held by epoch %d but missing from its held list",
				addr, ls.holder.ID)
		}
	}
	return nil
}

func sortedKeysLoad(m map[uint64]uint32) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sortedKeysStore(m map[uint64]*[MaxSubthreads]uint8) []uint64 {
	keys := make([]uint64, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
