package tls

import (
	"strings"
	"testing"

	"subthreads/internal/cache"
)

// The auditor tests seed protocol bugs directly into engine state — the
// corruptions a buggy rewind, commit, or eviction path would leave behind —
// and check that the paranoid scan names the broken invariant.

func auditConfig() Config {
	cfg := smallConfig()
	cfg.Paranoid = true
	return cfg
}

// expectAudit runs the invariant scan and requires a failure naming the
// given invariant.
func expectAudit(t *testing.T, g *Engine, invariant string) {
	t.Helper()
	err := g.runAudit("test")
	if err == nil {
		t.Fatalf("corrupted engine passed the audit (want %q failure)", invariant)
	}
	ae, ok := err.(*AuditError)
	if !ok {
		t.Fatalf("audit returned %T, want *AuditError", err)
	}
	if ae.Invariant != invariant {
		t.Fatalf("audit caught %q (%s), want %q", ae.Invariant, ae.Detail, invariant)
	}
}

func TestAuditCleanEngine(t *testing.T) {
	g := NewEngine(auditConfig())
	e0 := g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	g.Load(e1, addr(1, 0))
	g.Store(e1, 1, addr(2, 0))
	g.StartSubthread(e1)
	g.Store(e1, 2, addr(3, 0))
	g.AcquireLatch(e1, addr(4, 0))
	g.Store(e0, 3, addr(1, 0)) // violates e1: squash path runs
	e0.Completed = true
	g.CommitOldest()
	if err := g.AuditErr(); err != nil {
		t.Fatalf("clean protocol sequence failed the audit: %v", err)
	}
	if err := g.runAudit("final"); err != nil {
		t.Fatalf("final state failed the audit: %v", err)
	}
}

func TestAuditCatchesCommitOrderInversion(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	g.StartEpoch(1, 1)
	g.order[0], g.order[1] = g.order[1], g.order[0]
	expectAudit(t, g, "commit-order monotonicity")
}

func TestAuditCatchesSLOnFreedContext(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(5, 0)
	g.Load(e1, a) // SL bit in ctx 0
	// A buggy rewind that freed contexts without clearing their SL bits:
	lm := g.lines.get(a.Line())
	lm.load[e1.ID] |= 1 << 3 // ctx 3 never existed (CurCtx is 0)
	expectAudit(t, g, "SL context bounds")
}

func TestAuditCatchesSLOfDeadEpoch(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(6, 0)
	g.Load(e1, a)
	lm := g.lines.get(a.Line())
	lm.load[99] = 1 // an epoch that is not live
	expectAudit(t, g, "SL liveness")
}

func TestAuditCatchesSMOnFreedContext(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(7, 0)
	g.Store(e1, 1, a) // SM word in ctx 0
	lm := g.lines.get(a.Line())
	lm.store[e1.ID][5] = 1 // ctx 5 was never started
	expectAudit(t, g, "SM context bounds")
}

func TestAuditCatchesUnbackedVersion(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(8, 0)
	g.Store(e1, 1, a) // speculative version resident in the L2
	// A buggy squash that dropped the SM directory state but left the
	// version in the cache:
	lm := g.lines.get(a.Line())
	delete(lm.store, e1.ID)
	expectAudit(t, g, "version accounting")
}

func TestAuditCatchesDualResidency(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(9, 0)
	g.Store(e1, 1, a)
	// Duplicate the resident L2 version into the victim cache — the state a
	// missing eviction/migration step would produce.
	var dup bool
	g.L2.ForEach(func(ent cache.Entry) {
		if !dup && ent.Line == a.Line() {
			g.Victim.Insert(ent)
			dup = true
		}
	})
	if !dup {
		t.Fatal("stored version not resident in L2")
	}
	expectAudit(t, g, "version occupancy")
}

func TestAuditCatchesFreedContextLineTracking(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	g.StartSubthread(e1)
	g.Load(e1, addr(10, 0)) // tracked in ctx 1
	// A buggy rewind that moved CurCtx back without cleaning the context:
	e1.CurCtx = 0
	expectAudit(t, g, "freed-context cleanup")
}

func TestAuditCatchesDeadLatchHolder(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	l := addr(11, 0)
	g.AcquireLatch(e1, l)
	// Simulate a commit/abort path that forgot to release the latch.
	g.latches[l].holder = &Epoch{ID: 99}
	expectAudit(t, g, "latch liveness")
}

func TestAuditCatchesLatchFromFreedContext(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	g.StartSubthread(e1)
	l := addr(12, 0)
	g.AcquireLatch(e1, l) // acquired in ctx 1
	// A buggy squash path that rewound the context without releasing:
	e1.CurCtx = 0
	expectAudit(t, g, "latch context bounds")
}

// TestAuditLatchedByProtocolEvent seeds a corruption and checks that the
// next ordinary protocol event (not a direct scan call) latches the failure
// for the simulator to poll.
func TestAuditLatchedByProtocolEvent(t *testing.T) {
	g := NewEngine(auditConfig())
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(13, 0)
	g.Load(e1, a)
	g.lines.get(a.Line()).load[e1.ID] |= 1 << 7
	if g.AuditErr() != nil {
		t.Fatal("error latched before any protocol event")
	}
	g.StartSubthread(e1)
	err := g.AuditErr()
	if err == nil {
		t.Fatal("protocol event did not latch the audit failure")
	}
	if !strings.Contains(err.Error(), "SL context bounds") {
		t.Errorf("latched error = %v, want an SL context bounds failure", err)
	}
	// The first failure stays latched across further events.
	g.StartSubthread(e1)
	if got := g.AuditErr(); got != err {
		t.Errorf("latched error changed: %v -> %v", err, got)
	}
}

func TestAuditOffByDefault(t *testing.T) {
	g := NewEngine(smallConfig()) // Paranoid not set
	g.StartEpoch(0, 0)
	e1 := g.StartEpoch(1, 1)
	a := addr(14, 0)
	g.Load(e1, a)
	g.lines.get(a.Line()).load[e1.ID] |= 1 << 7
	g.StartSubthread(e1)
	if err := g.AuditErr(); err != nil {
		t.Errorf("non-paranoid engine audited anyway: %v", err)
	}
}
