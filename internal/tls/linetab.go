package tls

import "subthreads/internal/mem"

// The L2 directory (lines -> lineMeta) sits on the path of every speculative
// load and store, so it is modeled the way the hardware builds it: direct
// addressing by line index rather than hashing. The simulated address space
// is a 32-bit bump-allocated space with clustered regions, so the table is
// paged — a two-level array indexed by line number — and pages materialize
// lazily for the clusters a workload actually touches. Lookup is two array
// indexes and no hashing or interface dispatch.
const (
	linePageShift = 12 // lines per page (4096 lines = 128KB of address space)
	linePageSize  = 1 << linePageShift
	linePageMask  = linePageSize - 1
)

// lineTab is the paged line-index -> *lineMeta directory.
type lineTab struct {
	pages [][]*lineMeta
}

// growPages extends the page directory to cover index p, growing
// geometrically to avoid recopying it on every new high-water page.
func growPages(pages [][]*lineMeta, p uint32) [][]*lineMeta {
	n := uint32(len(pages)) * 2
	if n <= p {
		n = p + 1
	}
	grown := make([][]*lineMeta, n)
	copy(grown, pages)
	return grown
}

// get returns the directory entry for line, or nil.
func (t *lineTab) get(line mem.Addr) *lineMeta {
	idx := line.LineIndex()
	p := idx >> linePageShift
	if p >= uint32(len(t.pages)) || t.pages[p] == nil {
		return nil
	}
	return t.pages[p][idx&linePageMask]
}

// set installs (or, with nil, clears) the directory entry for line.
func (t *lineTab) set(line mem.Addr, lm *lineMeta) {
	idx := line.LineIndex()
	p := idx >> linePageShift
	if p >= uint32(len(t.pages)) {
		t.pages = growPages(t.pages, p)
	}
	if t.pages[p] == nil {
		if lm == nil {
			return
		}
		t.pages[p] = make([]*lineMeta, linePageSize)
	}
	t.pages[p][idx&linePageMask] = lm
}

// reset drops every page (a full directory flush; used by AbortAll).
func (t *lineTab) reset() {
	t.pages = nil
}

// forEach visits every resident directory entry in ascending line order
// (audits and tests only — it walks every materialized page).
func (t *lineTab) forEach(fn func(line mem.Addr, lm *lineMeta)) {
	for p, page := range t.pages {
		for i, lm := range page {
			if lm == nil {
				continue
			}
			idx := uint32(p)<<linePageShift | uint32(i)
			fn(mem.Addr(idx)*mem.LineSize, lm)
		}
	}
}

// live counts the resident directory entries (tests and invariants only —
// it walks every materialized page).
func (t *lineTab) live() int {
	n := 0
	for _, page := range t.pages {
		for _, lm := range page {
			if lm != nil {
				n++
			}
		}
	}
	return n
}
