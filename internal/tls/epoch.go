package tls

import (
	"fmt"

	"subthreads/internal/cache"
	"subthreads/internal/mem"
)

// Epoch is one speculative thread: a chunk of the original sequential
// execution (a loop iteration of the parallelized transaction) running on one
// CPU. Epochs are totally ordered by ID; the oldest live epoch holds the
// homefree token and cannot be violated.
type Epoch struct {
	// ID is the logical order of the epoch in the original sequential
	// execution.
	ID uint64
	// Slot is the CPU the epoch runs on; it namespaces the epoch's cache
	// version tags (at most one live epoch per slot).
	Slot int
	// CurCtx is the sub-thread context currently accruing speculative
	// state. Context 0 is the start of the epoch.
	CurCtx int
	// Completed is set when the epoch has executed its whole trace and is
	// waiting for the homefree token; a violation clears it again.
	Completed bool

	// startTable records, per logically-earlier epoch and sub-thread
	// context, which of *our* contexts was current when that sub-thread
	// started. It implements the paper's sub-thread start table (§2.2):
	// a secondary violation for producer context c restarts us from
	// startTable[producer][c] instead of from the beginning.
	startTable map[uint64]*[MaxSubthreads]uint8

	// ctxLines tracks, per context, the lines with SL or SM state so that
	// squash and commit can clean up without scanning the whole L2.
	ctxLines [MaxSubthreads][]mem.Addr

	// held latches, released on squash of the acquiring context.
	latches []heldLatch

	// Violations counts how many times this epoch was rewound.
	Violations uint64
}

func (e *Epoch) addLine(ctx int, line mem.Addr) {
	e.ctxLines[ctx] = append(e.ctxLines[ctx], line)
}

// StartEpoch registers a new speculative thread. IDs must be strictly
// increasing and the slot must not be occupied by a live epoch.
func (g *Engine) StartEpoch(id uint64, slot int) *Epoch {
	if id < g.nextID {
		panic(fmt.Sprintf("tls: epoch %d started out of order (next is %d)", id, g.nextID))
	}
	if slot < 0 || slot >= g.cfg.CPUs {
		panic(fmt.Sprintf("tls: slot %d out of range", slot))
	}
	for _, live := range g.order {
		if live.Slot == slot {
			panic(fmt.Sprintf("tls: slot %d already running epoch %d", slot, live.ID))
		}
	}
	g.nextID = id + 1
	e := &Epoch{
		ID:         id,
		Slot:       slot,
		startTable: make(map[uint64]*[MaxSubthreads]uint8),
	}
	g.order = append(g.order, e)
	g.audit("epoch-start")
	return e
}

// StartSubthread checkpoints epoch e and begins its next sub-thread context.
// It reports false when all hardware contexts are consumed (the epoch then
// keeps running in its last context, uncheckpointed — §2.2). On success it
// broadcasts a subthreadStart message so logically-later epochs update their
// start tables.
func (g *Engine) StartSubthread(e *Epoch) bool {
	if e.CurCtx+1 >= g.cfg.SubthreadsPerEpoch {
		return false
	}
	e.CurCtx++
	g.SubthreadStarts++
	after := false
	for _, ep := range g.order {
		if ep == e {
			after = true
			continue
		}
		if !after {
			continue
		}
		tbl := ep.startTable[e.ID]
		if tbl == nil {
			tbl = g.getSM()
			ep.startTable[e.ID] = tbl
		}
		tbl[e.CurCtx] = uint8(ep.CurCtx)
	}
	g.audit("subthread-start")
	return true
}

// squashSet deduplicates rewind targets, keeping the earliest context per
// epoch (a deeper rewind subsumes a shallower one).
type squashSet struct {
	byEpoch map[*Epoch]int // index into list
	list    []Squash
}

func newSquashSet() *squashSet {
	return &squashSet{byEpoch: make(map[*Epoch]int)}
}

func (s *squashSet) add(e *Epoch, ctx int, sq Squash) bool {
	if i, ok := s.byEpoch[e]; ok {
		if s.list[i].Ctx <= ctx {
			return false
		}
		sq.Ctx = ctx
		s.list[i] = sq
		return true
	}
	s.byEpoch[e] = len(s.list)
	s.list = append(s.list, sq)
	return true
}

// addSecondaries queues secondary violations for every epoch logically later
// than the violated one. With the start table enabled, each later epoch
// restarts from the context it was in when the violated sub-thread began
// (Figure 4b); without it, later epochs restart from scratch (Figure 4a).
func (g *Engine) addSecondaries(set *squashSet, violated *Epoch, ctx int) {
	after := false
	for _, ep := range g.order {
		if ep == violated {
			after = true
			continue
		}
		if !after {
			continue
		}
		restart := 0
		if g.cfg.StartTable {
			if tbl := ep.startTable[violated.ID]; tbl != nil {
				restart = int(tbl[ctx])
			}
			// The recorded context may have been rewound away since
			// the subthreadStart message was received; work being
			// re-executed in an earlier context may have consumed
			// the squashed values, so restart there instead.
			if restart > ep.CurCtx {
				restart = ep.CurCtx
			}
		}
		if set.add(ep, restart, Squash{Epoch: ep, Ctx: restart, Reason: Secondary}) {
			g.SecondaryViolations++
		}
	}
}

// applySquashes cleans up the architectural state for every target and
// returns the list for the simulator to act on (rewind cursors, reclassify
// cycles as failed speculation).
func (g *Engine) applySquashes(set *squashSet) []Squash {
	if set == nil || len(set.list) == 0 {
		return nil
	}
	for _, sq := range set.list {
		g.rewind(sq.Epoch, sq.Ctx)
	}
	return set.list
}

// rewind discards the speculative state of contexts [ctx, CurCtx] of epoch e
// and re-opens context ctx, releasing latches acquired by the squashed
// contexts.
func (g *Engine) rewind(e *Epoch, ctx int) {
	if ctx > e.CurCtx {
		// A deeper rewind applied earlier in the same batch already
		// freed these contexts; re-opening a later one would corrupt
		// the context state.
		ctx = e.CurCtx
	}
	for c := ctx; c <= e.CurCtx; c++ {
		bit := uint32(1) << uint(c)
		for _, line := range e.ctxLines[c] {
			lm := g.lines.get(line)
			if lm == nil {
				continue
			}
			lm.load[e.ID] &^= bit
			if lm.load[e.ID] == 0 {
				delete(lm.load, e.ID)
			}
			if sm := lm.store[e.ID]; sm != nil {
				sm[c] = 0
				all := uint8(0)
				for i := range sm {
					all |= sm[i]
				}
				if all == 0 {
					delete(lm.store, e.ID)
					g.putSM(sm)
				}
			}
			g.dropMetaIfEmpty(line, lm)
			ent := cache.Entry{Line: line, Ver: verOf(e, c)}
			if !g.L2.Remove(ent) {
				g.Victim.Remove(ent)
			}
		}
		e.ctxLines[c] = e.ctxLines[c][:0]
	}
	g.releaseLatchesFrom(e, ctx)
	e.CurCtx = ctx
	e.Completed = false
	e.Violations++
}

// CommitOldest retires the oldest epoch: all its speculative state becomes
// architectural (flash commit — SL/SM bits cleared, versions retagged as the
// committed copies) and the homefree token passes to the next epoch. The
// epoch must have Completed. Promoting victim-cache-resident versions back
// into the L2 can cascade into buffer overflow for other epochs; the
// returned squashes (empty under OverflowStall) must be applied by the
// caller.
func (g *Engine) CommitOldest() (*Epoch, []Squash) {
	if len(g.order) == 0 {
		panic("tls: CommitOldest with no live epochs")
	}
	e := g.order[0]
	if !e.Completed {
		panic(fmt.Sprintf("tls: committing incomplete epoch %d", e.ID))
	}
	var all []Squash
	for c := 0; c <= e.CurCtx; c++ {
		for _, line := range e.ctxLines[c] {
			lm := g.lines.get(line)
			if lm != nil {
				delete(lm.load, e.ID)
				if sm := lm.store[e.ID]; sm != nil {
					delete(lm.store, e.ID)
					g.putSM(sm)
				}
				g.dropMetaIfEmpty(line, lm)
			}
			// Retag the speculative version as the committed copy,
			// preserving occupancy and LRU position.
			old := cache.Entry{Line: line, Ver: verOf(e, c)}
			committed := cache.Entry{Line: line, Ver: cache.VerCommitted}
			if !g.L2.Rename(old, committed) && g.Victim.Remove(old) {
				// A version living only in the victim cache is
				// promoted back into the L2 on commit; under
				// OverflowStall an unbufferable promotion is
				// simply dropped (written back to memory).
				sqs, _ := g.insertL2(committed)
				all = append(all, sqs...)
			}
		}
		e.ctxLines[c] = e.ctxLines[c][:0]
	}
	g.releaseLatchesFrom(e, 0)
	g.order = g.order[1:]
	g.Commits++
	// The committed epoch's start table dies with it; recycle the arrays.
	// (Entries other live epochs keep for this epoch's ID are never read
	// again and are recycled when those epochs commit.)
	for id, tbl := range e.startTable {
		g.putSM(tbl)
		delete(e.startTable, id)
	}
	g.audit("commit")
	return e, all
}

// AbortAll discards every live epoch's state (used when a run is torn down).
func (g *Engine) AbortAll() {
	for len(g.order) > 0 {
		e := g.order[len(g.order)-1]
		g.rewind(e, 0)
		g.order = g.order[:len(g.order)-1]
	}
	g.lines.reset()
	g.latches = make(map[mem.Addr]*latchState)
}
