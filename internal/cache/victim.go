package cache

import "subthreads/internal/mem"

// Victim is the speculative victim cache attached to the L2 (§2.1): a small
// fully-associative LRU buffer that catches speculative cache lines evicted
// from the regular L2 by conflict misses. The paper sizes it at 64 entries —
// "large enough to avoid stalling threads due to cache overflows for our
// worst case". When it overflows, the TLS layer must stall the owning thread
// until it becomes non-speculative.
type Victim struct {
	capacity int
	entries  []Entry // MRU first
	Stats
}

// NewVictim returns a victim cache holding up to capacity entries.
// Zero capacity is legal and models hardware without a victim cache.
func NewVictim(capacity int) *Victim {
	if capacity < 0 {
		panic("cache: negative victim capacity")
	}
	return &Victim{capacity: capacity}
}

// Capacity reports the configured entry count.
func (v *Victim) Capacity() int { return v.capacity }

// Len reports current occupancy.
func (v *Victim) Len() int { return len(v.entries) }

// Lookup reports whether the entry is present, refreshing its LRU position.
func (v *Victim) Lookup(e Entry) bool {
	for i, have := range v.entries {
		if have == e {
			copy(v.entries[1:i+1], v.entries[:i])
			v.entries[0] = e
			v.Hits++
			return true
		}
	}
	v.Misses++
	return false
}

// Insert adds e at the MRU position. If the victim cache is full, the LRU
// entry is evicted and returned — the caller (TLS layer) must then stall the
// epoch owning that version, because speculative state cannot be written back
// to memory.
func (v *Victim) Insert(e Entry) (overflow Entry, overflowed bool) {
	for i, have := range v.entries {
		if have == e {
			copy(v.entries[1:i+1], v.entries[:i])
			v.entries[0] = e
			return Entry{}, false
		}
	}
	if v.capacity == 0 {
		return e, true
	}
	if len(v.entries) < v.capacity {
		v.entries = append(v.entries, Entry{})
	} else {
		overflow = v.entries[len(v.entries)-1]
		overflowed = true
		v.Evictions++
	}
	copy(v.entries[1:], v.entries)
	v.entries[0] = e
	return overflow, overflowed
}

// Remove drops the exact entry if present.
func (v *Victim) Remove(e Entry) bool {
	for i, have := range v.entries {
		if have == e {
			v.entries = append(v.entries[:i], v.entries[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveIf drops every entry for which drop returns true.
func (v *Victim) RemoveIf(drop func(Entry) bool) int {
	n, w := 0, 0
	for _, e := range v.entries {
		if drop(e) {
			n++
			continue
		}
		v.entries[w] = e
		w++
	}
	v.entries = v.entries[:w]
	return n
}

// ForEach visits every resident entry in MRU order without touching LRU
// state.
func (v *Victim) ForEach(fn func(Entry)) {
	for _, e := range v.entries {
		fn(e)
	}
}

// Reset empties the victim cache, keeping statistics.
func (v *Victim) Reset() { v.entries = v.entries[:0] }

// LookupLine reports whether any version of the line is resident, refreshing
// the LRU position of the first match and updating statistics.
func (v *Victim) LookupLine(line mem.Addr) bool {
	for i, have := range v.entries {
		if have.Line == line {
			e := v.entries[i]
			copy(v.entries[1:i+1], v.entries[:i])
			v.entries[0] = e
			v.Hits++
			return true
		}
	}
	v.Misses++
	return false
}

// PresentLine reports whether any version of the line is resident without
// touching LRU order or statistics.
func (v *Victim) PresentLine(line mem.Addr) bool {
	for _, have := range v.entries {
		if have.Line == line {
			return true
		}
	}
	return false
}

// Full reports whether the victim cache cannot absorb another entry.
func (v *Victim) Full() bool { return len(v.entries) >= v.capacity }
