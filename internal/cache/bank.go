package cache

import "subthreads/internal/mem"

// Banks models contention on a banked structure (the 4-bank L2, the 2-bank
// L1 data cache, or main memory, per Table 1). Each bank serves one access
// per occupancy window; an access that arrives while its bank is busy queues
// and sees the queueing delay added to its latency.
type Banks struct {
	nextFree  []uint64
	occupancy uint64

	// Conflicts counts accesses that had to queue.
	Conflicts uint64
}

// NewBanks builds a contention model with n banks, each able to accept a new
// access every occupancy cycles.
func NewBanks(n int, occupancy uint64) *Banks {
	if n < 1 || occupancy < 1 {
		panic("cache: banks need n >= 1 and occupancy >= 1")
	}
	return &Banks{nextFree: make([]uint64, n), occupancy: occupancy}
}

// Access reserves the bank serving line starting at cycle now and returns the
// queueing delay (0 when the bank is free).
func (b *Banks) Access(line mem.Addr, now uint64) (delay uint64) {
	bank := int(line/mem.LineSize) % len(b.nextFree)
	start := now
	if b.nextFree[bank] > start {
		delay = b.nextFree[bank] - start
		start = b.nextFree[bank]
		b.Conflicts++
	}
	b.nextFree[bank] = start + b.occupancy
	return delay
}

// Reset clears all reservations.
func (b *Banks) Reset() {
	for i := range b.nextFree {
		b.nextFree[i] = 0
	}
}
