package cache

import (
	"subthreads/internal/mem"
	"subthreads/internal/snapbin"
)

// Snapshot codecs: the cache hierarchy's complete runtime state — tag-store
// contents including LRU order, victim-cache contents, bank reservations, and
// statistics — rendered to and from the snapbin frame. Geometry (sets, ways,
// capacities) is NOT serialized: it is configuration, and the restore target
// is always freshly constructed from the same (or a prefix-compatible)
// config. LRU order is implicit in slice order (MRU first), so sets and the
// victim cache serialize verbatim and restore byte-identically.

// maxSnapEntries caps decoded entry counts; no modeled structure approaches
// it (the 2MB L2 holds 65536 entries).
const maxSnapEntries = 1 << 22

// AppendState serializes the tag store's contents, LRU order, and stats.
func (c *Cache) AppendState(w *snapbin.Writer) {
	w.Uvarint(c.Hits)
	w.Uvarint(c.Misses)
	w.Uvarint(c.Evictions)
	for _, set := range c.sets {
		w.Uvarint(uint64(len(set)))
		for _, e := range set {
			w.Uvarint(uint64(e.Line))
			w.Varint(int64(e.Ver))
		}
	}
}

// RestoreState rebuilds the tag store from r into a cache constructed with
// the same geometry. Occupancy beyond Ways or entries outside the set they
// are framed under latch a decode error.
func (c *Cache) RestoreState(r *snapbin.Reader) {
	c.Hits = r.Uvarint("cache hits")
	c.Misses = r.Uvarint("cache misses")
	c.Evictions = r.Uvarint("cache evictions")
	for i := range c.sets {
		n := r.Count("cache set", c.cfg.Ways)
		set := c.sets[i][:0]
		for j := 0; j < n && r.Err() == nil; j++ {
			e := Entry{
				Line: mem.Addr(r.Uvarint("cache line")),
				Ver:  Ver(r.Varint("cache ver")),
			}
			if r.Err() == nil && c.setIndex(e.Line) != i {
				r.Failf("cache %q: line %v framed under set %d", c.cfg.Name, e.Line, i)
				return
			}
			set = append(set, e)
		}
		c.sets[i] = set
		if r.Err() != nil {
			return
		}
	}
}

// AppendState serializes the victim cache's contents (MRU first) and stats.
func (v *Victim) AppendState(w *snapbin.Writer) {
	w.Uvarint(v.Hits)
	w.Uvarint(v.Misses)
	w.Uvarint(v.Evictions)
	w.Uvarint(uint64(len(v.entries)))
	for _, e := range v.entries {
		w.Uvarint(uint64(e.Line))
		w.Varint(int64(e.Ver))
	}
}

// RestoreState rebuilds the victim cache from r. The restore target's
// capacity bounds the entry count; a frame that exceeds it (config drift or
// corruption) latches an error.
func (v *Victim) RestoreState(r *snapbin.Reader) {
	v.Hits = r.Uvarint("victim hits")
	v.Misses = r.Uvarint("victim misses")
	v.Evictions = r.Uvarint("victim evictions")
	n := r.Count("victim entries", v.capacity)
	v.entries = v.entries[:0]
	for i := 0; i < n && r.Err() == nil; i++ {
		v.entries = append(v.entries, Entry{
			Line: mem.Addr(r.Uvarint("victim line")),
			Ver:  Ver(r.Varint("victim ver")),
		})
	}
}

// AppendState serializes the bank reservation horizon and conflict count.
func (b *Banks) AppendState(w *snapbin.Writer) {
	w.Uvarint(uint64(len(b.nextFree)))
	for _, v := range b.nextFree {
		w.Uvarint(v)
	}
	w.Uvarint(b.Conflicts)
}

// RestoreState rebuilds bank reservations; the bank count must match the
// restore target's configuration.
func (b *Banks) RestoreState(r *snapbin.Reader) {
	n := r.Count("banks", maxSnapEntries)
	if r.Err() == nil && n != len(b.nextFree) {
		r.Failf("banks: frame has %d banks, config has %d", n, len(b.nextFree))
		return
	}
	for i := 0; i < n && r.Err() == nil; i++ {
		b.nextFree[i] = r.Uvarint("bank next-free")
	}
	b.Conflicts = r.Uvarint("bank conflicts")
}
