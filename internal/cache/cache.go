// Package cache models the cache hierarchy of the simulated CMP (Table 1):
// per-CPU 32KB 4-way L1 instruction and data caches, a shared banked 2MB
// 4-way L2, and the 64-entry speculative victim cache that catches
// speculative lines evicted from the L2 by conflict misses (§2.1).
//
// The L2 is version-aware: the TLS protocol stores multiple speculative
// versions of one cache line in the different ways of a set (§2.1), so a
// cache entry here is (line address, version owner), and versions compete
// for ways exactly as the paper describes.
package cache

import (
	"fmt"

	"subthreads/internal/mem"
)

// Ver identifies which copy of a line an entry holds. VerCommitted is the
// architectural copy; other values are speculative versions owned by one
// sub-thread context (the TLS layer assigns them).
type Ver int16

// VerCommitted marks the committed (non-speculative) copy of a line.
const VerCommitted Ver = -1

// Entry is one tag-store entry: a specific version of a specific line.
type Entry struct {
	Line mem.Addr
	Ver  Ver
}

func (e Entry) String() string {
	if e.Ver == VerCommitted {
		return fmt.Sprintf("%v/committed", e.Line)
	}
	return fmt.Sprintf("%v/v%d", e.Line, e.Ver)
}

// Stats counts cache events.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Evictions uint64
}

// Config sizes a cache.
type Config struct {
	Name string
	Sets int // power of two
	Ways int
}

// Bytes reports the cache capacity implied by the configuration.
func (c Config) Bytes() int { return c.Sets * c.Ways * mem.LineSize }

// Cache is a set-associative, LRU-replacement tag store. It tracks only
// presence, not data: the simulator is trace driven and needs hit/miss
// behaviour and occupancy, not values.
type Cache struct {
	cfg  Config
	mask mem.Addr
	sets [][]Entry // each set ordered MRU first
	Stats
}

// New builds a cache from cfg. Sets must be a power of two and Ways >= 1.
func New(cfg Config) *Cache {
	if cfg.Sets <= 0 || cfg.Sets&(cfg.Sets-1) != 0 {
		panic(fmt.Sprintf("cache %q: sets %d not a power of two", cfg.Name, cfg.Sets))
	}
	if cfg.Ways < 1 {
		panic(fmt.Sprintf("cache %q: ways %d", cfg.Name, cfg.Ways))
	}
	return &Cache{
		cfg:  cfg,
		mask: mem.Addr(cfg.Sets - 1),
		sets: make([][]Entry, cfg.Sets),
	}
}

// Config returns the cache's configuration.
func (c *Cache) Config() Config { return c.cfg }

func (c *Cache) setIndex(line mem.Addr) int {
	return int((line / mem.LineSize) & c.mask)
}

// Lookup reports whether the exact entry is present, updating LRU order and
// hit/miss statistics.
func (c *Cache) Lookup(e Entry) bool {
	set := c.sets[c.setIndex(e.Line)]
	for i, have := range set {
		if have == e {
			// Move to MRU position.
			copy(set[1:i+1], set[:i])
			set[0] = e
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Present reports whether the exact entry is cached without touching LRU
// order or statistics.
func (c *Cache) Present(e Entry) bool {
	for _, have := range c.sets[c.setIndex(e.Line)] {
		if have == e {
			return true
		}
	}
	return false
}

// PresentLine reports whether any version of the line is cached, without
// touching LRU order or statistics.
func (c *Cache) PresentLine(line mem.Addr) bool {
	for _, have := range c.sets[c.setIndex(line)] {
		if have.Line == line {
			return true
		}
	}
	return false
}

// Insert adds e at the MRU position of its set. If the set is full, the
// least-recently-used entry of the lowest class (as ranked by classOf;
// lower means "prefer to evict") is evicted and returned. classOf may be nil,
// in which case pure LRU applies. Inserting an already-present entry just
// refreshes its LRU position.
func (c *Cache) Insert(e Entry, classOf func(Entry) int) (victim Entry, evicted bool) {
	idx := c.setIndex(e.Line)
	set := c.sets[idx]
	for i, have := range set {
		if have == e {
			copy(set[1:i+1], set[:i])
			set[0] = e
			return Entry{}, false
		}
	}
	if len(set) < c.cfg.Ways {
		set = append(set, Entry{})
		copy(set[1:], set)
		set[0] = e
		c.sets[idx] = set
		return Entry{}, false
	}
	// Choose the LRU entry of the lowest class. Scanning from the LRU end
	// finds the least recently used entry within each class.
	vi := len(set) - 1
	if classOf != nil {
		best := classOf(set[vi])
		for i := len(set) - 2; i >= 0 && best > 0; i-- {
			if cl := classOf(set[i]); cl < best {
				best = cl
				vi = i
			}
		}
	}
	victim = set[vi]
	copy(set[1:vi+1], set[:vi])
	set[0] = e
	c.Evictions++
	return victim, true
}

// Remove drops the exact entry if present, reporting whether it was.
func (c *Cache) Remove(e Entry) bool {
	idx := c.setIndex(e.Line)
	set := c.sets[idx]
	for i, have := range set {
		if have == e {
			c.sets[idx] = append(set[:i], set[i+1:]...)
			return true
		}
	}
	return false
}

// RemoveIf drops every entry for which keep returns true, returning how many
// were dropped. It is O(cache size); the TLS layer prefers targeted Remove
// calls and uses this only in tests and full resets.
func (c *Cache) RemoveIf(drop func(Entry) bool) int {
	n := 0
	for idx, set := range c.sets {
		w := 0
		for _, e := range set {
			if drop(e) {
				n++
				continue
			}
			set[w] = e
			w++
		}
		c.sets[idx] = set[:w]
	}
	return n
}

// ForEach visits every resident entry in deterministic (set, MRU) order
// without touching LRU state. The TLS auditor uses it to validate version
// occupancy.
func (c *Cache) ForEach(fn func(Entry)) {
	for _, set := range c.sets {
		for _, e := range set {
			fn(e)
		}
	}
}

// Len reports the number of resident entries.
func (c *Cache) Len() int {
	n := 0
	for _, set := range c.sets {
		n += len(set)
	}
	return n
}

// SetLen reports the occupancy of the set holding line.
func (c *Cache) SetLen(line mem.Addr) int {
	return len(c.sets[c.setIndex(line)])
}

// Reset empties the cache, keeping statistics.
func (c *Cache) Reset() {
	for i := range c.sets {
		c.sets[i] = c.sets[i][:0]
	}
}

// LookupLine reports whether any version of the line is resident, refreshing
// the LRU position of the first matching entry and updating statistics. The
// memory system uses it for timing: a speculative version forwarded from an
// earlier epoch serves a later epoch's load as an L2 hit (§2.1 aggressive
// update propagation).
func (c *Cache) LookupLine(line mem.Addr) bool {
	set := c.sets[c.setIndex(line)]
	for i, have := range set {
		if have.Line == line {
			e := set[i]
			copy(set[1:i+1], set[:i])
			set[0] = e
			c.Hits++
			return true
		}
	}
	c.Misses++
	return false
}

// Rename retags a resident entry in place, keeping its LRU position. The TLS
// layer uses it at commit time to flash-convert a speculative version into
// the committed copy without disturbing occupancy. It reports whether old was
// resident; if new is already resident, old is simply removed.
func (c *Cache) Rename(old, new Entry) bool {
	if old.Line.Line() != new.Line.Line() {
		panic("cache: Rename across lines")
	}
	if c.Present(new) {
		return c.Remove(old)
	}
	set := c.sets[c.setIndex(old.Line)]
	for i, have := range set {
		if have == old {
			set[i] = new
			return true
		}
	}
	return false
}

// VictimClass reports what an insert of a new entry into line's set would
// displace: -1 when a free way exists (or the entry would refresh in place),
// otherwise the class (per classOf) of the would-be victim. The TLS layer
// uses it to decide whether buffering new speculative state would force
// un-buffferable speculative state out (§2.1 overflow stall).
func (c *Cache) VictimClass(line mem.Addr, classOf func(Entry) int) int {
	set := c.sets[c.setIndex(line)]
	if len(set) < c.cfg.Ways {
		return -1
	}
	vi := len(set) - 1
	best := classOf(set[vi])
	for i := len(set) - 2; i >= 0 && best > 0; i-- {
		if cl := classOf(set[i]); cl < best {
			best = cl
		}
	}
	return best
}
