package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"subthreads/internal/mem"
)

func line(n int) mem.Addr { return mem.Addr(n * mem.LineSize) }

func TestNewValidation(t *testing.T) {
	for _, cfg := range []Config{
		{Name: "bad-sets", Sets: 3, Ways: 2},
		{Name: "zero-sets", Sets: 0, Ways: 2},
		{Name: "zero-ways", Sets: 4, Ways: 0},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("New(%+v) did not panic", cfg)
				}
			}()
			New(cfg)
		}()
	}
}

func TestConfigBytes(t *testing.T) {
	// Table 1 L2: 2MB, 4-way, 32B lines.
	cfg := Config{Name: "l2", Sets: 16384, Ways: 4}
	if got := cfg.Bytes(); got != 2<<20 {
		t.Errorf("L2 bytes = %d, want %d", got, 2<<20)
	}
	// Table 1 L1: 32KB, 4-way.
	cfg = Config{Name: "l1", Sets: 256, Ways: 4}
	if got := cfg.Bytes(); got != 32<<10 {
		t.Errorf("L1 bytes = %d, want %d", got, 32<<10)
	}
}

func TestLookupInsert(t *testing.T) {
	c := New(Config{Name: "t", Sets: 2, Ways: 2})
	e := Entry{Line: line(0), Ver: VerCommitted}
	if c.Lookup(e) {
		t.Fatal("hit in empty cache")
	}
	c.Insert(e, nil)
	if !c.Lookup(e) {
		t.Fatal("miss after insert")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestVersionsAreDistinctEntries(t *testing.T) {
	c := New(Config{Name: "t", Sets: 2, Ways: 4})
	l := line(4)
	c.Insert(Entry{l, VerCommitted}, nil)
	c.Insert(Entry{l, 0}, nil)
	c.Insert(Entry{l, 1}, nil)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3 versions resident", c.Len())
	}
	if !c.Present(Entry{l, 1}) || c.Present(Entry{l, 2}) {
		t.Error("Present confused versions")
	}
	if !c.PresentLine(l) || c.PresentLine(line(5)) {
		t.Error("PresentLine wrong")
	}
	// All three versions live in the same set: they consume ways (§2.1).
	if c.SetLen(l) != 3 {
		t.Errorf("SetLen = %d, want 3", c.SetLen(l))
	}
}

func TestLRUEviction(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2})
	a := Entry{line(0), VerCommitted}
	b := Entry{line(1), VerCommitted}
	d := Entry{line(2), VerCommitted}
	c.Insert(a, nil)
	c.Insert(b, nil)
	c.Lookup(a) // a becomes MRU; b is LRU
	victim, evicted := c.Insert(d, nil)
	if !evicted || victim != b {
		t.Fatalf("victim = %v,%v; want %v", victim, evicted, b)
	}
	if c.Present(b) {
		t.Error("evicted entry still present")
	}
	if !c.Present(a) || !c.Present(d) {
		t.Error("survivors missing")
	}
}

func TestInsertRefreshesExisting(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2})
	a := Entry{line(0), VerCommitted}
	b := Entry{line(1), VerCommitted}
	c.Insert(a, nil)
	c.Insert(b, nil)
	// Re-inserting a must not evict and must make a MRU.
	if _, evicted := c.Insert(a, nil); evicted {
		t.Fatal("re-insert evicted")
	}
	victim, _ := c.Insert(Entry{line(2), VerCommitted}, nil)
	if victim != b {
		t.Errorf("victim = %v, want %v (a was refreshed)", victim, b)
	}
}

func TestClassBasedEviction(t *testing.T) {
	// Speculative entries (class 1) must survive over committed ones
	// (class 0) even when the committed entry is more recently used —
	// this is how the TLS layer keeps versions resident.
	c := New(Config{Name: "t", Sets: 1, Ways: 3})
	spec1 := Entry{line(0), 0}
	spec2 := Entry{line(1), 1}
	committed := Entry{line(2), VerCommitted}
	c.Insert(spec1, nil)
	c.Insert(spec2, nil)
	c.Insert(committed, nil)
	c.Lookup(committed) // committed is MRU
	classOf := func(e Entry) int {
		if e.Ver == VerCommitted {
			return 0
		}
		return 1
	}
	victim, evicted := c.Insert(Entry{line(3), 2}, classOf)
	if !evicted || victim != committed {
		t.Fatalf("victim = %v, want committed entry", victim)
	}
	// With only speculative entries left, the LRU speculative one goes.
	victim, evicted = c.Insert(Entry{line(4), 3}, classOf)
	if !evicted || victim != spec1 {
		t.Fatalf("victim = %v, want %v", victim, spec1)
	}
}

func TestRemove(t *testing.T) {
	c := New(Config{Name: "t", Sets: 2, Ways: 2})
	e := Entry{line(0), 3}
	c.Insert(e, nil)
	if !c.Remove(e) {
		t.Fatal("Remove missed resident entry")
	}
	if c.Remove(e) {
		t.Fatal("Remove found ghost")
	}
	if c.Len() != 0 {
		t.Errorf("Len = %d", c.Len())
	}
}

func TestRemoveIf(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 4})
	for i := 0; i < 8; i++ {
		c.Insert(Entry{line(i), Ver(i % 2)}, nil)
	}
	n := c.RemoveIf(func(e Entry) bool { return e.Ver == 1 })
	if n != 4 || c.Len() != 4 {
		t.Errorf("RemoveIf dropped %d, Len = %d", n, c.Len())
	}
}

func TestSetIndexMapping(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 1})
	// Lines 0 and 4 collide in a 4-set cache; 0 and 1 do not.
	c.Insert(Entry{line(0), VerCommitted}, nil)
	if _, evicted := c.Insert(Entry{line(1), VerCommitted}, nil); evicted {
		t.Error("non-colliding lines evicted each other")
	}
	victim, evicted := c.Insert(Entry{line(4), VerCommitted}, nil)
	if !evicted || victim.Line != line(0) {
		t.Errorf("colliding insert: victim=%v evicted=%v", victim, evicted)
	}
}

// Property: occupancy never exceeds Sets*Ways, and Lookup-after-Insert always
// hits until the entry is evicted or removed.
func TestOccupancyInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c := New(Config{Name: "t", Sets: 4, Ways: 2})
		for i := 0; i < 200; i++ {
			e := Entry{line(rng.Intn(16)), Ver(rng.Intn(3) - 1)}
			switch rng.Intn(3) {
			case 0:
				c.Insert(e, nil)
				if !c.Present(e) {
					return false
				}
			case 1:
				c.Lookup(e)
			case 2:
				c.Remove(e)
			}
			if c.Len() > 8 || c.SetLen(e.Line) > 2 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestVictimBasics(t *testing.T) {
	v := NewVictim(2)
	a := Entry{line(0), 0}
	b := Entry{line(1), 1}
	d := Entry{line(2), 2}
	if _, over := v.Insert(a); over {
		t.Fatal("overflow on first insert")
	}
	v.Insert(b)
	if !v.Lookup(a) { // refresh a
		t.Fatal("victim lost entry")
	}
	over, overflowed := v.Insert(d)
	if !overflowed || over != b {
		t.Fatalf("overflow = %v,%v; want %v", over, overflowed, b)
	}
	if v.Len() != 2 {
		t.Errorf("Len = %d", v.Len())
	}
}

func TestVictimZeroCapacity(t *testing.T) {
	v := NewVictim(0)
	e := Entry{line(0), 0}
	over, overflowed := v.Insert(e)
	if !overflowed || over != e {
		t.Errorf("zero-capacity victim must bounce inserts, got %v,%v", over, overflowed)
	}
}

func TestVictimRemoveIf(t *testing.T) {
	v := NewVictim(8)
	for i := 0; i < 6; i++ {
		v.Insert(Entry{line(i), Ver(i % 3)})
	}
	n := v.RemoveIf(func(e Entry) bool { return e.Ver == 2 })
	if n != 2 || v.Len() != 4 {
		t.Errorf("RemoveIf dropped %d, Len=%d", n, v.Len())
	}
}

func TestVictimDuplicateInsert(t *testing.T) {
	v := NewVictim(2)
	e := Entry{line(0), 0}
	v.Insert(e)
	if _, over := v.Insert(e); over {
		t.Error("duplicate insert overflowed")
	}
	if v.Len() != 1 {
		t.Errorf("Len = %d, want 1", v.Len())
	}
}

func TestBanksContention(t *testing.T) {
	b := NewBanks(2, 4)
	// Two accesses to the same bank back to back: second queues.
	if d := b.Access(line(0), 100); d != 0 {
		t.Fatalf("first access delay = %d", d)
	}
	if d := b.Access(line(2), 100); d != 4 { // line 2 maps to bank 0 too
		t.Fatalf("queued access delay = %d, want 4", d)
	}
	// Different bank: no delay.
	if d := b.Access(line(1), 100); d != 0 {
		t.Fatalf("other-bank delay = %d", d)
	}
	if b.Conflicts != 1 {
		t.Errorf("Conflicts = %d", b.Conflicts)
	}
	// After the window passes, the bank is free again.
	if d := b.Access(line(0), 200); d != 0 {
		t.Errorf("later access delay = %d", d)
	}
}

func TestBanksValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBanks(0, ...) did not panic")
		}
	}()
	NewBanks(0, 1)
}

func TestLookupLine(t *testing.T) {
	c := New(Config{Name: "t", Sets: 2, Ways: 4})
	l := line(6)
	if c.LookupLine(l) {
		t.Fatal("hit on empty cache")
	}
	c.Insert(Entry{l, 3}, nil) // only a speculative version resident
	if !c.LookupLine(l) {
		t.Fatal("LookupLine missed a resident version")
	}
	if c.Hits != 1 || c.Misses != 1 {
		t.Errorf("stats = %+v", c.Stats)
	}
}

func TestRename(t *testing.T) {
	c := New(Config{Name: "t", Sets: 2, Ways: 4})
	l := line(7)
	spec := Entry{l, 5}
	committed := Entry{l, VerCommitted}
	c.Insert(spec, nil)
	if !c.Rename(spec, committed) {
		t.Fatal("Rename missed resident entry")
	}
	if c.Present(spec) || !c.Present(committed) {
		t.Error("Rename did not retag")
	}
	// Renaming onto an existing entry removes the old one.
	c.Insert(spec, nil)
	if !c.Rename(spec, committed) {
		t.Fatal("Rename-with-existing failed")
	}
	if c.Present(spec) {
		t.Error("old entry survived rename-with-existing")
	}
	if c.SetLen(l) != 1 {
		t.Errorf("SetLen = %d, want 1", c.SetLen(l))
	}
	// Renaming a missing entry reports false.
	if c.Rename(Entry{l, 9}, Entry{l, 10}) {
		t.Error("Rename of absent entry succeeded")
	}
}

func TestRenameAcrossLinesPanics(t *testing.T) {
	c := New(Config{Name: "t", Sets: 2, Ways: 2})
	defer func() {
		if recover() == nil {
			t.Error("cross-line Rename did not panic")
		}
	}()
	c.Rename(Entry{line(0), 0}, Entry{line(1), 0})
}

func TestVictimLookupLine(t *testing.T) {
	v := NewVictim(4)
	l := line(9)
	if v.LookupLine(l) || v.PresentLine(l) {
		t.Fatal("hit in empty victim")
	}
	v.Insert(Entry{l, 2})
	if !v.LookupLine(l) || !v.PresentLine(l) {
		t.Fatal("victim missed resident line")
	}
	if v.PresentLine(line(10)) {
		t.Error("phantom line present")
	}
}

func TestAccessors(t *testing.T) {
	c := New(Config{Name: "t", Sets: 4, Ways: 2})
	if c.Config().Sets != 4 {
		t.Error("Config accessor wrong")
	}
	c.Insert(Entry{line(1), 0}, nil)
	c.Reset()
	if c.Len() != 0 {
		t.Error("Reset left entries")
	}
	if got := (Entry{line(1), VerCommitted}).String(); got != "0x00000020/committed" {
		t.Errorf("committed Entry.String = %q", got)
	}
	if got := (Entry{line(1), 3}).String(); got != "0x00000020/v3" {
		t.Errorf("spec Entry.String = %q", got)
	}
	v := NewVictim(3)
	if v.Capacity() != 3 {
		t.Error("Capacity wrong")
	}
	v.Insert(Entry{line(1), 0})
	if !v.Remove(Entry{line(1), 0}) || v.Remove(Entry{line(1), 0}) {
		t.Error("victim Remove wrong")
	}
	v.Insert(Entry{line(2), 0})
	v.Reset()
	if v.Len() != 0 {
		t.Error("victim Reset left entries")
	}
	b := NewBanks(2, 4)
	b.Access(line(0), 10)
	b.Reset()
	if d := b.Access(line(0), 10); d != 0 {
		t.Errorf("bank Reset did not clear reservations: delay %d", d)
	}
}

func TestVictimFull(t *testing.T) {
	v := NewVictim(2)
	if v.Full() {
		t.Error("empty victim reports full")
	}
	v.Insert(Entry{line(0), 0})
	v.Insert(Entry{line(1), 0})
	if !v.Full() {
		t.Error("full victim reports not-full")
	}
}

func TestVictimLookupMiss(t *testing.T) {
	v := NewVictim(2)
	v.Insert(Entry{line(0), 0})
	if v.Lookup(Entry{line(0), 9}) {
		t.Error("version-mismatched lookup hit")
	}
	if v.Misses != 1 {
		t.Errorf("Misses = %d", v.Misses)
	}
}

func TestVictimNegativeCapacityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative capacity did not panic")
		}
	}()
	NewVictim(-1)
}

func TestVictimClass(t *testing.T) {
	c := New(Config{Name: "t", Sets: 1, Ways: 2})
	classOf := func(e Entry) int {
		if e.Ver == VerCommitted {
			return 0
		}
		return 1
	}
	if got := c.VictimClass(line(0), classOf); got != -1 {
		t.Errorf("empty set VictimClass = %d, want -1 (free way)", got)
	}
	c.Insert(Entry{line(0), 1}, nil)
	c.Insert(Entry{line(1), 2}, nil)
	if got := c.VictimClass(line(2), classOf); got != 1 {
		t.Errorf("all-spec set VictimClass = %d, want 1", got)
	}
	c.Remove(Entry{line(0), 1})
	c.Insert(Entry{line(0), VerCommitted}, nil)
	if got := c.VictimClass(line(2), classOf); got != 0 {
		t.Errorf("mixed set VictimClass = %d, want 0 (committed evictable)", got)
	}
}
