package cpu

import (
	"math/rand"
	"testing"

	"subthreads/internal/isa"
)

func TestDefaultParamsMatchTable1(t *testing.T) {
	p := DefaultParams()
	if p.IssueWidth != 4 {
		t.Errorf("IssueWidth = %d", p.IssueWidth)
	}
	if p.ReorderBuffer != 128 {
		t.Errorf("ReorderBuffer = %d", p.ReorderBuffer)
	}
	if p.BranchHistoryBits != 8 {
		t.Errorf("BranchHistoryBits = %d", p.BranchHistoryBits)
	}
	if p.Lat.IntDiv != 76 {
		t.Errorf("IntDiv latency = %d", p.Lat.IntDiv)
	}
}

func TestGShareLearnsBiasedBranch(t *testing.T) {
	g := NewGShare(10, 8)
	pc := isa.PC(42)
	// An always-taken branch must be predicted nearly perfectly after
	// warm-up.
	for i := 0; i < 64; i++ {
		g.Predict(pc, true)
	}
	g.Reset()
	for i := 0; i < 1000; i++ {
		g.Predict(pc, true)
	}
	if g.Mispredicts != 0 {
		t.Errorf("always-taken branch mispredicted %d times", g.Mispredicts)
	}
}

func TestGShareLearnsAlternatingPattern(t *testing.T) {
	g := NewGShare(12, 8)
	pc := isa.PC(7)
	// Alternating T/NT is captured by global history after warm-up.
	for i := 0; i < 512; i++ {
		g.Predict(pc, i%2 == 0)
	}
	g.Reset()
	for i := 0; i < 1000; i++ {
		g.Predict(pc, i%2 == 0)
	}
	if rate := g.MispredictRate(); rate > 0.02 {
		t.Errorf("alternating pattern mispredict rate = %.3f", rate)
	}
}

func TestGShareRandomBranchNearHalf(t *testing.T) {
	g := NewGShare(12, 8)
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20000; i++ {
		g.Predict(isa.PC(rng.Intn(64)), rng.Intn(2) == 0)
	}
	rate := g.MispredictRate()
	if rate < 0.35 || rate > 0.65 {
		t.Errorf("random branches mispredict rate = %.3f, want ~0.5", rate)
	}
}

func TestGShareDistinguishesPCs(t *testing.T) {
	g := NewGShare(14, 0) // no history: pure per-PC bias
	for i := 0; i < 200; i++ {
		g.Predict(isa.PC(1), true)
		g.Predict(isa.PC(100001), false)
	}
	g.Reset()
	for i := 0; i < 100; i++ {
		g.Predict(isa.PC(1), true)
		g.Predict(isa.PC(100001), false)
	}
	if g.Mispredicts != 0 {
		t.Errorf("two opposite-bias PCs interfered: %d mispredicts", g.Mispredicts)
	}
}

func TestGShareGeometryValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("bad geometry did not panic")
		}
	}()
	NewGShare(0, 8)
}

func TestMispredictRateEmpty(t *testing.T) {
	g := NewGShare(4, 2)
	if g.MispredictRate() != 0 {
		t.Error("empty predictor rate != 0")
	}
}
