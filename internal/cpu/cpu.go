// Package cpu models the processor cores of the simulated CMP: 4-way issue
// machines in the spirit of the paper's modernized MIPS R10000 (Table 1),
// with a GShare branch predictor and the functional-unit latencies from
// internal/isa. The per-cycle issue state machine itself lives in
// internal/sim, which owns the global clock; this package supplies the
// core-local predictive and parametric pieces.
package cpu

import "subthreads/internal/isa"

// Params configures one core (Table 1 pipeline parameters).
type Params struct {
	// IssueWidth is the number of instructions issued per cycle.
	IssueWidth int
	// ReorderBuffer approximates the instruction window: it bounds how far
	// execution can run ahead of a pending long-latency operation. The
	// trace-driven model uses it to overlap a fraction of a cache-miss
	// stall with independent work.
	ReorderBuffer int
	// Lat holds functional-unit latencies.
	Lat isa.Latencies
	// BranchTableBits sizes the GShare counter table (Table 1: 16KB of
	// 2-bit counters = 2^16 entries).
	BranchTableBits int
	// BranchHistoryBits is the global history length (Table 1: 8).
	BranchHistoryBits int
}

// DefaultParams returns the Table 1 core configuration.
func DefaultParams() Params {
	return Params{
		IssueWidth:        4,
		ReorderBuffer:     128,
		Lat:               isa.DefaultLatencies(),
		BranchTableBits:   16,
		BranchHistoryBits: 8,
	}
}

// GShare is the classic global-history XOR branch predictor with 2-bit
// saturating counters.
type GShare struct {
	table   []uint8
	mask    uint32
	history uint32
	histMax uint32

	// Predictions and Mispredicts count outcomes for statistics.
	Predictions uint64
	Mispredicts uint64
}

// NewGShare builds a predictor with 2^tableBits counters and historyBits of
// global history.
func NewGShare(tableBits, historyBits int) *GShare {
	if tableBits < 1 || tableBits > 30 || historyBits < 0 || historyBits > 30 {
		panic("cpu: bad gshare geometry")
	}
	size := 1 << tableBits
	g := &GShare{
		table:   make([]uint8, size),
		mask:    uint32(size - 1),
		histMax: (1 << historyBits) - 1,
	}
	// Initialize counters to weakly taken: real predictors warm up fast,
	// and loop branches (the common case in these workloads) are taken.
	for i := range g.table {
		g.table[i] = 2
	}
	return g
}

func (g *GShare) index(pc isa.PC) uint32 {
	return (uint32(pc)*2654435761 ^ g.history) & g.mask
}

// Predict records an actual branch outcome against the predictor's guess,
// updates the counter and history, and reports whether the prediction was
// correct.
func (g *GShare) Predict(pc isa.PC, taken bool) (correct bool) {
	i := g.index(pc)
	pred := g.table[i] >= 2
	correct = pred == taken
	g.Predictions++
	if !correct {
		g.Mispredicts++
	}
	if taken {
		if g.table[i] < 3 {
			g.table[i]++
		}
	} else if g.table[i] > 0 {
		g.table[i]--
	}
	g.history = ((g.history << 1) | b2u(taken)) & g.histMax
	return correct
}

// MispredictRate reports the fraction of mispredicted branches so far.
func (g *GShare) MispredictRate() float64 {
	if g.Predictions == 0 {
		return 0
	}
	return float64(g.Mispredicts) / float64(g.Predictions)
}

// Reset clears history and statistics but keeps the trained counters,
// matching a context that keeps running across measurement intervals.
func (g *GShare) Reset() {
	g.history = 0
	g.Predictions = 0
	g.Mispredicts = 0
}

func b2u(b bool) uint32 {
	if b {
		return 1
	}
	return 0
}
