package cpu

import "subthreads/internal/snapbin"

// Snapshot codec for the branch predictor: the counter table is serialized
// verbatim (it is trained state, not configuration), plus history and the
// outcome counters. Geometry comes from the restore target's construction.

// AppendState serializes the predictor's trained counters and statistics.
func (g *GShare) AppendState(w *snapbin.Writer) {
	w.Blob(g.table)
	w.Uvarint(uint64(g.history))
	w.Uvarint(g.Predictions)
	w.Uvarint(g.Mispredicts)
}

// RestoreState rebuilds the predictor from r; the table size must match the
// restore target's geometry.
func (g *GShare) RestoreState(r *snapbin.Reader) {
	tbl := r.Blob("gshare table", 1<<30)
	if r.Err() == nil && len(tbl) != len(g.table) {
		r.Failf("gshare: frame table is %d entries, config has %d", len(tbl), len(g.table))
		return
	}
	copy(g.table, tbl)
	g.history = uint32(r.Uvarint("gshare history"))
	g.Predictions = r.Uvarint("gshare predictions")
	g.Mispredicts = r.Uvarint("gshare mispredicts")
}
