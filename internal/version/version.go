// Package version resolves the module's build identity — the module version
// and the VCS revision the Go toolchain embeds in every binary — so all five
// commands can answer -version and the serving daemon can report what code
// produced a result (GET /healthz).
package version

import (
	"runtime"
	"runtime/debug"
)

// Info is the build identity of the running binary.
type Info struct {
	// Module is the main module path ("subthreads").
	Module string `json:"module"`
	// Version is the module version ("(devel)" for local builds).
	Version string `json:"version"`
	// Revision is the VCS commit hash, when the build had one.
	Revision string `json:"revision,omitempty"`
	// Time is the VCS commit time (RFC 3339), when known.
	Time string `json:"time,omitempty"`
	// Modified reports uncommitted changes at build time.
	Modified bool `json:"modified,omitempty"`
	// Go is the toolchain that built the binary.
	Go string `json:"go,omitempty"`
}

// Get reads the build identity via runtime/debug.ReadBuildInfo. It degrades
// gracefully: binaries built without VCS stamping still report the module
// and toolchain.
func Get() Info {
	info := Info{Module: "subthreads", Version: "(devel)"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return info
	}
	info.Go = bi.GoVersion
	if bi.Main.Path != "" {
		info.Module = bi.Main.Path
	}
	if bi.Main.Version != "" {
		info.Version = bi.Main.Version
	}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			info.Revision = s.Value
		case "vcs.time":
			info.Time = s.Value
		case "vcs.modified":
			info.Modified = s.Value == "true"
		}
	}
	return info
}

// String renders the identity on one line, e.g.
// "subthreads (devel) @1a2b3c4d5e6f+dirty go1.22.0".
func (i Info) String() string {
	s := i.Module + " " + i.Version
	if i.Revision != "" {
		rev := i.Revision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		s += " @" + rev
		if i.Modified {
			s += "+dirty"
		}
	}
	if i.Go != "" {
		s += " " + i.Go
	}
	return s
}

// HostInfo is the execution environment stamped into every BENCH_*.json
// artifact, so a regenerated benchmark records what machine and toolchain
// produced its numbers.
type HostInfo struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	CPUs       int    `json:"cpus"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// Host captures the current process's execution environment.
func Host() HostInfo {
	return HostInfo{
		GoVersion:  runtime.Version(),
		OS:         runtime.GOOS,
		Arch:       runtime.GOARCH,
		CPUs:       runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}
