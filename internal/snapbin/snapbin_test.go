package snapbin

import (
	"bytes"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	w := NewWriter(64)
	w.U8(7)
	w.Bool(true)
	w.Bool(false)
	w.U64(0xdeadbeefcafef00d)
	w.Uvarint(300)
	w.Varint(-42)
	w.Int(-1)
	w.Blob([]byte{1, 2, 3})
	w.String("hello")
	w.Raw([]byte("MG"))

	r := NewReader(w.Bytes())
	if got := r.U8("u8"); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if !r.Bool("b1") || r.Bool("b2") {
		t.Errorf("bools wrong")
	}
	if got := r.U64("u64"); got != 0xdeadbeefcafef00d {
		t.Errorf("U64 = %#x", got)
	}
	if got := r.Uvarint("uv"); got != 300 {
		t.Errorf("Uvarint = %d", got)
	}
	if got := r.Varint("v"); got != -42 {
		t.Errorf("Varint = %d", got)
	}
	if got := r.Int("i"); got != -1 {
		t.Errorf("Int = %d", got)
	}
	if got := r.Blob("blob", 16); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Errorf("Blob = %v", got)
	}
	if got := r.String("str", 16); got != "hello" {
		t.Errorf("String = %q", got)
	}
	if got := r.Raw(2, "raw"); !bytes.Equal(got, []byte("MG")) {
		t.Errorf("Raw = %q", got)
	}
	if err := r.Done(); err != nil {
		t.Fatalf("Done: %v", err)
	}
}

func TestStickyError(t *testing.T) {
	r := NewReader([]byte{0x80}) // incomplete varint
	_ = r.Uvarint("first")
	if r.Err() == nil {
		t.Fatal("want error on bad varint")
	}
	first := r.Err()
	// Later reads return zero values and keep the first error.
	if got := r.U64("later"); got != 0 {
		t.Errorf("post-error U64 = %d", got)
	}
	if r.Err() != first {
		t.Errorf("error not sticky")
	}
}

func TestTruncation(t *testing.T) {
	w := NewWriter(8)
	w.Blob([]byte("abcdef"))
	enc := w.Bytes()
	r := NewReader(enc[:3])
	_ = r.Blob("blob", 64)
	if r.Err() == nil {
		t.Fatal("want truncation error")
	}
}

func TestCountCap(t *testing.T) {
	w := NewWriter(8)
	w.Uvarint(1 << 30)
	r := NewReader(w.Bytes())
	_ = r.Count("items", 1024)
	if r.Err() == nil {
		t.Fatal("want cap error")
	}
}

func TestBadBool(t *testing.T) {
	r := NewReader([]byte{2})
	_ = r.Bool("flag")
	if r.Err() == nil {
		t.Fatal("want bad-bool error")
	}
}

func TestTrailing(t *testing.T) {
	r := NewReader([]byte{1, 2})
	_ = r.U8("one")
	if err := r.Done(); err == nil {
		t.Fatal("want trailing-bytes error")
	}
}
