// Package snapbin is the leaf binary codec the whole-machine snapshot layer
// is built from: a Writer that appends fixed-width and varint fields to one
// growing buffer, and a Reader that consumes them with a sticky error, so
// state codecs scattered across cache/cpu/predict/profile/tls/sim can each
// serialize their own unexported state without import cycles and without
// per-field error plumbing. The framing idiom follows workload's Built codec
// (magic + version handled by the caller, uvarints for counts, length caps on
// anything attacker- or corruption-sized).
package snapbin

import (
	"encoding/binary"
	"fmt"
)

// Writer accumulates an encoded frame. The zero value is ready to use;
// NewWriter pre-sizes the buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with capacity pre-allocated.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded frame.
func (w *Writer) Bytes() []byte { return w.buf }

// Len reports the encoded size so far.
func (w *Writer) Len() int { return len(w.buf) }

// Raw appends bytes verbatim (magic strings, pre-encoded sub-frames).
func (w *Writer) Raw(b []byte) { w.buf = append(w.buf, b...) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) { w.buf = append(w.buf, v) }

// Bool appends a bool as one byte.
func (w *Writer) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.buf = append(w.buf, b)
}

// U64 appends a fixed-width little-endian uint64 (float bits, digests).
func (w *Writer) U64(v uint64) {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

// Uvarint appends an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	w.buf = binary.AppendUvarint(w.buf, v)
}

// Varint appends a zig-zag signed varint.
func (w *Writer) Varint(v int64) {
	w.buf = binary.AppendVarint(w.buf, v)
}

// Int appends a signed int as a varint (slot indices, -1 sentinels).
func (w *Writer) Int(v int) { w.Varint(int64(v)) }

// Blob appends a length-prefixed byte string.
func (w *Writer) Blob(b []byte) {
	w.Uvarint(uint64(len(b)))
	w.buf = append(w.buf, b...)
}

// String appends a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

// Reader consumes a frame produced by Writer. The first decode failure
// latches in err; every later read returns a zero value, so codecs read
// straight through and check Err once.
type Reader struct {
	data []byte
	err  error
}

// NewReader wraps data for decoding.
func NewReader(data []byte) *Reader { return &Reader{data: data} }

// Err returns the first decode failure, or nil.
func (r *Reader) Err() error { return r.err }

// Fail latches an error (semantic validation by codecs).
func (r *Reader) Fail(err error) {
	if r.err == nil {
		r.err = err
	}
}

// Failf latches a formatted error.
func (r *Reader) Failf(format string, args ...any) {
	r.Fail(fmt.Errorf(format, args...))
}

// Remaining reports how many bytes are left.
func (r *Reader) Remaining() int { return len(r.data) }

// Raw consumes n bytes verbatim; nil on error or truncation.
func (r *Reader) Raw(n int, field string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || len(r.data) < n {
		r.Failf("truncated %s (want %d bytes, have %d)", field, n, len(r.data))
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

// U8 consumes one byte.
func (r *Reader) U8(field string) uint8 {
	if r.err != nil {
		return 0
	}
	if len(r.data) == 0 {
		r.Failf("truncated %s", field)
		return 0
	}
	v := r.data[0]
	r.data = r.data[1:]
	return v
}

// Bool consumes a one-byte bool; any value other than 0 or 1 is an error.
func (r *Reader) Bool(field string) bool {
	v := r.U8(field)
	if v > 1 {
		r.Failf("bad bool %d for %s", v, field)
		return false
	}
	return v == 1
}

// U64 consumes a fixed-width little-endian uint64.
func (r *Reader) U64(field string) uint64 {
	if r.err != nil {
		return 0
	}
	if len(r.data) < 8 {
		r.Failf("truncated %s", field)
		return 0
	}
	v := binary.LittleEndian.Uint64(r.data)
	r.data = r.data[8:]
	return v
}

// Uvarint consumes an unsigned varint.
func (r *Reader) Uvarint(field string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data)
	if n <= 0 {
		r.Failf("bad varint for %s", field)
		return 0
	}
	r.data = r.data[n:]
	return v
}

// Varint consumes a zig-zag signed varint.
func (r *Reader) Varint(field string) int64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data)
	if n <= 0 {
		r.Failf("bad varint for %s", field)
		return 0
	}
	r.data = r.data[n:]
	return v
}

// Int consumes a signed int encoded by Writer.Int.
func (r *Reader) Int(field string) int { return int(r.Varint(field)) }

// Count consumes an element count and rejects values above max, keeping a
// corrupted-but-well-framed length from forcing a giant allocation.
func (r *Reader) Count(field string, max int) int {
	n := r.Uvarint(field)
	if r.err != nil {
		return 0
	}
	if n > uint64(max) {
		r.Failf("implausible %s count %d (cap %d)", field, n, max)
		return 0
	}
	return int(n)
}

// Blob consumes a length-prefixed byte string of at most max bytes. The
// returned slice aliases the frame.
func (r *Reader) Blob(field string, max int) []byte {
	n := r.Count(field+" length", max)
	return r.Raw(n, field)
}

// String consumes a length-prefixed string of at most max bytes.
func (r *Reader) String(field string, max int) string {
	return string(r.Blob(field, max))
}

// Done verifies the frame was fully consumed.
func (r *Reader) Done() error {
	if r.err != nil {
		return r.err
	}
	if len(r.data) != 0 {
		return fmt.Errorf("%d trailing bytes after frame", len(r.data))
	}
	return nil
}
