package sim

import (
	"testing"

	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/tls"
	"subthreads/internal/trace"
)

// testConfig returns a small machine so tests run fast: tiny caches keep the
// interesting protocol paths exercised.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.TLS.L2Sets = 256
	cfg.TLS.L2Ways = 4
	cfg.TLS.VictimEntries = 16
	cfg.Mem.L1Sets = 16
	return cfg
}

// aluTrace builds a pure-compute trace of n instructions.
func aluTrace(n uint32) *trace.Trace {
	b := trace.NewBuilder()
	b.ALU(n)
	return b.Finish()
}

// consumerTrace loads addr after prefix ALU instructions, then runs suffix
// more.
func consumerTrace(prefix uint32, addr mem.Addr, pc isa.PC, suffix uint32) *trace.Trace {
	b := trace.NewBuilder()
	b.ALU(prefix)
	b.Load(pc, addr)
	b.ALU(suffix)
	return b.Finish()
}

// producerTrace stores to addr after prefix ALU instructions, then runs
// suffix more.
func producerTrace(prefix uint32, addr mem.Addr, pc isa.PC, suffix uint32) *trace.Trace {
	b := trace.NewBuilder()
	b.ALU(prefix)
	b.Store(pc, addr)
	b.ALU(suffix)
	return b.Finish()
}

func run(t *testing.T, cfg Config, units ...Unit) *Result {
	t.Helper()
	res := Run(cfg, &Program{Units: units})
	checkInvariants(t, cfg, res)
	return res
}

// checkInvariants validates the global accounting identity: the breakdown
// must exactly cover CPUs x cycles.
func checkInvariants(t *testing.T, cfg Config, res *Result) {
	t.Helper()
	want := uint64(cfg.CPUs) * res.Cycles
	if got := res.Breakdown.Total(); got != want {
		t.Fatalf("breakdown total = %d, want CPUs*cycles = %d (breakdown %v)", got, want, res.Breakdown)
	}
}

func TestSerialExecution(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 1
	res := run(t, cfg, Unit{Trace: aluTrace(4000), Barrier: true})
	// 4-wide issue: at least 1000 cycles, plus commit overhead.
	if res.Cycles < 1000 || res.Cycles > 1200 {
		t.Errorf("Cycles = %d, want ~1000", res.Cycles)
	}
	if res.CommittedInstrs != 4000 {
		t.Errorf("CommittedInstrs = %d", res.CommittedInstrs)
	}
	if res.TLS.Commits != 1 {
		t.Errorf("Commits = %d", res.TLS.Commits)
	}
}

func TestIndependentEpochsRunInParallel(t *testing.T) {
	cfg := testConfig()
	// Four big independent epochs on 4 CPUs: near-4x speedup.
	seq := cfg
	seq.CPUs = 1
	var units []Unit
	for i := 0; i < 4; i++ {
		units = append(units, Unit{Trace: aluTrace(40000)})
	}
	serial := run(t, seq, units...)
	parallel := run(t, cfg, units...)
	sp := parallel.Speedup(serial)
	if sp < 3.5 || sp > 4.2 {
		t.Errorf("speedup = %.2f, want ~4", sp)
	}
}

func TestIdleAccountedWhenFewerEpochsThanCPUs(t *testing.T) {
	cfg := testConfig()
	res := run(t, cfg, Unit{Trace: aluTrace(40000)})
	// 3 of 4 CPUs idle: idle is roughly 3/4 of all CPU-cycles.
	frac := float64(res.Breakdown[Idle]) / float64(res.Breakdown.Total())
	if frac < 0.70 || frac > 0.80 {
		t.Errorf("idle fraction = %.2f, want ~0.75", frac)
	}
}

func TestViolationForcesReexecution(t *testing.T) {
	cfg := testConfig()
	cfg.SubthreadSpacing = 0 // all-or-nothing
	cfg.TLS.SubthreadsPerEpoch = 1
	a := mem.Addr(0x1000)
	// Epoch 0 stores to a LATE; epoch 1 loads it EARLY: guaranteed
	// violation and full rewind of epoch 1.
	units := []Unit{
		{Trace: producerTrace(20000, a, 1, 100)},
		{Trace: consumerTrace(100, a, 2, 20000)},
	}
	res := run(t, cfg, units...)
	if res.TLS.PrimaryViolations == 0 {
		t.Fatal("no violation detected")
	}
	if res.Breakdown[Failed] == 0 {
		t.Error("no failed-speculation cycles accounted")
	}
	if res.RewoundInstrs == 0 {
		t.Error("no rewound instructions counted")
	}
	if res.CommittedInstrs != units[0].Trace.Instrs()+units[1].Trace.Instrs() {
		t.Errorf("CommittedInstrs = %d", res.CommittedInstrs)
	}
}

func TestSubthreadsReduceFailedCycles(t *testing.T) {
	// The paper's headline mechanism: with a late dependent load, the
	// violation rewinds to the sub-thread checkpoint instead of the epoch
	// start, so failed cycles (and total time) shrink.
	a := mem.Addr(0x2000)
	units := []Unit{
		{Trace: producerTrace(30000, a, 1, 100)},
		{Trace: consumerTrace(25000, a, 2, 8000)},
	}

	allOrNothing := testConfig()
	allOrNothing.SubthreadSpacing = 0
	allOrNothing.TLS.SubthreadsPerEpoch = 1
	resAON := run(t, allOrNothing, units...)

	subthreads := testConfig() // 8 contexts, 5000-instruction spacing
	resST := run(t, subthreads, units...)

	if resAON.TLS.PrimaryViolations == 0 || resST.TLS.PrimaryViolations == 0 {
		t.Fatalf("violations: AON=%d ST=%d (scenario broken)",
			resAON.TLS.PrimaryViolations, resST.TLS.PrimaryViolations)
	}
	if resST.RewoundInstrs >= resAON.RewoundInstrs {
		t.Errorf("sub-threads rewound %d instrs, all-or-nothing %d — want strictly less",
			resST.RewoundInstrs, resAON.RewoundInstrs)
	}
	if resST.Cycles >= resAON.Cycles {
		t.Errorf("sub-threads %d cycles, all-or-nothing %d — want faster", resST.Cycles, resAON.Cycles)
	}
	if resST.TLS.SubthreadStarts == 0 {
		t.Error("no sub-threads started")
	}
}

func TestNoSpeculationIgnoresDependences(t *testing.T) {
	cfg := testConfig()
	cfg.TLS.SpeculationOff = true
	a := mem.Addr(0x3000)
	units := []Unit{
		{Trace: producerTrace(20000, a, 1, 100)},
		{Trace: consumerTrace(100, a, 2, 20000)},
	}
	res := run(t, cfg, units...)
	if res.TLS.PrimaryViolations != 0 || res.Breakdown[Failed] != 0 {
		t.Errorf("NO SPECULATION mode had violations: %+v", res.TLS)
	}
}

func TestBarrierSerializes(t *testing.T) {
	cfg := testConfig()
	// epoch, barrier, epoch: the last epoch must not start until the
	// barrier commits, so total time is at least the sum of barrier +
	// one epoch.
	units := []Unit{
		{Trace: aluTrace(8000)},
		{Trace: aluTrace(8000), Barrier: true},
		{Trace: aluTrace(8000)},
	}
	res := run(t, cfg, units...)
	// 3 units of 2000 cycles each, fully serialized by the barrier
	// semantics: epoch0 || nothing, then barrier, then epoch2.
	if res.Cycles < 5500 {
		t.Errorf("Cycles = %d; barrier did not serialize (expected ~6000)", res.Cycles)
	}
}

func TestLatchContentionStalls(t *testing.T) {
	cfg := testConfig()
	l := mem.Addr(0x4000)
	mk := func() *trace.Trace {
		b := trace.NewBuilder()
		b.ALU(100)
		b.LatchAcquire(1, l)
		b.ALU(20000)
		b.LatchRelease(2, l)
		b.ALU(100)
		return b.Finish()
	}
	res := run(t, cfg, Unit{Trace: mk()}, Unit{Trace: mk()})
	if res.Breakdown[Sync] == 0 {
		t.Error("contended latch produced no sync stalls")
	}
	if res.TLS.Commits != 2 {
		t.Errorf("Commits = %d", res.TLS.Commits)
	}
}

func TestPredictorSynchronizes(t *testing.T) {
	cfg := testConfig()
	cfg.UsePredictor = true
	cfg.SubthreadSpacing = 0
	cfg.TLS.SubthreadsPerEpoch = 1
	a := mem.Addr(0x5000)
	// Same dependence pattern repeated: the predictor trains on the first
	// violations and synchronizes later instances.
	var units []Unit
	for i := 0; i < 8; i++ {
		units = append(units, Unit{Trace: producerTrace(10000, a, 1, 5000)})
		units = append(units, Unit{Trace: consumerTrace(100, a, 2, 15000)})
	}
	res := run(t, cfg, units...)
	if res.PredictorSyncs == 0 {
		t.Error("predictor never synchronized")
	}
}

func TestCacheMissCyclesAppear(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 1
	// Touch many distinct lines: cold misses must show up as CacheMiss.
	b := trace.NewBuilder()
	for i := 0; i < 2000; i++ {
		b.Load(1, mem.Addr(0x10000+i*mem.LineSize))
		b.ALU(3)
	}
	res := run(t, cfg, Unit{Trace: b.Finish(), Barrier: true})
	if res.Breakdown[CacheMiss] == 0 {
		t.Error("no cache-miss cycles")
	}
	if res.L2Misses == 0 || res.MemAccesses == 0 {
		t.Errorf("L2Misses=%d MemAccesses=%d", res.L2Misses, res.MemAccesses)
	}
}

func TestBranchPredictionCharged(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 1
	b := trace.NewBuilder()
	for i := 0; i < 1000; i++ {
		b.ALU(3)
		b.Branch(isa.PC(i%7), i%3 == 0) // hard-to-predict pattern
	}
	res := run(t, cfg, Unit{Trace: b.Finish(), Barrier: true})
	if res.Branches != 1000 {
		t.Errorf("Branches = %d", res.Branches)
	}
	if res.Mispredicts == 0 {
		t.Error("no mispredicts on an irregular pattern")
	}
}

func TestLongLatencyOpsStall(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 1
	b := trace.NewBuilder()
	for i := 0; i < 100; i++ {
		b.Op(isa.IntDiv) // 76 cycles each
	}
	res := run(t, cfg, Unit{Trace: b.Finish(), Barrier: true})
	if res.Cycles < 7600 {
		t.Errorf("Cycles = %d, want >= 7600 (100 divides)", res.Cycles)
	}
}

func TestForwardingAvoidsViolation(t *testing.T) {
	cfg := testConfig()
	a := mem.Addr(0x6000)
	// Producer stores early, consumer loads late: the value is forwarded
	// through the L2 and no violation occurs.
	units := []Unit{
		{Trace: producerTrace(100, a, 1, 20000)},
		{Trace: consumerTrace(20000, a, 2, 100)},
	}
	res := run(t, cfg, units...)
	if res.TLS.PrimaryViolations != 0 {
		t.Errorf("forwarded dependence still violated %d times", res.TLS.PrimaryViolations)
	}
}

func TestProfilerAttributesDependence(t *testing.T) {
	cfg := testConfig()
	cfg.SubthreadSpacing = 0
	cfg.TLS.SubthreadsPerEpoch = 1
	a := mem.Addr(0x7000)
	loadPC, storePC := isa.PC(11), isa.PC(22)
	units := []Unit{
		{Trace: producerTrace(20000, a, storePC, 100)},
		{Trace: consumerTrace(100, a, loadPC, 20000)},
	}
	res := run(t, cfg, units...)
	top := res.Pairs.Top(1)
	if len(top) == 0 {
		t.Fatal("profiler recorded nothing")
	}
	if top[0].LoadPC != loadPC || top[0].StorePC != storePC {
		t.Errorf("top pair = %+v, want load=%d store=%d", top[0], loadPC, storePC)
	}
	if top[0].FailedCycles == 0 {
		t.Error("no failed cycles attributed")
	}
}

func TestManyEpochsRoundRobin(t *testing.T) {
	cfg := testConfig()
	var units []Unit
	var want uint64
	for i := 0; i < 20; i++ {
		tr := aluTrace(uint32(3000 + i*100))
		want += tr.Instrs()
		units = append(units, Unit{Trace: tr})
	}
	res := run(t, cfg, units...)
	if res.CommittedInstrs != want {
		t.Errorf("CommittedInstrs = %d, want %d", res.CommittedInstrs, want)
	}
	if res.EpochCount != 20 {
		t.Errorf("EpochCount = %d", res.EpochCount)
	}
	if res.TLS.Commits != 20 {
		t.Errorf("Commits = %d", res.TLS.Commits)
	}
}

func TestNormalizedBreakdown(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 1
	res := run(t, cfg, Unit{Trace: aluTrace(4000), Barrier: true})
	norm := res.NormalizedBreakdown(res.Cycles, 4)
	var sum float64
	for _, v := range norm {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("normalized breakdown sums to %.4f, want 1.0", sum)
	}
	if norm[Idle] < 0.74 || norm[Idle] > 0.76 {
		t.Errorf("idle = %.3f, want ~0.75 (3 of 4 CPUs idle)", norm[Idle])
	}
}

func TestRepeatedViolationsConverge(t *testing.T) {
	// A chain of epochs all loading then storing the same address — the
	// classic serializing dependence. The run must terminate with all
	// work committed.
	cfg := testConfig()
	a := mem.Addr(0x8000)
	mk := func() *trace.Trace {
		b := trace.NewBuilder()
		b.ALU(2000)
		b.Load(1, a)
		b.ALU(2000)
		b.Store(2, a)
		b.ALU(2000)
		return b.Finish()
	}
	var units []Unit
	for i := 0; i < 12; i++ {
		units = append(units, Unit{Trace: mk()})
	}
	res := run(t, cfg, units...)
	if res.TLS.Commits != 12 {
		t.Fatalf("Commits = %d, want 12", res.TLS.Commits)
	}
	if res.TLS.PrimaryViolations == 0 {
		t.Error("serializing chain produced no violations")
	}
}

func TestLatchDeadlockBroken(t *testing.T) {
	cfg := testConfig()
	cfg.LatchDeadlockCycles = 500
	la, lb := mem.Addr(0x9000), mem.Addr(0x9100)
	// Epoch 0 takes B then A; epoch 1 takes A then B: a classic cycle.
	mk := func(first, second mem.Addr) *trace.Trace {
		b := trace.NewBuilder()
		b.ALU(100)
		b.LatchAcquire(1, first)
		b.ALU(400)
		b.LatchAcquire(2, second)
		b.ALU(400)
		b.LatchRelease(3, second)
		b.LatchRelease(4, first)
		b.ALU(100)
		return b.Finish()
	}
	res := run(t, cfg, Unit{Trace: mk(lb, la)}, Unit{Trace: mk(la, lb)})
	if res.TLS.Commits != 2 {
		t.Fatalf("Commits = %d; deadlock not resolved", res.TLS.Commits)
	}
	if res.LatchDeadlockBreaks == 0 {
		t.Error("no deadlock break recorded despite circular latch wait")
	}
}

func TestOverflowSquashInFullSim(t *testing.T) {
	cfg := testConfig()
	cfg.TLS.OverflowPolicy = tls.OverflowSquash
	cfg.TLS.L2Sets = 1 // every line collides in one set
	cfg.TLS.L2Ways = 2
	cfg.TLS.VictimEntries = 2
	// A speculative epoch stores to many distinct lines: its versions
	// cannot all be buffered.
	b := trace.NewBuilder()
	for i := 0; i < 64; i++ {
		b.Store(1, mem.Addr(0x20000+i*mem.LineSize))
		b.ALU(50)
	}
	units := []Unit{
		{Trace: aluTrace(40000)}, // keeps the storer speculative
		{Trace: b.Finish()},
	}
	res := run(t, cfg, units...)
	if res.TLS.OverflowSquashes == 0 {
		t.Error("no overflow squashes despite tiny speculative buffering")
	}
	if res.TLS.Commits != 2 {
		t.Errorf("Commits = %d; run did not converge", res.TLS.Commits)
	}
}

func TestOverflowStallInFullSim(t *testing.T) {
	cfg := testConfig() // default policy: OverflowStall
	cfg.TLS.L2Sets = 1
	cfg.TLS.L2Ways = 2
	cfg.TLS.VictimEntries = 2
	b := trace.NewBuilder()
	for i := 0; i < 64; i++ {
		b.Store(1, mem.Addr(0x30000+i*mem.LineSize))
		b.ALU(50)
	}
	units := []Unit{
		{Trace: aluTrace(40000)},
		{Trace: b.Finish()},
	}
	res := run(t, cfg, units...)
	if res.OverflowWaits == 0 {
		t.Error("no overflow stalls despite tiny speculative buffering")
	}
	if res.TLS.OverflowSquashes != 0 {
		t.Errorf("stall policy squashed %d times", res.TLS.OverflowSquashes)
	}
	if res.TLS.Commits != 2 {
		t.Errorf("Commits = %d; run did not converge", res.TLS.Commits)
	}
	if res.Breakdown[Sync] == 0 {
		t.Error("overflow stalls not accounted as sync")
	}
}

func TestSubthreadSpawningStopsWhenHomefree(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 1
	// A single epoch is always the oldest: it must never spawn
	// sub-threads (checkpointing a non-speculative thread is pointless).
	res := run(t, cfg, Unit{Trace: aluTrace(50000)})
	if res.TLS.SubthreadStarts != 0 {
		t.Errorf("homefree epoch started %d sub-threads", res.TLS.SubthreadStarts)
	}
}

func TestViolationPenaltyCharged(t *testing.T) {
	cfg := testConfig()
	cfg.ViolationPenalty = 500
	cfg.SubthreadSpacing = 0
	cfg.TLS.SubthreadsPerEpoch = 1
	a := mem.Addr(0xa000)
	units := []Unit{
		{Trace: producerTrace(20000, a, 1, 100)},
		{Trace: consumerTrace(100, a, 2, 20000)},
	}
	res := run(t, cfg, units...)
	if res.TLS.PrimaryViolations == 0 {
		t.Fatal("scenario broken: no violation")
	}
	if res.Breakdown[Failed] < 500 {
		t.Errorf("Failed = %d; recovery penalty not charged", res.Breakdown[Failed])
	}
}

func TestNormalizedBreakdownPadsSmallMachines(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 2
	res := run(t, cfg, Unit{Trace: aluTrace(8000)}, Unit{Trace: aluTrace(8000)})
	norm := res.NormalizedBreakdown(res.Cycles, 4)
	var sum float64
	for _, v := range norm {
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("2-CPU run normalized to 4 CPUs sums to %.4f", sum)
	}
	if norm[Idle] < 0.45 {
		t.Errorf("idle = %.2f; the two absent CPUs must be padded as idle", norm[Idle])
	}
}

func TestAdaptiveSpacingDividesThreadEvenly(t *testing.T) {
	cfg := testConfig()
	cfg.Spawn = SpawnAdaptive
	// One big speculative epoch behind a long-running predecessor: with
	// adaptive spacing it must consume all 8 contexts spread over the
	// whole thread, not just the first 40k instructions.
	units := []Unit{
		{Trace: aluTrace(200000)},
		{Trace: aluTrace(160000)},
	}
	res := run(t, cfg, units...)
	if res.TLS.SubthreadStarts != 7 {
		t.Errorf("adaptive spawns = %d, want 7 (8 contexts across the thread)",
			res.TLS.SubthreadStarts)
	}
}

func TestPredictorGuidedSpawning(t *testing.T) {
	cfg := testConfig()
	cfg.Spawn = SpawnPredictor
	cfg.TLS.SubthreadsPerEpoch = 2 // §5.1: 2 contexts suffice with prediction
	a := mem.Addr(0xb000)
	// A serializing chain: every epoch loads then stores the same word at
	// the same position. After the first violations train the predictor,
	// every epoch checkpoints right before the troublesome load, so
	// rewinds become tiny.
	mk := func() *trace.Trace {
		b := trace.NewBuilder()
		b.ALU(15000)
		b.Load(2, a)
		b.ALU(3000)
		b.Store(1, a)
		b.ALU(4000)
		return b.Finish()
	}
	var units []Unit
	for i := 0; i < 12; i++ {
		units = append(units, Unit{Trace: mk()})
	}
	res := run(t, cfg, units...)
	if res.TLS.SubthreadStarts == 0 {
		t.Fatal("predictor-guided policy never spawned")
	}
	// Compare against all-or-nothing: the guided checkpoints must cut
	// the rewound work substantially.
	aon := cfg
	aon.Spawn = SpawnPeriodic
	aon.SubthreadSpacing = 0
	aon.TLS.SubthreadsPerEpoch = 1
	resAON := run(t, aon, units...)
	if res.RewoundInstrs*2 >= resAON.RewoundInstrs {
		t.Errorf("predictor-guided rewound %d instrs vs all-or-nothing %d; want < half",
			res.RewoundInstrs, resAON.RewoundInstrs)
	}
}

func TestRegBackupPenaltyCharged(t *testing.T) {
	base := testConfig()
	units := func() []Unit {
		return []Unit{{Trace: aluTrace(100000)}, {Trace: aluTrace(100000)}}
	}
	fast := run(t, base, units()...)
	slow := base
	slow.RegBackupPenalty = 1000
	res := run(t, slow, units()...)
	if res.TLS.SubthreadStarts == 0 {
		t.Fatal("no spawns to charge")
	}
	minExtra := res.TLS.SubthreadStarts * 900 / 4 // per-CPU serialization, rough bound
	if res.Cycles < fast.Cycles+minExtra/4 {
		t.Errorf("register backup cost not visible: %d vs %d cycles (spawns=%d)",
			res.Cycles, fast.Cycles, res.TLS.SubthreadStarts)
	}
}

func TestL1SubthreadTrackingReducesInvalidations(t *testing.T) {
	a := mem.Addr(0xc000)
	units := func() []Unit {
		// The consumer stores to many private lines early (ctx 0..1),
		// then suffers a late violation: without L1 tracking all those
		// lines are invalidated, with it only the late contexts'.
		b := trace.NewBuilder()
		for i := 0; i < 64; i++ {
			b.Store(3, mem.Addr(0xd000+i*mem.LineSize))
			b.ALU(100)
		}
		b.ALU(18000)
		b.Load(2, a)
		b.ALU(4000)
		return []Unit{
			{Trace: producerTrace(28000, a, 1, 1000)},
			{Trace: b.Finish()},
		}
	}
	off := testConfig()
	resOff := run(t, off, units()...)
	on := testConfig()
	on.L1SubthreadTracking = true
	resOn := run(t, on, units()...)
	if resOff.TLS.PrimaryViolations == 0 || resOn.TLS.PrimaryViolations == 0 {
		t.Fatalf("scenario broken: violations %d / %d",
			resOff.TLS.PrimaryViolations, resOn.TLS.PrimaryViolations)
	}
	if resOn.L1Invalidations >= resOff.L1Invalidations {
		t.Errorf("L1 tracking did not reduce invalidations: %d vs %d",
			resOn.L1Invalidations, resOff.L1Invalidations)
	}
}

func TestSpawnPolicyStrings(t *testing.T) {
	if SpawnPeriodic.String() != "periodic" || SpawnAdaptive.String() != "adaptive" ||
		SpawnPredictor.String() != "predictor-guided" {
		t.Error("spawn policy names wrong")
	}
}

func TestNonBlockingLoadsHideMissLatency(t *testing.T) {
	// Loads to distinct cold lines separated by plenty of compute: with
	// blocking loads every miss stalls; with run-ahead the compute hides
	// most of the latency.
	mk := func() *trace.Trace {
		b := trace.NewBuilder()
		for i := 0; i < 200; i++ {
			b.Load(1, mem.Addr(0x40000+i*mem.LineSize))
			b.ALU(120) // < ReorderBuffer, so the window never fills
		}
		return b.Finish()
	}
	blocking := testConfig()
	blocking.CPUs = 1
	resBlock := run(t, blocking, Unit{Trace: mk(), Barrier: true})
	mlp := blocking
	mlp.NonBlockingLoads = true
	resMLP := run(t, mlp, Unit{Trace: mk(), Barrier: true})
	if resMLP.Cycles >= resBlock.Cycles {
		t.Errorf("non-blocking loads did not help: %d vs %d cycles", resMLP.Cycles, resBlock.Cycles)
	}
	// The reorder buffer still bounds run-ahead: back-to-back misses with
	// no compute cannot all overlap.
	dense := trace.NewBuilder()
	for i := 0; i < 200; i++ {
		dense.Load(1, mem.Addr(0x80000+i*mem.LineSize))
		dense.ALU(2)
	}
	resDense := run(t, mlp, Unit{Trace: dense.Finish(), Barrier: true})
	if resDense.Cycles*4 < resBlock.Cycles {
		t.Errorf("dense misses too cheap under MLP: %d cycles", resDense.Cycles)
	}
}

func TestStoreMissesDoNotStallCore(t *testing.T) {
	// Stores go through the store buffer: a stream of store misses must
	// not pay per-miss stalls the way load misses do.
	mkLoads := trace.NewBuilder()
	mkStores := trace.NewBuilder()
	for i := 0; i < 500; i++ {
		mkLoads.Load(1, mem.Addr(0x50000+i*mem.LineSize))
		mkLoads.ALU(3)
		mkStores.Store(1, mem.Addr(0x60000+i*mem.LineSize))
		mkStores.ALU(3)
	}
	cfg := testConfig()
	cfg.CPUs = 1
	loads := run(t, cfg, Unit{Trace: mkLoads.Finish(), Barrier: true})
	stores := run(t, cfg, Unit{Trace: mkStores.Finish(), Barrier: true})
	if stores.Cycles*2 >= loads.Cycles {
		t.Errorf("store misses stalled like load misses: %d vs %d cycles",
			stores.Cycles, loads.Cycles)
	}
}

func TestMemoryBandwidthThrottles(t *testing.T) {
	// Four cores streaming cold misses contend on the single memory
	// channel: total time must exceed a single core's run scaled by 4x
	// the ideal.
	mk := func(base int) *trace.Trace {
		b := trace.NewBuilder()
		for i := 0; i < 500; i++ {
			b.Load(1, mem.Addr(base+i*mem.LineSize))
			b.ALU(2)
		}
		return b.Finish()
	}
	cfg := testConfig()
	cfg.Mem.MemOccupancy = 60 // narrow channel
	var units []Unit
	for i := 0; i < 4; i++ {
		units = append(units, Unit{Trace: mk(0x100000 + i*0x100000)})
	}
	narrow := run(t, cfg, units...)
	cfg.Mem.MemOccupancy = 1
	wide := run(t, cfg, units...)
	if narrow.Cycles <= wide.Cycles {
		t.Errorf("memory bandwidth model inert: narrow %d vs wide %d", narrow.Cycles, wide.Cycles)
	}
}

func TestCommitPenaltyAccounted(t *testing.T) {
	cfg := testConfig()
	cfg.CPUs = 1
	cfg.CommitPenalty = 0
	fast := run(t, cfg, Unit{Trace: aluTrace(4000), Barrier: true}, Unit{Trace: aluTrace(4000), Barrier: true})
	cfg.CommitPenalty = 500
	slow := run(t, cfg, Unit{Trace: aluTrace(4000), Barrier: true}, Unit{Trace: aluTrace(4000), Barrier: true})
	// Only the first commit's penalty is on the critical path (the run
	// ends at the last commit, before its post-commit stall elapses).
	if slow.Cycles < fast.Cycles+499 {
		t.Errorf("commit penalty not charged: %d vs %d", slow.Cycles, fast.Cycles)
	}
}

func TestSpeculativeStoreForwardingAcrossThreeEpochs(t *testing.T) {
	// Epoch 0 produces, epoch 2 consumes: the value forwards through the
	// L2 across a gap of one unrelated epoch without violations.
	a := mem.Addr(0xe000)
	units := []Unit{
		{Trace: producerTrace(100, a, 1, 30000)},
		{Trace: aluTrace(20000)},
		{Trace: consumerTrace(25000, a, 2, 100)},
	}
	res := run(t, testConfig(), units...)
	if res.TLS.PrimaryViolations != 0 {
		t.Errorf("forwarded chain violated %d times", res.TLS.PrimaryViolations)
	}
	if res.TLS.Commits != 3 {
		t.Errorf("Commits = %d", res.TLS.Commits)
	}
}

func TestICacheModel(t *testing.T) {
	// A program hopping across many distinct sites has an instruction
	// working set; with the I-cache model on, fetches hit after warm-up
	// for a small footprint and miss for a large one.
	mk := func(sites int) *trace.Trace {
		b := trace.NewBuilder()
		for rep := 0; rep < 50; rep++ {
			for s := 1; s <= sites; s++ {
				b.Branch(isa.PC(s), true)
				b.ALU(40)
			}
		}
		return b.Finish()
	}
	cfg := testConfig()
	cfg.CPUs = 1
	cfg.Mem.ModelICache = true
	cfg.Mem.L1ISets = 8 // 1KB I-cache: 32 lines
	cfg.Mem.L1IWays = 4

	small := run(t, cfg, Unit{Trace: mk(4), Barrier: true}) // 16-line footprint: fits
	big := run(t, cfg, Unit{Trace: mk(64), Barrier: true})  // 256-line footprint: thrashes

	if small.L1IHits == 0 || big.L1IMisses == 0 {
		t.Fatalf("ifetch counters dead: small hits=%d big misses=%d", small.L1IHits, big.L1IMisses)
	}
	smallRate := float64(small.L1IMisses) / float64(small.L1IHits+small.L1IMisses)
	bigRate := float64(big.L1IMisses) / float64(big.L1IHits+big.L1IMisses)
	if bigRate <= smallRate*2 {
		t.Errorf("I-miss rates: small %.3f, big %.3f — footprint not captured", smallRate, bigRate)
	}

	// The model off: no I counters, faster run.
	cfg.Mem.ModelICache = false
	off := run(t, cfg, Unit{Trace: mk(64), Barrier: true})
	if off.L1IHits != 0 || off.L1IMisses != 0 {
		t.Error("I-cache counters active while disabled")
	}
	if off.Cycles >= big.Cycles {
		t.Errorf("I-cache model cost nothing: %d vs %d", big.Cycles, off.Cycles)
	}
}
