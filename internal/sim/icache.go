package sim

import (
	"subthreads/internal/cache"
	"subthreads/internal/isa"
	"subthreads/internal/mem"
)

// Instruction-fetch model (optional, MemParams.ModelICache).
//
// Recorded traces carry data addresses but no code addresses, so the fetch
// stream is synthesized from the instrumentation-site PCs the events do
// carry: each static site owns a small code footprint (a handful of lines),
// fetch walks the current site's footprint sequentially as instructions
// issue, and a PC change is a transfer to another site's footprint. Database
// code famously has a large instruction working set (the paper cites
// Keeton's thesis); with hundreds of sites per transaction the synthetic
// footprint exceeds the 32KB L1I exactly the way real engine code does.

// iCodeBase places synthetic code high in the address space, far from data.
const iCodeBase = mem.Addr(0xC0000000)

// iSiteLines is each site's code footprint in cache lines (4 lines = 32
// instructions at 4 bytes each — a small basic-block cluster).
const iSiteLines = 4

// iFetchGroup is how many instructions one fetched line supplies.
const iFetchGroup = 8

type ifetcher struct {
	l1i      *cache.Cache
	curSite  isa.PC
	curLine  int
	sinceFet uint32
}

func newIFetcher(p MemParams) *ifetcher {
	return &ifetcher{
		l1i: cache.New(cache.Config{
			Name: "L1i",
			Sets: p.L1ISets,
			Ways: p.L1IWays,
		}),
	}
}

func siteLine(pc isa.PC, n int) mem.Addr {
	return iCodeBase + mem.Addr(pc)*iSiteLines*mem.LineSize + mem.Addr(n)*mem.LineSize
}

// fetch accounts the instruction fetch for an event of n instructions at pc
// (0 = continuation of the current site) and returns the front-end stall
// cycles its misses cost.
func (f *ifetcher) fetch(m *machine, pc isa.PC, n uint32) uint64 {
	var stall uint64
	if pc != 0 && pc != f.curSite {
		// Transfer to another site's footprint.
		f.curSite = pc
		f.curLine = 0
		f.sinceFet = 0
		stall += f.access(m, siteLine(pc, 0))
	}
	f.sinceFet += n
	for f.sinceFet >= iFetchGroup {
		f.sinceFet -= iFetchGroup
		f.curLine = (f.curLine + 1) % iSiteLines
		stall += f.access(m, siteLine(f.curSite, f.curLine))
	}
	return stall
}

// access looks the line up in the L1I; misses cost the L2 latency (code is
// read-only and L2-resident after its first-ever touch, which costs memory
// latency).
func (f *ifetcher) access(m *machine, line mem.Addr) uint64 {
	if f.l1i.Lookup(cache.Entry{Line: line, Ver: 0}) {
		m.res.L1IHits++
		return 0
	}
	m.res.L1IMisses++
	f.l1i.Insert(cache.Entry{Line: line, Ver: 0}, nil)
	lat := m.cfg.Mem.L2HitLat
	if !m.iTouched[line] {
		// First-ever touch anywhere on the chip: the code line comes
		// from memory; thereafter it is L2 resident (code is shared
		// and read-only).
		m.iTouched[line] = true
		lat += m.cfg.Mem.MemLat
	}
	return lat
}
