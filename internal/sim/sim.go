// Package sim is the chip-multiprocessor simulator: 4 cores (Table 1)
// sharing a TLS-capable L2 (internal/tls), driven cycle by cycle over the
// traces recorded by the workload substrate. It produces the execution-time
// breakdowns of Figure 5 (Idle / Failed / Latch-stall / Cache-miss / Busy)
// and all the protocol statistics the evaluation section reports.
package sim

import (
	"fmt"

	"subthreads/internal/cpu"
	"subthreads/internal/profile"
	"subthreads/internal/telemetry"
	"subthreads/internal/tls"
	"subthreads/internal/trace"
)

// Category classifies where a CPU cycle went, matching the bar segments of
// Figure 5.
type Category int

const (
	// Busy: executing code that was (or will be) committed.
	Busy Category = iota
	// CacheMiss: stalled on the memory hierarchy.
	CacheMiss
	// Sync: stalled awaiting synchronization during escaped speculation
	// (latch stalls) or predictor-driven synchronization.
	Sync
	// Failed: executed code that was later undone by a violation,
	// including all time spent executing failed code and recovery.
	Failed
	// Idle: no work available for this CPU.
	Idle
	// NumCategories is the number of cycle categories.
	NumCategories
)

var categoryNames = [...]string{"Busy", "CacheMiss", "Sync", "Failed", "Idle"}

func (c Category) String() string {
	if int(c) < len(categoryNames) {
		return categoryNames[c]
	}
	return fmt.Sprintf("cat(%d)", int(c))
}

// Breakdown accumulates CPU-cycles per category; the entries sum to
// (elapsed cycles) x (number of CPUs).
type Breakdown [NumCategories]uint64

// Total sums all categories.
func (b Breakdown) Total() uint64 {
	var t uint64
	for _, v := range b {
		t += v
	}
	return t
}

// Add merges another breakdown.
func (b *Breakdown) Add(o Breakdown) {
	for i, v := range o {
		b[i] += v
	}
}

// MemParams sizes the memory hierarchy (Table 1).
type MemParams struct {
	L1Sets, L1Ways int
	// L1HitLat is the L1 data cache hit latency.
	L1HitLat uint64
	// L2HitLat is the minimum miss latency to the secondary cache
	// (crossbar + L2).
	L2HitLat uint64
	// MemLat is the minimum miss latency to local memory.
	MemLat uint64
	// L2Banks and L2BankOccupancy model L2 bandwidth: each bank accepts
	// one access per occupancy window.
	L2Banks         int
	L2BankOccupancy uint64
	// MemOccupancy models main-memory bandwidth (one access per window).
	MemOccupancy uint64

	// ModelICache enables the L1 instruction cache (Table 1: 32KB,
	// 4-way). Each instrumentation site owns a synthetic code footprint;
	// fetch walks it and misses stall the front end. Off by default —
	// the calibrated baseline omits it (recorded traces carry data
	// addresses, not code addresses), and the -icache ablation
	// quantifies the effect.
	ModelICache bool
	// L1ISets / L1IWays size the instruction cache.
	L1ISets, L1IWays int
}

// DefaultMemParams returns the Table 1 memory system.
func DefaultMemParams() MemParams {
	return MemParams{
		L1Sets:          256, // 32KB, 4-way, 32B lines
		L1Ways:          4,
		L1ISets:         256, // 32KB, 4-way instruction cache
		L1IWays:         4,
		L1HitLat:        1,
		L2HitLat:        10,
		MemLat:          75,
		L2Banks:         4,
		L2BankOccupancy: 4,
		MemOccupancy:    20,
	}
}

// Config assembles a full machine.
type Config struct {
	// CPUs is the number of cores used by the run (1 for the SEQUENTIAL
	// and TLS-SEQ experiments, 4 otherwise).
	CPUs int
	CPU  cpu.Params
	Mem  MemParams
	TLS  tls.Config

	// SubthreadSpacing starts a new sub-thread every n speculative
	// instructions (§5.1; the BASELINE uses 5000). 0 disables spawning.
	SubthreadSpacing uint64

	// Spawn selects where sub-threads start (§5.1 explores this choice).
	Spawn SpawnPolicy
	// RegBackupPenalty charges the register-file checkpoint at each
	// sub-thread start. The paper models zero ("this could be
	// accomplished quickly through shadow register files, or more slowly
	// by backing up to memory", §2.2); nonzero values model the
	// memory-backup alternative.
	RegBackupPenalty uint64
	// NonBlockingLoads lets execution continue past a load miss for up to
	// ReorderBuffer instructions (one outstanding miss), modeling the
	// memory-level parallelism of the paper's out-of-order cores. Off by
	// default: the calibrated baseline uses blocking loads, and the -mlp
	// ablation quantifies the difference.
	NonBlockingLoads bool
	// L1SubthreadTracking extends the L1 caches to track which sub-thread
	// modified each line, so a violation invalidates only the rewound
	// contexts' lines instead of all speculatively-modified lines. The
	// paper evaluated this and "found this support to be not worthwhile"
	// (§2.2); the -l1track ablation reproduces that comparison.
	L1SubthreadTracking bool

	// ViolationPenalty is the fixed recovery cost of a squash, charged as
	// failed speculation (L1 invalidations, context restore).
	ViolationPenalty uint64
	// CommitPenalty is the cost of passing the homefree token and flash
	// committing.
	CommitPenalty uint64

	// UsePredictor synchronizes predicted-dependent loads instead of
	// relying on sub-threads (the §2.2 related-work ablation).
	UsePredictor bool

	// ExposedTableEntries sizes each CPU's exposed load table (§3.1).
	ExposedTableEntries int
	// PairListEntries bounds the L2 profiling list (§3.1).
	PairListEntries int

	// LatchDeadlockCycles breaks cross-epoch latch waits that exceed this
	// bound by squashing the youngest latch holder. 0 uses the default.
	LatchDeadlockCycles uint64

	// Telemetry receives cycle-stamped protocol events (epoch lifecycle,
	// sub-thread spawns, violations, latch traffic, stalls — see the
	// telemetry package comment for the schema). nil disables
	// instrumentation; the only residual cost is a pointer test at each
	// protocol event, never on the per-instruction path.
	Telemetry telemetry.Emitter

	// Paranoid enables the protocol invariant auditor: the TLS engine
	// re-validates its architectural state at every protocol event
	// (commit-order monotonicity, SL/SM masks never spanning freed
	// contexts, cache version-occupancy accounting — see tls.AuditError),
	// and the simulator checks that rewinds never move a cursor forward
	// and that cycle accounting balances. A failure ends the run with a
	// RunError of kind "audit".
	Paranoid bool

	// Oracle, when non-nil, observes stores, squashes, and commits so an
	// external checker (internal/check) can reconstruct the committed
	// memory image. Purely observational: it never affects timing.
	Oracle MemOracle

	// Inject, when non-nil, feeds deterministic faults into the run
	// (internal/inject). Each injector is single-use: construct a fresh
	// one per Run.
	Inject Injector

	// WatchdogCycles bounds how long the machine may go without committing
	// a unit before the run is abandoned with a RunError of kind
	// "watchdog" — the forward-progress guard that converts livelock into
	// a structured error. 0 disables the watchdog.
	WatchdogCycles uint64

	// Cancel, when non-nil, is polled every CancelPollCycles simulated
	// cycles alongside the forward-progress watchdog; the first poll that
	// returns a non-nil error abandons the run with a RunError of kind
	// "cancelled" wrapping that error. This is how a serving layer threads
	// per-job deadlines and client disconnects into a run: the check is a
	// single function call on a coarse cadence, so it never perturbs the
	// per-instruction hot path. Runtime-only plumbing like Telemetry —
	// excluded from content digests.
	Cancel func() error `json:"-"`

	// SnapshotAtCycle, when nonzero, captures a whole-machine snapshot at
	// the top of that simulated cycle — before the cycle's fault drain and
	// core steps — and hands it to SnapshotSink. A run restored from the
	// snapshot replays the remainder byte-identically (see ResumeE).
	// Runtime-only plumbing like Telemetry — excluded from content digests,
	// and with no effect whatsoever on simulated behavior.
	SnapshotAtCycle uint64 `json:"-"`
	// SnapshotAtPrefix captures the snapshot at the prefix boundary
	// instead: the first cycle at which the program's last leading barrier
	// unit has consumed its whole trace and is the only live epoch, but has
	// not yet committed — so no speculative unit has started and nothing
	// configuration-divergent has happened. Snapshots taken there are
	// usually Forkable: resumable under any configuration that agrees on
	// the prefix-invariant machine parameters (see PrefixDigest).
	SnapshotAtPrefix bool `json:"-"`
	// SnapshotSink receives the at-most-one snapshot a run captures. nil
	// disables snapshotting entirely (the per-cycle cost is one pointer
	// test).
	SnapshotSink func(*Snapshot) `json:"-"`

	// MaxCycles is a hard cycle budget; exceeding it ends the run with a
	// RunError of kind "max-cycles". 0 means unbounded.
	MaxCycles uint64
}

// CancelPollCycles is how often (in simulated cycles) Config.Cancel is
// polled. Coarse enough to cost nothing against the per-cycle work of a
// 4-CPU machine, fine enough that a cancelled run is abandoned orders of
// magnitude sooner than any watchdog interval.
const CancelPollCycles = 1 << 12

// DefaultConfig returns the paper's BASELINE machine: 4 CPUs, 8 sub-threads
// per epoch spaced 5000 speculative instructions apart.
func DefaultConfig() Config {
	return Config{
		CPUs:                4,
		CPU:                 cpu.DefaultParams(),
		Mem:                 DefaultMemParams(),
		TLS:                 tls.DefaultConfig(),
		SubthreadSpacing:    5000,
		ViolationPenalty:    20,
		CommitPenalty:       5,
		ExposedTableEntries: 1024,
		PairListEntries:     256,
		LatchDeadlockCycles: 50000,
	}
}

// SpawnPolicy selects where sub-thread checkpoints are placed (§5.1).
type SpawnPolicy int

const (
	// SpawnPeriodic starts a sub-thread every SubthreadSpacing
	// speculative instructions — the paper's BASELINE strategy, "a
	// simple strategy that works well in practice".
	SpawnPeriodic SpawnPolicy = iota
	// SpawnAdaptive divides each thread evenly into SubthreadsPerEpoch
	// sub-threads — the improvement §5.1 suggests ("customize the
	// sub-thread size such that the average thread size would be divided
	// evenly into sub-threads").
	SpawnAdaptive
	// SpawnPredictor starts a sub-thread immediately before loads whose
	// PC a violation-trained predictor flags — §5.1's "start sub-threads
	// before loads which frequently cause violations", which would make
	// as few as 2 contexts sufficient with accurate prediction.
	SpawnPredictor
)

func (p SpawnPolicy) String() string {
	switch p {
	case SpawnPeriodic:
		return "periodic"
	case SpawnAdaptive:
		return "adaptive"
	case SpawnPredictor:
		return "predictor-guided"
	default:
		return fmt.Sprintf("spawn(%d)", int(p))
	}
}

// Unit is one schedulable piece of the program: either a speculative thread
// (a loop iteration of the parallelized transaction) or a barrier unit (a
// serial region — later units may not start until it commits, and it only
// executes once it is the oldest, i.e. non-speculatively).
type Unit struct {
	Trace   *trace.Trace
	Barrier bool
}

// Program is the ordered list of units the machine executes; order defines
// the logical (sequential) semantics TLS must preserve.
type Program struct {
	Units []Unit
}

// Epochs counts the speculative (non-barrier) units.
func (p *Program) Epochs() int {
	n := 0
	for _, u := range p.Units {
		if !u.Barrier {
			n++
		}
	}
	return n
}

// Instrs sums the dynamic instructions across all units.
func (p *Program) Instrs() uint64 {
	var t uint64
	for _, u := range p.Units {
		t += u.Trace.Instrs()
	}
	return t
}

// Result reports everything a run measured.
type Result struct {
	// Cycles is the elapsed time of the run.
	Cycles uint64
	// Breakdown distributes CPUs x Cycles across the Figure 5 categories.
	Breakdown Breakdown

	TLS tls.Stats

	// CommittedInstrs is the useful dynamic work; RewoundInstrs the work
	// undone by violations; SpecInstrs those executed while speculative.
	CommittedInstrs uint64
	RewoundInstrs   uint64
	SpecInstrs      uint64

	// EpochCount is the number of speculative threads executed.
	EpochCount int

	Branches    uint64
	Mispredicts uint64

	L1Hits, L1Misses    uint64
	L2Hits, L2Misses    uint64
	MemAccesses         uint64
	LatchDeadlockBreaks uint64
	PredictorSyncs      uint64
	// InjectedFaults counts perturbations delivered by a fault injector.
	InjectedFaults uint64
	// OverflowWaits counts epoch stalls caused by speculative-buffer
	// exhaustion (OverflowStall policy, §2.1).
	OverflowWaits uint64
	// L1Invalidations counts speculatively-modified L1 lines invalidated
	// by violations (reduced by L1SubthreadTracking, §2.2).
	L1Invalidations uint64
	// L1IHits / L1IMisses count instruction fetches when ModelICache is on.
	L1IHits, L1IMisses uint64

	// Pairs is the §3.1 dependence profile collected during the run.
	Pairs *profile.PairList
}

// Speedup reports how much faster this run is than a reference run.
func (r *Result) Speedup(ref *Result) float64 {
	if r.Cycles == 0 {
		return 0
	}
	return float64(ref.Cycles) / float64(r.Cycles)
}

// NormalizedBreakdown scales the breakdown so that the reference run's total
// equals 1.0 with the full machine's CPU count — the normalization used by
// the Figure 5 bars (a sequential run shows 3 of 4 CPUs idle).
func (r *Result) NormalizedBreakdown(refCycles uint64, machineCPUs int) [NumCategories]float64 {
	var out [NumCategories]float64
	denom := float64(refCycles) * float64(machineCPUs)
	if denom == 0 {
		return out
	}
	// Pad with idle CPUs when the run used fewer cores than the machine.
	pad := uint64(machineCPUs)*r.Cycles - r.Breakdown.Total()
	for i, v := range r.Breakdown {
		out[i] = float64(v) / denom
	}
	out[Idle] += float64(pad) / denom
	return out
}
