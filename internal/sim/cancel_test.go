package sim

import (
	"errors"
	"testing"
)

// Cancellation-path tests: Config.Cancel is the serving layer's deadline /
// client-disconnect signal, polled every CancelPollCycles alongside the
// watchdog. A run abandoned this way must surface a structured RunError of
// kind "cancelled" wrapping the cause, promptly (within one poll interval
// of the signal firing), and a Cancel that never fires must not perturb
// the result.

func TestCancelAbandonsRunPromptly(t *testing.T) {
	cfg := testConfig()
	cause := errors.New("client went away")
	var firedAt uint64
	// Long enough that the run is still going at the first few polls.
	cfg.Inject = &stubInjector{latchEvery: 1, latchDelay: 1}
	polls := 0
	cfg.Cancel = func() error {
		polls++
		if polls >= 2 {
			if firedAt == 0 {
				firedAt = uint64(polls) * CancelPollCycles
			}
			return cause
		}
		return nil
	}
	res, err := RunE(cfg, &Program{Units: []Unit{{Trace: latchTrace(0x9400, 1000)}}})
	if err == nil {
		t.Fatal("cancelled run returned no error")
	}
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("error is %T, want *RunError", err)
	}
	if re.Kind != "cancelled" {
		t.Errorf("RunError.Kind = %q, want %q", re.Kind, "cancelled")
	}
	if !errors.Is(err, cause) {
		t.Errorf("RunError does not wrap the cancellation cause: %v", err)
	}
	// The first poll returning non-nil must abandon the run immediately:
	// the abandonment cycle is exactly a poll cycle.
	if re.Cycle%CancelPollCycles != 0 {
		t.Errorf("abandoned at cycle %d, not on a %d-cycle poll boundary", re.Cycle, CancelPollCycles)
	}
	if re.Cycle > firedAt {
		t.Errorf("abandoned at cycle %d, after the poll that fired (%d)", re.Cycle, firedAt)
	}
	if res == nil {
		t.Error("no partial result alongside the cancellation error")
	}
}

func TestNilCancelResultUnchanged(t *testing.T) {
	mk := func(cancel func() error) Config {
		cfg := testConfig()
		cfg.Cancel = cancel
		return cfg
	}
	base := run(t, mk(nil), Unit{Trace: aluTrace(8000)}, Unit{Trace: aluTrace(8000)})
	polled := 0
	live := run(t, mk(func() error { polled++; return nil }),
		Unit{Trace: aluTrace(8000)}, Unit{Trace: aluTrace(8000)})
	if base.Cycles != live.Cycles || base.Breakdown != live.Breakdown {
		t.Errorf("never-firing Cancel perturbed the run: %d vs %d cycles", base.Cycles, live.Cycles)
	}
	if polled == 0 && base.Cycles >= CancelPollCycles {
		t.Error("Cancel was never polled over a multi-interval run")
	}
}

func TestCancelBeatsWatchdog(t *testing.T) {
	// Both the watchdog and the cancel signal are pending; whichever
	// cadence fires first wins, and with a cancel armed from cycle zero
	// that is the cancel poll (CancelPollCycles << WatchdogCycles here).
	cfg := testConfig()
	cfg.WatchdogCycles = 1 << 20
	cfg.Inject = &stubInjector{latchEvery: 1, latchDelay: 1}
	cause := errors.New("deadline exceeded")
	cfg.Cancel = func() error { return cause }
	_, err := RunE(cfg, &Program{Units: []Unit{{Trace: latchTrace(0x9500, 1000)}}})
	var re *RunError
	if !errors.As(err, &re) {
		t.Fatalf("err = %v, want *RunError", err)
	}
	if re.Kind != "cancelled" {
		t.Errorf("RunError.Kind = %q, want %q", re.Kind, "cancelled")
	}
	if re.Cycle > CancelPollCycles {
		t.Errorf("abandoned at cycle %d, want within the first %d-cycle poll interval", re.Cycle, CancelPollCycles)
	}
}
