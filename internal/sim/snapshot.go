package sim

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"

	"subthreads/internal/cpu"
	"subthreads/internal/isa"
	"subthreads/internal/mem"
	"subthreads/internal/predict"
	"subthreads/internal/snapbin"
	"subthreads/internal/tls"
	"subthreads/internal/trace"
)

// Whole-machine checkpoint/restore.
//
// A Snapshot captures every piece of machine state that influences the rest
// of a run — core pipelines, epoch and sub-thread contexts, the TLS engine's
// L2 directory and version stores, branch predictors, latches, profiling
// state, telemetry-free counters, and the trace cursor positions — at the top
// of a deterministic cycle boundary. The contract is byte identity: a run
// restored from a snapshot produces exactly the Result the uninterrupted run
// would have, down to every counter.
//
// Two resume modes:
//
//   - Restore: the resuming Config's FullDigest matches the snapshot's. The
//     remainder of the run replays under the identical machine.
//   - Fork: the digests differ but the snapshot is Forkable and the configs
//     agree on every prefix-invariant parameter (PrefixDigest). This is the
//     prefix-sharing exploit: sweep points that differ only in sub-thread
//     configuration (spacing, contexts, spawn policy, overflow policy, victim
//     sizing, predictors, start table...) execute the program's leading
//     barrier prefix identically, so one run executes it and every other
//     sweep point forks from the boundary.
//
// Forking is sound because a Forkable snapshot — taken when the last leading
// barrier has drained and nothing speculative has ever happened — carries no
// state that any divergent-allowed parameter could have influenced: no
// speculative versions, no SL/SM state, no held latches, no sub-thread
// contexts beyond the first, no trained predictors, no violation history.
// The only config-derived per-core state (sub-thread spacing and the next
// spawn point) is recomputed for the forked config at restore time.

const (
	snapMagic   = "TLSS"
	snapVersion = 1

	// maxSnapPayload bounds the machine payload a decoder will touch.
	maxSnapPayload = 1 << 31
	maxSnapDigest  = 128
)

// Snapshot is one whole-machine checkpoint, decoupled from the machine that
// captured it. Encode/DecodeSnapshot round-trip it through a self-describing
// binary frame for the CAS.
type Snapshot struct {
	// Cycle is the boundary the snapshot was captured at: the restored run
	// resumes at the top of this cycle.
	Cycle uint64
	// Forkable reports that the machine carried no state any
	// divergent-allowed configuration parameter could have influenced, so
	// the snapshot may be resumed under a prefix-compatible config.
	Forkable bool
	// FullDigest identifies the exact capturing configuration;
	// PrefixDigest identifies only its prefix-invariant parameters.
	FullDigest   string
	PrefixDigest string

	// Program fingerprint: resuming under a different program is a hard
	// error, not a wrong answer.
	progUnits   uint64
	progInstrs  uint64
	progLeading uint64

	payload []byte
}

// Encode renders the snapshot into its binary frame.
func (s *Snapshot) Encode() []byte {
	w := snapbin.NewWriter(len(s.payload) + 256)
	w.Raw([]byte(snapMagic))
	w.U8(snapVersion)
	w.Uvarint(s.Cycle)
	w.Bool(s.Forkable)
	w.String(s.FullDigest)
	w.String(s.PrefixDigest)
	w.Uvarint(s.progUnits)
	w.Uvarint(s.progInstrs)
	w.Uvarint(s.progLeading)
	w.Blob(s.payload)
	return w.Bytes()
}

// DecodeSnapshot parses a frame produced by Encode. Header corruption
// surfaces here; payload corruption surfaces at ResumeE, which decodes the
// machine state against the resuming configuration.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r := snapbin.NewReader(data)
	magic := r.Raw(len(snapMagic), "snapshot magic")
	if r.Err() == nil && string(magic) != snapMagic {
		return nil, fmt.Errorf("sim: not a snapshot frame (magic %q)", magic)
	}
	if v := r.U8("snapshot version"); r.Err() == nil && v != snapVersion {
		return nil, fmt.Errorf("sim: unsupported snapshot version %d", v)
	}
	s := &Snapshot{
		Cycle:        r.Uvarint("snapshot cycle"),
		Forkable:     r.Bool("snapshot forkable"),
		FullDigest:   r.String("snapshot full digest", maxSnapDigest),
		PrefixDigest: r.String("snapshot prefix digest", maxSnapDigest),
		progUnits:    r.Uvarint("snapshot prog units"),
		progInstrs:   r.Uvarint("snapshot prog instrs"),
		progLeading:  r.Uvarint("snapshot prog leading"),
	}
	s.payload = r.Blob("snapshot payload", maxSnapPayload)
	if err := r.Done(); err != nil {
		return nil, fmt.Errorf("sim: snapshot frame: %w", err)
	}
	return s, nil
}

// digestJSON is the canonical content digest: sha256 over the deterministic
// JSON encoding (struct fields marshal in declaration order).
func digestJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("sim: digest marshal: %v", err))
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// FullDigest identifies everything about cfg that influences simulated
// behavior. Runtime plumbing (telemetry, oracle, injector, cancellation,
// snapshot capture) and run-abandonment bounds (watchdog, cycle budget) are
// excluded: they never change what a successful run computes.
func FullDigest(cfg Config) string {
	cfg.Telemetry = nil
	cfg.Oracle = nil
	cfg.Inject = nil
	cfg.Cancel = nil
	cfg.SnapshotAtCycle = 0
	cfg.SnapshotAtPrefix = false
	cfg.SnapshotSink = nil
	cfg.MaxCycles = 0
	cfg.WatchdogCycles = 0
	return digestJSON(cfg)
}

// prefixKey is the subset of Config that can influence execution while the
// machine is still non-speculative — i.e. during the leading barrier prefix,
// when exactly one epoch is live and holds the homefree token. Sub-thread
// parameters (spacing, contexts, spawn policy, start table, overflow policy,
// victim sizing, predictors, recovery penalties, L1 tracking) are inert
// there: predictors are never consulted, nothing spawns, nothing can be
// violated or overflow. Two configs with equal prefixKeys execute the prefix
// cycle-for-cycle identically.
type prefixKey struct {
	CPUs                int
	CPU                 cpu.Params
	Mem                 MemParams
	NonBlockingLoads    bool
	L2Sets              int
	L2Ways              int
	ExposedTableEntries int
	PairListEntries     int
	LatchDeadlockCycles uint64
	CommitPenalty       uint64
	Paranoid            bool
}

// PrefixDigest identifies cfg's prefix-invariant machine parameters. Two
// configurations with equal prefix digests run the program's leading barrier
// prefix identically, so a Forkable snapshot captured under one resumes
// correctly under the other.
func PrefixDigest(cfg Config) string {
	return digestJSON(prefixKey{
		CPUs:                cfg.CPUs,
		CPU:                 cfg.CPU,
		Mem:                 cfg.Mem,
		NonBlockingLoads:    cfg.NonBlockingLoads,
		L2Sets:              cfg.TLS.L2Sets,
		L2Ways:              cfg.TLS.L2Ways,
		ExposedTableEntries: cfg.ExposedTableEntries,
		PairListEntries:     cfg.PairListEntries,
		LatchDeadlockCycles: cfg.LatchDeadlockCycles,
		CommitPenalty:       cfg.CommitPenalty,
		Paranoid:            cfg.Paranoid || cfg.TLS.Paranoid,
	})
}

// leadingBarriers counts the barrier units at the front of the program — the
// shared prefix every sweep point executes before speculation can begin.
func leadingBarriers(p *Program) int {
	n := 0
	for _, u := range p.Units {
		if !u.Barrier {
			break
		}
		n++
	}
	return n
}

// wantSnapshot reports whether this top-of-cycle is the capture boundary.
func (m *machine) wantSnapshot() bool {
	if at := m.cfg.SnapshotAtCycle; at > 0 && m.cycle == at {
		return true
	}
	if m.cfg.SnapshotAtPrefix && m.snapLeading > 0 &&
		m.committed == m.snapLeading-1 && m.engine.Live() == 1 {
		// The last leading barrier has drained its trace but not yet
		// committed: it will commit during this cycle, and iteration
		// units may start this same cycle — so this is the last boundary
		// at which nothing configuration-divergent has happened.
		e := m.engine.Oldest()
		if c := m.coreOf(e); c != nil && c.done {
			return true
		}
	}
	return false
}

// captureSnapshot encodes the machine and hands the snapshot to the sink.
func (m *machine) captureSnapshot() {
	s := &Snapshot{
		Cycle:        m.cycle,
		Forkable:     m.forkable(),
		FullDigest:   FullDigest(m.cfg),
		PrefixDigest: PrefixDigest(m.cfg),
		progUnits:    uint64(len(m.prog.Units)),
		progInstrs:   m.prog.Instrs(),
		progLeading:  uint64(m.snapLeading),
	}
	w := snapbin.NewWriter(1 << 16)
	m.appendState(w)
	s.payload = w.Bytes()
	m.cfg.SnapshotSink(s)
}

// forkable reports whether the machine carries no state that any
// divergent-allowed configuration parameter could have influenced. The
// structural half (no speculative versions, no directory state, free latches,
// first-context epochs) lives in Engine.Forkable; the counters here pin that
// nothing configuration-sensitive ever happened, not merely that its state
// has drained.
func (m *machine) forkable() bool {
	if m.cfg.Inject != nil || m.err != nil || !m.engine.Forkable() {
		return false
	}
	st := m.engine.Stats
	if st.PrimaryViolations != 0 || st.SecondaryViolations != 0 ||
		st.OverflowSquashes != 0 || st.OverflowStalls != 0 ||
		st.SubthreadStarts != 0 || st.ExposedLoads != 0 || st.SpecStores != 0 {
		return false
	}
	if !m.pairs.Empty() {
		return false
	}
	if m.pred != nil && !m.pred.Empty() {
		return false
	}
	if m.spawnPred != nil && !m.spawnPred.Empty() {
		return false
	}
	r := &m.res
	return r.RewoundInstrs == 0 && r.SpecInstrs == 0 && r.PredictorSyncs == 0 &&
		r.OverflowWaits == 0 && r.InjectedFaults == 0 &&
		r.LatchDeadlockBreaks == 0 && r.L1Invalidations == 0 && r.EpochCount == 0
}

// ResumeE resumes a run from a snapshot: restore when cfg matches the
// capturing configuration exactly (by FullDigest), fork when the snapshot is
// Forkable and cfg agrees on the prefix-invariant parameters. The returned
// Result is byte-identical to the uninterrupted run under cfg.
//
// Restoring a run that was captured under fault injection requires cfg to
// carry a fresh injector built from the identical schedule (digests cannot
// verify this — Injector is opaque); ResumeE fast-forwards it past the
// already-consumed faults. Forking into a fault-injected run is refused: the
// injector would have perturbed the prefix the fork pretends was shared.
// Resuming with a memory oracle is refused for the same shape of reason: the
// oracle cannot observe the pre-snapshot stores.
func ResumeE(cfg Config, prog *Program, snap *Snapshot) (*Result, error) {
	if snap == nil {
		return nil, fmt.Errorf("sim: nil snapshot")
	}
	if cfg.Oracle != nil {
		return nil, fmt.Errorf("sim: cannot resume with a memory oracle")
	}
	if snap.progUnits != uint64(len(prog.Units)) || snap.progInstrs != prog.Instrs() ||
		snap.progLeading != uint64(leadingBarriers(prog)) {
		return nil, fmt.Errorf("sim: snapshot program fingerprint mismatch (%d units/%d instrs/%d leading vs %d/%d/%d)",
			snap.progUnits, snap.progInstrs, snap.progLeading,
			len(prog.Units), prog.Instrs(), leadingBarriers(prog))
	}
	fork := false
	switch {
	case snap.FullDigest == FullDigest(cfg):
		// Exact restore.
	case snap.Forkable && snap.PrefixDigest == PrefixDigest(cfg):
		if cfg.Inject != nil {
			return nil, fmt.Errorf("sim: cannot fork a snapshot into a fault-injected run")
		}
		fork = true
	default:
		return nil, fmt.Errorf("sim: snapshot matches neither the full config nor a forkable prefix")
	}

	m := newMachine(cfg, prog)
	r := snapbin.NewReader(snap.payload)
	m.restoreState(r)
	if err := r.Done(); err != nil {
		m.release()
		return nil, fmt.Errorf("sim: snapshot payload: %w", err)
	}
	m.snapped = true
	if fork {
		m.refork()
	} else if cfg.Inject != nil && m.cycle > 0 {
		// Fast-forward past the faults the captured run already consumed:
		// capture precedes cycle C's drain, so exactly those scheduled at
		// or before C-1 were delivered.
		for {
			if _, ok := cfg.Inject.Next(m.cycle - 1); !ok {
				break
			}
		}
	}
	err := m.run()
	res := m.finish()
	m.release()
	return res, err
}

// refork recomputes the only config-derived per-core state a forkable
// snapshot carries: the sub-thread spacing and next spawn point, which the
// capturing configuration wrote its own values into even though they never
// influenced prefix execution. The recomputed values are exactly what a
// native run under the forked config would hold at this boundary: spawning
// is suppressed (^0) once the cursor has passed the first spawn point
// non-speculatively, untouched (0) when spawning is disabled, and armed at
// the first spacing otherwise.
func (m *machine) refork() {
	for _, c := range m.cores {
		if c.unit < 0 {
			continue
		}
		c.spacing = m.effectiveSpacing(m.prog.Units[c.unit].Trace)
		switch {
		case c.spacing == 0:
			c.nextSpawnAt = 0
		case c.cursor.Done() >= c.spacing:
			c.nextSpawnAt = ^uint64(0)
		default:
			c.nextSpawnAt = c.spacing
		}
	}
}

// appendState serializes the complete machine: everything that influences
// the remainder of the run, in a fixed field order.
func (m *machine) appendState(w *snapbin.Writer) {
	w.Uvarint(m.cycle)
	w.Int(m.nextUnit)
	w.Bool(m.barrierLive)
	w.Int(m.committed)
	w.Int(m.wdLastCommitted)
	w.Uvarint(m.wdLastCommitAt)
	w.Bool(m.wdSyncRun)
	w.Uvarint(m.wdAllSyncSince)

	// Result counters. TLS stats and the pair list are excluded: finish()
	// repopulates both from the restored engine and profile state.
	w.Uvarint(m.res.Cycles)
	for _, v := range m.res.Breakdown {
		w.Uvarint(v)
	}
	w.Uvarint(m.res.CommittedInstrs)
	w.Uvarint(m.res.RewoundInstrs)
	w.Uvarint(m.res.SpecInstrs)
	w.Int(m.res.EpochCount)
	w.Uvarint(m.res.Branches)
	w.Uvarint(m.res.Mispredicts)
	w.Uvarint(m.res.L1Hits)
	w.Uvarint(m.res.L1Misses)
	w.Uvarint(m.res.L2Hits)
	w.Uvarint(m.res.L2Misses)
	w.Uvarint(m.res.MemAccesses)
	w.Uvarint(m.res.LatchDeadlockBreaks)
	w.Uvarint(m.res.PredictorSyncs)
	w.Uvarint(m.res.InjectedFaults)
	w.Uvarint(m.res.OverflowWaits)
	w.Uvarint(m.res.L1Invalidations)
	w.Uvarint(m.res.L1IHits)
	w.Uvarint(m.res.L1IMisses)

	m.engine.AppendState(w)
	m.l2Banks.AppendState(w)
	m.memBanks.AppendState(w)

	w.Bool(m.pred != nil)
	if m.pred != nil {
		m.pred.AppendState(w)
	}
	w.Bool(m.spawnPred != nil)
	if m.spawnPred != nil {
		m.spawnPred.AppendState(w)
	}
	m.pairs.AppendState(w)

	// Chip-wide touched code lines (ModelICache), sorted for determinism.
	lines := make([]mem.Addr, 0, len(m.iTouched))
	for l := range m.iTouched {
		lines = append(lines, l)
	}
	sort.Slice(lines, func(i, j int) bool { return lines[i] < lines[j] })
	w.Uvarint(uint64(len(lines)))
	for _, l := range lines {
		w.Uvarint(uint64(l))
	}

	w.Int(m.engine.OrderIndex(m.lastToken))

	w.Uvarint(uint64(len(m.cores)))
	for _, c := range m.cores {
		m.appendCore(w, c)
	}
}

// restoreState rebuilds the machine from r; any decode or validation failure
// latches in the reader for the caller to surface.
func (m *machine) restoreState(r *snapbin.Reader) {
	m.cycle = r.Uvarint("machine cycle")
	m.nextUnit = r.Int("machine next unit")
	m.barrierLive = r.Bool("machine barrier live")
	m.committed = r.Int("machine committed")
	m.wdLastCommitted = r.Int("machine wd committed")
	m.wdLastCommitAt = r.Uvarint("machine wd commit-at")
	m.wdSyncRun = r.Bool("machine wd sync-run")
	m.wdAllSyncSince = r.Uvarint("machine wd sync-since")
	if r.Err() == nil && (m.nextUnit < 0 || m.nextUnit > len(m.prog.Units) ||
		m.committed < 0 || m.committed > len(m.prog.Units)) {
		r.Failf("machine unit indexes out of range (next %d, committed %d, %d units)",
			m.nextUnit, m.committed, len(m.prog.Units))
		return
	}

	m.res.Cycles = r.Uvarint("res cycles")
	for i := range m.res.Breakdown {
		m.res.Breakdown[i] = r.Uvarint("res breakdown")
	}
	m.res.CommittedInstrs = r.Uvarint("res committed instrs")
	m.res.RewoundInstrs = r.Uvarint("res rewound instrs")
	m.res.SpecInstrs = r.Uvarint("res spec instrs")
	m.res.EpochCount = r.Int("res epoch count")
	m.res.Branches = r.Uvarint("res branches")
	m.res.Mispredicts = r.Uvarint("res mispredicts")
	m.res.L1Hits = r.Uvarint("res l1 hits")
	m.res.L1Misses = r.Uvarint("res l1 misses")
	m.res.L2Hits = r.Uvarint("res l2 hits")
	m.res.L2Misses = r.Uvarint("res l2 misses")
	m.res.MemAccesses = r.Uvarint("res mem accesses")
	m.res.LatchDeadlockBreaks = r.Uvarint("res deadlock breaks")
	m.res.PredictorSyncs = r.Uvarint("res predictor syncs")
	m.res.InjectedFaults = r.Uvarint("res injected faults")
	m.res.OverflowWaits = r.Uvarint("res overflow waits")
	m.res.L1Invalidations = r.Uvarint("res l1 invalidations")
	m.res.L1IHits = r.Uvarint("res l1i hits")
	m.res.L1IMisses = r.Uvarint("res l1i misses")

	m.engine.RestoreState(r)
	m.l2Banks.RestoreState(r)
	m.memBanks.RestoreState(r)

	// Predictor presence in the frame follows the capturing config; the
	// restore target's presence follows its own. They only diverge on a
	// fork, where the forkable contract guarantees the state is empty, so
	// a frame-present/target-absent predictor decodes into a discard.
	if r.Bool("predictor present") {
		if m.pred != nil {
			m.pred.RestoreState(r)
		} else {
			predict.New().RestoreState(r)
		}
	}
	if r.Bool("spawn predictor present") {
		if m.spawnPred != nil {
			m.spawnPred.RestoreState(r)
		} else {
			predict.New().RestoreState(r)
		}
	}
	m.pairs.RestoreState(r)

	n := r.Count("itouched lines", maxSnapPayload)
	for i := 0; i < n && r.Err() == nil; i++ {
		m.iTouched[mem.Addr(r.Uvarint("itouched line"))] = true
	}

	m.lastToken = m.engine.EpochAt(r.Int("last token"))

	if nc := r.Count("cores", len(m.cores)); r.Err() == nil && nc != len(m.cores) {
		r.Failf("frame has %d cores, config has %d", nc, len(m.cores))
		return
	}
	for _, c := range m.cores {
		m.restoreCore(r, c)
		if r.Err() != nil {
			return
		}
	}
}

func (m *machine) appendCore(w *snapbin.Writer, c *core) {
	w.Int(c.unit)
	w.Int(m.engine.OrderIndex(c.epoch))
	if c.unit >= 0 {
		appendPos(w, c.cursor.Pos())
	}
	w.Uvarint(uint64(len(c.checkpoints)))
	for _, p := range c.checkpoints {
		appendPos(w, p)
	}
	w.Uvarint(uint64(len(c.ctxCycles)))
	for _, b := range c.ctxCycles {
		for _, v := range b {
			w.Uvarint(v)
		}
	}
	w.U64(c.nextSpawnAt) // fixed width: ^0 is a live sentinel value
	w.Uvarint(c.spacing)
	w.Bool(c.overflowWait)
	w.Uvarint(c.overflowCommits)
	w.Uvarint(c.missUntil)
	w.Int(c.missBudget)
	w.Uvarint(c.stallUntil)
	w.Int(int(c.stallCat))
	w.Bool(c.done)
	w.Bool(c.syncing)
	w.Uvarint(uint64(c.syncPC))
	w.Uvarint(uint64(c.syncAddr))
	w.Bool(c.predSync)
	c.gshare.AppendState(w)
	c.l1.AppendState(w)
	c.elt.AppendState(w)
	appendLineSet(w, c.l1Flags)
	entries := c.l1Mod.all()
	w.Uvarint(uint64(len(entries)))
	for _, en := range entries {
		w.Uvarint(uint64(en.line))
		w.Int(int(en.ctx))
	}
	// ifetch presence is config-implied (Mem.ModelICache is
	// prefix-invariant), so capture and restore always agree on it.
	if c.ifetch != nil {
		w.Uvarint(uint64(c.ifetch.curSite))
		w.Int(c.ifetch.curLine)
		w.Uvarint(uint64(c.ifetch.sinceFet))
		c.ifetch.l1i.AppendState(w)
	}
}

func (m *machine) restoreCore(r *snapbin.Reader, c *core) {
	c.unit = r.Int("core unit")
	if r.Err() == nil && (c.unit < -1 || c.unit >= len(m.prog.Units)) {
		r.Failf("core %d: unit %d out of range", c.id, c.unit)
		return
	}
	epochIdx := r.Int("core epoch")
	c.epoch = m.engine.EpochAt(epochIdx)
	if r.Err() == nil && epochIdx >= 0 && c.epoch == nil {
		r.Failf("core %d: epoch index %d not live", c.id, epochIdx)
		return
	}
	if c.unit >= 0 {
		t := m.prog.Units[c.unit].Trace
		pos := restorePos(r)
		if r.Err() == nil && (pos.Index() < 0 || pos.Done() > t.Instrs()) {
			r.Failf("core %d: cursor position out of range", c.id)
			return
		}
		c.cursor = trace.NewCursor(t)
		c.cursor.Seek(pos)
	}
	nCk := r.Count("core checkpoints", tls.MaxSubthreads)
	c.checkpoints = c.checkpoints[:0]
	for i := 0; i < nCk && r.Err() == nil; i++ {
		c.checkpoints = append(c.checkpoints, restorePos(r))
	}
	nCtx := r.Count("core ctx cycles", tls.MaxSubthreads)
	c.ctxCycles = c.ctxCycles[:0]
	for i := 0; i < nCtx && r.Err() == nil; i++ {
		var b Breakdown
		for j := range b {
			b[j] = r.Uvarint("core ctx breakdown")
		}
		c.ctxCycles = append(c.ctxCycles, b)
	}
	c.nextSpawnAt = r.U64("core next spawn")
	c.spacing = r.Uvarint("core spacing")
	c.overflowWait = r.Bool("core overflow wait")
	c.overflowCommits = r.Uvarint("core overflow commits")
	c.missUntil = r.Uvarint("core miss until")
	c.missBudget = r.Int("core miss budget")
	c.stallUntil = r.Uvarint("core stall until")
	cat := r.Int("core stall cat")
	if r.Err() == nil && (cat < 0 || cat >= int(NumCategories)) {
		r.Failf("core %d: stall category %d out of range", c.id, cat)
		return
	}
	c.stallCat = Category(cat)
	c.done = r.Bool("core done")
	c.syncing = r.Bool("core syncing")
	c.syncPC = isa.PC(r.Uvarint("core sync pc"))
	c.syncAddr = mem.Addr(r.Uvarint("core sync addr"))
	c.predSync = r.Bool("core pred sync")
	c.gshare.RestoreState(r)
	c.l1.RestoreState(r)
	c.elt.RestoreState(r)
	restoreLineSet(r, c.l1Flags)
	c.l1Mod.clear()
	nMod := r.Count("core l1 mod", maxSnapPayload)
	for i := 0; i < nMod && r.Err() == nil; i++ {
		line := mem.Addr(r.Uvarint("core mod line"))
		ctx := r.Int("core mod ctx")
		if r.Err() == nil {
			c.l1Mod.noteWrite(line, ctx)
		}
	}
	if c.ifetch != nil {
		c.ifetch.curSite = isa.PC(r.Uvarint("ifetch site"))
		c.ifetch.curLine = r.Int("ifetch line")
		c.ifetch.sinceFet = uint32(r.Uvarint("ifetch since"))
		c.ifetch.l1i.RestoreState(r)
	}
}

func appendPos(w *snapbin.Writer, p trace.Pos) {
	w.Int(p.Index())
	w.Uvarint(uint64(p.Offset()))
	w.Uvarint(p.Done())
}

func restorePos(r *snapbin.Reader) trace.Pos {
	idx := r.Int("pos index")
	off := uint32(r.Uvarint("pos offset"))
	done := r.Uvarint("pos done")
	return trace.MakePos(idx, off, done)
}

// appendLineSet serializes a generation-stamped line set as its member line
// indexes; page order makes the encoding ascending and deterministic.
func appendLineSet(w *snapbin.Writer, s *lineSet) {
	count := uint64(0)
	for _, pg := range s.pages {
		for _, stamp := range pg {
			if stamp == s.gen {
				count++
			}
		}
	}
	w.Uvarint(count)
	for p, pg := range s.pages {
		if pg == nil {
			continue
		}
		for i, stamp := range pg {
			if stamp == s.gen {
				w.Uvarint(uint64(uint32(p)<<corePageShift | uint32(i)))
			}
		}
	}
}

func restoreLineSet(r *snapbin.Reader, s *lineSet) {
	s.clear()
	n := r.Count("line set", maxSnapPayload)
	for i := 0; i < n && r.Err() == nil; i++ {
		idx := r.Uvarint("line set member")
		s.add(mem.Addr(idx * mem.LineSize))
	}
}
